package candspace

import (
	"math/rand"
	"reflect"
	"testing"

	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/testutil"
)

// flatBlocksEqual compares the block materializations of two spaces
// arena-by-arena — byte-identical layouts, not just equal decoded sets.
func flatBlocksEqual(t *testing.T, a, b *Space) {
	t.Helper()
	if !reflect.DeepEqual(a.flat, b.flat) {
		t.Fatal("flat block arenas differ between builds")
	}
}

// TestMaterializeBlocksParallelIdentical pins the two-phase build's
// determinism claim: the parallel materialization produces arenas
// byte-identical to the sequential one at every worker count.
func TestMaterializeBlocksParallelIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		g := testutil.RandomGraph(rng, 30+rng.Intn(30), 150, 3)
		q := testutil.RandomConnectedQuery(rng, g, 4)
		if q == nil {
			continue
		}
		cand := filter.RunNLF(q, g)
		seq := BuildFull(q, g, cand)
		seq.MaterializeBlocks()
		for _, workers := range []int{1, 2, 4, 8} {
			par := BuildFull(q, g, cand)
			work := par.MaterializeBlocksParallel(workers)
			if !par.HasBlocks() {
				t.Fatalf("workers=%d: HasBlocks false after materialization", workers)
			}
			flatBlocksEqual(t, seq, par)
			if workers > 1 {
				var total uint64
				for _, w := range work {
					total += w
				}
				if total == 0 && seq.BlockMemoryBytes() > 0 {
					t.Errorf("workers=%d: zero work tallied for nonempty layout", workers)
				}
			}
		}
	}
}

// TestMaterializeBlocksAllocsScaleWithEdges is the flat layout's reason
// to exist: materialization allocates O(query edges) objects — a few
// allocations per directed pair for the shared arenas — not O(candidate
// adjacency sets). The boxed per-candidate layout allocated ~4 objects
// per candidate and would blow far past this bound.
func TestMaterializeBlocksAllocsScaleWithEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := testutil.RandomGraph(rng, 200, 1600, 2)
	var q *graph.Graph
	for q == nil {
		q = testutil.RandomConnectedQuery(rng, g, 5)
	}
	cand := filter.RunNLF(q, g)
	proto := BuildFull(q, g, cand)
	pairs, sets := 0, 0
	for u := 0; u < q.NumVertices(); u++ {
		uu := graph.Vertex(u)
		for _, up := range q.Neighbors(uu) {
			if proto.HasPair(uu, up) {
				pairs++
				sets += len(proto.Candidates(uu))
			}
		}
	}
	if sets < pairs*8 {
		t.Skipf("fixture too small to separate O(pairs) from O(sets): %d sets, %d pairs", sets, pairs)
	}
	allocs := testing.AllocsPerRun(10, func() {
		s := BuildFull(q, g, cand)
		s.MaterializeBlocks()
	})
	base := testing.AllocsPerRun(10, func() {
		BuildFull(q, g, cand)
	})
	blockAllocs := allocs - base
	// Per materialized pair: counts slice, FlatBlocks struct, offsets,
	// keys, words (5), plus the two outer rows per query vertex and
	// slack for the runtime.
	bound := float64(6*pairs + 4*q.NumVertices() + 16)
	if blockAllocs > bound {
		t.Errorf("block materialization allocated %.0f objects for %d pairs (%d sets); bound %.0f — layout is not O(edges)",
			blockAllocs, pairs, sets, bound)
	}
}

// TestAdjacencyWithViewConsistent checks the hot-path accessor against
// the separate slice and view lookups.
func TestAdjacencyWithViewConsistent(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	cand := filter.RunNLF(q, g)
	s := BuildFull(q, g, cand)

	// Before materialization: slices present, views absent.
	for u := 0; u < q.NumVertices(); u++ {
		uu := graph.Vertex(u)
		for _, up := range q.Neighbors(uu) {
			for ci := range s.Candidates(uu) {
				adj, bv := s.AdjacencyWithView(uu, up, ci)
				if bv.Valid() {
					t.Fatalf("(%d->%d)[%d]: view valid before MaterializeBlocks", uu, up, ci)
				}
				if !reflect.DeepEqual(adj, s.Adjacency(uu, up, ci)) {
					t.Fatalf("(%d->%d)[%d]: slice mismatch", uu, up, ci)
				}
			}
		}
	}
	s.MaterializeBlocks()
	for u := 0; u < q.NumVertices(); u++ {
		uu := graph.Vertex(u)
		for _, up := range q.Neighbors(uu) {
			if !s.HasPair(uu, up) {
				continue
			}
			for ci := range s.Candidates(uu) {
				adj, bv := s.AdjacencyWithView(uu, up, ci)
				if !bv.Valid() {
					t.Fatalf("(%d->%d)[%d]: view invalid after MaterializeBlocks", uu, up, ci)
				}
				if got := bv.Elements([]uint32{}); !reflect.DeepEqual(got, append([]uint32{}, adj...)) {
					t.Fatalf("(%d->%d)[%d]: view decodes %v, slice %v", uu, up, ci, got, adj)
				}
				if want := s.AdjacencyView(uu, up, ci); !reflect.DeepEqual(bv, want) {
					t.Fatalf("(%d->%d)[%d]: AdjacencyWithView view differs from AdjacencyView", uu, up, ci)
				}
			}
		}
	}
}

// TestPairSize checks the planner's O(1) per-edge size stat against the
// explicit per-candidate sum.
func TestPairSize(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	cand := filter.RunNLF(q, g)
	s := BuildFull(q, g, cand)
	for u := 0; u < q.NumVertices(); u++ {
		uu := graph.Vertex(u)
		for _, up := range q.Neighbors(uu) {
			want := 0
			for ci := range s.Candidates(uu) {
				want += len(s.Adjacency(uu, up, ci))
			}
			if got := s.PairSize(uu, up); got != want {
				t.Errorf("PairSize(%d,%d) = %d, want %d", uu, up, got, want)
			}
		}
		// Non-adjacent pairs (including u itself) report 0.
		if got := s.PairSize(uu, uu); got != 0 {
			t.Errorf("PairSize(%d,%d) = %d, want 0", uu, uu, got)
		}
	}
}

// TestBlockStats cross-checks the aggregate layout stats against the
// per-view sums.
func TestBlockStats(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	cand := filter.RunNLF(q, g)
	s := BuildFull(q, g, cand)
	if sets, blocks, elems := s.BlockStats(); sets != 0 || blocks != 0 || elems != 0 {
		t.Fatalf("BlockStats before materialization = %d/%d/%d", sets, blocks, elems)
	}
	if s.BlockMemoryBytes() != 0 {
		t.Fatal("BlockMemoryBytes nonzero before materialization")
	}
	s.MaterializeBlocks()
	sets, blocks, elems := s.BlockStats()
	wantSets, wantBlocks, wantElems := 0, 0, 0
	for u := 0; u < q.NumVertices(); u++ {
		uu := graph.Vertex(u)
		for _, up := range q.Neighbors(uu) {
			if !s.HasPair(uu, up) {
				continue
			}
			for ci := range s.Candidates(uu) {
				v := s.AdjacencyView(uu, up, ci)
				wantSets++
				wantBlocks += v.NumBlocks()
				wantElems += v.Count()
			}
		}
	}
	if sets != wantSets || blocks != wantBlocks || elems != wantElems {
		t.Errorf("BlockStats = %d/%d/%d, want %d/%d/%d", sets, blocks, elems, wantSets, wantBlocks, wantElems)
	}
	if elems > 0 && s.BlockMemoryBytes() <= 0 {
		t.Errorf("BlockMemoryBytes = %d with %d elements", s.BlockMemoryBytes(), elems)
	}
}

// TestParallelMaterializeStress is the race-detector gate for the
// parallel block build (`make race-stress`): repeated 8-worker
// materializations, each compared arena-by-arena to the sequential
// reference.
func TestParallelMaterializeStress(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := testutil.RandomGraph(rng, 60, 240, 3)
	var q *graph.Graph
	for q == nil {
		q = testutil.RandomConnectedQuery(rng, g, 5)
	}
	cand := filter.RunNLF(q, g)
	seq := BuildFull(q, g, cand)
	seq.MaterializeBlocks()
	for i := 0; i < 50; i++ {
		s := BuildFull(q, g, cand)
		s.MaterializeBlocksParallel(8)
		flatBlocksEqual(t, seq, s)
	}
}
