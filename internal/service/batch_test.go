package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/testutil"
)

// TestBatchMatchesSequentialAcrossPresets is the batch-equivalence
// acceptance grid: for every algorithm preset and every worker count,
// a batch submission must produce byte-identical embeddings AND an
// identical intersection-kernel mix to the same requests submitted
// sequentially. Full enumerations (no embedding cap) make the kernel
// counts schedule-independent, so the mix is comparable exactly.
func TestBatchMatchesSequentialAcrossPresets(t *testing.T) {
	s, g := newTestService(t, Config{})
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(11)), g, 5)
	ctx := context.Background()
	for _, algo := range core.Algorithms() {
		external := algo == core.Glasgow || algo == core.VF2Classic || algo == core.Ullmann
		for _, workers := range []int{1, 2, 4, 8} {
			if external && workers > 1 {
				// The external engines are sequential; the grid point
				// would duplicate workers=1.
				continue
			}
			t.Run(fmt.Sprintf("%s/workers=%d", algo, workers), func(t *testing.T) {
				var seq collectSink
				req := Request{Graph: "main", Query: q, Algorithm: algo,
					Parallel: workers, Workers: workers, NoCache: true}
				seqResp, err := s.Stream(ctx, req, seq.fn)
				if err != nil {
					t.Fatalf("sequential: %v", err)
				}

				var batched collectSink
				items := []Request{
					{Graph: "main", Query: q, Algorithm: algo,
						Parallel: workers, Workers: workers, OnMatch: batched.fn},
					{Graph: "main", Query: q, Algorithm: algo,
						Parallel: workers, Workers: workers},
				}
				results, err := s.SubmitBatch(ctx, items)
				if err != nil {
					t.Fatalf("batch: %v", err)
				}
				for i, br := range results {
					if br.Err != nil {
						t.Fatalf("item %d: %v", i, br.Err)
					}
					if br.Resp.Result.Embeddings != seqResp.Result.Embeddings {
						t.Fatalf("item %d embeddings = %d, sequential = %d",
							i, br.Resp.Result.Embeddings, seqResp.Result.Embeddings)
					}
					if br.Resp.Result.Kernels != seqResp.Result.Kernels {
						t.Fatalf("item %d kernel mix = %v, sequential = %v",
							i, br.Resp.Result.Kernels, seqResp.Result.Kernels)
					}
				}
				if got, want := batched.canonical(), seq.canonical(); !bytes.Equal(got, want) {
					t.Fatalf("batched embeddings differ from sequential (%d vs %d bytes)",
						len(got), len(want))
				}
			})
		}
	}
}

// TestBatchGroupingOnePlanPerGroup pins the amortization contract:
// however many items a batch carries, each distinct (graph, query,
// config) class builds exactly one plan, the first item of a fresh
// group reports the miss, and the rest report hits — the same sequence
// N sequential Submits would produce.
func TestBatchGroupingOnePlanPerGroup(t *testing.T) {
	s, g := newTestService(t, Config{})
	rng := rand.New(rand.NewSource(23))
	qa := testutil.RandomConnectedQuery(rng, g, 4)
	qb := testutil.RandomConnectedQuery(rng, g, 5)
	ctx := context.Background()

	items := []Request{
		{Graph: "main", Query: qa, Algorithm: core.CFL},
		{Graph: "main", Query: qa, Algorithm: core.CFL}, // dup of 0
		{Graph: "main", Query: qb, Algorithm: core.CFL},
		{Graph: "main", Query: qa, Algorithm: core.GraphQL}, // same query, other config
		{Graph: "main", Query: qa, Algorithm: core.CFL},     // dup of 0
	}
	before := s.metrics.planBuilds.Value()
	results, err := s.SubmitBatch(ctx, items)
	if err != nil {
		t.Fatal(err)
	}
	for i, br := range results {
		if br.Err != nil {
			t.Fatalf("item %d: %v", i, br.Err)
		}
		if br.Index != i {
			t.Fatalf("item %d routed to index %d", i, br.Index)
		}
	}
	if builds := s.metrics.planBuilds.Value() - before; builds != 3 {
		t.Fatalf("batch built %d plans, want 3 (one per distinct group)", builds)
	}
	// Dup items share their group's plan: exactly one miss per group.
	misses := 0
	for _, br := range results {
		if !br.Resp.CacheHit {
			misses++
		}
	}
	if misses != 3 {
		t.Fatalf("%d items reported a cache miss, want 3 (group leaders only)", misses)
	}
	// Identical no-callback items dedup to one execution.
	st := s.Stats()
	if st.Batches.Groups != 3 {
		t.Fatalf("Stats.Batches.Groups = %d, want 3", st.Batches.Groups)
	}
	if st.Batches.Deduped != 2 {
		t.Fatalf("Stats.Batches.Deduped = %d, want 2 (items 1 and 4)", st.Batches.Deduped)
	}
	if results[1].Resp.Result.Embeddings != results[0].Resp.Result.Embeddings {
		t.Fatal("deduplicated item diverged from its leader")
	}
}

// TestBatchPerItemIsolation mixes broken items into a batch and
// requires the valid ones to succeed untouched, each failure typed as
// its lone-Submit equivalent.
func TestBatchPerItemIsolation(t *testing.T) {
	s, g := newTestService(t, Config{})
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(5)), g, 4)
	disconnected := graph.NewBuilder(0, 0)
	disconnected.AddVertex(0)
	disconnected.AddVertex(1)
	dq := disconnected.MustBuild()

	items := []Request{
		{Graph: "main", Query: q, Algorithm: core.CFL},
		{Graph: "main", Query: nil},
		{Graph: "nope", Query: q},
		{Graph: "main", Query: dq},
		{Graph: "main", Query: q, Algorithm: core.CFL},
	}
	results, err := s.SubmitBatch(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[4].Err != nil {
		t.Fatalf("valid items failed: %v / %v", results[0].Err, results[4].Err)
	}
	if !errors.Is(results[1].Err, ErrNilQuery) {
		t.Fatalf("nil query: got %v", results[1].Err)
	}
	if !errors.Is(results[2].Err, ErrUnknownGraph) {
		t.Fatalf("unknown graph: got %v", results[2].Err)
	}
	if results[3].Err == nil {
		t.Fatal("disconnected query must fail validation")
	}
	if results[0].Resp.Result.Embeddings != results[4].Resp.Result.Embeddings {
		t.Fatal("valid items around failures diverged")
	}
}

// TestBatchEmptyAndClosed covers the two batch-level failures.
func TestBatchEmptyAndClosed(t *testing.T) {
	s, g := newTestService(t, Config{})
	if _, err := s.SubmitBatch(context.Background(), nil); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("empty batch: got %v", err)
	}
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(5)), g, 4)
	s.Close()
	_, err := s.SubmitBatch(context.Background(), []Request{{Graph: "main", Query: q}})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("closed service: got %v", err)
	}
}

// FuzzBatchGrouping drives SubmitBatch with fuzzer-chosen batch
// compositions (item count, query choice per item, config choice,
// invalid-item injection) and checks the structural invariants:
//   - results come back index-aligned, one per item;
//   - invalid items fail alone and never poison a neighbor;
//   - every distinct valid (query, config) class builds exactly ONE
//     plan (smatch_plan_builds_total moves by the group count);
//   - every item's embedding count equals its query's reference count.
func FuzzBatchGrouping(f *testing.F) {
	f.Add(uint8(4), uint16(0x1234))
	f.Add(uint8(9), uint16(0xBEEF))
	f.Add(uint8(1), uint16(7))
	f.Add(uint8(16), uint16(0xFFFF))

	g := testutil.RandomGraph(rand.New(rand.NewSource(7)), 200, 600, 3)
	var queries []*graph.Graph
	qrng := rand.New(rand.NewSource(9))
	for i := 0; i < 4; i++ {
		queries = append(queries, testutil.RandomConnectedQuery(qrng, g, 3+i%3))
	}
	algos := []core.Algorithm{core.CFL, core.GraphQL}

	f.Fuzz(func(t *testing.T, n uint8, pattern uint16) {
		nItems := int(n%20) + 1
		s := New(Config{})
		if _, err := s.RegisterGraph("main", g, false); err != nil {
			t.Fatal(err)
		}
		defer s.Close()

		type groupID struct {
			query int
			algo  int
		}
		items := make([]Request, nItems)
		want := make([]groupID, nItems) // -1 query marks an invalid item
		groups := map[groupID]bool{}
		bits := rand.New(rand.NewSource(int64(pattern)))
		for i := range items {
			r := bits.Intn(10)
			switch {
			case r == 0:
				items[i] = Request{Graph: "main", Query: nil}
				want[i] = groupID{-1, 0}
			case r == 1:
				items[i] = Request{Graph: "absent", Query: queries[0]}
				want[i] = groupID{-1, 1}
			default:
				qi, ai := bits.Intn(len(queries)), bits.Intn(len(algos))
				items[i] = Request{Graph: "main", Query: queries[qi], Algorithm: algos[ai]}
				want[i] = groupID{qi, ai}
				groups[groupID{qi, ai}] = true
			}
		}

		// Reference counts per query/config class, computed uncached.
		ref := map[groupID]uint64{}
		for gid := range groups {
			res, err := s.Submit(context.Background(), Request{Graph: "main",
				Query: queries[gid.query], Algorithm: algos[gid.algo], NoCache: true})
			if err != nil {
				t.Fatal(err)
			}
			ref[gid] = res.Result.Embeddings
		}

		before := s.metrics.planBuilds.Value()
		results, err := s.SubmitBatch(context.Background(), items)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != nItems {
			t.Fatalf("got %d results for %d items", len(results), nItems)
		}
		for i, br := range results {
			if br.Index != i {
				t.Fatalf("item %d carries index %d", i, br.Index)
			}
			if want[i].query < 0 {
				if br.Err == nil {
					t.Fatalf("invalid item %d succeeded", i)
				}
				continue
			}
			if br.Err != nil {
				t.Fatalf("valid item %d failed: %v", i, br.Err)
			}
			if br.Resp.Result.Embeddings != ref[want[i]] {
				t.Fatalf("item %d: %d embeddings, reference %d — result routed to the wrong item?",
					i, br.Resp.Result.Embeddings, ref[want[i]])
			}
		}
		if builds := s.metrics.planBuilds.Value() - before; builds != uint64(len(groups)) {
			t.Fatalf("batch built %d plans for %d distinct groups", builds, len(groups))
		}
	})
}

// TestBatcherCoalescesConcurrentSubmits pins the batcher's purpose:
// concurrent singleton submissions of one hot query coalesce into far
// fewer SubmitBatch calls, all delivering the correct result.
func TestBatcherCoalescesConcurrentSubmits(t *testing.T) {
	s, g := newTestService(t, Config{})
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(31)), g, 4)
	ref, err := s.Submit(context.Background(), Request{Graph: "main", Query: q, Algorithm: core.CFL})
	if err != nil {
		t.Fatal(err)
	}

	b := s.NewBatcher(BatcherConfig{MaxBatch: 16, MaxWait: 20 * time.Millisecond})
	defer b.Close()
	const n = 48
	var wg sync.WaitGroup
	errs := make([]error, n)
	resps := make([]*Response, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = b.Submit(context.Background(),
				Request{Graph: "main", Query: q, Algorithm: core.CFL})
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		if resps[i].Result.Embeddings != ref.Result.Embeddings {
			t.Fatalf("submit %d: %d embeddings, want %d",
				i, resps[i].Result.Embeddings, ref.Result.Embeddings)
		}
	}
	st := s.Stats()
	if st.Batches.Batches >= n {
		t.Fatalf("%d batches for %d submits: nothing coalesced", st.Batches.Batches, n)
	}
	if st.Batches.Items != n {
		t.Fatalf("batches carried %d items, want %d", st.Batches.Items, n)
	}
	if st.Batches.Deduped == 0 {
		t.Fatal("identical coalesced submissions should have deduplicated")
	}
}

// TestBatcherSingletonFlushesOnDeadline: one lone request must not wait
// for a full batch — the MaxWait deadline flushes it.
func TestBatcherSingletonFlushesOnDeadline(t *testing.T) {
	s, g := newTestService(t, Config{})
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(31)), g, 4)
	b := s.NewBatcher(BatcherConfig{MaxBatch: 1024, MaxWait: 5 * time.Millisecond})
	defer b.Close()
	done := make(chan error, 1)
	go func() {
		_, err := b.Submit(context.Background(), Request{Graph: "main", Query: q})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("singleton request never flushed")
	}
}

// TestBatcherClose drains pending work and fails later submits typed.
func TestBatcherClose(t *testing.T) {
	s, g := newTestService(t, Config{})
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(31)), g, 4)
	b := s.NewBatcher(BatcherConfig{MaxBatch: 64, MaxWait: time.Hour})
	done := make(chan error, 1)
	go func() {
		_, err := b.Submit(context.Background(), Request{Graph: "main", Query: q})
		done <- err
	}()
	// Wait until the item is enqueued, then close: the close flush must
	// still run it.
	time.Sleep(20 * time.Millisecond)
	b.Close()
	if err := <-done; err != nil {
		t.Fatalf("pending item at Close: %v", err)
	}
	if _, err := b.Submit(context.Background(), Request{Graph: "main", Query: q}); !errors.Is(err, ErrBatcherClosed) {
		t.Fatalf("submit after Close: got %v", err)
	}
	b.Close() // idempotent
}

// TestConcurrentBatchStress hammers SubmitBatch and a batcher from many
// goroutines over shared plans while graphs hot-swap underneath — the
// race-stress surface for the batched path ('Stress' puts it in `make
// race-stress`).
func TestConcurrentBatchStress(t *testing.T) {
	s, g := newTestService(t, Config{MaxInFlight: 8, MaxQueue: 256, PlanCacheBytes: 1 << 20})
	rng := rand.New(rand.NewSource(41))
	var queries []*graph.Graph
	for i := 0; i < 6; i++ {
		queries = append(queries, testutil.RandomConnectedQuery(rng, g, 3+i%3))
	}
	b := s.NewBatcher(BatcherConfig{MaxBatch: 8, MaxWait: time.Millisecond})
	defer b.Close()

	const goroutines = 32
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lrng := rand.New(rand.NewSource(int64(w)))
			for iter := 0; iter < 8; iter++ {
				switch w % 3 {
				case 0: // direct batches
					items := make([]Request, 1+lrng.Intn(6))
					for i := range items {
						items[i] = Request{Graph: "main",
							Query: queries[lrng.Intn(len(queries))], Algorithm: core.CFL}
					}
					results, err := s.SubmitBatch(context.Background(), items)
					if err != nil {
						t.Error(err)
						return
					}
					for i, br := range results {
						if br.Err != nil && !errors.Is(br.Err, ErrOverloaded) {
							t.Errorf("item %d: %v", i, br.Err)
							return
						}
					}
				case 1: // coalesced singletons
					_, err := b.Submit(context.Background(), Request{Graph: "main",
						Query: queries[lrng.Intn(len(queries))], Algorithm: core.CFL})
					if err != nil && !errors.Is(err, ErrOverloaded) {
						t.Error(err)
						return
					}
				case 2: // hot-swap churn under the batches
					if _, err := s.RegisterGraph("main", g, true); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// The reconciliation invariant must hold after the storm.
	st := s.Stats().Cache
	resident := uint64(st.Size)
	if got := resident + st.Evictions + st.Purged; got > s.metrics.planBuilds.Value() {
		t.Fatalf("cache accounting leaked: size %d + evictions %d + purged %d > builds %d",
			resident, st.Evictions, st.Purged, s.metrics.planBuilds.Value())
	}
	if st.BudgetBytes > 0 && st.SizeBytes > st.BudgetBytes {
		t.Fatalf("resident %d bytes exceeds budget %d", st.SizeBytes, st.BudgetBytes)
	}
}
