package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one node of a request's phase breakdown: a named wall-time
// interval with typed attributes and child phases. The matching pipeline
// builds spans at phase boundaries (filter stages, candidate-space
// build, ordering, enumeration) — never per search node — so tracing
// costs a handful of allocations per request and leaves the zero-alloc
// enumeration hot path untouched.
//
// A span is mutable while its phase runs and must be treated as
// immutable once attached to a Result: cached plans share their
// preprocessing span across every request that hits them. The accessor
// methods additionally lock per span, so concurrent builders (parallel
// batch groups attaching children, the flight recorder reading a live
// span) stay race-free; the direct field reads tests and renderers of
// *finished* spans perform need no lock. Spans must not be copied by
// value.
type Span struct {
	mu       sync.Mutex
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
	Children []*Span
}

// Attr is one key/value annotation on a span. Values are kept typed so
// the slow-query log serializes counts as JSON numbers.
type Attr struct {
	Key   string
	Value any
}

// NewSpan builds a completed span from an already-measured interval —
// the common case in the pipeline, which times phases with time.Now
// pairs anyway.
func NewSpan(name string, start time.Time, d time.Duration) *Span {
	return &Span{Name: name, Start: start, Duration: d}
}

// StartSpan begins a span now; pair with End.
func StartSpan(name string) *Span {
	return &Span{Name: name, Start: time.Now()}
}

// End fixes the span's duration to the time elapsed since Start.
func (s *Span) End() {
	s.mu.Lock()
	s.Duration = time.Since(s.Start)
	s.mu.Unlock()
}

// SetAttr appends (or replaces) an attribute.
func (s *Span) SetAttr(key string, value any) *Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.Attrs {
		if s.Attrs[i].Key == key {
			s.Attrs[i].Value = value
			return s
		}
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
	return s
}

// Attr returns the value of the named attribute, nil if absent.
func (s *Span) Attr(key string) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return nil
}

// AddChild appends a child span (nil children are ignored, which lets
// callers attach optional phases unconditionally).
func (s *Span) AddChild(c *Span) *Span {
	if c != nil {
		s.mu.Lock()
		s.Children = append(s.Children, c)
		s.mu.Unlock()
	}
	return s
}

// Child returns the first child with the given name, nil if absent.
func (s *Span) Child(name string) *Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// snapshot copies the span's fields under its lock: the scalar fields by
// value and fresh slices for attrs/children, so the caller can walk them
// (and recurse into children, which lock themselves) without holding the
// lock.
func (s *Span) snapshot() (name string, start time.Time, d time.Duration, attrs []Attr, children []*Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	name, start, d = s.Name, s.Start, s.Duration
	attrs = append(attrs, s.Attrs...)
	children = append(children, s.Children...)
	return
}

// ChildrenDuration sums the direct children's durations — the quantity
// that must stay within the span's own duration for a well-nested trace.
func (s *Span) ChildrenDuration() time.Duration {
	_, _, _, _, children := s.snapshot()
	var d time.Duration
	for _, c := range children {
		c.mu.Lock()
		d += c.Duration
		c.mu.Unlock()
	}
	return d
}

// spanJSON is the wire shape of a span in the slow-query log and the
// HTTP trace response.
type spanJSON struct {
	Name       string         `json:"name"`
	DurationNS int64          `json:"duration_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*Span        `json:"children,omitempty"`
}

// MarshalJSON renders {"name":..., "duration_ns":..., "attrs":{...},
// "children":[...]} with attrs as an object keyed by attribute name.
func (s *Span) MarshalJSON() ([]byte, error) {
	name, _, d, attrs, children := s.snapshot()
	j := spanJSON{Name: name, DurationNS: d.Nanoseconds(), Children: children}
	if len(attrs) > 0 {
		j.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			j.Attrs[a.Key] = a.Value
		}
	}
	return json.Marshal(j)
}

// UnmarshalJSON restores a span tree written by MarshalJSON. Attribute
// map order is not preserved; attrs come back sorted by key.
func (s *Span) UnmarshalJSON(b []byte) error {
	var j spanJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	keys := make([]string, 0, len(j.Attrs))
	for k := range j.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Name = j.Name
	s.Duration = time.Duration(j.DurationNS)
	s.Children = j.Children
	s.Attrs = nil
	for _, k := range keys {
		s.Attrs = append(s.Attrs, Attr{Key: k, Value: j.Attrs[k]})
	}
	return nil
}

// Render writes the span tree as an indented table: name, duration, and
// the attributes on one line per span. Durations are rounded for
// readability; a zero duration (annotation-only spans, e.g. per-worker
// tallies) prints as "-".
func (s *Span) Render(w io.Writer) {
	s.render(w, 0)
}

func (s *Span) render(w io.Writer, depth int) {
	name, _, dur, attrs, children := s.snapshot()
	indent := strings.Repeat("  ", depth)
	d := "-"
	if dur > 0 {
		d = dur.Round(time.Microsecond).String()
	}
	fmt.Fprintf(w, "%-36s %12s", indent+name, d)
	for _, a := range attrs {
		fmt.Fprintf(w, "  %s=%v", a.Key, a.Value)
	}
	fmt.Fprintln(w)
	for _, c := range children {
		c.render(w, depth+1)
	}
}
