package service

import (
	"container/list"
	"context"
	"sync"
	"time"
)

// semaphore is a weighted counting semaphore with strict-FIFO waiters, a
// bounded wait queue, a per-acquire wait deadline, and per-tenant queue
// fairness. It is the admission controller: capacity is the total number
// of enumeration workers the service lets run at once, and each request
// acquires its worker count before preprocessing or enumerating
// anything. Overload therefore surfaces as a typed error at the front
// door instead of an unbounded goroutine pileup behind it.
//
// Strict FIFO (no small-request bypass) keeps heavy parallel requests
// from starving: a waiter at the head blocks later light requests until
// it fits, trading a little throughput for a wait-time bound.
//
// Fairness is per tenant (the service keys tenants by graph name): one
// tenant may occupy at most a maxShare fraction of the wait-queue
// slots. Without the clamp, a hot tenant flooding requests fills the
// entire bounded queue, and every other tenant's arrival bounces with
// ErrQueueFull — the queue *is* the starvation surface, because
// admission itself is work-conserving FIFO. With the clamp, the flood
// saturates its own share (typed ErrTenantSaturated, a retryable 503 at
// the transport), the rest of the queue stays reachable for everyone
// else, and a cold tenant's wait is bounded by the flooder's share of
// the queue ahead of it instead of the whole queue.
type semaphore struct {
	mu       sync.Mutex
	capacity int64
	inUse    int64
	waiters  list.List // of *semWaiter, front = oldest
	// maxShare is the largest fraction of the queue one tenant may hold
	// (0 disables the clamp). queuedBy tracks the live per-tenant queue
	// occupancy; entries are deleted at zero so churn over ephemeral
	// graph names leaves no residue.
	maxShare float64
	queuedBy map[string]int
}

type semWaiter struct {
	tenant string
	weight int64
	ready  chan struct{} // closed when the slot is granted
}

func newSemaphore(capacity int64, maxShare float64) *semaphore {
	if capacity < 1 {
		capacity = 1
	}
	return &semaphore{
		capacity: capacity,
		maxShare: maxShare,
		queuedBy: make(map[string]int),
	}
}

// clampWeight bounds a request's weight to the total capacity so an
// oversized request degrades to "the whole machine" instead of
// deadlocking the queue.
func (s *semaphore) clampWeight(w int64) int64 {
	if w < 1 {
		return 1
	}
	if w > s.capacity {
		return s.capacity
	}
	return w
}

// tenantQueueCap is the largest number of queue slots one tenant may
// hold under maxShare. At least 1 — fairness must never make a queue a
// tenant could otherwise use completely unreachable.
func (s *semaphore) tenantQueueCap(maxQueue int) int {
	if s.maxShare <= 0 || s.maxShare >= 1 {
		return maxQueue
	}
	cap := int(s.maxShare * float64(maxQueue))
	if cap < 1 {
		cap = 1
	}
	return cap
}

// acquire obtains weight units for the tenant, waiting at most maxWait
// (0 = no waiting) behind at most maxQueue earlier waiters. It returns
// nil on success, ErrQueueFull / ErrTenantSaturated / ErrQueueTimeout
// on overload, or ctx.Err() if the context ends first.
func (s *semaphore) acquire(ctx context.Context, tenant string, weight int64, maxWait time.Duration, maxQueue int) error {
	weight = s.clampWeight(weight)
	s.mu.Lock()
	if s.inUse+weight <= s.capacity && s.waiters.Len() == 0 {
		s.inUse += weight
		s.mu.Unlock()
		return nil
	}
	if maxWait <= 0 || s.waiters.Len() >= maxQueue {
		s.mu.Unlock()
		return ErrQueueFull
	}
	// The fairness clamp: a tenant already holding its share of the
	// queue is saturated even though the queue as a whole has room.
	if s.queuedBy[tenant] >= s.tenantQueueCap(maxQueue) {
		s.mu.Unlock()
		return ErrTenantSaturated
	}
	w := &semWaiter{tenant: tenant, weight: weight, ready: make(chan struct{})}
	elem := s.waiters.PushBack(w)
	s.queuedBy[tenant]++
	s.mu.Unlock()

	timer := time.NewTimer(maxWait)
	defer timer.Stop()
	var err error
	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		err = ctx.Err()
	case <-timer.C:
		err = ErrQueueTimeout
	}
	// Lost the race between grant and give-up? The grant wins for a
	// timeout (the slot is here, use it) but not for a dead context.
	s.mu.Lock()
	select {
	case <-w.ready:
		s.mu.Unlock()
		if ctx.Err() != nil {
			s.release(weight)
			return err
		}
		return nil
	default:
		s.waiters.Remove(elem)
		s.unqueueLocked(tenant)
		// Removing a waiter can unblock the ones behind it.
		s.grantLocked()
		s.mu.Unlock()
		return err
	}
}

// release returns weight units and wakes eligible waiters in FIFO order.
func (s *semaphore) release(weight int64) {
	weight = s.clampWeight(weight)
	s.mu.Lock()
	s.inUse -= weight
	if s.inUse < 0 {
		panic("service: semaphore released more than acquired")
	}
	s.grantLocked()
	s.mu.Unlock()
}

func (s *semaphore) grantLocked() {
	for e := s.waiters.Front(); e != nil; e = s.waiters.Front() {
		w := e.Value.(*semWaiter)
		if s.inUse+w.weight > s.capacity {
			return
		}
		s.inUse += w.weight
		s.waiters.Remove(e)
		s.unqueueLocked(w.tenant)
		close(w.ready)
	}
}

// unqueueLocked drops one queue-occupancy unit for the tenant, deleting
// the map entry at zero so per-tenant state stays bounded.
func (s *semaphore) unqueueLocked(tenant string) {
	if n := s.queuedBy[tenant] - 1; n > 0 {
		s.queuedBy[tenant] = n
	} else {
		delete(s.queuedBy, tenant)
	}
}

// load reports the current occupancy and queue depth.
func (s *semaphore) load() (capacity, inUse int64, queued int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.capacity, s.inUse, s.waiters.Len()
}

// tenantQueued reports the tenant's current queue occupancy (tests and
// stats).
func (s *semaphore) tenantQueued(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queuedBy[tenant]
}
