package filter

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/testutil"
)

// expected final candidate sets on the paper's Figure 1 running example
// for the strong structural filters.
var paperRefined = [][]uint32{{0}, {2, 4}, {3, 5}, {10, 12}}

func TestLDFOnPaperExample(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	got := RunLDF(q, g)
	// v8 (label D) has degree 1 < d(u3)=2, so LDF already excludes it.
	want := [][]uint32{{0}, {2, 4, 6}, {1, 3, 5}, {10, 12}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("LDF = %v, want %v", got, want)
	}
}

func TestNLFOnPaperExample(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	got := RunNLF(q, g)
	// NLF removes v8 from C(u3) (no B neighbor) and v7 never qualifies.
	want := [][]uint32{{0}, {2, 4, 6}, {1, 3, 5}, {10, 12}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NLF = %v, want %v", got, want)
	}
}

func TestGraphQLOnPaperExample(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	got := RunGraphQL(q, g, DefaultGQLRounds)
	// Example 3.1: v1 is removed from C(u2) by the semi-perfect matching
	// test; v6 falls for the same reason (no candidate neighbor for u2).
	if !reflect.DeepEqual(got, paperRefined) {
		t.Errorf("GQL = %v, want %v", got, paperRefined)
	}
}

func TestCFLOnPaperExample(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	if root := CFLRoot(q, g); root != 0 {
		t.Fatalf("CFLRoot = u%d, want u0 (as in Example 3.2)", root)
	}
	got := RunCFL(q, g)
	// Example 3.2: generation removes v6 via non-tree edge e(u1,u2);
	// bottom-up refinement removes v1 (no neighbor in C(u3)).
	if !reflect.DeepEqual(got, paperRefined) {
		t.Errorf("CFL = %v, want %v", got, paperRefined)
	}
}

func TestCECIOnPaperExample(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	if root := CECIRoot(q, g); root != 0 {
		t.Fatalf("CECIRoot = u%d, want u0 (as in Example 3.3)", root)
	}
	got := RunCECI(q, g)
	if !reflect.DeepEqual(got, paperRefined) {
		t.Errorf("CECI = %v, want %v", got, paperRefined)
	}
}

func TestDPIsoOnPaperExample(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	if root := DPIsoRoot(q, g); root != 0 {
		t.Fatalf("DPIsoRoot = u%d, want u0 (as in Example 3.4)", root)
	}
	got := RunDPIso(q, g, DefaultDPIsoPasses)
	if !reflect.DeepEqual(got, paperRefined) {
		t.Errorf("DPiso = %v, want %v", got, paperRefined)
	}
}

func TestSteadyOnPaperExample(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	got := RunSteady(q, g)
	if !reflect.DeepEqual(got, paperRefined) {
		t.Errorf("STEADY = %v, want %v", got, paperRefined)
	}
}

func TestRunDispatch(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	for _, m := range Methods() {
		cand, err := Run(m, q, g)
		if err != nil {
			t.Fatalf("Run(%v): %v", m, err)
		}
		if len(cand) != q.NumVertices() {
			t.Fatalf("Run(%v) returned %d sets", m, len(cand))
		}
	}
}

func TestRunRejectsBadQueries(t *testing.T) {
	g := testutil.PaperData()
	empty := graph.MustFromEdges(nil, nil)
	if _, err := Run(LDF, empty, g); err == nil {
		t.Error("expected error for empty query")
	}
	disconnected := graph.MustFromEdges([]graph.Label{0, 0, 0}, [][2]graph.Vertex{{0, 1}})
	if _, err := Run(LDF, disconnected, g); err == nil {
		t.Error("expected error for disconnected query")
	}
}

func TestMethodStringAndParse(t *testing.T) {
	for _, m := range Methods() {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMethod(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMethod("nope"); err == nil {
		t.Error("ParseMethod should reject unknown names")
	}
	if s := Method(99).String(); s != "Method(99)" {
		t.Errorf("unknown method String = %q", s)
	}
}

func TestMeanCandidatesAndAnyEmpty(t *testing.T) {
	cand := [][]uint32{{1, 2}, {3}, {}}
	if got := MeanCandidates(cand); got != 1.0 {
		t.Errorf("MeanCandidates = %v, want 1.0", got)
	}
	if !AnyEmpty(cand) {
		t.Error("AnyEmpty should be true")
	}
	if AnyEmpty([][]uint32{{1}}) {
		t.Error("AnyEmpty should be false")
	}
	if MeanCandidates(nil) != 0 {
		t.Error("MeanCandidates(nil) should be 0")
	}
}

// subsetOf reports whether a ⊆ b for sorted slices.
func subsetOf(a, b []uint32) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j == len(b) || b[j] != x {
			return false
		}
	}
	return true
}

// TestCompletenessProperty is the core safety property: every filtering
// method must keep every data vertex that participates in any match
// (Definition 2.2), and must never produce more candidates than LDF.
func TestCompletenessProperty(t *testing.T) {
	methods := Methods()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 12+rng.Intn(20), 30+rng.Intn(40), 2+rng.Intn(3))
		q := testutil.RandomConnectedQuery(rng, g, 3+rng.Intn(4))
		if q == nil {
			return true
		}
		matches := testutil.BruteForceMatches(q, g)
		ldf := RunLDF(q, g)
		for _, m := range methods {
			cand, err := Run(m, q, g)
			if err != nil {
				t.Logf("Run(%v): %v", m, err)
				return false
			}
			for u := 0; u < q.NumVertices(); u++ {
				if !subsetOf(cand[u], ldf[u]) {
					t.Logf("%v: C(u%d)=%v not a subset of LDF=%v", m, u, cand[u], ldf[u])
					return false
				}
			}
			for _, match := range matches {
				for u, v := range match {
					found := false
					for _, c := range cand[u] {
						if c == v {
							found = true
							break
						}
					}
					if !found {
						t.Logf("%v: match vertex v%d missing from C(u%d)=%v", m, v, u, cand[u])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSteadyIsStrongest: the steady state is a subset of every
// NLF-initialized structural filter's result (CFL, CECI, DP-iso all stop
// refining before the fix point).
func TestSteadyIsTightestStructuralFilter(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 15+rng.Intn(15), 40+rng.Intn(30), 3)
		q := testutil.RandomConnectedQuery(rng, g, 4)
		if q == nil {
			return true
		}
		steady := RunSteady(q, g)
		for _, m := range []Method{NLF, CFL, CECI, DPIso} {
			cand, _ := Run(m, q, g)
			for u := range steady {
				if !subsetOf(steady[u], cand[u]) {
					t.Logf("steady C(u%d)=%v not subset of %v's %v", u, steady[u], m, cand[u])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCandidateSetsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := testutil.RandomGraph(rng, 30, 80, 3)
	q := testutil.RandomConnectedQuery(rng, g, 5)
	if q == nil {
		t.Skip("no query extracted")
	}
	for _, m := range Methods() {
		cand, err := Run(m, q, g)
		if err != nil {
			t.Fatalf("Run(%v): %v", m, err)
		}
		for u, c := range cand {
			for i := 1; i < len(c); i++ {
				if c[i-1] >= c[i] {
					t.Fatalf("%v: C(u%d) not strictly sorted: %v", m, u, c)
				}
			}
		}
	}
}
