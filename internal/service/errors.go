// Package service is the long-lived matching layer behind smatchd: a
// named registry of immutable data graphs, a bounded LRU cache of
// preprocessing plans keyed by query fingerprint, weighted admission
// control over the enumeration workers, and per-workload statistics.
// The package is transport-agnostic — cmd/smatchd puts HTTP in front of
// it, tests drive it directly.
//
// The design follows the paper's decomposition (Sun & Luo, SIGMOD 2020):
// preprocessing (filtering + candidate-space construction + ordering)
// dominates short queries, so a resident service that reuses plans
// across repeated queries skips straight to enumeration — the
// serving-time win the compact-neighborhood-index line of work
// (Nabti & Seba) gets from persistent per-graph structures. Per-request
// deadlines and cooperative cancellation keep adversarial queries
// (Zeng et al.'s deep analysis) from pinning workers.
package service

import (
	"errors"
	"fmt"
)

// Typed service errors. The degenerate-input errors (ErrEmptyQuery and
// friends) come from core.Validate and are not redeclared here; a
// transport maps both families onto status codes with errors.Is.
var (
	// ErrUnknownGraph reports a request naming a graph the registry does
	// not hold.
	ErrUnknownGraph = errors.New("service: unknown graph")
	// ErrDuplicateGraph reports RegisterGraph on a name already
	// registered without the replace flag.
	ErrDuplicateGraph = errors.New("service: graph already registered")
	// ErrInvalidGraphName reports an empty or oversized graph name.
	ErrInvalidGraphName = errors.New("service: invalid graph name")
	// ErrOverloaded is the base overload error: admission control
	// rejected the request instead of queueing it unboundedly. The two
	// concrete variants below wrap it, so errors.Is(err, ErrOverloaded)
	// catches both.
	ErrOverloaded = errors.New("service: overloaded")
	// ErrQueueFull reports that the admission wait queue was already at
	// its configured depth — the request was rejected immediately.
	ErrQueueFull = fmt.Errorf("admission queue full: %w", ErrOverloaded)
	// ErrQueueTimeout reports that the request waited its full queue-wait
	// budget without a worker slot freeing up.
	ErrQueueTimeout = fmt.Errorf("queue wait limit exceeded: %w", ErrOverloaded)
	// ErrTenantSaturated reports that the request's graph already holds
	// its maximum share of the admission queue (Config.MaxGraphShare) —
	// the tenant is flooding, and admitting more of its requests would
	// starve the other graphs. Wraps ErrOverloaded, so transports map it
	// to the same retryable 503.
	ErrTenantSaturated = fmt.Errorf("graph's admission-queue share exhausted: %w", ErrOverloaded)
	// ErrEmptyBatch reports SubmitBatch with no items.
	ErrEmptyBatch = errors.New("service: empty batch")
	// ErrBatcherClosed reports a batcher submit after its Close.
	ErrBatcherClosed = errors.New("service: batcher closed")
	// ErrNilCallback reports Stream with a nil sink.
	ErrNilCallback = errors.New("service: nil embedding sink")
	// ErrNilQuery reports a request without a query graph.
	ErrNilQuery = errors.New("service: nil query graph")
	// ErrNoExplain reports an Explain request against an external engine
	// (Glasgow, VF2, Ullmann): those run outside the filter/order/enumerate
	// pipeline, so there is no preprocessing plan to explain.
	ErrNoExplain = errors.New("service: algorithm has no plan to explain")
	// ErrClosed reports a submit after Close.
	ErrClosed = errors.New("service: closed")
)
