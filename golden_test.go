package subgraphmatching_test

import (
	"testing"

	sm "subgraphmatching"
)

// TestGoldenCountsOnYeastStandIn pins end-to-end embedding counts on the
// deterministic ye stand-in: the dataset generator, the query sampler
// and the whole matching pipeline must keep producing exactly these
// numbers. Any change to a generator's random stream or to matching
// semantics shows up here.
func TestGoldenCountsOnYeastStandIn(t *testing.T) {
	g, err := sm.Dataset("ye")
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct {
		size    int
		density sm.QueryDensity
		seed    int64
		idx     int
		want    uint64
	}{
		{4, sm.QueryAny, 100, 0, 5},
		{4, sm.QueryAny, 100, 1, 1},
		{4, sm.QueryAny, 100, 2, 5},
		{8, sm.QueryDense, 101, 0, 1},
		{8, sm.QueryDense, 101, 1, 1},
		{8, sm.QueryDense, 101, 2, 1},
		{8, sm.QuerySparse, 102, 0, 6},
		{8, sm.QuerySparse, 102, 1, 2},
		{8, sm.QuerySparse, 102, 2, 2},
		{16, sm.QueryDense, 103, 0, 2},
		{16, sm.QueryDense, 103, 1, 1},
		{16, sm.QueryDense, 103, 2, 1},
	}
	type key struct {
		size int
		d    sm.QueryDensity
		seed int64
	}
	queries := map[key][]*sm.Graph{}
	for _, c := range golden {
		k := key{c.size, c.density, c.seed}
		if queries[k] == nil {
			qs, err := sm.GenerateQueries(g, sm.QueryConfig{
				NumVertices: c.size, Count: 3, Density: c.density, Seed: c.seed,
			})
			if err != nil {
				t.Fatalf("GenerateQueries(%+v): %v", k, err)
			}
			queries[k] = qs
		}
	}
	for _, c := range golden {
		q := queries[key{c.size, c.density, c.seed}][c.idx]
		// Every preset must reproduce the golden count, not only the
		// one that computed it.
		for _, a := range []sm.Algorithm{sm.AlgoOptimized, sm.AlgoDPIso, sm.AlgoRI, sm.AlgoGraphQL} {
			got, err := sm.Count(q, g, sm.Options{Algorithm: a, MaxEmbeddings: 100_000})
			if err != nil {
				t.Fatalf("%v on size=%d seed=%d idx=%d: %v", a, c.size, c.seed, c.idx, err)
			}
			if got != c.want {
				t.Errorf("%v on size=%d density=%v seed=%d idx=%d: %d embeddings, golden %d",
					a, c.size, c.density, c.seed, c.idx, got, c.want)
			}
		}
	}
}
