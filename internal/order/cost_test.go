package order

import (
	"math/rand"
	"testing"

	"subgraphmatching/internal/candspace"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/testutil"
)

func costFixture(t *testing.T) (*graph.Graph, *graph.Graph, [][]uint32, *candspace.Space) {
	t.Helper()
	q, g := testutil.PaperQuery(), testutil.PaperData()
	cand, err := filter.Run(filter.GQL, q, g)
	if err != nil {
		t.Fatal(err)
	}
	return q, g, cand, candspace.BuildFull(q, g, cand)
}

func TestEstimateCostBasics(t *testing.T) {
	q, g, cand, space := costFixture(t)
	_ = g
	phi, _ := Compute(GQL, q, g, cand)
	cost := EstimateCost(q, space, phi)
	if cost <= 0 {
		t.Fatalf("cost = %v, want > 0", cost)
	}
	// Cost must include at least the root candidates.
	if cost < float64(len(space.Candidates(phi[0]))) {
		t.Errorf("cost %v below root candidate count", cost)
	}
	// Degenerate inputs.
	if EstimateCost(q, space, nil) != 0 {
		t.Error("nil order should cost 0")
	}
	empty := graph.MustFromEdges(nil, nil)
	if EstimateCost(empty, space, nil) != 0 {
		t.Error("empty query should cost 0")
	}
}

func TestEstimateCostPrefersSelectiveStart(t *testing.T) {
	q, g, cand, space := costFixture(t)
	_ = g
	_ = cand
	// Starting at u0 (1 candidate) must not cost more than starting at
	// u1 (2 candidates) with an otherwise-identical BFS shape.
	costFrom := func(root graph.Vertex) float64 {
		tr := graph.NewBFSTree(q, root)
		return EstimateCost(q, space, tr.Order)
	}
	if costFrom(0) > costFrom(1) {
		t.Errorf("cost from u0 (%v) > cost from u1 (%v)", costFrom(0), costFrom(1))
	}
}

func TestBestReturnsValidOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		g := testutil.RandomGraph(rng, 30, 90, 3)
		q := testutil.RandomConnectedQuery(rng, g, 5)
		if q == nil {
			continue
		}
		cand, err := filter.Run(filter.GQL, q, g)
		if err != nil || filter.AnyEmpty(cand) {
			continue
		}
		space := candspace.BuildFull(q, g, cand)
		m, phi, err := Best(q, g, cand, space)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(q, phi); err != nil {
			t.Fatalf("Best(%v) returned invalid order: %v", m, err)
		}
		// Best's cost must be minimal among all methods.
		bestCost := EstimateCost(q, space, phi)
		for _, om := range Methods() {
			p2, err := Compute(om, q, g, cand)
			if err != nil {
				t.Fatal(err)
			}
			if c := EstimateCost(q, space, p2); c < bestCost {
				t.Errorf("method %v has cost %v below Best's %v", om, c, bestCost)
			}
		}
	}
}
