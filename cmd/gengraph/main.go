// Command gengraph generates graphs in the text format: synthetic R-MAT
// power-law graphs (the paper's synthetic datasets) or one of the eight
// dataset stand-ins.
//
// Usage:
//
//	gengraph -o data.graph -n 100000 -m 800000 -labels 16 [-seed 1] [-skew 0]
//	gengraph -o yeast.graph -dataset ye
//	gengraph -list
package main

import (
	"flag"
	"fmt"
	"os"

	sm "subgraphmatching"
)

func main() {
	var (
		out      = flag.String("o", "", "output file (required unless -list)")
		n        = flag.Int("n", 10000, "number of vertices")
		m        = flag.Int("m", 80000, "number of edges")
		labels   = flag.Int("labels", 16, "label-set size")
		seed     = flag.Int64("seed", 1, "random seed")
		skew     = flag.Float64("skew", 0, "probability mass of label 0 (0 = uniform)")
		dataset  = flag.String("dataset", "", "generate a dataset stand-in (ye hu hp wn up yt db eu) instead of plain R-MAT")
		edgeList = flag.String("from-edgelist", "", "convert a SNAP-style edge list (random labels, see -labels/-seed)")
		list     = flag.Bool("list", false, "list dataset stand-ins and exit")
	)
	flag.Parse()
	if err := run(*out, *n, *m, *labels, *seed, *skew, *dataset, *edgeList, *list); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run(out string, n, m, labels int, seed int64, skew float64, dataset, edgeList string, list bool) error {
	if list {
		fmt.Printf("%-4s %-10s %-9s %10s %10s %7s %7s\n",
			"name", "original", "category", "|V|", "|E|", "labels", "degree")
		for _, i := range sm.DatasetCatalog() {
			fmt.Printf("%-4s %-10s %-9s %10d %10d %7d %7.1f\n",
				i.Name, i.FullName, i.Category, i.Vertices, i.Edges, i.Labels, i.AvgDegree())
		}
		return nil
	}
	if out == "" {
		return fmt.Errorf("-o is required")
	}
	var g *sm.Graph
	var err error
	switch {
	case dataset != "" && edgeList != "":
		return fmt.Errorf("-dataset and -from-edgelist are mutually exclusive")
	case dataset != "":
		g, err = sm.Dataset(dataset)
	case edgeList != "":
		g, err = sm.LoadEdgeList(edgeList, labels, seed)
	default:
		g, err = sm.GenerateRMAT(sm.RMATConfig{
			NumVertices: n, NumEdges: m, NumLabels: labels, Seed: seed, LabelSkew: skew,
		})
	}
	if err != nil {
		return err
	}
	if err := sm.SaveGraph(out, g); err != nil {
		return err
	}
	fmt.Printf("wrote %v to %s\n", g, out)
	return nil
}
