package order

import (
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
)

// The candidate-size-driven orders: GraphQL, CECI and DP-iso's static
// part.

// ComputeGQL implements GraphQL's left-deep join ordering: start with the
// vertex whose candidate set is smallest, then repeatedly append the
// neighbor of the current prefix with the smallest candidate set.
func ComputeGQL(q *graph.Graph, cand [][]uint32) []graph.Vertex {
	n := q.NumVertices()
	phi := make([]graph.Vertex, 0, n)
	in := make([]bool, n)

	start := graph.Vertex(0)
	for u := 1; u < n; u++ {
		if len(cand[u]) < len(cand[start]) {
			start = graph.Vertex(u)
		}
	}
	phi = append(phi, start)
	in[start] = true
	for len(phi) < n {
		best := graph.NoVertex
		for u := 0; u < n; u++ {
			uu := graph.Vertex(u)
			if in[u] {
				continue
			}
			frontier := false
			for _, up := range q.Neighbors(uu) {
				if in[up] {
					frontier = true
					break
				}
			}
			if !frontier {
				continue
			}
			if best == graph.NoVertex || len(cand[u]) < len(cand[best]) {
				best = uu
			}
		}
		phi = append(phi, best)
		in[best] = true
	}
	return phi
}

// ComputeCECI returns CECI's matching order: the BFS traversal of q from
// CECI's root (argmin |C_NLF(u)|/d(u)).
func ComputeCECI(q, g *graph.Graph) []graph.Vertex {
	return ComputeCECIWorkers(q, g, 1)
}

// ComputeCECIWorkers is ComputeCECI with the root-selection NLF sizing
// fanned out over `workers` goroutines (same order at every count).
func ComputeCECIWorkers(q, g *graph.Graph, workers int) []graph.Vertex {
	root := filter.CECIRootWorkers(q, g, workers)
	t := graph.NewBFSTree(q, root)
	return append([]graph.Vertex(nil), t.Order...)
}

// ComputeDPIso returns DP-iso's BFS order delta from DP-iso's root
// (argmin |C_LDF(u)|/d(u)), with degree-one query vertices postponed to
// the end as the paper describes ("DP-iso decomposes the query vertices
// into the set of degree-one vertices and the set V' of the remaining
// vertices, and prioritizes the vertices in V'"). Used directly as a
// static order, or as the DAG-defining order for the enumerator's
// adaptive mode.
//
// Postponement preserves connected prefixes: a non-root vertex's BFS
// parent always has degree >= 2 (it has both a child and its own
// parent), so removing non-root degree-one vertices from the BFS order
// keeps every remaining parent in the prefix, and each postponed leaf's
// single neighbor precedes it.
func ComputeDPIso(q, g *graph.Graph) []graph.Vertex {
	return ComputeDPIsoWorkers(q, g, 1)
}

// ComputeDPIsoWorkers is ComputeDPIso with the root-selection LDF
// sizing fanned out over `workers` goroutines (same order at every
// count).
func ComputeDPIsoWorkers(q, g *graph.Graph, workers int) []graph.Vertex {
	root := filter.DPIsoRootWorkers(q, g, workers)
	t := graph.NewBFSTree(q, root)
	if q.NumVertices() < 3 {
		return append([]graph.Vertex(nil), t.Order...)
	}
	phi := make([]graph.Vertex, 0, q.NumVertices())
	for _, u := range t.Order {
		if u == root || q.Degree(u) > 1 {
			phi = append(phi, u)
		}
	}
	for _, u := range t.Order {
		if u != root && q.Degree(u) == 1 {
			phi = append(phi, u)
		}
	}
	return phi
}
