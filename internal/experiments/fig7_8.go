package experiments

import (
	"time"

	"subgraphmatching/internal/candspace"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/workload"
)

// The filtering study of Section 5.1: preprocessing time (Figure 7) and
// pruning power (Figure 8) of the four advanced filters, with LDF and
// STEADY as Figure 8's baselines.

var filterStudyMethods = []filter.Method{filter.GQL, filter.CFL, filter.CECI, filter.DPIso}
var candidateStudyMethods = []filter.Method{filter.LDF, filter.GQL, filter.CFL, filter.CECI, filter.DPIso, filter.Steady}

// filterOutcome is one (method, query) measurement.
type filterOutcome struct {
	prep       time.Duration
	candidates float64
}

// runFilterOnce measures one filtering method on one query, including
// the auxiliary-structure construction the method's algorithm performs
// (GraphQL and the baselines build none, CFL builds the tree index, CECI
// and DP-iso build the full index).
func runFilterOnce(m filter.Method, q, g *graph.Graph) (filterOutcome, error) {
	t0 := time.Now()
	cand, err := filter.Run(m, q, g)
	if err != nil {
		return filterOutcome{}, err
	}
	switch m {
	case filter.CFL:
		if !filter.AnyEmpty(cand) {
			tree := graph.NewBFSTree(q, filter.CFLRoot(q, g))
			candspace.BuildTree(q, g, cand, tree.Parent)
		}
	case filter.CECI, filter.DPIso:
		if !filter.AnyEmpty(cand) {
			candspace.BuildFull(q, g, cand)
		}
	}
	return filterOutcome{
		prep:       time.Since(t0),
		candidates: filter.MeanCandidates(cand),
	}, nil
}

// filterStudyMeans runs a method over a query set and returns mean
// preprocessing time and mean candidate count.
func filterStudyMeans(m filter.Method, set []*graph.Graph, g *graph.Graph) (time.Duration, float64) {
	var sumPrep time.Duration
	sumCand := 0.0
	n := 0
	for _, q := range set {
		out, err := runFilterOnce(m, q, g)
		if err != nil {
			continue
		}
		n++
		sumPrep += out.prep
		sumCand += out.candidates
	}
	if n == 0 {
		return 0, 0
	}
	return sumPrep / time.Duration(n), sumCand / float64(n)
}

// Fig7 reproduces Figure 7: preprocessing time of the filtering methods
// (a) across datasets, (b) across query sizes on yt, (c) dense vs sparse.
func Fig7(env Env) error {
	env = env.WithDefaults()
	section(env.Out, "Figure 7: preprocessing time of filtering methods (ms)", "Figure 7(a-c)")

	// (a) across datasets, default dense sets.
	ta := workload.Table{Title: "(a) by dataset (default dense query set)", Header: []string{"dataset"}}
	for _, m := range filterStudyMethods {
		ta.Header = append(ta.Header, m.String())
	}
	for _, ds := range env.Datasets {
		g, err := dataGraph(ds)
		if err != nil {
			return err
		}
		dense, sparse, err := defaultSets(env, ds)
		if err != nil {
			return err
		}
		set := dense
		if set == nil {
			set = sparse
		}
		row := []string{ds + "/" + set.Name}
		for _, m := range filterStudyMethods {
			prep, _ := filterStudyMeans(m, set.Queries, g)
			row = append(row, workload.FmtMS(prep))
		}
		ta.AddRow(row...)
	}
	env.render(&ta)

	// (b) vary |V(q)| on yt.
	if err := fig7bc(env, true); err != nil {
		return err
	}
	// (c) dense vs sparse on yt.
	return fig7bc(env, false)
}

func fig7bc(env Env, varySize bool) error {
	const ds = "yt"
	g, err := dataGraph(ds)
	if err != nil {
		return err
	}
	qs, err := querySets(env, ds)
	if err != nil {
		return err
	}
	var t workload.Table
	if varySize {
		t.Title = "(b) by query size on " + ds + " (dense sets)"
	} else {
		t.Title = "(c) dense vs sparse on " + ds + " (default size)"
	}
	t.Header = []string{"set"}
	for _, m := range filterStudyMethods {
		t.Header = append(t.Header, m.String())
	}
	var sets []*workload.QuerySet
	if varySize {
		for i := range qs {
			s := &qs[i]
			if s.Name == "Q4" || s.Name[len(s.Name)-1] == 'D' {
				sets = append(sets, s)
			}
		}
	} else {
		dense, sparse, err := defaultSets(env, ds)
		if err != nil {
			return err
		}
		if dense != nil {
			sets = append(sets, dense)
		}
		if sparse != nil {
			sets = append(sets, sparse)
		}
	}
	for _, s := range sets {
		row := []string{s.Name}
		for _, m := range filterStudyMethods {
			prep, _ := filterStudyMeans(m, s.Queries, g)
			row = append(row, workload.FmtMS(prep))
		}
		t.AddRow(row...)
	}
	env.render(&t)
	return nil
}

// Fig8 reproduces Figure 8: the number of candidate vertices
// (1/|V(q)|) sum |C(u)| per filtering method, with the LDF and STEADY
// baselines.
func Fig8(env Env) error {
	env = env.WithDefaults()
	section(env.Out, "Figure 8: number of candidate vertices", "Figure 8(a-c)")

	ta := workload.Table{Title: "(a) by dataset (default dense query set)", Header: []string{"dataset"}}
	for _, m := range candidateStudyMethods {
		ta.Header = append(ta.Header, m.String())
	}
	for _, ds := range env.Datasets {
		g, err := dataGraph(ds)
		if err != nil {
			return err
		}
		dense, sparse, err := defaultSets(env, ds)
		if err != nil {
			return err
		}
		set := dense
		if set == nil {
			set = sparse
		}
		row := []string{ds + "/" + set.Name}
		for _, m := range candidateStudyMethods {
			_, cands := filterStudyMeans(m, set.Queries, g)
			row = append(row, workload.FmtCount(cands))
		}
		ta.AddRow(row...)
	}
	env.render(&ta)

	// (b) by query size on yt; (c) dense vs sparse.
	const ds = "yt"
	g, err := dataGraph(ds)
	if err != nil {
		return err
	}
	qs, err := querySets(env, ds)
	if err != nil {
		return err
	}
	tb := workload.Table{Title: "(b) by query size on " + ds + " (dense sets)", Header: []string{"set"}}
	for _, m := range candidateStudyMethods {
		tb.Header = append(tb.Header, m.String())
	}
	for i := range qs {
		s := &qs[i]
		if s.Name != "Q4" && s.Name[len(s.Name)-1] != 'D' {
			continue
		}
		row := []string{s.Name}
		for _, m := range candidateStudyMethods {
			_, cands := filterStudyMeans(m, s.Queries, g)
			row = append(row, workload.FmtCount(cands))
		}
		tb.AddRow(row...)
	}
	env.render(&tb)

	dense, sparse, err := defaultSets(env, ds)
	if err != nil {
		return err
	}
	tc := workload.Table{Title: "(c) dense vs sparse on " + ds, Header: tb.Header}
	for _, s := range []*workload.QuerySet{dense, sparse} {
		if s == nil {
			continue
		}
		row := []string{s.Name}
		for _, m := range candidateStudyMethods {
			_, cands := filterStudyMeans(m, s.Queries, g)
			row = append(row, workload.FmtCount(cands))
		}
		tc.AddRow(row...)
	}
	env.render(&tc)
	return nil
}
