package bipartite

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPerfectMatchingExists(t *testing.T) {
	m := NewMatcher(3)
	m.Reset(3)
	// 0-{10,11}, 1-{10}, 2-{12}: matching 0->11, 1->10, 2->12.
	m.AddEdge(0, 10)
	m.AddEdge(0, 11)
	m.AddEdge(1, 10)
	m.AddEdge(2, 12)
	if !m.HasSemiPerfectMatching(3) {
		t.Error("expected semi-perfect matching")
	}
}

func TestPerfectMatchingMissing(t *testing.T) {
	m := NewMatcher(3)
	m.Reset(3)
	// Both 0 and 1 can only use right vertex 10.
	m.AddEdge(0, 10)
	m.AddEdge(1, 10)
	m.AddEdge(2, 12)
	if m.HasSemiPerfectMatching(3) {
		t.Error("expected no semi-perfect matching")
	}
	if got := m.MaximumMatchingSize(3); got != 2 {
		t.Errorf("MaximumMatchingSize = %d, want 2", got)
	}
}

func TestIsolatedLeftVertexFails(t *testing.T) {
	m := NewMatcher(2)
	m.Reset(2)
	m.AddEdge(0, 1)
	if m.HasSemiPerfectMatching(2) {
		t.Error("left vertex with no edges cannot be matched")
	}
}

func TestMatcherReuse(t *testing.T) {
	m := NewMatcher(2)
	m.Reset(2)
	m.AddEdge(0, 5)
	m.AddEdge(1, 5)
	if m.HasSemiPerfectMatching(2) {
		t.Fatal("first round should fail")
	}
	m.Reset(2)
	m.AddEdge(0, 5)
	m.AddEdge(1, 6)
	if !m.HasSemiPerfectMatching(2) {
		t.Fatal("second round should succeed after Reset")
	}
	// Reset growing beyond initial capacity.
	m.Reset(10)
	for i := 0; i < 10; i++ {
		m.AddEdge(i, int32(i))
	}
	if !m.HasSemiPerfectMatching(10) {
		t.Fatal("identity matching should succeed")
	}
}

// bruteMaxMatching computes maximum matching size by trying all subsets
// (inputs are tiny).
func bruteMaxMatching(nLeft int, edges [][2]int32) int {
	best := 0
	var rec func(l int, usedR map[int32]bool, size int)
	rec = func(l int, usedR map[int32]bool, size int) {
		if size > best {
			best = size
		}
		if l == nLeft {
			return
		}
		rec(l+1, usedR, size) // leave l unmatched
		for _, e := range edges {
			if int(e[0]) == l && !usedR[e[1]] {
				usedR[e[1]] = true
				rec(l+1, usedR, size+1)
				delete(usedR, e[1])
			}
		}
	}
	rec(0, map[int32]bool{}, 0)
	return best
}

func TestMaximumMatchingMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nLeft := 1 + rng.Intn(5)
		nRight := 1 + rng.Intn(5)
		var edges [][2]int32
		m := NewMatcher(nLeft)
		m.Reset(nLeft)
		for l := 0; l < nLeft; l++ {
			for r := 0; r < nRight; r++ {
				if rng.Intn(3) == 0 {
					edges = append(edges, [2]int32{int32(l), int32(r)})
					m.AddEdge(l, int32(r))
				}
			}
		}
		want := bruteMaxMatching(nLeft, edges)
		got := m.MaximumMatchingSize(nLeft)
		if got != want {
			t.Logf("matching size %d, brute force %d, edges %v", got, want, edges)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
