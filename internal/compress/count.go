package compress

import (
	"fmt"
	"time"

	"subgraphmatching/internal/graph"
)

// CountOptions bounds a Count call.
type CountOptions struct {
	// TimeLimit bounds the wall-clock search time (0 = unlimited).
	TimeLimit time.Duration
}

// CountResult reports a Count call.
type CountResult struct {
	Embeddings uint64
	Nodes      uint64
	TimedOut   bool
	Duration   time.Duration
}

// Count enumerates subgraph isomorphisms of q over the compressed graph
// and returns the exact embedding count in the original graph.
//
// Query vertices map to hypervertices; a hypervertex h of size s can
// host up to s query vertices (each stands for a distinct member), and
// the count multiplies by the remaining capacity at each placement — the
// falling factorial s·(s−1)·… per hypervertex. Two adjacent query
// vertices can share h only if its members are closed twins (pairwise
// adjacent); non-adjacent query vertices can share any multi-member
// hypervertex (open twins are pairwise non-adjacent, which is fine, and
// closed twins are a clique, which a non-edge in q does not forbid —
// subgraph isomorphism is not induced).
func Count(q *graph.Graph, c *Graph, opts CountOptions) (*CountResult, error) {
	if q.NumVertices() == 0 {
		return &CountResult{}, nil
	}
	if !q.IsConnected() {
		return nil, fmt.Errorf("compress: query graph must be connected")
	}
	s := &counter{q: q, c: c, res: &CountResult{}}
	s.order = graph.NewBFSTree(q, 0).Order
	s.assign = make([]graph.Vertex, q.NumVertices())
	s.mapped = make([]bool, q.NumVertices())
	s.used = make([]int, c.Hyper.NumVertices())
	start := time.Now()
	if opts.TimeLimit > 0 {
		s.deadline = start.Add(opts.TimeLimit)
	}
	s.rec(0, 1)
	s.res.Duration = time.Since(start)
	return s.res, nil
}

type counter struct {
	q      *graph.Graph
	c      *Graph
	res    *CountResult
	order  []graph.Vertex
	assign []graph.Vertex // query vertex -> hypervertex
	mapped []bool         // query vertex assigned?
	used   []int          // members consumed per hypervertex

	deadline time.Time
	ticker   int
	aborted  bool
}

func (s *counter) enterNode() bool {
	s.res.Nodes++
	s.ticker++
	if s.ticker >= 1<<12 {
		s.ticker = 0
		if !s.deadline.IsZero() && time.Now().After(s.deadline) {
			s.res.TimedOut = true
			s.aborted = true
			return false
		}
	}
	return true
}

// rec extends the assignment at the given depth, carrying the product of
// capacity factors accumulated so far.
func (s *counter) rec(depth int, factor uint64) {
	if !s.enterNode() || s.aborted {
		return
	}
	if depth == s.q.NumVertices() {
		s.res.Embeddings += factor
		return
	}
	u := s.order[depth]
	for h := 0; h < s.c.Hyper.NumVertices(); h++ {
		hh := graph.Vertex(h)
		remaining := s.c.Size(hh) - s.used[h]
		if remaining <= 0 {
			continue
		}
		if s.c.Hyper.Label(hh) != s.q.Label(u) || s.c.MemberDegree[h] < s.q.Degree(u) {
			continue
		}
		if !s.compatible(u, hh) {
			continue
		}
		s.assign[u] = hh
		s.mapped[u] = true
		s.used[h]++
		s.rec(depth+1, factor*uint64(remaining))
		s.used[h]--
		s.mapped[u] = false
		if s.aborted {
			return
		}
	}
}

// compatible verifies u's backward edges against the hyper topology:
// a query edge into the same hypervertex requires closed twins; into a
// different one requires a hyper edge.
func (s *counter) compatible(u, h graph.Vertex) bool {
	for _, un := range s.q.Neighbors(u) {
		if !s.mapped[un] {
			continue
		}
		hn := s.assign[un]
		if hn == h {
			if s.c.Kind[h] != ClosedTwins {
				return false
			}
			continue
		}
		if !s.c.Hyper.HasEdge(hn, h) {
			return false
		}
	}
	return true
}
