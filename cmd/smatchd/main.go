// Command smatchd serves subgraph matching over HTTP: a long-lived
// process holding named data graphs in memory, caching preprocessing
// plans across repeated queries, and bounding concurrent enumeration
// work with admission control (see internal/service).
//
// Usage:
//
//	smatchd [-addr :7733] [-graph name=path]... [-max-inflight 2*P]
//	        [-max-queue 64] [-max-queue-wait 5s] [-plan-cache 256]
//	        [-plan-cache-bytes 268435456] [-max-graph-share 0.5]
//	        [-batch-window 0] [-batch-max 32]
//	        [-data-dir path] [-mmap] [-no-persist] [-verify-snapshots]
//	        [-timeout 5m] [-pprof] [-slowlog path] [-slow-threshold 1s]
//	        [-slowlog-max-bytes 0]
//
// API:
//
//	GET    /healthz               readiness: uptime, graph count,
//	                              admission occupancy (JSON)
//	GET    /graphs                registered graphs (JSON)
//	PUT    /graphs/{name}         register graph (body: t/v/e text
//	                              format, or a binary snapshot with
//	                              Content-Type application/x-smatch-
//	                              snapshot; ?replace=1 hot-swaps)
//	DELETE /graphs/{name}         unregister
//	POST   /match                 run a query (body: query graph text)
//	       ?graph=name [&algo=Optimized] [&limit=N] [&timeout=5m]
//	       [&parallel=4] [&workers=4] [&stream=1] [&trace=1] [&explain=1]
//	POST   /match/batch           run many queries as one batch (body:
//	       JSON array of {graph, query, algo?, limit?, timeout?,
//	       parallel?, workers?, kernel?, no_cache?}); items sharing a
//	       (graph, query, config) group pass admission once and resolve
//	       one plan; duplicates run once. Response: indexed per-item
//	       results; failed items carry their /match-equivalent status.
//	       With ?stream=1: NDJSON of indexed embedding lines, then one
//	       indexed result line per item.
//	POST   /explain               EXPLAIN without ANALYZE: resolve the
//	       query's plan (cached or fresh) and return the optimizer's
//	       decisions — filter-stage candidate reduction, matching order,
//	       per-vertex cardinalities — without enumerating. Same body and
//	       parameters as /match; ?format=text renders tables.
//	GET    /stats                 serving statistics (JSON)
//	GET    /metrics               Prometheus text exposition
//	GET    /debug/tracez          flight-recorder retention: slowest
//	       requests per latency band plus recent errors; ?id=N returns
//	       one record's full span tree (&format=text renders it,
//	       &format=chrome exports a chrome://tracing trace file)
//	GET    /debug/requests        live in-flight requests with phase and
//	       elapsed time (?format=text for a table)
//	GET    /debug/pprof/...       runtime profiling (only with -pprof)
//
// With trace=1 the /match result includes the request's phase-span
// breakdown (admission wait, plan lookup or preprocessing stages,
// enumeration with per-worker tallies). With explain=1 it additionally
// carries the EXPLAIN/ANALYZE profile: per-filter-stage candidate
// reduction, the matching order with per-vertex cardinalities, and the
// per-depth enumeration heat table (nodes, candidates, conflicts,
// kernel mix). With -slowlog, requests at or above -slow-threshold
// append one NDJSON record with the span breakdown to the given file;
// -slowlog-max-bytes bounds the file by rename-and-truncate rotation
// (path -> path.1, newest records always in the live file; 0 keeps the
// log unbounded).
//
// Without stream, /match returns one JSON result object. With
// stream=1 it returns NDJSON: one {"embedding":[...]} line per match
// (written with backpressure — a slow reader slows the search), then a
// final {"result":{...}} summary line.
//
// Status mapping: unknown graph 404, invalid query or graph text 400,
// overload 503 (with Retry-After), deadline 504. Streamed requests get
// the same codes for failures that occur before the first embedding is
// written; afterwards the stream ends with an {"error":...} line.
//
// With -data-dir, smatchd runs a durable graph store (internal/store):
// every registration is snapshotted to a checksummed CSR file and
// logged to a write-ahead log before being acknowledged, and a restart
// on the same directory recovers all graphs — same names, same bytes,
// strictly monotonic generations — without re-uploading anything.
// -mmap maps recovered snapshots instead of copying them into the heap
// (near-instant restart, page-cache-resident working set);
// -verify-snapshots additionally recomputes each snapshot's sha256
// fingerprint at startup; -no-persist ignores -data-dir entirely.
// /healthz gains a "store" section with recovery and occupancy state,
// and /metrics gains smatch_store_* families.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"subgraphmatching/internal/obs"
	"subgraphmatching/internal/service"
	"subgraphmatching/internal/store"
)

// graphFlags collects repeated -graph name=path arguments.
type graphFlags []string

func (g *graphFlags) String() string     { return strings.Join(*g, ",") }
func (g *graphFlags) Set(v string) error { *g = append(*g, v); return nil }

func main() {
	var (
		addr       = flag.String("addr", ":7733", "listen address")
		inflight   = flag.Int("max-inflight", 0, "max concurrent enumeration workers (0 = 2x GOMAXPROCS)")
		queue      = flag.Int("max-queue", 0, "max queued requests (0 = 64)")
		queueWait  = flag.Duration("max-queue-wait", 0, "max admission wait (0 = 5s)")
		cacheSize  = flag.Int("plan-cache", 0, "plan cache entries (0 = 256, negative disables)")
		cacheBytes = flag.Int64("plan-cache-bytes", 0, "plan cache byte budget (0 = 256 MiB, negative unbounded)")
		graphShare = flag.Float64("max-graph-share", 0, "max fraction of the admission queue one graph may hold (0 = 0.5, negative disables)")
		batchWin   = flag.Duration("batch-window", 0, "coalesce non-streaming /match requests into batches flushed every window (0 disables)")
		batchMax   = flag.Int("batch-max", 0, "max items per coalesced batch (0 = 32; needs -batch-window)")
		timeout    = flag.Duration("timeout", 0, "default per-query time limit (0 = 5m)")
		pprofOn    = flag.Bool("pprof", false, "mount /debug/pprof (exposes runtime internals; keep off unless needed)")
		slowLog    = flag.String("slowlog", "", "append slow-query NDJSON records to this file")
		slowThresh = flag.Duration("slow-threshold", 0, "latency at which a request is logged as slow (0 = 1s; needs -slowlog)")
		slowBytes  = flag.Int64("slowlog-max-bytes", 0, "rotate the slowlog (path -> path.1) when it would exceed this size (0 = unbounded; needs -slowlog)")
		dataDir    = flag.String("data-dir", "", "durable store directory: snapshot + WAL every registration, recover on restart")
		mmapSnaps  = flag.Bool("mmap", false, "serve recovered snapshots from mmap instead of copying into the heap (needs -data-dir)")
		noPersist  = flag.Bool("no-persist", false, "ignore -data-dir and run purely in memory")
		verifySnap = flag.Bool("verify-snapshots", false, "recompute each snapshot's sha256 fingerprint during recovery (needs -data-dir)")
		graphs     graphFlags
	)
	flag.Var(&graphs, "graph", "preload a data graph as name=path (repeatable)")
	flag.Parse()

	cfg := service.Config{
		MaxInFlight:        *inflight,
		MaxQueue:           *queue,
		MaxQueueWait:       *queueWait,
		PlanCacheSize:      *cacheSize,
		PlanCacheBytes:     *cacheBytes,
		MaxGraphShare:      *graphShare,
		DefaultTimeLimit:   *timeout,
		SlowQueryThreshold: *slowThresh,
	}
	if *slowLog != "" {
		// The rotating writer with a zero cap is a plain append file;
		// with -slowlog-max-bytes it renames to .1 and truncates before
		// the write that would exceed the cap, so the newest records are
		// always in the live file.
		f, err := obs.NewRotatingWriter(*slowLog, *slowBytes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smatchd: open slowlog %q: %v\n", *slowLog, err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.SlowQueryLog = f
	}
	svc := service.New(cfg)

	var mgr *store.Manager
	if *dataDir != "" && !*noPersist {
		var err error
		mgr, err = store.Open(svc, store.Options{
			Dir:               *dataDir,
			MMap:              *mmapSnaps,
			VerifyFingerprint: *verifySnap,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "smatchd: store: "+format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "smatchd: open store %q: %v\n", *dataDir, err)
			os.Exit(1)
		}
		rec := mgr.RecoveryStats()
		fmt.Printf("smatchd: recovered %d graphs from %s in %s (%d WAL records, %d skipped)\n",
			rec.Recovered, *dataDir, rec.Duration.Round(time.Millisecond), rec.WALRecords, rec.Skipped)
	}

	for _, spec := range graphs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "smatchd: -graph %q: want name=path\n", spec)
			os.Exit(1)
		}
		g, err := store.LoadGraphFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smatchd: load %q: %v\n", path, err)
			os.Exit(1)
		}
		var info service.GraphInfo
		if mgr != nil {
			info, err = mgr.RegisterGraph(name, g, false)
		} else {
			info, err = svc.RegisterGraph(name, g, false)
		}
		if err != nil {
			if mgr != nil && errors.Is(err, service.ErrDuplicateGraph) {
				// Recovery already restored this name; the durable copy
				// wins over the command-line file.
				fmt.Printf("smatchd: %s already recovered from %s, skipping preload\n", name, *dataDir)
				continue
			}
			fmt.Fprintf(os.Stderr, "smatchd: register %q: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("smatchd: loaded %s: %d vertices, %d edges, %d labels\n",
			info.Name, info.Vertices, info.Edges, info.Labels)
	}

	srv := &http.Server{Addr: *addr, Handler: newServer(svc, serverOptions{
		pprof:       *pprofOn,
		batchWindow: *batchWin,
		batchMax:    *batchMax,
		store:       mgr,
	})}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("smatchd: listening on %s\n", *addr)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "smatchd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("smatchd: shutting down")
	svc.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "smatchd: shutdown:", err)
		os.Exit(1)
	}
	if mgr != nil {
		// After the listener and service have drained: compacts the WAL
		// into the manifest and unmaps any mmap-served snapshots.
		if err := mgr.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "smatchd: store close:", err)
			os.Exit(1)
		}
	}
}
