package filter

import (
	"math/rand"
	"reflect"
	"testing"

	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/testutil"
)

// decodeFuzzGraph grows a small labeled data graph from raw fuzz bytes:
// the first two bytes size the vertex and label sets, the rest are
// consumed pairwise as edges (self-loops skipped, duplicates deduped by
// the builder).
func decodeFuzzGraph(data []byte) *graph.Graph {
	if len(data) < 4 {
		return nil
	}
	n := 3 + int(data[0])%8
	numLabels := 1 + int(data[1])%3
	b := graph.NewBuilder(n, len(data)/2)
	for i := 0; i < n; i++ {
		var l graph.Label
		if 2+i < len(data) {
			l = graph.Label(data[2+i]) % graph.Label(numLabels)
		}
		b.AddVertex(l)
	}
	for i := 2 + n; i+1 < len(data); i += 2 {
		u := graph.Vertex(data[i]) % graph.Vertex(n)
		v := graph.Vertex(data[i+1]) % graph.Vertex(n)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil
	}
	return g
}

// FuzzFilterSoundness is the no-false-negative invariant of Section 3.1
// under fuzzed inputs: for every filtering method, sequential and
// parallel, every ground-truth embedding must survive filtering — each
// mapped data vertex M(u) stays in the candidate set C(u). A filter
// that drops a matched vertex silently loses embeddings downstream,
// which no amount of enumeration testing on fixed fixtures would
// attribute back to the filter.
func FuzzFilterSoundness(f *testing.F) {
	f.Add([]byte{1, 2, 0, 1, 0, 1, 1, 0, 1, 2, 2, 3, 3, 0, 0, 2}, int64(1), uint8(3))
	f.Add([]byte{7, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 0}, int64(7), uint8(4))
	f.Add([]byte{5, 3, 2, 1, 0, 2, 1, 0, 1, 0, 2, 1, 3, 2, 4, 3, 0, 4, 1, 3}, int64(42), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, seed int64, qsize uint8) {
		g := decodeFuzzGraph(data)
		if g == nil || g.NumEdges() == 0 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		q := testutil.RandomConnectedQuery(rng, g, 2+int(qsize)%3)
		if q == nil {
			t.Skip()
		}
		truth := testutil.BruteForceMatches(q, g)
		if len(truth) == 0 {
			t.Skip()
		}
		workers := 2 + int(qsize)%7
		for _, m := range Methods() {
			seq, err := Run(m, q, g)
			if err != nil {
				t.Fatalf("%v: Run: %v", m, err)
			}
			par, err := RunParallel(m, q, g, workers)
			if err != nil {
				t.Fatalf("%v: RunParallel: %v", m, err)
			}
			// Beyond soundness: every method except GQL (Jacobi rounds)
			// must reproduce the sequential sets exactly at any worker
			// count — the wave-scheduled CFL/CECI replay included.
			if m != GQL && !reflect.DeepEqual(par, seq) {
				t.Fatalf("%v: parallel (workers=%d) differs from sequential:\n got %v\nwant %v",
					m, workers, par, seq)
			}
			for _, emb := range truth {
				for u, v := range emb {
					if !containsVertex(seq[u], uint32(v)) {
						t.Fatalf("%v: sequential C(u%d)=%v drops matched vertex %d (embedding %v)",
							m, u, seq[u], v, emb)
					}
					if !containsVertex(par[u], uint32(v)) {
						t.Fatalf("%v: parallel C(u%d)=%v drops matched vertex %d (embedding %v)",
							m, u, par[u], v, emb)
					}
				}
			}
		}
	})
}

// containsVertex binary-searches a sorted candidate set.
func containsVertex(c []uint32, v uint32) bool {
	lo, hi := 0, len(c)
	for lo < hi {
		mid := (lo + hi) / 2
		if c[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(c) && c[lo] == v
}
