package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/testutil"
)

// TestMatchExplainParam: explain=1 attaches the EXPLAIN/ANALYZE profile
// to the /match result, and its heat table reconciles with the result's
// own node count; without the flag the field is absent.
func TestMatchExplainParam(t *testing.T) {
	ts, g := newTestServer(t)
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(21)), g, 4)
	body := graphText(t, q)

	resp, out := do(t, "POST", ts.URL+"/match?graph=main", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match = %d %q", resp.StatusCode, out)
	}
	if strings.Contains(out, `"profile"`) {
		t.Error("unprofiled result carries a profile field")
	}

	resp, out = do(t, "POST", ts.URL+"/match?graph=main&explain=1&algo=GQL", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explained match = %d %q", resp.StatusCode, out)
	}
	var res matchResult
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil {
		t.Fatal("explain=1 returned no profile")
	}
	if !res.Profile.Analyzed {
		t.Error("match profile should be analyzed")
	}
	var heatNodes uint64
	for _, h := range res.Profile.Heat {
		heatNodes += h.Nodes
	}
	if heatNodes != res.Nodes {
		t.Errorf("heat nodes %d != result nodes %d", heatNodes, res.Nodes)
	}
	if len(res.Profile.Filter) == 0 {
		t.Error("profile has no filter stages")
	}
}

// TestExplainEndpoint: POST /explain dry-runs the plan — filter stages
// and order, no heat — and supports the text rendering.
func TestExplainEndpoint(t *testing.T) {
	ts, g := newTestServer(t)
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(22)), g, 4)
	body := graphText(t, q)

	resp, out := do(t, "POST", ts.URL+"/explain?graph=main&algo=CFL", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain = %d %q", resp.StatusCode, out)
	}
	var er struct {
		Profile  *core.Profile `json:"profile"`
		CacheHit bool          `json:"cache_hit"`
	}
	if err := json.Unmarshal([]byte(out), &er); err != nil {
		t.Fatal(err)
	}
	if er.Profile == nil || er.Profile.Analyzed {
		t.Fatalf("profile = %+v, want unanalyzed", er.Profile)
	}
	if len(er.Profile.Order) != q.NumVertices() || len(er.Profile.Heat) != 0 {
		t.Errorf("order=%d heat=%d, want %d and 0",
			len(er.Profile.Order), len(er.Profile.Heat), q.NumVertices())
	}

	// The dry run cached the plan; a real match now hits it.
	resp, out = do(t, "POST", ts.URL+"/match?graph=main&algo=CFL", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match after explain = %d %q", resp.StatusCode, out)
	}
	var mr matchResult
	if err := json.Unmarshal([]byte(out), &mr); err != nil {
		t.Fatal(err)
	}
	if !mr.CacheHit {
		t.Error("match did not reuse the explain dry run's plan")
	}

	// Text rendering.
	resp, out = do(t, "POST", ts.URL+"/explain?graph=main&algo=CFL&format=text", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text explain = %d", resp.StatusCode)
	}
	if !strings.Contains(out, "filter stages:") || !strings.Contains(out, "order") {
		t.Errorf("text render missing sections:\n%s", out)
	}

	// External engines have no plan: 400.
	resp, out = do(t, "POST", ts.URL+"/explain?graph=main&algo=VF2", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("external explain = %d %q, want 400", resp.StatusCode, out)
	}
}

// TestDebugTracez drives requests through the server and reads them
// back from the flight recorder: the bucket listing, the per-record
// span fetch, the text and Chrome renderings, and the error ring.
func TestDebugTracez(t *testing.T) {
	ts, g := newTestServer(t)
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(23)), g, 4)
	body := graphText(t, q)
	for i := 0; i < 3; i++ {
		if resp, out := do(t, "POST", ts.URL+"/match?graph=main", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("match = %d %q", resp.StatusCode, out)
		}
	}
	// One failing request for the error ring: a query larger than the
	// data graph fails validation after the flight has started (an
	// unknown graph, by contrast, fails before graph resolution and
	// never becomes a flight).
	oversized := graphText(t, testutil.RandomGraph(rand.New(rand.NewSource(24)), 300, 700, 3))
	if resp, _ := do(t, "POST", ts.URL+"/match?graph=main", oversized); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized-query match did not fail validation")
	}

	resp, out := do(t, "GET", ts.URL+"/debug/tracez", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tracez = %d", resp.StatusCode)
	}
	var tz tracezResponse
	if err := json.Unmarshal([]byte(out), &tz); err != nil {
		t.Fatal(err)
	}
	var total uint64
	var anyID uint64
	for _, b := range tz.Buckets {
		total += b.Count
		for _, rec := range b.Records {
			if rec.Graph == "main" && rec.Error == "" {
				anyID = rec.ID
				if rec.LatencyNS <= 0 {
					t.Errorf("retained record without latency: %+v", rec)
				}
			}
		}
	}
	if total != 4 {
		t.Errorf("completed count = %d, want 4 (errored flights complete too)", total)
	}
	if anyID == 0 {
		t.Fatal("no retained record for graph main")
	}
	if len(tz.Errors) != 1 || tz.Errors[0].Error == "" {
		t.Errorf("error ring = %+v, want the validation failure", tz.Errors)
	}

	// Per-record span fetch: JSON carries the request span tree.
	resp, out = do(t, "GET", fmt.Sprintf("%s/debug/tracez?id=%d", ts.URL, anyID), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tracez?id = %d %q", resp.StatusCode, out)
	}
	if !strings.Contains(out, `"request"`) || !strings.Contains(out, `"span"`) {
		t.Errorf("record fetch missing span: %.200s", out)
	}

	// Text rendering names the phases.
	_, out = do(t, "GET", fmt.Sprintf("%s/debug/tracez?id=%d&format=text", ts.URL, anyID), "")
	if !strings.Contains(out, "request") || !strings.Contains(out, "admission") {
		t.Errorf("text record render:\n%s", out)
	}

	// Chrome export is a valid trace-event file.
	_, out = do(t, "GET", fmt.Sprintf("%s/debug/tracez?id=%d&format=chrome", ts.URL, anyID), "")
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &tr); err != nil {
		t.Fatalf("chrome export not JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 || tr.TraceEvents[0].Ph != "X" {
		t.Errorf("chrome export events: %+v", tr.TraceEvents)
	}

	// Unknown id: 404.
	resp, _ = do(t, "GET", ts.URL+"/debug/tracez?id=999999", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing record = %d, want 404", resp.StatusCode)
	}

	// Bucket text listing.
	_, out = do(t, "GET", ts.URL+"/debug/tracez?format=text", "")
	if !strings.Contains(out, "<1ms") || !strings.Contains(out, "errors (newest first):") {
		t.Errorf("text listing:\n%s", out)
	}
}

// TestDebugRequests: the live registry is empty at rest and serves both
// encodings.
func TestDebugRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, out := do(t, "GET", ts.URL+"/debug/requests", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/requests = %d", resp.StatusCode)
	}
	var dr struct {
		Inflight []json.RawMessage `json:"inflight"`
	}
	if err := json.Unmarshal([]byte(out), &dr); err != nil {
		t.Fatal(err)
	}
	if len(dr.Inflight) != 0 {
		t.Errorf("inflight at rest = %d", len(dr.Inflight))
	}
	_, out = do(t, "GET", ts.URL+"/debug/requests?format=text", "")
	if !strings.Contains(out, "0 in flight") {
		t.Errorf("text view:\n%s", out)
	}
}
