package service

import (
	"context"
	"sync"

	"subgraphmatching/internal/core"
)

// buildGroup collapses concurrent plan builds for the same cache key
// into one: the first arrival (the leader) runs the build while later
// arrivals block on its completion and share the resulting plan.
// Preprocessing a large graph can take seconds; without this, N
// requests dogpiling a cold key would run N identical builds and keep
// N-1 of the results only long enough to throw them away.
//
// The leader's build function inserts the plan into the cache *before*
// the in-flight entry is removed, so at every instant a concurrent
// request either joins the in-flight build or hits the cache — the
// build count for one key is exactly one regardless of arrival timing.
type buildGroup struct {
	mu    sync.Mutex
	calls map[planKey]*buildCall
}

type buildCall struct {
	done chan struct{} // closed when the build finishes
	plan *core.Plan
	err  error
}

// do runs fn under the key's flight, or waits for the flight already in
// progress. It reports whether this caller was the leader (ran fn
// itself). Waiting respects ctx; an abandoned wait leaves the flight
// running for its other waiters.
func (g *buildGroup) do(ctx context.Context, k planKey, fn func() (*core.Plan, error)) (*core.Plan, bool, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[planKey]*buildCall)
	}
	if c, ok := g.calls[k]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.plan, false, c.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	c := &buildCall{done: make(chan struct{})}
	g.calls[k] = c
	g.mu.Unlock()

	c.plan, c.err = fn()

	g.mu.Lock()
	delete(g.calls, k)
	g.mu.Unlock()
	close(c.done)
	return c.plan, true, c.err
}
