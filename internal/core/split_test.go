package core

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"subgraphmatching/internal/enumerate"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/order"
	"subgraphmatching/internal/testutil"
)

// collectSorted runs Match with an embedding collector and returns the
// byte-serialized embeddings in sorted order — the canonical form for
// comparing the exact embedding *sets* two schedules produce, not just
// their counts.
func collectSorted(t *testing.T, q, g *graph.Graph, cfg Config, limits Limits) ([]string, *Result) {
	t.Helper()
	var out []string
	limits.OnMatch = func(m []uint32) bool {
		out = append(out, string(uint32SliceBytes(m)))
		return true
	}
	res, err := Match(q, g, cfg, limits)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(out)) != res.Embeddings {
		t.Fatalf("collected %d embeddings, result reports %d", len(out), res.Embeddings)
	}
	sort.Strings(out)
	return out, res
}

// TestSplitPolicyEquivalence is the acceptance grid for the cost-model
// splitter: across {static, cost} × engine configs (static orders and
// DP-iso's adaptive ordering) × workers {1,2,4,8}, forced splitting must
// produce byte-identical embedding sets to the sequential run, and
// MaxEmbeddings caps must stay exact.
func TestSplitPolicyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	type workload struct {
		name string
		q, g *graph.Graph
	}
	workloads := []workload{{"paper", testutil.PaperQuery(), testutil.PaperData()}}
	for len(workloads) < 3 {
		g := testutil.RandomGraph(rng, 40+rng.Intn(20), 140+rng.Intn(60), 2)
		q := testutil.RandomConnectedQuery(rng, g, 4+rng.Intn(2))
		if q != nil {
			workloads = append(workloads, workload{"rand", q, g})
		}
	}
	for _, wl := range workloads {
		configs := equivalenceConfigs()
		// DP-iso's adaptive ordering exercises the second-vertex split.
		adaptive := PresetConfig(DPIso, wl.q, wl.g)
		configs = append(configs, adaptive)
		for _, cfg := range configs {
			want, _ := collectSorted(t, wl.q, wl.g, cfg, Limits{})
			for _, pol := range SplitPolicies() {
				for _, workers := range []int{1, 2, 4, 8} {
					limits := Limits{Parallel: workers, Split: pol, SplitFactor: 1 << 20}
					got, res := collectSorted(t, wl.q, wl.g, cfg, limits)
					if len(got) != len(want) {
						t.Fatalf("%s adaptive=%v %v w%d: %d embeddings, want %d",
							wl.name, cfg.Adaptive, pol, workers, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%s adaptive=%v %v w%d: embedding sets differ at %d",
								wl.name, cfg.Adaptive, pol, workers, i)
						}
					}
					if workers > 1 {
						if res.Split == nil {
							t.Fatalf("%s %v w%d: parallel run has no SplitInfo", wl.name, pol, workers)
						}
						if res.Split.Policy != pol {
							t.Errorf("%s w%d: SplitInfo policy %v, want %v", wl.name, workers, res.Split.Policy, pol)
						}
					}
					// Exact cap under the same forced-split schedule.
					cap := uint64(5)
					if uint64(len(want)) > cap {
						limits.MaxEmbeddings = cap
						capped, err := Match(wl.q, wl.g, cfg, limits)
						if err != nil {
							t.Fatal(err)
						}
						if capped.Embeddings != cap {
							t.Errorf("%s adaptive=%v %v w%d: cap run found %d, want exactly %d",
								wl.name, cfg.Adaptive, pol, workers, capped.Embeddings, cap)
						}
					}
				}
			}
		}
	}
}

// TestSplitPredictionSurfaced: the cost model's estimate is published on
// the result (and through EXPLAIN) so predictions are checkable against
// measured nodes.
func TestSplitPredictionSurfaced(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := testutil.RandomGraph(rng, 40, 140, 2)
	var q *graph.Graph
	for q == nil {
		q = testutil.RandomConnectedQuery(rng, g, 5)
	}
	cfg := Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Intersect}
	res, err := Match(q, g, cfg, Limits{Parallel: 4, SplitFactor: 1 << 20, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Split
	if s == nil {
		t.Fatal("no SplitInfo on a parallel run")
	}
	if s.Policy != SplitCostModel {
		t.Fatalf("default policy = %v, want cost", s.Policy)
	}
	if s.Probes == 0 || s.PredictedNodes == 0 {
		t.Fatalf("cost-model split ran without probes (%d) or prediction (%d)", s.Probes, s.PredictedNodes)
	}
	if res.Explain == nil || res.Explain.Split == nil {
		t.Fatal("EXPLAIN carries no split profile")
	}
	sp := res.Explain.Split
	if sp.PredictedNodes != s.PredictedNodes || sp.Probes != s.Probes {
		t.Errorf("explain split (%d pred, %d probes) disagrees with result (%d, %d)",
			sp.PredictedNodes, sp.Probes, s.PredictedNodes, s.Probes)
	}
	if sp.MeasuredNodes != res.Nodes-s.Probes {
		t.Errorf("measured nodes %d, want %d", sp.MeasuredNodes, res.Nodes-s.Probes)
	}
}

// TestParallelCancelDuringProbe is the regression test for the probe
// engine running uncancellable ahead of the workers: a cancel flag set
// before submission must stop the splitter before any probe expansion,
// and a pre-expired deadline must surface as TimedOut instead of letting
// the probe run unbounded.
func TestParallelCancelDuringProbe(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := testutil.RandomGraph(rng, 100, 500, 2)
	var q *graph.Graph
	for q == nil {
		q = testutil.RandomConnectedQuery(rng, g, 5)
	}
	cfg := Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Intersect}

	var stop atomic.Bool
	stop.Store(true)
	res, err := Match(q, g, cfg, Limits{Parallel: 4, SplitFactor: 1 << 20, Cancel: &stop})
	if err != nil {
		t.Fatal(err)
	}
	if res.Split == nil {
		t.Fatal("no SplitInfo")
	}
	if res.Split.Probes != 0 {
		t.Errorf("pre-cancelled run still probed %d times", res.Split.Probes)
	}
	if res.Nodes != 0 || res.Embeddings != 0 {
		t.Errorf("pre-cancelled run did work: %d nodes, %d embeddings", res.Nodes, res.Embeddings)
	}

	// A deadline that expires before the probe starts must stop it and
	// report the timeout (previously the probe ran before SetDeadline).
	res, err = Match(q, g, cfg, Limits{Parallel: 4, SplitFactor: 1 << 20, TimeLimit: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Error("pre-expired deadline not reported as TimedOut")
	}
	if res.Split.Probes != 0 {
		t.Errorf("expired-deadline run still probed %d times", res.Split.Probes)
	}
}

// TestSplitFactorValidation pins the negative-SplitFactor bugfix: the
// old code silently disabled splitting, now it is a typed error.
func TestSplitFactorValidation(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	cfg := PresetConfig(Optimized, q, g)
	_, err := Match(q, g, cfg, Limits{Parallel: 2, SplitFactor: -1})
	if !errors.Is(err, ErrBadSplitFactor) {
		t.Fatalf("SplitFactor -1: err = %v, want ErrBadSplitFactor", err)
	}
	// Sequential runs validate too — the knob is wrong regardless of
	// whether this run would have consulted it.
	_, err = Match(q, g, cfg, Limits{SplitFactor: -7})
	if !errors.Is(err, ErrBadSplitFactor) {
		t.Fatalf("sequential SplitFactor -7: err = %v, want ErrBadSplitFactor", err)
	}
}

func TestSplitPolicyParseRoundTrip(t *testing.T) {
	for _, p := range SplitPolicies() {
		got, err := ParseSplitPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: got %v, err %v", p, got, err)
		}
	}
	if _, err := ParseSplitPolicy("depth3"); err == nil {
		t.Error("expected error for unknown split policy")
	}
	if SplitPolicy(9).String() == "" {
		t.Error("unknown policy String should be non-empty")
	}
}

// TestStressRecursiveSplit hammers the recursive splitter under
// contention: repeated 8-worker runs with forced splitting (both
// policies) over a skew-prone fixture must always agree with the
// sequential count. Runs under `make race-stress` where any cross-task
// state leak in prefix handling trips the race detector.
func TestStressRecursiveSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := testutil.RandomGraph(rng, 120, 700, 2)
	var q *graph.Graph
	for q == nil {
		q = testutil.RandomConnectedQuery(rng, g, 5)
	}
	cfg := Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Intersect, FailingSets: true}
	seq, err := Match(q, g, cfg, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	iters := 25
	if testing.Short() {
		iters = 5
	}
	var sawRecursive bool
	for i := 0; i < iters; i++ {
		for _, pol := range SplitPolicies() {
			res, err := Match(q, g, cfg, Limits{Parallel: 8, Split: pol, SplitFactor: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			if res.Embeddings != seq.Embeddings {
				t.Fatalf("iter %d %v: %d embeddings, want %d", i, pol, res.Embeddings, seq.Embeddings)
			}
			if res.Split == nil || res.Split.Tasks == 0 {
				t.Fatalf("iter %d %v: no split accounting", i, pol)
			}
			if pol == SplitCostModel && res.Split.MaxPrefix > 2 {
				sawRecursive = true
			}
		}
	}
	_ = sawRecursive // informational: recursion depends on the fixture's skew
}

// FuzzSplitEstimates drives the cost model and the recursive splitter
// over random workloads: estimates must stay finite and well-formed, and
// a forced cost-model split must enumerate exactly the sequential
// embedding multiset (the split tasks partition the search space).
func FuzzSplitEstimates(f *testing.F) {
	f.Add(int64(1), uint8(30), uint8(90), uint8(2), uint8(4))
	f.Add(int64(7), uint8(50), uint8(200), uint8(1), uint8(5))
	f.Add(int64(42), uint8(10), uint8(255), uint8(3), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, nv, ne, nl, qn uint8) {
		rng := rand.New(rand.NewSource(seed))
		V := 10 + int(nv)%60
		E := V + int(ne)
		L := 1 + int(nl)%4
		QN := 3 + int(qn)%4
		g := testutil.RandomGraph(rng, V, E, L)
		q := testutil.RandomConnectedQuery(rng, g, QN)
		if q == nil {
			t.Skip("no connected query")
		}
		cfg := Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Intersect}
		plan, err := Preprocess(q, g, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Empty {
			t.Skip("empty candidate set")
		}
		est := newSplitEstimator(q, g, plan.Cand, plan.Space, plan.Order)
		for d, b := range est.branch {
			if math.IsNaN(b) || b < 0 {
				t.Fatalf("branch[%d] = %v", d, b)
			}
		}
		for d, s := range est.subtree {
			if math.IsNaN(s) || s < 1 {
				t.Fatalf("subtree[%d] = %v", d, s)
			}
		}

		var want []string
		_, err = MatchPlan(plan, Limits{OnMatch: func(m []uint32) bool {
			want = append(want, string(uint32SliceBytes(m)))
			return true
		}})
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		res, err := MatchPlan(plan, Limits{Parallel: 4, SplitFactor: 1 << 20,
			OnMatch: func(m []uint32) bool {
				got = append(got, string(uint32SliceBytes(m)))
				return true
			}})
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(want)
		sort.Strings(got)
		if len(got) != len(want) {
			t.Fatalf("split run found %d embeddings, sequential %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("embedding multisets differ at %d", i)
			}
		}
		if res.Split != nil && res.Split.PredictedNodes > 0 && res.Nodes < res.Split.Probes {
			t.Fatalf("nodes %d below probe count %d", res.Nodes, res.Split.Probes)
		}
	})
}
