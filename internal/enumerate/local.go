package enumerate

import (
	"subgraphmatching/internal/graph"
)

// computeLC computes the local candidate set LC(u, M) for the query
// vertex u at the given search depth, dispatching on the configured
// method. The result lives in a per-depth buffer and is valid until the
// next computeLC call at the same depth.
func (e *engine) computeLC(depth int, u graph.Vertex) []uint32 {
	switch e.opts.Local {
	case Direct:
		return e.lcDirect(depth, u)
	case Scan:
		return e.lcScan(depth, u)
	case TreeEdge:
		return e.lcTreeEdge(depth, u)
	default: // Intersect and IntersectBlock — kernel choice is the
		// selector's (IntersectBlock pins the block policy in prepare).
		return e.lcIntersect(depth, u)
	}
}

// lcDirect is Algorithm 2 (QuickSI/RI), optionally extended with VF2++'s
// label-count cutoff rules.
func (e *engine) lcDirect(depth int, u graph.Vertex) []uint32 {
	if depth == 0 {
		return e.cand[u]
	}
	p := e.parent[depth]
	out := e.lcBuf[depth][:0]
	for _, v := range e.g.Neighbors(e.embedding[p]) {
		if e.g.Label(v) != e.q.Label(u) {
			continue
		}
		// The degree condition assumes injectivity; homomorphisms may
		// collapse neighbors.
		if !e.opts.Homomorphism && e.g.Degree(v) < e.q.Degree(u) {
			continue
		}
		if !e.backwardEdgesOK(depth, v, p) {
			continue
		}
		if e.opts.VF2PPRules && !e.vf2ppOK(depth, v) {
			continue
		}
		out = append(out, v)
	}
	e.lcBuf[depth] = out
	return out
}

// lcScan is Algorithm 3 (GraphQL): iterate the whole candidate set.
func (e *engine) lcScan(depth int, u graph.Vertex) []uint32 {
	if depth == 0 {
		return e.cand[u]
	}
	out := e.lcBuf[depth][:0]
	for _, v := range e.cand[u] {
		if e.backwardEdgesOK(depth, v, graph.NoVertex) {
			out = append(out, v)
		}
	}
	e.lcBuf[depth] = out
	return out
}

// lcTreeEdge is Algorithm 4 (CFL): candidates adjacent to the parent's
// mapping come from the tree-edge auxiliary structure; other backward
// edges are verified with binary searches.
func (e *engine) lcTreeEdge(depth int, u graph.Vertex) []uint32 {
	if depth == 0 {
		return e.cand[u]
	}
	p := e.parent[depth]
	fromTree := e.space.Adjacency(p, u, e.candIdx[p])
	if len(e.bwd[depth]) == 1 {
		return fromTree
	}
	out := e.lcBuf[depth][:0]
	for _, v := range fromTree {
		if e.backwardEdgesOK(depth, v, p) {
			out = append(out, v)
		}
	}
	e.lcBuf[depth] = out
	return out
}

// lcIntersect is Algorithm 5 (CECI/DP-iso): intersect the auxiliary
// adjacency lists of all backward neighbors, with the pairwise kernel
// (merge/gallop/word-parallel block) chosen per call by the engine's
// selector under Options.Kernel.
func (e *engine) lcIntersect(depth int, u graph.Vertex) []uint32 {
	if depth == 0 {
		return e.cand[u]
	}
	bwd := e.bwd[depth]
	if len(bwd) == 1 {
		return e.space.Adjacency(bwd[0], u, e.candIdx[bwd[0]])
	}
	e.lcBuf[depth] = e.intersectBackward(e.lcBuf[depth][:0], bwd, u)
	return e.lcBuf[depth]
}

// intersectBackward gathers the auxiliary adjacency lists of bwd
// against u — paired with their block views when the space has a
// materialized layout — and intersects them through the kernel
// selector, appending to dst. Shared by the static-order path and the
// adaptive (DP-iso) activation.
func (e *engine) intersectBackward(dst []uint32, bwd []graph.Vertex, u graph.Vertex) []uint32 {
	sets := e.setsBuf[:0]
	if e.useViews {
		views := e.viewsBuf[:0]
		for _, un := range bwd {
			adj, v := e.space.AdjacencyWithView(un, u, e.candIdx[un])
			sets = append(sets, adj)
			views = append(views, v)
		}
		e.setsBuf, e.viewsBuf = sets, views
		return e.sel.Many(dst, sets, views)
	}
	for _, un := range bwd {
		sets = append(sets, e.space.Adjacency(un, u, e.candIdx[un]))
	}
	e.setsBuf = sets
	return e.sel.Many(dst, sets, nil)
}

// backwardEdgesOK verifies e(v, M[u']) for every backward neighbor u' of
// the vertex at this depth, excluding skip (the neighbor already handled
// by the caller, e.g. the tree parent).
func (e *engine) backwardEdgesOK(depth int, v uint32, skip graph.Vertex) bool {
	for _, un := range e.bwd[depth] {
		if un == skip {
			continue
		}
		if !e.g.HasEdge(e.embedding[un], v) {
			return false
		}
	}
	return true
}

// vf2ppOK applies VF2++'s cutoff: for every label l among the forward
// neighbors of the current query vertex, v must have at least that many
// unmapped neighbors labeled l.
func (e *engine) vf2ppOK(depth int, v uint32) bool {
	req := e.fwdReq[depth]
	if len(req) == 0 {
		return true
	}
	e.counter.Reset()
	for _, w := range e.g.Neighbors(v) {
		if !e.visited[w] {
			e.counter.Add(e.g.Label(w))
		}
	}
	for _, need := range req {
		if e.counter.Count(need.label) < need.count {
			return false
		}
	}
	return true
}
