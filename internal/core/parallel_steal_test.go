package core

import (
	"math/rand"
	"testing"

	"subgraphmatching/internal/enumerate"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/order"
	"subgraphmatching/internal/testutil"
)

// equivalenceConfigs are the engine variants the scheduler must agree
// with sequential execution on: intersection candidates with failing
// sets on and off, plus the direct (auxiliary-free) path.
func equivalenceConfigs() []Config {
	return []Config{
		{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Intersect},
		{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Intersect, FailingSets: true},
		{Filter: filter.LDF, Order: order.RI, Local: enumerate.Direct},
	}
}

// TestParallelEquivalenceAcrossWorkers is the property the issue pins:
// workers ∈ {1,2,4,8} × both schedulers × failing sets on/off × with
// and without MaxEmbeddings all report identical counts.
func TestParallelEquivalenceAcrossWorkers(t *testing.T) {
	type workload struct {
		name string
		q, g *graph.Graph
	}
	workloads := []workload{{"paper", testutil.PaperQuery(), testutil.PaperData()}}
	rng := rand.New(rand.NewSource(99))
	for len(workloads) < 4 {
		g := testutil.RandomGraph(rng, 30+rng.Intn(20), 90+rng.Intn(60), 2)
		q := testutil.RandomConnectedQuery(rng, g, 4+rng.Intn(3))
		if q != nil {
			workloads = append(workloads, workload{"rand", q, g})
		}
	}
	for _, wl := range workloads {
		for _, cfg := range equivalenceConfigs() {
			seq, err := Match(wl.q, wl.g, cfg, Limits{})
			if err != nil {
				t.Fatalf("%s sequential: %v", wl.name, err)
			}
			for _, cap := range []uint64{0, 7} {
				want := seq.Embeddings
				if cap > 0 && want > cap {
					want = cap
				}
				for _, sched := range Schedules() {
					for _, workers := range []int{1, 2, 4, 8} {
						par, err := Match(wl.q, wl.g, cfg, Limits{
							Parallel: workers, Schedule: sched, MaxEmbeddings: cap,
						})
						if err != nil {
							t.Fatalf("%s %v workers=%d: %v", wl.name, sched, workers, err)
						}
						if par.Embeddings != want {
							t.Errorf("%s cfg %+v %v workers=%d cap=%d: %d embeddings, want %d",
								wl.name, cfg, sched, workers, cap, par.Embeddings, want)
						}
					}
				}
			}
		}
	}
}

// TestParallelForcedDepthOneSplit drives the fine-grained (root, second)
// task path regardless of the root candidate count.
func TestParallelForcedDepthOneSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 6; trial++ {
		g := testutil.RandomGraph(rng, 30+rng.Intn(20), 90+rng.Intn(60), 2)
		q := testutil.RandomConnectedQuery(rng, g, 4+rng.Intn(3))
		if q == nil {
			continue
		}
		for _, cfg := range equivalenceConfigs() {
			seq, err := Match(q, g, cfg, Limits{})
			if err != nil {
				t.Fatal(err)
			}
			par, err := Match(q, g, cfg, Limits{Parallel: 4, SplitFactor: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			if par.Embeddings != seq.Embeddings {
				t.Errorf("trial %d cfg %+v: split run %d embeddings, sequential %d",
					trial, cfg, par.Embeddings, seq.Embeddings)
			}
		}
	}
}

// TestParallelCapExactUnderContention stresses the CAS accept loop: a
// dense unlabeled workload where all workers race to a small cap must
// report exactly the cap, every time.
func TestParallelCapExactUnderContention(t *testing.T) {
	// Triangle query in K12: 12*11*10 = 1320 embeddings, found almost
	// instantly by every worker at once.
	var edges [][2]graph.Vertex
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			edges = append(edges, [2]graph.Vertex{graph.Vertex(i), graph.Vertex(j)})
		}
	}
	g := graph.MustFromEdges(make([]graph.Label, 12), edges)
	q := graph.MustFromEdges(make([]graph.Label, 3), [][2]graph.Vertex{{0, 1}, {1, 2}, {0, 2}})
	cfg := Config{Filter: filter.LDF, Order: order.GQL, Local: enumerate.Intersect}
	for _, sched := range Schedules() {
		for rep := 0; rep < 20; rep++ {
			res, err := Match(q, g, cfg, Limits{MaxEmbeddings: 137, Parallel: 8, Schedule: sched})
			if err != nil {
				t.Fatal(err)
			}
			if res.Embeddings != 137 {
				t.Fatalf("%v rep %d: %d embeddings, want exactly 137", sched, rep, res.Embeddings)
			}
			if !res.LimitHit {
				t.Fatalf("%v rep %d: LimitHit not set", sched, rep)
			}
		}
	}
}

// TestParallelOnMatchSlicesAreStable pins the aliasing fix: slices
// handed to OnMatch under parallel execution are private copies, so a
// collector that stores them without copying still ends up with valid,
// pairwise-distinct embeddings.
func TestParallelOnMatchSlicesAreStable(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	rng := rand.New(rand.NewSource(13))
	dg := testutil.RandomGraph(rng, 40, 140, 2)
	var dq *graph.Graph
	for dq == nil {
		dq = testutil.RandomConnectedQuery(rng, dg, 4)
	}
	for _, wl := range []struct {
		q, g *graph.Graph
	}{{q, g}, {dq, dg}} {
		cfg := Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Intersect}
		var stored [][]uint32
		res, err := Match(wl.q, wl.g, cfg, Limits{Parallel: 4, OnMatch: func(m []uint32) bool {
			stored = append(stored, m) // deliberately NOT copied
			return true
		}})
		if err != nil {
			t.Fatal(err)
		}
		if uint64(len(stored)) != res.Embeddings {
			t.Fatalf("stored %d slices, result reports %d embeddings", len(stored), res.Embeddings)
		}
		seen := make(map[string]bool)
		for _, m := range stored {
			if !validEmbedding(wl.q, wl.g, m) {
				t.Fatalf("stored slice %v is not a valid embedding (overwritten?)", m)
			}
			key := string(uint32SliceBytes(m))
			if seen[key] {
				t.Fatalf("duplicate stored embedding %v (aliased slice overwritten)", m)
			}
			seen[key] = true
		}
	}
}

// validEmbedding checks labels, injectivity, and every query edge.
func validEmbedding(q, g *graph.Graph, m []uint32) bool {
	if len(m) != q.NumVertices() {
		return false
	}
	used := make(map[uint32]bool, len(m))
	for u, v := range m {
		if int(v) >= g.NumVertices() || used[v] || q.Label(graph.Vertex(u)) != g.Label(v) {
			return false
		}
		used[v] = true
	}
	for u := 0; u < q.NumVertices(); u++ {
		for _, un := range q.Neighbors(graph.Vertex(u)) {
			if !g.HasEdge(m[u], m[un]) {
				return false
			}
		}
	}
	return true
}

func uint32SliceBytes(m []uint32) []byte {
	b := make([]byte, 0, len(m)*4)
	for _, v := range m {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return b
}

// TestParallelProfileMerging: per-worker profiles merge into one result
// profile whose extension totals match the sequential search shape.
func TestParallelProfileMerging(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	cfg := Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Intersect, Profile: true}
	res, err := Match(q, g, cfg, Limits{Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil {
		t.Fatal("parallel run with Profile set returned no profile")
	}
	if res.Profile.TotalNodes() == 0 {
		t.Error("merged profile has zero nodes")
	}
}

func TestScheduleParseRoundTrip(t *testing.T) {
	for _, s := range Schedules() {
		got, err := ParseSchedule(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v: got %v, err %v", s, got, err)
		}
	}
	if _, err := ParseSchedule("fifo"); err == nil {
		t.Error("expected error for unknown schedule")
	}
	if Schedule(250).String() == "" {
		t.Error("unknown schedule String should be non-empty")
	}
}

// TestTaskDeque exercises the owner-pop / chunked-steal protocol.
func TestTaskDeque(t *testing.T) {
	d := &taskDeque{}
	for i := 0; i < 10; i++ {
		d.push(enumTask{root: uint32(i), second: noSecond})
	}
	// Owner pops from the tail.
	if tk, ok := d.pop(); !ok || tk.root != 9 {
		t.Fatalf("pop = %v, %v; want root 9", tk, ok)
	}
	// Thief takes half (rounded up) from the head: 9 remain -> 5 stolen.
	chunk := d.stealHalf()
	if len(chunk) != 5 || chunk[0].root != 0 || chunk[4].root != 4 {
		t.Fatalf("stealHalf = %v", chunk)
	}
	// Remaining: roots 5..8, owner side.
	var rest []uint32
	for {
		tk, ok := d.pop()
		if !ok {
			break
		}
		rest = append(rest, tk.root)
	}
	if len(rest) != 4 || rest[0] != 8 || rest[3] != 5 {
		t.Fatalf("rest = %v", rest)
	}
	if d.stealHalf() != nil {
		t.Error("steal from empty deque should return nil")
	}
	if _, ok := d.pop(); ok {
		t.Error("pop from empty deque should fail")
	}
}
