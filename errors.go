package subgraphmatching

import (
	"errors"

	"subgraphmatching/internal/core"
)

// Typed sentinel errors for degenerate inputs. Match, Count, FindAll and
// the context variants wrap these; test with errors.Is. The smatchd
// serving layer maps them onto HTTP status codes.
var (
	// ErrNilGraph reports a nil query or data graph.
	ErrNilGraph = core.ErrNilGraph
	// ErrEmptyQuery reports a query graph with no vertices.
	ErrEmptyQuery = core.ErrEmptyQuery
	// ErrDisconnectedQuery reports a query graph that is not connected.
	ErrDisconnectedQuery = core.ErrDisconnectedQuery
	// ErrQueryTooLarge reports a query with more vertices than the data
	// graph. Match tolerates this (the result is simply empty); Validate
	// and the serving layer reject it up front.
	ErrQueryTooLarge = core.ErrQueryTooLarge
	// ErrUnknownLabel reports a query vertex label no data vertex
	// carries. Like ErrQueryTooLarge it is a strict-validation error.
	ErrUnknownLabel = core.ErrUnknownLabel
	// ErrBadSplitFactor reports a negative Options.SplitFactor, which
	// used to silently disable task splitting instead of failing loudly.
	ErrBadSplitFactor = core.ErrBadSplitFactor
	// ErrNilCallback reports a streaming call whose per-embedding
	// callback is nil.
	ErrNilCallback = errors.New("nil per-embedding callback")
)

// Validate checks a (query, data) pair for degenerate inputs, returning
// the first applicable typed error: ErrNilGraph, ErrEmptyQuery,
// ErrDisconnectedQuery, ErrQueryTooLarge or ErrUnknownLabel.
//
// Validate is strict: the last two conditions only make the result
// provably empty, and Match answers them with zero embeddings rather
// than an error. Callers that would rather reject such queries before
// paying preprocessing — batch drivers, servers — validate first; the
// smatchd service does exactly that.
func Validate(q, g *Graph) error { return core.Validate(q, g) }
