package store

import (
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/service"
)

// ErrNotDurable reports an operation that took effect in the in-memory
// registry but could not be made durable (snapshot or WAL write
// failure). The graph serves traffic; a restart may lose it.
var ErrNotDurable = errors.New("store: operation applied but not durable")

// Options configure a Manager.
type Options struct {
	// Dir is the data directory (created if absent): MANIFEST, wal.log
	// and snapshots/ live under it.
	Dir string
	// MMap loads snapshots via mmap instead of heap copies — see
	// LoadOptions.MMap.
	MMap bool
	// VerifyFingerprint makes recovery recompute every snapshot's full
	// sha256 fingerprint, not just the per-section CRCs (slower start,
	// end-to-end certainty; fsck always does this).
	VerifyFingerprint bool
	// CompactEvery triggers WAL compaction into a manifest checkpoint
	// after this many appended records. 0 means the default of 64;
	// negative disables automatic compaction (Compact still works).
	CompactEvery int
	// Logf receives recovery warnings (skipped snapshots, torn WAL
	// tails). Nil discards them.
	Logf func(format string, args ...any)
}

// walName is the registry operation log inside the data directory.
const walName = "wal.log"

// entryState is the durable view of one registered name.
type entryState struct {
	gen  uint64
	fp   graph.Fingerprint
	snap string // snapshot filename, relative to snapshots/
}

// RecoveryStats summarize a Manager's startup replay — /healthz
// reports them so an operator can see what a restart recovered.
type RecoveryStats struct {
	// Recovered is the number of graphs restored into the registry.
	Recovered int `json:"recovered"`
	// Skipped counts durable entries whose snapshot failed verification
	// and were dropped with a warning instead of failing the restart.
	Skipped int `json:"skipped"`
	// WALRecords is how many intact log records replay applied.
	WALRecords int `json:"wal_records"`
	// TornTail reports that replay found (and truncated) a torn record
	// at the log's tail — the signature of a crash mid-append.
	TornTail bool `json:"torn_tail"`
	// Duration is the wall-clock recovery time.
	Duration time.Duration `json:"duration_ns"`
}

// Stats is the store's operational snapshot for /healthz.
type Stats struct {
	Dir        string        `json:"dir"`
	MMap       bool          `json:"mmap"`
	Graphs     int           `json:"graphs"`
	Snapshots  int           `json:"snapshots"`
	SnapBytes  int64         `json:"snapshot_bytes"`
	WALBytes   int64         `json:"wal_bytes"`
	WALRecords int           `json:"wal_records"`
	Recovery   RecoveryStats `json:"recovery"`
}

// Manager wires the snapshot format and the WAL under a
// service.Service: registrations persist a snapshot then append a log
// record; Open replays the log and repopulates the registry with the
// same names and monotonic generations, so the plan cache's liveGen
// fencing and hot-swap invalidation work unchanged across restarts.
//
// All mutating operations serialize on one mutex — registrations are
// operator-rate, and the ordering guarantees (snapshot before WAL
// record, WAL record before compaction GC) depend on it.
type Manager struct {
	opts Options
	svc  *service.Service

	mu        sync.Mutex
	wal       *walWriter
	refs      map[string]entryState
	snapSizes map[string]int64 // snapshot filename -> bytes, for GC + stats
	maxGen    uint64
	sinceComp int // WAL records appended since the last compaction
	closed    bool
	recovery  RecoveryStats
	snaps     []*Snapshot // open mmaps, released at Close

	// metrics (registered on the service's obs registry).
	mSnapshots  *obsCounter
	mWALRecords *obsCounter

	// testHook, when set, runs at each durability step boundary
	// ("snapshot", "registry", "wal") and aborts the operation when it
	// returns an error — the crash-recovery harness drives it.
	testHook func(step string) error
}

// obsCounter decouples the manager from obs when no service registry
// is attached (fsck, tests on bare dirs).
type obsCounter struct{ inc func(uint64) }

func (c *obsCounter) add(n uint64) {
	if c != nil && c.inc != nil {
		c.inc(n)
	}
}

// Open creates (or reopens) the data directory, replays the manifest
// and WAL, loads every live snapshot, and repopulates svc's registry.
// A snapshot that fails verification is skipped with a warning — one
// corrupt file never takes down the whole restart. The returned
// Manager persists all subsequent registrations made through it.
func Open(svc *service.Service, opts Options) (*Manager, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: empty data directory")
	}
	if opts.CompactEvery == 0 {
		opts.CompactEvery = 64
	}
	if err := os.MkdirAll(filepath.Join(opts.Dir, snapshotsDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	m := &Manager{
		opts:      opts,
		svc:       svc,
		refs:      make(map[string]entryState),
		snapSizes: make(map[string]int64),
	}
	if svc != nil {
		reg := svc.Metrics()
		snaps := reg.Counter("smatch_store_snapshots_total",
			"Snapshot files written by the durable store.")
		walRecs := reg.Counter("smatch_store_wal_records_total",
			"Registry WAL records appended.")
		m.mSnapshots = &obsCounter{inc: snaps.Add}
		m.mWALRecords = &obsCounter{inc: walRecs.Add}
		reg.GaugeFunc("smatch_store_recovery_seconds",
			"Wall-clock duration of the last startup recovery.", func() float64 {
				return m.RecoveryStats().Duration.Seconds()
			})
		reg.GaugeFunc("smatch_store_bytes",
			"Bytes held by the durable store (snapshots + WAL).", func() float64 {
				st := m.Stats()
				return float64(st.SnapBytes + st.WALBytes)
			})
		reg.GaugeFunc("smatch_store_wal_records",
			"Registry WAL records since the last compaction.", func() float64 {
				return float64(m.Stats().WALRecords)
			})
	}
	if err := m.recover(); err != nil {
		return nil, err
	}
	wal, err := openWAL(filepath.Join(opts.Dir, walName))
	if err != nil {
		return nil, err
	}
	m.wal = wal
	return m, nil
}

func (m *Manager) logf(format string, args ...any) {
	if m.opts.Logf != nil {
		m.opts.Logf(format, args...)
	}
}

// replayState folds the manifest and WAL into the final durable view.
func replayState(dir string) (refs map[string]entryState, maxGen uint64, walRecords int, torn bool, err error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, 0, 0, false, err
	}
	refs = make(map[string]entryState)
	maxGen = man.NextGen
	for _, e := range man.Graphs {
		fp, ferr := e.fingerprint()
		if ferr != nil {
			return nil, 0, 0, false, ferr
		}
		refs[e.Name] = entryState{gen: e.Generation, fp: fp, snap: e.Snapshot}
		if e.Generation > maxGen {
			maxGen = e.Generation
		}
	}
	walRecords, _, torn, err = replayWAL(filepath.Join(dir, walName), func(r walRecord) {
		if r.gen > maxGen {
			maxGen = r.gen
		}
		cur, ok := refs[r.name]
		switch r.op {
		case walOpRegister:
			// Generation-compared apply keeps replay idempotent: a record
			// already folded into the manifest (compaction crashed before
			// the truncate) re-applies as a no-op.
			if !ok || r.gen > cur.gen {
				refs[r.name] = entryState{gen: r.gen, fp: r.fp, snap: r.snap}
			}
		case walOpUnregister:
			if ok && cur.gen <= r.gen {
				delete(refs, r.name)
			}
		}
	})
	if err != nil {
		return nil, 0, 0, false, err
	}
	return refs, maxGen, walRecords, torn, nil
}

// recover rebuilds the in-memory registry from the durable state.
func (m *Manager) recover() error {
	start := time.Now()
	refs, maxGen, walRecords, torn, err := replayState(m.opts.Dir)
	if err != nil {
		return err
	}
	m.recovery.WALRecords = walRecords
	m.recovery.TornTail = torn
	if torn {
		m.logf("store: truncated torn WAL tail (crash mid-append)")
	}

	// Deterministic restore order so logs and tests are stable.
	names := make([]string, 0, len(refs))
	for name := range refs {
		names = append(names, name)
	}
	sort.Strings(names)
	now := time.Now()
	for _, name := range names {
		st := refs[name]
		path := filepath.Join(m.opts.Dir, snapshotsDir, st.snap)
		snap, oerr := OpenSnapshot(path, LoadOptions{MMap: m.opts.MMap, VerifyFingerprint: m.opts.VerifyFingerprint})
		if oerr == nil && snap.Fingerprint != st.fp {
			snap.Close()
			oerr = corruptf("snapshot %s carries fingerprint %s, registry expects %s",
				st.snap, hex.EncodeToString(snap.Fingerprint[:8]), hex.EncodeToString(st.fp[:8]))
		}
		if oerr != nil {
			// One bad snapshot never fails the restart: skip the graph,
			// keep serving the rest. The entry stays out of refs, so the
			// next compaction drops it from the manifest and GCs the file.
			m.logf("store: skipping graph %q: %v", name, oerr)
			m.recovery.Skipped++
			delete(refs, name)
			continue
		}
		if m.svc != nil {
			if _, rerr := m.svc.RestoreGraph(name, snap.Graph, st.gen, now); rerr != nil {
				snap.Close()
				return fmt.Errorf("store: restore %q: %w", name, rerr)
			}
		}
		m.snaps = append(m.snaps, snap)
		m.snapSizes[st.snap] = snap.Size
		m.recovery.Recovered++
	}
	if m.svc != nil {
		m.svc.SetGenerationFloor(maxGen)
	}
	m.refs = refs
	m.maxGen = maxGen
	m.recovery.Duration = time.Since(start)
	return nil
}

// hook runs the crash-harness injection point.
func (m *Manager) hook(step string) error {
	if m.testHook != nil {
		return m.testHook(step)
	}
	return nil
}

// writeSnapshot persists the graph's bytes content-addressed under
// snapshots/, reusing an existing file for identical content, and
// returns the relative filename. data is the pre-encoded form when the
// caller already holds it (snapshot uploads), nil to encode g here.
func (m *Manager) writeSnapshot(g *graph.Graph, data []byte, fp graph.Fingerprint) (string, error) {
	if data == nil {
		var err error
		data, fp, err = Encode(g)
		if err != nil {
			return "", err
		}
	}
	name := snapshotFileName(fp)
	path := filepath.Join(m.opts.Dir, snapshotsDir, name)
	if st, serr := os.Stat(path); serr == nil && st.Size() == int64(len(data)) {
		// Content-addressed hit: the bytes are already durable.
		m.snapSizes[name] = st.Size()
		return name, nil
	}
	if err := m.hook("snapshot"); err != nil {
		return "", err
	}
	if err := writeFileAtomic(path, data); err != nil {
		return "", err
	}
	m.snapSizes[name] = int64(len(data))
	m.mSnapshots.add(1)
	return name, nil
}

// RegisterGraph persists g (snapshot, then registry, then WAL record)
// and registers it under name. The write order bounds what a crash can
// lose: before the WAL append the registration simply never happened;
// after it, recovery restores the graph exactly. An error wrapping
// ErrNotDurable means the graph is serving but a restart may drop it.
func (m *Manager) RegisterGraph(name string, g *graph.Graph, replace bool) (service.GraphInfo, error) {
	return m.register(name, g, nil, graph.FingerprintOf(g), replace)
}

// RegisterSnapshot registers pre-encoded snapshot bytes (the
// application/x-smatch-snapshot upload path): the bytes are verified
// by Decode, persisted verbatim, and the decoded graph — zero-copy
// over data — is registered. data must not be modified afterwards.
func (m *Manager) RegisterSnapshot(name string, data []byte, replace bool) (service.GraphInfo, error) {
	g, fp, err := Decode(data, DecodeOptions{ZeroCopy: true})
	if err != nil {
		return service.GraphInfo{}, err
	}
	return m.register(name, g, data, fp, replace)
}

func (m *Manager) register(name string, g *graph.Graph, encoded []byte, fp graph.Fingerprint, replace bool) (service.GraphInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return service.GraphInfo{}, fmt.Errorf("store: closed")
	}
	snapName, err := m.writeSnapshot(g, encoded, fp)
	if err != nil {
		return service.GraphInfo{}, err
	}
	if err := m.hook("registry"); err != nil {
		return service.GraphInfo{}, err
	}
	info, err := m.svc.RegisterGraph(name, g, replace)
	if err != nil {
		// The snapshot file may be orphaned; compaction GCs it.
		return service.GraphInfo{}, err
	}
	if err := m.hook("wal"); err != nil {
		return info, fmt.Errorf("%w: %v", ErrNotDurable, err)
	}
	rec := walRecord{op: walOpRegister, gen: info.Generation, fp: fp, name: name, snap: snapName}
	if err := m.wal.append(rec); err != nil {
		return info, fmt.Errorf("%w: %v", ErrNotDurable, err)
	}
	m.refs[name] = entryState{gen: info.Generation, fp: fp, snap: snapName}
	if info.Generation > m.maxGen {
		m.maxGen = info.Generation
	}
	m.mWALRecords.add(1)
	m.sinceComp++
	m.maybeCompactLocked()
	return info, nil
}

// UnregisterGraph removes the graph from the registry and logs the
// removal; the snapshot file is garbage-collected at the next
// compaction (another name may still reference it).
func (m *Manager) UnregisterGraph(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("store: closed")
	}
	gen, err := m.svc.UnregisterGraph(name)
	if err != nil {
		return err
	}
	if err := m.hook("wal"); err != nil {
		return fmt.Errorf("%w: %v", ErrNotDurable, err)
	}
	if err := m.wal.append(walRecord{op: walOpUnregister, gen: gen, name: name}); err != nil {
		return fmt.Errorf("%w: %v", ErrNotDurable, err)
	}
	delete(m.refs, name)
	m.mWALRecords.add(1)
	m.sinceComp++
	m.maybeCompactLocked()
	return nil
}

func (m *Manager) maybeCompactLocked() {
	if m.opts.CompactEvery > 0 && m.sinceComp >= m.opts.CompactEvery {
		if err := m.compactLocked(); err != nil {
			m.logf("store: compaction failed: %v", err)
		}
	}
}

// Compact checkpoints the live state into the manifest, truncates the
// WAL, and deletes unreferenced snapshot files.
func (m *Manager) Compact() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("store: closed")
	}
	return m.compactLocked()
}

func (m *Manager) compactLocked() error {
	man := &manifest{Version: 1, NextGen: m.maxGen}
	names := make([]string, 0, len(m.refs))
	for name := range m.refs {
		names = append(names, name)
	}
	sort.Strings(names)
	live := make(map[string]bool, len(names))
	for _, name := range names {
		st := m.refs[name]
		man.Graphs = append(man.Graphs, manifestEntry{
			Name:        name,
			Generation:  st.gen,
			Fingerprint: hex.EncodeToString(st.fp[:]),
			Snapshot:    st.snap,
		})
		live[st.snap] = true
	}
	if err := writeManifest(m.opts.Dir, man); err != nil {
		return err
	}
	// The manifest now owns the state; the log can restart empty. A
	// crash before the truncate replays already-checkpointed records,
	// which the generation-compared apply makes a no-op.
	if err := m.wal.reset(); err != nil {
		return err
	}
	m.sinceComp = 0

	// GC snapshots nothing references. Registrations serialize on m.mu,
	// so no snapshot can be written-but-unlogged while we scan.
	dir := filepath.Join(m.opts.Dir, snapshotsDir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || live[e.Name()] {
			continue
		}
		if err := os.Remove(filepath.Join(dir, e.Name())); err == nil {
			delete(m.snapSizes, e.Name())
		}
	}
	return nil
}

// RecoveryStats returns the startup replay summary.
func (m *Manager) RecoveryStats() RecoveryStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recovery
}

// Stats snapshots the store's operational state.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		Dir:      m.opts.Dir,
		MMap:     m.opts.MMap,
		Graphs:   len(m.refs),
		Recovery: m.recovery,
	}
	seen := make(map[string]bool)
	for _, e := range m.refs {
		if !seen[e.snap] {
			seen[e.snap] = true
			st.Snapshots++
			st.SnapBytes += m.snapSizes[e.snap]
		}
	}
	if m.wal != nil {
		st.WALBytes = m.wal.size
		st.WALRecords = m.wal.records
	}
	return st
}

// Close checkpoints (so the next start replays an empty WAL), closes
// the log, and releases every mmap. The service must have drained —
// mmap-loaded graphs are invalid after Close.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	var first error
	if m.wal != nil {
		if err := m.compactLocked(); err != nil && first == nil {
			first = err
		}
		if err := m.wal.close(); err != nil && first == nil {
			first = err
		}
	}
	for _, s := range m.snaps {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	m.snaps = nil
	return first
}
