// Package glasgow implements a constraint-programming subgraph matching
// solver in the style of the Glasgow subgraph solver (paper Section 3.5):
// query vertices are variables, query edges are constraints, and the
// domains are bitsets over the data vertices.
//
// Key behaviours reproduced from the paper's description:
//
//   - Domains are initialized from labels, degrees and neighbor-degree
//     sequences; no edges between candidates are maintained.
//   - No matching order is computed in advance; at each search node the
//     unassigned variable with the smallest domain is picked (MRV).
//   - Values are tried in descending data-vertex degree order, the
//     solution-biased heuristic of a solver optimized for decision
//     problems.
//   - Assignments propagate by forward checking over bitset domains plus
//     all-different value removal.
//   - The solver is memory-hungry: it materializes an adjacency bitset
//     per data vertex (O(|V(G)|²) bits) and a domain trail per search
//     level. A configurable budget turns the paper's "GLW runs out of
//     memory on large datasets" into a clean ErrOutOfMemory.
package glasgow

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"subgraphmatching/internal/bitset"
	"subgraphmatching/internal/graph"
)

// ErrOutOfMemory is returned when the estimated working-set size exceeds
// the configured budget. The paper reports exactly this failure mode for
// Glasgow on all but the smallest datasets.
var ErrOutOfMemory = errors.New("glasgow: memory budget exceeded")

// DefaultMemoryBudget bounds the solver's bitset working set.
const DefaultMemoryBudget int64 = 1 << 30 // 1 GiB

// Options configures a Solve call.
type Options struct {
	// MaxEmbeddings stops the search after this many matches (0 =
	// unlimited).
	MaxEmbeddings uint64
	// TimeLimit bounds the wall-clock search time (0 = unlimited).
	TimeLimit time.Duration
	// MemoryBudget bounds the bitset working set in bytes; 0 selects
	// DefaultMemoryBudget.
	MemoryBudget int64
	// OnMatch, when non-nil, receives each embedding (indexed by query
	// vertex; the slice is reused). Returning false aborts the search.
	// Under parallel execution calls are serialized but unordered.
	OnMatch func(mapping []uint32) bool
	// Parallel splits the search across this many goroutines by
	// partitioning the first branching variable's domain (pGlasgow's
	// scheme); 0 or 1 = sequential. The memory budget accounts for the
	// per-worker domain trails.
	Parallel int
	// Cancel, when non-nil, is polled periodically; setting it to true
	// stops the search cooperatively (not reported as a timeout). Under
	// parallel execution the same flag doubles as the workers' shared
	// stop signal, so hand each run its own flag.
	Cancel *atomic.Bool
}

// Stats reports the outcome of a Solve call.
type Stats struct {
	Embeddings  uint64
	Nodes       uint64
	TimedOut    bool
	LimitHit    bool
	Duration    time.Duration
	MemoryBytes int64 // bitset working set actually allocated
}

// Solved reports whether the search ran to completion or hit the
// embedding cap.
func (s *Stats) Solved() bool { return !s.TimedOut }

// Solve finds all subgraph isomorphisms from q to g.
func Solve(q, g *graph.Graph, opts Options) (*Stats, error) {
	nQ, nG := q.NumVertices(), g.NumVertices()
	if nQ == 0 {
		return &Stats{}, nil
	}
	if !q.IsConnected() {
		return nil, fmt.Errorf("glasgow: query graph must be connected")
	}
	budget := opts.MemoryBudget
	if budget == 0 {
		budget = DefaultMemoryBudget
	}
	workers := opts.Parallel
	if workers < 1 {
		workers = 1
	}
	words := int64((nG + 63) / 64)
	// Working set: adjacency bitsets (nG rows, shared) + one domain
	// trail ((nQ+1) levels of nQ domains) per worker.
	need := words*8*int64(nG) + words*8*int64(nQ)*int64(nQ+1)*int64(workers)
	if need > budget {
		return nil, fmt.Errorf("%w: need %d bytes, budget %d", ErrOutOfMemory, need, budget)
	}

	s := &solver{q: q, g: g, opts: opts, stats: &Stats{MemoryBytes: need}, cancel: opts.Cancel}
	s.buildAdjacency()
	if !s.initDomains() {
		s.stats.Duration = 0
		return s.stats, nil // some variable has an empty domain: no matches
	}
	start := time.Now()
	if workers > 1 {
		solveParallel(s, workers)
		s.stats.Duration = time.Since(start)
		return s.stats, nil
	}
	if opts.TimeLimit > 0 {
		s.deadline = start.Add(opts.TimeLimit)
	}
	s.search(0)
	s.stats.Duration = time.Since(start)
	return s.stats, nil
}

type solver struct {
	q, g  *graph.Graph
	opts  Options
	stats *Stats

	adj     []*bitset.Set   // adjacency bitset per data vertex
	qadj    [][]bool        // query adjacency matrix
	domains [][]*bitset.Set // trail: domains[level][queryVertex]

	assigned   []bool
	assignment []uint32
	byDegree   [][]uint32 // scratch for value ordering per level

	deadline time.Time
	ticker   int
	aborted  bool
	cancel   *atomicBool // optional cooperative stop (parallel workers)
}

func (s *solver) buildAdjacency() {
	nG := s.g.NumVertices()
	s.adj = make([]*bitset.Set, nG)
	for v := 0; v < nG; v++ {
		b := bitset.New(nG)
		for _, w := range s.g.Neighbors(graph.Vertex(v)) {
			b.Set(w)
		}
		s.adj[v] = b
	}
}

// initDomains computes the level-0 domains from labels, degrees and
// neighbor degree sequences, and reports whether all are non-empty.
func (s *solver) initDomains() bool {
	nQ, nG := s.q.NumVertices(), s.g.NumVertices()
	s.domains = make([][]*bitset.Set, nQ+1)
	for lvl := range s.domains {
		s.domains[lvl] = make([]*bitset.Set, nQ)
		for u := range s.domains[lvl] {
			s.domains[lvl][u] = bitset.New(nG)
		}
	}
	s.assigned = make([]bool, nQ)
	s.assignment = make([]uint32, nQ)
	s.byDegree = make([][]uint32, nQ)
	s.qadj = make([][]bool, nQ)
	for u := 0; u < nQ; u++ {
		s.qadj[u] = make([]bool, nQ)
		for _, un := range s.q.Neighbors(graph.Vertex(u)) {
			s.qadj[u][un] = true
		}
	}

	var qSeq, gSeq []int
	ok := true
	for u := 0; u < nQ; u++ {
		uu := graph.Vertex(u)
		qSeq = s.q.NeighborDegreesDescending(uu, qSeq)
		d := s.domains[0][u]
		any := false
		for _, v := range s.g.VerticesWithLabel(s.q.Label(uu)) {
			if s.g.Degree(v) < s.q.Degree(uu) {
				continue
			}
			gSeq = s.g.NeighborDegreesDescending(v, gSeq)
			if !dominates(gSeq, qSeq) {
				continue
			}
			d.Set(v)
			any = true
		}
		ok = ok && any
	}
	return ok
}

// dominates reports whether the descending sequence a pointwise covers b:
// a[i] >= b[i] for all i < len(b). Requires len(a) >= len(b).
func dominates(a, b []int) bool {
	if len(a) < len(b) {
		return false
	}
	for i := range b {
		if a[i] < b[i] {
			return false
		}
	}
	return true
}

func (s *solver) enterNode() bool {
	s.stats.Nodes++
	s.ticker++
	if s.ticker >= 1<<12 {
		s.ticker = 0
		if s.cancel != nil && s.cancel.Load() {
			s.aborted = true
			return false
		}
		if !s.deadline.IsZero() && time.Now().After(s.deadline) {
			s.stats.TimedOut = true
			s.aborted = true
			return false
		}
	}
	return true
}

// search explores assignments at the given trail level; domains[level]
// holds the current domains.
func (s *solver) search(level int) bool {
	if !s.enterNode() {
		return false
	}
	// MRV: smallest domain among unassigned variables.
	u := -1
	best := 0
	for i := 0; i < s.q.NumVertices(); i++ {
		if s.assigned[i] {
			continue
		}
		c := s.domains[level][i].Count()
		if u < 0 || c < best {
			u, best = i, c
		}
	}
	if u < 0 {
		// All assigned: report the embedding.
		s.stats.Embeddings++
		if s.opts.OnMatch != nil && !s.opts.OnMatch(s.assignment) {
			s.aborted = true
			return false
		}
		if s.opts.MaxEmbeddings > 0 && s.stats.Embeddings >= s.opts.MaxEmbeddings {
			s.stats.LimitHit = true
			s.aborted = true
			return false
		}
		return true
	}

	// Value order: descending degree (solution-biased).
	vals := s.byDegree[level%len(s.byDegree)][:0]
	s.domains[level][u].ForEach(func(v uint32) bool {
		vals = append(vals, v)
		return true
	})
	s.byDegree[level%len(s.byDegree)] = vals
	sort.Slice(vals, func(i, j int) bool {
		di, dj := s.g.Degree(vals[i]), s.g.Degree(vals[j])
		if di != dj {
			return di > dj
		}
		return vals[i] < vals[j]
	})

	for _, v := range vals {
		if s.propagate(level, graph.Vertex(u), v) {
			s.assigned[u] = true
			s.assignment[u] = v
			cont := s.search(level + 1)
			s.assigned[u] = false
			if !cont {
				return false
			}
		}
	}
	return true
}

// propagate copies domains[level] to domains[level+1] restricted by the
// assignment u := v: v is removed from every other domain
// (all-different) and the domains of u's query neighbors are intersected
// with v's adjacency bitset (forward checking). It reports whether all
// unassigned domains stay non-empty.
func (s *solver) propagate(level int, u graph.Vertex, v uint32) bool {
	next := s.domains[level+1]
	cur := s.domains[level]
	nQ := s.q.NumVertices()
	for i := 0; i < nQ; i++ {
		if s.assigned[i] || i == int(u) {
			continue
		}
		d := next[i]
		d.CopyFrom(cur[i])
		d.Clear(v)
		if s.qadj[u][i] {
			d.IntersectWith(s.adj[v])
		}
		if !d.Any() {
			return false
		}
	}
	return true
}
