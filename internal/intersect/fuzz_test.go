package intersect

import (
	"bytes"
	"testing"
)

// decodeSorted turns fuzz bytes into a sorted strictly-increasing set:
// each byte is a gap in [1,16], so mutated inputs stay valid while
// low-gap runs produce the dense shared-block layouts the word-parallel
// kernel targets and high gaps produce sparse one-element blocks.
func decodeSorted(raw []byte) []uint32 {
	out := make([]uint32, 0, len(raw))
	v := uint32(0)
	for _, b := range raw {
		v += uint32(b&15) + 1
		out = append(out, v)
	}
	return out
}

// FuzzIntersectKernels cross-checks every intersection implementation —
// the three slice kernels, the boxed block layout, the flat arena
// layout, and the selector under every policy — for identical outputs
// and cardinalities on arbitrary inputs.
func FuzzIntersectKernels(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 1, 1, 1}, []byte{2, 4, 8})
	f.Add(bytes.Repeat([]byte{0}, 200), bytes.Repeat([]byte{15}, 3)) // dense vs skewed-small
	f.Add(bytes.Repeat([]byte{15}, 100), bytes.Repeat([]byte{1}, 100))
	f.Fuzz(func(t *testing.T, aRaw, bRaw []byte) {
		if len(aRaw) > 4096 || len(bRaw) > 4096 {
			t.Skip()
		}
		a, b := decodeSorted(aRaw), decodeSorted(bRaw)
		want := Merge(nil, a, b)

		if got := Galloping(nil, a, b); !equal(got, want) {
			t.Fatalf("Galloping = %v, want %v", got, want)
		}
		if got := Hybrid(nil, a, b); !equal(got, want) {
			t.Fatalf("Hybrid = %v, want %v", got, want)
		}
		if got := Count(a, b); got != len(want) {
			t.Fatalf("Count = %d, want %d", got, len(want))
		}

		ba, bb := NewBlockSet(a), NewBlockSet(b)
		if got := IntersectBlocks(nil, ba, bb); !equal(got, want) {
			t.Fatalf("IntersectBlocks = %v, want %v", got, want)
		}
		if got := IntersectBlocksCount(ba, bb); got != len(want) {
			t.Fatalf("IntersectBlocksCount = %d, want %d", got, len(want))
		}

		fl := buildFlat([][]uint32{a, b})
		av, bv := fl.View(0), fl.View(1)
		if got := av.Elements(nil); !equal(got, a) {
			t.Fatalf("flat roundtrip = %v, want %v", got, a)
		}
		if got := IntersectViews(nil, av, bv); !equal(got, want) {
			t.Fatalf("IntersectViews = %v, want %v", got, want)
		}
		if got := CountViews(av, bv); got != len(want) {
			t.Fatalf("CountViews = %d, want %d", got, len(want))
		}
		if got := IntersectViewWithSorted(nil, av, b); !equal(got, want) {
			t.Fatalf("IntersectViewWithSorted = %v, want %v", got, want)
		}

		for _, p := range policies() {
			var s Selector
			s.SetPolicy(p)
			if got := s.Pair(nil, a, b, av, bv); !equal(got, want) {
				t.Fatalf("Selector(%v).Pair = %v, want %v", p, got, want)
			}
			if got := s.Many(nil, [][]uint32{a, b, a}, []BlockView{av, bv, av}); !equal(got, want) {
				t.Fatalf("Selector(%v).Many = %v, want %v", p, got, want)
			}
			if len(a) > 0 && len(b) > 0 && s.Stats().Total() == 0 {
				t.Fatalf("Selector(%v): no kernel executions tallied", p)
			}
		}
	})
}
