package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"subgraphmatching/internal/enumerate"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/order"
	"subgraphmatching/internal/testutil"
)

func TestNECTriangle(t *testing.T) {
	// Unlabeled triangle: all three vertices are closed twins.
	q := graph.MustFromEdges(make([]graph.Label, 3), [][2]graph.Vertex{{0, 1}, {1, 2}, {0, 2}})
	classes := NeighborhoodEquivalenceClasses(q)
	if len(classes) != 1 || len(classes[0]) != 3 {
		t.Fatalf("classes = %v", classes)
	}
	if OrbitMultiplier(classes) != 6 {
		t.Errorf("multiplier = %d, want 6", OrbitMultiplier(classes))
	}
}

func TestNECPathAndStar(t *testing.T) {
	// Path 0-1-2: endpoints are open twins.
	path := graph.MustFromEdges(make([]graph.Label, 3), [][2]graph.Vertex{{0, 1}, {1, 2}})
	classes := NeighborhoodEquivalenceClasses(path)
	if len(classes) != 1 || !reflect.DeepEqual(classes[0], []graph.Vertex{0, 2}) {
		t.Fatalf("path classes = %v", classes)
	}
	// Star with 4 leaves: the leaves form one open class of 4.
	star := graph.MustFromEdges(make([]graph.Label, 5),
		[][2]graph.Vertex{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	classes = NeighborhoodEquivalenceClasses(star)
	if len(classes) != 1 || len(classes[0]) != 4 {
		t.Fatalf("star classes = %v", classes)
	}
	if OrbitMultiplier(classes) != 24 {
		t.Errorf("star multiplier = %d, want 24", OrbitMultiplier(classes))
	}
}

func TestNECRespectsLabels(t *testing.T) {
	// Path with differently-labeled endpoints: no classes.
	q := graph.MustFromEdges([]graph.Label{0, 1, 2}, [][2]graph.Vertex{{0, 1}, {1, 2}})
	if classes := NeighborhoodEquivalenceClasses(q); len(classes) != 0 {
		t.Fatalf("classes = %v, want none", classes)
	}
}

func TestSymmetryBreakingPreservesCounts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Few labels so twins actually occur.
		g := testutil.RandomGraph(rng, 15+rng.Intn(15), 40+rng.Intn(40), 1+rng.Intn(2))
		q := testutil.RandomConnectedQuery(rng, g, 3+rng.Intn(3))
		if q == nil {
			return true
		}
		base := Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Intersect}
		sym := base
		sym.SymmetryBreaking = true
		symFS := sym
		symFS.FailingSets = true
		a, err1 := Match(q, g, base, Limits{})
		b, err2 := Match(q, g, sym, Limits{})
		c, err3 := Match(q, g, symFS, Limits{})
		if err1 != nil || err2 != nil || err3 != nil {
			t.Logf("errors: %v %v %v", err1, err2, err3)
			return false
		}
		if a.Embeddings != b.Embeddings || a.Embeddings != c.Embeddings {
			t.Logf("counts differ: base=%d sym=%d sym+fs=%d (seed %d, classes %v)",
				a.Embeddings, b.Embeddings, c.Embeddings, seed, NeighborhoodEquivalenceClasses(q))
			return false
		}
		return b.Nodes <= a.Nodes // breaking symmetry must not expand the search
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSymmetryBreakingTriangleInClique(t *testing.T) {
	var edges [][2]graph.Vertex
	for i := 0; i < 7; i++ {
		for j := i + 1; j < 7; j++ {
			edges = append(edges, [2]graph.Vertex{graph.Vertex(i), graph.Vertex(j)})
		}
	}
	g := graph.MustFromEdges(make([]graph.Label, 7), edges)
	q := graph.MustFromEdges(make([]graph.Label, 3), [][2]graph.Vertex{{0, 1}, {1, 2}, {0, 2}})
	cfg := Config{Filter: filter.LDF, Order: order.GQL, Local: enumerate.Intersect, SymmetryBreaking: true}
	res, err := Match(q, g, cfg, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	// 7*6*5 = 210 embeddings from 35 canonical triangles x 6.
	if res.Embeddings != 210 {
		t.Errorf("Embeddings = %d, want 210", res.Embeddings)
	}
}

func TestHomomorphismCounts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 10+rng.Intn(12), 25+rng.Intn(30), 2)
		q := testutil.RandomConnectedQuery(rng, g, 3+rng.Intn(2))
		if q == nil {
			return true
		}
		want := testutil.BruteForceHomomorphismCount(q, g)
		for _, cfg := range []Config{
			{Local: enumerate.Direct, Order: order.RI, Homomorphism: true},
			{Local: enumerate.Intersect, Order: order.GQL, Homomorphism: true},
			{Local: enumerate.Intersect, Order: order.GQL, Homomorphism: true, FailingSets: true},
		} {
			res, err := Match(q, g, cfg, Limits{})
			if err != nil {
				t.Logf("hom: %v", err)
				return false
			}
			if res.Embeddings != want {
				t.Logf("hom count %d, brute force %d (seed %d, cfg %+v)", res.Embeddings, want, seed, cfg)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHomomorphismSupersetOfIsomorphism(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	iso, err := Match(q, g, PresetConfig(Optimized, q, g), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	hom, err := Match(q, g, Config{Local: enumerate.Intersect, Order: order.GQL, Homomorphism: true}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if hom.Embeddings < iso.Embeddings {
		t.Errorf("homomorphisms (%d) < isomorphisms (%d)", hom.Embeddings, iso.Embeddings)
	}
}

func TestHomomorphismIncompatibilities(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	if _, err := Match(q, g, Config{UseGlasgow: true, Homomorphism: true}, Limits{}); err == nil {
		t.Error("expected error for Glasgow + homomorphism")
	}
	cfg := Config{Local: enumerate.Intersect, Order: order.GQL, Homomorphism: true, SymmetryBreaking: true}
	if _, err := Match(q, g, cfg, Limits{}); err == nil {
		t.Error("expected error for symmetry breaking + homomorphism")
	}
	cfg = Config{Local: enumerate.Intersect, Order: order.GQL, Homomorphism: true}
	if _, err := Match(q, g, cfg, Limits{Parallel: 4}); err == nil {
		t.Error("expected error for parallel + homomorphism")
	}
}
