package store

import (
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FsckResult is one graph's verification outcome.
type FsckResult struct {
	Name        string
	Generation  uint64
	Snapshot    string
	Bytes       int64
	Err         error // nil when the snapshot verified clean
	Fingerprint string
}

// FsckReport summarizes a full data-directory walk.
type FsckReport struct {
	Graphs     []FsckResult
	WALRecords int
	WALBytes   int64
	TornTail   bool
	// Orphans are snapshot files no live registry entry references —
	// harmless garbage a compaction would collect.
	Orphans []string
	// Errors counts graphs whose snapshot failed verification.
	Errors int
}

// Fsck walks a data directory read-only: it replays the manifest and
// WAL (without truncating anything), then opens every live snapshot
// with the full fingerprint check — per-section CRCs plus the sha256
// of the decoded CSR against the trailer. It never modifies the
// directory.
func Fsck(dir string) (*FsckReport, error) {
	refs, _, walRecords, torn, err := fsckReplay(dir)
	if err != nil {
		return nil, err
	}
	rep := &FsckReport{
		WALRecords: walRecords,
		WALBytes:   walSizeOf(filepath.Join(dir, walName)),
		TornTail:   torn,
	}
	names := make([]string, 0, len(refs))
	live := make(map[string]bool)
	for name := range refs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := refs[name]
		live[st.snap] = true
		res := FsckResult{
			Name:        name,
			Generation:  st.gen,
			Snapshot:    st.snap,
			Fingerprint: hex.EncodeToString(st.fp[:]),
		}
		snap, oerr := OpenSnapshot(filepath.Join(dir, snapshotsDir, st.snap),
			LoadOptions{VerifyFingerprint: true})
		if oerr != nil {
			res.Err = oerr
			rep.Errors++
		} else {
			if snap.Fingerprint != st.fp {
				res.Err = corruptf("snapshot fingerprint %s does not match registry record %s",
					hex.EncodeToString(snap.Fingerprint[:8]), hex.EncodeToString(st.fp[:8]))
				rep.Errors++
			}
			res.Bytes = snap.Size
			snap.Close()
		}
		rep.Graphs = append(rep.Graphs, res)
	}
	entries, derr := os.ReadDir(filepath.Join(dir, snapshotsDir))
	if derr == nil {
		for _, e := range entries {
			if !e.IsDir() && !live[e.Name()] {
				rep.Orphans = append(rep.Orphans, e.Name())
			}
		}
	}
	return rep, nil
}

// fsckReplay is replayState without the torn-tail truncation side
// effect: fsck must leave the directory untouched.
func fsckReplay(dir string) (map[string]entryState, uint64, int, bool, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, 0, 0, false, err
	}
	refs := make(map[string]entryState)
	maxGen := man.NextGen
	for _, e := range man.Graphs {
		fp, ferr := e.fingerprint()
		if ferr != nil {
			return nil, 0, 0, false, ferr
		}
		refs[e.Name] = entryState{gen: e.Generation, fp: fp, snap: e.Snapshot}
		if e.Generation > maxGen {
			maxGen = e.Generation
		}
	}
	records, torn, err := scanWAL(filepath.Join(dir, walName), func(r walRecord) {
		if r.gen > maxGen {
			maxGen = r.gen
		}
		cur, ok := refs[r.name]
		switch r.op {
		case walOpRegister:
			if !ok || r.gen > cur.gen {
				refs[r.name] = entryState{gen: r.gen, fp: r.fp, snap: r.snap}
			}
		case walOpUnregister:
			if ok && cur.gen <= r.gen {
				delete(refs, r.name)
			}
		}
	})
	return refs, maxGen, records, torn, err
}

// WriteReport renders the report for the CLI.
func (r *FsckReport) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "wal: %d records, %d bytes", r.WALRecords, r.WALBytes)
	if r.TornTail {
		fmt.Fprintf(w, " (torn tail present)")
	}
	fmt.Fprintln(w)
	for _, g := range r.Graphs {
		if g.Err != nil {
			fmt.Fprintf(w, "FAIL %-24s gen %-4d %s: %v\n", g.Name, g.Generation, g.Snapshot, g.Err)
		} else {
			fmt.Fprintf(w, "ok   %-24s gen %-4d %s (%d bytes, fp %s)\n",
				g.Name, g.Generation, g.Snapshot, g.Bytes, g.Fingerprint[:16])
		}
	}
	for _, o := range r.Orphans {
		fmt.Fprintf(w, "orphan snapshot: %s\n", o)
	}
	fmt.Fprintf(w, "fsck: %d graphs, %d errors, %d orphans\n", len(r.Graphs), r.Errors, len(r.Orphans))
}
