package subgraphmatching

import (
	"time"

	"subgraphmatching/internal/compress"
)

// CompressionRatio reports how compressible g is under BoostIso-style
// twin merging (paper Section 3.4): |V(compressed)| / |V(g)|. A ratio of
// 1 means no two data vertices are interchangeable; the paper's cited
// finding is that compression only pays on very dense graphs, where the
// ratio drops well below 1.
func CompressionRatio(g *Graph) (float64, error) {
	c, err := compress.Build(g)
	if err != nil {
		return 0, err
	}
	return c.Ratio(), nil
}

// CountCompressed counts the embeddings of q in g exactly by matching
// over the twin-compressed data graph and expanding hypervertex
// capacities with falling factorials. On graphs with many
// interchangeable vertices (dense cores, repeated fringes) the
// compressed search visits far fewer nodes than direct enumeration; on
// incompressible graphs it degrades to a plain unindexed search, so
// prefer Match/Count unless CompressionRatio is well below 1.
func CountCompressed(q, g *Graph, timeLimit time.Duration) (uint64, error) {
	c, err := compress.Build(g)
	if err != nil {
		return 0, err
	}
	res, err := compress.Count(q, c, compress.CountOptions{TimeLimit: timeLimit})
	if err != nil {
		return 0, err
	}
	return res.Embeddings, nil
}
