package flight

import (
	"encoding/json"
	"io"
	"time"

	"subgraphmatching/internal/obs"
)

// chromeEvent is one trace event in the Chrome trace-event format
// (chrome://tracing, Perfetto): "X" complete events with microsecond
// timestamps.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports a span tree in the Chrome trace-event JSON
// format, loadable in chrome://tracing or Perfetto. Timestamps are
// microseconds relative to the root span's start; annotation spans
// (zero start time, e.g. per-worker tallies) inherit their parent's
// timestamp so they appear as zero-width markers in the right place.
func WriteChromeTrace(w io.Writer, root *obs.Span) error {
	tr := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	if root != nil {
		appendChromeEvents(&tr.TraceEvents, root, root.Start, root.Start)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

func appendChromeEvents(events *[]chromeEvent, s *obs.Span, base, parentStart time.Time) {
	start := s.Start
	if start.IsZero() {
		start = parentStart
	}
	ts := 0.0
	if !base.IsZero() && !start.IsZero() {
		ts = float64(start.Sub(base)) / float64(time.Microsecond)
	}
	ev := chromeEvent{
		Name: s.Name,
		Cat:  "smatch",
		Ph:   "X",
		Ts:   ts,
		Dur:  float64(s.Duration) / float64(time.Microsecond),
		Pid:  1,
		Tid:  1,
	}
	if len(s.Attrs) > 0 {
		ev.Args = make(map[string]any, len(s.Attrs))
		for _, a := range s.Attrs {
			ev.Args[a.Key] = a.Value
		}
	}
	*events = append(*events, ev)
	for _, c := range s.Children {
		appendChromeEvents(events, c, base, start)
	}
}
