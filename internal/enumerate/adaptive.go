package enumerate

import (
	"subgraphmatching/internal/bitset"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/intersect"
)

// DP-iso's adaptive matching order (Section 3.2): the BFS order delta
// defines a DAG over the query (edges point from earlier to later delta
// positions). A vertex is extendable once all its DAG parents are
// mapped; its local candidates are computed at that moment (they depend
// only on the parents' mappings, so they stay valid while the vertex
// waits in the pool). At each search node the engine maps the extendable
// vertex with the smallest estimated cost — the path-count weight sum
// when AdaptiveWeights is provided, otherwise the local candidate count.

type adaptiveState struct {
	bwdDelta    [][]graph.Vertex // backward neighbors w.r.t. delta
	fwdDelta    [][]graph.Vertex // forward neighbors w.r.t. delta
	parentsLeft []int            // unmapped DAG parents per query vertex
	pool        []graph.Vertex   // currently extendable vertices
	lcOf        [][]uint32       // local candidates, computed at activation
	weightOf    []float64        // selection weight, computed at activation
}

func (e *engine) initAdaptive() {
	n := e.q.NumVertices()
	a := &e.adaptive
	a.bwdDelta = make([][]graph.Vertex, n)
	a.fwdDelta = make([][]graph.Vertex, n)
	a.parentsLeft = make([]int, n)
	a.lcOf = make([][]uint32, n)
	a.weightOf = make([]float64, n)
	for u := 0; u < n; u++ {
		uu := graph.Vertex(u)
		for _, un := range e.q.Neighbors(uu) {
			if e.pos[un] < e.pos[uu] {
				a.bwdDelta[u] = append(a.bwdDelta[u], un)
			} else {
				a.fwdDelta[u] = append(a.fwdDelta[u], un)
			}
		}
		a.parentsLeft[u] = len(a.bwdDelta[u])
	}
}

// activationWeight estimates the cost of extending u with the given
// local candidates.
func (e *engine) activationWeight(u graph.Vertex, lc []uint32) float64 {
	w := e.opts.AdaptiveWeights
	if w == nil || w[u] == nil {
		return float64(len(lc))
	}
	// lc and cand[u] are both sorted; a merge walk recovers candidate
	// indices without per-element binary searches.
	total := 0.0
	c := e.cand[u]
	ci := 0
	for _, v := range lc {
		for ci < len(c) && c[ci] < v {
			ci++
		}
		if ci < len(c) && c[ci] == v {
			total += w[u][ci]
			ci++
		}
	}
	return total
}

// activate marks u's DAG children as one-parent-closer to extendable,
// computing local candidates for those that become extendable and
// pushing them onto the pool.
func (e *engine) activate(u graph.Vertex) {
	a := &e.adaptive
	for _, w := range a.fwdDelta[u] {
		a.parentsLeft[w]--
		if a.parentsLeft[w] > 0 {
			continue
		}
		bwd := a.bwdDelta[w]
		var lc []uint32
		if len(bwd) == 1 {
			lc = append(a.lcOf[w][:0], e.space.Adjacency(bwd[0], w, e.candIdx[bwd[0]])...)
		} else {
			// Same selector dispatch as the static path (lcIntersect), so
			// the adaptive engine honors IntersectBlock and the kernel
			// policy instead of always intersecting plain slices.
			lc = e.intersectBackward(a.lcOf[w][:0], bwd, w)
		}
		a.lcOf[w] = lc
		a.weightOf[w] = e.activationWeight(w, lc)
		a.pool = append(a.pool, w)
	}
}

// deactivate undoes activate. The pool is unordered (selectExtendable
// swap-removes from arbitrary positions), so the vertices u activated —
// exactly its forward neighbors whose parentsLeft is currently zero —
// are removed by value rather than popped from the tail.
func (e *engine) deactivate(u graph.Vertex) {
	a := &e.adaptive
	for _, w := range a.fwdDelta[u] {
		if a.parentsLeft[w] == 0 {
			for i := len(a.pool) - 1; i >= 0; i-- {
				if a.pool[i] == w {
					a.pool[i] = a.pool[len(a.pool)-1]
					a.pool = a.pool[:len(a.pool)-1]
					break
				}
			}
		}
		a.parentsLeft[w]++
	}
}

// selectExtendable removes and returns the pool vertex with minimum
// weight (ties broken by delta position for determinism).
func (e *engine) selectExtendable() graph.Vertex {
	a := &e.adaptive
	best := 0
	for i := 1; i < len(a.pool); i++ {
		u, b := a.pool[i], a.pool[best]
		if a.weightOf[u] < a.weightOf[b] ||
			(a.weightOf[u] == a.weightOf[b] && e.pos[u] < e.pos[b]) {
			best = i
		}
	}
	u := a.pool[best]
	a.pool[best] = a.pool[len(a.pool)-1]
	a.pool = a.pool[:len(a.pool)-1]
	return u
}

// ExpandAdaptiveRoot is the adaptive-mode task-splitting probe: with the
// DAG root mapped to v, it mirrors adaptiveRec's first step — activate
// the root's DAG children and select the runtime-chosen second vertex —
// and appends that vertex's local candidates to dst. RunAdaptivePair
// re-derives the same second vertex deterministically, so the scheduler
// only needs the candidate list. Returns dst unchanged once cancelled or
// past the deadline, and in non-adaptive mode (see ExpandRoot).
func (E *Engine) ExpandAdaptiveRoot(v uint32, dst []uint32) []uint32 {
	e := &E.engine
	if !e.opts.Adaptive || e.q.NumVertices() < 2 || e.probeHalt() {
		return dst
	}
	a := &e.adaptive
	root := e.phi[0]
	a.pool = a.pool[:0]
	a.lcOf[root] = append(a.lcOf[root][:0], v)
	a.weightOf[root] = e.activationWeight(root, a.lcOf[root])
	a.pool = append(a.pool, root)
	u := e.selectExtendable() // the root: the pool's only entry
	e.assign(u, v)
	e.activate(u)
	if len(a.pool) > 0 {
		u2 := e.selectExtendable()
		for _, w := range a.lcOf[u2] {
			if !e.visited[w] {
				dst = append(dst, w)
			}
		}
		a.pool = append(a.pool, u2)
	}
	e.deactivate(u)
	e.unassign(u, v)
	a.pool = a.pool[:0]
	return dst
}

// RunAdaptivePair enumerates the adaptive search with the DAG root
// mapped to v and the runtime-chosen second vertex — the same vertex
// selectExtendable picks after activating the root, re-derived here so
// it matches ExpandAdaptiveRoot exactly — mapped to w. This is the
// fine-grained adaptive task unit; embeddings are identical to running
// the root whole, split across the second vertex's candidates. The same
// stop contract as RunRoot applies.
func (E *Engine) RunAdaptivePair(v, w uint32) bool {
	e := &E.engine
	if !e.opts.Adaptive {
		return E.RunRootPair(v, w)
	}
	if e.aborted {
		return false
	}
	a := &e.adaptive
	root := e.phi[0]
	a.pool = a.pool[:0]
	a.lcOf[root] = append(a.lcOf[root][:0], v)
	a.weightOf[root] = e.activationWeight(root, a.lcOf[root])
	a.pool = append(a.pool, root)
	u := e.selectExtendable()
	e.assign(u, v)
	// The pinned depths never re-enter adaptiveRec, so their activation
	// kernels are attributed here (to depths 0 and 1) to keep the
	// per-depth kernel sums equal to Stats.Kernels, as adaptiveRec does.
	var kpre intersect.KernelStats
	if e.prof != nil {
		kpre = e.sel.Stats()
	}
	e.activate(u)
	if e.prof != nil {
		e.prof.addKernelDelta(0, kpre, e.sel.Stats())
	}
	if len(a.pool) > 0 && !e.visited[w] {
		u2 := e.selectExtendable()
		if e.symPeers == nil || e.symViolator(u2, w) == graph.NoVertex {
			e.assign(u2, w)
			if e.prof != nil {
				kpre = e.sel.Stats()
			}
			e.activate(u2)
			if e.prof != nil {
				e.prof.addKernelDelta(1, kpre, e.sel.Stats())
			}
			e.adaptiveRec(2)
			e.deactivate(u2)
			e.unassign(u2, w)
		}
		a.pool = append(a.pool, u2)
	}
	e.deactivate(u)
	e.unassign(u, v)
	return !e.aborted
}

func (e *engine) runAdaptive() {
	root := e.phi[0]
	a := &e.adaptive
	a.pool = a.pool[:0]
	a.lcOf[root] = append(a.lcOf[root][:0], e.cand[root]...)
	a.weightOf[root] = e.activationWeight(root, a.lcOf[root])
	a.pool = append(a.pool, root)
	e.adaptiveRec(0)
}

// adaptiveRec is the adaptive-order recursion; failing-set masks are
// maintained throughout and acted upon only when the optimization is
// enabled.
func (e *engine) adaptiveRec(depth int) bitset.Mask64 {
	if !e.enterNode() {
		return e.fullMask
	}
	if depth == e.q.NumVertices() {
		if e.prof != nil {
			e.prof.Nodes[depth]++
		}
		e.emit()
		return e.fullMask
	}
	a := &e.adaptive
	u := e.selectExtendable()
	lc := a.lcOf[u]
	if e.prof != nil {
		e.prof.Nodes[depth]++
		e.prof.Candidates[depth] += uint64(len(lc))
		if len(lc) == 0 {
			e.prof.EmptyLC[depth]++
		}
	}
	if len(lc) == 0 {
		a.pool = append(a.pool, u)
		f := bitset.Mask64(0).With(uint32(u))
		for _, un := range a.bwdDelta[u] {
			f = f.With(uint32(un))
		}
		return f
	}
	var accum bitset.Mask64
	for _, v := range lc {
		var child bitset.Mask64
		if e.visited[v] {
			child = bitset.Mask64(0).With(uint32(u)).With(uint32(e.ownerOf(v)))
			if e.prof != nil {
				e.prof.Conflicts[depth]++
			}
		} else if p := e.symViolator(u, v); e.symPeers != nil && p != graph.NoVertex {
			child = bitset.Mask64(0).With(uint32(u)).With(uint32(p))
			if e.prof != nil {
				e.prof.SymmetrySkips[depth]++
			}
		} else {
			var kpre intersect.KernelStats
			if e.prof != nil {
				e.prof.Extended[depth]++
				kpre = e.sel.Stats()
			}
			e.assign(u, v)
			e.activate(u)
			if e.prof != nil {
				// Kernel executions during activation computed the local
				// candidates of the vertices extendable at depth+1 and
				// beyond; attributing them to the activating depth keeps
				// the per-depth sums equal to Stats.Kernels.
				e.prof.addKernelDelta(depth, kpre, e.sel.Stats())
			}
			child = e.adaptiveRec(depth + 1)
			e.deactivate(u)
			e.unassign(u, v)
			if e.aborted {
				a.pool = append(a.pool, u)
				return e.fullMask
			}
		}
		if e.opts.FailingSets && child != e.fullMask && !child.Has(uint32(u)) {
			a.pool = append(a.pool, u)
			if e.prof != nil {
				e.prof.FailingSetSkips[depth]++
			}
			if accum == e.fullMask {
				return e.fullMask
			}
			return child
		}
		accum = accum.Union(child)
	}
	a.pool = append(a.pool, u)
	// As in the static engine, the candidate set iterated above depends
	// on the DAG parents' mappings, so they belong to the failing set.
	accum = accum.With(uint32(u))
	for _, un := range a.bwdDelta[u] {
		accum = accum.With(uint32(un))
	}
	return accum
}
