package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Any() {
		t.Error("new set should be empty")
	}
	s.Set(0)
	s.Set(63)
	s.Set(64)
	s.Set(129)
	for _, i := range []uint32{0, 63, 64, 129} {
		if !s.Contains(i) {
			t.Errorf("Contains(%d) = false", i)
		}
	}
	if s.Contains(1) || s.Contains(128) {
		t.Error("unexpected bits set")
	}
	if s.Count() != 4 {
		t.Errorf("Count = %d, want 4", s.Count())
	}
	s.Clear(63)
	if s.Contains(63) || s.Count() != 3 {
		t.Error("Clear failed")
	}
	s.Reset()
	if s.Any() {
		t.Error("Reset failed")
	}
}

func TestSetOps(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(1)
	a.Set(50)
	a.Set(99)
	b.Set(50)
	b.Set(99)
	b.Set(2)
	if got := a.IntersectionCount(b); got != 2 {
		t.Errorf("IntersectionCount = %d, want 2", got)
	}
	c := a.Clone()
	c.IntersectWith(b)
	if c.Count() != 2 || !c.Contains(50) || !c.Contains(99) {
		t.Errorf("IntersectWith wrong: count=%d", c.Count())
	}
	d := a.Clone()
	d.UnionWith(b)
	if d.Count() != 4 {
		t.Errorf("UnionWith count = %d, want 4", d.Count())
	}
	e := New(100)
	e.CopyFrom(a)
	if e.Count() != a.Count() || !e.Contains(1) {
		t.Error("CopyFrom failed")
	}
	e.Set(3)
	if a.Contains(3) {
		t.Error("CopyFrom aliases storage")
	}
}

func TestForEachAndNextSet(t *testing.T) {
	s := New(200)
	want := []uint32{3, 64, 65, 190}
	for _, i := range want {
		s.Set(i)
	}
	var got []uint32
	s.ForEach(func(i uint32) bool {
		got = append(got, i)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	s.ForEach(func(i uint32) bool { n++; return false })
	if n != 1 {
		t.Errorf("ForEach early stop visited %d", n)
	}
	if i, ok := s.NextSet(0); !ok || i != 3 {
		t.Errorf("NextSet(0) = %d,%v", i, ok)
	}
	if i, ok := s.NextSet(4); !ok || i != 64 {
		t.Errorf("NextSet(4) = %d,%v", i, ok)
	}
	if i, ok := s.NextSet(65); !ok || i != 65 {
		t.Errorf("NextSet(65) = %d,%v", i, ok)
	}
	if i, ok := s.NextSet(191); ok {
		t.Errorf("NextSet(191) = %d,%v, want none", i, ok)
	}
}

func TestMemoryBytes(t *testing.T) {
	if got := New(64).MemoryBytes(); got != 8 {
		t.Errorf("MemoryBytes(64) = %d, want 8", got)
	}
	if got := New(65).MemoryBytes(); got != 16 {
		t.Errorf("MemoryBytes(65) = %d, want 16", got)
	}
}

func TestSetMatchesMapModel(t *testing.T) {
	// Property: a Set behaves like a map[uint32]bool under random ops.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		s := New(n)
		model := map[uint32]bool{}
		for op := 0; op < 200; op++ {
			i := uint32(rng.Intn(n))
			switch rng.Intn(3) {
			case 0:
				s.Set(i)
				model[i] = true
			case 1:
				s.Clear(i)
				delete(model, i)
			case 2:
				if s.Contains(i) != model[i] {
					return false
				}
			}
		}
		return s.Count() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMask64(t *testing.T) {
	m := Mask64(0)
	if !m.Empty() {
		t.Error("zero mask should be empty")
	}
	m = m.With(0).With(5).With(63)
	if m.Count() != 3 || !m.Has(5) || m.Has(4) {
		t.Errorf("mask ops wrong: %b", m)
	}
	u := m.Union(Mask64(0).With(4))
	if u.Count() != 4 {
		t.Errorf("Union count = %d", u.Count())
	}
	if Mask64All(3) != 0b111 {
		t.Errorf("Mask64All(3) = %b", Mask64All(3))
	}
	if Mask64All(64) != ^Mask64(0) {
		t.Error("Mask64All(64) should be all ones")
	}
	if Mask64All(0) != 0 {
		t.Error("Mask64All(0) should be empty")
	}
}
