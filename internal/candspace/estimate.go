package candspace

import "subgraphmatching/internal/graph"

// EstimateSpanningTreeEmbeddings estimates the number of embeddings of
// the spanning tree induced by the BFS order delta into the candidate
// space: a bottom-up dynamic program where each candidate's weight is
// the product over tree children of the summed child weights reachable
// through 𝒜. Non-tree edges are ignored, so the estimate upper-bounds
// the true embedding count in the space; CFL's and DP-iso's ordering
// cost models are built from the same quantity.
func EstimateSpanningTreeEmbeddings(s *Space, delta []graph.Vertex) float64 {
	q := s.q
	n := q.NumVertices()
	if n == 0 {
		return 0
	}
	pos := make([]int, n)
	for i, u := range delta {
		pos[u] = i
	}
	// Tree parent of u: its earliest-positioned backward neighbor.
	parent := make([]graph.Vertex, n)
	children := make([][]graph.Vertex, n)
	for _, u := range delta[1:] {
		best := graph.NoVertex
		for _, un := range q.Neighbors(u) {
			if pos[un] < pos[u] && (best == graph.NoVertex || pos[un] < pos[best]) {
				best = un
			}
		}
		parent[u] = best
		if best != graph.NoVertex {
			children[best] = append(children[best], u)
		}
	}

	weights := make([][]float64, n)
	for i := n - 1; i >= 0; i-- {
		u := delta[i]
		c := s.candidates[u]
		w := make([]float64, len(c))
		for ci := range c {
			prod := 1.0
			for _, ch := range children[u] {
				sum := 0.0
				for _, v := range s.Adjacency(u, ch, ci) {
					if j := s.CandidateIndex(ch, v); j >= 0 {
						sum += weights[ch][j]
					}
				}
				prod *= sum
				if prod == 0 {
					break
				}
			}
			w[ci] = prod
		}
		weights[u] = w
	}
	total := 0.0
	for _, w := range weights[delta[0]] {
		total += w
	}
	return total
}
