package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/testutil"
)

// benchGraph sizes roughly match the paper's mid-size datasets: enough
// adjacency bytes that the copy-vs-mmap difference is visible.
func benchGraph(b *testing.B, n, m int) *graph.Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	return testutil.RandomGraph(rng, n, m, 8)
}

func benchShapes() [][2]int {
	return [][2]int{{1_000, 10_000}, {20_000, 200_000}, {100_000, 1_000_000}}
}

func BenchmarkSnapshotEncode(b *testing.B) {
	for _, sh := range benchShapes() {
		g := benchGraph(b, sh[0], sh[1])
		b.Run(fmt.Sprintf("v%d_e%d", sh[0], sh[1]), func(b *testing.B) {
			b.SetBytes(EncodedSize(g))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := Encode(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSnapshotDecode(b *testing.B) {
	for _, sh := range benchShapes() {
		g := benchGraph(b, sh[0], sh[1])
		data, _, err := Encode(g)
		if err != nil {
			b.Fatal(err)
		}
		for _, zc := range []bool{false, true} {
			b.Run(fmt.Sprintf("v%d_e%d_zerocopy=%v", sh[0], sh[1], zc), func(b *testing.B) {
				b.SetBytes(int64(len(data)))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := Decode(data, DecodeOptions{ZeroCopy: zc}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSnapshotOpen measures the full file-load path — what a
// smatchd restart pays per graph — copy vs mmap, against the text
// loader as the baseline it replaces.
func BenchmarkSnapshotOpen(b *testing.B) {
	for _, sh := range benchShapes() {
		g := benchGraph(b, sh[0], sh[1])
		dir := b.TempDir()
		snapPath := filepath.Join(dir, "g.snap")
		if _, _, err := WriteSnapshotFile(snapPath, g); err != nil {
			b.Fatal(err)
		}
		textPath := filepath.Join(dir, "g.graph")
		if err := graph.Save(textPath, g); err != nil {
			b.Fatal(err)
		}
		st, _ := os.Stat(snapPath)

		b.Run(fmt.Sprintf("v%d_e%d/copy", sh[0], sh[1]), func(b *testing.B) {
			b.SetBytes(st.Size())
			for i := 0; i < b.N; i++ {
				snap, err := OpenSnapshot(snapPath, LoadOptions{})
				if err != nil {
					b.Fatal(err)
				}
				snap.Close()
			}
		})
		if mmapSupported {
			b.Run(fmt.Sprintf("v%d_e%d/mmap", sh[0], sh[1]), func(b *testing.B) {
				b.SetBytes(st.Size())
				for i := 0; i < b.N; i++ {
					snap, err := OpenSnapshot(snapPath, LoadOptions{MMap: true})
					if err != nil {
						b.Fatal(err)
					}
					snap.Close()
				}
			})
		}
		b.Run(fmt.Sprintf("v%d_e%d/text", sh[0], sh[1]), func(b *testing.B) {
			b.SetBytes(st.Size())
			for i := 0; i < b.N; i++ {
				if _, err := graph.Load(textPath); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFingerprintVerify(b *testing.B) {
	g := benchGraph(b, 20_000, 200_000)
	data, _, err := Encode(g)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(data, DecodeOptions{ZeroCopy: true, VerifyFingerprint: true}); err != nil {
			b.Fatal(err)
		}
	}
}
