// Advanced features: cardinality estimation, containment queries over a
// graph collection, homomorphism semantics, symmetry breaking on
// automorphic patterns, and parallel enumeration.
package main

import (
	"fmt"
	"log"
	"time"

	sm "subgraphmatching"
)

func main() {
	data, err := sm.GenerateRMAT(sm.RMATConfig{
		NumVertices: 10_000, NumEdges: 80_000, NumLabels: 8, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("data graph:", data)

	// An unlabeled-ish triangle pattern (single label): highly
	// automorphic.
	tri, err := sm.FromEdges([]sm.Label{1, 1, 1}, [][2]sm.Vertex{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Estimate before you enumerate: the spanning-tree upper bound
	// behind CFL's and DP-iso's cost models.
	est, err := sm.EstimateEmbeddings(tri, data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nestimated embeddings (tree upper bound): %.0f\n", est)

	// 2. Exact count, sequential vs parallel.
	for _, workers := range []int{1, 4} {
		start := time.Now()
		res, err := sm.Match(tri, data, sm.Options{Algorithm: sm.AlgoOptimized, Parallel: workers})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("exact count with %d worker(s): %d embeddings in %v\n",
			workers, res.Embeddings, time.Since(start).Round(time.Microsecond))
	}

	// 3. Symmetry breaking: the triangle's three vertices are
	// interchangeable, so one canonical embedding stands for 3! = 6.
	cfg := sm.Config{
		Filter: sm.FilterGQL, Order: sm.OrderGQL,
		Local: sm.LocalIntersect, SymmetryBreaking: true,
	}
	res, err := sm.Match(tri, data, sm.Options{Custom: &cfg})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with symmetry breaking: %d embeddings from %d search nodes\n",
		res.Embeddings, res.Nodes)

	// 4. Homomorphisms: drop injectivity (the WCOJ systems' default
	// semantics). A path query can now fold back on itself.
	path, _ := sm.FromEdges([]sm.Label{1, 1, 1, 1}, [][2]sm.Vertex{{0, 1}, {1, 2}, {2, 3}})
	iso, err := sm.Count(path, data, sm.Options{Algorithm: sm.AlgoOptimized, MaxEmbeddings: 1_000_000})
	if err != nil {
		log.Fatal(err)
	}
	hcfg := sm.Config{Order: sm.OrderGQL, Local: sm.LocalIntersect, Homomorphism: true}
	hom, err := sm.Count(path, data, sm.Options{Custom: &hcfg, MaxEmbeddings: 1_000_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("path of 4: %d isomorphisms vs %d homomorphisms\n", iso, hom)

	// 5. Containment over a collection: which graphs contain the
	// triangle pattern at all?
	collection := make([]*sm.Graph, 0, 4)
	for seed := int64(0); seed < 4; seed++ {
		g, err := sm.GenerateRMAT(sm.RMATConfig{
			NumVertices: 500, NumEdges: 1200 + 400*int(seed), NumLabels: 8, Seed: 100 + seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		collection = append(collection, g)
	}
	idx, err := sm.ContainingGraphs(tri, collection, sm.Options{Algorithm: sm.AlgoOptimized})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graphs containing the pattern: %v of %d\n", idx, len(collection))
}
