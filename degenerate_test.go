package subgraphmatching_test

import (
	"context"
	"errors"
	"testing"

	sm "subgraphmatching"
)

// The degenerate-input contract: malformed queries produce typed errors
// (never panics), while provably-empty-but-well-formed queries keep
// Match's historical zero-result behavior and are rejected only by the
// strict Validate.
func TestDegenerateInputs(t *testing.T) {
	g, err := sm.FromEdges([]sm.Label{0, 1, 0}, [][2]sm.Vertex{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	empty, err := sm.FromEdges(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	disconnected, err := sm.FromEdges([]sm.Label{0, 1, 0, 1}, [][2]sm.Vertex{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	tooLarge, err := sm.FromEdges([]sm.Label{0, 1, 0, 1}, [][2]sm.Vertex{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	unknownLabel, err := sm.FromEdges([]sm.Label{0, 7}, [][2]sm.Vertex{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := sm.FromEdges([]sm.Label{0, 1}, [][2]sm.Vertex{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("match", func(t *testing.T) {
		cases := []struct {
			name string
			q, g *sm.Graph
			want error
		}{
			{"nil query", nil, g, sm.ErrNilGraph},
			{"nil data", ok, nil, sm.ErrNilGraph},
			{"both nil", nil, nil, sm.ErrNilGraph},
			{"empty query", empty, g, sm.ErrEmptyQuery},
			{"disconnected query", disconnected, g, sm.ErrDisconnectedQuery},
		}
		for _, tc := range cases {
			for _, algo := range sm.Algorithms() {
				res, err := sm.Match(tc.q, tc.g, sm.Options{Algorithm: algo})
				if !errors.Is(err, tc.want) {
					t.Errorf("%s / %v: err = %v, want %v", tc.name, algo, err, tc.want)
				}
				if res != nil {
					t.Errorf("%s / %v: non-nil result alongside error", tc.name, algo)
				}
			}
		}
		// Provably empty but well-formed inputs stay zero-result successes.
		for name, q := range map[string]*sm.Graph{"query too large": tooLarge, "unknown label": unknownLabel} {
			n, err := sm.Count(q, g, sm.Options{})
			if err != nil || n != 0 {
				t.Errorf("%s: Count = %d, %v; want 0, nil", name, n, err)
			}
		}
	})

	t.Run("validate", func(t *testing.T) {
		cases := []struct {
			name string
			q, g *sm.Graph
			want error
		}{
			{"nil query", nil, g, sm.ErrNilGraph},
			{"nil data", ok, nil, sm.ErrNilGraph},
			{"empty query", empty, g, sm.ErrEmptyQuery},
			{"disconnected query", disconnected, g, sm.ErrDisconnectedQuery},
			{"query too large", tooLarge, g, sm.ErrQueryTooLarge},
			{"unknown label", unknownLabel, g, sm.ErrUnknownLabel},
			{"valid", ok, g, nil},
		}
		for _, tc := range cases {
			if err := sm.Validate(tc.q, tc.g); !errors.Is(err, tc.want) {
				t.Errorf("%s: Validate = %v, want %v", tc.name, err, tc.want)
			}
		}
	})

	t.Run("nil callback", func(t *testing.T) {
		_, err := sm.ForEachMatch(context.Background(), ok, g, sm.Options{}, nil)
		if !errors.Is(err, sm.ErrNilCallback) {
			t.Errorf("ForEachMatch(nil fn) = %v, want ErrNilCallback", err)
		}
	})
}

func TestForEachMatchStreams(t *testing.T) {
	g, _ := sm.FromEdges([]sm.Label{0, 0, 0, 0}, [][2]sm.Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	q, _ := sm.FromEdges([]sm.Label{0, 0}, [][2]sm.Vertex{{0, 1}})
	var seen int
	res, err := sm.ForEachMatch(context.Background(), q, g, sm.Options{}, func(m []sm.Vertex) bool {
		if len(m) != 2 || !g.HasEdge(m[0], m[1]) {
			t.Errorf("bad embedding %v", m)
		}
		seen++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embeddings != 8 || seen != 8 {
		t.Errorf("embeddings = %d, callback saw %d; want 8 each", res.Embeddings, seen)
	}
	// Early stop via the callback is not an error.
	seen = 0
	res, err = sm.ForEachMatch(context.Background(), q, g, sm.Options{}, func(m []sm.Vertex) bool {
		seen++
		return seen < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 3 {
		t.Errorf("callback ran %d times after stop at 3", seen)
	}
}
