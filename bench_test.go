// Benchmarks mirroring the paper's tables and figures: one bench target
// per experiment (see DESIGN.md's per-experiment index), each measuring
// the operation that experiment compares, on small fixtures so the whole
// suite runs in minutes. The full reproductions with complete sweeps are
// produced by cmd/experiments.
package subgraphmatching_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"subgraphmatching/internal/candspace"
	"subgraphmatching/internal/compress"
	"subgraphmatching/internal/core"
	"subgraphmatching/internal/enumerate"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/intersect"
	"subgraphmatching/internal/order"
	"subgraphmatching/internal/par"
	"subgraphmatching/internal/querygen"
	"subgraphmatching/internal/rmat"
)

// benchFixture holds a data graph and query sets shared across benches.
type benchFixture struct {
	g        *graph.Graph
	dense16  []*graph.Graph
	sparse16 []*graph.Graph
	dense8   []*graph.Graph
}

var (
	fixtureOnce sync.Once
	fixture     benchFixture
)

// benchGraph is an RMAT graph sized so every bench iteration is
// milliseconds: 8K vertices, average degree 12, 12 labels.
func getFixture(b *testing.B) *benchFixture {
	b.Helper()
	fixtureOnce.Do(func() {
		g, err := rmat.Generate(rmat.Config{NumVertices: 8000, NumEdges: 48000, NumLabels: 12, Seed: 77})
		if err != nil {
			panic(err)
		}
		fixture.g = g
		gen := func(size int, d querygen.Density, seed int64) []*graph.Graph {
			qs, err := querygen.Generate(g, querygen.Config{
				NumVertices: size, Count: 5, Density: d, Seed: seed,
			})
			if err != nil {
				panic(err)
			}
			return qs
		}
		fixture.dense16 = gen(16, querygen.Dense, 1)
		fixture.sparse16 = gen(16, querygen.Sparse, 2)
		fixture.dense8 = gen(8, querygen.Dense, 3)
	})
	return &fixture
}

var benchLimits = core.Limits{MaxEmbeddings: 100_000, TimeLimit: 5 * time.Second}

// runSet executes every fixture query under cfg once per b.N iteration.
func runSet(b *testing.B, set []*graph.Graph, g *graph.Graph, cfg core.Config) {
	b.Helper()
	var emb uint64
	for i := 0; i < b.N; i++ {
		for _, q := range set {
			res, err := core.Match(q, g, cfg, benchLimits)
			if err != nil {
				b.Fatal(err)
			}
			emb += res.Embeddings
		}
	}
	b.ReportMetric(float64(emb)/float64(b.N), "embeddings/op")
}

// --- Figure 7: preprocessing time of filtering methods ---------------

func BenchmarkFig7Filtering(b *testing.B) {
	f := getFixture(b)
	for _, m := range []filter.Method{filter.GQL, filter.CFL, filter.CECI, filter.DPIso} {
		b.Run(m.String(), func(b *testing.B) {
			q := f.dense16[0]
			for i := 0; i < b.N; i++ {
				cand, err := filter.Run(m, q, f.g)
				if err != nil {
					b.Fatal(err)
				}
				if m != filter.GQL && !filter.AnyEmpty(cand) {
					candspace.BuildFull(q, f.g, cand)
				}
			}
		})
	}
}

// --- Figure 8: pruning power (candidates/op reported) ----------------

func BenchmarkFig8Candidates(b *testing.B) {
	f := getFixture(b)
	for _, m := range []filter.Method{filter.LDF, filter.GQL, filter.CFL, filter.CECI, filter.DPIso, filter.Steady} {
		b.Run(m.String(), func(b *testing.B) {
			q := f.dense16[0]
			mean := 0.0
			for i := 0; i < b.N; i++ {
				cand, err := filter.Run(m, q, f.g)
				if err != nil {
					b.Fatal(err)
				}
				mean = filter.MeanCandidates(cand)
			}
			b.ReportMetric(mean, "candidates/vertex")
		})
	}
}

// --- Figure 9: set-intersection local candidates ---------------------

func BenchmarkFig9EnumOptimization(b *testing.B) {
	f := getFixture(b)
	cases := []struct {
		name string
		cfg  core.Config
	}{
		{"QSI-direct", core.Config{Filter: filter.LDF, Order: order.QSI, Local: enumerate.Direct}},
		{"QSI-intersect", core.Config{Filter: filter.LDF, Order: order.QSI, Local: enumerate.Intersect, Kernel: intersect.PolicyHybrid}},
		{"GQL-scan", core.Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Scan}},
		{"GQL-intersect", core.Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Intersect, Kernel: intersect.PolicyHybrid}},
		{"CFL-treeedge", core.Config{Filter: filter.CFL, Order: order.CFL, Local: enumerate.TreeEdge, TreeSpace: true}},
		{"CFL-intersect", core.Config{Filter: filter.CFL, Order: order.CFL, Local: enumerate.Intersect, Kernel: intersect.PolicyHybrid}},
		{"2PP-direct", core.Config{Filter: filter.LDF, Order: order.VF2PP, Local: enumerate.Direct, VF2PPRules: true}},
		{"2PP-intersect", core.Config{Filter: filter.LDF, Order: order.VF2PP, Local: enumerate.Intersect, Kernel: intersect.PolicyHybrid}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) { runSet(b, f.dense16, f.g, c.cfg) })
	}
}

// --- Figure 10: intersection kernels ----------------------------------

func BenchmarkFig10Intersection(b *testing.B) {
	f := getFixture(b)
	for _, c := range []struct {
		name   string
		local  enumerate.LocalCandidates
		kernel intersect.Policy
	}{
		// The Hybrid arm pins its kernel so the figure keeps comparing
		// the paper's two methods even now that adaptive is the default.
		{"Hybrid", enumerate.Intersect, intersect.PolicyHybrid},
		{"QFilter", enumerate.IntersectBlock, intersect.PolicyAdaptive},
	} {
		cfg := core.Config{Filter: filter.GQL, Order: order.GQL, Local: c.local, Kernel: c.kernel}
		b.Run(c.name, func(b *testing.B) { runSet(b, f.dense16, f.g, cfg) })
	}
}

// --- Figure 11: ordering methods --------------------------------------

func BenchmarkFig11Ordering(b *testing.B) {
	f := getFixture(b)
	for _, om := range order.Methods() {
		cfg := core.OrderingStudyConfig(om, false)
		b.Run(om.String(), func(b *testing.B) { runSet(b, f.dense16, f.g, cfg) })
	}
}

// --- Table 5 / Figure 15: failing sets --------------------------------

func BenchmarkTable5Unsolved(b *testing.B) {
	f := getFixture(b)
	for _, fs := range []struct {
		name string
		on   bool
	}{{"wo-fs", false}, {"w-fs", true}} {
		cfg := core.OrderingStudyConfig(order.GQL, fs.on)
		b.Run(fs.name, func(b *testing.B) { runSet(b, f.dense16, f.g, cfg) })
	}
}

func BenchmarkFig15FailingSets(b *testing.B) {
	f := getFixture(b)
	for _, size := range []struct {
		name string
		set  []*graph.Graph
	}{{"Q8D", f.dense8}, {"Q16D", f.dense16}} {
		for _, fs := range []struct {
			name string
			on   bool
		}{{"wo-fs", false}, {"w-fs", true}} {
			cfg := core.OrderingStudyConfig(order.DPIso, fs.on)
			b.Run(size.name+"/"+fs.name, func(b *testing.B) { runSet(b, size.set, f.g, cfg) })
		}
	}
}

// --- Figure 14 / Table 6: spectrum analysis ---------------------------

func BenchmarkFig14Spectrum(b *testing.B) {
	f := getFixture(b)
	q := f.dense16[0]
	cand := filter.RunGraphQL(q, f.g, filter.DefaultGQLRounds)
	phiGQL, err := order.Compute(order.GQL, q, f.g, cand)
	if err != nil {
		b.Fatal(err)
	}
	phiRI, err := order.Compute(order.RI, q, f.g, cand)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		name string
		phi  []graph.Vertex
	}{{"GQL-order", phiGQL}, {"RI-order", phiRI}} {
		cfg := core.OrderingStudyConfig(order.GQL, false)
		cfg.FixedOrder = c.phi
		b.Run(c.name, func(b *testing.B) { runSet(b, []*graph.Graph{q}, f.g, cfg) })
	}
}

// --- Figure 16: overall performance -----------------------------------

func BenchmarkFig16Overall(b *testing.B) {
	f := getFixture(b)
	cases := []struct {
		name string
		cfg  func(q *graph.Graph) core.Config
	}{
		{"GQLfs", func(*graph.Graph) core.Config { return core.OrderingStudyConfig(order.GQL, true) }},
		{"RIfs", func(*graph.Graph) core.Config { return core.OrderingStudyConfig(order.RI, true) }},
		{"O-CECI", func(q *graph.Graph) core.Config { return core.PresetConfig(core.CECI, q, fixture.g) }},
		{"O-DP", func(q *graph.Graph) core.Config { return core.PresetConfig(core.DPIso, q, fixture.g) }},
		{"O-RI", func(q *graph.Graph) core.Config { return core.PresetConfig(core.RI, q, fixture.g) }},
		{"O-2PP", func(q *graph.Graph) core.Config { return core.PresetConfig(core.VF2PP, q, fixture.g) }},
		{"GLW", func(*graph.Graph) core.Config { return core.Config{UseGlasgow: true} }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range f.dense8 {
					if _, err := core.Match(q, f.g, c.cfg(q), benchLimits); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- Figures 17-18: scalability ---------------------------------------

func BenchmarkFig17Scalability(b *testing.B) {
	for _, d := range []int{8, 16} {
		g, err := rmat.Generate(rmat.Config{NumVertices: 8000, NumEdges: 4000 * d, NumLabels: 16, Seed: 500 + int64(d)})
		if err != nil {
			b.Fatal(err)
		}
		qs, err := querygen.Generate(g, querygen.Config{NumVertices: 16, Count: 3, Density: querygen.Dense, Seed: 1})
		if err != nil {
			b.Skip("no dense queries at this density")
		}
		cfg := core.OrderingStudyConfig(order.GQL, true)
		b.Run("d="+string(rune('0'+d/8))+"x8", func(b *testing.B) { runSet(b, qs, g, cfg) })
	}
}

func BenchmarkFig18Friendster(b *testing.B) {
	for _, labels := range []int{16, 64} {
		g, err := rmat.Generate(rmat.Config{NumVertices: 10000, NumEdges: 120000, NumLabels: labels, Seed: 1800})
		if err != nil {
			b.Fatal(err)
		}
		qs, err := querygen.Generate(g, querygen.Config{NumVertices: 16, Count: 3, Density: querygen.Dense, Seed: 1})
		if err != nil {
			b.Skip("no dense queries")
		}
		cfg := core.OrderingStudyConfig(order.GQL, true)
		name := "labels=16"
		if labels == 64 {
			name = "labels=64"
		}
		b.Run(name, func(b *testing.B) { runSet(b, qs, g, cfg) })
	}
}

// --- Parallel scaling: work stealing vs static stride on skew ---------

// skewFixture is a power-law R-MAT graph with a dominant label
// (LabelSkew, WordNet-style): the rare root label keeps the root
// candidate list short while the hub structure makes a few root
// subtrees orders of magnitude heavier than the rest — exactly the
// regime where a static stride overloads one worker.
type skewFixture struct {
	g *graph.Graph
	q *graph.Graph
}

var (
	skewOnce sync.Once
	skew     skewFixture
)

func getSkewFixture(b *testing.B) *skewFixture {
	b.Helper()
	skewOnce.Do(func() {
		g, err := rmat.Generate(rmat.Config{NumVertices: 4000, NumEdges: 32000, NumLabels: 6, Seed: 31, LabelSkew: 0.85})
		if err != nil {
			panic(err)
		}
		qs, err := querygen.Generate(g, querygen.Config{NumVertices: 6, Count: 8, Density: querygen.Dense, Seed: 11})
		if err != nil {
			panic(err)
		}
		// Query 2 of this set has 86 root candidates (under the depth-1
		// split threshold at 4+ workers) with heavily skewed subtree
		// costs; see EXPERIMENTS.md "Parallel scaling".
		skew = skewFixture{g: g, q: qs[2]}
	})
	return &skew
}

// BenchmarkParallelSkew measures the two claims of the parallel runner
// on the skewed workload:
//
//   - steal-N balances the skewed subtrees across workers where
//     strided-N overloads one of them. Wall-clock only shows this given
//     as many CPUs as workers; to keep the measurement meaningful on
//     constrained runners too, each scheduler sub-benchmark also
//     reports proj-speedup = totalNodes/maxWorkerNodes — the makespan
//     bound the task partition admits on unconstrained cores — from
//     Result.WorkerNodes.
//   - enum-reused drops the allocations of enum-fresh to 0 because the
//     engine's scratch state is seeded once and reused per run.
//
// Run with -benchmem to see allocs/op.
func BenchmarkParallelSkew(b *testing.B) {
	f := getSkewFixture(b)
	cfg := core.Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Intersect}
	for _, c := range []struct {
		name  string
		limit core.Limits
	}{
		{"seq", core.Limits{}},
		{"strided-4", core.Limits{Parallel: 4, Schedule: core.ScheduleStrided}},
		{"steal-4", core.Limits{Parallel: 4, Schedule: core.ScheduleWorkSteal}},
		{"strided-8", core.Limits{Parallel: 8, Schedule: core.ScheduleStrided}},
		{"steal-8", core.Limits{Parallel: 8, Schedule: core.ScheduleWorkSteal}},
	} {
		b.Run(c.name, func(b *testing.B) {
			var emb uint64
			var proj float64
			for i := 0; i < b.N; i++ {
				res, err := core.Match(f.q, f.g, cfg, c.limit)
				if err != nil {
					b.Fatal(err)
				}
				emb = res.Embeddings
				if len(res.WorkerNodes) > 0 {
					var total, max uint64
					for _, n := range res.WorkerNodes {
						total += n
						if n > max {
							max = n
						}
					}
					if max > 0 {
						proj = float64(total) / float64(max)
					}
				}
			}
			b.ReportMetric(float64(emb), "embeddings")
			if proj > 0 {
				b.ReportMetric(proj, "proj-speedup")
			}
		})
	}

	// Allocation comparison for repeated enumeration of one prepared
	// query: a fresh enumerate.Run per iteration versus one reusable
	// engine seeded once.
	cand, err := filter.Run(filter.GQL, f.q, f.g)
	if err != nil {
		b.Fatal(err)
	}
	space := candspace.BuildFull(f.q, f.g, cand)
	phi, err := order.Compute(order.GQL, f.q, f.g, cand)
	if err != nil {
		b.Fatal(err)
	}
	opts := enumerate.Options{Local: enumerate.Intersect}
	b.Run("enum-fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := enumerate.Run(f.q, f.g, cand, space, phi, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enum-reused", func(b *testing.B) {
		b.ReportAllocs()
		eng, err := enumerate.NewEngine(f.q, f.g, cand, space, phi, opts)
		if err != nil {
			b.Fatal(err)
		}
		eng.Run() // warm the buffers outside the timed loop
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Run()
		}
	})
}

// BenchmarkSplitSkew compares the work-steal task-splitting policies on
// the skew fixture: the static expand-everything heuristic against the
// cost-model recursive splitter, at 1/4/8 workers. The headline metric
// is proj-speedup = totalNodes/maxWorkerNodes (the makespan bound the
// task partition admits on unconstrained cores); probe-nodes reports the
// splitter's own expansion overhead so the balance gain can be weighed
// against what the probes cost. `make bench-sched` runs this grid; see
// EXPERIMENTS.md "Cost-model splitting".
func BenchmarkSplitSkew(b *testing.B) {
	f := getSkewFixture(b)
	cfg := core.Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Intersect}
	for _, pol := range core.SplitPolicies() {
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s-%d", pol, workers), func(b *testing.B) {
				// Uncapped, like BenchmarkParallelSkew: an embedding cap
				// stops the run as soon as one worker races ahead, which
				// is exactly the imbalance the metric must observe.
				limits := core.Limits{Parallel: workers, Split: pol}
				var emb, probes uint64
				var proj float64
				for i := 0; i < b.N; i++ {
					res, err := core.Match(f.q, f.g, cfg, limits)
					if err != nil {
						b.Fatal(err)
					}
					emb = res.Embeddings
					if res.Split != nil {
						probes = res.Split.Probes
					}
					if len(res.WorkerNodes) > 1 {
						var total, max uint64
						for _, n := range res.WorkerNodes {
							total += n
							if n > max {
								max = n
							}
						}
						if max > 0 {
							proj = float64(total) / float64(max)
						}
					}
				}
				b.ReportMetric(float64(emb), "embeddings")
				b.ReportMetric(float64(probes), "probe-nodes")
				if proj > 0 {
					b.ReportMetric(proj, "proj-speedup")
				}
			})
		}
	}
}

// BenchmarkObsOverhead measures the cost of the observability layer on
// the skew workload: the same matches with span tracing off (the
// default) and on. Instrumentation is batched per phase and per worker
// — engines count in locals and publish once at exit — so the delta
// stays within noise (EXPERIMENTS.md documents the measured numbers).
func BenchmarkObsOverhead(b *testing.B) {
	f := getSkewFixture(b)
	cfg := core.Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Intersect}
	for _, c := range []struct {
		name  string
		limit core.Limits
	}{
		{"seq/trace-off", core.Limits{}},
		{"seq/trace-on", core.Limits{Trace: true}},
		{"steal-8/trace-off", core.Limits{Parallel: 8, Schedule: core.ScheduleWorkSteal}},
		{"steal-8/trace-on", core.Limits{Parallel: 8, Schedule: core.ScheduleWorkSteal, Trace: true}},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Match(f.q, f.g, cfg, c.limit)
				if err != nil {
					b.Fatal(err)
				}
				if c.limit.Trace && res.Trace == nil {
					b.Fatal("trace requested but absent")
				}
			}
		})
	}
}

// BenchmarkProfileOverhead measures the cost of EXPLAIN/ANALYZE
// profiling on the skew workload: the same matches with Limits.Profile
// off (the default) and on. Profiling increments per-depth counters at
// every search node, so unlike tracing its cost scales with the search
// tree — the bar is a delta within a few percent (EXPERIMENTS.md
// documents the measured numbers).
func BenchmarkProfileOverhead(b *testing.B) {
	f := getSkewFixture(b)
	cfg := core.Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Intersect}
	for _, c := range []struct {
		name  string
		limit core.Limits
	}{
		{"seq/profile-off", core.Limits{}},
		{"seq/profile-on", core.Limits{Profile: true}},
		{"steal-8/profile-off", core.Limits{Parallel: 8, Schedule: core.ScheduleWorkSteal}},
		{"steal-8/profile-on", core.Limits{Parallel: 8, Schedule: core.ScheduleWorkSteal, Profile: true}},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Match(f.q, f.g, cfg, c.limit)
				if err != nil {
					b.Fatal(err)
				}
				if c.limit.Profile && res.Explain == nil {
					b.Fatal("profile requested but absent")
				}
			}
		})
	}
}

// --- Historical baselines: Ullmann vs VF2 vs VF2++ ---------------------

// BenchmarkBaselineLineage reproduces the lineage claim of the paper's
// introduction: VF2++ significantly outperforms VF2, which in turn
// improves on Ullmann's per-node refinement.
func BenchmarkBaselineLineage(b *testing.B) {
	f := getFixture(b)
	for _, c := range []struct {
		name string
		algo core.Algorithm
	}{
		{"Ullmann", core.Ullmann},
		{"VF2", core.VF2Classic},
		{"VF2PP", core.VF2PP},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range f.dense8 {
					if _, err := core.Match(q, f.g, core.PresetConfig(c.algo, q, f.g), benchLimits); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- Ablations (DESIGN.md Section 5) -----------------------------------

// BenchmarkAblationGallopThreshold isolates the intersection kernels on
// skewed sorted sets, the trade-off behind the Hybrid kernel's
// threshold.
func BenchmarkAblationGallopThreshold(b *testing.B) {
	small := make([]uint32, 64)
	for i := range small {
		small[i] = uint32(i * 997)
	}
	large := make([]uint32, 64*64)
	for i := range large {
		large[i] = uint32(i * 17)
	}
	dst := make([]uint32, 0, 64)
	b.Run("merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dst = intersect.Merge(dst[:0], small, large)
		}
	})
	b.Run("galloping", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dst = intersect.Galloping(dst[:0], small, large)
		}
	})
	b.Run("hybrid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dst = intersect.Hybrid(dst[:0], small, large)
		}
	})
}

// BenchmarkAblationCandSpace compares building the tree-edge vs the
// full-edge auxiliary structure (the space/time trade between CFL and
// CECI/DP-iso).
func BenchmarkAblationCandSpace(b *testing.B) {
	f := getFixture(b)
	q := f.dense16[0]
	cand := filter.RunCFL(q, f.g)
	tree := graph.NewBFSTree(q, filter.CFLRoot(q, f.g))
	b.Run("tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			candspace.BuildTree(q, f.g, cand, tree.Parent)
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			candspace.BuildFull(q, f.g, cand)
		}
	})
}

// BenchmarkAblationNLF measures the neighbor-label-frequency check's
// cost against plain LDF.
func BenchmarkAblationNLF(b *testing.B) {
	f := getFixture(b)
	q := f.dense16[0]
	b.Run("LDF", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			filter.RunLDF(q, f.g)
		}
	})
	b.Run("NLF", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			filter.RunNLF(q, f.g)
		}
	})
}

// BenchmarkAblationGQLRounds sweeps GraphQL's global-refinement
// iteration count.
func BenchmarkAblationGQLRounds(b *testing.B) {
	f := getFixture(b)
	q := f.dense16[0]
	for _, rounds := range []int{1, 2, 4} {
		name := []string{"", "k=1", "k=2", "", "k=4"}[rounds]
		b.Run(name, func(b *testing.B) {
			mean := 0.0
			for i := 0; i < b.N; i++ {
				cand := filter.RunGraphQL(q, f.g, rounds)
				mean = filter.MeanCandidates(cand)
			}
			b.ReportMetric(mean, "candidates/vertex")
		})
	}
}

// BenchmarkAblationCompression compares direct enumeration against the
// BoostIso-style compressed count on a twin-rich graph (a hub-and-spoke
// "blown-up" structure where compression shines) — the Section 3.4
// trade-off.
func BenchmarkAblationCompression(b *testing.B) {
	// 40 hubs in a cycle, each with 20 interchangeable leaves.
	bld := graph.NewBuilder(40*21, 40*21)
	for h := 0; h < 40; h++ {
		bld.AddVertex(1)
	}
	for h := 0; h < 40; h++ {
		bld.AddEdge(graph.Vertex(h), graph.Vertex((h+1)%40))
		for l := 0; l < 20; l++ {
			leaf := bld.AddVertex(0)
			bld.AddEdge(graph.Vertex(h), leaf)
		}
	}
	g := bld.MustBuild()
	// Pattern: hub with 3 leaves plus a hub neighbor.
	q := graph.MustFromEdges([]graph.Label{1, 0, 0, 0, 1},
		[][2]graph.Vertex{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.Match(q, g, core.PresetConfig(core.Optimized, q, g), core.Limits{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Embeddings), "embeddings")
		}
	})
	b.Run("compressed", func(b *testing.B) {
		c, err := compress.Build(g)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			res, err := compress.Count(q, c, compress.CountOptions{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Embeddings), "embeddings")
		}
	})
}

// BenchmarkPreprocess measures the parallel preprocessing pipeline on
// the skewed R-MAT fixture, one sub-benchmark per phase × worker
// count. On CPU-constrained runners wall-clock understates the
// parallelism, so each parallel run also reports
// proj-speedup = Σ(worker work)/max(worker work) — the makespan bound
// the task partition admits on unconstrained cores, from the per-worker
// work-unit tallies (candidates examined for the filters, candidates
// scanned + adjacency targets emitted for the CSR build). This is the
// same metric the enumeration benchmarks derive from
// Result.WorkerNodes; see EXPERIMENTS.md "Parallel preprocessing".

func reportMakespan(b *testing.B, work []uint64) {
	b.Helper()
	if bound := par.MakespanBound(work); bound > 1 {
		b.ReportMetric(bound, "proj-speedup")
	}
}

func BenchmarkPreprocessGraphQL(b *testing.B) {
	f := getSkewFixture(b)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var work []uint64
			for i := 0; i < b.N; i++ {
				var err error
				_, work, err = filter.RunParallelStats(filter.GQL, f.q, f.g, workers)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportMakespan(b, work)
		})
	}
}

func BenchmarkPreprocessCFL(b *testing.B) {
	f := getSkewFixture(b)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var work []uint64
			for i := 0; i < b.N; i++ {
				var err error
				_, work, err = filter.RunParallelStats(filter.CFL, f.q, f.g, workers)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportMakespan(b, work)
		})
	}
}

func BenchmarkPreprocessCECI(b *testing.B) {
	f := getSkewFixture(b)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var work []uint64
			for i := 0; i < b.N; i++ {
				var err error
				_, work, err = filter.RunParallelStats(filter.CECI, f.q, f.g, workers)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportMakespan(b, work)
		})
	}
}

func BenchmarkPreprocessDPIso(b *testing.B) {
	f := getSkewFixture(b)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var work []uint64
			for i := 0; i < b.N; i++ {
				var err error
				_, work, err = filter.RunParallelStats(filter.DPIso, f.q, f.g, workers)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportMakespan(b, work)
		})
	}
}

func BenchmarkPreprocessBuildFull(b *testing.B) {
	f := getSkewFixture(b)
	cand, err := filter.Run(filter.GQL, f.q, f.g)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var work []uint64
			for i := 0; i < b.N; i++ {
				_, work = candspace.BuildFullParallelStats(f.q, f.g, cand, workers)
			}
			reportMakespan(b, work)
		})
	}
}

// --- Adaptive intersection kernels ------------------------------------

// kernelBenchSet builds a sorted set of n values with the given block
// density: stride 1 packs 64 elements per block (dense), stride 97 puts
// one element per block (sparse). start staggers the two operands so
// the intersection is nonempty but not total.
func kernelBenchSet(n, stride, start int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(start + i*stride)
	}
	return out
}

// BenchmarkIntersectKernels is the kernel-selection design space: size
// ratio (balanced vs 1:64 skew) × block density (dense vs sparse) ×
// kernel (merge, gallop, hybrid, block, adaptive). The adaptive row
// should track the best static kernel in every cell; EXPERIMENTS.md
// records the measured grid.
func BenchmarkIntersectKernels(b *testing.B) {
	shapes := []struct {
		name string
		a, c []uint32
	}{
		{"dense-balanced", kernelBenchSet(4096, 1, 0), kernelBenchSet(4096, 1, 2048)},
		{"dense-skewed", kernelBenchSet(1024, 1, 32768), kernelBenchSet(65536, 1, 0)},
		{"sparse-balanced", kernelBenchSet(4096, 97, 0), kernelBenchSet(4096, 97, 97*2048)},
		{"sparse-skewed", kernelBenchSet(1024, 97, 97*32768), kernelBenchSet(65536, 97, 0)},
	}
	for _, sh := range shapes {
		counts := []int32{int32(intersect.CountBlocks(sh.a)), int32(intersect.CountBlocks(sh.c))}
		fl := intersect.NewFlatBlocks(counts)
		fl.EncodeSet(0, sh.a)
		fl.EncodeSet(1, sh.c)
		av, cv := fl.View(0), fl.View(1)
		dst := make([]uint32, 0, len(sh.a))
		size := len(intersect.Merge(dst[:0], sh.a, sh.c))
		kernels := []struct {
			name string
			fn   func() int
		}{
			{"merge", func() int { dst = intersect.Merge(dst[:0], sh.a, sh.c); return len(dst) }},
			{"gallop", func() int { dst = intersect.Galloping(dst[:0], sh.a, sh.c); return len(dst) }},
			{"hybrid", func() int { dst = intersect.Hybrid(dst[:0], sh.a, sh.c); return len(dst) }},
			{"block", func() int { dst = intersect.IntersectViews(dst[:0], av, cv); return len(dst) }},
		}
		var sel intersect.Selector
		kernels = append(kernels, struct {
			name string
			fn   func() int
		}{"adaptive", func() int { dst = sel.Pair(dst[:0], sh.a, sh.c, av, cv); return len(dst) }})
		for _, k := range kernels {
			b.Run(sh.name+"/"+k.name, func(b *testing.B) {
				got := 0
				for i := 0; i < b.N; i++ {
					got = k.fn()
				}
				if got != size {
					b.Fatalf("%s/%s: %d results, want %d", sh.name, k.name, got, size)
				}
				b.ReportMetric(float64(size), "results/op")
			})
		}
	}
}

// BenchmarkEnumerateKernelPolicy runs the full optimized pipeline on the
// R-MAT fixture under each kernel policy — the end-to-end cost the
// adaptive default must not regress (EXPERIMENTS.md "Adaptive kernels").
func BenchmarkEnumerateKernelPolicy(b *testing.B) {
	f := getFixture(b)
	for _, p := range []intersect.Policy{
		intersect.PolicyHybrid, intersect.PolicyMerge, intersect.PolicyGallop,
		intersect.PolicyBlock, intersect.PolicyAdaptive,
	} {
		cfg := core.Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Intersect, Kernel: p}
		b.Run(p.String()+"/dense", func(b *testing.B) { runSet(b, f.dense16, f.g, cfg) })
		b.Run(p.String()+"/sparse", func(b *testing.B) { runSet(b, f.sparse16, f.g, cfg) })
	}
}

// BenchmarkCandSpaceBlockLayout compares materializing the block layout
// as boxed per-candidate BlockSets against the flat CSR-of-blocks arena
// (allocations and layout bytes; run with -benchmem). The space build
// itself is identical in both arms.
func BenchmarkCandSpaceBlockLayout(b *testing.B) {
	f := getFixture(b)
	q := f.dense16[0]
	cand, err := filter.Run(filter.GQL, q, f.g)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("boxed", func(b *testing.B) {
		b.ReportAllocs()
		var bytes int64
		for i := 0; i < b.N; i++ {
			s := candspace.BuildFull(q, f.g, cand)
			bytes = 0
			for u := 0; u < q.NumVertices(); u++ {
				uu := graph.Vertex(u)
				for _, up := range q.Neighbors(uu) {
					if !s.HasPair(uu, up) {
						continue
					}
					for ci := range s.Candidates(uu) {
						bs := intersect.NewBlockSet(s.Adjacency(uu, up, ci))
						// keys + words + struct and slice headers per set.
						bytes += int64(bs.NumBlocks()*12) + 64
					}
				}
			}
		}
		b.ReportMetric(float64(bytes), "layout-bytes")
	})
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		var bytes int64
		for i := 0; i < b.N; i++ {
			s := candspace.BuildFull(q, f.g, cand)
			s.MaterializeBlocks()
			bytes = s.BlockMemoryBytes()
		}
		b.ReportMetric(float64(bytes), "layout-bytes")
	})
	b.Run("flat-parallel-4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := candspace.BuildFull(q, f.g, cand)
			s.MaterializeBlocksParallel(4)
		}
	})
}
