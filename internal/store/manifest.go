package store

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"subgraphmatching/internal/graph"
)

// manifestName is the checkpoint file inside the data directory. WAL
// compaction folds the live registry state into it atomically and then
// truncates the log; recovery is manifest + WAL suffix.
const manifestName = "MANIFEST"

// snapshotsDir holds the content-addressed snapshot files, named by
// fingerprint prefix — re-registering identical bytes reuses the file,
// and two names serving the same graph share one snapshot.
const snapshotsDir = "snapshots"

// manifest is the JSON checkpoint. NextGen persists the generation
// high-water mark (including unregistered names), so generations stay
// strictly monotonic across restarts even after churn.
type manifest struct {
	Version int             `json:"version"`
	NextGen uint64          `json:"next_gen"`
	Graphs  []manifestEntry `json:"graphs"`
}

type manifestEntry struct {
	Name        string `json:"name"`
	Generation  uint64 `json:"generation"`
	Fingerprint string `json:"fingerprint"`
	Snapshot    string `json:"snapshot"`
}

func (e manifestEntry) fingerprint() (graph.Fingerprint, error) {
	var fp graph.Fingerprint
	b, err := hex.DecodeString(e.Fingerprint)
	if err != nil || len(b) != len(fp) {
		return fp, corruptf("manifest: bad fingerprint %q for %q", e.Fingerprint, e.Name)
	}
	copy(fp[:], b)
	return fp, nil
}

// readManifest loads the checkpoint; a missing file is an empty state.
func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return &manifest{Version: 1}, nil
		}
		return nil, fmt.Errorf("store: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, corruptf("manifest: %v", err)
	}
	if m.Version != 1 {
		return nil, fmt.Errorf("%w: manifest version %d", ErrVersion, m.Version)
	}
	return &m, nil
}

// writeManifest checkpoints atomically (temp + fsync + rename).
func writeManifest(dir string, m *manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode manifest: %w", err)
	}
	return writeFileAtomic(filepath.Join(dir, manifestName), append(data, '\n'))
}

// snapshotFileName is the content address: the fingerprint's first 16
// bytes in hex. Equal graphs collide exactly when their bytes are
// identical, which is the point.
func snapshotFileName(fp graph.Fingerprint) string {
	return hex.EncodeToString(fp[:16]) + ".snap"
}
