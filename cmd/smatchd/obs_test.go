package main

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"subgraphmatching/internal/service"
	"subgraphmatching/internal/testutil"
)

// promValue extracts the value of a single un-labelled or labelled
// sample line from a text exposition. Returns the sum over all lines
// of the family (so labelled counters aggregate across label sets).
func promValue(t *testing.T, exposition, family string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(family) + `(?:\{[^}]*\})? ([0-9eE+.-]+)$`)
	var sum float64
	for _, m := range re.FindAllStringSubmatch(exposition, -1) {
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatalf("bad sample for %s: %q", family, m[1])
		}
		sum += v
	}
	return sum
}

// TestMetricsEndpoint round-trips /metrics over HTTP: the exposition
// must be well-formed, and the request, cache, and admission families
// must move after a /match is served.
func TestMetricsEndpoint(t *testing.T) {
	ts, g := newTestServer(t)

	resp, before := do(t, "GET", ts.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type = %q", ct)
	}
	if v := promValue(t, before, "smatch_requests_total"); v != 0 {
		t.Errorf("requests before any match = %v", v)
	}
	if v := promValue(t, before, "smatch_admission_capacity"); v <= 0 {
		t.Errorf("admission capacity = %v, want positive", v)
	}

	// Serve one match, twice: a build then a cache hit.
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(5)), g, 4)
	body := graphText(t, q)
	for i := 0; i < 2; i++ {
		resp, out := do(t, "POST", ts.URL+"/match?graph=main", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("match %d = %d %q", i, resp.StatusCode, out)
		}
	}

	_, after := do(t, "GET", ts.URL+"/metrics", "")
	if v := promValue(t, after, "smatch_requests_total"); v != 2 {
		t.Errorf("requests after 2 matches = %v", v)
	}
	if v := promValue(t, after, "smatch_plan_builds_total"); v != 1 {
		t.Errorf("plan builds = %v, want 1", v)
	}
	if v := promValue(t, after, "smatch_plan_cache_hits_total"); v != 1 {
		t.Errorf("plan cache hits = %v, want 1", v)
	}
	if v := promValue(t, after, "smatch_plan_cache_entries"); v != 1 {
		t.Errorf("plan cache entries = %v, want 1", v)
	}
	if v := promValue(t, after, "smatch_request_duration_seconds_count"); v != 2 {
		t.Errorf("latency observations = %v, want 2", v)
	}
	// Idle again: nothing in flight or queued.
	if v := promValue(t, after, "smatch_admission_in_use"); v != 0 {
		t.Errorf("in_use after requests drained = %v", v)
	}
}

// TestMatchTraceParam: trace=1 attaches the span tree to the /match
// result; without it the field is absent.
func TestMatchTraceParam(t *testing.T) {
	ts, g := newTestServer(t)
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(5)), g, 4)
	body := graphText(t, q)

	resp, out := do(t, "POST", ts.URL+"/match?graph=main", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match = %d %q", resp.StatusCode, out)
	}
	if strings.Contains(out, `"trace"`) {
		t.Error("untraced result carries a trace field")
	}

	resp, out = do(t, "POST", ts.URL+"/match?graph=main&trace=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced match = %d %q", resp.StatusCode, out)
	}
	var res matchResult
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Name != "request" {
		t.Fatalf("trace = %+v, want request span", res.Trace)
	}
	if res.Trace.Child("match") == nil || res.Trace.Child("admission") == nil {
		t.Errorf("trace children incomplete: %+v", res.Trace.Children)
	}
}

// TestPprofGated: the profiling endpoints exist only when opted in.
func TestPprofGated(t *testing.T) {
	svc := service.New(service.Config{})
	t.Cleanup(func() { svc.Close() })

	off := httptest.NewServer(newServer(svc, serverOptions{}))
	t.Cleanup(off.Close)
	resp, _ := do(t, "GET", off.URL+"/debug/pprof/", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without -pprof = %d, want 404", resp.StatusCode)
	}

	on := httptest.NewServer(newServer(svc, serverOptions{pprof: true}))
	t.Cleanup(on.Close)
	resp, body := do(t, "GET", on.URL+"/debug/pprof/", "")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index = %d", resp.StatusCode)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index unexpected body: %.100s", body)
	}
}
