package experiments

import (
	"fmt"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/order"
	"subgraphmatching/internal/workload"
)

// The ordering study of Section 5.3 (Figures 11-13): every ordering
// method runs with GraphQL's candidates, the full-edge auxiliary
// structure and Algorithm 5 local candidates (core.OrderingStudyConfig),
// so differences are attributable to the order alone. Failing sets are
// disabled, as in the paper.

var orderingStudyMethods = []order.Method{
	order.QSI, order.GQL, order.CFL, order.CECI, order.DPIso, order.RI, order.VF2PP,
}

// orderingAgg runs one ordering method over one query set.
func orderingAgg(env Env, set *workload.QuerySet, g *graph.Graph, om order.Method, failingSets bool) workload.Aggregate {
	cfg := core.OrderingStudyConfig(om, failingSets)
	return workload.Run(om.String(), set.Queries, g,
		func(*graph.Graph) core.Config { return cfg }, env.Limits())
}

// Fig11 reproduces Figure 11: mean enumeration time per ordering method,
// (a) across datasets, (b) across dense query sizes on yt, (c) dense vs
// sparse on yt.
func Fig11(env Env) error {
	env = env.WithDefaults()
	section(env.Out, "Figure 11: enumeration time of ordering methods (ms)", "Figure 11(a-c)")

	header := []string{"set"}
	for _, om := range orderingStudyMethods {
		header = append(header, om.String())
	}

	ta := workload.Table{Title: "(a) by dataset (default dense query set)", Header: header}
	for _, ds := range env.Datasets {
		g, err := dataGraph(ds)
		if err != nil {
			return err
		}
		dense, sparse, err := defaultSets(env, ds)
		if err != nil {
			return err
		}
		set := dense
		if set == nil {
			set = sparse
		}
		row := []string{ds + "/" + set.Name}
		for _, om := range orderingStudyMethods {
			agg := orderingAgg(env, set, g, om, false)
			row = append(row, workload.FmtMS(agg.MeanEnum))
		}
		ta.AddRow(row...)
	}
	env.render(&ta)

	const ds = "yt"
	g, err := dataGraph(ds)
	if err != nil {
		return err
	}
	qs, err := querySets(env, ds)
	if err != nil {
		return err
	}
	tb := workload.Table{Title: "(b) by dense query size on " + ds, Header: header}
	for i := range qs {
		s := &qs[i]
		if s.Name != "Q4" && s.Name[len(s.Name)-1] != 'D' {
			continue
		}
		row := []string{s.Name}
		for _, om := range orderingStudyMethods {
			agg := orderingAgg(env, s, g, om, false)
			row = append(row, workload.FmtMS(agg.MeanEnum))
		}
		tb.AddRow(row...)
	}
	env.render(&tb)

	dense, sparse, err := defaultSets(env, ds)
	if err != nil {
		return err
	}
	tc := workload.Table{Title: "(c) dense vs sparse on " + ds, Header: header}
	for _, s := range []*workload.QuerySet{dense, sparse} {
		if s == nil {
			continue
		}
		row := []string{s.Name}
		for _, om := range orderingStudyMethods {
			agg := orderingAgg(env, s, g, om, false)
			row = append(row, workload.FmtMS(agg.MeanEnum))
		}
		tc.AddRow(row...)
	}
	env.render(&tc)
	return nil
}

// Fig12 reproduces Figure 12: the standard deviation of the enumeration
// time per query set on yt, showing the high per-query variance the
// paper highlights.
func Fig12(env Env) error {
	env = env.WithDefaults()
	section(env.Out, "Figure 12: std-dev of enumeration time on yt (ms)", "Figure 12")
	const ds = "yt"
	g, err := dataGraph(ds)
	if err != nil {
		return err
	}
	qs, err := querySets(env, ds)
	if err != nil {
		return err
	}
	header := []string{"set"}
	for _, om := range orderingStudyMethods {
		header = append(header, om.String())
	}
	t := workload.Table{Title: "standard deviation of enumeration time", Header: header}
	for i := range qs {
		s := &qs[i]
		if s.Name == "Q4" {
			continue
		}
		row := []string{s.Name}
		for _, om := range orderingStudyMethods {
			agg := orderingAgg(env, s, g, om, false)
			row = append(row, workload.FmtMS(agg.StdEnum))
		}
		t.AddRow(row...)
	}
	env.render(&t)
	return nil
}

// Fig13 reproduces Figure 13: the fraction of short / median / long /
// unsolved queries per ordering method on yt's largest dense and sparse
// sets. Thresholds are relative to the time limit as in the paper
// (1s / 60s / 300s of a 300s limit).
func Fig13(env Env) error {
	env = env.WithDefaults()
	section(env.Out, "Figure 13: query time categories on yt (% of queries)", "Figure 13(a-b)")
	const ds = "yt"
	g, err := dataGraph(ds)
	if err != nil {
		return err
	}
	dense, sparse, err := defaultSets(env, ds)
	if err != nil {
		return err
	}
	for _, s := range []*workload.QuerySet{dense, sparse} {
		if s == nil {
			continue
		}
		t := workload.Table{
			Title:  fmt.Sprintf("query set %s", s.Name),
			Header: []string{"order", "short", "median", "long", "unsolved"},
		}
		for _, om := range orderingStudyMethods {
			agg := orderingAgg(env, s, g, om, false)
			total := float64(agg.Queries - agg.Errors)
			if total == 0 {
				continue
			}
			pct := func(n int) string { return fmt.Sprintf("%.0f%%", 100*float64(n)/total) }
			t.AddRow(om.String(), pct(agg.Short), pct(agg.Median), pct(agg.Long), pct(agg.Unsolved))
		}
		env.render(&t)
	}
	return nil
}

// Table5 reproduces Table 5: the number of unsolved queries per
// algorithm on yt, up, hu and wn over every query set, without and with
// failing sets, plus the fail-all count.
func Table5(env Env) error {
	env = env.WithDefaults()
	section(env.Out, "Table 5: number of unsolved queries", "Table 5")
	// The paper reports yt, up, hu and wn; honor a restricted Env by
	// intersecting.
	datasets := []string{}
	for _, ds := range []string{"yt", "up", "hu", "wn"} {
		for _, have := range env.Datasets {
			if ds == have {
				datasets = append(datasets, ds)
				break
			}
		}
	}
	if len(datasets) == 0 {
		datasets = env.Datasets
	}
	t := workload.Table{Header: []string{"algorithm"}}
	for _, ds := range datasets {
		t.Header = append(t.Header, ds+" wo/fs", ds+" w/fs")
	}

	// unsolvedByQuery[ds][fs][query global index] counts solving
	// algorithms for the fail-all row.
	type key struct {
		ds string
		fs bool
	}
	solvedBySome := map[key][]bool{}
	counts := map[order.Method]map[key]int{}
	totals := map[string]int{}

	for _, ds := range datasets {
		g, err := dataGraph(ds)
		if err != nil {
			return err
		}
		qs, err := querySets(env, ds)
		if err != nil {
			return err
		}
		var all []*graph.Graph
		for i := range qs {
			all = append(all, qs[i].Queries...)
		}
		totals[ds] = len(all)
		for _, fs := range []bool{false, true} {
			k := key{ds, fs}
			solvedBySome[k] = make([]bool, len(all))
			for _, om := range orderingStudyMethods {
				cfg := core.OrderingStudyConfig(om, fs)
				outcomes := workload.RunEach(all, g, func(*graph.Graph) core.Config { return cfg }, env.Limits())
				if counts[om] == nil {
					counts[om] = map[key]int{}
				}
				for i, o := range outcomes {
					if o.Err != nil {
						continue
					}
					if o.Result.TimedOut {
						counts[om][k]++
					} else {
						solvedBySome[k][i] = true
					}
				}
			}
		}
	}
	for _, om := range orderingStudyMethods {
		row := []string{om.String()}
		for _, ds := range datasets {
			row = append(row,
				fmt.Sprintf("%d", counts[om][key{ds, false}]),
				fmt.Sprintf("%d", counts[om][key{ds, true}]))
		}
		t.AddRow(row...)
	}
	failAll := []string{"Fail-All"}
	for _, ds := range datasets {
		for _, fs := range []bool{false, true} {
			n := 0
			for _, solved := range solvedBySome[key{ds, fs}] {
				if !solved {
					n++
				}
			}
			failAll = append(failAll, fmt.Sprintf("%d", n))
		}
	}
	t.AddRow(failAll...)
	fmt.Fprintf(env.Out, "(each dataset: %v queries total across all its query sets)\n", totals)
	env.render(&t)
	return nil
}
