// Command genquery extracts query graphs from a data graph by random
// walk, following the paper's query-set methodology: connected induced
// subgraphs with a fixed vertex count and a density class (dense:
// average degree >= 3; sparse: < 3).
//
// Usage:
//
//	genquery -d data.graph -o queries/ -size 8 -count 200 -density dense [-seed 1]
//
// Queries are written to <out>/q_<size><D|S|A>_<i>.graph.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	sm "subgraphmatching"
)

func main() {
	var (
		dataPath = flag.String("d", "", "data graph file (required)")
		outDir   = flag.String("o", "", "output directory (required)")
		size     = flag.Int("size", 8, "query vertex count")
		count    = flag.Int("count", 200, "number of queries")
		density  = flag.String("density", "any", "density class: dense, sparse, any")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(*dataPath, *outDir, *size, *count, *density, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "genquery:", err)
		os.Exit(1)
	}
}

func run(dataPath, outDir string, size, count int, density string, seed int64) error {
	if dataPath == "" || outDir == "" {
		return fmt.Errorf("both -d and -o are required")
	}
	var dc sm.QueryDensity
	var suffix string
	switch density {
	case "dense":
		dc, suffix = sm.QueryDense, "D"
	case "sparse":
		dc, suffix = sm.QuerySparse, "S"
	case "any":
		dc, suffix = sm.QueryAny, "A"
	default:
		return fmt.Errorf("unknown density %q (want dense, sparse or any)", density)
	}
	g, err := sm.LoadGraph(dataPath)
	if err != nil {
		return err
	}
	qs, err := sm.GenerateQueries(g, sm.QueryConfig{
		NumVertices: size, Count: count, Density: dc, Seed: seed,
	})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	for i, q := range qs {
		path := filepath.Join(outDir, fmt.Sprintf("q_%d%s_%d.graph", size, suffix, i))
		if err := sm.SaveGraph(path, q); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d queries (size %d, %s) to %s\n", len(qs), size, density, outDir)
	return nil
}
