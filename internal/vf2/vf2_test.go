package vf2

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/testutil"
)

func TestPaperExample(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	var got []uint32
	st, err := Solve(q, g, Options{OnMatch: func(m []uint32) bool {
		got = append([]uint32(nil), m...)
		return true
	}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Embeddings != 1 {
		t.Fatalf("Embeddings = %d, want 1", st.Embeddings)
	}
	want := testutil.PaperMatch()
	for u, v := range want {
		if got[u] != v {
			t.Fatalf("match = %v, want %v", got, want)
		}
	}
}

func TestAgreementWithBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 12+rng.Intn(15), 30+rng.Intn(40), 1+rng.Intn(3))
		q := testutil.RandomConnectedQuery(rng, g, 3+rng.Intn(4))
		if q == nil {
			return true
		}
		want := testutil.BruteForceCount(q, g, 0)
		valid := true
		st, err := Solve(q, g, Options{OnMatch: func(m []uint32) bool {
			if !testutil.IsValidEmbedding(q, g, m) {
				valid = false
				return false
			}
			return true
		}})
		if err != nil || !valid {
			t.Logf("err=%v valid=%v (seed %d)", err, valid, seed)
			return false
		}
		if st.Embeddings != want {
			t.Logf("Embeddings = %d, brute force %d (seed %d)", st.Embeddings, want, seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLimits(t *testing.T) {
	var edges [][2]graph.Vertex
	for i := 0; i < 7; i++ {
		for j := i + 1; j < 7; j++ {
			edges = append(edges, [2]graph.Vertex{graph.Vertex(i), graph.Vertex(j)})
		}
	}
	g := graph.MustFromEdges(make([]graph.Label, 7), edges)
	q := graph.MustFromEdges(make([]graph.Label, 3), [][2]graph.Vertex{{0, 1}, {1, 2}, {0, 2}})
	st, err := Solve(q, g, Options{MaxEmbeddings: 9})
	if err != nil {
		t.Fatal(err)
	}
	if st.Embeddings != 9 || !st.LimitHit {
		t.Errorf("cap: %+v", st)
	}
	st, _ = Solve(q, g, Options{})
	if st.Embeddings != 210 {
		t.Errorf("uncapped = %d, want 210", st.Embeddings)
	}
}

func TestTimeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := testutil.RandomGraph(rng, 300, 6000, 1)
	q := graph.MustFromEdges(make([]graph.Label, 6),
		[][2]graph.Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	st, err := Solve(q, g, Options{TimeLimit: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !st.TimedOut || st.Solved() {
		t.Errorf("expected timeout: %+v", st)
	}
}

func TestEdgeCases(t *testing.T) {
	g := testutil.PaperData()
	empty := graph.MustFromEdges(nil, nil)
	if st, err := Solve(empty, g, Options{}); err != nil || st.Embeddings != 0 {
		t.Error("empty query should return zero matches")
	}
	disc := graph.MustFromEdges([]graph.Label{0, 0, 0}, [][2]graph.Vertex{{0, 1}})
	if _, err := Solve(disc, g, Options{}); err == nil {
		t.Error("expected error for disconnected query")
	}
}
