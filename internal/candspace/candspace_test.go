package candspace

import (
	"math/rand"
	"reflect"
	"testing"

	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/testutil"
)

func paperSpace(t *testing.T) (*graph.Graph, *graph.Graph, *Space) {
	t.Helper()
	q, g := testutil.PaperQuery(), testutil.PaperData()
	cand, err := filter.Run(filter.CFL, q, g)
	if err != nil {
		t.Fatal(err)
	}
	return q, g, BuildFull(q, g, cand)
}

func TestFullSpacePaperExample(t *testing.T) {
	_, _, s := paperSpace(t)
	// Example 3.2: A[u1->u3](v4) = {v10, v12}. C(u1) = {2, 4}, so v4 has
	// candidate index 1.
	idx := s.CandidateIndex(1, 4)
	if idx != 1 {
		t.Fatalf("CandidateIndex(u1, v4) = %d, want 1", idx)
	}
	got := s.Adjacency(1, 3, idx)
	if want := []uint32{10, 12}; !reflect.DeepEqual(got, want) {
		t.Errorf("A[u1->u3](v4) = %v, want %v", got, want)
	}
	// Reverse direction: A[u3->u1](v12) = {v2, v4}.
	idx12 := s.CandidateIndex(3, 12)
	got = s.Adjacency(3, 1, idx12)
	if want := []uint32{2, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("A[u3->u1](v12) = %v, want %v", got, want)
	}
}

func TestCandidateIndexMissing(t *testing.T) {
	_, _, s := paperSpace(t)
	if got := s.CandidateIndex(1, 6); got != -1 {
		t.Errorf("CandidateIndex(u1, v6) = %d, want -1 (v6 was pruned)", got)
	}
}

func TestAdjacencyConsistency(t *testing.T) {
	// Property: on random inputs, A[u->u'](v) must equal N(v) ∩ C(u')
	// computed naively, for every materialized pair.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		g := testutil.RandomGraph(rng, 20+rng.Intn(20), 60, 3)
		q := testutil.RandomConnectedQuery(rng, g, 4)
		if q == nil {
			continue
		}
		cand := filter.RunNLF(q, g)
		s := BuildFull(q, g, cand)
		for u := 0; u < q.NumVertices(); u++ {
			uu := graph.Vertex(u)
			for _, up := range q.Neighbors(uu) {
				for ci, v := range cand[u] {
					var want []uint32
					for _, w := range g.Neighbors(v) {
						for _, c := range cand[up] {
							if c == w {
								want = append(want, w)
							}
						}
					}
					got := s.Adjacency(uu, up, ci)
					if len(got) == 0 && len(want) == 0 {
						continue
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("A[u%d->u%d](v%d) = %v, want %v", u, up, v, got, want)
					}
				}
			}
		}
	}
}

func TestTreeSpaceOnlyMaterializesTreeEdges(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	cand := filter.RunCFL(q, g)
	tree := graph.NewBFSTree(q, 0)
	s := BuildTree(q, g, cand, tree.Parent)
	// Tree edges: (u0,u1), (u0,u2), (u1,u3). Non-tree: (u1,u2), (u2,u3).
	treePairs := [][2]graph.Vertex{{0, 1}, {1, 0}, {0, 2}, {2, 0}, {1, 3}, {3, 1}}
	for _, p := range treePairs {
		if !s.HasPair(p[0], p[1]) {
			t.Errorf("tree pair (%d,%d) not materialized", p[0], p[1])
		}
	}
	nonTree := [][2]graph.Vertex{{1, 2}, {2, 1}, {2, 3}, {3, 2}}
	for _, p := range nonTree {
		if s.HasPair(p[0], p[1]) {
			t.Errorf("non-tree pair (%d,%d) unexpectedly materialized", p[0], p[1])
		}
		if got := s.Adjacency(p[0], p[1], 0); got != nil {
			t.Errorf("Adjacency on non-tree pair = %v, want nil", got)
		}
	}
}

func TestMetrics(t *testing.T) {
	q, g, s := func() (*graph.Graph, *graph.Graph, *Space) {
		q, g := testutil.PaperQuery(), testutil.PaperData()
		cand := filter.RunCFL(q, g)
		return q, g, BuildFull(q, g, cand)
	}()
	_ = g
	if got := s.TotalCandidates(); got != 7 {
		t.Errorf("TotalCandidates = %d, want 7", got)
	}
	if got := s.MeanCandidates(); got != 7.0/4.0 {
		t.Errorf("MeanCandidates = %v", got)
	}
	if s.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive")
	}
	if s.Query() != q {
		t.Error("Query() should return the query graph")
	}
}

func TestBlocksMatchPlainAdjacency(t *testing.T) {
	_, _, s := paperSpace(t)
	if s.HasBlocks() {
		t.Fatal("blocks should not exist before MaterializeBlocks")
	}
	s.MaterializeBlocks()
	s.MaterializeBlocks() // idempotent
	if !s.HasBlocks() {
		t.Fatal("HasBlocks after MaterializeBlocks")
	}
	q := s.Query()
	for u := 0; u < q.NumVertices(); u++ {
		uu := graph.Vertex(u)
		for _, up := range q.Neighbors(uu) {
			for ci := range s.Candidates(uu) {
				plain := s.Adjacency(uu, up, ci)
				bv := s.AdjacencyView(uu, up, ci)
				if !bv.Valid() {
					t.Fatalf("missing block layout for (u%d,u%d,%d)", u, up, ci)
				}
				got := bv.Elements(nil)
				if len(got) == 0 && len(plain) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, plain) {
					t.Fatalf("block layout mismatch for (u%d,u%d,%d): %v vs %v", u, up, ci, got, plain)
				}
			}
		}
	}
}
