package flight

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
	"time"

	"subgraphmatching/internal/obs"
)

func TestWriteChromeTrace(t *testing.T) {
	base := time.Unix(100, 0)
	root := obs.NewSpan("match", base, 10*time.Millisecond)
	pre := obs.NewSpan("preprocess", base, 4*time.Millisecond).SetAttr("filter", "GQL")
	// Annotation child with zero start: must inherit its parent's ts.
	pre.AddChild(obs.NewSpan("worker-0", time.Time{}, 0).SetAttr("work", 7))
	enum := obs.NewSpan("enumerate", base.Add(4*time.Millisecond), 6*time.Millisecond)
	root.AddChild(pre).AddChild(enum)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, root); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	if len(tr.TraceEvents) != 4 {
		t.Fatalf("%d events, want 4", len(tr.TraceEvents))
	}
	byName := map[string]int{}
	for i, ev := range tr.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q phase %q, want X", ev.Name, ev.Ph)
		}
		byName[ev.Name] = i
	}
	if ts := tr.TraceEvents[byName["match"]].Ts; ts != 0 {
		t.Errorf("root ts = %v, want 0", ts)
	}
	if ts := tr.TraceEvents[byName["enumerate"]].Ts; ts != 4000 {
		t.Errorf("enumerate ts = %v µs, want 4000", ts)
	}
	if ts := tr.TraceEvents[byName["worker-0"]].Ts; ts != 0 {
		t.Errorf("annotation child ts = %v, want parent's 0", ts)
	}
	if d := tr.TraceEvents[byName["match"]].Dur; d != 10000 {
		t.Errorf("root dur = %v µs, want 10000", d)
	}
	if v := tr.TraceEvents[byName["preprocess"]].Args["filter"]; v != "GQL" {
		t.Errorf("args lost: %v", tr.TraceEvents[byName["preprocess"]].Args)
	}
}

func TestWriteChromeTraceNilRoot(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"traceEvents":[]`)) {
		t.Fatalf("nil root: %s", buf.String())
	}
}

// FuzzProfileRender feeds arbitrary span trees (via the JSON decoder)
// to every renderer a /debug endpoint exposes: the text render and the
// Chrome trace export must never panic, whatever the tree looks like.
func FuzzProfileRender(f *testing.F) {
	base := time.Unix(1, 0)
	root := obs.NewSpan("match", base, time.Millisecond)
	root.AddChild(obs.NewSpan("preprocess", base, time.Microsecond).SetAttr("k", 1))
	root.AddChild(obs.NewSpan("enumerate", time.Time{}, 0))
	seed, err := json.Marshal(root)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"name":"x","duration_ns":-5,"children":[{"name":""}]}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var s obs.Span
		if err := json.Unmarshal(data, &s); err != nil {
			t.Skip()
		}
		s.Render(io.Discard)
		if err := WriteChromeTrace(io.Discard, &s); err != nil {
			t.Fatalf("chrome export errored on valid span: %v", err)
		}
	})
}
