package filter

import (
	"fmt"
	"time"

	"subgraphmatching/internal/graph"
)

// Stage records one internal stage of a filtering method: its name, how
// long it took, and the candidate count across query vertices once it
// finished — the per-stage attribution the paper's profiling
// methodology calls for (filtering wins are explained by *which* pruning
// stage removes the candidates, not by the method's total time). When
// the trace was collected with PerVertex set, Counts additionally holds
// |C(u)| per query vertex after the stage ran — the EXPLAIN view of
// where each vertex's candidates died.
type Stage struct {
	Name       string
	Duration   time.Duration
	Candidates uint64
	Counts     []uint32
}

// StageTrace collects the stages of one filtering run. A nil trace
// disables collection; the traced run paths check the pointer once per
// stage boundary, so the cost of an untraced run is a nil compare.
// PerVertex retains the per-query-vertex candidate counts at every stage
// boundary (O(stages x |V(q)|) extra space, negligible next to the
// candidate sets themselves).
type StageTrace struct {
	Stages    []Stage
	PerVertex bool
}

// add closes one stage: named, timed from start, with the candidate
// counts taken from the live candidate sets after it ran. Returns
// time.Now() so call sites chain stages without a second clock read.
func (t *StageTrace) add(name string, start time.Time, cand [][]uint32) time.Time {
	now := time.Now()
	if t != nil {
		st := Stage{Name: name, Duration: now.Sub(start), Candidates: TotalCandidates(cand)}
		if t.PerVertex {
			st.Counts = make([]uint32, len(cand))
			for u, c := range cand {
				st.Counts[u] = uint32(len(c))
			}
		}
		t.Stages = append(t.Stages, st)
	}
	return now
}

// TotalCandidates sums |C(u)| over the query vertices.
func TotalCandidates(cand [][]uint32) uint64 {
	var n uint64
	for _, c := range cand {
		n += uint64(len(c))
	}
	return n
}

// total is TotalCandidates over the state's live candidate sets.
func (s *state) total() uint64 {
	var n uint64
	for _, c := range s.cand {
		n += uint64(len(c))
	}
	return n
}

// RunTraced is Run with per-stage instrumentation: it executes method m
// sequentially and appends each internal stage to tr (single-stage
// methods record one entry). tr may be nil, in which case RunTraced
// behaves exactly like Run.
func RunTraced(m Method, q, g *graph.Graph, tr *StageTrace) ([][]uint32, error) {
	if q.NumVertices() == 0 {
		return nil, fmt.Errorf("filter: empty query graph")
	}
	if !q.IsConnected() {
		return nil, fmt.Errorf("filter: query graph must be connected")
	}
	start := time.Now()
	switch m {
	case LDF:
		c := RunLDF(q, g)
		tr.add("ldf", start, c)
		return c, nil
	case NLF:
		c := RunNLF(q, g)
		tr.add("nlf", start, c)
		return c, nil
	case GQL:
		return runGraphQLRadius(q, g, DefaultGQLRounds, 1, tr), nil
	case CFL:
		return runCFLFrom(q, g, CFLRoot(q, g), tr), nil
	case CECI:
		return runCECIFrom(q, g, CECIRoot(q, g), tr), nil
	case DPIso:
		return runDPIsoFrom(q, g, DPIsoRoot(q, g), DefaultDPIsoPasses, tr), nil
	case Steady:
		c := RunSteady(q, g)
		tr.add("fixpoint", start, c)
		return c, nil
	default:
		return nil, fmt.Errorf("filter: unknown method %v", m)
	}
}

// RunGraphQLRadiusTraced is RunGraphQLRadius with stage collection.
func RunGraphQLRadiusTraced(q, g *graph.Graph, rounds, radius int, tr *StageTrace) [][]uint32 {
	return runGraphQLRadius(q, g, rounds, radius, tr)
}

// RunDPIsoTraced is RunDPIso with stage collection.
func RunDPIsoTraced(q, g *graph.Graph, passes int, tr *StageTrace) [][]uint32 {
	return runDPIsoFrom(q, g, DPIsoRoot(q, g), passes, tr)
}
