package service

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/testutil"
)

// newTestService builds a service over one registered random graph.
func newTestService(t *testing.T, cfg Config) (*Service, *graph.Graph) {
	t.Helper()
	s := New(cfg)
	g := testutil.RandomGraph(rand.New(rand.NewSource(7)), 300, 900, 3)
	if _, err := s.RegisterGraph("main", g, false); err != nil {
		t.Fatal(err)
	}
	return s, g
}

// collectSink gathers embeddings into a canonical byte serialization so
// two runs can be compared byte-for-byte.
type collectSink struct {
	mu   sync.Mutex
	rows [][]byte
}

func (c *collectSink) fn(m []uint32) bool {
	row := make([]byte, 4*len(m))
	for i, v := range m {
		binary.LittleEndian.PutUint32(row[4*i:], v)
	}
	c.mu.Lock()
	c.rows = append(c.rows, row)
	c.mu.Unlock()
	return true
}

func (c *collectSink) canonical() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	sort.Slice(c.rows, func(i, j int) bool { return bytes.Compare(c.rows[i], c.rows[j]) < 0 })
	return bytes.Join(c.rows, nil)
}

// TestSubmitCachedMatchesFreshAcrossPresets is the cache-correctness
// acceptance test: for every algorithm preset, the embeddings served
// from a cached plan must be byte-identical to a fresh uncached run.
func TestSubmitCachedMatchesFreshAcrossPresets(t *testing.T) {
	s, g := newTestService(t, Config{})
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(11)), g, 5)
	ctx := context.Background()
	for _, algo := range core.Algorithms() {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			var fresh collectSink
			req := Request{Graph: "main", Query: q, Algorithm: algo, NoCache: true}
			freshResp, err := s.Stream(ctx, req, fresh.fn)
			if err != nil {
				t.Fatalf("fresh: %v", err)
			}
			// Twice through the cache: the first Submit warms it (miss),
			// the second must hit.
			for round, wantHit := range []bool{false, true} {
				var cached collectSink
				req := Request{Graph: "main", Query: q, Algorithm: algo}
				resp, err := s.Stream(ctx, req, cached.fn)
				if err != nil {
					t.Fatalf("cached round %d: %v", round, err)
				}
				external := algo == core.Glasgow || algo == core.VF2Classic || algo == core.Ullmann
				if !external && resp.CacheHit != wantHit {
					t.Fatalf("round %d CacheHit = %v, want %v", round, resp.CacheHit, wantHit)
				}
				if external && resp.CacheHit {
					t.Fatal("external engines must never report a cache hit")
				}
				if resp.Result.Embeddings != freshResp.Result.Embeddings {
					t.Fatalf("round %d embeddings = %d, fresh = %d",
						round, resp.Result.Embeddings, freshResp.Result.Embeddings)
				}
				if got, want := cached.canonical(), fresh.canonical(); !bytes.Equal(got, want) {
					t.Fatalf("round %d: cached embeddings differ from fresh (%d vs %d bytes)",
						round, len(got), len(want))
				}
				if resp.CacheHit && resp.Result.PreprocessTime() != 0 {
					t.Fatal("a cache hit must report zero preprocessing time")
				}
			}
		})
	}
}

func TestSubmitCacheAccountingAndStats(t *testing.T) {
	s, g := newTestService(t, Config{PlanCacheSize: 8})
	rng := rand.New(rand.NewSource(3))
	q := testutil.RandomConnectedQuery(rng, g, 4)
	ctx := context.Background()
	req := Request{Graph: "main", Query: q, Algorithm: core.GraphQL}
	for i := 0; i < 3; i++ {
		resp, err := s.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if want := i > 0; resp.CacheHit != want {
			t.Fatalf("submit %d CacheHit = %v, want %v", i, resp.CacheHit, want)
		}
	}
	st := s.Stats()
	if st.Cache.Hits != 2 || st.Cache.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 2 hits 1 miss", st.Cache)
	}
	if len(st.Workloads) != 1 {
		t.Fatalf("workloads = %+v, want one", st.Workloads)
	}
	w := st.Workloads[0]
	if w.Graph != "main" || w.Algorithm != core.GraphQL.String() {
		t.Fatalf("workload key = %q/%q", w.Graph, w.Algorithm)
	}
	if w.Queries != 3 || w.CacheHits != 2 || w.Rejected != 0 || w.Errors != 0 {
		t.Fatalf("workload = %+v, want 3 queries 2 hits", w)
	}
	if w.P50 <= 0 || w.P99 < w.P50 {
		t.Fatalf("latency percentiles = p50 %v p99 %v", w.P50, w.P99)
	}
	if st.Admission.Capacity <= 0 || st.Admission.InUse != 0 || st.Admission.Queued != 0 {
		t.Fatalf("admission = %+v", st.Admission)
	}
}

// TestRegisterUnregisterChurnAccounting drives the serving-layer churn
// the plan-cache leak fix targets: ephemeral graph names registered,
// queried once (inserting a plan), and unregistered. Every insert must
// be reconciled as purged, and the cache must end empty — with the
// stateless liveGen fence there is no per-name residue to leak.
func TestRegisterUnregisterChurnAccounting(t *testing.T) {
	s, g := newTestService(t, Config{PlanCacheSize: 8})
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(13)), g, 4)
	ctx := context.Background()
	const cycles = 30
	for i := 0; i < cycles; i++ {
		name := fmt.Sprintf("ephemeral-%d", i)
		if _, err := s.RegisterGraph(name, g, false); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Submit(ctx, Request{Graph: name, Query: q, Algorithm: core.GraphQL}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.UnregisterGraph(name); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Cache.Size != 0 {
		t.Fatalf("cache size after churn = %d, want 0", st.Cache.Size)
	}
	if st.Cache.Purged != cycles {
		t.Fatalf("purged = %d, want %d", st.Cache.Purged, cycles)
	}
	if st.Cache.Evictions != 0 {
		t.Fatalf("evictions = %d, want 0 (cache never filled)", st.Cache.Evictions)
	}
	// Re-registering a previously churned name must serve normally: the
	// fence is the live generation, not a sticky per-name floor.
	if _, err := s.RegisterGraph("ephemeral-0", g, false); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Submit(ctx, Request{Graph: "ephemeral-0", Query: q, Algorithm: core.GraphQL})
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Fatal("first query after re-register must be a miss")
	}
	if got := s.Stats().Cache.Size; got != 1 {
		t.Fatalf("re-registered name's plan must cache, size = %d", got)
	}
}

func TestSubmitDistinctConfigsGetDistinctPlans(t *testing.T) {
	s, g := newTestService(t, Config{})
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(5)), g, 4)
	ctx := context.Background()
	for _, algo := range []core.Algorithm{core.GraphQL, core.CFL, core.RI} {
		if _, err := s.Submit(ctx, Request{Graph: "main", Query: q, Algorithm: algo}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Cache.Size != 3 || st.Cache.Hits != 0 || st.Cache.Misses != 3 {
		t.Fatalf("cache = %+v, want 3 distinct entries, no hits", st.Cache)
	}
}

func TestHotSwapInvalidatesCachedPlans(t *testing.T) {
	s, _ := newTestService(t, Config{})
	// Swap in a tiny graph the original query still fits: a triangle.
	tri, err := graph.FromEdges([]graph.Label{0, 0, 0}, [][2]graph.Vertex{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	q, err := graph.FromEdges([]graph.Label{0, 0, 0}, [][2]graph.Vertex{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := Request{Graph: "main", Query: q, Algorithm: core.GraphQL}
	before, err := s.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterGraph("main", tri, true); err != nil {
		t.Fatal(err)
	}
	after, err := s.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if after.CacheHit {
		t.Fatal("a hot swap must invalidate cached plans (generation key)")
	}
	if after.Result.Embeddings != 6 {
		t.Fatalf("triangle-in-triangle embeddings = %d, want 6", after.Result.Embeddings)
	}
	if before.Result.Embeddings == after.Result.Embeddings {
		t.Skip("random graph coincidentally matched the triangle count")
	}
}

func TestSubmitTypedValidationErrors(t *testing.T) {
	s, g := newTestService(t, Config{})
	ctx := context.Background()
	three := []graph.Label{0, 0, 0}
	disconnected, _ := graph.FromEdges(three, [][2]graph.Vertex{{0, 1}})
	empty, _ := graph.FromEdges(nil, nil)
	big := testutil.RandomGraph(rand.New(rand.NewSource(9)), g.NumVertices()+10, 2*g.NumVertices(), 3)
	badLabel, _ := graph.FromEdges([]graph.Label{0, 99}, [][2]graph.Vertex{{0, 1}})
	ok := testutil.RandomConnectedQuery(rand.New(rand.NewSource(2)), g, 3)

	cases := []struct {
		name  string
		req   Request
		wants error
	}{
		{"unknown graph", Request{Graph: "nope", Query: ok}, ErrUnknownGraph},
		{"nil query", Request{Graph: "main"}, ErrNilQuery},
		{"empty query", Request{Graph: "main", Query: empty}, core.ErrEmptyQuery},
		{"disconnected query", Request{Graph: "main", Query: disconnected}, core.ErrDisconnectedQuery},
		{"query too large", Request{Graph: "main", Query: big}, core.ErrQueryTooLarge},
		{"unknown label", Request{Graph: "main", Query: badLabel}, core.ErrUnknownLabel},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := s.Submit(ctx, c.req)
			if !errors.Is(err, c.wants) {
				t.Fatalf("err = %v, want %v", err, c.wants)
			}
			if resp != nil {
				t.Fatal("error paths must return a nil response")
			}
		})
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	s, g := newTestService(t, Config{})
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(2)), g, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), Request{Graph: "main", Query: q}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestStreamNilSinkRejected(t *testing.T) {
	s, g := newTestService(t, Config{})
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(2)), g, 3)
	if _, err := s.Stream(context.Background(), Request{Graph: "main", Query: q}, nil); !errors.Is(err, ErrNilCallback) {
		t.Fatalf("err = %v, want ErrNilCallback", err)
	}
}

func TestStreamEarlyStop(t *testing.T) {
	s, g := newTestService(t, Config{})
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(4)), g, 3)
	var n int
	resp, err := s.Stream(context.Background(), Request{Graph: "main", Query: q, Algorithm: core.GraphQL},
		func(m []uint32) bool { n++; return n < 3 })
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("sink called %d times, want exactly 3", n)
	}
	if resp.Result.Embeddings != 3 {
		t.Fatalf("embeddings = %d, want 3 (stopped early)", resp.Result.Embeddings)
	}
}

// blockOn returns a sink that signals occupancy on its first call and
// then blocks until release is closed — it parks a request inside
// enumeration while holding its admission slot.
func blockOn(occupied chan<- struct{}, release <-chan struct{}) func([]uint32) bool {
	var once sync.Once
	return func([]uint32) bool {
		once.Do(func() { close(occupied) })
		<-release
		return true
	}
}

func TestOverloadReturnsTypedErrors(t *testing.T) {
	s, g := newTestService(t, Config{
		MaxInFlight:  1,
		MaxQueue:     1,
		MaxQueueWait: 50 * time.Millisecond,
	})
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(4)), g, 3)
	ctx := context.Background()
	req := Request{Graph: "main", Query: q, Algorithm: core.GraphQL}

	occupied := make(chan struct{})
	release := make(chan struct{})
	blockerDone := make(chan error, 1)
	go func() {
		_, err := s.Stream(ctx, req, blockOn(occupied, release))
		blockerDone <- err
	}()
	<-occupied

	// The one queue slot: a waiter that will time out.
	waiterDone := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, req)
		waiterDone <- err
	}()
	// Wait until it is actually queued, then overflow the queue.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st := s.Stats(); st.Admission.Queued >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := s.Submit(ctx, req)
	if !errors.Is(err, ErrQueueFull) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow err = %v, want ErrQueueFull (ErrOverloaded)", err)
	}
	if err := <-waiterDone; !errors.Is(err, ErrQueueTimeout) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("waiter err = %v, want ErrQueueTimeout (ErrOverloaded)", err)
	}
	close(release)
	if err := <-blockerDone; err != nil {
		t.Fatalf("blocker err = %v", err)
	}
	st := s.Stats()
	var rejected uint64
	for _, w := range st.Workloads {
		rejected += w.Rejected
	}
	if rejected != 2 {
		t.Fatalf("rejected = %d, want 2", rejected)
	}
}

// TestSubmitClampsParallelToAdmission pins the admission invariant: a
// request asking for a million workers holds at most MaxInFlight
// admission units, so it must also run at most that many enumeration
// workers — not one goroutine per root candidate. Observed via the
// process goroutine count from inside the (serialized) sink.
func TestSubmitClampsParallelToAdmission(t *testing.T) {
	s, g := newTestService(t, Config{MaxInFlight: 2})
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(4)), g, 3)
	baseline := runtime.NumGoroutine()
	maxSeen := 0
	resp, err := s.Stream(context.Background(), Request{
		Graph:     "main",
		Query:     q,
		Algorithm: core.GraphQL,
		Parallel:  1 << 20,
		Workers:   1 << 20,
	}, func([]uint32) bool {
		if n := runtime.NumGoroutine(); n > maxSeen {
			maxSeen = n
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.Embeddings == 0 {
		t.Fatal("test needs embeddings to observe the worker pool")
	}
	// Unclamped, matchParallel spawns a goroutine per root candidate
	// (hundreds on this graph); clamped it runs ≤ MaxInFlight workers.
	if maxSeen > baseline+16 {
		t.Fatalf("observed %d goroutines over a baseline of %d; parallelism not clamped to admission weight",
			maxSeen, baseline)
	}
}

func TestSubmitContextDeadline(t *testing.T) {
	s, g := newTestService(t, Config{})
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(4)), g, 3)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := s.Submit(ctx, Request{Graph: "main", Query: q})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestSubmitContextCancelMidSearch(t *testing.T) {
	s := New(Config{})
	g := testutil.RandomGraph(rand.New(rand.NewSource(21)), 500, 12000, 1)
	if _, err := s.RegisterGraph("dense", g, false); err != nil {
		t.Fatal(err)
	}
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(22)), g, 6)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	done := make(chan error, 1)
	go func() {
		_, err := s.Stream(ctx, Request{Graph: "dense", Query: q, Algorithm: core.GraphQL},
			func([]uint32) bool { once.Do(func() { close(started) }); return true })
		done <- err
	}()
	select {
	case <-started:
	case err := <-done:
		t.Fatalf("finished before producing an embedding: %v", err)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not stop the search")
	}
}

// TestConcurrentSubmitStress is the -race acceptance test: 100
// goroutines hammer Submit across shared cached plans, mixed presets,
// parallel enumeration, streaming, and a mid-flight hot swap.
func TestConcurrentSubmitStress(t *testing.T) {
	s, g := newTestService(t, Config{MaxInFlight: 8, MaxQueue: 256, MaxQueueWait: time.Minute, PlanCacheSize: 4})
	rng := rand.New(rand.NewSource(31))
	queries := make([]*graph.Graph, 6)
	for i := range queries {
		queries[i] = testutil.RandomConnectedQuery(rng, g, 3+i%3)
	}
	algos := []core.Algorithm{core.GraphQL, core.CFL, core.RI, core.Optimized}
	ctx := context.Background()

	// Ground truth per (query, algo) from uncached runs.
	want := make(map[int]uint64)
	for qi, q := range queries {
		resp, err := s.Submit(ctx, Request{Graph: "main", Query: q, Algorithm: algos[qi%len(algos)], NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		want[qi] = resp.Result.Embeddings
	}

	const goroutines = 100
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			qi := i % len(queries)
			req := Request{
				Graph:     "main",
				Query:     queries[qi],
				Algorithm: algos[qi%len(algos)],
				Parallel:  1 + i%3,
			}
			var resp *Response
			var err error
			if i%4 == 0 {
				var sink collectSink
				resp, err = s.Stream(ctx, req, sink.fn)
			} else {
				resp, err = s.Submit(ctx, req)
			}
			if err != nil {
				errs <- err
				return
			}
			if resp.Result.Embeddings != want[qi] {
				t.Errorf("goroutine %d: embeddings = %d, want %d", i, resp.Result.Embeddings, want[qi])
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("submit error: %v", err)
	}
	st := s.Stats()
	var queries_ uint64
	for _, w := range st.Workloads {
		queries_ += w.Queries
	}
	if queries_ != goroutines+uint64(len(queries)) {
		t.Fatalf("queries = %d, want %d", queries_, goroutines+len(queries))
	}
	if st.Admission.InUse != 0 || st.Admission.Queued != 0 {
		t.Fatalf("admission not drained: %+v", st.Admission)
	}
}
