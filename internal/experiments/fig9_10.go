package experiments

import (
	"time"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/enumerate"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/intersect"
	"subgraphmatching/internal/order"
	"subgraphmatching/internal/workload"
)

// The enumeration study of Section 5.2: the speedup obtained by giving
// each algorithm the full-edge auxiliary structure and the
// set-intersection local candidate computation (Figure 9), and the
// comparison of intersection kernels (Figure 10).

// fig9Pair is an algorithm's original local-candidate setup and its
// optimized counterpart. RI is omitted as in the paper (it shares
// QuickSI's computation). The optimized arms pin the Hybrid kernel:
// the paper's Figure 9/10 numbers use Hybrid merge/galloping, so the
// reproduction must not silently pick up the adaptive selector.
type fig9Pair struct {
	name string
	base core.Config
	opt  core.Config
}

func fig9Pairs() []fig9Pair {
	return []fig9Pair{
		{
			name: "QSI",
			base: core.Config{Filter: filter.LDF, Order: order.QSI, Local: enumerate.Direct},
			opt:  core.Config{Filter: filter.LDF, Order: order.QSI, Local: enumerate.Intersect, Kernel: intersect.PolicyHybrid},
		},
		{
			name: "GQL",
			base: core.Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Scan},
			opt:  core.Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Intersect, Kernel: intersect.PolicyHybrid},
		},
		{
			name: "CFL",
			base: core.Config{Filter: filter.CFL, Order: order.CFL, Local: enumerate.TreeEdge, TreeSpace: true},
			opt:  core.Config{Filter: filter.CFL, Order: order.CFL, Local: enumerate.Intersect, Kernel: intersect.PolicyHybrid},
		},
		{
			name: "2PP",
			base: core.Config{Filter: filter.LDF, Order: order.VF2PP, Local: enumerate.Direct, VF2PPRules: true},
			opt:  core.Config{Filter: filter.LDF, Order: order.VF2PP, Local: enumerate.Intersect, Kernel: intersect.PolicyHybrid},
		},
	}
}

// meanEnum runs a config over a query set and returns the mean
// enumeration time with the paper's killed-query convention.
func meanEnum(set []*graph.Graph, g *graph.Graph, cfg core.Config, limits core.Limits) time.Duration {
	agg := workload.Run("", set, g, func(*graph.Graph) core.Config { return cfg }, limits)
	return agg.MeanEnum
}

// Fig9 reproduces Figure 9: the average enumeration speedup each
// algorithm gains from the set-intersection optimization, per dataset.
func Fig9(env Env) error {
	env = env.WithDefaults()
	section(env.Out, "Figure 9: speedup from set-intersection local candidates", "Figure 9")
	t := workload.Table{Title: "enumeration-time speedup (original / optimized)", Header: []string{"dataset"}}
	pairs := fig9Pairs()
	for _, p := range pairs {
		t.Header = append(t.Header, p.name)
	}
	for _, ds := range env.Datasets {
		g, err := dataGraph(ds)
		if err != nil {
			return err
		}
		dense, sparse, err := defaultSets(env, ds)
		if err != nil {
			return err
		}
		set := dense
		if set == nil {
			set = sparse
		}
		row := []string{ds + "/" + set.Name}
		for _, p := range pairs {
			base := meanEnum(set.Queries, g, p.base, env.Limits())
			opt := meanEnum(set.Queries, g, p.opt, env.Limits())
			if opt <= 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, workload.FmtSpeedup(float64(base)/float64(opt)))
		}
		t.AddRow(row...)
	}
	env.render(&t)
	return nil
}

// Fig10 reproduces Figure 10: enumeration time of the optimized GraphQL
// algorithm with the Hybrid kernel vs the QFilter-style block kernel,
// (a) across datasets and (b) across dense query sizes on yt.
func Fig10(env Env) error {
	env = env.WithDefaults()
	section(env.Out, "Figure 10: set intersection methods (enumeration ms)", "Figure 10(a-b)")
	hybrid := core.Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Intersect, Kernel: intersect.PolicyHybrid}
	qfilter := core.Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.IntersectBlock}

	ta := workload.Table{Title: "(a) by dataset (default dense query set)",
		Header: []string{"dataset", "Hybrid", "QFilter"}}
	for _, ds := range env.Datasets {
		g, err := dataGraph(ds)
		if err != nil {
			return err
		}
		dense, sparse, err := defaultSets(env, ds)
		if err != nil {
			return err
		}
		set := dense
		if set == nil {
			set = sparse
		}
		h := meanEnum(set.Queries, g, hybrid, env.Limits())
		q := meanEnum(set.Queries, g, qfilter, env.Limits())
		ta.AddRow(ds+"/"+set.Name, workload.FmtMS(h), workload.FmtMS(q))
	}
	env.render(&ta)

	const ds = "yt"
	g, err := dataGraph(ds)
	if err != nil {
		return err
	}
	qs, err := querySets(env, ds)
	if err != nil {
		return err
	}
	tb := workload.Table{Title: "(b) by dense query size on " + ds,
		Header: []string{"set", "Hybrid", "QFilter"}}
	for i := range qs {
		s := &qs[i]
		if s.Name != "Q4" && s.Name[len(s.Name)-1] != 'D' {
			continue
		}
		h := meanEnum(s.Queries, g, hybrid, env.Limits())
		q := meanEnum(s.Queries, g, qfilter, env.Limits())
		tb.AddRow(s.Name, workload.FmtMS(h), workload.FmtMS(q))
	}
	env.render(&tb)
	return nil
}
