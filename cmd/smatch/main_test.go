package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	sm "subgraphmatching"
	"subgraphmatching/internal/testutil"
)

func writeGraphs(t *testing.T) (qPath, gPath string) {
	t.Helper()
	dir := t.TempDir()
	qPath = filepath.Join(dir, "q.graph")
	gPath = filepath.Join(dir, "g.graph")
	if err := sm.SaveGraph(qPath, testutil.PaperQuery()); err != nil {
		t.Fatal(err)
	}
	if err := sm.SaveGraph(gPath, testutil.PaperData()); err != nil {
		t.Fatal(err)
	}
	return qPath, gPath
}

func TestRunPaperExample(t *testing.T) {
	qPath, gPath := writeGraphs(t)
	// Suppress stdout noise by pointing it at a pipe we discard.
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old }()

	for _, algo := range []string{"Optimized", "DPiso", "GLW"} {
		if err := run(context.Background(), qPath, gPath, algo, 1000, time.Minute, 2, 2, 2, "steal", "cost", "adaptive", true, true, true, false, false, true); err != nil {
			t.Errorf("run with %s: %v", algo, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	qPath, gPath := writeGraphs(t)
	cases := []struct {
		name       string
		q, g, algo string
	}{
		{"missing q", "", gPath, "Optimized"},
		{"missing g", qPath, "", "Optimized"},
		{"bad algo", qPath, gPath, "nope"},
		{"q not found", qPath + ".missing", gPath, "Optimized"},
		{"g not found", qPath, gPath + ".missing", "Optimized"},
	}
	for _, c := range cases {
		if err := run(context.Background(), c.q, c.g, c.algo, 0, 0, 0, 1, 0, "steal", "cost", "adaptive", false, false, false, false, false, false); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if err := run(context.Background(), qPath, gPath, "Optimized", 0, 0, 0, 1, 0, "fifo", "cost", "adaptive", false, false, false, false, false, false); err == nil {
		t.Error("bad schedule: expected error")
	}
	if err := run(context.Background(), qPath, gPath, "Optimized", 0, 0, 0, 1, 0, "steal", "cost", "simd", false, false, false, false, false, false); err == nil {
		t.Error("bad kernel policy: expected error")
	}
}

func TestRunModes(t *testing.T) {
	qPath, gPath := writeGraphs(t)
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old }()

	// Homomorphism mode.
	if err := run(context.Background(), qPath, gPath, "Optimized", 100, time.Minute, 0, 1, 0, "steal", "cost", "adaptive", false, false, false, true, false, false); err != nil {
		t.Errorf("hom mode: %v", err)
	}
	// Symmetry breaking.
	if err := run(context.Background(), qPath, gPath, "GQL", 100, time.Minute, 0, 1, 0, "strided", "cost", "adaptive", false, false, false, false, true, false); err != nil {
		t.Errorf("sym mode: %v", err)
	}
	// Homomorphism routed away from an external engine.
	if err := run(context.Background(), qPath, gPath, "GLW", 100, time.Minute, 0, 1, 0, "steal", "cost", "adaptive", false, false, false, true, false, false); err != nil {
		t.Errorf("hom with GLW preset: %v", err)
	}
}

func TestRunBatch(t *testing.T) {
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old }()

	dir := t.TempDir()
	qDir := filepath.Join(dir, "queries")
	if err := os.MkdirAll(qDir, 0o755); err != nil {
		t.Fatal(err)
	}
	gPath := filepath.Join(dir, "g.graph")
	if err := sm.SaveGraph(gPath, testutil.PaperData()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sm.SaveGraph(filepath.Join(qDir, "q_"+string(rune('0'+i))+".graph"), testutil.PaperQuery()); err != nil {
			t.Fatal(err)
		}
	}
	csvPath := filepath.Join(dir, "out.csv")
	if err := runBatch(context.Background(), qDir, gPath, "Optimized", 1000, time.Minute, csvPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := len(data)
	if lines == 0 {
		t.Fatal("empty CSV")
	}
	// Batch errors.
	if err := runBatch(context.Background(), qDir, "", "Optimized", 0, 0, ""); err == nil {
		t.Error("expected error for missing data path")
	}
	if err := runBatch(context.Background(), qDir, gPath, "nope", 0, 0, ""); err == nil {
		t.Error("expected error for bad algorithm")
	}
	if err := runBatch(context.Background(), filepath.Join(dir, "missing"), gPath, "RI", 0, 0, ""); err == nil {
		t.Error("expected error for missing query dir")
	}
}
