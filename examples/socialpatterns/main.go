// Social-network pattern mining: extract community patterns from a
// synthetic power-law social network, demonstrating the paper's core
// operational findings — the dense/sparse ordering recommendation, the
// embedding cap, per-query time limits, and how failing sets pay off on
// large query patterns.
package main

import (
	"fmt"
	"log"
	"time"

	sm "subgraphmatching"
)

func main() {
	// A Youtube-like social network: power-law degrees, 25 community
	// labels.
	network, err := sm.GenerateRMAT(sm.RMATConfig{
		NumVertices: 20_000, NumEdges: 106_000, NumLabels: 25, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("social network:", network)

	// Mine query patterns from the network itself, as the paper's query
	// sets do: 12-vertex dense community cores and sparse follower
	// chains.
	dense, err := sm.GenerateQueries(network, sm.QueryConfig{
		NumVertices: 12, Count: 3, Density: sm.QueryDense, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	sparse, err := sm.GenerateQueries(network, sm.QueryConfig{
		NumVertices: 12, Count: 3, Density: sm.QuerySparse, Seed: 8,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's recommendation: GraphQL's ordering on dense data
	// graphs, RI's on sparse ones; failing sets for large queries.
	// AlgoOptimized applies exactly that rule; show what it chose
	// against the explicit components.
	limit := sm.Options{
		Algorithm:     sm.AlgoOptimized,
		MaxEmbeddings: 100_000, // the paper's 1e5 cap
		TimeLimit:     30 * time.Second,
	}

	run := func(name string, queries []*sm.Graph) {
		fmt.Printf("\n%s patterns (12 vertices):\n", name)
		for i, q := range queries {
			res, err := sm.Match(q, network, limit)
			if err != nil {
				log.Fatal(err)
			}
			status := "complete"
			if res.LimitHit {
				status = "embedding cap reached"
			}
			if res.TimedOut {
				status = "time limit reached"
			}
			fmt.Printf("  pattern %d (%d edges): %8d embeddings in %9v  [%s]\n",
				i+1, q.NumEdges(), res.Embeddings,
				(res.PreprocessTime() + res.EnumTime).Round(time.Microsecond), status)
		}
	}
	run("dense community", dense)
	run("sparse chain", sparse)

	// Failing sets on a large pattern: compare explicitly.
	fmt.Println("\nfailing sets on a 12-vertex pattern (Section 5.4):")
	q := dense[0]
	for _, fs := range []bool{false, true} {
		cfg := sm.Config{
			Filter: sm.FilterGQL, Order: sm.OrderGQL,
			Local: sm.LocalIntersect, FailingSets: fs,
		}
		res, err := sm.Match(q, network, sm.Options{
			Custom: &cfg, MaxEmbeddings: 100_000, TimeLimit: 30 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  failing sets %-5v: %8d embeddings, %9d search nodes, %9v\n",
			fs, res.Embeddings, res.Nodes, res.EnumTime.Round(time.Microsecond))
	}
}
