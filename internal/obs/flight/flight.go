// Package flight is the serving layer's always-on flight recorder: a
// live registry of in-flight requests (what phase each is in, for how
// long) plus a bounded, latency-bucketed ring of recently completed
// request spans. Retention is biased toward what an operator debugging a
// latency regression actually needs — within each latency bucket the
// slowest records are kept, and errored requests are always kept in
// their own ring — so the interesting traces survive without logging
// every request. The slow-query log is one subscriber of the recorder,
// not a separate instrumentation path.
package flight

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"subgraphmatching/internal/obs"
)

// BucketBounds are the latency bucket upper bounds; a final unbounded
// bucket catches everything slower.
var BucketBounds = []time.Duration{
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// Defaults for NewRecorder.
const (
	DefaultPerBucket = 8
	DefaultErrorCap  = 64
)

// Record is one completed request as retained by the recorder.
type Record struct {
	ID      uint64        `json:"id"`
	Graph   string        `json:"graph,omitempty"`
	Algo    string        `json:"algo,omitempty"`
	Start   time.Time     `json:"start"`
	Latency time.Duration `json:"latency_ns"`
	Err     string        `json:"error,omitempty"`
	Span    *obs.Span     `json:"span,omitempty"`
	// Payload carries consumer-specific context (the slow-query log's
	// record); opaque to the recorder.
	Payload any `json:"-"`
}

// Flight is the handle for one in-flight request. SetPhase is
// goroutine-safe and costs one atomic store, so the serving path can
// mark phase transitions freely.
type Flight struct {
	r     *Recorder
	id    uint64
	graph string
	algo  string
	start time.Time
	phase atomic.Value // string
	done  atomic.Bool
}

// ID returns the flight's recorder-unique id.
func (f *Flight) ID() uint64 { return f.id }

// SetPhase labels what the request is doing right now ("queued",
// "plan", "enumerate", ...).
func (f *Flight) SetPhase(p string) { f.phase.Store(p) }

// Phase returns the current phase label.
func (f *Flight) Phase() string {
	if p, ok := f.phase.Load().(string); ok {
		return p
	}
	return ""
}

// Finish completes the flight: it leaves the in-flight registry, its
// latency is measured, and the resulting Record — carrying the given
// span tree, error and consumer payload — is offered to the retention
// buckets and the subscribers. Finish is idempotent; calls after the
// first are ignored.
func (f *Flight) Finish(span *obs.Span, err error, payload any) *Record {
	return f.finish(time.Since(f.start), span, err, payload)
}

func (f *Flight) finish(latency time.Duration, span *obs.Span, err error, payload any) *Record {
	if f.done.Swap(true) {
		return nil
	}
	rec := &Record{
		ID:      f.id,
		Graph:   f.graph,
		Algo:    f.algo,
		Start:   f.start,
		Latency: latency,
		Span:    span,
		Payload: payload,
	}
	if err != nil {
		rec.Err = err.Error()
	}
	f.r.complete(rec)
	return rec
}

// InflightInfo is the live view of one in-flight request.
type InflightInfo struct {
	ID      uint64        `json:"id"`
	Graph   string        `json:"graph,omitempty"`
	Algo    string        `json:"algo,omitempty"`
	Phase   string        `json:"phase"`
	Start   time.Time     `json:"start"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// bucket retains the slowest records of one latency band.
type bucket struct {
	count   uint64    // total completions that landed here
	records []*Record // sorted slowest-first, len <= perBucket
}

// BucketSnapshot is the exported view of one latency bucket.
type BucketSnapshot struct {
	// Label names the band, e.g. "<10ms" or ">=10s".
	Label string `json:"label"`
	// Count is the total number of requests that completed in the band
	// (not just the retained ones).
	Count uint64 `json:"count"`
	// Records are the retained slowest requests of the band,
	// slowest-first.
	Records []*Record `json:"records,omitempty"`
}

// Recorder is the flight recorder. The zero value is not ready; use
// NewRecorder.
type Recorder struct {
	mu        sync.Mutex
	nextID    uint64
	inflight  map[uint64]*Flight
	buckets   []bucket
	errs      []*Record // ring, newest overwrite oldest
	errNext   int
	errCap    int
	perBucket int
	subs      []func(*Record)
}

// NewRecorder builds a recorder keeping the slowest perBucket records
// per latency band and the last errCap errored requests (<=0 selects
// the defaults).
func NewRecorder(perBucket, errCap int) *Recorder {
	if perBucket <= 0 {
		perBucket = DefaultPerBucket
	}
	if errCap <= 0 {
		errCap = DefaultErrorCap
	}
	return &Recorder{
		inflight:  make(map[uint64]*Flight),
		buckets:   make([]bucket, len(BucketBounds)+1),
		errCap:    errCap,
		perBucket: perBucket,
	}
}

// Start registers a new in-flight request and returns its handle.
func (r *Recorder) Start(graph, algo string) *Flight {
	r.mu.Lock()
	r.nextID++
	f := &Flight{r: r, id: r.nextID, graph: graph, algo: algo, start: time.Now()}
	r.inflight[f.id] = f
	r.mu.Unlock()
	f.phase.Store("start")
	return f
}

// bucketIndex maps a latency to its band.
func bucketIndex(d time.Duration) int {
	for i, b := range BucketBounds {
		if d < b {
			return i
		}
	}
	return len(BucketBounds)
}

// BucketLabel names band i as rendered in snapshots.
func BucketLabel(i int) string {
	if i < len(BucketBounds) {
		return "<" + BucketBounds[i].String()
	}
	return ">=" + BucketBounds[len(BucketBounds)-1].String()
}

// complete moves a finished flight into retention and fans it out to
// the subscribers (outside the lock: a slow subscriber must not stall
// the serving path's recorder).
func (r *Recorder) complete(rec *Record) {
	r.mu.Lock()
	delete(r.inflight, rec.ID)
	b := &r.buckets[bucketIndex(rec.Latency)]
	b.count++
	// Insert keeping slowest-first order, then clip to the cap. The
	// slice is tiny (perBucket ~ 8), so a linear insert is cheaper than
	// anything clever.
	pos := len(b.records)
	for i, old := range b.records {
		if rec.Latency > old.Latency {
			pos = i
			break
		}
	}
	if pos < r.perBucket {
		b.records = append(b.records, nil)
		copy(b.records[pos+1:], b.records[pos:])
		b.records[pos] = rec
		if len(b.records) > r.perBucket {
			b.records = b.records[:r.perBucket]
		}
	}
	if rec.Err != "" {
		if len(r.errs) < r.errCap {
			r.errs = append(r.errs, rec)
		} else {
			r.errs[r.errNext] = rec
		}
		r.errNext = (r.errNext + 1) % r.errCap
	}
	subs := r.subs
	r.mu.Unlock()
	for _, fn := range subs {
		fn(rec)
	}
}

// Subscribe registers fn to receive every completed record, called
// synchronously on the finishing request's goroutine. Subscribers must
// be registered before serving starts; registration is not synchronized
// against in-flight completions.
func (r *Recorder) Subscribe(fn func(*Record)) {
	r.mu.Lock()
	r.subs = append(r.subs, fn)
	r.mu.Unlock()
}

// InflightCount returns the number of requests currently in flight.
func (r *Recorder) InflightCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.inflight)
}

// Inflight lists the in-flight requests, oldest first.
func (r *Recorder) Inflight() []InflightInfo {
	now := time.Now()
	r.mu.Lock()
	out := make([]InflightInfo, 0, len(r.inflight))
	for _, f := range r.inflight {
		out = append(out, InflightInfo{
			ID:      f.id,
			Graph:   f.graph,
			Algo:    f.algo,
			Phase:   f.Phase(),
			Start:   f.start,
			Elapsed: now.Sub(f.start),
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Snapshot returns the retention buckets, fastest band first.
func (r *Recorder) Snapshot() []BucketSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]BucketSnapshot, len(r.buckets))
	for i := range r.buckets {
		out[i] = BucketSnapshot{
			Label:   BucketLabel(i),
			Count:   r.buckets[i].count,
			Records: append([]*Record(nil), r.buckets[i].records...),
		}
	}
	return out
}

// Errors returns the retained errored requests, newest first.
func (r *Recorder) Errors() []*Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Record, 0, len(r.errs))
	for i := 0; i < len(r.errs); i++ {
		idx := (r.errNext - 1 - i + r.errCap) % r.errCap
		if idx < len(r.errs) && r.errs[idx] != nil {
			out = append(out, r.errs[idx])
		}
	}
	return out
}

// Lookup finds a retained record by id (buckets first, then the error
// ring), nil if it aged out.
func (r *Recorder) Lookup(id uint64) *Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.buckets {
		for _, rec := range r.buckets[i].records {
			if rec.ID == id {
				return rec
			}
		}
	}
	for _, rec := range r.errs {
		if rec != nil && rec.ID == id {
			return rec
		}
	}
	return nil
}
