package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/rmat"
	"subgraphmatching/internal/testutil"
)

func TestStandardSizes(t *testing.T) {
	if got := StandardSizes(20); len(got) != 5 || got[4] != 20 {
		t.Errorf("StandardSizes(20) = %v", got)
	}
	if got := StandardSizes(32); len(got) != 5 || got[4] != 32 {
		t.Errorf("StandardSizes(32) = %v", got)
	}
}

func TestStandardQuerySets(t *testing.T) {
	g, err := rmat.Generate(rmat.Config{NumVertices: 3000, NumEdges: 25000, NumLabels: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sets := StandardQuerySets(g, 16, 5, 42)
	if len(sets) == 0 {
		t.Fatal("no query sets generated")
	}
	names := map[string]bool{}
	for _, s := range sets {
		names[s.Name] = true
		if len(s.Queries) != 5 {
			t.Errorf("%s has %d queries", s.Name, len(s.Queries))
		}
		for _, q := range s.Queries {
			if q.NumVertices() != s.Size {
				t.Errorf("%s query has %d vertices", s.Name, q.NumVertices())
			}
			if !s.Density.Matches(q.AverageDegree()) {
				t.Errorf("%s query has density %.1f", s.Name, q.AverageDegree())
			}
		}
	}
	if !names["Q4"] || !names["Q8D"] || !names["Q8S"] {
		t.Errorf("missing expected sets, got %v", names)
	}
}

func TestRunAggregates(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	set := []*graph.Graph{q, q, q}
	agg := Run("test", set, g, func(q *graph.Graph) core.Config {
		return core.PresetConfig(core.Optimized, q, g)
	}, core.Limits{TimeLimit: time.Second})
	if agg.Queries != 3 || agg.Errors != 0 || agg.Unsolved != 0 {
		t.Fatalf("agg = %+v", agg)
	}
	if agg.MeanEmbeddings != 1 {
		t.Errorf("MeanEmbeddings = %v", agg.MeanEmbeddings)
	}
	if agg.Short != 3 {
		t.Errorf("Short = %d, want 3", agg.Short)
	}
	if agg.MeanTotal < agg.MeanEnum {
		t.Error("MeanTotal < MeanEnum")
	}
}

func TestRunCountsErrors(t *testing.T) {
	g := testutil.PaperData()
	disc := graph.MustFromEdges([]graph.Label{0, 0, 0}, [][2]graph.Vertex{{0, 1}})
	agg := Run("err", []*graph.Graph{disc}, g, func(q *graph.Graph) core.Config {
		return core.PresetConfig(core.RI, q, g)
	}, core.Limits{})
	if agg.Errors != 1 {
		t.Errorf("Errors = %d", agg.Errors)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 100}, 10)
	if s.Mean != 26.5 || s.Max != 100 || s.CountAbove != 1 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.Std <= 0 {
		t.Error("Std should be positive")
	}
	zero := Summarize(nil, 0)
	if zero.Mean != 0 || zero.Max != 0 {
		t.Error("empty Summarize should be zero")
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{Title: "demo", Header: []string{"a", "bee"}}
	tab.AddRow("x", "1")
	tab.AddRow("longer", "2")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "longer") {
		t.Errorf("render output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestFormatters(t *testing.T) {
	if FmtMS(1500*time.Microsecond) != "1.50" {
		t.Errorf("FmtMS = %q", FmtMS(1500*time.Microsecond))
	}
	if FmtMS(0) != "0" {
		t.Errorf("FmtMS(0) = %q", FmtMS(0))
	}
	if FmtCount(1234567) != "1.23M" || FmtCount(1500) != "1.5K" || FmtCount(5) != "5.0" {
		t.Error("FmtCount wrong")
	}
	if FmtBytes(2048) != "2.0KB" || FmtBytes(100) != "100B" {
		t.Error("FmtBytes wrong")
	}
	if FmtBytes(3<<20) != "3.00MB" || FmtBytes(2<<30) != "2.00GB" {
		t.Error("FmtBytes large wrong")
	}
	if FmtSpeedup(2.5) != "2.50x" || FmtSpeedup(250) != "250x" {
		t.Error("FmtSpeedup wrong")
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := Table{Title: "demo", Header: []string{"a", "b"}}
	tab.AddRow("x", "1")
	tab.AddRow("y,z", "2") // comma must be quoted
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# demo\n") {
		t.Errorf("missing title comment:\n%s", out)
	}
	if !strings.Contains(out, "\"y,z\",2") {
		t.Errorf("comma cell not quoted:\n%s", out)
	}
	if !strings.Contains(out, "a,b\n") {
		t.Errorf("missing header:\n%s", out)
	}
}

func TestWriteOutcomesCSV(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	outcomes := RunEach([]*graph.Graph{q, q}, g, func(q *graph.Graph) core.Config {
		return core.PresetConfig(core.Optimized, q, g)
	}, core.Limits{})
	var buf bytes.Buffer
	if err := WriteOutcomesCSV(&buf, "demo", outcomes); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "demo,0,1,") {
		t.Errorf("first data row = %q", lines[1])
	}
	// Error outcomes are recorded too.
	disc := graph.MustFromEdges([]graph.Label{0, 0, 0}, [][2]graph.Vertex{{0, 1}})
	outcomes = RunEach([]*graph.Graph{disc}, g, func(q *graph.Graph) core.Config {
		return core.Config{}
	}, core.Limits{})
	buf.Reset()
	if err := WriteOutcomesCSV(&buf, "err", outcomes); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "connected") {
		t.Errorf("error text missing:\n%s", buf.String())
	}
}
