package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"subgraphmatching/internal/enumerate"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/order"
	"subgraphmatching/internal/testutil"
)

func TestAllPresetsOnPaperExample(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	for _, a := range Algorithms() {
		cfg := PresetConfig(a, q, g)
		res, err := Match(q, g, cfg, Limits{})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if res.Embeddings != 1 {
			t.Errorf("%v: %d embeddings, want 1", a, res.Embeddings)
		}
		if !res.Solved() {
			t.Errorf("%v: not solved", a)
		}
	}
}

func TestPresetsAgreeWithBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 15+rng.Intn(15), 40+rng.Intn(40), 2+rng.Intn(3))
		q := testutil.RandomConnectedQuery(rng, g, 3+rng.Intn(4))
		if q == nil {
			return true
		}
		want := testutil.BruteForceCount(q, g, 0)
		for _, a := range Algorithms() {
			res, err := Match(q, g, PresetConfig(a, q, g), Limits{})
			if err != nil {
				t.Logf("%v: %v (seed %d)", a, err, seed)
				return false
			}
			if res.Embeddings != want {
				t.Logf("%v: %d embeddings, brute force %d (seed %d)", a, res.Embeddings, want, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOrderingStudyConfigsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		g := testutil.RandomGraph(rng, 25, 70, 3)
		q := testutil.RandomConnectedQuery(rng, g, 5)
		if q == nil {
			continue
		}
		want := testutil.BruteForceCount(q, g, 0)
		for _, om := range order.Methods() {
			for _, fs := range []bool{false, true} {
				res, err := Match(q, g, OrderingStudyConfig(om, fs), Limits{})
				if err != nil {
					t.Fatalf("order %v fs=%v: %v", om, fs, err)
				}
				if res.Embeddings != want {
					t.Fatalf("order %v fs=%v: %d embeddings, want %d", om, fs, res.Embeddings, want)
				}
			}
		}
	}
}

func TestFixedOrder(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	cfg := Config{Filter: filter.GQL, Local: enumerate.Intersect,
		FixedOrder: []graph.Vertex{0, 2, 1, 3}}
	res, err := Match(q, g, cfg, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embeddings != 1 {
		t.Errorf("fixed order: %d embeddings", res.Embeddings)
	}
	if len(res.Order) != 4 || res.Order[1] != 2 {
		t.Errorf("Result.Order = %v", res.Order)
	}
}

func TestLimitsPropagate(t *testing.T) {
	// Triangle query in a labeled clique: many embeddings.
	labels := make([]graph.Label, 9)
	var edges [][2]graph.Vertex
	for i := 0; i < 9; i++ {
		for j := i + 1; j < 9; j++ {
			edges = append(edges, [2]graph.Vertex{graph.Vertex(i), graph.Vertex(j)})
		}
	}
	g := graph.MustFromEdges(labels, edges)
	q := graph.MustFromEdges(make([]graph.Label, 3), [][2]graph.Vertex{{0, 1}, {1, 2}, {0, 2}})
	res, err := Match(q, g, PresetConfig(Optimized, q, g), Limits{MaxEmbeddings: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embeddings != 5 || !res.LimitHit {
		t.Errorf("limit: %+v", res)
	}
	var collected [][]uint32
	_, err = Match(q, g, PresetConfig(Optimized, q, g), Limits{OnMatch: func(m []uint32) bool {
		collected = append(collected, append([]uint32(nil), m...))
		return len(collected) < 3
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(collected) != 3 {
		t.Errorf("collected %d matches", len(collected))
	}
	for _, m := range collected {
		if !testutil.IsValidEmbedding(q, g, m) {
			t.Errorf("invalid collected embedding %v", m)
		}
	}
}

func TestResultTimesAndMetrics(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	res, err := Match(q, g, PresetConfig(DPIso, q, g), Limits{TimeLimit: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.PreprocessTime() != res.FilterTime+res.BuildTime+res.OrderTime {
		t.Error("PreprocessTime mismatch")
	}
	if res.TotalTime() < res.EnumTime {
		t.Error("TotalTime < EnumTime")
	}
	if res.MeanCandidates != 7.0/4.0 {
		t.Errorf("MeanCandidates = %v, want 1.75", res.MeanCandidates)
	}
	if res.MemoryBytes <= 0 {
		t.Error("MemoryBytes should be positive")
	}
}

func TestOptimizedAdaptsToDensityAndQuerySize(t *testing.T) {
	q, _ := testutil.PaperQuery(), testutil.PaperData()
	sparse := testutil.RandomGraph(rand.New(rand.NewSource(1)), 100, 150, 3) // d = 3
	dense := testutil.RandomGraph(rand.New(rand.NewSource(2)), 50, 600, 3)   // d = 24
	if cfg := PresetConfig(Optimized, q, sparse); cfg.Order != order.RI {
		t.Errorf("sparse graph should use RI ordering, got %v", cfg.Order)
	}
	if cfg := PresetConfig(Optimized, q, dense); cfg.Order != order.GQL {
		t.Errorf("dense graph should use GQL ordering, got %v", cfg.Order)
	}
	if cfg := PresetConfig(Optimized, q, sparse); cfg.FailingSets {
		t.Error("small query should not enable failing sets")
	}
	// Build a 12-vertex path query.
	b := graph.NewBuilder(12, 11)
	for i := 0; i < 12; i++ {
		b.AddVertex(0)
	}
	for i := 1; i < 12; i++ {
		b.AddEdge(graph.Vertex(i-1), graph.Vertex(i))
	}
	big := b.MustBuild()
	if cfg := PresetConfig(Optimized, big, sparse); !cfg.FailingSets {
		t.Error("large query should enable failing sets")
	}
}

func TestMatchValidation(t *testing.T) {
	g := testutil.PaperData()
	empty := graph.MustFromEdges(nil, nil)
	if _, err := Match(empty, g, Config{}, Limits{}); err == nil {
		t.Error("expected error for empty query")
	}
	disc := graph.MustFromEdges([]graph.Label{0, 0, 0}, [][2]graph.Vertex{{0, 1}})
	if _, err := Match(disc, g, Config{}, Limits{}); err == nil {
		t.Error("expected error for disconnected query")
	}
}

func TestEmptyCandidatesShortCircuit(t *testing.T) {
	// Query label not present in the data graph: the pipeline must
	// return zero embeddings without running the enumerator.
	q := graph.MustFromEdges([]graph.Label{9, 9, 9}, [][2]graph.Vertex{{0, 1}, {1, 2}})
	res, err := Match(q, testutil.PaperData(), PresetConfig(GraphQL, nil, nil), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embeddings != 0 || res.Nodes != 0 {
		t.Errorf("short circuit: %+v", res)
	}
}

func TestFilterParamOverrides(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	for _, cfg := range []Config{
		{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Scan, GQLRounds: 5},
		{Filter: filter.DPIso, Order: order.DPIso, Local: enumerate.Intersect, DPIsoPasses: 7},
	} {
		res, err := Match(q, g, cfg, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Embeddings != 1 {
			t.Errorf("override config %+v: %d embeddings", cfg, res.Embeddings)
		}
	}
}

func TestAlgorithmStringAndParse(t *testing.T) {
	for _, a := range Algorithms() {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("expected parse error")
	}
}

func TestAutoOrderAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		g := testutil.RandomGraph(rng, 25, 80, 3)
		q := testutil.RandomConnectedQuery(rng, g, 5)
		if q == nil {
			continue
		}
		want := testutil.BruteForceCount(q, g, 0)
		cfg := Config{Filter: filter.GQL, Local: enumerate.Intersect, AutoOrder: true, FailingSets: true}
		res, err := Match(q, g, cfg, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Embeddings != want {
			t.Fatalf("auto-order: %d embeddings, want %d", res.Embeddings, want)
		}
		if len(res.Order) != q.NumVertices() {
			t.Fatalf("auto-order returned order %v", res.Order)
		}
	}
}
