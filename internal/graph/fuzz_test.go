package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse asserts that the t/v/e parser never panics and that every
// successfully parsed graph round-trips through Write/Parse unchanged.
func FuzzParse(f *testing.F) {
	f.Add("t 2 1\nv 0 0\nv 1 1\ne 0 1\n")
	f.Add("t 0 0\n")
	f.Add("# comment\nt 3 2\nv 0 5\nv 1 5\nv 2 5\ne 0 1\ne 1 2\n")
	f.Add("t 1 0\nv 0 4294967295\n")
	f.Add("e 0 1")
	f.Add("t 2 1\nv 0 0 7\nv 1 0\ne 0 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("Write after successful Parse: %v", err)
		}
		g2, err := Parse(&buf)
		if err != nil {
			t.Fatalf("re-Parse of Write output: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %v vs %v", g2, g)
		}
		for v := 0; v < g.NumVertices(); v++ {
			if g.Label(Vertex(v)) != g2.Label(Vertex(v)) {
				t.Fatalf("round trip changed label of %d", v)
			}
		}
	})
}

// FuzzParseEdgeList asserts the SNAP edge-list parser never panics and
// always yields simple graphs with in-range labels.
func FuzzParseEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n", 4, int64(1))
	f.Add("# c\n5 5\n10 20\n", 2, int64(9))
	f.Add("9999999999 1\n", 3, int64(0))
	f.Fuzz(func(t *testing.T, input string, numLabels int, seed int64) {
		if numLabels > 1<<20 {
			numLabels %= 1 << 20
		}
		g, err := ParseEdgeList(strings.NewReader(input), numLabels, seed)
		if err != nil {
			return
		}
		for v := 0; v < g.NumVertices(); v++ {
			vv := Vertex(v)
			if int(g.Label(vv)) >= numLabels {
				t.Fatalf("label %d out of range", g.Label(vv))
			}
			for _, w := range g.Neighbors(vv) {
				if w == vv {
					t.Fatal("self-loop survived parsing")
				}
			}
		}
	})
}
