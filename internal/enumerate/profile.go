package enumerate

import (
	"fmt"
	"io"
	"strings"

	"subgraphmatching/internal/intersect"
)

// SearchProfile records per-depth search-tree statistics, the
// paper-style analysis of where a backtracking search spends its effort:
// node counts, local-candidate volumes, and why candidates were
// discarded (injectivity conflicts, symmetry ordering, failing-set
// sibling skips).
type SearchProfile struct {
	// Nodes[d] counts search-tree nodes entered at depth d.
	Nodes []uint64
	// Candidates[d] counts local candidates produced at depth d.
	Candidates []uint64
	// Extended[d] counts candidates actually assigned at depth d.
	Extended []uint64
	// Conflicts[d] counts candidates rejected because their data vertex
	// was already mapped (isomorphism injectivity).
	Conflicts []uint64
	// SymmetrySkips[d] counts candidates rejected by symmetry breaking.
	SymmetrySkips []uint64
	// EmptyLC[d] counts nodes whose local candidate set was empty.
	EmptyLC []uint64
	// FailingSetSkips[d] counts sibling groups pruned by the
	// failing-set optimization at depth d.
	FailingSetSkips []uint64
	// Kernels[d] tallies the pairwise intersection-kernel executions
	// performed while computing local candidates for depth d (for the
	// adaptive order: while activating the children of the vertex mapped
	// at depth d). Summed over depths it equals the run's Stats.Kernels —
	// the per-depth split of the kernel mix.
	Kernels []intersect.KernelStats
}

func newSearchProfile(n int) *SearchProfile {
	return &SearchProfile{
		Nodes:           make([]uint64, n+1),
		Candidates:      make([]uint64, n+1),
		Extended:        make([]uint64, n+1),
		Conflicts:       make([]uint64, n+1),
		SymmetrySkips:   make([]uint64, n+1),
		EmptyLC:         make([]uint64, n+1),
		FailingSetSkips: make([]uint64, n+1),
		Kernels:         make([]intersect.KernelStats, n+1),
	}
}

// reset zeroes every counter in place so a reused engine starts each
// run with a clean profile without reallocating the slices.
func (p *SearchProfile) reset() {
	for _, s := range [][]uint64{
		p.Nodes, p.Candidates, p.Extended, p.Conflicts,
		p.SymmetrySkips, p.EmptyLC, p.FailingSetSkips,
	} {
		for i := range s {
			s[i] = 0
		}
	}
	for i := range p.Kernels {
		p.Kernels[i] = intersect.KernelStats{}
	}
}

// addKernelDelta attributes the selector-stat movement between two
// snapshots to one depth. Called only on profiled runs, with snapshots
// taken around the local-candidate computation.
func (p *SearchProfile) addKernelDelta(depth int, before, after intersect.KernelStats) {
	for i := range after {
		if d := after[i] - before[i]; d != 0 {
			p.Kernels[depth][i] += d
		}
	}
}

// Merge adds o's counters into p depth by depth — the aggregation step
// for parallel runs, where each worker profiles its own engine. Profiles
// of different depths merge over the shorter one's range.
func (p *SearchProfile) Merge(o *SearchProfile) {
	if o == nil {
		return
	}
	pairs := [][2][]uint64{
		{p.Nodes, o.Nodes}, {p.Candidates, o.Candidates},
		{p.Extended, o.Extended}, {p.Conflicts, o.Conflicts},
		{p.SymmetrySkips, o.SymmetrySkips}, {p.EmptyLC, o.EmptyLC},
		{p.FailingSetSkips, o.FailingSetSkips},
	}
	for _, pr := range pairs {
		dst, src := pr[0], pr[1]
		for i := 0; i < len(dst) && i < len(src); i++ {
			dst[i] += src[i]
		}
	}
	for i := 0; i < len(p.Kernels) && i < len(o.Kernels); i++ {
		p.Kernels[i].Add(o.Kernels[i])
	}
}

// NewSearchProfile returns an empty profile for n query vertices —
// the merge target a parallel runner aggregates worker profiles into.
func NewSearchProfile(n int) *SearchProfile { return newSearchProfile(n) }

// MaxDepth returns the number of query-vertex depths profiled.
func (p *SearchProfile) MaxDepth() int { return len(p.Nodes) - 1 }

// TotalNodes sums node counts over all depths.
func (p *SearchProfile) TotalNodes() uint64 {
	var t uint64
	for _, n := range p.Nodes {
		t += n
	}
	return t
}

// Render writes the profile as an aligned per-depth table.
func (p *SearchProfile) Render(w io.Writer) {
	fmt.Fprintf(w, "%5s %12s %12s %12s %10s %9s %8s %8s\n",
		"depth", "nodes", "candidates", "extended", "conflicts", "sym-skip", "emptyLC", "fs-skip")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 84))
	for d := 0; d < len(p.Nodes); d++ {
		if p.Nodes[d] == 0 && p.Candidates[d] == 0 {
			continue
		}
		fmt.Fprintf(w, "%5d %12d %12d %12d %10d %9d %8d %8d\n",
			d, p.Nodes[d], p.Candidates[d], p.Extended[d],
			p.Conflicts[d], p.SymmetrySkips[d], p.EmptyLC[d], p.FailingSetSkips[d])
	}
}

// branchingSummary describes the search shape compactly: the depth with
// the widest fanout and the fraction of candidates that survive to be
// extended.
func (p *SearchProfile) BranchingSummary() string {
	widest, widestD := uint64(0), 0
	var cands, ext uint64
	for d := range p.Candidates {
		if p.Candidates[d] > widest {
			widest, widestD = p.Candidates[d], d
		}
		cands += p.Candidates[d]
		ext += p.Extended[d]
	}
	rate := 0.0
	if cands > 0 {
		rate = 100 * float64(ext) / float64(cands)
	}
	return fmt.Sprintf("widest fanout %d candidates at depth %d; %.1f%% of candidates extended",
		widest, widestD, rate)
}
