// Package filter implements the candidate-vertex filtering methods of the
// study (paper Section 3.1): the LDF and NLF baselines, GraphQL's
// profile-based local pruning with pseudo-isomorphism global refinement,
// CFL's two-phase compressed-path construction, CECI's forward/backward
// construction, DP-iso's alternating refinement passes, and the STEADY
// fix-point baseline used in Figure 8.
//
// Every method produces, for each query vertex u, a sorted complete
// candidate vertex set C(u) (Definition 2.2): if (u,v) appears in any
// match, then v ∈ C(u). Methods differ only in how aggressively they
// prune while preserving completeness.
package filter

import (
	"fmt"

	"subgraphmatching/internal/graph"
)

// Method selects a filtering method.
type Method uint8

const (
	// LDF is label-and-degree filtering: C(u) = {v : L(v)=L(u), d(v)>=d(u)}.
	LDF Method = iota
	// NLF adds the neighbor label frequency check to LDF.
	NLF
	// GQL is GraphQL's local pruning plus global refinement.
	GQL
	// CFL is CFL's BFS-tree top-down generation and bottom-up refinement.
	CFL
	// CECI is CECI's construction along the BFS order with reverse
	// refinement by tree children.
	CECI
	// DPIso is DP-iso's LDF initialization with k alternating
	// refinement passes (default 3).
	DPIso
	// Steady iterates Filtering Rule 3.1 to a fix point; the strongest
	// (and slowest) pruning based on Observation 3.1.
	Steady
)

var methodNames = map[Method]string{
	LDF: "LDF", NLF: "NLF", GQL: "GQL", CFL: "CFL",
	CECI: "CECI", DPIso: "DPiso", Steady: "STEADY",
}

func (m Method) String() string {
	if s, ok := methodNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Method(%d)", m)
}

// ParseMethod maps a name (as printed by String) back to a Method.
func ParseMethod(s string) (Method, error) {
	for m, name := range methodNames {
		if name == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("filter: unknown method %q", s)
}

// Methods lists all filtering methods in declaration order.
func Methods() []Method { return []Method{LDF, NLF, GQL, CFL, CECI, DPIso, Steady} }

// DefaultGQLRounds is the default iteration count k of GraphQL's global
// refinement.
const DefaultGQLRounds = 2

// DefaultDPIsoPasses is the default number of alternating refinement
// passes in DP-iso, following the original paper.
const DefaultDPIsoPasses = 3

// Run executes method m with its default parameters and returns the
// candidate sets, sorted per query vertex. An error is returned for
// invalid input (empty or disconnected query).
func Run(m Method, q, g *graph.Graph) ([][]uint32, error) {
	return RunTraced(m, q, g, nil)
}

// MeanCandidates returns (1/|V(q)|) * sum |C(u)|, the paper's
// candidate-count metric for Figure 8.
func MeanCandidates(cand [][]uint32) float64 {
	if len(cand) == 0 {
		return 0
	}
	n := 0
	for _, c := range cand {
		n += len(c)
	}
	return float64(n) / float64(len(cand))
}

// AnyEmpty reports whether some candidate set is empty, in which case the
// query has no matches.
func AnyEmpty(cand [][]uint32) bool {
	for _, c := range cand {
		if len(c) == 0 {
			return true
		}
	}
	return false
}
