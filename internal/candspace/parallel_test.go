package candspace

import (
	"math/rand"
	"reflect"
	"testing"

	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/par"
	"subgraphmatching/internal/testutil"
)

// spacesEqual compares two Spaces observably: candidate sets, pair
// materialization, and every adjacency list.
func spacesEqual(t *testing.T, a, b *Space) {
	t.Helper()
	q := a.Query()
	if !reflect.DeepEqual(a.AllCandidates(), b.AllCandidates()) {
		t.Fatalf("candidate sets differ")
	}
	for u := 0; u < q.NumVertices(); u++ {
		uu := graph.Vertex(u)
		for _, up := range q.Neighbors(uu) {
			if a.HasPair(uu, up) != b.HasPair(uu, up) {
				t.Fatalf("pair (%d,%d) materialization differs", uu, up)
			}
			for ci := range a.Candidates(uu) {
				ga, gb := a.Adjacency(uu, up, ci), b.Adjacency(uu, up, ci)
				if !reflect.DeepEqual(ga, gb) {
					t.Fatalf("adjacency (%d->%d)[%d]: %v vs %v", uu, up, ci, ga, gb)
				}
			}
		}
	}
	if a.TotalCandidates() != b.TotalCandidates() || a.MemoryBytes() != b.MemoryBytes() {
		t.Fatalf("aggregate metrics differ: %d/%d bytes vs %d/%d",
			a.TotalCandidates(), a.MemoryBytes(), b.TotalCandidates(), b.MemoryBytes())
	}
}

func TestBuildFullParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		g := testutil.RandomGraph(rng, 30+rng.Intn(30), 120, 3)
		q := testutil.RandomConnectedQuery(rng, g, 4)
		if q == nil {
			continue
		}
		cand := filter.RunNLF(q, g)
		seq := BuildFull(q, g, cand)
		for _, workers := range []int{1, 2, 4, 8} {
			spacesEqual(t, seq, BuildFullParallel(q, g, cand, workers))
		}
	}
}

func TestBuildTreeParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		g := testutil.RandomGraph(rng, 30+rng.Intn(30), 120, 3)
		q := testutil.RandomConnectedQuery(rng, g, 4)
		if q == nil {
			continue
		}
		cand := filter.RunNLF(q, g)
		tree := graph.NewBFSTree(q, 0)
		seq := BuildTree(q, g, cand, tree.Parent)
		for _, workers := range []int{2, 4, 8} {
			spacesEqual(t, seq, BuildTreeParallel(q, g, cand, tree.Parent, workers))
		}
	}
}

// degenerateCandidates builds candidate sets where some C(u) are empty
// and some nil — the shape an over-pruning filter hands downstream.
func degenerateCandidates(q *graph.Graph) [][]uint32 {
	cand := make([][]uint32, q.NumVertices())
	for u := range cand {
		switch u % 3 {
		case 0:
			cand[u] = nil
		case 1:
			cand[u] = []uint32{}
		default:
			cand[u] = []uint32{uint32(u)}
		}
	}
	return cand
}

// TestDegenerateCandidateSets pins that every Space accessor and metric
// survives empty and nil candidate sets: BuildFull/BuildTree (sequential
// and parallel), the aggregate metrics, block materialization, and the
// Adjacency lookups fed the -1 index CandidateIndex reports for a
// vertex missing from an empty set.
func TestDegenerateCandidateSets(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	cand := degenerateCandidates(q)
	tree := graph.NewBFSTree(q, 0)
	spaces := map[string]*Space{
		"full":          BuildFull(q, g, cand),
		"full-parallel": BuildFullParallel(q, g, cand, 4),
		"tree":          BuildTree(q, g, cand, tree.Parent),
		"tree-parallel": BuildTreeParallel(q, g, cand, tree.Parent, 4),
	}
	for name, s := range spaces {
		// The 4-vertex paper query leaves exactly one singleton set
		// (u=2); u=0 and u=3 are nil, u=1 is empty.
		if got := s.TotalCandidates(); got != 1 {
			t.Errorf("%s: TotalCandidates = %d, want 1", name, got)
		}
		if got := s.MeanCandidates(); got != 0.25 {
			t.Errorf("%s: MeanCandidates = %v, want 0.25", name, got)
		}
		if s.MemoryBytes() <= 0 {
			t.Errorf("%s: MemoryBytes = %d, want > 0 (offset arrays remain)", name, s.MemoryBytes())
		}
		s.MaterializeBlocks()
		for u := 0; u < q.NumVertices(); u++ {
			uu := graph.Vertex(u)
			for _, up := range q.Neighbors(uu) {
				idx := s.CandidateIndex(uu, 99) // not a candidate anywhere
				if idx != -1 {
					t.Fatalf("%s: CandidateIndex returned %d for missing vertex", name, idx)
				}
				if adj := s.Adjacency(uu, up, idx); adj != nil {
					t.Errorf("%s: Adjacency with index -1 = %v, want nil", name, adj)
				}
				if bv := s.AdjacencyView(uu, up, idx); bv.Valid() {
					t.Errorf("%s: AdjacencyView with index -1 is valid", name)
				}
			}
		}
	}
}

// TestEstimateSurvivesEmptySets: the spanning-tree estimate over a
// degenerate space must be 0 (or finite), never a panic.
func TestEstimateSurvivesEmptySets(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	s := BuildFull(q, g, degenerateCandidates(q))
	delta := []graph.Vertex{0, 1, 2, 3}
	if est := EstimateSpanningTreeEmbeddings(s, delta); est != 0 {
		t.Errorf("estimate over empty root set = %v, want 0", est)
	}
}

// TestParallelBuildStress is the race-detector gate for the parallel
// candidate-space construction (`make race-stress` / `make ci`): 100
// builds at 8 workers on a small graph, each checked against the
// sequential reference.
func TestParallelBuildStress(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := testutil.RandomGraph(rng, 60, 240, 3)
	var q *graph.Graph
	for q == nil {
		q = testutil.RandomConnectedQuery(rng, g, 5)
	}
	cand := filter.RunNLF(q, g)
	seq := BuildFull(q, g, cand)
	for i := 0; i < 100; i++ {
		spacesEqual(t, seq, BuildFullParallel(q, g, cand, 8))
	}
}

func TestBuildFullParallelStatsTalliesWork(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	cand := filter.RunNLF(q, g)
	_, work := BuildFullParallelStats(q, g, cand, 4)
	if par.MakespanBound(work) < 1 {
		t.Fatalf("makespan bound below 1: %v", work)
	}
	var total uint64
	for _, w := range work {
		total += w
	}
	if total == 0 {
		t.Errorf("zero work tallied: %v", work)
	}
}
