package obs

import (
	"fmt"
	"os"
	"sync"
)

// RotatingWriter is a size-capped append-only file writer: when a write
// would push the file past maxBytes, the current file is renamed to
// path+".1" (replacing any previous rotation) and a fresh file is
// started. At most 2x maxBytes live on disk, and the newest records are
// always in the live file — the retention a long-running daemon's
// slow-query log needs. Writes are serialized internally; records
// larger than maxBytes are written whole (one oversized record per
// file, never a partial one).
type RotatingWriter struct {
	mu       sync.Mutex
	path     string
	maxBytes int64
	f        *os.File
	size     int64
}

// NewRotatingWriter opens (or creates, appending) path with the given
// size cap. A cap of 0 or less disables rotation.
func NewRotatingWriter(path string, maxBytes int64) (*RotatingWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &RotatingWriter{path: path, maxBytes: maxBytes, f: f, size: st.Size()}, nil
}

// Write appends p, rotating first if the file would exceed the cap.
func (w *RotatingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.maxBytes > 0 && w.size > 0 && w.size+int64(len(p)) > w.maxBytes {
		if err := w.rotate(); err != nil {
			return 0, err
		}
	}
	n, err := w.f.Write(p)
	w.size += int64(n)
	return n, err
}

// rotate closes the live file, renames it aside and starts a new one.
// Called with the lock held.
func (w *RotatingWriter) rotate() error {
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("obs: rotate close: %w", err)
	}
	if err := os.Rename(w.path, w.path+".1"); err != nil {
		return fmt.Errorf("obs: rotate rename: %w", err)
	}
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("obs: rotate reopen: %w", err)
	}
	w.f = f
	w.size = 0
	return nil
}

// Close closes the live file.
func (w *RotatingWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
