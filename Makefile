# Development targets. `make ci` is the gate every change must pass:
# vet, build, the full test suite under the race detector, a stress
# pass over the parallel preprocessing paths, a short fuzz run of the
# filter-soundness invariant, and a one-iteration benchmark smoke pass
# to catch bit-rotted bench code.

GO ?= go

.PHONY: ci vet build test race race-stress fuzz-smoke bench-smoke bench-parallel bench-preprocess bench-sched bench-serve bench-obs bench-kernels bench-batch bench-store

ci: vet build race race-stress fuzz-smoke bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Hammer the parallel filter + candidate-space paths under the race
# detector (100 iterations at 8 workers each, diffed against the
# 1-worker reference), plus the serving layer's 100-goroutine
# concurrent-Submit stress over shared cached plans, plus the metrics
# registry's concurrent counter/gauge/histogram hammering. Any
# cross-worker state leak trips -race here. The store stress churns
# register/replace/unregister through the durable manager (and the
# HTTP surface) and verifies a restart reconstructs the exact state.
race-stress:
	$(GO) test -race -run 'Stress' -count 1 ./internal/core ./internal/filter ./internal/candspace ./internal/service ./internal/obs ./internal/obs/flight ./internal/store ./cmd/smatchd

# Short corpus-plus-mutation runs of the fuzz targets: filter soundness
# (candidate sets never drop a ground-truth embedding vertex),
# intersection-kernel equivalence (every kernel — merge, gallop, hybrid,
# block, flat views, selector policies — produces identical output), and
# batch grouping (SubmitBatch over arbitrary item mixes stays index-
# aligned, isolates per-item failures, matches sequential embeddings,
# and builds exactly one plan per group), and snapshot round-trip
# (Decode of arbitrary bytes never panics, fails typed, or yields the
# fingerprint-verified graph; valid snapshots round-trip exactly), and
# profile rendering (Render/Chrome export never panic on arbitrary
# span trees and always emit parseable output), and split estimation
# (the cost model stays finite and forced recursive splits enumerate
# exactly the sequential embedding multiset).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzFilterSoundness -fuzztime 5s ./internal/filter
	$(GO) test -run '^$$' -fuzz FuzzSplitEstimates -fuzztime 5s ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzIntersectKernels -fuzztime 5s ./internal/intersect
	$(GO) test -run '^$$' -fuzz FuzzBatchGrouping -fuzztime 5s ./internal/service
	$(GO) test -run '^$$' -fuzz FuzzSnapshotRoundTrip -fuzztime 5s ./internal/store
	$(GO) test -run '^$$' -fuzz FuzzProfileRender -fuzztime 5s ./internal/obs/flight

bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The parallel-scaling measurement behind EXPERIMENTS.md's
# "Parallel scaling" section.
bench-parallel:
	$(GO) test -run '^$$' -bench BenchmarkParallelSkew -benchmem -benchtime 5x .

# The preprocessing-parallelism measurement behind EXPERIMENTS.md's
# "Parallel preprocessing" section.
bench-preprocess:
	$(GO) test -run '^$$' -bench BenchmarkPreprocess -benchmem -benchtime 5x .

# The task-splitting measurement behind EXPERIMENTS.md's "Cost-model
# splitting" section: static vs cost-model split policies at 1/4/8
# workers on the skew fixture, reporting proj-speedup and probe-nodes.
bench-sched:
	$(GO) test -run '^$$' -bench BenchmarkSplitSkew -benchmem -benchtime 5x .

# The repeated-query serving measurement behind EXPERIMENTS.md's
# "Serving" section: cold (uncached) vs warm (plan-cache hit) Submit.
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkServe' -benchmem -benchtime 2s ./internal/service

# The batched-serving measurement behind EXPERIMENTS.md's "Batching"
# section: per-item cost of SubmitBatch at sizes 1/8/64 against the
# sequential warm baseline.
bench-batch:
	$(GO) test -run '^$$' -bench 'BenchmarkServeWarm|BenchmarkBatchSubmit' -benchmem -benchtime 2s ./internal/service

# The instrumentation-overhead measurements behind EXPERIMENTS.md's
# "Instrumentation overhead" and "Profile overhead" sections: span
# tracing off vs on, and EXPLAIN/ANALYZE profiling off vs on, over the
# skew workload, sequential and parallel.
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkObsOverhead|BenchmarkProfileOverhead' -benchmem -benchtime 5x .

# The durable-store measurements behind EXPERIMENTS.md's "Restart"
# section: snapshot encode/decode throughput, the full file-open path
# (copy vs mmap vs the text loader it replaces), and the cost of the
# optional full-fingerprint verification.
bench-store:
	$(GO) test -run '^$$' -bench 'BenchmarkSnapshot|BenchmarkFingerprintVerify' -benchmem -benchtime 2s ./internal/store

# The intersection-kernel measurements behind EXPERIMENTS.md's
# "Adaptive kernels" section: the raw kernel grid over the
# density/skew fixtures, end-to-end enumeration under each kernel
# policy, and the boxed-vs-flat block-layout footprint.
bench-kernels:
	$(GO) test -run '^$$' -bench 'BenchmarkIntersectKernels|BenchmarkEnumerateKernelPolicy|BenchmarkCandSpaceBlockLayout' -benchmem .
