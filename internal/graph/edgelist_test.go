package graph

import (
	"strings"
	"testing"
)

func TestParseEdgeList(t *testing.T) {
	in := `# SNAP-style comment
% another comment style
10 20
20 30
30 10
10 10
20 10
40 50
`
	g, err := ParseEdgeList(strings.NewReader(in), 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Vertices compacted in first-appearance order: 10->0 20->1 30->2
	// 40->3 50->4; self-loop and duplicate dropped.
	if g.NumVertices() != 5 {
		t.Errorf("NumVertices = %d, want 5", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4 (self-loop and duplicate dropped)", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(2, 0) || !g.HasEdge(3, 4) {
		t.Error("compacted edges wrong")
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.Label(Vertex(v)) >= 3 {
			t.Errorf("label of %d outside label set", v)
		}
	}
}

func TestParseEdgeListDeterministicLabels(t *testing.T) {
	in := "0 1\n1 2\n2 3\n3 4\n"
	a, err := ParseEdgeList(strings.NewReader(in), 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseEdgeList(strings.NewReader(in), 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Label(Vertex(v)) != b.Label(Vertex(v)) {
			t.Fatal("labels differ across runs with the same seed")
		}
	}
	c, _ := ParseEdgeList(strings.NewReader(in), 4, 10)
	same := true
	for v := 0; v < a.NumVertices(); v++ {
		if a.Label(Vertex(v)) != c.Label(Vertex(v)) {
			same = false
		}
	}
	if same {
		t.Log("note: different seeds produced identical labels (possible but unlikely)")
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"only comments", "# nothing\n"},
		{"one field", "42\n"},
		{"non-numeric", "a b\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseEdgeList(strings.NewReader(c.in), 2, 1); err == nil {
				t.Errorf("ParseEdgeList(%q) succeeded, want error", c.in)
			}
		})
	}
	if _, err := ParseEdgeList(strings.NewReader("0 1\n"), 0, 1); err == nil {
		t.Error("expected error for zero labels")
	}
}

func TestLoadEdgeListMissingFile(t *testing.T) {
	if _, err := LoadEdgeList("/nonexistent/file.txt", 2, 1); err == nil {
		t.Error("expected error for missing file")
	}
}
