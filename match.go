package subgraphmatching

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/enumerate"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/intersect"
	"subgraphmatching/internal/obs"
	"subgraphmatching/internal/order"
)

// Span is one node of a trace: a named phase with a start time,
// duration, key/value attributes, and child phases. Result.Trace holds
// the root when Options.Trace is set; Span.Render pretty-prints the
// tree and the JSON encoding is stable for machine consumption.
type Span = obs.Span

// Algorithm selects one of the study's algorithm presets.
type Algorithm = core.Algorithm

// Algorithm presets, reproducing the eight studied algorithms plus the
// paper's recommended configuration.
const (
	AlgoQuickSI   = core.QuickSI
	AlgoGraphQL   = core.GraphQL
	AlgoCFL       = core.CFL
	AlgoCECI      = core.CECI
	AlgoDPIso     = core.DPIso
	AlgoRI        = core.RI
	AlgoVF2PP     = core.VF2PP
	AlgoOptimized = core.Optimized
	AlgoGlasgow   = core.Glasgow
	// AlgoVF2 and AlgoUllmann are the historical baselines of the
	// paper's Table 1 — the algorithms VF2++ and the modern filters are
	// measured against.
	AlgoVF2     = core.VF2Classic
	AlgoUllmann = core.Ullmann
)

// Algorithms lists every preset.
func Algorithms() []Algorithm { return core.Algorithms() }

// PresetConfig returns the component configuration behind a preset for
// the given query and data graph — the starting point for tweaking a
// known algorithm (e.g. enabling Config.Profile or Config.FailingSets).
func PresetConfig(a Algorithm, q, g *Graph) Config { return core.PresetConfig(a, q, g) }

// ParseAlgorithm maps a preset name (QSI, GQL, CFL, CECI, DPiso, RI,
// VF2PP, Optimized, GLW) to its Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlgorithm(s) }

// Config selects an arbitrary point in the study's design space: any
// combination of filtering method, ordering method, local-candidate
// computation and optimizations.
type Config = core.Config

// FilterMethod selects a candidate filtering method (paper Section 3.1).
type FilterMethod = filter.Method

// Filtering methods.
const (
	FilterLDF    = filter.LDF
	FilterNLF    = filter.NLF
	FilterGQL    = filter.GQL
	FilterCFL    = filter.CFL
	FilterCECI   = filter.CECI
	FilterDPIso  = filter.DPIso
	FilterSteady = filter.Steady
)

// OrderMethod selects a query-vertex ordering method (paper Section
// 3.2).
type OrderMethod = order.Method

// Ordering methods.
const (
	OrderQSI   = order.QSI
	OrderGQL   = order.GQL
	OrderCFL   = order.CFL
	OrderCECI  = order.CECI
	OrderDPIso = order.DPIso
	OrderRI    = order.RI
	OrderVF2PP = order.VF2PP
)

// LocalCandidates selects the local-candidate computation (paper
// Algorithms 2-5).
type LocalCandidates = enumerate.LocalCandidates

// Local-candidate computations.
const (
	LocalDirect         = enumerate.Direct
	LocalScan           = enumerate.Scan
	LocalTreeEdge       = enumerate.TreeEdge
	LocalIntersect      = enumerate.Intersect
	LocalIntersectBlock = enumerate.IntersectBlock
)

// KernelPolicy selects how pairwise set intersections inside
// LocalIntersect enumeration are executed (Config.Kernel). The policy
// changes speed only — embeddings are identical under every policy.
type KernelPolicy = intersect.Policy

// Kernel policies. KernelAdaptive (the zero value and the default)
// picks merge, galloping, or the block-layout word-parallel kernel per
// call from the operand sizes and block density; the static policies
// pin one kernel and exist to reproduce the paper's Figure 10 style
// comparisons.
const (
	KernelAdaptive = intersect.PolicyAdaptive
	KernelMerge    = intersect.PolicyMerge
	KernelGallop   = intersect.PolicyGallop
	KernelHybrid   = intersect.PolicyHybrid
	KernelBlock    = intersect.PolicyBlock
)

// ParseKernelPolicy maps a policy name (adaptive, merge, gallop,
// hybrid, block) to its KernelPolicy.
func ParseKernelPolicy(s string) (KernelPolicy, error) { return intersect.ParsePolicy(s) }

// Result reports one query's execution: embedding count, search-tree
// size, the preprocessing/enumeration time split, candidate statistics
// and memory use.
type Result = core.Result

// Profile is the EXPLAIN/ANALYZE breakdown attached to Result.Explain
// when Options.Explain is set: per-filter-stage candidate reduction,
// the matching order with per-vertex cardinalities, and the per-depth
// enumeration heat table. Profile.Render pretty-prints it; the JSON
// encoding is stable for machine consumption.
type Profile = core.Profile

// Schedule selects the parallel enumeration scheduler.
type Schedule = core.Schedule

// Parallel scheduler modes.
const (
	ScheduleWorkSteal = core.ScheduleWorkSteal
	ScheduleStrided   = core.ScheduleStrided
)

// ParseSchedule maps a scheduler name (steal, strided) to its Schedule.
func ParseSchedule(s string) (Schedule, error) { return core.ParseSchedule(s) }

// SplitPolicy selects how the work-steal scheduler splits heavy tasks
// when the start vertex has few candidates relative to the worker count.
type SplitPolicy = core.SplitPolicy

// Split policies.
const (
	// SplitCostModel (the zero value and the default) sizes tasks with a
	// cardinality-based cost model refined by depth-1 probes and splits
	// the heavy ones recursively.
	SplitCostModel = core.SplitCostModel
	// SplitStatic reproduces the pre-cost-model behavior: expand every
	// root candidate into all its depth-1 pairs.
	SplitStatic = core.SplitStatic
)

// ParseSplitPolicy maps a split-policy name (cost, static) to its
// SplitPolicy.
func ParseSplitPolicy(s string) (SplitPolicy, error) { return core.ParseSplitPolicy(s) }

// Options configures a Match call.
type Options struct {
	// Algorithm picks a preset. Ignored when Custom is set. The zero
	// value is AlgoQuickSI; most callers want AlgoOptimized.
	Algorithm Algorithm
	// Custom overrides the preset with an explicit component
	// configuration.
	Custom *Config
	// MaxEmbeddings stops the search after this many embeddings
	// (0 = find all). The paper's experiments use 1e5.
	MaxEmbeddings uint64
	// TimeLimit bounds the enumeration wall-clock time (0 = unlimited).
	// The paper's experiments use five minutes.
	TimeLimit time.Duration
	// OnMatch, when non-nil, receives each embedding indexed by query
	// vertex. Returning false stops the search. Sequentially the slice
	// is reused between calls (copy it to retain); under parallel
	// execution calls are serialized, arrive in no particular order, and
	// each receives a private copy the callback may keep.
	OnMatch func(mapping []Vertex) bool
	// Parallel runs the enumeration across this many worker goroutines
	// (0 or 1 = sequential). Embedding counts remain exact; not
	// supported with AlgoVF2 and AlgoUllmann.
	Parallel int
	// Schedule selects the parallel scheduler: ScheduleWorkSteal (the
	// zero value, dynamic task distribution with stealing — tracks total
	// work under skew) or ScheduleStrided (the static partition of the
	// start vertex's candidates).
	Schedule Schedule
	// Split selects the work-steal task-splitting policy:
	// SplitCostModel (the zero value — cost-model-sized tasks, split
	// recursively) or SplitStatic (every root expanded to its depth-1
	// pairs). Embeddings are identical under both; only load balance
	// changes. Result.Split reports what the splitter did, including its
	// predicted-vs-actual node counts.
	Split SplitPolicy
	// SplitFactor tunes when splitting engages: tasks are refined when
	// the start vertex has fewer than Parallel×SplitFactor candidates
	// (0 = default factor). Negative values are rejected with
	// ErrBadSplitFactor.
	SplitFactor int
	// Workers sets the worker-goroutine count for the parallelized
	// preprocessing phases — candidate filtering and candidate-space
	// construction (0 = inherit Parallel, 1 = sequential
	// preprocessing). Candidate sets are identical across worker
	// counts, except that GraphQL filtering under more than one worker
	// refines in Jacobi rounds, which within the bounded round budget
	// keep a (still sound and complete) superset of the sequential
	// sets. Embedding counts are unaffected either way.
	Workers int
	// Trace attaches a phase-span tree to Result.Trace: filtering (with
	// per-stage candidate counts), candidate-space construction,
	// ordering, and enumeration (with per-worker task/steal tallies
	// under Parallel). Timing fields are always populated; Trace only
	// controls building the structured tree.
	Trace bool
	// Explain attaches the EXPLAIN/ANALYZE Profile to Result.Explain:
	// what each filter stage eliminated, the matching order the planner
	// chose, and where the enumeration spent its search nodes, depth by
	// depth. Off by default — profiling adds a few per-node counter
	// increments; off, it costs nothing. Not supported by the external
	// engines (AlgoGlasgow, AlgoVF2, AlgoUllmann), which leave Explain
	// nil.
	Explain bool
}

// Match finds subgraph isomorphisms from q to g. The query must be
// connected and non-empty.
func Match(q, g *Graph, opts Options) (*Result, error) {
	return match(q, g, opts, nil)
}

// match is the shared implementation behind Match and MatchContext;
// cancel, when non-nil, is the cooperative stop flag the engines poll.
func match(q, g *Graph, opts Options, cancel *atomic.Bool) (*Result, error) {
	if q == nil || g == nil {
		return nil, fmt.Errorf("subgraphmatching: %w", ErrNilGraph)
	}
	cfg := core.PresetConfig(opts.Algorithm, q, g)
	if opts.Custom != nil {
		cfg = *opts.Custom
	}
	return core.Match(q, g, cfg, core.Limits{
		MaxEmbeddings: opts.MaxEmbeddings,
		TimeLimit:     opts.TimeLimit,
		OnMatch:       opts.OnMatch,
		Parallel:      opts.Parallel,
		Schedule:      opts.Schedule,
		Split:         opts.Split,
		SplitFactor:   opts.SplitFactor,
		Workers:       opts.Workers,
		Trace:         opts.Trace,
		Profile:       opts.Explain,
		Cancel:        cancel,
	})
}

// MatchContext is Match under a context: cancelling ctx stops the
// search cooperatively (sequential, parallel, and the external engines
// all poll the same flag), and a ctx deadline tightens Options.TimeLimit
// so the engines' own deadline checks enforce it. When ctx ends before
// the search completes, the context's error is returned; a TimeLimit
// expiry that is not the context's deadline still reports a normal
// Result with TimedOut set, preserving the paper's unsolved-query
// accounting.
func MatchContext(ctx context.Context, q, g *Graph, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	deadline, hasDeadline := ctx.Deadline()
	if hasDeadline {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, context.DeadlineExceeded
		}
		if opts.TimeLimit == 0 || remain < opts.TimeLimit {
			opts.TimeLimit = remain
		}
	}
	var flag atomic.Bool
	stop := context.AfterFunc(ctx, func() { flag.Store(true) })
	defer stop()
	res, err := match(q, g, opts, &flag)
	if err != nil {
		return nil, err
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	// The engine's own clock can expire a folded ctx deadline a
	// scheduler tick before the context's timer fires (ctx.Err() still
	// nil on a busy machine) — resolve that race by the wall clock, so
	// a deadline-driven timeout deterministically reports as such.
	if hasDeadline && res.TimedOut && !time.Now().Before(deadline) {
		return nil, context.DeadlineExceeded
	}
	return res, nil
}

// ForEachMatch streams every embedding to fn under a context, combining
// MatchContext's cancellation with a mandatory callback: fn receives
// each mapping indexed by query vertex (see Options.OnMatch for the
// slice-reuse rules) and returns false to stop early. A nil fn is
// rejected with ErrNilCallback.
func ForEachMatch(ctx context.Context, q, g *Graph, opts Options, fn func(mapping []Vertex) bool) (*Result, error) {
	if fn == nil {
		return nil, fmt.Errorf("subgraphmatching: %w", ErrNilCallback)
	}
	opts.OnMatch = fn
	return MatchContext(ctx, q, g, opts)
}

// Count is a convenience wrapper returning only the number of
// embeddings.
func Count(q, g *Graph, opts Options) (uint64, error) {
	res, err := Match(q, g, opts)
	if err != nil {
		return 0, err
	}
	return res.Embeddings, nil
}

// FindAll collects up to limit embeddings (0 = all). Each returned
// mapping is indexed by query vertex.
func FindAll(q, g *Graph, opts Options, limit int) ([][]Vertex, error) {
	var out [][]Vertex
	inner := opts.OnMatch
	opts.OnMatch = func(m []Vertex) bool {
		out = append(out, append([]Vertex(nil), m...))
		if inner != nil && !inner(m) {
			return false
		}
		return limit == 0 || len(out) < limit
	}
	if _, err := Match(q, g, opts); err != nil {
		return nil, err
	}
	return out, nil
}
