package candspace

import (
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/intersect"
	"subgraphmatching/internal/par"
)

// MaterializeBlocks builds the flat QFilter-style block layout for every
// materialized candidate adjacency list, enabling word-parallel
// intersections during enumeration. One intersect.FlatBlocks arena is
// built per directed query edge — the per-candidate layouts are offset
// windows into it, so the whole materialization allocates O(edges)
// objects, not O(candidates). It is idempotent.
func (s *Space) MaterializeBlocks() {
	if s.flat != nil {
		return
	}
	s.flat = make([][]*intersect.FlatBlocks, len(s.edges))
	for u, row := range s.edges {
		s.flat[u] = make([]*intersect.FlatBlocks, len(row))
		for i, csr := range row {
			if csr == nil {
				continue
			}
			nCand := len(csr.offsets) - 1
			counts := make([]int32, nCand)
			for ci := 0; ci < nCand; ci++ {
				counts[ci] = int32(intersect.CountBlocks(csr.targets[csr.offsets[ci]:csr.offsets[ci+1]]))
			}
			fb := intersect.NewFlatBlocks(counts)
			for ci := 0; ci < nCand; ci++ {
				fb.EncodeSet(ci, csr.targets[csr.offsets[ci]:csr.offsets[ci+1]])
			}
			s.flat[u][i] = fb
		}
	}
}

// MaterializeBlocksParallel is MaterializeBlocks across `workers`
// goroutines, returning the per-worker work tallies (elements scanned,
// both passes) for par.MakespanBound. The two-phase build — count
// blocks per candidate, prefix-sum into exact arenas, then encode into
// disjoint ranges — needs no synchronization and produces arenas
// byte-identical to the sequential build at every worker count.
func (s *Space) MaterializeBlocksParallel(workers int) []uint64 {
	if s.flat != nil {
		return nil
	}
	if workers <= 1 {
		s.MaterializeBlocks()
		return nil
	}
	type pairRef struct {
		u, pos int
		csr    *edgeCSR
		counts []int32
	}
	var pairs []pairRef
	var tasks []buildTask
	s.flat = make([][]*intersect.FlatBlocks, len(s.edges))
	for u, row := range s.edges {
		s.flat[u] = make([]*intersect.FlatBlocks, len(row))
		for i, csr := range row {
			if csr == nil {
				continue
			}
			nCand := len(csr.offsets) - 1
			pair := len(pairs)
			pairs = append(pairs, pairRef{u: u, pos: i, csr: csr, counts: make([]int32, nCand)})
			for lo := 0; lo < nCand; lo += buildChunk {
				hi := lo + buildChunk
				if hi > nCand {
					hi = nCand
				}
				tasks = append(tasks, buildTask{pair: pair, lo: lo, hi: hi})
			}
		}
	}
	work := par.Run(workers, len(tasks), func(w, t int) uint64 {
		task := tasks[t]
		p := pairs[task.pair]
		var n uint64
		for ci := task.lo; ci < task.hi; ci++ {
			set := p.csr.targets[p.csr.offsets[ci]:p.csr.offsets[ci+1]]
			p.counts[ci] = int32(intersect.CountBlocks(set))
			n += uint64(len(set))
		}
		return n
	})
	for _, p := range pairs {
		s.flat[p.u][p.pos] = intersect.NewFlatBlocks(p.counts)
	}
	encode := par.Run(workers, len(tasks), func(w, t int) uint64 {
		task := tasks[t]
		p := pairs[task.pair]
		fb := s.flat[p.u][p.pos]
		var n uint64
		for ci := task.lo; ci < task.hi; ci++ {
			set := p.csr.targets[p.csr.offsets[ci]:p.csr.offsets[ci+1]]
			fb.EncodeSet(ci, set)
			n += uint64(len(set))
		}
		return n
	})
	for i := range work {
		work[i] += encode[i]
	}
	return work
}

// HasBlocks reports whether MaterializeBlocks has run.
func (s *Space) HasBlocks() bool { return s.flat != nil }

// AdjacencyView returns the block view of 𝒜[u->u'](v) where candIdx is
// v's index in C(u). The zero view is returned if blocks are not
// materialized, the pair is absent, or candIdx is out of range (e.g. -1
// from CandidateIndex on an empty candidate set).
func (s *Space) AdjacencyView(u, up graph.Vertex, candIdx int) intersect.BlockView {
	if s.flat == nil {
		return intersect.BlockView{}
	}
	pos := s.neighborPos(u, up)
	if pos < 0 {
		return intersect.BlockView{}
	}
	fb := s.flat[u][pos]
	if fb == nil || candIdx < 0 || candIdx >= fb.NumSets() {
		return intersect.BlockView{}
	}
	return fb.View(candIdx)
}

// AdjacencyWithView returns 𝒜[u->u'](v) as both the sorted slice and
// its block view with a single pair lookup — the enumeration hot path's
// accessor. The view is zero when blocks are not materialized; the
// slice is nil under the same conditions as Adjacency.
func (s *Space) AdjacencyWithView(u, up graph.Vertex, candIdx int) ([]uint32, intersect.BlockView) {
	pos := s.neighborPos(u, up)
	if pos < 0 {
		return nil, intersect.BlockView{}
	}
	csr := s.edges[u][pos]
	if csr == nil || candIdx < 0 || candIdx+1 >= len(csr.offsets) {
		return nil, intersect.BlockView{}
	}
	adj := csr.targets[csr.offsets[candIdx]:csr.offsets[candIdx+1]]
	if s.flat == nil {
		return adj, intersect.BlockView{}
	}
	fb := s.flat[u][pos]
	if fb == nil {
		return adj, intersect.BlockView{}
	}
	return adj, fb.View(candIdx)
}

// PairSize returns the total adjacency size of the directed pair
// (u, u') — sum over v∈C(u) of |𝒜[u->u'](v)| — in O(1) from the CSR,
// or 0 when the pair is not materialized. This is the per-edge size
// stat the planner's selectivity model reads.
func (s *Space) PairSize(u, up graph.Vertex) int {
	pos := s.neighborPos(u, up)
	if pos < 0 {
		return 0
	}
	csr := s.edges[u][pos]
	if csr == nil {
		return 0
	}
	return len(csr.targets)
}

// BlockStats aggregates the flat block layout: materialized adjacency
// sets, total 64-wide blocks, and total encoded elements. elems/blocks
// is the density the adaptive kernel selector keys on; all zeros before
// MaterializeBlocks.
func (s *Space) BlockStats() (sets, blocks, elems int) {
	if s.flat == nil {
		return 0, 0, 0
	}
	for _, row := range s.flat {
		for _, fb := range row {
			if fb == nil {
				continue
			}
			sets += fb.NumSets()
			blocks += fb.NumBlocks()
			elems += fb.CountAll()
		}
	}
	return sets, blocks, elems
}

// BlockMemoryBytes returns the flat block layout's memory footprint
// (0 before MaterializeBlocks). Reported separately from MemoryBytes,
// which keeps the paper's candidate-set + CSR accounting.
func (s *Space) BlockMemoryBytes() int64 {
	var b int64
	if s.flat == nil {
		return 0
	}
	for _, row := range s.flat {
		for _, fb := range row {
			if fb != nil {
				b += int64(fb.MemoryBytes())
			}
		}
	}
	return b
}
