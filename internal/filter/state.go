package filter

import (
	"sort"

	"subgraphmatching/internal/bitset"
	"subgraphmatching/internal/graph"
)

// state is the shared machinery of the structural filters: current
// candidate sets plus a membership bitmap per query vertex, kept in sync
// so that "does v have a neighbor in C(u')" checks are O(d(v)) scans.
type state struct {
	q, g   *graph.Graph
	cand   [][]uint32
	member []*bitset.Set // member[u].Contains(v) iff v in cand[u]

	qNLF    [][]labelCount // per query vertex: required neighbor label counts
	counter *graph.LabelCounter
}

type labelCount struct {
	label graph.Label
	count int32
}

func newState(q, g *graph.Graph) *state {
	s := &state{
		q:       q,
		g:       g,
		cand:    make([][]uint32, q.NumVertices()),
		member:  make([]*bitset.Set, q.NumVertices()),
		qNLF:    make([][]labelCount, q.NumVertices()),
		counter: graph.NewLabelCounter(graph.MaxLabelOf(q, g)),
	}
	for u := 0; u < q.NumVertices(); u++ {
		s.member[u] = bitset.New(g.NumVertices())
		s.counter.CountNeighbors(q, graph.Vertex(u))
		for _, l := range s.counter.Touched() {
			s.qNLF[u] = append(s.qNLF[u], labelCount{l, s.counter.Count(l)})
		}
		sort.Slice(s.qNLF[u], func(i, j int) bool { return s.qNLF[u][i].label < s.qNLF[u][j].label })
	}
	return s
}

// ldfOK is the label-and-degree check.
func (s *state) ldfOK(u graph.Vertex, v uint32) bool {
	return s.g.Label(v) == s.q.Label(u) && s.g.Degree(v) >= s.q.Degree(u)
}

// nlfOK checks the neighbor label frequency condition: for every label l
// among u's neighbors, v must have at least as many l-labeled neighbors.
func (s *state) nlfOK(u graph.Vertex, v uint32) bool {
	return s.nlfOKWith(s.counter, u, v)
}

// nlfOKWith is nlfOK against an explicit counter, so the parallel
// runners can hand every worker its own scratch counter while sharing
// the immutable qNLF requirement tables.
func (s *state) nlfOKWith(counter *graph.LabelCounter, u graph.Vertex, v uint32) bool {
	counter.CountNeighbors(s.g, v)
	for _, lc := range s.qNLF[u] {
		if counter.Count(lc.label) < lc.count {
			return false
		}
	}
	return true
}

// setCandidates installs a sorted candidate list for u and rebuilds its
// membership bitmap.
func (s *state) setCandidates(u graph.Vertex, c []uint32) {
	s.cand[u] = c
	s.member[u].Reset()
	for _, v := range c {
		s.member[u].Set(v)
	}
}

// ldfCandidates returns the sorted LDF candidate set of u.
func (s *state) ldfCandidates(u graph.Vertex) []uint32 {
	var out []uint32
	for _, v := range s.g.VerticesWithLabel(s.q.Label(u)) {
		if s.g.Degree(v) >= s.q.Degree(u) {
			out = append(out, v)
		}
	}
	return out
}

// nlfCandidates returns the sorted LDF+NLF candidate set of u.
func (s *state) nlfCandidates(u graph.Vertex) []uint32 {
	return s.nlfCandidatesWith(s.counter, u)
}

// nlfCandidatesWith is nlfCandidates against an explicit scratch
// counter, so root selection can size several candidate sets
// concurrently over one shared state.
func (s *state) nlfCandidatesWith(counter *graph.LabelCounter, u graph.Vertex) []uint32 {
	var out []uint32
	for _, v := range s.g.VerticesWithLabel(s.q.Label(u)) {
		if s.g.Degree(v) >= s.q.Degree(u) && s.nlfOKWith(counter, u, v) {
			out = append(out, v)
		}
	}
	return out
}

// hasNeighborIn reports whether data vertex v has some neighbor in C(u').
func (s *state) hasNeighborIn(v uint32, up graph.Vertex) bool {
	m := s.member[up]
	for _, w := range s.g.Neighbors(v) {
		if m.Contains(w) {
			return true
		}
	}
	return false
}

// prune applies Filtering Rule 3.1: remove every v from C(u) that has no
// neighbor in C(u'). Returns whether anything was removed.
func (s *state) prune(u, up graph.Vertex) bool {
	c := s.cand[u]
	kept := c[:0]
	for _, v := range c {
		if s.hasNeighborIn(v, up) {
			kept = append(kept, v)
		} else {
			s.member[u].Clear(v)
		}
	}
	s.cand[u] = kept
	return len(kept) != len(c)
}

// generateFromParent applies Generation Rule 3.1 with X = {parent}: the
// LDF+NLF-passing neighbors of C(parent)'s candidates, deduplicated and
// sorted, become C(u).
func (s *state) generateFromParent(u, parent graph.Vertex, seen *bitset.Set) {
	seen.Reset()
	var out []uint32
	for _, vp := range s.cand[parent] {
		for _, v := range s.g.Neighbors(vp) {
			if !seen.Contains(v) && s.ldfOK(u, v) && s.nlfOK(u, v) {
				seen.Set(v)
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	s.setCandidates(u, out)
}

// result deep-copies the candidate sets out of the state (the state's
// backing arrays are scratch space).
func (s *state) result() [][]uint32 {
	out := make([][]uint32, len(s.cand))
	for i, c := range s.cand {
		out[i] = append([]uint32(nil), c...)
	}
	return out
}

// RunLabelOnly computes label-only candidate sets: C(u) = {v : L(v) =
// L(u)} with no degree or structural pruning. This is the only sound
// filter for subgraph *homomorphisms*, which may collapse distinct query
// neighbors onto one data vertex (so even the degree condition of LDF
// does not hold).
func RunLabelOnly(q, g *graph.Graph) [][]uint32 {
	out := make([][]uint32, q.NumVertices())
	for u := 0; u < q.NumVertices(); u++ {
		out[u] = append([]uint32(nil), g.VerticesWithLabel(q.Label(graph.Vertex(u)))...)
	}
	return out
}

// RunLDF computes the LDF candidate sets.
func RunLDF(q, g *graph.Graph) [][]uint32 {
	s := newState(q, g)
	for u := 0; u < q.NumVertices(); u++ {
		s.cand[u] = s.ldfCandidates(graph.Vertex(u))
	}
	return s.result()
}

// RunNLF computes the LDF+NLF candidate sets.
func RunNLF(q, g *graph.Graph) [][]uint32 {
	s := newState(q, g)
	for u := 0; u < q.NumVertices(); u++ {
		s.cand[u] = s.nlfCandidates(graph.Vertex(u))
	}
	return s.result()
}

// RunSteady starts from NLF candidates and iterates Filtering Rule 3.1
// over every directed query edge until no candidate set changes: the
// steady state of Observation 3.1 (Figure 8's STEADY baseline).
func RunSteady(q, g *graph.Graph) [][]uint32 {
	s := newState(q, g)
	for u := 0; u < q.NumVertices(); u++ {
		s.setCandidates(graph.Vertex(u), s.nlfCandidates(graph.Vertex(u)))
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < q.NumVertices(); u++ {
			for _, up := range q.Neighbors(graph.Vertex(u)) {
				if s.prune(graph.Vertex(u), up) {
					changed = true
				}
			}
		}
	}
	return s.result()
}
