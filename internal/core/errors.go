package core

import (
	"errors"

	"subgraphmatching/internal/graph"
)

// Typed sentinel errors for degenerate inputs. Callers classify failures
// with errors.Is instead of parsing messages; the public API re-exports
// these, and the serving layer maps them onto protocol status codes.
var (
	// ErrNilGraph reports a nil query or data graph.
	ErrNilGraph = errors.New("nil graph")
	// ErrEmptyQuery reports a query graph with no vertices.
	ErrEmptyQuery = errors.New("empty query graph")
	// ErrDisconnectedQuery reports a query graph that is not connected —
	// the generic pipeline enumerates connected-prefix orders only.
	ErrDisconnectedQuery = errors.New("query graph must be connected")
	// ErrQueryTooLarge reports a query with more vertices than the data
	// graph; no injective mapping can exist. Match treats this as an
	// empty result for backward compatibility, while strict validators
	// (the serving layer) reject it before any preprocessing runs.
	ErrQueryTooLarge = errors.New("query has more vertices than the data graph")
	// ErrUnknownLabel reports a query vertex label that no data vertex
	// carries; every candidate set would be empty. Like ErrQueryTooLarge
	// it is a strict-validation error, not a Match failure.
	ErrUnknownLabel = errors.New("query uses a label absent from the data graph")
	// ErrNoPlan reports a configuration routed to an external engine
	// (Glasgow, VF2, Ullmann), which bypasses the filter/order/enumerate
	// pipeline and therefore has no reusable preprocessing plan.
	ErrNoPlan = errors.New("algorithm bypasses the preprocessing pipeline and has no plan")
	// ErrBadSplitFactor reports a negative Limits.SplitFactor. A negative
	// factor used to silently disable splitting (the regime comparison
	// could never be true); it is now rejected so a typo'd knob fails
	// loudly instead of quietly degrading load balance.
	ErrBadSplitFactor = errors.New("split factor must be non-negative")
)

// Validate checks a (query, data) pair for degenerate inputs, returning
// the first applicable typed error. It is strict: conditions Match
// tolerates with an empty result (oversized queries, unknown labels) are
// errors here, because a serving layer wants to reject such requests
// before admission rather than spend preprocessing to learn the answer
// is the empty set.
func Validate(q, g *graph.Graph) error {
	if q == nil || g == nil {
		return ErrNilGraph
	}
	if q.NumVertices() == 0 {
		return ErrEmptyQuery
	}
	if !q.IsConnected() {
		return ErrDisconnectedQuery
	}
	if q.NumVertices() > g.NumVertices() {
		return ErrQueryTooLarge
	}
	for _, l := range q.Labels() {
		if g.LabelFrequency(l) == 0 {
			return ErrUnknownLabel
		}
	}
	return nil
}
