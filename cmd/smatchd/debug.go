package main

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/obs/flight"
)

// explain is EXPLAIN without ANALYZE: resolve the plan (cached or
// freshly preprocessed, same as a real query would) and return what the
// optimizer decided, without enumerating. Body and parameters match
// POST /match; ?format=text renders the profile as a table instead of
// JSON.
func (s *server) explain(w http.ResponseWriter, r *http.Request) {
	req, err := s.parseMatchRequest(w, r)
	if err != nil {
		httpError(w, err)
		return
	}
	resp, err := s.svc.Explain(r.Context(), req)
	if err != nil {
		httpError(w, err)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		resp.Profile.Render(w)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Profile   *core.Profile `json:"profile"`
		CacheHit  bool          `json:"cache_hit"`
		QueueWait time.Duration `json:"queue_wait_ns"`
	}{resp.Profile, resp.CacheHit, resp.QueueWait})
}

// tracezEntry is one retained request in the /debug/tracez listing —
// the identity row without the span tree (fetch ?id=N for the trace).
type tracezEntry struct {
	ID        uint64    `json:"id"`
	Graph     string    `json:"graph,omitempty"`
	Algo      string    `json:"algo,omitempty"`
	Start     time.Time `json:"start"`
	LatencyNS int64     `json:"latency_ns"`
	Error     string    `json:"error,omitempty"`
}

type tracezBucket struct {
	Label   string        `json:"label"`
	Count   uint64        `json:"count"`
	Records []tracezEntry `json:"records,omitempty"`
}

type tracezResponse struct {
	Buckets []tracezBucket `json:"buckets"`
	Errors  []tracezEntry  `json:"errors,omitempty"`
}

func tracezEntryOf(rec *flight.Record) tracezEntry {
	return tracezEntry{
		ID:        rec.ID,
		Graph:     rec.Graph,
		Algo:      rec.Algo,
		Start:     rec.Start,
		LatencyNS: rec.Latency.Nanoseconds(),
		Error:     rec.Err,
	}
}

// tracez serves the flight recorder's retention: without parameters the
// latency-bucketed listing (slowest retained requests per band plus the
// error ring), with ?id=N one retained record's full span tree — as
// JSON, as indented text (&format=text), or as a Chrome trace-event
// file loadable in chrome://tracing (&format=chrome).
func (s *server) tracez(w http.ResponseWriter, r *http.Request) {
	rec := s.svc.Flights()
	if v := r.URL.Query().Get("id"); v != "" {
		id, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpError(w, fmt.Errorf("bad id %q", v))
			return
		}
		record := rec.Lookup(id)
		if record == nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprintf(w, `{"error":"record %d not retained"}`+"\n", id)
			return
		}
		switch r.URL.Query().Get("format") {
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition",
				fmt.Sprintf(`attachment; filename="trace-%d.json"`, id))
			flight.WriteChromeTrace(w, record.Span)
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintf(w, "request %d  graph=%s algo=%s latency=%s error=%q\n",
				record.ID, record.Graph, record.Algo, record.Latency, record.Err)
			if record.Span != nil {
				record.Span.Render(w)
			}
		default:
			writeJSON(w, http.StatusOK, record)
		}
		return
	}

	snap := rec.Snapshot()
	resp := tracezResponse{Buckets: make([]tracezBucket, len(snap))}
	for i, b := range snap {
		tb := tracezBucket{Label: b.Label, Count: b.Count}
		for _, r := range b.Records {
			tb.Records = append(tb.Records, tracezEntryOf(r))
		}
		resp.Buckets[i] = tb
	}
	for _, r := range rec.Errors() {
		resp.Errors = append(resp.Errors, tracezEntryOf(r))
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, b := range resp.Buckets {
			fmt.Fprintf(w, "%-8s %8d completed\n", b.Label, b.Count)
			for _, e := range b.Records {
				fmt.Fprintf(w, "  id=%-6d %-12s %-10s %12s  %s\n",
					e.ID, e.Graph, e.Algo, time.Duration(e.LatencyNS), e.Error)
			}
		}
		if len(resp.Errors) > 0 {
			fmt.Fprintf(w, "errors (newest first):\n")
			for _, e := range resp.Errors {
				fmt.Fprintf(w, "  id=%-6d %-12s %-10s %12s  %s\n",
					e.ID, e.Graph, e.Algo, time.Duration(e.LatencyNS), e.Error)
			}
		}
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// debugRequests serves the live in-flight registry: every request the
// service is running right now, its phase and how long it has been in
// flight, oldest first. ?format=text renders a table.
func (s *server) debugRequests(w http.ResponseWriter, r *http.Request) {
	infos := s.svc.Flights().Inflight()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%d in flight\n", len(infos))
		for _, in := range infos {
			fmt.Fprintf(w, "  id=%-6d %-12s %-10s phase=%-10s elapsed=%s\n",
				in.ID, in.Graph, in.Algo, in.Phase, in.Elapsed.Round(time.Microsecond))
		}
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Inflight []flight.InflightInfo `json:"inflight"`
	}{infos})
}
