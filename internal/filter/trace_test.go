package filter

import (
	"math/rand"
	"testing"

	"subgraphmatching/internal/testutil"
)

// TestRunTracedStages checks that every method records its expected
// stages, that the traced run produces byte-identical candidate sets to
// the untraced run, and that the final stage's candidate total matches
// the returned sets.
func TestRunTracedStages(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := testutil.RandomGraph(rng, 120, 480, 3)
	q := testutil.RandomConnectedQuery(rng, g, 6)

	wantStages := map[Method][]string{
		LDF:    {"ldf"},
		NLF:    {"nlf"},
		GQL:    {"local", "refine-1"}, // refine-2 only if round 1 changed something
		CFL:    {"generate", "refine"},
		CECI:   {"construct", "refine"},
		DPIso:  {"init", "pass-1", "pass-2", "pass-3"},
		Steady: {"fixpoint"},
	}
	for _, m := range Methods() {
		var tr StageTrace
		got, err := RunTraced(m, q, g, &tr)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		plain, err := Run(m, q, g)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(got) != len(plain) {
			t.Fatalf("%v: traced %d sets, plain %d", m, len(got), len(plain))
		}
		for u := range got {
			if len(got[u]) != len(plain[u]) {
				t.Fatalf("%v: C(%d) differs traced vs plain", m, u)
			}
			for i := range got[u] {
				if got[u][i] != plain[u][i] {
					t.Fatalf("%v: C(%d)[%d] differs traced vs plain", m, u, i)
				}
			}
		}
		want := wantStages[m]
		if len(tr.Stages) < len(want) {
			t.Fatalf("%v: got %d stages %v, want at least %v", m, len(tr.Stages), tr.Stages, want)
		}
		for i, name := range want {
			if tr.Stages[i].Name != name {
				t.Errorf("%v: stage %d = %q, want %q", m, i, tr.Stages[i].Name, name)
			}
		}
		last := tr.Stages[len(tr.Stages)-1]
		if last.Candidates != TotalCandidates(got) {
			t.Errorf("%v: final stage candidates %d != returned total %d", m, last.Candidates, TotalCandidates(got))
		}
		// Pruning stages never grow the candidate total.
		for i := 1; i < len(tr.Stages); i++ {
			if tr.Stages[i].Candidates > tr.Stages[i-1].Candidates {
				t.Errorf("%v: stage %q grew candidates %d -> %d", m,
					tr.Stages[i].Name, tr.Stages[i-1].Candidates, tr.Stages[i].Candidates)
			}
		}
	}
}

// TestRunParallelTracedStages pins the parallel-path observability fix:
// every filter method must report stage children and a non-nil per-worker
// tally under Workers > 1 — previously CFL/CECI (and the GQL/DPIso/Steady
// stats paths) delegated to sequential code or returned no trace at all.
func TestRunParallelTracedStages(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := testutil.RandomGraph(rng, 120, 480, 3)
	q := testutil.RandomConnectedQuery(rng, g, 6)

	wantStages := map[Method][]string{
		LDF:    {"ldf"},
		NLF:    {"nlf"},
		GQL:    {"local", "refine-1"}, // later rounds only if round 1 changed something
		CFL:    {"generate", "refine"},
		CECI:   {"construct", "refine"},
		DPIso:  {"init", "pass-1", "pass-2", "pass-3"},
		Steady: {"fixpoint"},
	}
	for _, m := range Methods() {
		var tr StageTrace
		got, work, err := RunParallelTraced(m, q, g, 4, &tr)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if work == nil {
			t.Fatalf("%v: nil tally", m)
		}
		want := wantStages[m]
		if len(tr.Stages) < len(want) {
			t.Fatalf("%v: got %d stages %v, want at least %v", m, len(tr.Stages), tr.Stages, want)
		}
		for i, name := range want {
			if tr.Stages[i].Name != name {
				t.Errorf("%v: stage %d = %q, want %q", m, i, tr.Stages[i].Name, name)
			}
		}
		last := tr.Stages[len(tr.Stages)-1]
		if last.Candidates != TotalCandidates(got) {
			t.Errorf("%v: final stage candidates %d != returned total %d", m, last.Candidates, TotalCandidates(got))
		}
		// The exact-replay methods must also match the sequential trace
		// stage for stage — same names, same candidate counts after each.
		if m == GQL {
			continue // Jacobi rounds legitimately differ from Gauss–Seidel
		}
		var seq StageTrace
		if _, err := RunTraced(m, q, g, &seq); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(tr.Stages) != len(seq.Stages) {
			t.Fatalf("%v: parallel %d stages, sequential %d", m, len(tr.Stages), len(seq.Stages))
		}
		for i := range tr.Stages {
			if tr.Stages[i].Name != seq.Stages[i].Name ||
				tr.Stages[i].Candidates != seq.Stages[i].Candidates {
				t.Errorf("%v: stage %d parallel (%s, %d) != sequential (%s, %d)", m, i,
					tr.Stages[i].Name, tr.Stages[i].Candidates,
					seq.Stages[i].Name, seq.Stages[i].Candidates)
			}
		}
	}
}

// TestRunTracedNil confirms the nil-trace path is exactly Run.
func TestRunTracedNil(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := testutil.RandomGraph(rng, 60, 200, 2)
	q := testutil.RandomConnectedQuery(rng, g, 5)
	for _, m := range Methods() {
		a, err := RunTraced(m, q, g, nil)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		b, _ := Run(m, q, g)
		if len(a) != len(b) {
			t.Fatalf("%v: mismatch", m)
		}
	}
}
