package service

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/obs"
)

// BatchResult is one batch item's outcome, carrying its position in the
// submitted slice (results come back in item order, Index == position).
// Exactly one of Resp and Err is set — per-item status isolation: one
// invalid or overloaded item never fails its neighbors.
type BatchResult struct {
	Index int
	Resp  *Response
	Err   error
}

// batchGroup is one (graph generation, query fingerprint, config,
// cache-bypass) equivalence class within a batch. The whole group takes
// ONE admission grant (weighted by its heaviest item) and ONE plan
// lookup/build; its items then enumerate sequentially under that grant.
// This is where batching amortizes the per-request overhead that
// dominates tiny hot queries.
type batchGroup struct {
	key     planKey
	noCache bool
	entry   *graphEntry
	cfg     core.Config
	algo    string
	items   []int // indices into the batch's item slice
}

// batchGroupKey distinguishes groups: the plan identity plus the
// cache-bypass bit (NoCache items must not satisfy — or be satisfied
// by — cached plans).
type batchGroupKey struct {
	planKey
	noCache bool
}

// execKey identifies executions whose outcome is identical within one
// group: same limits, same parallelism. Items in a group sharing an
// execKey and observing no per-embedding callback are deduplicated —
// the query runs once and the result fans out to every duplicate
// (first cut of multi-query optimization: identical queries are the
// degenerate common substructure).
type execKey struct {
	maxEmbeddings uint64
	timeLimit     time.Duration
	parallel      int
	schedule      core.Schedule
	split         core.SplitPolicy
	splitFactor   int
	workers       int
	// profile keeps profiled and unprofiled items apart: a fan-out of an
	// unprofiled run has no Explain to offer a profiled duplicate.
	profile bool
}

// SubmitBatch runs a set of requests as one batch: items are grouped by
// (graph, query fingerprint, config), each group passes admission once
// and resolves its plan once, and duplicate no-callback items within a
// group execute once with the result fanned out. Groups run
// concurrently; items within a group run sequentially under the group's
// admission grant. The returned slice always has len(items) entries in
// item order. The batch-level error is non-nil only when the whole call
// is invalid (closed service, empty batch); everything else is reported
// per item.
//
// Equivalence contract: for any item, the embeddings delivered through
// its OnMatch and the counts on its Response are identical to what a
// lone Submit of the same request would produce — batching changes
// admission and plan traffic, never results.
func (s *Service) SubmitBatch(ctx context.Context, items []Request) ([]BatchResult, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if len(items) == 0 {
		return nil, ErrEmptyBatch
	}
	began := time.Now()
	// The batch is one flight: the recorder shows it in flight while its
	// groups run, and its root span (all groups) enters retention.
	fl := s.flights.Start("(batch)", "batch")
	fl.SetPhase("groups")
	results := make([]BatchResult, len(items))
	for i := range results {
		results[i].Index = i
	}

	// Phase 1: resolve and validate every item, grouping the valid ones.
	// Invalid items fail alone, right here, without touching admission.
	groups := make(map[batchGroupKey]*batchGroup)
	var order []*batchGroup
	for i := range items {
		req := &items[i]
		if req.Query == nil {
			results[i].Err = ErrNilQuery
			continue
		}
		entry, err := s.reg.get(req.Graph)
		if err != nil {
			results[i].Err = err
			continue
		}
		algo := req.algoName()
		if err := core.Validate(req.Query, entry.g); err != nil {
			s.metrics.recordError(entry.name, algo)
			results[i].Err = err
			continue
		}
		cfg := req.resolveConfig(entry.g)
		gk := batchGroupKey{
			planKey: planKey{
				graph:   entry.name,
				gen:     entry.gen,
				queryFP: graph.FingerprintOf(req.Query),
				cfgHash: configHash(cfg, req.preprocessWorkers()),
			},
			noCache: req.NoCache,
		}
		grp, ok := groups[gk]
		if !ok {
			grp = &batchGroup{key: gk.planKey, noCache: gk.noCache, entry: entry, cfg: cfg, algo: algo}
			groups[gk] = grp
			order = append(order, grp)
		}
		grp.items = append(grp.items, i)
	}

	// Phase 2: run the groups concurrently. Each group's span slot is
	// private to its goroutine; the batch root span is assembled after
	// the barrier.
	groupSpans := make([]*obs.Span, len(order))
	var wg sync.WaitGroup
	for gi, grp := range order {
		wg.Add(1)
		go func(gi int, grp *batchGroup) {
			defer wg.Done()
			groupSpans[gi] = s.runBatchGroup(ctx, began, grp, items, results)
		}(gi, grp)
	}
	wg.Wait()

	latency := time.Since(began)
	s.metrics.batches.Inc()
	s.metrics.batchItems.Add(uint64(len(items)))
	s.metrics.batchGroups.Add(uint64(len(order)))
	s.metrics.batchSize.Observe(float64(len(items)))

	// One request span for the batch; per-item match spans are its
	// children (each item's Response also carries its own span).
	root := obs.NewSpan("request", began, latency).
		SetAttr("batch", true).
		SetAttr("items", len(items)).
		SetAttr("groups", len(order))
	for _, gs := range groupSpans {
		if gs != nil {
			root.AddChild(gs)
		}
	}

	var payload any
	if s.slowLog != nil && latency >= s.slowLog.threshold {
		s.metrics.slowQueries.Inc()
		var embeddings, nodes uint64
		errs := 0
		for i := range results {
			if results[i].Err != nil {
				errs++
			} else if r := results[i].Resp; r != nil {
				embeddings += r.Result.Embeddings
				nodes += r.Result.Nodes
			}
		}
		payload = slowQueryRecord{
			Time:       time.Now().UTC().Format(time.RFC3339Nano),
			Graph:      "(batch)",
			Algorithm:  "batch",
			Batch:      len(items),
			Groups:     len(order),
			ItemErrors: errs,
			Embeddings: embeddings,
			Nodes:      nodes,
			LatencyNS:  latency.Nanoseconds(),
			Trace:      root,
		}
	}
	fl.Finish(root, nil, payload)
	return results, nil
}

// runBatchGroup executes one group: one admission grant, one plan
// acquisition, then the items in index order. It returns the group's
// span (admission + per-item match children), or nil if the group never
// got far enough to trace.
func (s *Service) runBatchGroup(ctx context.Context, began time.Time, grp *batchGroup, items []Request, results []BatchResult) *obs.Span {
	// One admission grant sized for the heaviest item.
	var weight int64 = 1
	for _, idx := range grp.items {
		if w := s.sem.clampWeight(int64(items[idx].Parallel)); w > weight {
			weight = w
		}
	}
	admStart := time.Now()
	if err := s.sem.acquire(ctx, grp.entry.name, weight, s.cfg.MaxQueueWait, s.cfg.MaxQueue); err != nil {
		for _, idx := range grp.items {
			s.metrics.recordRejected(grp.entry.name, grp.algo)
			results[idx].Err = err
		}
		return nil
	}
	defer s.sem.release(weight)
	queueWait := time.Since(admStart)
	s.metrics.admissionWait.Observe(queueWait.Seconds())

	span := obs.NewSpan("group", admStart, 0).
		SetAttr("graph", grp.entry.name).
		SetAttr("algo", grp.algo).
		SetAttr("items", len(grp.items))
	span.AddChild(obs.NewSpan("admission", admStart, queueWait))

	// One plan acquisition for the whole group (pipeline configs only —
	// the external engines have no plan and enumerate from scratch).
	external := grp.cfg.UseGlasgow || grp.cfg.UseVF2 || grp.cfg.UseUllmann
	var (
		plan *core.Plan
		src  planSource
	)
	if !external {
		var err error
		plan, src, err = s.planFor(ctx, grp.entry, items[grp.items[0]].Query, grp.cfg,
			items[grp.items[0]].preprocessWorkers(), grp.noCache)
		if err != nil {
			// A preprocessing failure is a property of the (query, config)
			// the whole group shares; every item would fail identically.
			for _, idx := range grp.items {
				s.metrics.recordError(grp.entry.name, grp.algo)
				results[idx].Err = err
			}
			return span
		}
	}

	// Execute the items. Within the group, identical no-callback
	// executions run once and fan out.
	dedup := make(map[execKey]*Response)
	added := make(map[*core.Result]bool) // dedup fan-outs share a Result — attach its span once
	for n, idx := range grp.items {
		// The first item of a freshly built plan is the one that "paid"
		// preprocessing (matching what n sequential Submits would
		// report: one miss, then hits).
		itemSrc := src
		if n > 0 && itemSrc == planBuilt {
			itemSrc = planHit
		}
		resp, err := s.runBatchItem(ctx, began, grp, plan, itemSrc, weight, queueWait, &items[idx], dedup)
		if err != nil {
			results[idx].Err = err
			continue
		}
		results[idx].Resp = resp
		if resp.Result.Trace != nil && !added[resp.Result] {
			added[resp.Result] = true
			span.AddChild(resp.Result.Trace.SetAttr("index", idx))
		}
	}
	span.End()
	return span
}

// runBatchItem executes one item over the group's already-acquired
// grant and already-resolved plan, mirroring Submit's limit resolution,
// clamping, metrics and ctx-deadline semantics exactly — the
// equivalence grid pins this.
func (s *Service) runBatchItem(ctx context.Context, began time.Time, grp *batchGroup,
	plan *core.Plan, src planSource, weight int64, queueWait time.Duration,
	req *Request, dedup map[execKey]*Response) (*Response, error) {

	// Clamp exactly as Submit does: the admitted weight is the
	// enumeration budget.
	if req.Parallel > int(weight) {
		req.Parallel = int(weight)
	}
	if req.Workers > s.cfg.MaxInFlight {
		req.Workers = s.cfg.MaxInFlight
	}
	timeLimit := req.TimeLimit
	if timeLimit <= 0 {
		timeLimit = s.cfg.DefaultTimeLimit
	}
	deadline, hasDeadline := ctx.Deadline()
	if hasDeadline {
		remain := time.Until(deadline)
		if remain <= 0 {
			s.metrics.recordTimeout(grp.entry.name, grp.algo)
			return nil, context.DeadlineExceeded
		}
		if remain < timeLimit {
			timeLimit = remain
		}
	}

	ek := execKey{
		maxEmbeddings: req.MaxEmbeddings,
		timeLimit:     timeLimit,
		parallel:      req.Parallel,
		schedule:      req.Schedule,
		split:         req.Split,
		splitFactor:   req.SplitFactor,
		workers:       req.Workers,
		profile:       req.Profile,
	}
	if req.OnMatch == nil {
		if prior, ok := dedup[ek]; ok {
			// Fan-out: an identical item already ran in this group. The
			// Result is shared (it is read-only to callers, like a
			// cached plan); the Response is private so per-item serving
			// facts stay per-item.
			s.metrics.batchDeduped.Inc()
			s.metrics.recordSuccess(grp.entry.name, grp.algo, prior.Result.Embeddings, true,
				prior.Result.TimedOut, prior.Result.LimitHit, time.Since(began))
			return &Response{Result: prior.Result, CacheHit: true, QueueWait: queueWait}, nil
		}
	}

	var flag atomic.Bool
	stop := context.AfterFunc(ctx, func() { flag.Store(true) })
	defer stop()
	limits := core.Limits{
		MaxEmbeddings: req.MaxEmbeddings,
		TimeLimit:     timeLimit,
		Cancel:        &flag,
		OnMatch:       req.OnMatch,
		Parallel:      req.Parallel,
		Schedule:      req.Schedule,
		Split:         req.Split,
		SplitFactor:   req.SplitFactor,
		Workers:       req.Workers,
		Profile:       req.Profile,
		Trace:         true,
	}

	start := time.Now()
	var (
		res      *core.Result
		cacheHit bool
		err      error
	)
	if plan == nil {
		// External engine: no plan to share, enumerate from scratch.
		res, err = core.Match(req.Query, grp.entry.g, grp.cfg, limits)
	} else if src == planBuilt {
		res, err = s.matchFresh(plan, limits, start)
	} else {
		res, err = core.MatchPlan(plan, limits)
		if err == nil {
			res.Trace = obs.NewSpan("match", start, time.Since(start)).
				AddChild(planSpan(src, plan, start, 0)).
				AddChild(res.Trace)
		}
		cacheHit = true
	}
	if err != nil {
		s.metrics.recordError(grp.entry.name, grp.algo)
		return nil, err
	}
	cerr := ctx.Err()
	if cerr == nil && hasDeadline && res.TimedOut && !time.Now().Before(deadline) {
		cerr = context.DeadlineExceeded
	}
	if cerr != nil {
		if cerr == context.DeadlineExceeded {
			s.metrics.recordTimeout(grp.entry.name, grp.algo)
		} else {
			s.metrics.recordError(grp.entry.name, grp.algo)
		}
		return nil, cerr
	}

	latency := time.Since(began)
	s.metrics.recordSuccess(grp.entry.name, grp.algo, res.Embeddings, cacheHit,
		res.TimedOut, res.LimitHit, latency)
	s.metrics.recordKernels(res.Kernels)
	s.metrics.recordSplit(res.Split, res.Nodes)
	s.metrics.observeDepthNodes(res.Profile)
	s.metrics.observePhases(res.FilterTime, res.BuildTime, res.OrderTime,
		res.EnumTime, !cacheHit)

	resp := &Response{Result: res, CacheHit: cacheHit, QueueWait: queueWait}
	if req.OnMatch == nil {
		dedup[ek] = resp
	}
	return resp, nil
}
