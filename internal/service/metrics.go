package service

import (
	"sync"
	"time"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/enumerate"
	"subgraphmatching/internal/intersect"
	"subgraphmatching/internal/obs"
)

// serviceMetrics is the service's face on the obs registry: every
// serving-side counter lives here as a metric family, and the JSON
// /stats snapshot reads the same values back — one source of truth, no
// parallel bookkeeping. Request-outcome counters are labeled by
// (graph, algorithm); cache and admission families are unlabeled
// service-wide aggregates, with the point-in-time occupancy exposed as
// gauge functions over the live structures.
//
// Latency percentiles for the JSON snapshot come from a per-workload
// sample ring kept alongside the metrics (Prometheus gets the full
// histogram instead); the ring map doubles as the authoritative set of
// workloads the snapshot enumerates.
type serviceMetrics struct {
	reg *obs.Registry

	requests   *obs.CounterVec
	errors     *obs.CounterVec
	timeouts   *obs.CounterVec
	limitHits  *obs.CounterVec
	rejected   *obs.CounterVec
	cacheHits  *obs.CounterVec // requests served from a cached/shared plan
	embeddings *obs.CounterVec
	latency    *obs.HistogramVec
	phase      *obs.HistogramVec

	kernels *obs.CounterVec // service-wide intersection-kernel mix

	// Scheduler splitting: task/split/probe volumes across parallel
	// requests, plus the cost model's predicted-over-measured node ratio
	// so a drifting estimator shows up on a dashboard before it shows up
	// as load imbalance.
	splitTasks      *obs.CounterVec // by split policy
	splitSplitTasks *obs.Counter
	splitProbes     *obs.Counter
	splitAccuracy   *obs.Histogram

	admissionWait *obs.Histogram
	depthNodes    *obs.Histogram // per-depth search-node counts of profiled requests

	planCacheHits      *obs.Counter
	planCacheMisses    *obs.Counter
	planCacheEvictions *obs.Counter
	planCachePurged    *obs.Counter
	planBuilds         *obs.Counter
	planBuildWaits     *obs.Counter

	slowQueries *obs.Counter

	// Batch serving: one batches increment per SubmitBatch call, items
	// counts the requests it carried, groups the distinct (graph, query,
	// config) classes after grouping, and batchDeduped the items served
	// by fanning out another item's identical execution. items - groups
	// is the admission grants and plan lookups batching amortized away.
	batches      *obs.Counter
	batchItems   *obs.Counter
	batchGroups  *obs.Counter
	batchDeduped *obs.Counter
	batchSize    *obs.Histogram

	latMu sync.Mutex
	lat   map[statKey]*latencyRing
}

// batchSizeBuckets cover the useful batch-size range (smatchd caps
// batches at maxBatchItems = 1024).
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// depthNodesBuckets span per-depth search-node counts: decades from a
// single node up to the hundred-million range deep recursion reaches on
// dense graphs.
var depthNodesBuckets = []float64{1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8}

// splitAccuracyBuckets cover the predicted/measured node ratio: 1.0 is a
// perfect cost model, the decades either side catch systematic under-
// and over-estimation.
var splitAccuracyBuckets = []float64{0.01, 0.1, 0.25, 0.5, 0.75, 1, 1.5, 2, 4, 10, 100}

// newServiceMetrics registers the service's metric families. The gauge
// functions close over the service's live structures, so a scrape always
// reads current occupancy without any recording path.
func newServiceMetrics(s *Service) *serviceMetrics {
	r := obs.NewRegistry()
	m := &serviceMetrics{
		reg: r,
		lat: make(map[statKey]*latencyRing),

		requests: r.CounterVec("smatch_requests_total",
			"Completed match requests.", "graph", "algo"),
		errors: r.CounterVec("smatch_request_errors_total",
			"Requests that failed with an error.", "graph", "algo"),
		timeouts: r.CounterVec("smatch_request_timeouts_total",
			"Requests that hit their time limit or context deadline.", "graph", "algo"),
		limitHits: r.CounterVec("smatch_request_limit_hits_total",
			"Requests stopped at their embedding cap.", "graph", "algo"),
		rejected: r.CounterVec("smatch_requests_rejected_total",
			"Requests refused by admission control.", "graph", "algo"),
		cacheHits: r.CounterVec("smatch_cache_hit_requests_total",
			"Requests served from a cached or singleflight-shared plan.", "graph", "algo"),
		embeddings: r.CounterVec("smatch_embeddings_total",
			"Embeddings reported across completed requests.", "graph", "algo"),
		latency: r.HistogramVec("smatch_request_duration_seconds",
			"End-to-end request latency including queue wait.",
			obs.DefaultDurationBuckets, "graph", "algo"),
		phase: r.HistogramVec("smatch_phase_duration_seconds",
			"Pipeline phase durations (filter, build, order, enumerate).",
			obs.DefaultDurationBuckets, "phase"),

		kernels: r.CounterVec("smatch_intersect_kernel_total",
			"Pairwise intersection-kernel executions by kernel across completed requests.",
			"kernel"),

		splitTasks: r.CounterVec("smatch_split_tasks_total",
			"Enumeration tasks scheduled across parallel requests, by split policy.",
			"policy"),
		splitSplitTasks: r.Counter("smatch_split_refined_tasks_total",
			"Tasks pinned below depth 1 by the recursive splitter."),
		splitProbes: r.Counter("smatch_split_probe_nodes_total",
			"Splitter probe expansions across parallel requests."),
		splitAccuracy: r.Histogram("smatch_split_prediction_ratio",
			"Cost-model predicted over measured search nodes per parallel request.",
			splitAccuracyBuckets),

		admissionWait: r.Histogram("smatch_admission_wait_seconds",
			"Time requests spent waiting for admission.", obs.DefaultDurationBuckets),
		depthNodes: r.Histogram("smatch_enum_depth_nodes",
			"Search nodes expanded per enumeration depth, one observation per depth of each profiled request.",
			depthNodesBuckets),

		planCacheHits: r.Counter("smatch_plan_cache_hits_total",
			"Plan cache lookups that found an entry."),
		planCacheMisses: r.Counter("smatch_plan_cache_misses_total",
			"Plan cache lookups that missed."),
		planCacheEvictions: r.Counter("smatch_plan_cache_evictions_total",
			"Plans evicted by the LRU."),
		planCachePurged: r.Counter("smatch_plan_cache_purged_total",
			"Plans removed by a graph hot-swap or unregister purge."),
		planBuilds: r.Counter("smatch_plan_builds_total",
			"Preprocessing runs that built a plan (cache misses after singleflight collapsing)."),
		planBuildWaits: r.Counter("smatch_plan_build_waits_total",
			"Requests that waited on another request's in-flight plan build instead of building."),

		slowQueries: r.Counter("smatch_slow_queries_total",
			"Requests at or above the slow-query threshold."),

		batches: r.Counter("smatch_batches_total",
			"SubmitBatch calls completed."),
		batchItems: r.Counter("smatch_batch_items_total",
			"Requests carried by batches."),
		batchGroups: r.Counter("smatch_batch_groups_total",
			"Distinct (graph, query, config) groups across batches."),
		batchDeduped: r.Counter("smatch_batch_dedup_fanout_total",
			"Batch items served by fanning out an identical item's execution."),
		batchSize: r.Histogram("smatch_batch_size",
			"Items per batch.", batchSizeBuckets),
	}

	r.GaugeFunc("smatch_plan_cache_entries",
		"Plans currently cached.", func() float64 {
			if s.cache == nil {
				return 0
			}
			return float64(s.cache.stats().Size)
		})
	r.GaugeFunc("smatch_plan_cache_bytes",
		"Resident bytes held by cached plans (sum of Plan.SizeBytes).", func() float64 {
			if s.cache == nil {
				return 0
			}
			return float64(s.cache.sizeBytes())
		})
	r.GaugeFunc("smatch_admission_capacity",
		"Admission controller capacity in worker units.", func() float64 {
			capacity, _, _ := s.sem.load()
			return float64(capacity)
		})
	r.GaugeFunc("smatch_admission_in_use",
		"Worker units currently admitted.", func() float64 {
			_, inUse, _ := s.sem.load()
			return float64(inUse)
		})
	r.GaugeFunc("smatch_admission_queue_depth",
		"Requests waiting for admission.", func() float64 {
			_, _, queued := s.sem.load()
			return float64(queued)
		})
	r.GaugeFunc("smatch_requests_inflight",
		"Requests currently in flight, read from the flight recorder's live registry.", func() float64 {
			if s.flights == nil {
				return 0
			}
			return float64(s.flights.InflightCount())
		})
	r.GaugeFunc("smatch_graphs_registered",
		"Data graphs currently registered.", func() float64 {
			return float64(len(s.reg.list()))
		})
	r.GaugeFunc("smatch_uptime_seconds",
		"Seconds since the service started.", func() float64 {
			return time.Since(s.start).Seconds()
		})
	return m
}

// touch ensures the workload appears in the JSON snapshot even when its
// only outcomes so far are rejections or errors, and returns its
// latency ring.
func (m *serviceMetrics) touch(graph, algo string) *latencyRing {
	m.latMu.Lock()
	defer m.latMu.Unlock()
	k := statKey{graph, algo}
	ring, ok := m.lat[k]
	if !ok {
		ring = &latencyRing{}
		m.lat[k] = ring
	}
	return ring
}

func (m *serviceMetrics) recordError(graph, algo string) {
	m.touch(graph, algo)
	m.errors.With(graph, algo).Inc()
}

func (m *serviceMetrics) recordTimeout(graph, algo string) {
	m.touch(graph, algo)
	m.timeouts.With(graph, algo).Inc()
}

func (m *serviceMetrics) recordRejected(graph, algo string) {
	m.touch(graph, algo)
	m.rejected.With(graph, algo).Inc()
}

// recordSuccess applies one completed request's outcome.
func (m *serviceMetrics) recordSuccess(graph, algo string, embeddings uint64,
	cacheHit, timedOut, limitHit bool, latency time.Duration) {

	ring := m.touch(graph, algo)
	m.latMu.Lock()
	ring.add(latency)
	m.latMu.Unlock()

	m.requests.With(graph, algo).Inc()
	m.embeddings.With(graph, algo).Add(embeddings)
	if cacheHit {
		m.cacheHits.With(graph, algo).Inc()
	}
	if timedOut {
		m.timeouts.With(graph, algo).Inc()
	}
	if limitHit {
		m.limitHits.With(graph, algo).Inc()
	}
	m.latency.With(graph, algo).Observe(latency.Seconds())
}

// recordKernels folds one completed request's intersection-kernel mix
// into the service-wide families. Zero tallies create no children, so
// non-intersection workloads leave the families empty.
func (m *serviceMetrics) recordKernels(ks intersect.KernelStats) {
	for i, n := range ks {
		if n != 0 {
			m.kernels.With(intersect.Kernel(i).String()).Add(n)
		}
	}
}

// recordSplit folds one request's scheduler-splitting outcome into the
// service-wide families. Sequential requests carry no SplitInfo and
// contribute nothing; the accuracy ratio is observed only when the cost
// model actually predicted (static splits and root-grained pools have no
// prediction to check).
func (m *serviceMetrics) recordSplit(info *core.SplitInfo, resultNodes uint64) {
	if info == nil {
		return
	}
	m.splitTasks.With(info.Policy.String()).Add(uint64(info.Tasks))
	m.splitSplitTasks.Add(uint64(info.SplitTasks))
	m.splitProbes.Add(info.Probes)
	if measured := resultNodes - info.Probes; info.PredictedNodes > 0 && measured > 0 {
		m.splitAccuracy.Observe(float64(info.PredictedNodes) / float64(measured))
	}
}

// observeDepthNodes feeds the per-depth enumeration-heat histogram:
// one observation per depth that expanded any search nodes. Unprofiled
// requests carry no profile and contribute nothing.
func (m *serviceMetrics) observeDepthNodes(prof *enumerate.SearchProfile) {
	if prof == nil {
		return
	}
	for _, n := range prof.Nodes {
		if n != 0 {
			m.depthNodes.Observe(float64(n))
		}
	}
}

// kernelSnapshot reads the kernel families back for the JSON /stats
// view (nil when nothing has been recorded), keeping the snapshot and
// /metrics in agreement.
func (m *serviceMetrics) kernelSnapshot() map[string]uint64 {
	var out map[string]uint64
	for _, name := range intersect.KernelNames() {
		if n := m.kernels.Value(name); n != 0 {
			if out == nil {
				out = make(map[string]uint64, len(intersect.KernelNames()))
			}
			out[name] = n
		}
	}
	return out
}

// observePhases feeds the phase histogram from a request's span tree:
// the preprocessing phases when they were actually paid (cache hits
// skip them) and the enumeration time always.
func (m *serviceMetrics) observePhases(filter, build, order, enum time.Duration, paidPreprocess bool) {
	if paidPreprocess {
		m.phase.With("filter").Observe(filter.Seconds())
		m.phase.With("build").Observe(build.Seconds())
		m.phase.With("order").Observe(order.Seconds())
	}
	m.phase.With("enumerate").Observe(enum.Seconds())
}

// snapshot builds the JSON /stats workload list by reading the counter
// vecs back — the snapshot and /metrics can never disagree.
func (m *serviceMetrics) snapshot() []WorkloadStats {
	m.latMu.Lock()
	keys := make([]statKey, 0, len(m.lat))
	rings := make([]*latencyRing, 0, len(m.lat))
	for k, r := range m.lat {
		keys = append(keys, k)
		rings = append(rings, r)
	}
	m.latMu.Unlock()

	out := make([]WorkloadStats, 0, len(keys))
	for i, k := range keys {
		m.latMu.Lock()
		p50 := rings[i].percentile(0.50)
		p99 := rings[i].percentile(0.99)
		m.latMu.Unlock()
		out = append(out, WorkloadStats{
			Graph:      k.graph,
			Algorithm:  k.algo,
			Queries:    m.requests.Value(k.graph, k.algo),
			CacheHits:  m.cacheHits.Value(k.graph, k.algo),
			Timeouts:   m.timeouts.Value(k.graph, k.algo),
			LimitHits:  m.limitHits.Value(k.graph, k.algo),
			Rejected:   m.rejected.Value(k.graph, k.algo),
			Errors:     m.errors.Value(k.graph, k.algo),
			Embeddings: m.embeddings.Value(k.graph, k.algo),
			P50:        p50,
			P99:        p99,
		})
	}
	sortWorkloads(out)
	return out
}
