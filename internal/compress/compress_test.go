package compress

import (
	"math/rand"
	"testing"
	"testing/quick"

	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/testutil"
)

func TestBuildStar(t *testing.T) {
	// Star: 4 leaves are open twins; center is a singleton.
	star := graph.MustFromEdges(make([]graph.Label, 5),
		[][2]graph.Vertex{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	c, err := Build(star)
	if err != nil {
		t.Fatal(err)
	}
	if c.Hyper.NumVertices() != 2 {
		t.Fatalf("compressed to %d hypervertices, want 2", c.Hyper.NumVertices())
	}
	if c.Ratio() != 2.0/5.0 {
		t.Errorf("Ratio = %v", c.Ratio())
	}
	foundOpen := false
	for h := range c.Members {
		if c.Kind[h] == OpenTwins && len(c.Members[h]) == 4 {
			foundOpen = true
		}
	}
	if !foundOpen {
		t.Errorf("leaf class missing: members %v kinds %v", c.Members, c.Kind)
	}
}

func TestBuildClique(t *testing.T) {
	// K4: all vertices are closed twins, one hypervertex, no edges.
	var edges [][2]graph.Vertex
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, [2]graph.Vertex{graph.Vertex(i), graph.Vertex(j)})
		}
	}
	k4 := graph.MustFromEdges(make([]graph.Label, 4), edges)
	c, err := Build(k4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Hyper.NumVertices() != 1 || c.Kind[0] != ClosedTwins {
		t.Fatalf("K4 compression: %v kinds %v", c.Members, c.Kind)
	}
	if c.MemberDegree[0] != 3 {
		t.Errorf("MemberDegree = %d", c.MemberDegree[0])
	}
}

func TestBuildRespectsLabels(t *testing.T) {
	// Two leaves with different labels must not merge.
	star := graph.MustFromEdges([]graph.Label{0, 1, 2},
		[][2]graph.Vertex{{0, 1}, {0, 2}})
	c, err := Build(star)
	if err != nil {
		t.Fatal(err)
	}
	if c.Hyper.NumVertices() != 3 {
		t.Errorf("labeled star compressed to %d vertices", c.Hyper.NumVertices())
	}
	if c.Ratio() != 1 {
		t.Errorf("Ratio = %v, want 1", c.Ratio())
	}
}

func TestCountTriangleInClique(t *testing.T) {
	// K6 compresses to one closed hypervertex of size 6; the triangle
	// count must still be 6*5*4 = 120.
	var edges [][2]graph.Vertex
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			edges = append(edges, [2]graph.Vertex{graph.Vertex(i), graph.Vertex(j)})
		}
	}
	k6 := graph.MustFromEdges(make([]graph.Label, 6), edges)
	c, err := Build(k6)
	if err != nil {
		t.Fatal(err)
	}
	tri := graph.MustFromEdges(make([]graph.Label, 3), [][2]graph.Vertex{{0, 1}, {1, 2}, {0, 2}})
	res, err := Count(tri, c, CountOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embeddings != 120 {
		t.Errorf("Embeddings = %d, want 120", res.Embeddings)
	}
	// The compressed search should touch far fewer nodes than 120.
	if res.Nodes > 20 {
		t.Errorf("compressed search used %d nodes", res.Nodes)
	}
}

func TestCountStarPattern(t *testing.T) {
	// 2-leaf star pattern in a 4-leaf star: center fixed, leaves are an
	// ordered pair of distinct leaves: 4*3 = 12.
	star := graph.MustFromEdges(make([]graph.Label, 5),
		[][2]graph.Vertex{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	c, err := Build(star)
	if err != nil {
		t.Fatal(err)
	}
	pattern := graph.MustFromEdges(make([]graph.Label, 3), [][2]graph.Vertex{{0, 1}, {0, 2}})
	res, err := Count(pattern, c, CountOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := testutil.BruteForceCount(pattern, star, 0)
	if res.Embeddings != want {
		t.Errorf("Embeddings = %d, brute force %d", res.Embeddings, want)
	}
}

func TestCountAgreesWithBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Few labels and repeated structure encourage twins.
		g := testutil.RandomGraph(rng, 10+rng.Intn(12), 18+rng.Intn(25), 1+rng.Intn(2))
		q := testutil.RandomConnectedQuery(rng, g, 3+rng.Intn(3))
		if q == nil {
			return true
		}
		c, err := Build(g)
		if err != nil {
			t.Logf("Build: %v", err)
			return false
		}
		res, err := Count(q, c, CountOptions{})
		if err != nil {
			t.Logf("Count: %v", err)
			return false
		}
		want := testutil.BruteForceCount(q, g, 0)
		if res.Embeddings != want {
			t.Logf("compressed count %d, brute force %d (seed %d, %v)", res.Embeddings, want, seed, c)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestCountEdgeCases(t *testing.T) {
	g := testutil.PaperData()
	c, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	empty := graph.MustFromEdges(nil, nil)
	if res, err := Count(empty, c, CountOptions{}); err != nil || res.Embeddings != 0 {
		t.Error("empty query should count 0")
	}
	disc := graph.MustFromEdges([]graph.Label{0, 0, 0}, [][2]graph.Vertex{{0, 1}})
	if _, err := Count(disc, c, CountOptions{}); err == nil {
		t.Error("expected error for disconnected query")
	}
	// The paper example: exactly one embedding.
	res, err := Count(testutil.PaperQuery(), c, CountOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embeddings != 1 {
		t.Errorf("paper example compressed count = %d", res.Embeddings)
	}
}

func TestStringAndKinds(t *testing.T) {
	star := graph.MustFromEdges(make([]graph.Label, 5),
		[][2]graph.Vertex{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	c, _ := Build(star)
	s := c.String()
	if s == "" || c.Ratio() >= 1 {
		t.Errorf("String = %q Ratio = %v", s, c.Ratio())
	}
	if Singleton.String() != "singleton" || OpenTwins.String() != "open" || ClosedTwins.String() != "closed" {
		t.Error("TwinKind.String wrong")
	}
}
