//go:build linux || darwin || freebsd || netbsd || openbsd

package store

import (
	"os"
	"syscall"
)

// mmapSupported reports whether zero-copy snapshot loads are available
// on this platform.
const mmapSupported = true

// mmapFile maps the whole file read-only and shared: the pages are
// backed by the page cache, shared across processes, and evictable
// under memory pressure — the cheap first cut at graphs larger than
// RAM.
func mmapFile(f *os.File) ([]byte, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil
	}
	if int64(int(size)) != size {
		return nil, corruptf("file too large to map: %d bytes", size)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Munmap(b)
}
