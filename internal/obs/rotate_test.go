package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRotatingWriterPreservesNewest writes numbered NDJSON-style records
// through a small cap and checks the invariant rotation exists for: the
// newest records are always on disk (live file), the oldest may only age
// out of the ".1" file, and no record is ever torn across files.
func TestRotatingWriterPreservesNewest(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slow.ndjson")
	w, err := NewRotatingWriter(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	const records = 50
	var last string
	for i := 0; i < records; i++ {
		last = fmt.Sprintf(`{"seq":%d,"pad":"xxxxxxxxxxxxxxxx"}`+"\n", i)
		if _, err := w.Write([]byte(last)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	live, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(live)) > 256 {
		t.Fatalf("live file %d bytes exceeds cap", len(live))
	}
	if !strings.Contains(string(live), fmt.Sprintf(`"seq":%d`, records-1)) {
		t.Fatalf("newest record missing from live file:\n%s", live)
	}
	old, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatal(err)
	}
	// Live + rotated together must hold a contiguous suffix of the
	// stream: every line intact, sequence numbers strictly increasing by
	// one up to the last record.
	all := string(old) + string(live)
	lines := strings.Split(strings.TrimSuffix(all, "\n"), "\n")
	prev := -2
	for _, ln := range lines {
		var seq int
		var pad string
		if _, err := fmt.Sscanf(ln, `{"seq":%d,"pad":%q}`, &seq, &pad); err != nil {
			t.Fatalf("torn record %q: %v", ln, err)
		}
		if prev != -2 && seq != prev+1 {
			t.Fatalf("gap in retained records: %d after %d", seq, prev)
		}
		prev = seq
	}
	if prev != records-1 {
		t.Fatalf("last retained seq = %d, want %d", prev, records-1)
	}
}

// TestRotatingWriterNoCap: a cap of 0 never rotates.
func TestRotatingWriterNoCap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	w, err := NewRotatingWriter(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := w.Write([]byte(strings.Repeat("x", 100) + "\n")); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Fatalf("uncapped writer rotated: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil || st.Size() != 101*100 {
		t.Fatalf("size = %v, err %v", st.Size(), err)
	}
}

// TestRotatingWriterAppendsAcrossReopen: reopening an existing file
// keeps its contents and counts its size toward the cap.
func TestRotatingWriterAppendsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	w, _ := NewRotatingWriter(path, 64)
	w.Write([]byte(strings.Repeat("a", 40) + "\n"))
	w.Close()
	w2, err := NewRotatingWriter(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	// 41 existing + 41 new > 64: must rotate, not overwrite.
	w2.Write([]byte(strings.Repeat("b", 40) + "\n"))
	w2.Close()
	old, _ := os.ReadFile(path + ".1")
	live, _ := os.ReadFile(path)
	if !strings.HasPrefix(string(old), "aaa") || !strings.HasPrefix(string(live), "bbb") {
		t.Fatalf("reopen lost data: old=%q live=%q", old, live)
	}
}
