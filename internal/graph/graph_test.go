package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func triangleWithTail() *Graph {
	// 0-1, 1-2, 2-0 triangle; 3 hangs off 0.
	return MustFromEdges([]Label{0, 1, 2, 1}, [][2]Vertex{{0, 1}, {1, 2}, {2, 0}, {0, 3}})
}

func TestBuilderBasics(t *testing.T) {
	g := triangleWithTail()
	if got := g.NumVertices(); got != 4 {
		t.Fatalf("NumVertices = %d, want 4", got)
	}
	if got := g.NumEdges(); got != 4 {
		t.Fatalf("NumEdges = %d, want 4", got)
	}
	if got := g.Degree(0); got != 3 {
		t.Errorf("Degree(0) = %d, want 3", got)
	}
	if got := g.Degree(3); got != 1 {
		t.Errorf("Degree(3) = %d, want 1", got)
	}
	if got := g.MaxDegree(); got != 3 {
		t.Errorf("MaxDegree = %d, want 3", got)
	}
	if want := []Vertex{1, 2, 3}; !reflect.DeepEqual(g.Neighbors(0), want) {
		t.Errorf("Neighbors(0) = %v, want %v", g.Neighbors(0), want)
	}
}

func TestBuilderDeduplicatesEdges(t *testing.T) {
	g := MustFromEdges([]Label{0, 0}, [][2]Vertex{{0, 1}, {1, 0}, {0, 1}})
	if got := g.NumEdges(); got != 1 {
		t.Fatalf("NumEdges = %d after dedup, want 1", got)
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	if _, err := FromEdges([]Label{0}, [][2]Vertex{{0, 0}}); err == nil {
		t.Fatal("expected error for self-loop")
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges([]Label{0, 1}, [][2]Vertex{{0, 5}}); err == nil {
		t.Fatal("expected error for out-of-range endpoint")
	}
}

func TestHasEdge(t *testing.T) {
	g := triangleWithTail()
	cases := []struct {
		u, v Vertex
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {1, 2, true}, {2, 0, true},
		{0, 3, true}, {3, 0, true},
		{1, 3, false}, {2, 3, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestLabelIndex(t *testing.T) {
	g := triangleWithTail()
	if want := []Vertex{1, 3}; !reflect.DeepEqual(g.VerticesWithLabel(1), want) {
		t.Errorf("VerticesWithLabel(1) = %v, want %v", g.VerticesWithLabel(1), want)
	}
	if got := g.LabelFrequency(1); got != 2 {
		t.Errorf("LabelFrequency(1) = %d, want 2", got)
	}
	if got := g.NumLabels(); got != 3 {
		t.Errorf("NumLabels = %d, want 3", got)
	}
}

func TestLabelPairEdgeCount(t *testing.T) {
	g := triangleWithTail()
	// Edges: (0:l0,1:l1) (1:l1,2:l2) (2:l2,0:l0) (0:l0,3:l1)
	if got := g.LabelPairEdgeCount(0, 1); got != 2 {
		t.Errorf("LabelPairEdgeCount(0,1) = %d, want 2", got)
	}
	if got := g.LabelPairEdgeCount(1, 0); got != 2 {
		t.Errorf("LabelPairEdgeCount symmetric lookup = %d, want 2", got)
	}
	if got := g.LabelPairEdgeCount(1, 1); got != 0 {
		t.Errorf("LabelPairEdgeCount(1,1) = %d, want 0", got)
	}
}

func TestEdgesOrderedAndComplete(t *testing.T) {
	g := triangleWithTail()
	want := [][2]Vertex{{0, 1}, {0, 2}, {0, 3}, {1, 2}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Errorf("Edges() = %v, want %v", got, want)
	}
}

func TestEachEdgeEarlyStop(t *testing.T) {
	g := triangleWithTail()
	n := 0
	g.EachEdge(func(u, v Vertex) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("EachEdge visited %d edges after early stop, want 2", n)
	}
}

func TestIOPRoundTrip(t *testing.T) {
	g := triangleWithTail()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatalf("Write: %v", err)
	}
	g2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %v vs %v", g2, g)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.Label(Vertex(v)) != g2.Label(Vertex(v)) {
			t.Errorf("label of %d changed", v)
		}
		if !reflect.DeepEqual(g.Neighbors(Vertex(v)), g2.Neighbors(Vertex(v))) {
			t.Errorf("neighbors of %d changed", v)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"no t line", "v 0 1\n"},
		{"bad t", "t x y\n"},
		{"non-consecutive ids", "t 2 0\nv 1 0\n"},
		{"bad vertex", "t 1 0\nv 0 x\n"},
		{"edge before t", "e 0 1\n"},
		{"bad edge", "t 2 1\nv 0 0\nv 1 0\ne 0 x\n"},
		{"degree mismatch", "t 2 1\nv 0 0 5\nv 1 0 1\ne 0 1\n"},
		{"unknown record", "t 1 0\nz 0\n"},
		{"self loop", "t 1 1\nv 0 0\ne 0 0\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(c.in)); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", c.in)
			}
		})
	}
}

func TestParseSkipsComments(t *testing.T) {
	in := "# comment\nt 2 1\n% another\nv 0 0\nv 1 0\n\ne 0 1\n"
	g, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestIsConnected(t *testing.T) {
	if g := triangleWithTail(); !g.IsConnected() {
		t.Error("triangleWithTail should be connected")
	}
	g := MustFromEdges([]Label{0, 0, 0}, [][2]Vertex{{0, 1}})
	if g.IsConnected() {
		t.Error("graph with isolated vertex should not be connected")
	}
	empty := MustFromEdges(nil, nil)
	if !empty.IsConnected() {
		t.Error("empty graph is connected by convention")
	}
}

func TestBFSTree(t *testing.T) {
	// Path 0-1-2-3 plus chord 0-2.
	g := MustFromEdges([]Label{0, 0, 0, 0}, [][2]Vertex{{0, 1}, {1, 2}, {2, 3}, {0, 2}})
	tr := NewBFSTree(g, 0)
	if tr.Root != 0 {
		t.Fatalf("Root = %d", tr.Root)
	}
	if want := []Vertex{0, 1, 2, 3}; !reflect.DeepEqual(tr.Order, want) {
		t.Errorf("Order = %v, want %v", tr.Order, want)
	}
	if tr.Parent[0] != NoVertex || tr.Parent[1] != 0 || tr.Parent[2] != 0 || tr.Parent[3] != 2 {
		t.Errorf("Parent = %v", tr.Parent)
	}
	if tr.Depth[3] != 2 {
		t.Errorf("Depth[3] = %d, want 2", tr.Depth[3])
	}
	if tr.MaxDepth() != 2 {
		t.Errorf("MaxDepth = %d, want 2", tr.MaxDepth())
	}
	if !tr.IsTreeEdge(0, 2) || tr.IsTreeEdge(1, 2) {
		t.Error("tree edge classification wrong")
	}
	ch := tr.Children()
	if want := []Vertex{1, 2}; !reflect.DeepEqual(ch[0], want) {
		t.Errorf("Children(0) = %v, want %v", ch[0], want)
	}
}

func TestTwoCore(t *testing.T) {
	g := triangleWithTail()
	core := g.TwoCore()
	want := []bool{true, true, true, false}
	if !reflect.DeepEqual(core, want) {
		t.Errorf("TwoCore = %v, want %v", core, want)
	}
	if g.CoreSize() != 3 {
		t.Errorf("CoreSize = %d, want 3", g.CoreSize())
	}
	// A tree has an empty 2-core.
	tree := MustFromEdges([]Label{0, 0, 0}, [][2]Vertex{{0, 1}, {1, 2}})
	if tree.CoreSize() != 0 {
		t.Errorf("tree CoreSize = %d, want 0", tree.CoreSize())
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := triangleWithTail()
	sub, orig := g.InducedSubgraph([]Vertex{0, 1, 2})
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced triangle has %d vertices %d edges", sub.NumVertices(), sub.NumEdges())
	}
	if want := []Vertex{0, 1, 2}; !reflect.DeepEqual(orig, want) {
		t.Errorf("orig = %v, want %v", orig, want)
	}
	// Labels preserved.
	for i, v := range orig {
		if sub.Label(Vertex(i)) != g.Label(v) {
			t.Errorf("label mismatch at %d", i)
		}
	}
	sub2, _ := g.InducedSubgraph([]Vertex{1, 3})
	if sub2.NumEdges() != 0 {
		t.Errorf("induced {1,3} should have no edges, got %d", sub2.NumEdges())
	}
}

func TestNeighborDegreesDescending(t *testing.T) {
	g := triangleWithTail()
	got := g.NeighborDegreesDescending(0, nil)
	if want := []int{2, 2, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("NeighborDegreesDescending(0) = %v, want %v", got, want)
	}
}

func TestLabelCounter(t *testing.T) {
	g := triangleWithTail()
	c := NewLabelCounter(MaxLabelOf(g))
	c.CountNeighbors(g, 0)
	if c.Count(1) != 2 || c.Count(2) != 1 || c.Count(0) != 0 {
		t.Errorf("counts after CountNeighbors(0): l1=%d l2=%d l0=%d", c.Count(1), c.Count(2), c.Count(0))
	}
	touched := append([]Label(nil), c.Touched()...)
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	if !reflect.DeepEqual(touched, []Label{1, 2}) {
		t.Errorf("Touched = %v, want [1 2]", touched)
	}
	c.Reset()
	if c.Count(1) != 0 || len(c.Touched()) != 0 {
		t.Error("Reset did not clear counts")
	}
}

func TestCSRInvariantsProperty(t *testing.T) {
	// Property: for random graphs, adjacency is sorted, symmetric and
	// consistent with HasEdge.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := NewBuilder(n, 3*n)
		for i := 0; i < n; i++ {
			b.AddVertex(Label(rng.Intn(4)))
		}
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(Vertex(u), Vertex(v))
			}
		}
		g := b.MustBuild()
		total := 0
		for v := 0; v < n; v++ {
			ns := g.Neighbors(Vertex(v))
			total += len(ns)
			if !sort.SliceIsSorted(ns, func(i, j int) bool { return ns[i] < ns[j] }) {
				return false
			}
			for _, w := range ns {
				if !g.HasEdge(w, Vertex(v)) || !g.HasEdge(Vertex(v), w) {
					return false
				}
			}
		}
		return total == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStringSummary(t *testing.T) {
	g := triangleWithTail()
	s := g.String()
	if !strings.Contains(s, "|V|=4") || !strings.Contains(s, "|E|=4") {
		t.Errorf("String() = %q", s)
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	for i, g := range []*Graph{triangleWithTail(), MustFromEdges([]Label{0, 0}, [][2]Vertex{{0, 1}})} {
		if err := Save(filepath.Join(dir, fmt.Sprintf("q_%d.graph", i)), g); err != nil {
			t.Fatal(err)
		}
	}
	// A non-graph file must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	gs, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 2 {
		t.Fatalf("loaded %d graphs, want 2", len(gs))
	}
	if gs[0].NumVertices() != 4 || gs[1].NumVertices() != 2 {
		t.Errorf("order wrong: %v %v", gs[0], gs[1])
	}
	if _, err := LoadDir(filepath.Join(dir, "missing")); err == nil {
		t.Error("expected error for missing dir")
	}
	empty := t.TempDir()
	if _, err := LoadDir(empty); err == nil {
		t.Error("expected error for dir without graphs")
	}
}
