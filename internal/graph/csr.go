package graph

import (
	"fmt"
	"slices"
)

// CSR exposes the graph's raw compressed-sparse-row arrays: offsets
// (len n+1), the concatenated sorted adjacency (len 2|E|), and the
// per-vertex labels (len n). The returned slices alias internal storage
// and must not be modified — they exist so the snapshot encoder in
// internal/store can serialize the canonical representation without a
// copy, and so FromCSR can round-trip it.
func (g *Graph) CSR() (offsets []int64, adj []Vertex, labels []Label) {
	return g.offsets, g.adj, g.labels
}

// LabelPairCounts returns the label-pair edge statistics as parallel
// slices sorted by key (key = l1<<32|l2 with l1 <= l2). The QuickSI
// ordering reads these counts; persisting them alongside the CSR lets a
// snapshot load skip the O(|E|) recount.
func (g *Graph) LabelPairCounts() (keys []uint64, counts []int64) {
	keys = make([]uint64, 0, len(g.labelPairEdges))
	for k := range g.labelPairEdges {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	counts = make([]int64, len(keys))
	for i, k := range keys {
		counts[i] = g.labelPairEdges[k]
	}
	return keys, counts
}

// FromCSR constructs a Graph directly from CSR arrays, validating every
// structural invariant the algorithms rely on: offsets monotone from 0
// to len(adj), adjacency strictly sorted per vertex (no duplicates), no
// self-loops, and all ids in range. The provided slices are adopted
// without copying — they may alias read-only storage such as an mmap'd
// snapshot section and must not be modified afterwards.
//
// pairKeys/pairCounts, when non-nil, supply the label-pair edge
// statistics (as produced by LabelPairCounts) and are cross-checked
// against the edge count; nil recomputes them from the adjacency.
func FromCSR(offsets []int64, adj []Vertex, labels []Label, pairKeys []uint64, pairCounts []int64) (*Graph, error) {
	n := len(labels)
	if len(offsets) != n+1 {
		return nil, fmt.Errorf("graph: csr: %d labels need %d offsets, got %d", n, n+1, len(offsets))
	}
	if offsets[0] != 0 {
		return nil, fmt.Errorf("graph: csr: offsets[0] = %d, want 0", offsets[0])
	}
	if offsets[n] != int64(len(adj)) {
		return nil, fmt.Errorf("graph: csr: offsets[%d] = %d, want adjacency length %d", n, offsets[n], len(adj))
	}
	if len(adj)%2 != 0 {
		return nil, fmt.Errorf("graph: csr: odd adjacency length %d", len(adj))
	}
	g := &Graph{
		offsets:        offsets,
		adj:            adj,
		labels:         labels,
		byLabel:        make(map[Label][]Vertex),
		labelPairEdges: make(map[uint64]int64),
	}
	for v := 0; v < n; v++ {
		d := offsets[v+1] - offsets[v]
		if d < 0 {
			return nil, fmt.Errorf("graph: csr: offsets decrease at vertex %d", v)
		}
		if int(d) > g.maxDegree {
			g.maxDegree = int(d)
		}
		ns := adj[offsets[v]:offsets[v+1]]
		for i, w := range ns {
			if int(w) >= n {
				return nil, fmt.Errorf("graph: csr: vertex %d lists neighbor %d outside 0..%d", v, w, n-1)
			}
			if w == Vertex(v) {
				return nil, fmt.Errorf("graph: csr: self-loop at vertex %d", v)
			}
			if i > 0 && ns[i-1] >= w {
				return nil, fmt.Errorf("graph: csr: adjacency of vertex %d not strictly sorted at position %d", v, i)
			}
		}
	}
	for v := 0; v < n; v++ {
		l := labels[v]
		g.byLabel[l] = append(g.byLabel[l], Vertex(v))
	}
	if pairKeys != nil || pairCounts != nil {
		if len(pairKeys) != len(pairCounts) {
			return nil, fmt.Errorf("graph: csr: %d pair keys vs %d counts", len(pairKeys), len(pairCounts))
		}
		var total int64
		for i, k := range pairKeys {
			if i > 0 && pairKeys[i-1] >= k {
				return nil, fmt.Errorf("graph: csr: label-pair keys not strictly sorted at %d", i)
			}
			l1, l2 := Label(k>>32), Label(k&0xffffffff)
			if l1 > l2 {
				return nil, fmt.Errorf("graph: csr: label-pair key %d not normalized (l1 > l2)", i)
			}
			if pairCounts[i] <= 0 {
				return nil, fmt.Errorf("graph: csr: non-positive label-pair count at %d", i)
			}
			g.labelPairEdges[k] = pairCounts[i]
			total += pairCounts[i]
		}
		if total != int64(g.NumEdges()) {
			return nil, fmt.Errorf("graph: csr: label-pair counts sum to %d, want |E| = %d", total, g.NumEdges())
		}
	} else {
		g.EachEdge(func(u, v Vertex) bool {
			g.labelPairEdges[labelPairKey(labels[u], labels[v])]++
			return true
		})
	}
	return g, nil
}
