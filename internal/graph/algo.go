package graph

// Structural helpers used by filtering and ordering methods: connectivity,
// BFS spanning trees, 2-core decomposition, and induced subgraph
// extraction.

// IsConnected reports whether g is connected. The empty graph is
// considered connected.
func (g *Graph) IsConnected() bool {
	n := g.NumVertices()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []Vertex{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Neighbors(v) {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// BFSTree is a breadth-first spanning tree of a connected graph rooted at
// Root. Order is the BFS visit order (Order[0] == Root); Parent[v] is the
// tree parent (NoVertex for the root); Depth[v] is the BFS level.
type BFSTree struct {
	Root   Vertex
	Order  []Vertex
	Parent []Vertex
	Depth  []int
}

// NewBFSTree runs a BFS from root. Neighbors are visited in sorted order,
// so the tree is deterministic.
func NewBFSTree(g *Graph, root Vertex) *BFSTree {
	n := g.NumVertices()
	t := &BFSTree{
		Root:   root,
		Order:  make([]Vertex, 0, n),
		Parent: make([]Vertex, n),
		Depth:  make([]int, n),
	}
	for i := range t.Parent {
		t.Parent[i] = NoVertex
		t.Depth[i] = -1
	}
	t.Depth[root] = 0
	t.Order = append(t.Order, root)
	for head := 0; head < len(t.Order); head++ {
		v := t.Order[head]
		for _, w := range g.Neighbors(v) {
			if t.Depth[w] < 0 {
				t.Depth[w] = t.Depth[v] + 1
				t.Parent[w] = v
				t.Order = append(t.Order, w)
			}
		}
	}
	return t
}

// MaxDepth returns the deepest BFS level in the tree.
func (t *BFSTree) MaxDepth() int {
	max := 0
	for _, v := range t.Order {
		if t.Depth[v] > max {
			max = t.Depth[v]
		}
	}
	return max
}

// IsTreeEdge reports whether (u, v) is a tree edge of t in either
// direction.
func (t *BFSTree) IsTreeEdge(u, v Vertex) bool {
	return t.Parent[u] == v || t.Parent[v] == u
}

// Children returns, for each vertex, its tree children in BFS order.
func (t *BFSTree) Children() [][]Vertex {
	ch := make([][]Vertex, len(t.Parent))
	for _, v := range t.Order {
		if p := t.Parent[v]; p != NoVertex {
			ch[p] = append(ch[p], v)
		}
	}
	return ch
}

// TwoCore returns a boolean slice marking the vertices in the 2-core of g:
// the maximal subgraph in which every vertex has degree >= 2. Query
// vertices inside the 2-core are the paper's "core vertices".
func (g *Graph) TwoCore() []bool {
	n := g.NumVertices()
	deg := make([]int, n)
	inCore := make([]bool, n)
	queue := make([]Vertex, 0, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(Vertex(v))
		inCore[v] = true
		if deg[v] < 2 {
			queue = append(queue, Vertex(v))
			inCore[v] = false
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, w := range g.Neighbors(v) {
			if inCore[w] {
				deg[w]--
				if deg[w] < 2 {
					inCore[w] = false
					queue = append(queue, w)
				}
			}
		}
	}
	return inCore
}

// CoreSize returns the number of vertices in the 2-core.
func (g *Graph) CoreSize() int {
	n := 0
	for _, in := range g.TwoCore() {
		if in {
			n++
		}
	}
	return n
}

// InducedSubgraph extracts g[verts], the vertex-induced subgraph on the
// given vertex set. It returns the subgraph plus the mapping from new
// vertex ids (0..len(verts)-1) back to the original ids, in the order
// given. Duplicate vertices in verts are an error at Build time only if
// they produce self-loops; callers should pass distinct vertices.
func (g *Graph) InducedSubgraph(verts []Vertex) (*Graph, []Vertex) {
	idx := make(map[Vertex]Vertex, len(verts))
	b := NewBuilder(len(verts), len(verts)*2)
	orig := make([]Vertex, len(verts))
	for i, v := range verts {
		idx[v] = Vertex(i)
		b.AddVertex(g.Label(v))
		orig[i] = v
	}
	for i, v := range verts {
		for _, w := range g.Neighbors(v) {
			j, ok := idx[w]
			if ok && Vertex(i) < j {
				b.AddEdge(Vertex(i), j)
			}
		}
	}
	return b.MustBuild(), orig
}

// DegreesDescending returns the sorted-descending degree sequence of the
// neighbors of v. Glasgow's candidate initialization compares neighbor
// degree sequences.
func (g *Graph) NeighborDegreesDescending(v Vertex, buf []int) []int {
	buf = buf[:0]
	for _, w := range g.Neighbors(v) {
		buf = append(buf, g.Degree(w))
	}
	// insertion sort descending; neighbor lists are short for queries and
	// this avoids an interface-based sort in a hot path.
	for i := 1; i < len(buf); i++ {
		x := buf[i]
		j := i - 1
		for j >= 0 && buf[j] < x {
			buf[j+1] = buf[j]
			j--
		}
		buf[j+1] = x
	}
	return buf
}
