// Package graph provides the labeled undirected graph substrate shared by
// every subgraph matching algorithm in this repository.
//
// Graphs are stored in compressed sparse row (CSR) form with sorted
// adjacency lists, which makes edge existence checks O(log d) via binary
// search and set intersections over neighbor lists linear-time merges. A
// label index (label -> sorted vertex list) and label-pair edge statistics
// are computed at build time; they back the LDF filter and the QuickSI
// ordering method respectively.
package graph

import (
	"fmt"
	"sort"
)

// Vertex identifies a vertex. Vertices of a graph with n vertices are
// 0..n-1.
type Vertex = uint32

// Label is a vertex label drawn from a small label set Sigma.
type Label = uint32

// NoVertex is the sentinel "no vertex" value used throughout the module.
const NoVertex = ^Vertex(0)

// Graph is an immutable undirected vertex-labeled graph in CSR form.
// The zero value is an empty graph; use a Builder or the io helpers to
// construct non-trivial instances.
type Graph struct {
	offsets   []int64  // len n+1; adj[offsets[v]:offsets[v+1]] are v's neighbors
	adj       []Vertex // sorted within each vertex's slice
	labels    []Label  // len n
	byLabel   map[Label][]Vertex
	maxDegree int

	// labelPairEdges counts, for each unordered label pair (l1<=l2), the
	// number of edges whose endpoint labels are {l1,l2}. Used by the
	// QuickSI infrequent-edge-first ordering.
	labelPairEdges map[uint64]int64
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.labels) }

// NumEdges returns the number of undirected edges |E|.
func (g *Graph) NumEdges() int { return len(g.adj) / 2 }

// Degree returns the degree of v.
func (g *Graph) Degree(v Vertex) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// MaxDegree returns the maximum vertex degree in the graph.
func (g *Graph) MaxDegree() int { return g.maxDegree }

// AverageDegree returns 2|E| / |V|, or 0 for the empty graph.
func (g *Graph) AverageDegree() float64 {
	if len(g.labels) == 0 {
		return 0
	}
	return float64(len(g.adj)) / float64(len(g.labels))
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v Vertex) []Vertex {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// Label returns the label of v.
func (g *Graph) Label(v Vertex) Label { return g.labels[v] }

// Labels returns the label slice indexed by vertex. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Labels() []Label { return g.labels }

// NumLabels returns the number of distinct labels present in the graph.
func (g *Graph) NumLabels() int { return len(g.byLabel) }

// VerticesWithLabel returns the sorted list of vertices carrying label l.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) VerticesWithLabel(l Label) []Vertex { return g.byLabel[l] }

// LabelFrequency returns the number of vertices carrying label l.
func (g *Graph) LabelFrequency(l Label) int { return len(g.byLabel[l]) }

// HasEdge reports whether the undirected edge (u, v) exists. It binary
// searches the smaller adjacency list.
func (g *Graph) HasEdge(u, v Vertex) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// LabelPairEdgeCount returns the number of edges whose endpoint labels are
// {l1, l2} (unordered).
func (g *Graph) LabelPairEdgeCount(l1, l2 Label) int64 {
	return g.labelPairEdges[labelPairKey(l1, l2)]
}

// EachEdge calls fn once per undirected edge with u < v. Iteration stops
// early if fn returns false.
func (g *Graph) EachEdge(fn func(u, v Vertex) bool) {
	for u := 0; u < len(g.labels); u++ {
		for _, v := range g.Neighbors(Vertex(u)) {
			if v > Vertex(u) {
				if !fn(Vertex(u), v) {
					return
				}
			}
		}
	}
}

// Edges returns all undirected edges with u < v in lexicographic order.
func (g *Graph) Edges() [][2]Vertex {
	out := make([][2]Vertex, 0, g.NumEdges())
	g.EachEdge(func(u, v Vertex) bool {
		out = append(out, [2]Vertex{u, v})
		return true
	})
	return out
}

// String summarizes the graph for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{|V|=%d |E|=%d |Sigma|=%d d_avg=%.1f d_max=%d}",
		g.NumVertices(), g.NumEdges(), g.NumLabels(), g.AverageDegree(), g.maxDegree)
}

func labelPairKey(l1, l2 Label) uint64 {
	if l1 > l2 {
		l1, l2 = l2, l1
	}
	return uint64(l1)<<32 | uint64(l2)
}
