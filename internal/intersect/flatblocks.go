package intersect

import "math/bits"

// FlatBlocks is the arena form of the QFilter-style block layout: many
// sets share one keys/words arena, with per-set boundaries in a single
// offsets array (a CSR over blocks). Compared to one *BlockSet per set
// it removes the pointer per set and the two slice headers per set, so
// materializing a candidate space allocates O(edges) objects instead of
// O(candidates) — the layout GSI uses to make block intersection the
// default rather than a variant.
//
// Sets are addressed by index; View returns a zero-copy window into the
// arenas. A FlatBlocks is built in two phases — count blocks per set
// (CountBlocks), allocate exactly (NewFlatBlocks), then encode each set
// into its precomputed range (EncodeSet) — so parallel builders can fill
// disjoint ranges without synchronization and the result is
// byte-identical at any worker count.
type FlatBlocks struct {
	offsets []int32  // len = numSets+1; block range of set i is [offsets[i], offsets[i+1])
	keys    []uint32 // shared sorted block-key arena (value >> 6)
	words   []uint64 // occupancy word per block
}

// BlockView is one set's zero-copy window into a FlatBlocks arena (or
// any keys/words pair). The zero value is "no block layout available";
// kernels treat it as absent, not as an empty set.
type BlockView struct {
	Keys  []uint32
	Words []uint64
}

// Valid reports whether the view carries a block layout. An empty set
// that was materialized still reports true (non-nil zero-length keys).
func (v BlockView) Valid() bool { return v.Keys != nil }

// NumBlocks returns the number of 64-wide blocks in the view.
func (v BlockView) NumBlocks() int { return len(v.Keys) }

// Count returns the number of elements in the view (popcount sum).
func (v BlockView) Count() int {
	n := 0
	for _, w := range v.Words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Elements decodes the view back to a sorted slice, appended to dst.
func (v BlockView) Elements(dst []uint32) []uint32 {
	for i, key := range v.Keys {
		dst = appendBlock(dst, key, v.Words[i])
	}
	return dst
}

// CountBlocks returns how many 64-wide blocks a sorted strictly-
// increasing slice occupies — the pass-1 sizing primitive for the
// two-phase build.
func CountBlocks(sorted []uint32) int {
	n := 0
	for i := 0; i < len(sorted); {
		key := sorted[i] >> 6
		for i < len(sorted) && sorted[i]>>6 == key {
			i++
		}
		n++
	}
	return n
}

// NewFlatBlocks allocates the arena for the given per-set block counts.
// Every set's range starts empty-but-reserved; fill with EncodeSet.
func NewFlatBlocks(blockCounts []int32) *FlatBlocks {
	offsets := make([]int32, len(blockCounts)+1)
	var total int32
	for i, c := range blockCounts {
		offsets[i] = total
		total += c
	}
	offsets[len(blockCounts)] = total
	return &FlatBlocks{
		offsets: offsets,
		keys:    make([]uint32, total),
		words:   make([]uint64, total),
	}
}

// EncodeSet writes set i's block encoding into its reserved arena range.
// The sorted input must occupy exactly the number of blocks counted for
// it in pass 1 (CountBlocks); distinct i are safe to encode concurrently.
func (f *FlatBlocks) EncodeSet(i int, sorted []uint32) {
	pos := f.offsets[i]
	for j := 0; j < len(sorted); {
		key := sorted[j] >> 6
		var w uint64
		for j < len(sorted) && sorted[j]>>6 == key {
			w |= 1 << (sorted[j] & 63)
			j++
		}
		f.keys[pos] = key
		f.words[pos] = w
		pos++
	}
}

// View returns set i's zero-copy window. Views of a fully encoded
// FlatBlocks are always Valid, including empty sets.
func (f *FlatBlocks) View(i int) BlockView {
	lo, hi := f.offsets[i], f.offsets[i+1]
	// Slice from the arena head so an empty range still yields a non-nil
	// Keys (Valid view of an empty set), not a nil slice.
	return BlockView{Keys: f.keys[lo:hi:hi], Words: f.words[lo:hi:hi]}
}

// NumSets returns the number of sets in the arena.
func (f *FlatBlocks) NumSets() int { return len(f.offsets) - 1 }

// NumBlocks returns the total block count across all sets.
func (f *FlatBlocks) NumBlocks() int { return len(f.keys) }

// CountAll returns the total element count across all sets.
func (f *FlatBlocks) CountAll() int {
	n := 0
	for _, w := range f.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// MemoryBytes returns the arena's memory footprint.
func (f *FlatBlocks) MemoryBytes() int {
	return len(f.offsets)*4 + len(f.keys)*4 + len(f.words)*8
}

// IntersectViews intersects two block views, appending the decoded
// sorted result to dst. Balanced block-key lists use a two-pointer
// merge; when one side has GallopThreshold× more blocks the short
// side's keys gallop through the long side's — the block-level analogue
// of the Hybrid slice kernel.
func IntersectViews(dst []uint32, a, b BlockView) []uint32 {
	if len(a.Keys) > len(b.Keys) {
		a, b = b, a
	}
	if len(a.Keys) == 0 {
		return dst
	}
	if len(b.Keys)/len(a.Keys) >= GallopThreshold {
		pos := 0
		for i, key := range a.Keys {
			pos = gallopSearch(b.Keys, pos, key)
			if pos == len(b.Keys) {
				break
			}
			if b.Keys[pos] == key {
				if w := a.Words[i] & b.Words[pos]; w != 0 {
					dst = appendBlock(dst, key, w)
				}
				pos++
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a.Keys) && j < len(b.Keys) {
		switch {
		case a.Keys[i] < b.Keys[j]:
			i++
		case a.Keys[i] > b.Keys[j]:
			j++
		default:
			if w := a.Words[i] & b.Words[j]; w != 0 {
				dst = appendBlock(dst, a.Keys[i], w)
			}
			i++
			j++
		}
	}
	return dst
}

// appendBlock decodes one occupancy word into dst.
func appendBlock(dst []uint32, key uint32, w uint64) []uint32 {
	base := key << 6
	for w != 0 {
		dst = append(dst, base+uint32(bits.TrailingZeros64(w)))
		w &= w - 1
	}
	return dst
}

// CountViews returns the intersection cardinality of two block views
// without decoding, with the same skew switch as IntersectViews.
func CountViews(a, b BlockView) int {
	if len(a.Keys) > len(b.Keys) {
		a, b = b, a
	}
	if len(a.Keys) == 0 {
		return 0
	}
	n := 0
	if len(b.Keys)/len(a.Keys) >= GallopThreshold {
		pos := 0
		for i, key := range a.Keys {
			pos = gallopSearch(b.Keys, pos, key)
			if pos == len(b.Keys) {
				break
			}
			if b.Keys[pos] == key {
				n += bits.OnesCount64(a.Words[i] & b.Words[pos])
				pos++
			}
		}
		return n
	}
	i, j := 0, 0
	for i < len(a.Keys) && j < len(b.Keys) {
		switch {
		case a.Keys[i] < b.Keys[j]:
			i++
		case a.Keys[i] > b.Keys[j]:
			j++
		default:
			n += bits.OnesCount64(a.Words[i] & b.Words[j])
			i++
			j++
		}
	}
	return n
}

// IntersectViewWithSorted intersects a block view with a plain sorted
// slice, appending to dst: each element of b probes the view's keys with
// a monotone cursor. Used mid-k-way when the running intersection is a
// plain slice but the next input has a block layout.
func IntersectViewWithSorted(dst []uint32, a BlockView, b []uint32) []uint32 {
	ai := 0
	for _, x := range b {
		key := x >> 6
		for ai < len(a.Keys) && a.Keys[ai] < key {
			ai++
		}
		if ai == len(a.Keys) {
			break
		}
		if a.Keys[ai] == key && a.Words[ai]&(1<<(x&63)) != 0 {
			dst = append(dst, x)
		}
	}
	return dst
}
