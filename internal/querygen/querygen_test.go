package querygen

import (
	"testing"

	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/rmat"
	"subgraphmatching/internal/testutil"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := rmat.Generate(rmat.Config{NumVertices: 2000, NumEdges: 16000, NumLabels: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGenerateDense(t *testing.T) {
	g := testGraph(t)
	qs, err := Generate(g, Config{NumVertices: 8, Count: 20, Density: Dense, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 20 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if q.NumVertices() != 8 {
			t.Errorf("query has %d vertices", q.NumVertices())
		}
		if !q.IsConnected() {
			t.Error("query not connected")
		}
		if q.AverageDegree() < 3 {
			t.Errorf("dense query has average degree %.2f", q.AverageDegree())
		}
	}
}

func TestGenerateSparse(t *testing.T) {
	g := testGraph(t)
	qs, err := Generate(g, Config{NumVertices: 8, Count: 20, Density: Sparse, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if q.AverageDegree() >= 3 {
			t.Errorf("sparse query has average degree %.2f", q.AverageDegree())
		}
	}
}

func TestQueriesAreSubgraphsOfData(t *testing.T) {
	g := testGraph(t)
	qs, err := Generate(g, Config{NumVertices: 6, Count: 10, Density: Any, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		// Every extracted query must have at least one match in its
		// source graph (itself).
		if n := testutil.BruteForceCount(q, g, 1); n == 0 {
			t.Error("extracted query has no match in the data graph")
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := testGraph(t)
	a, err := Generate(g, Config{NumVertices: 6, Count: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(g, Config{NumVertices: 6, Count: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].NumEdges() != b[i].NumEdges() {
			t.Fatal("same seed produced different queries")
		}
	}
}

func TestErrors(t *testing.T) {
	g := testGraph(t)
	if _, err := Generate(g, Config{NumVertices: 1, Count: 1}); err == nil {
		t.Error("expected error for size 1")
	}
	if _, err := Generate(g, Config{NumVertices: g.NumVertices() + 1, Count: 1}); err == nil {
		t.Error("expected error for oversized query")
	}
	// A path graph cannot yield dense queries.
	path := graph.MustFromEdges(make([]graph.Label, 10),
		[][2]graph.Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9}})
	if _, err := Generate(path, Config{NumVertices: 5, Count: 1, Density: Dense, MaxAttempts: 50}); err == nil {
		t.Error("expected error extracting dense queries from a path")
	}
}

func TestDensityString(t *testing.T) {
	if Any.String() != "any" || Dense.String() != "dense" || Sparse.String() != "sparse" {
		t.Error("Density.String wrong")
	}
}
