package subgraphmatching_test

import (
	"testing"

	sm "subgraphmatching"
)

func TestCompressionRatioAndCount(t *testing.T) {
	// A "blown-up" star: hub plus 6 interchangeable leaves compresses
	// 7 -> 2.
	labels := make([]sm.Label, 7)
	labels[0] = 1
	var edges [][2]sm.Vertex
	for i := 1; i < 7; i++ {
		edges = append(edges, [2]sm.Vertex{0, sm.Vertex(i)})
	}
	g, err := sm.FromEdges(labels, edges)
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := sm.CompressionRatio(g)
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 2.0/7.0 {
		t.Errorf("ratio = %v, want 2/7", ratio)
	}
	// 3-leaf star pattern: 6*5*4 = 120 ordered leaf choices.
	pattern, _ := sm.FromEdges([]sm.Label{1, 0, 0, 0},
		[][2]sm.Vertex{{0, 1}, {0, 2}, {0, 3}})
	got, err := sm.CountCompressed(pattern, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sm.Count(pattern, g, sm.Options{Algorithm: sm.AlgoOptimized})
	if err != nil {
		t.Fatal(err)
	}
	if got != want || got != 120 {
		t.Errorf("compressed count = %d, direct = %d, want 120", got, want)
	}
}

func TestCompressedAgreesOnPaperExample(t *testing.T) {
	q, g := paperGraphs()
	got, err := sm.CountCompressed(q, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("compressed count = %d, want 1", got)
	}
}
