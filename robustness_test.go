package subgraphmatching_test

import (
	"testing"

	sm "subgraphmatching"
	"subgraphmatching/internal/testutil"
)

// The paper assumes |V(q)| >= 3 (smaller queries are trivial), but a
// production library must handle the trivial cases gracefully across
// every preset.
func TestTinyQueriesAllPresets(t *testing.T) {
	g, err := sm.FromEdges(
		[]sm.Label{0, 1, 0, 1},
		[][2]sm.Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	edge, err := sm.FromEdges([]sm.Label{0, 1}, [][2]sm.Vertex{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	wantEdge := testutil.BruteForceCount(edge, g, 0) // 0-1,2-1,2-3,0-3 = 4
	for _, a := range sm.Algorithms() {
		n, err := sm.Count(edge, g, sm.Options{Algorithm: a})
		if err != nil {
			t.Fatalf("%v on single edge: %v", a, err)
		}
		if n != wantEdge {
			t.Errorf("%v on single edge: %d, want %d", a, n, wantEdge)
		}
	}
}

func TestQueryLargerThanData(t *testing.T) {
	small, _ := sm.FromEdges([]sm.Label{0, 0}, [][2]sm.Vertex{{0, 1}})
	big, _ := sm.FromEdges(make([]sm.Label, 4),
		[][2]sm.Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	for _, a := range sm.Algorithms() {
		n, err := sm.Count(big, small, sm.Options{Algorithm: a})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if n != 0 {
			t.Errorf("%v found %d embeddings of a 4-vertex query in a 2-vertex graph", a, n)
		}
	}
}

func TestDataWithIsolatedVertices(t *testing.T) {
	// Data graph with isolated vertices must not break any preset.
	b := sm.NewBuilder(6, 3)
	for i := 0; i < 6; i++ {
		b.AddVertex(0)
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tri, _ := sm.FromEdges(make([]sm.Label, 3), [][2]sm.Vertex{{0, 1}, {1, 2}, {0, 2}})
	for _, a := range sm.Algorithms() {
		n, err := sm.Count(tri, g, sm.Options{Algorithm: a})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if n != 6 {
			t.Errorf("%v: %d embeddings, want 6", a, n)
		}
	}
}

func TestAutomorphicEdgeQuery(t *testing.T) {
	// Single edge with identical endpoint labels: both orientations of
	// every data edge with matching labels.
	g, _ := sm.FromEdges([]sm.Label{5, 5, 5}, [][2]sm.Vertex{{0, 1}, {1, 2}})
	q, _ := sm.FromEdges([]sm.Label{5, 5}, [][2]sm.Vertex{{0, 1}})
	n, err := sm.Count(q, g, sm.Options{Algorithm: sm.AlgoOptimized})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("edge query: %d, want 4", n)
	}
	// Symmetry breaking halves the search but restores the count.
	cfg := sm.Config{Filter: sm.FilterLDF, Order: sm.OrderGQL,
		Local: sm.LocalIntersect, SymmetryBreaking: true}
	n, err = sm.Count(q, g, sm.Options{Custom: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("edge query with symmetry breaking: %d, want 4", n)
	}
}

func TestLargeQueryFailingSetsBoundary(t *testing.T) {
	// A 64-vertex path query is the failing-sets size boundary.
	b := sm.NewBuilder(64, 63)
	for i := 0; i < 64; i++ {
		b.AddVertex(0)
	}
	for i := 1; i < 64; i++ {
		b.AddEdge(sm.Vertex(i-1), sm.Vertex(i))
	}
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Data: a 80-vertex path.
	b2 := sm.NewBuilder(80, 79)
	for i := 0; i < 80; i++ {
		b2.AddVertex(0)
	}
	for i := 1; i < 80; i++ {
		b2.AddEdge(sm.Vertex(i-1), sm.Vertex(i))
	}
	g, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := sm.Config{Filter: sm.FilterLDF, Order: sm.OrderRI,
		Local: sm.LocalIntersect, FailingSets: true}
	n, err := sm.Count(q, g, sm.Options{Custom: &cfg, MaxEmbeddings: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// 17 start offsets x 2 directions = 34 embeddings.
	if n != 34 {
		t.Errorf("64-path in 80-path: %d embeddings, want 34", n)
	}
}
