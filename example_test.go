package subgraphmatching_test

import (
	"fmt"
	"time"

	sm "subgraphmatching"
)

// ExampleMatch demonstrates the basic matching call with the paper's
// recommended configuration.
func ExampleMatch() {
	data, _ := sm.FromEdges(
		[]sm.Label{0, 0, 0, 1},
		[][2]sm.Vertex{{0, 1}, {1, 2}, {0, 2}, {2, 3}},
	)
	query, _ := sm.FromEdges(
		[]sm.Label{0, 0, 0},
		[][2]sm.Vertex{{0, 1}, {1, 2}, {0, 2}},
	)
	res, err := sm.Match(query, data, sm.Options{
		Algorithm:     sm.AlgoOptimized,
		MaxEmbeddings: 100_000,
		TimeLimit:     time.Minute,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("embeddings:", res.Embeddings)
	// Output: embeddings: 6
}

// ExampleFindAll collects explicit embeddings.
func ExampleFindAll() {
	data, _ := sm.FromEdges(
		[]sm.Label{7, 8, 8},
		[][2]sm.Vertex{{0, 1}, {0, 2}},
	)
	query, _ := sm.FromEdges([]sm.Label{7, 8}, [][2]sm.Vertex{{0, 1}})
	matches, _ := sm.FindAll(query, data, sm.Options{Algorithm: sm.AlgoRI}, 0)
	for _, m := range matches {
		fmt.Printf("u0->v%d u1->v%d\n", m[0], m[1])
	}
	// Output:
	// u0->v0 u1->v1
	// u0->v0 u1->v2
}

// ExampleMatch_custom mixes the study's components explicitly.
func ExampleMatch_custom() {
	data, _ := sm.FromEdges(
		[]sm.Label{0, 0, 0, 0},
		[][2]sm.Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	)
	query, _ := sm.FromEdges([]sm.Label{0, 0, 0}, [][2]sm.Vertex{{0, 1}, {1, 2}})
	cfg := sm.Config{
		Filter:      sm.FilterGQL,      // GraphQL's profile + refinement filter
		Order:       sm.OrderRI,        // RI's structural order
		Local:       sm.LocalIntersect, // Algorithm 5 set intersections
		FailingSets: true,              // DP-iso's pruning
	}
	n, _ := sm.Count(query, data, sm.Options{Custom: &cfg})
	fmt.Println(n)
	// Output: 8
}

// ExampleContains answers the containment decision.
func ExampleContains() {
	data, _ := sm.FromEdges([]sm.Label{1, 2, 3}, [][2]sm.Vertex{{0, 1}, {1, 2}})
	query, _ := sm.FromEdges([]sm.Label{1, 2}, [][2]sm.Vertex{{0, 1}})
	ok, _ := sm.Contains(query, data, sm.Options{})
	fmt.Println(ok)
	// Output: true
}

// ExampleGenerateQueries extracts a paper-style query workload from a
// synthetic graph.
func ExampleGenerateQueries() {
	g, _ := sm.GenerateRMAT(sm.RMATConfig{
		NumVertices: 1000, NumEdges: 8000, NumLabels: 4, Seed: 7,
	})
	queries, _ := sm.GenerateQueries(g, sm.QueryConfig{
		NumVertices: 8, Count: 2, Density: sm.QueryDense, Seed: 1,
	})
	for _, q := range queries {
		fmt.Println(q.NumVertices(), "vertices, dense:", q.AverageDegree() >= 3)
	}
	// Output:
	// 8 vertices, dense: true
	// 8 vertices, dense: true
}
