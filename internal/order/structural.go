package order

import (
	"subgraphmatching/internal/graph"
)

// The structure-driven orders: QuickSI, RI and VF2++.

// ComputeQSI implements QuickSI's infrequent-edge-first ordering: the
// query is viewed as a weighted graph where w(u) is the frequency of
// L(u) in G and w(e(u,u')) is the number of data edges whose endpoint
// labels match. The minimum-weight edge seeds the order (endpoints by
// ascending vertex weight); edges crossing the frontier are then taken
// in ascending weight order. Ties break on vertex ids for determinism.
func ComputeQSI(q, g *graph.Graph) []graph.Vertex {
	n := q.NumVertices()
	if n == 1 {
		return []graph.Vertex{0}
	}
	edgeWeight := func(u, v graph.Vertex) int64 {
		return g.LabelPairEdgeCount(q.Label(u), q.Label(v))
	}
	vertexWeight := func(u graph.Vertex) int {
		return g.LabelFrequency(q.Label(u))
	}

	// Seed with the globally lightest edge.
	var su, sv graph.Vertex
	best := int64(-1)
	q.EachEdge(func(u, v graph.Vertex) bool {
		if w := edgeWeight(u, v); best < 0 || w < best {
			best, su, sv = w, u, v
		}
		return true
	})
	if vertexWeight(sv) < vertexWeight(su) {
		su, sv = sv, su
	}
	phi := []graph.Vertex{su, sv}
	in := make([]bool, n)
	in[su], in[sv] = true, true

	for len(phi) < n {
		var bu, bv graph.Vertex // bu in phi, bv outside
		best = -1
		q.EachEdge(func(u, v graph.Vertex) bool {
			if in[u] == in[v] {
				return true
			}
			if in[v] {
				u, v = v, u
			}
			if w := edgeWeight(u, v); best < 0 || w < best || (w == best && v < bv) {
				best, bu, bv = w, u, v
			}
			return true
		})
		_ = bu
		phi = append(phi, bv)
		in[bv] = true
	}
	return phi
}

// ComputeRI implements RI's ordering, which uses only the query
// structure. The start vertex has maximum degree; afterwards the vertex
// with the most neighbors already in the order is picked, with the
// paper's two tie-breaking properties applied in sequence and vertex id
// as the final deterministic tie-break.
func ComputeRI(q *graph.Graph) []graph.Vertex {
	n := q.NumVertices()
	phi := make([]graph.Vertex, 0, n)
	in := make([]bool, n)

	start := graph.Vertex(0)
	for u := 1; u < n; u++ {
		if q.Degree(graph.Vertex(u)) > q.Degree(start) {
			start = graph.Vertex(u)
		}
	}
	phi = append(phi, start)
	in[start] = true

	// tie1: number of vertices in phi adjacent to u that also have a
	// neighbor outside phi.
	tie1 := func(u graph.Vertex) int {
		c := 0
		for _, up := range q.Neighbors(u) {
			if !in[up] {
				continue
			}
			for _, w := range q.Neighbors(up) {
				if !in[w] {
					c++
					break
				}
			}
		}
		return c
	}
	// tie2: neighbors of u outside phi that are not adjacent to phi.
	tie2 := func(u graph.Vertex) int {
		c := 0
		for _, up := range q.Neighbors(u) {
			if in[up] {
				continue
			}
			adjacent := false
			for _, w := range q.Neighbors(up) {
				if in[w] {
					adjacent = true
					break
				}
			}
			if !adjacent {
				c++
			}
		}
		return c
	}

	for len(phi) < n {
		bestU := graph.NoVertex
		var bestKey [3]int
		for u := 0; u < n; u++ {
			uu := graph.Vertex(u)
			if in[u] {
				continue
			}
			back := 0
			for _, up := range q.Neighbors(uu) {
				if in[up] {
					back++
				}
			}
			if back == 0 {
				continue // keep prefixes connected
			}
			key := [3]int{back, tie1(uu), tie2(uu)}
			if bestU == graph.NoVertex || keyGreater(key, bestKey) {
				bestU, bestKey = uu, key
			}
		}
		phi = append(phi, bestU)
		in[bestU] = true
	}
	return phi
}

func keyGreater(a, b [3]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] > b[i]
		}
	}
	return false
}

// ComputeVF2PP implements VF2++'s ordering: the root is the vertex whose
// label is rarest in G (largest degree breaking ties); vertices are then
// appended BFS-level by BFS-level, within each level preferring the most
// backward neighbors, then the largest degree, then the rarest label.
func ComputeVF2PP(q, g *graph.Graph) []graph.Vertex {
	n := q.NumVertices()
	root := graph.Vertex(0)
	for u := 1; u < n; u++ {
		uu := graph.Vertex(u)
		fu, fr := g.LabelFrequency(q.Label(uu)), g.LabelFrequency(q.Label(root))
		if fu < fr || (fu == fr && q.Degree(uu) > q.Degree(root)) {
			root = uu
		}
	}
	t := graph.NewBFSTree(q, root)
	phi := make([]graph.Vertex, 0, n)
	in := make([]bool, n)
	for depth := 0; depth <= t.MaxDepth(); depth++ {
		var level []graph.Vertex
		for _, u := range t.Order {
			if t.Depth[u] == depth {
				level = append(level, u)
			}
		}
		for len(level) > 0 {
			bestI := 0
			bestKey := vf2ppKey(q, g, level[0], in)
			for i := 1; i < len(level); i++ {
				if key := vf2ppKey(q, g, level[i], in); keyGreater(key, bestKey) {
					bestI, bestKey = i, key
				}
			}
			u := level[bestI]
			level = append(level[:bestI], level[bestI+1:]...)
			phi = append(phi, u)
			in[u] = true
		}
	}
	return phi
}

func vf2ppKey(q, g *graph.Graph, u graph.Vertex, in []bool) [3]int {
	back := 0
	for _, up := range q.Neighbors(u) {
		if in[up] {
			back++
		}
	}
	// Rarer label = better, so negate the frequency for max-comparison.
	return [3]int{back, q.Degree(u), -g.LabelFrequency(q.Label(u))}
}
