package graph

import (
	"math/rand"
	"testing"
)

// csrTestGraph builds a small labeled graph with a known shape.
func csrTestGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges(
		[]Label{0, 1, 1, 2, 0},
		[][2]Vertex{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 4}, {3, 4}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCSRRoundTrip(t *testing.T) {
	g := csrTestGraph(t)
	offsets, adj, labels := g.CSR()
	keys, counts := g.LabelPairCounts()

	// Adopt copies, not the originals: FromCSR takes ownership.
	g2, err := FromCSR(
		append([]int64(nil), offsets...),
		append([]Vertex(nil), adj...),
		append([]Label(nil), labels...),
		append([]uint64(nil), keys...),
		append([]int64(nil), counts...),
	)
	if err != nil {
		t.Fatal(err)
	}
	if FingerprintOf(g2) != FingerprintOf(g) {
		t.Fatal("FromCSR(CSR(g)) fingerprint differs from g")
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() || g2.NumLabels() != g.NumLabels() {
		t.Fatalf("shape mismatch: %v vs %v", g2, g)
	}
	if g2.MaxDegree() != g.MaxDegree() {
		t.Fatalf("max degree %d, want %d", g2.MaxDegree(), g.MaxDegree())
	}
	for l := Label(0); l < 3; l++ {
		if len(g2.VerticesWithLabel(l)) != len(g.VerticesWithLabel(l)) {
			t.Fatalf("label %d vertex count differs", l)
		}
	}
}

func TestFromCSRRecomputesPairStats(t *testing.T) {
	g := csrTestGraph(t)
	offsets, adj, labels := g.CSR()
	g2, err := FromCSR(
		append([]int64(nil), offsets...),
		append([]Vertex(nil), adj...),
		append([]Label(nil), labels...),
		nil, nil, // force the O(E) recount path
	)
	if err != nil {
		t.Fatal(err)
	}
	k1, c1 := g.LabelPairCounts()
	k2, c2 := g2.LabelPairCounts()
	if len(k1) != len(k2) {
		t.Fatalf("pair count %d, want %d", len(k2), len(k1))
	}
	for i := range k1 {
		if k1[i] != k2[i] || c1[i] != c2[i] {
			t.Fatalf("pair %d: (%d,%d) vs (%d,%d)", i, k2[i], c2[i], k1[i], c1[i])
		}
	}
}

func TestFromCSRRejectsInvalid(t *testing.T) {
	g := csrTestGraph(t)
	base := func() (offsets []int64, adj []Vertex, labels []Label) {
		o, a, l := g.CSR()
		return append([]int64(nil), o...), append([]Vertex(nil), a...), append([]Label(nil), l...)
	}

	cases := []struct {
		name string
		mut  func(offsets []int64, adj []Vertex, labels []Label) ([]int64, []Vertex, []Label)
	}{
		{"short offsets", func(o []int64, a []Vertex, l []Label) ([]int64, []Vertex, []Label) {
			return o[:len(o)-1], a, l
		}},
		{"nonzero first offset", func(o []int64, a []Vertex, l []Label) ([]int64, []Vertex, []Label) {
			o[0] = 1
			return o, a, l
		}},
		{"final offset mismatch", func(o []int64, a []Vertex, l []Label) ([]int64, []Vertex, []Label) {
			o[len(o)-1]--
			return o, a, l
		}},
		{"non-monotone offsets", func(o []int64, a []Vertex, l []Label) ([]int64, []Vertex, []Label) {
			o[1], o[2] = o[2]+2, o[1]
			return o, a, l
		}},
		{"unsorted adjacency", func(o []int64, a []Vertex, l []Label) ([]int64, []Vertex, []Label) {
			a[0], a[1] = a[1], a[0]
			return o, a, l
		}},
		{"out-of-range neighbor", func(o []int64, a []Vertex, l []Label) ([]int64, []Vertex, []Label) {
			a[0] = Vertex(len(l))
			return o, a, l
		}},
		{"self loop", func(o []int64, a []Vertex, l []Label) ([]int64, []Vertex, []Label) {
			a[0] = 0 // vertex 0's first neighbor becomes itself
			return o, a, l
		}},
		{"odd adjacency length", func(o []int64, a []Vertex, l []Label) ([]int64, []Vertex, []Label) {
			o[len(o)-1]--
			for i := 1; i < len(o)-1; i++ {
				if o[i] > o[len(o)-1] {
					o[i] = o[len(o)-1]
				}
			}
			return o, a[:len(a)-1], l
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o, a, l := base()
			o, a, l = tc.mut(o, a, l)
			if _, err := FromCSR(o, a, l, nil, nil); err == nil {
				t.Fatalf("FromCSR accepted %s", tc.name)
			}
		})
	}

	t.Run("bad pair stats", func(t *testing.T) {
		o, a, l := base()
		keys, counts := g.LabelPairCounts()
		keys = append([]uint64(nil), keys...)
		counts = append([]int64(nil), counts...)
		counts[0]++ // sum no longer equals |E|
		if _, err := FromCSR(o, a, l, keys, counts); err == nil {
			t.Fatal("FromCSR accepted pair counts that do not sum to |E|")
		}
	})
}

func TestFromCSRRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(60)
		b := NewBuilder(n, 3*n)
		for v := 0; v < n; v++ {
			b.AddVertex(Label(rng.Intn(4)))
		}
		for i := 0; i < 3*n; i++ {
			u, v := Vertex(rng.Intn(n)), Vertex(rng.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		o, a, l := g.CSR()
		k, c := g.LabelPairCounts()
		g2, err := FromCSR(
			append([]int64(nil), o...), append([]Vertex(nil), a...), append([]Label(nil), l...),
			append([]uint64(nil), k...), append([]int64(nil), c...))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if FingerprintOf(g2) != FingerprintOf(g) {
			t.Fatalf("trial %d: fingerprint mismatch", trial)
		}
	}
}
