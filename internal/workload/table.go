package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"time"
)

// Table renders aligned plain-text tables for the experiment reports.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as RFC-4180-ish CSV: a title comment line,
// the header, then the rows.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FmtMS formats a duration as milliseconds with adaptive precision, the
// paper's time unit.
func FmtMS(d time.Duration) string {
	ms := float64(d) / float64(time.Millisecond)
	switch {
	case ms == 0:
		return "0"
	case ms < 0.1:
		return fmt.Sprintf("%.3f", ms)
	case ms < 10:
		return fmt.Sprintf("%.2f", ms)
	default:
		return fmt.Sprintf("%.1f", ms)
	}
}

// FmtCount formats large counts compactly.
func FmtCount(x float64) string {
	switch {
	case x >= 1e6:
		return fmt.Sprintf("%.2fM", x/1e6)
	case x >= 1e3:
		return fmt.Sprintf("%.1fK", x/1e3)
	default:
		return fmt.Sprintf("%.1f", x)
	}
}

// FmtBytes formats byte counts compactly.
func FmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// FmtSpeedup formats a speedup ratio.
func FmtSpeedup(x float64) string {
	if x >= 100 {
		return fmt.Sprintf("%.0fx", x)
	}
	return fmt.Sprintf("%.2fx", x)
}
