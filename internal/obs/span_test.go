package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanBuildAndRender(t *testing.T) {
	root := StartSpan("match")
	pre := NewSpan("preprocess", time.Now(), 3*time.Millisecond)
	pre.SetAttr("filter", "GQL")
	pre.AddChild(NewSpan("filter", time.Now(), 2*time.Millisecond).SetAttr("candidates", 42))
	pre.AddChild(NewSpan("order", time.Now(), time.Millisecond))
	root.AddChild(pre)
	root.AddChild(nil) // ignored
	root.End()

	if got := len(root.Children); got != 1 {
		t.Fatalf("children = %d, want 1 (nil ignored)", got)
	}
	if root.Child("preprocess") != pre || root.Child("nope") != nil {
		t.Fatal("Child lookup broken")
	}
	if pre.ChildrenDuration() != 3*time.Millisecond {
		t.Fatalf("ChildrenDuration = %v", pre.ChildrenDuration())
	}
	if pre.Attr("filter") != "GQL" || pre.Attr("absent") != nil {
		t.Fatal("Attr lookup broken")
	}
	pre.SetAttr("filter", "CFL") // replace, not append
	if len(pre.Attrs) != 1 || pre.Attr("filter") != "CFL" {
		t.Fatalf("SetAttr replace broken: %+v", pre.Attrs)
	}

	var b strings.Builder
	root.Render(&b)
	out := b.String()
	for _, want := range []string{"match", "  preprocess", "    filter", "candidates=42", "filter=CFL"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	s := NewSpan("enumerate", time.Now(), 1500*time.Nanosecond)
	s.SetAttr("nodes", int64(99))
	s.SetAttr("local", "intersect")
	s.AddChild(NewSpan("worker", time.Now(), 0).SetAttr("tasks", int64(4)))

	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"duration_ns":1500`) ||
		!strings.Contains(string(data), `"nodes":99`) {
		t.Fatalf("unexpected JSON: %s", data)
	}
	var back Span
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "enumerate" || back.Duration != 1500*time.Nanosecond {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	// JSON numbers come back as float64; values must survive as numbers.
	if v, ok := back.Attr("nodes").(float64); !ok || v != 99 {
		t.Fatalf("nodes attr = %#v", back.Attr("nodes"))
	}
	if len(back.Children) != 1 || back.Children[0].Name != "worker" {
		t.Fatalf("children lost: %+v", back.Children)
	}
}
