// Package order implements the query-vertex ordering methods of the
// study (paper Section 3.2): QuickSI's infrequent-edge-first order,
// GraphQL's left-deep greedy order, CFL's path-based order, CECI's BFS
// order, DP-iso's static BFS order plus the weight array for its adaptive
// selection, RI's purely structural order, and VF2++'s level-by-level
// order. A uniform random-order sampler supports the spectrum analysis of
// Figure 14.
package order

import (
	"fmt"

	"subgraphmatching/internal/graph"
)

// Method selects an ordering method.
type Method uint8

const (
	// QSI is QuickSI's infrequent-edge-first ordering.
	QSI Method = iota
	// GQL is GraphQL's left-deep join ordering (greedy min |C(u)|).
	GQL
	// CFL is CFL's path-based ordering with path-count estimation.
	CFL
	// CECI uses the BFS traversal order from CECI's root.
	CECI
	// DPIso is DP-iso's BFS order delta; pair with the enumerator's
	// adaptive mode and BuildDPWeights for the full adaptive behaviour.
	DPIso
	// RI is RI's structure-only ordering.
	RI
	// VF2PP is VF2++'s BFS-level ordering.
	VF2PP
)

var methodNames = map[Method]string{
	QSI: "QSI", GQL: "GQL", CFL: "CFL", CECI: "CECI",
	DPIso: "DPiso", RI: "RI", VF2PP: "VF2PP",
}

func (m Method) String() string {
	if s, ok := methodNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Method(%d)", m)
}

// ParseMethod maps a name (as printed by String) back to a Method.
func ParseMethod(s string) (Method, error) {
	for m, name := range methodNames {
		if name == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("order: unknown method %q", s)
}

// Methods lists all ordering methods in declaration order.
func Methods() []Method { return []Method{QSI, GQL, CFL, CECI, DPIso, RI, VF2PP} }

// Compute generates a matching order with method m. The candidate sets
// cand are consulted by the candidate-size-driven methods (GQL, CFL,
// CECI, DPIso); the structure-only methods (QSI, RI, VF2PP) ignore them
// and may receive nil.
func Compute(m Method, q, g *graph.Graph, cand [][]uint32) ([]graph.Vertex, error) {
	return ComputeWorkers(m, q, g, cand, 1)
}

// ComputeWorkers is Compute with the root-selection scans of the
// BFS-rooted methods (CECI, DPIso) fanned out over `workers`
// goroutines; the orders are identical for every workers value. The
// remaining methods are inherently sequential (greedy extensions) and
// ignore workers.
func ComputeWorkers(m Method, q, g *graph.Graph, cand [][]uint32, workers int) ([]graph.Vertex, error) {
	if q.NumVertices() == 0 {
		return nil, fmt.Errorf("order: empty query graph")
	}
	needCand := m == GQL || m == CFL || m == CECI || m == DPIso
	if needCand && len(cand) != q.NumVertices() {
		return nil, fmt.Errorf("order: method %v needs candidate sets", m)
	}
	switch m {
	case QSI:
		return ComputeQSI(q, g), nil
	case GQL:
		return ComputeGQL(q, cand), nil
	case CFL:
		return ComputeCFL(q, g, cand), nil
	case CECI:
		return ComputeCECIWorkers(q, g, workers), nil
	case DPIso:
		return ComputeDPIsoWorkers(q, g, workers), nil
	case RI:
		return ComputeRI(q), nil
	case VF2PP:
		return ComputeVF2PP(q, g), nil
	default:
		return nil, fmt.Errorf("order: unknown method %v", m)
	}
}

// Validate checks that phi is a permutation of V(q) whose every prefix
// beyond the first vertex is connected (each vertex has a backward
// neighbor).
func Validate(q *graph.Graph, phi []graph.Vertex) error {
	n := q.NumVertices()
	if len(phi) != n {
		return fmt.Errorf("order: length %d, want %d", len(phi), n)
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, u := range phi {
		if int(u) >= n || pos[u] >= 0 {
			return fmt.Errorf("order: not a permutation at position %d", i)
		}
		pos[u] = i
	}
	for i := 1; i < n; i++ {
		u := phi[i]
		ok := false
		for _, un := range q.Neighbors(u) {
			if pos[un] < i {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("order: u%d at position %d has no backward neighbor", u, i)
		}
	}
	return nil
}
