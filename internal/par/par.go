// Package par provides the deterministic task fan-out primitive shared
// by the parallel preprocessing phases (candidate filtering in package
// filter and candidate-space construction in package candspace).
//
// It is the preprocessing analogue of the enumeration scheduler in
// package core, but with a stricter contract on both sides. Results
// must be byte-identical for every worker count, so a task's output may
// depend only on its task index and on state that is immutable for the
// duration of the Run call, never on which worker executed it or in
// which order tasks ran. And the task-to-worker assignment is a static
// round-robin interleave rather than a dynamic cursor: preprocessing
// tasks are pre-chunked to uniform index ranges (so dynamic stealing
// buys little), and a fixed assignment makes the per-worker work
// tallies — and therefore the projected makespan MakespanBound reports —
// a property of the partition itself, reproducible on any host. A
// dynamic cursor's tallies collapse to one worker whenever the tasks
// are shorter than a scheduling quantum on a CPU-constrained runner,
// which says nothing about how the partition would scale. The
// interleave (task i on worker i%workers) stills spreads systematic
// skew, e.g. the tail chunks of each candidate pool being smaller.
package par

import "sync"

// Run executes tasks 0..n-1 across up to `workers` goroutines and
// returns the per-worker work tallies (the summed return values of fn).
// Worker w runs tasks w, w+workers, w+2·workers, …; fn(w, task) returns
// the work units task consumed (any cost proxy — the tallies feed
// MakespanBound).
//
// fn must be safe for concurrent invocation on distinct task indices,
// may use w to index per-worker scratch, and must write only
// task-indexed (or per-worker) state. workers is clamped to [1, n];
// with one worker, fn runs inline on the caller's goroutine.
func Run(workers, n int, fn func(worker, task int) uint64) []uint64 {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	work := make([]uint64, workers)
	if workers == 1 {
		var total uint64
		for t := 0; t < n; t++ {
			total += fn(0, t)
		}
		work[0] = total
		return work
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var total uint64
			for t := w; t < n; t += workers {
				total += fn(w, t)
			}
			work[w] = total
		}(w)
	}
	wg.Wait()
	return work
}

// Frontier is the level-synchronous companion to Run: one worker pool
// whose per-worker scratch survives across many small task waves. The
// tree-indexed filters (CFL, CECI) advance a BFS frontier one
// dependency wave at a time — each wave is a Run-style fan-out whose
// tasks read state frozen at the wave boundary — and re-allocating the
// workers' bitsets and label counters per wave would dwarf the work of
// the small waves. A Frontier allocates the scratch once and threads a
// running per-worker work tally across every wave, so multi-wave
// pipelines report one makespan-meaningful tally like a single Run.
//
// The determinism contract is Run's, held per wave: a task's output may
// depend only on its task index and on state immutable for the duration
// of its wave. Scratch handed to tasks must be reset by the task itself
// before reuse (cheapest: undo only what the task marked).
type Frontier[S any] struct {
	workers int
	scratch []S
	tally   []uint64
}

// NewFrontier builds a pool of `workers` slots, calling scratch(w) once
// per slot. workers is clamped to at least 1.
func NewFrontier[S any](workers int, scratch func(w int) S) *Frontier[S] {
	if workers < 1 {
		workers = 1
	}
	f := &Frontier[S]{
		workers: workers,
		scratch: make([]S, workers),
		tally:   make([]uint64, workers),
	}
	for w := range f.scratch {
		f.scratch[w] = scratch(w)
	}
	return f
}

// Workers returns the pool's worker count.
func (f *Frontier[S]) Workers() int { return f.workers }

// Wave fans tasks 0..n-1 out across the pool and blocks until every
// task has finished — the caller's barrier between dependency waves.
// fn receives the executing worker's scratch and the task index and
// returns the task's work units, accumulated into the pool tally.
func (f *Frontier[S]) Wave(n int, fn func(sc S, task int) uint64) {
	if n <= 0 {
		return
	}
	work := Run(f.workers, n, func(w, t int) uint64 {
		return fn(f.scratch[w], t)
	})
	Accumulate(f.tally, work)
}

// Tally returns the per-worker work accumulated across all waves so
// far. The slice is live — callers should copy or Accumulate it.
func (f *Frontier[S]) Tally() []uint64 { return f.tally }

// MakespanBound returns sum/max over the per-worker tallies: the speedup
// this work distribution would admit on unconstrained cores (the same
// metric Result.WorkerNodes feeds for enumeration). It returns 1 for
// empty or all-zero tallies.
func MakespanBound(work []uint64) float64 {
	var total, max uint64
	for _, w := range work {
		total += w
		if w > max {
			max = w
		}
	}
	if max == 0 {
		return 1
	}
	return float64(total) / float64(max)
}

// Accumulate adds src elementwise into dst (which must be at least as
// long as src) so multi-phase pipelines can merge per-phase tallies into
// one per-worker total.
func Accumulate(dst, src []uint64) {
	for i, v := range src {
		dst[i] += v
	}
}
