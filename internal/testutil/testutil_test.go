package testutil

import (
	"math/rand"
	"testing"

	"subgraphmatching/internal/graph"
)

// The fixtures anchor every other test suite, so they get verified
// themselves.

func TestPaperGraphShapes(t *testing.T) {
	q, g := PaperQuery(), PaperData()
	if q.NumVertices() != 4 || q.NumEdges() != 5 {
		t.Fatalf("paper query is %v", q)
	}
	if g.NumVertices() != 13 || g.NumEdges() != 19 {
		t.Fatalf("paper data graph is %v", g)
	}
	if !q.IsConnected() {
		t.Error("paper query must be connected")
	}
}

func TestPaperMatchIsTheOnlyMatch(t *testing.T) {
	q, g := PaperQuery(), PaperData()
	matches := BruteForceMatches(q, g)
	if len(matches) != 1 {
		t.Fatalf("paper example has %d matches, want exactly 1", len(matches))
	}
	want := PaperMatch()
	for u, v := range want {
		if matches[0][u] != v {
			t.Fatalf("brute force found %v, want %v", matches[0], want)
		}
	}
	if !IsValidEmbedding(q, g, want) {
		t.Error("PaperMatch must validate")
	}
}

func TestIsValidEmbeddingRejects(t *testing.T) {
	q, g := PaperQuery(), PaperData()
	cases := []struct {
		name string
		m    []graph.Vertex
	}{
		{"wrong length", []graph.Vertex{0, 4, 5}},
		{"duplicate image", []graph.Vertex{0, 4, 4, 12}},
		{"label mismatch", []graph.Vertex{1, 4, 5, 12}},
		{"missing edge", []graph.Vertex{0, 2, 5, 12}},
		{"out of range", []graph.Vertex{0, 4, 5, 99}},
	}
	for _, c := range cases {
		if IsValidEmbedding(q, g, c.m) {
			t.Errorf("%s: %v should be invalid", c.name, c.m)
		}
	}
}

func TestBruteForceCountsOnKnownGraphs(t *testing.T) {
	// Triangle in K4: 4*3*2 = 24.
	var edges [][2]graph.Vertex
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, [2]graph.Vertex{graph.Vertex(i), graph.Vertex(j)})
		}
	}
	k4 := graph.MustFromEdges(make([]graph.Label, 4), edges)
	tri := graph.MustFromEdges(make([]graph.Label, 3), [][2]graph.Vertex{{0, 1}, {1, 2}, {0, 2}})
	if n := BruteForceCount(tri, k4, 0); n != 24 {
		t.Errorf("triangles in K4 = %d, want 24", n)
	}
	// The limit caps counting.
	if n := BruteForceCount(tri, k4, 10); n != 10 {
		t.Errorf("capped count = %d, want 10", n)
	}
	// Homomorphisms of a path of 3 in K4: 4*3*3 = 36 (middle can't
	// equal its neighbors, ends can coincide).
	path := graph.MustFromEdges(make([]graph.Label, 3), [][2]graph.Vertex{{0, 1}, {1, 2}})
	if n := BruteForceHomomorphismCount(path, k4); n != 36 {
		t.Errorf("path homomorphisms in K4 = %d, want 36", n)
	}
	if iso := BruteForceCount(path, k4, 0); iso != 24 {
		t.Errorf("path isomorphisms in K4 = %d, want 24", iso)
	}
}

func TestRandomGraphConnectedAndSized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomGraph(rng, 50, 100, 4)
	if g.NumVertices() != 50 {
		t.Errorf("NumVertices = %d", g.NumVertices())
	}
	if !g.IsConnected() {
		t.Error("RandomGraph should be connected (spanning tree included)")
	}
	if g.NumLabels() > 4 {
		t.Errorf("NumLabels = %d", g.NumLabels())
	}
}

func TestRandomConnectedQueryProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := RandomGraph(rng, 60, 150, 3)
	found := 0
	for trial := 0; trial < 20; trial++ {
		q := RandomConnectedQuery(rng, g, 5)
		if q == nil {
			continue
		}
		found++
		if q.NumVertices() != 5 || !q.IsConnected() {
			t.Fatalf("bad extracted query %v", q)
		}
		// Induced subgraphs always embed in their source.
		if BruteForceCount(q, g, 1) == 0 {
			t.Fatal("extracted query has no match in its source graph")
		}
	}
	if found == 0 {
		t.Error("no queries extracted in 20 trials")
	}
}
