package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/service"
	"subgraphmatching/internal/testutil"
)

// newManager opens a fresh service + manager over dir. Callers that
// simulate a crash simply abandon the pair: for in-process state that
// is indistinguishable from SIGKILL (the page cache holds everything
// the manager fsynced).
func newManager(t *testing.T, dir string, opts Options) (*service.Service, *Manager) {
	t.Helper()
	opts.Dir = dir
	svc := service.New(service.Config{})
	m, err := Open(svc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return svc, m
}

func randomGraphs(seed int64, n int) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*graph.Graph, n)
	for i := range out {
		out[i] = testutil.RandomGraph(rng, 30+rng.Intn(40), 100+rng.Intn(150), 4)
	}
	return out
}

func TestManagerRestartRecoversGraphs(t *testing.T) {
	dir := t.TempDir()
	gs := randomGraphs(1, 3)

	svc1, m1 := newManager(t, dir, Options{})
	infos := make(map[string]service.GraphInfo)
	for i, g := range gs {
		name := fmt.Sprintf("g%d", i)
		info, err := m1.RegisterGraph(name, g, false)
		if err != nil {
			t.Fatal(err)
		}
		infos[name] = info
	}
	// Replace g1 so recovery must restore the *new* generation.
	info, err := m1.RegisterGraph("g1", gs[2], true)
	if err != nil {
		t.Fatal(err)
	}
	infos["g1"] = info
	if err := m1.UnregisterGraph("g2"); err != nil {
		t.Fatal(err)
	}
	delete(infos, "g2")
	svc1.Close()
	// No m1.Close(): the "process" dies here.

	svc2, m2 := newManager(t, dir, Options{})
	defer m2.Close()
	defer svc2.Close()
	rec := m2.RecoveryStats()
	if rec.Recovered != len(infos) || rec.Skipped != 0 {
		t.Fatalf("recovered %d skipped %d, want %d/0", rec.Recovered, rec.Skipped, len(infos))
	}
	for _, gi := range svc2.Graphs() {
		want, ok := infos[gi.Name]
		if !ok {
			t.Fatalf("recovered unexpected graph %q", gi.Name)
		}
		if gi.Generation != want.Generation {
			t.Fatalf("%s: generation %d, want %d", gi.Name, gi.Generation, want.Generation)
		}
		if gi.Vertices != want.Vertices || gi.Edges != want.Edges {
			t.Fatalf("%s: shape (%d,%d), want (%d,%d)", gi.Name, gi.Vertices, gi.Edges, want.Vertices, want.Edges)
		}
	}
	// Unregistered names must stay gone.
	if got := len(svc2.Graphs()); got != len(infos) {
		t.Fatalf("%d graphs after restart, want %d", got, len(infos))
	}
	// Post-recovery registrations are strictly newer than anything the
	// old process issued — including the unregistered g2.
	ni, err := m2.RegisterGraph("fresh", gs[0], false)
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range infos {
		if ni.Generation <= old.Generation {
			t.Fatalf("new generation %d not above recovered %d", ni.Generation, old.Generation)
		}
	}
}

// TestManagerCrashAtEveryStep drives the write hook to abort a
// registration at each durability step boundary, then reopens the
// directory and checks prefix consistency: either the registration
// never happened, or it is fully there. Nothing in between.
func TestManagerCrashAtEveryStep(t *testing.T) {
	gs := randomGraphs(2, 2)
	for _, step := range []string{"snapshot", "registry", "wal"} {
		t.Run(step, func(t *testing.T) {
			dir := t.TempDir()
			svc1, m1 := newManager(t, dir, Options{})
			base, err := m1.RegisterGraph("base", gs[0], false)
			if err != nil {
				t.Fatal(err)
			}
			m1.testHook = func(s string) error {
				if s == step {
					return fmt.Errorf("injected crash at %s", s)
				}
				return nil
			}
			_, rerr := m1.RegisterGraph("doomed", gs[1], false)
			if rerr == nil {
				t.Fatal("injected crash did not fail the registration")
			}
			if step == "wal" && !errors.Is(rerr, ErrNotDurable) {
				// Registry already applied; the caller must learn the graph
				// is serving but volatile.
				t.Fatalf("wal-step failure returned %v, want ErrNotDurable", rerr)
			}
			svc1.Close() // abandon m1 un-Closed: simulated kill

			svc2, m2 := newManager(t, dir, Options{})
			defer m2.Close()
			defer svc2.Close()
			graphs := svc2.Graphs()
			if len(graphs) != 1 || graphs[0].Name != "base" {
				t.Fatalf("after crash at %s: recovered %+v, want only base", step, graphs)
			}
			if graphs[0].Generation != base.Generation {
				t.Fatalf("base generation %d, want %d", graphs[0].Generation, base.Generation)
			}
			// The next registration still works and lands above base.
			ni, err := m2.RegisterGraph("next", gs[1], false)
			if err != nil {
				t.Fatal(err)
			}
			if ni.Generation <= base.Generation {
				t.Fatalf("generation went backwards: %d after %d", ni.Generation, base.Generation)
			}
		})
	}
}

// TestManagerTornWALRecord injects a partial frame write — the crash
// shape the hook cannot produce — and checks recovery truncates it.
func TestManagerTornWALRecord(t *testing.T) {
	dir := t.TempDir()
	gs := randomGraphs(3, 2)
	svc1, m1 := newManager(t, dir, Options{})
	if _, err := m1.RegisterGraph("keep", gs[0], false); err != nil {
		t.Fatal(err)
	}
	m1.mu.Lock()
	m1.wal.failAfter = 7 // tear the next frame mid-write
	m1.mu.Unlock()
	if _, err := m1.RegisterGraph("torn", gs[1], false); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("torn append returned %v, want ErrNotDurable", err)
	}
	svc1.Close()

	svc2, m2 := newManager(t, dir, Options{})
	defer m2.Close()
	defer svc2.Close()
	rec := m2.RecoveryStats()
	if !rec.TornTail {
		t.Fatal("recovery did not report the torn tail")
	}
	graphs := svc2.Graphs()
	if len(graphs) != 1 || graphs[0].Name != "keep" {
		t.Fatalf("recovered %+v, want only keep", graphs)
	}
}

// TestManagerSkipsCorruptSnapshot flips a byte in a durable snapshot:
// recovery must skip that graph with a warning and restore the rest.
func TestManagerSkipsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	gs := randomGraphs(4, 2)
	svc1, m1 := newManager(t, dir, Options{})
	if _, err := m1.RegisterGraph("good", gs[0], false); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.RegisterGraph("bad", gs[1], false); err != nil {
		t.Fatal(err)
	}
	svc1.Close()

	// Corrupt the snapshot of "bad" (content-addressed by fingerprint).
	badName := snapshotFileName(graph.FingerprintOf(gs[1]))
	path := filepath.Join(dir, snapshotsDir, badName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var warnings int
	svc2, m2 := newManager(t, dir, Options{Logf: func(string, ...any) { warnings++ }})
	defer m2.Close()
	defer svc2.Close()
	rec := m2.RecoveryStats()
	if rec.Recovered != 1 || rec.Skipped != 1 {
		t.Fatalf("recovered %d skipped %d, want 1/1", rec.Recovered, rec.Skipped)
	}
	if warnings == 0 {
		t.Fatal("skipped snapshot produced no warning")
	}
	graphs := svc2.Graphs()
	if len(graphs) != 1 || graphs[0].Name != "good" {
		t.Fatalf("recovered %+v, want only good", graphs)
	}
}

// TestManagerCompaction checks the checkpoint cycle: manifest captures
// state, WAL restarts empty, unreferenced snapshots are collected, and
// a restart off the manifest alone recovers everything.
func TestManagerCompaction(t *testing.T) {
	dir := t.TempDir()
	gs := randomGraphs(5, 3)
	svc1, m1 := newManager(t, dir, Options{CompactEvery: -1})
	for i, g := range gs {
		if _, err := m1.RegisterGraph(fmt.Sprintf("g%d", i), g, false); err != nil {
			t.Fatal(err)
		}
	}
	// Replace g0 with gs[1]'s content so gs[0]'s snapshot becomes garbage.
	if _, err := m1.RegisterGraph("g0", gs[1], true); err != nil {
		t.Fatal(err)
	}
	if err := m1.Compact(); err != nil {
		t.Fatal(err)
	}
	st := m1.Stats()
	if st.WALBytes != 0 || st.WALRecords != 0 {
		t.Fatalf("WAL not empty after compaction: %+v", st)
	}
	// gs[0]'s snapshot is unreferenced now.
	orphan := filepath.Join(dir, snapshotsDir, snapshotFileName(graph.FingerprintOf(gs[0])))
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan snapshot survived compaction: %v", err)
	}
	svc1.Close()

	svc2, m2 := newManager(t, dir, Options{})
	defer m2.Close()
	defer svc2.Close()
	if got := len(svc2.Graphs()); got != 3 {
		t.Fatalf("recovered %d graphs from manifest, want 3", got)
	}
	if rec := m2.RecoveryStats(); rec.WALRecords != 0 {
		t.Fatalf("manifest-only recovery replayed %d WAL records", rec.WALRecords)
	}
}

func TestManagerMMapRecovery(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	dir := t.TempDir()
	g := randomGraphs(6, 1)[0]
	svc1, m1 := newManager(t, dir, Options{})
	if _, err := m1.RegisterGraph("g", g, false); err != nil {
		t.Fatal(err)
	}
	svc1.Close()

	svc2, m2 := newManager(t, dir, Options{MMap: true, VerifyFingerprint: true})
	rec := m2.RecoveryStats()
	if rec.Recovered != 1 {
		t.Fatalf("recovered %d, want 1", rec.Recovered)
	}
	// The recovered graph's CSR aliases the mapping; it must hash
	// identically to the original.
	var restored *graph.Graph
	for _, s := range m2.snaps {
		restored = s.Graph
	}
	if restored == nil {
		t.Fatal("no mmap snapshot held by the manager")
	}
	if graph.FingerprintOf(restored) != graph.FingerprintOf(g) {
		t.Fatal("mmap-recovered graph differs from original")
	}
	svc2.Close()
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFsckReportsCorruption(t *testing.T) {
	dir := t.TempDir()
	gs := randomGraphs(7, 2)
	svc, m := newManager(t, dir, Options{})
	for i, g := range gs {
		if _, err := m.RegisterGraph(fmt.Sprintf("g%d", i), g, false); err != nil {
			t.Fatal(err)
		}
	}
	svc.Close()

	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || len(rep.Graphs) != 2 || rep.WALRecords != 2 {
		t.Fatalf("clean dir: %+v", rep)
	}

	// Corrupt one snapshot; fsck must flag exactly that graph and not
	// modify anything.
	name := snapshotFileName(graph.FingerprintOf(gs[0]))
	path := filepath.Join(dir, snapshotsDir, name)
	data, _ := os.ReadFile(path)
	data[headerSize+4*sectionSize+8] ^= 1
	os.WriteFile(path, data, 0o644)
	before, _ := os.ReadFile(filepath.Join(dir, walName))

	rep, err = Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 1 {
		t.Fatalf("corrupted dir: %d errors, want 1", rep.Errors)
	}
	after, _ := os.ReadFile(filepath.Join(dir, walName))
	if string(before) != string(after) {
		t.Fatal("fsck modified the WAL")
	}
	m.Close()
}

// TestStoreStress churns register/replace/unregister through the
// manager under -race (make race-stress) and verifies a final restart
// reconstructs the surviving state exactly.
func TestStoreStress(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(99))
	pool := randomGraphs(8, 4)
	svc1, m1 := newManager(t, dir, Options{CompactEvery: 8})
	live := make(map[string]service.GraphInfo)
	iters := 120
	if testing.Short() {
		iters = 30
	}
	for i := 0; i < iters; i++ {
		name := fmt.Sprintf("g%d", rng.Intn(6))
		g := pool[rng.Intn(len(pool))]
		switch rng.Intn(3) {
		case 0, 1:
			_, exists := live[name]
			info, err := m1.RegisterGraph(name, g, exists)
			if err != nil {
				t.Fatalf("iter %d register %s: %v", i, name, err)
			}
			live[name] = info
		case 2:
			err := m1.UnregisterGraph(name)
			if _, exists := live[name]; exists {
				if err != nil {
					t.Fatalf("iter %d unregister %s: %v", i, name, err)
				}
				delete(live, name)
			} else if err == nil {
				t.Fatalf("iter %d: unregistering absent %s succeeded", i, name)
			}
		}
	}
	svc1.Close()

	svc2, m2 := newManager(t, dir, Options{})
	defer m2.Close()
	defer svc2.Close()
	graphs := svc2.Graphs()
	if len(graphs) != len(live) {
		t.Fatalf("recovered %d graphs, want %d", len(graphs), len(live))
	}
	for _, gi := range graphs {
		want := live[gi.Name]
		if gi.Generation != want.Generation || gi.Vertices != want.Vertices || gi.Edges != want.Edges {
			t.Fatalf("%s: %+v, want %+v", gi.Name, gi, want)
		}
	}
}
