package glasgow

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/testutil"
)

func TestPaperExample(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	var got []uint32
	st, err := Solve(q, g, Options{OnMatch: func(m []uint32) bool {
		got = append([]uint32(nil), m...)
		return true
	}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Embeddings != 1 {
		t.Fatalf("Embeddings = %d, want 1", st.Embeddings)
	}
	want := testutil.PaperMatch()
	for u, v := range want {
		if got[u] != v {
			t.Fatalf("match = %v, want %v", got, want)
		}
	}
	if st.MemoryBytes <= 0 {
		t.Error("MemoryBytes should be positive")
	}
}

func TestAgreementWithBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 12+rng.Intn(15), 30+rng.Intn(40), 2+rng.Intn(3))
		q := testutil.RandomConnectedQuery(rng, g, 3+rng.Intn(4))
		if q == nil {
			return true
		}
		want := testutil.BruteForceCount(q, g, 0)
		valid := true
		st, err := Solve(q, g, Options{OnMatch: func(m []uint32) bool {
			if !testutil.IsValidEmbedding(q, g, m) {
				valid = false
				return false
			}
			return true
		}})
		if err != nil {
			t.Logf("Solve: %v", err)
			return false
		}
		if !valid {
			t.Logf("invalid embedding (seed %d)", seed)
			return false
		}
		if st.Embeddings != want {
			t.Logf("Embeddings = %d, brute force %d (seed %d)", st.Embeddings, want, seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMemoryBudgetExceeded(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	_, err := Solve(q, g, Options{MemoryBudget: 16})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestMaxEmbeddings(t *testing.T) {
	// Unlabeled triangle in K6: 6*5*4 = 120 embeddings.
	var edges [][2]graph.Vertex
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			edges = append(edges, [2]graph.Vertex{graph.Vertex(i), graph.Vertex(j)})
		}
	}
	g := graph.MustFromEdges(make([]graph.Label, 6), edges)
	q := graph.MustFromEdges(make([]graph.Label, 3), [][2]graph.Vertex{{0, 1}, {1, 2}, {0, 2}})
	st, err := Solve(q, g, Options{MaxEmbeddings: 7})
	if err != nil {
		t.Fatal(err)
	}
	if st.Embeddings != 7 || !st.LimitHit {
		t.Errorf("Embeddings=%d LimitHit=%v", st.Embeddings, st.LimitHit)
	}
	st, err = Solve(q, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Embeddings != 120 {
		t.Errorf("uncapped Embeddings=%d, want 120", st.Embeddings)
	}
}

func TestTimeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := testutil.RandomGraph(rng, 300, 6000, 1)
	q := graph.MustFromEdges(make([]graph.Label, 6),
		[][2]graph.Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	st, err := Solve(q, g, Options{TimeLimit: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !st.TimedOut || st.Solved() {
		t.Errorf("expected timeout, got %+v", st)
	}
}

func TestNoMatchesEmptyDomain(t *testing.T) {
	// Query label absent from the data graph.
	q := graph.MustFromEdges([]graph.Label{9, 9, 9}, [][2]graph.Vertex{{0, 1}, {1, 2}})
	st, err := Solve(q, testutil.PaperData(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Embeddings != 0 {
		t.Errorf("Embeddings = %d, want 0", st.Embeddings)
	}
}

func TestRejectsDisconnectedQuery(t *testing.T) {
	q := graph.MustFromEdges([]graph.Label{0, 0, 0}, [][2]graph.Vertex{{0, 1}})
	if _, err := Solve(q, testutil.PaperData(), Options{}); err == nil {
		t.Error("expected error for disconnected query")
	}
}

func TestEmptyQuery(t *testing.T) {
	q := graph.MustFromEdges(nil, nil)
	st, err := Solve(q, testutil.PaperData(), Options{})
	if err != nil || st.Embeddings != 0 {
		t.Errorf("empty query: %v %+v", err, st)
	}
}

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{[]int{5, 3, 1}, []int{4, 2}, true},
		{[]int{5, 3}, []int{4, 4}, false},
		{[]int{2}, []int{1, 1}, false},
		{nil, nil, true},
	}
	for _, c := range cases {
		if got := dominates(c.a, c.b); got != c.want {
			t.Errorf("dominates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestParallelAgreesWithSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 15+rng.Intn(15), 40+rng.Intn(40), 2)
		q := testutil.RandomConnectedQuery(rng, g, 3+rng.Intn(3))
		if q == nil {
			return true
		}
		seq, err := Solve(q, g, Options{})
		if err != nil {
			return false
		}
		for _, workers := range []int{2, 5} {
			par, err := Solve(q, g, Options{Parallel: workers})
			if err != nil {
				t.Logf("parallel: %v", err)
				return false
			}
			if par.Embeddings != seq.Embeddings {
				t.Logf("parallel(%d) = %d, sequential = %d (seed %d)",
					workers, par.Embeddings, seq.Embeddings, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestParallelCapExact(t *testing.T) {
	var edges [][2]graph.Vertex
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			edges = append(edges, [2]graph.Vertex{graph.Vertex(i), graph.Vertex(j)})
		}
	}
	g := graph.MustFromEdges(make([]graph.Label, 8), edges)
	q := graph.MustFromEdges(make([]graph.Label, 3), [][2]graph.Vertex{{0, 1}, {1, 2}, {0, 2}})
	st, err := Solve(q, g, Options{Parallel: 4, MaxEmbeddings: 11})
	if err != nil {
		t.Fatal(err)
	}
	if st.Embeddings != 11 || !st.LimitHit {
		t.Errorf("parallel cap: %+v", st)
	}
}

func TestParallelMemoryBudgetCountsWorkers(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	// Find a budget that admits 1 worker but not 64.
	seqNeed := int64(0)
	if st, err := Solve(q, g, Options{}); err == nil {
		seqNeed = st.MemoryBytes
	} else {
		t.Fatal(err)
	}
	if _, err := Solve(q, g, Options{Parallel: 512, MemoryBudget: seqNeed}); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("expected ErrOutOfMemory for 512 workers at the sequential budget, got %v", err)
	}
}
