package graph

// LabelCounter is a reusable dense counter over labels. The neighbor label
// frequency (NLF) filter repeatedly asks "how many neighbors of v carry
// label l"; allocating a map per check would dominate the filter's cost,
// so callers keep one LabelCounter per goroutine and reset it between
// vertices. Reset cost is proportional to the number of touched labels,
// not the label-set size.
type LabelCounter struct {
	counts  []int32
	touched []Label
}

// NewLabelCounter returns a counter able to count labels 0..maxLabel.
func NewLabelCounter(maxLabel Label) *LabelCounter {
	return &LabelCounter{counts: make([]int32, int(maxLabel)+1)}
}

// Add increments the count for l.
func (c *LabelCounter) Add(l Label) {
	if c.counts[l] == 0 {
		c.touched = append(c.touched, l)
	}
	c.counts[l]++
}

// Count returns the current count for l.
func (c *LabelCounter) Count(l Label) int32 { return c.counts[l] }

// Touched returns the labels with non-zero counts since the last Reset.
func (c *LabelCounter) Touched() []Label { return c.touched }

// Reset zeroes all touched counts.
func (c *LabelCounter) Reset() {
	for _, l := range c.touched {
		c.counts[l] = 0
	}
	c.touched = c.touched[:0]
}

// CountNeighbors resets the counter and tallies the labels of v's
// neighbors in g.
func (c *LabelCounter) CountNeighbors(g *Graph, v Vertex) {
	c.Reset()
	for _, w := range g.Neighbors(v) {
		c.Add(g.Label(w))
	}
}

// MaxLabelOf returns the maximum label value in g (0 for empty graphs),
// suitable for sizing a LabelCounter that must count labels of either the
// query or the data graph.
func MaxLabelOf(gs ...*Graph) Label {
	var max Label
	for _, g := range gs {
		for _, l := range g.Labels() {
			if l > max {
				max = l
			}
		}
	}
	return max
}
