package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/testutil"
)

func TestAllMethodsProduceValidOrders(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	cand := filter.RunNLF(q, g)
	for _, m := range Methods() {
		phi, err := Compute(m, q, g, cand)
		if err != nil {
			t.Fatalf("Compute(%v): %v", m, err)
		}
		if err := Validate(q, phi); err != nil {
			t.Errorf("Compute(%v) = %v: %v", m, phi, err)
		}
	}
}

func TestOrdersValidOnRandomQueries(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 20+rng.Intn(20), 50+rng.Intn(30), 3)
		q := testutil.RandomConnectedQuery(rng, g, 3+rng.Intn(6))
		if q == nil {
			return true
		}
		cand := filter.RunNLF(q, g)
		for _, m := range Methods() {
			phi, err := Compute(m, q, g, cand)
			if err != nil {
				t.Logf("Compute(%v): %v", m, err)
				return false
			}
			if err := Validate(q, phi); err != nil {
				t.Logf("Compute(%v) = %v: %v", m, phi, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGQLStartsWithSmallestCandidateSet(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	cand := filter.RunNLF(q, g) // |C| = 1, 3, 3, 2
	phi := ComputeGQL(q, cand)
	if phi[0] != 0 {
		t.Errorf("GQL order starts at u%d, want u0 (smallest candidate set)", phi[0])
	}
	// Next frontier choice: neighbors of u0 are u1 (3) and u2 (3); after
	// that u3 (2 candidates) becomes reachable and must win over the
	// remaining 3-candidate vertex.
	if phi[2] != 3 {
		t.Errorf("GQL order = %v, expected u3 at position 2", phi)
	}
}

func TestRIStartsWithMaxDegree(t *testing.T) {
	// Star with center 0 (degree 3).
	q := graph.MustFromEdges([]graph.Label{0, 1, 1, 1}, [][2]graph.Vertex{{0, 1}, {0, 2}, {0, 3}})
	phi := ComputeRI(q)
	if phi[0] != 0 {
		t.Errorf("RI order starts at u%d, want u0", phi[0])
	}
	if err := Validate(q, phi); err != nil {
		t.Error(err)
	}
}

func TestRIPrefersMoreBackwardNeighbors(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	_ = g
	phi := ComputeRI(q)
	// Degrees: u0=2 u1=3 u2=3 u3=2; RI starts at u1 (max degree, lowest
	// id among ties). Then u2 has 1 backward neighbor (u1) as do u0, u3;
	// tie-breaking decides, but the third vertex must close a triangle
	// (2 backward neighbors beat 1).
	if phi[0] != 1 {
		t.Errorf("RI starts at u%d, want u1", phi[0])
	}
	back := 0
	for _, un := range q.Neighbors(phi[2]) {
		if un == phi[0] || un == phi[1] {
			back++
		}
	}
	if back != 2 {
		t.Errorf("RI third vertex %d has %d backward neighbors, want 2 (order %v)", phi[2], back, phi)
	}
}

func TestVF2PPRootHasRarestLabel(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	phi := ComputeVF2PP(q, g)
	// Label frequencies in G: A=1, B=3, C=4, D=3. u0 has label A.
	if phi[0] != 0 {
		t.Errorf("VF2PP root = u%d, want u0 (rarest label)", phi[0])
	}
}

func TestQSIPicksInfrequentEdgeFirst(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	phi := ComputeQSI(q, g)
	// Label-pair edge counts in G: (A,B)=3 (A,C)=3 (B,C)=4 (B,D)=5
	// (C,D)=3... the seed edge is one of the lightest; u0 participates
	// in (A,B) and (A,C), and label A is rarest, so u0 must come first.
	if phi[0] != 0 {
		t.Errorf("QSI order = %v, expected u0 first", phi)
	}
	if err := Validate(q, phi); err != nil {
		t.Error(err)
	}
}

func TestCECIAndDPIsoAreBFSOrders(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	for name, phi := range map[string][]graph.Vertex{
		"CECI":  ComputeCECI(q, g),
		"DPiso": ComputeDPIso(q, g),
	} {
		// Example 3.3/3.4: delta = (u0, u1, u2, u3).
		want := []graph.Vertex{0, 1, 2, 3}
		for i := range want {
			if phi[i] != want[i] {
				t.Errorf("%s order = %v, want %v", name, phi, want)
				break
			}
		}
	}
}

func TestCFLOrderStartsWithCoreRoot(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	cand := filter.RunCFL(q, g)
	phi := ComputeCFL(q, g, cand)
	if phi[0] != 0 {
		t.Errorf("CFL order = %v, expected root u0 first", phi)
	}
	if err := Validate(q, phi); err != nil {
		t.Error(err)
	}
}

func TestCFLOrderSingleVertex(t *testing.T) {
	q := graph.MustFromEdges([]graph.Label{0}, nil)
	g := testutil.PaperData()
	phi := ComputeCFL(q, g, [][]uint32{{0}})
	if len(phi) != 1 || phi[0] != 0 {
		t.Errorf("CFL single-vertex order = %v", phi)
	}
}

func TestRandomOrdersAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	q, _ := testutil.PaperQuery(), testutil.PaperData()
	for i := 0; i < 100; i++ {
		phi := Random(rng, q)
		if err := Validate(q, phi); err != nil {
			t.Fatalf("Random order %v invalid: %v", phi, err)
		}
	}
}

func TestValidateRejectsBadOrders(t *testing.T) {
	q := testutil.PaperQuery()
	cases := [][]graph.Vertex{
		{0, 1},       // wrong length
		{0, 0, 1, 2}, // duplicate
		{0, 1, 2, 9}, // out of range
		{0, 3, 1, 2}, // u3 not adjacent to u0: disconnected prefix
	}
	for _, phi := range cases {
		if err := Validate(q, phi); err == nil {
			t.Errorf("Validate(%v) should fail", phi)
		}
	}
	if err := Validate(q, []graph.Vertex{0, 1, 2, 3}); err != nil {
		t.Errorf("Validate(valid order): %v", err)
	}
}

func TestParseAndString(t *testing.T) {
	for _, m := range Methods() {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMethod(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMethod("bogus"); err == nil {
		t.Error("ParseMethod should reject unknown names")
	}
}

func TestComputeErrors(t *testing.T) {
	g := testutil.PaperData()
	empty := graph.MustFromEdges(nil, nil)
	if _, err := Compute(RI, empty, g, nil); err == nil {
		t.Error("expected error for empty query")
	}
	q := testutil.PaperQuery()
	if _, err := Compute(GQL, q, g, nil); err == nil {
		t.Error("expected error for missing candidates")
	}
}
