package graph

import "testing"

func fpGraph(t *testing.T, labels []Label, edges [][2]Vertex) *Graph {
	t.Helper()
	g, err := FromEdges(labels, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFingerprintDeterministic(t *testing.T) {
	labels := []Label{0, 1, 0, 2}
	edges := [][2]Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	a := fpGraph(t, labels, edges)
	// Same graph built with the edge list permuted: the CSR form is
	// identical, so the fingerprint must be too.
	b := fpGraph(t, labels, [][2]Vertex{{3, 0}, {2, 3}, {0, 1}, {1, 2}})
	if FingerprintOf(a) != FingerprintOf(b) {
		t.Error("edge insertion order changed the fingerprint")
	}
	if FingerprintOf(a) != FingerprintOf(a) {
		t.Error("fingerprint is not deterministic")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fpGraph(t, []Label{0, 1, 0, 2}, [][2]Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	cases := map[string]*Graph{
		"label changed":  fpGraph(t, []Label{0, 1, 1, 2}, [][2]Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 0}}),
		"edge removed":   fpGraph(t, []Label{0, 1, 0, 2}, [][2]Vertex{{0, 1}, {1, 2}, {2, 3}}),
		"edge rerouted":  fpGraph(t, []Label{0, 1, 0, 2}, [][2]Vertex{{0, 1}, {1, 2}, {2, 3}, {1, 3}}),
		"vertex added":   fpGraph(t, []Label{0, 1, 0, 2, 0}, [][2]Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 0}}),
		"empty":          fpGraph(t, nil, nil),
	}
	want := FingerprintOf(base)
	for name, g := range cases {
		if FingerprintOf(g) == want {
			t.Errorf("%s: fingerprint collision with base graph", name)
		}
	}
}

// A prefix-free serialization must distinguish graphs whose concatenated
// adjacency payloads coincide: two isolated vertices vs one vertex with
// a hypothetical padded list would differ in structure, and per-vertex
// length framing has to keep (1,2)(3) distinct from (1)(2,3)-style
// boundary shifts.
func TestFingerprintAdjacencyFraming(t *testing.T) {
	// Path 0-1-2: adjacency (1)(0,2)(1). Star 1-0, 1-2 has the same
	// multiset of edges, same thing — use graphs differing only in how
	// the same degree sum distributes.
	path := fpGraph(t, []Label{0, 0, 0, 0}, [][2]Vertex{{0, 1}, {1, 2}, {2, 3}})
	star := fpGraph(t, []Label{0, 0, 0, 0}, [][2]Vertex{{0, 1}, {0, 2}, {0, 3}})
	if FingerprintOf(path) == FingerprintOf(star) {
		t.Error("path and star share a fingerprint")
	}
}
