package service

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/intersect"
	"subgraphmatching/internal/obs"
	"subgraphmatching/internal/obs/flight"
)

// Config sizes the service. The zero value gets sensible defaults from
// New; a negative PlanCacheSize disables plan caching entirely.
type Config struct {
	// MaxInFlight caps the total enumeration workers running at once
	// across all requests (a request with Parallel=4 holds 4 units).
	// Requests asking for more are clamped to it — admission weight and
	// actual worker count always agree. Default: 2×GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds how many requests may wait for admission; one
	// more arrival is rejected with ErrQueueFull. Default: 64.
	MaxQueue int
	// MaxQueueWait bounds how long one request may wait for admission
	// before ErrQueueTimeout. Default: 5s.
	MaxQueueWait time.Duration
	// PlanCacheSize bounds the plan LRU's entry count — a secondary
	// bound on map/list overhead; the primary bound is PlanCacheBytes.
	// 0 means the default of 256; negative disables caching entirely.
	PlanCacheSize int
	// PlanCacheBytes bounds the plan LRU by resident plan bytes
	// (core.Plan.SizeBytes — candidate sets + CSR + flat block arena).
	// Plans are CSR-dominated and wildly uneven, so the byte budget, not
	// the entry count, is what actually bounds cache memory. 0 means the
	// default of 256 MiB; negative leaves the byte bound off (entry
	// bound only).
	PlanCacheBytes int64
	// MaxGraphShare caps one graph's share of the admission wait queue
	// (per-tenant fairness): a graph already holding
	// MaxGraphShare*MaxQueue queue slots gets ErrTenantSaturated instead
	// of crowding out the other graphs' arrivals. 0 means the default of
	// 0.5; negative (or >= 1) disables the clamp.
	MaxGraphShare float64
	// DefaultTimeLimit applies to requests that set no TimeLimit,
	// mirroring the paper's five-minute per-query budget. Default: 5m.
	DefaultTimeLimit time.Duration
	// SlowQueryLog, when non-nil, receives one NDJSON line (query
	// fingerprint, config, outcome, span breakdown) for every request
	// whose end-to-end latency reaches SlowQueryThreshold. Writes are
	// serialized by the service.
	SlowQueryLog io.Writer
	// SlowQueryThreshold gates the slow-query log. Default when a log
	// writer is set: 1s.
	SlowQueryThreshold time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.MaxQueueWait <= 0 {
		c.MaxQueueWait = 5 * time.Second
	}
	switch {
	case c.PlanCacheSize == 0:
		c.PlanCacheSize = 256
	case c.PlanCacheSize < 0:
		// Caching disabled entirely: zero both bounds so newPlanCache
		// returns nil.
		c.PlanCacheSize = 0
		c.PlanCacheBytes = -1
	}
	switch {
	case c.PlanCacheBytes == 0:
		c.PlanCacheBytes = 256 << 20
	case c.PlanCacheBytes < 0:
		c.PlanCacheBytes = 0 // entry bound only
	}
	if c.MaxGraphShare == 0 {
		c.MaxGraphShare = 0.5
	}
	if c.DefaultTimeLimit <= 0 {
		c.DefaultTimeLimit = 5 * time.Minute
	}
	if c.SlowQueryLog != nil && c.SlowQueryThreshold <= 0 {
		c.SlowQueryThreshold = time.Second
	}
	return c
}

// Request is one matching query against a registered graph.
type Request struct {
	// Graph names the registered data graph.
	Graph string
	// Query is the query graph (connected, non-empty).
	Query *graph.Graph
	// Algorithm picks a preset; Custom overrides it with an explicit
	// component configuration.
	Algorithm core.Algorithm
	Custom    *core.Config
	// Kernel, when not PolicyAdaptive, overrides the resolved config's
	// intersection-kernel policy (preset or Custom) — the request-level
	// form of the kernel= query parameter. The adaptive default cannot
	// be forced back onto a Custom config that pinned a static kernel;
	// set Custom.Kernel directly for that.
	Kernel intersect.Policy
	// MaxEmbeddings, TimeLimit, Parallel, Schedule and Workers carry the
	// meanings of core.Limits. TimeLimit 0 inherits the service default;
	// Parallel is also the request's admission weight.
	MaxEmbeddings uint64
	TimeLimit     time.Duration
	Parallel      int
	Schedule      core.Schedule
	Workers       int
	// Split and SplitFactor carry the meanings of core.Limits: the
	// work-steal task-splitting policy and its engagement threshold.
	// Per-request execution knobs, not part of the plan identity — like
	// Parallel and Schedule, they never enter the plan-cache key.
	Split       core.SplitPolicy
	SplitFactor int
	// OnMatch optionally receives every embedding (see core.Limits);
	// Stream sets it from its sink argument.
	OnMatch func(mapping []uint32) bool
	// NoCache bypasses the plan cache for this request — preprocessing
	// always runs fresh and the plan is not retained. Benchmarks use it
	// to measure the cold path.
	NoCache bool
	// Profile requests EXPLAIN/ANALYZE: the per-filter-stage reduction
	// and per-depth enumeration heat attached to Result.Explain. A
	// per-request limit, not part of the plan identity — profiled and
	// unprofiled requests share cached plans. External engines (Glasgow,
	// VF2, Ullmann) have no plan and ignore it.
	Profile bool
}

// Response pairs the matching result with serving-side facts.
type Response struct {
	Result *core.Result
	// CacheHit reports that preprocessing was skipped because a cached
	// plan served the request. The Result's preprocessing times are zero
	// in that case — the hit is exactly that saving.
	CacheHit bool
	// QueueWait is how long admission control held the request.
	QueueWait time.Duration
}

// Service is the long-lived matching layer: registry + plan cache +
// admission control + metrics. Safe for concurrent use.
type Service struct {
	cfg     Config
	reg     registry
	cache   *planCache
	sem     *semaphore
	builds  buildGroup
	metrics *serviceMetrics
	slowLog *slowQueryLogger
	flights *flight.Recorder
	start   time.Time
	closed  atomic.Bool
}

// New builds a Service; zero-value Config fields get defaults.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:     cfg,
		cache:   newPlanCache(cfg.PlanCacheSize, cfg.PlanCacheBytes),
		sem:     newSemaphore(int64(cfg.MaxInFlight), cfg.MaxGraphShare),
		flights: flight.NewRecorder(0, 0),
		start:   time.Now(),
	}
	s.metrics = newServiceMetrics(s)
	if s.cache != nil {
		// The cache's accounting becomes the registered families.
		s.cache.hits = s.metrics.planCacheHits
		s.cache.misses = s.metrics.planCacheMisses
		s.cache.evictions = s.metrics.planCacheEvictions
		s.cache.purged = s.metrics.planCachePurged
		// Stale-insert fencing reads the live registry generation (no
		// per-name floor state — see planCache.liveGen).
		s.cache.liveGen = func(name string) (uint64, bool) {
			e, err := s.reg.get(name)
			if err != nil {
				return 0, false
			}
			return e.gen, true
		}
	}
	if cfg.SlowQueryLog != nil {
		s.slowLog = &slowQueryLogger{w: cfg.SlowQueryLog, threshold: cfg.SlowQueryThreshold}
		// The slow-query log is a subscriber of the flight recorder, not
		// a separate instrumentation path: the serving path decides on
		// completion whether the request crossed the threshold and
		// attaches the prepared record as the flight's payload; the
		// subscriber does the serialized write.
		s.flights.Subscribe(func(rec *flight.Record) {
			if sq, ok := rec.Payload.(slowQueryRecord); ok {
				s.slowLog.log(sq)
			}
		})
	}
	return s
}

// Flights exposes the always-on flight recorder: the live in-flight
// registry plus the latency-bucketed retention of completed request
// spans. smatchd serves it on /debug/tracez and /debug/requests.
func (s *Service) Flights() *flight.Recorder { return s.flights }

// Metrics exposes the service's metric registry — smatchd serves it on
// /metrics in the Prometheus text format.
func (s *Service) Metrics() *obs.Registry { return s.metrics.reg }

// Close marks the service closed; subsequent Submits fail with
// ErrClosed. In-flight requests finish normally.
func (s *Service) Close() error {
	s.closed.Store(true)
	return nil
}

// RegisterGraph adds (or, with replace, hot-swaps) a named data graph.
// Replacement bumps the generation, so cached plans against the old
// version can never serve new requests; their entries are purged.
func (s *Service) RegisterGraph(name string, g *graph.Graph, replace bool) (GraphInfo, error) {
	info, err := s.reg.register(name, g, replace, time.Now())
	if err != nil {
		return GraphInfo{}, err
	}
	if replace && s.cache != nil {
		s.cache.purgeGraph(name, info.Generation)
	}
	return info, nil
}

// UnregisterGraph removes a named graph and purges its cached plans,
// returning the removed entry's generation (the durable store records
// it in its WAL so replay stays idempotent).
func (s *Service) UnregisterGraph(name string) (uint64, error) {
	gen, err := s.reg.unregister(name)
	if err != nil {
		return 0, err
	}
	if s.cache != nil {
		s.cache.purgeGraph(name, gen+1)
	}
	return gen, nil
}

// RestoreGraph installs a graph recovered from the durable store under
// its original generation, advancing the generation counter past it.
// Plan-cache keys embed the generation, so restored graphs reuse the
// liveGen fencing unchanged; there is nothing to purge because a fresh
// service's cache is empty.
func (s *Service) RestoreGraph(name string, g *graph.Graph, gen uint64, at time.Time) (GraphInfo, error) {
	return s.reg.restore(name, g, gen, at)
}

// SetGenerationFloor raises the registry's generation counter to at
// least gen. Recovery calls it with the durable high-water mark so new
// registrations are strictly monotonic across restarts.
func (s *Service) SetGenerationFloor(gen uint64) {
	s.reg.advanceGeneration(gen)
}

// Graphs lists the registered graphs, name-sorted.
func (s *Service) Graphs() []GraphInfo { return s.reg.list() }

// Stats snapshots the full serving state. The workload counters are
// read back from the metric registry, so this JSON view and /metrics
// always agree.
func (s *Service) Stats() Stats {
	st := Stats{
		Uptime:    time.Since(s.start),
		Graphs:    s.reg.list(),
		Workloads: s.metrics.snapshot(),
		Kernels:   s.metrics.kernelSnapshot(),
		Batches: BatchStats{
			Batches: s.metrics.batches.Value(),
			Items:   s.metrics.batchItems.Value(),
			Groups:  s.metrics.batchGroups.Value(),
			Deduped: s.metrics.batchDeduped.Value(),
		},
	}
	if s.cache != nil {
		st.Cache = s.cache.stats()
	}
	st.Admission.Capacity, st.Admission.InUse, st.Admission.Queued = s.sem.load()
	st.Inflight = s.flights.InflightCount()
	st.DepthSamples = s.metrics.depthNodes.Count()
	return st
}

// algoName labels a request's workload for stats.
func (r *Request) algoName() string {
	if r.Custom != nil {
		return "custom"
	}
	return r.Algorithm.String()
}

// resolveConfig materializes the request's component configuration:
// the algorithm preset (or the explicit Custom override) with the
// request-level kernel-policy override applied.
func (r *Request) resolveConfig(g *graph.Graph) core.Config {
	cfg := core.PresetConfig(r.Algorithm, r.Query, g)
	if r.Custom != nil {
		cfg = *r.Custom
	}
	if r.Kernel != intersect.PolicyAdaptive {
		cfg.Kernel = r.Kernel
	}
	return cfg
}

// preprocessWorkers mirrors core.Limits' resolution so the cache key and
// the actual preprocessing agree on the worker count.
func (r *Request) preprocessWorkers() int {
	w := r.Workers
	if w == 0 {
		w = r.Parallel
	}
	if w < 1 {
		return 1
	}
	return w
}

// Submit runs one request end to end: resolve the graph, validate the
// query strictly (typed errors, not the zero-result tolerance of the
// library-level Match), pass admission control, then serve enumeration
// from a cached plan when one exists. Cancelling ctx stops the search
// cooperatively; a ctx deadline tightens the time limit.
func (s *Service) Submit(ctx context.Context, req Request) (resp *Response, retErr error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if req.Query == nil {
		return nil, ErrNilQuery
	}
	entry, err := s.reg.get(req.Graph)
	if err != nil {
		return nil, err
	}
	algo := req.algoName()
	// Every request past graph resolution is on the flight recorder.
	// The success path finishes the flight explicitly with its span and
	// slow-log payload; Finish is idempotent, so the deferred call only
	// catches the error returns.
	fl := s.flights.Start(entry.name, algo)
	defer func() { fl.Finish(nil, retErr, nil) }()
	if err := core.Validate(req.Query, entry.g); err != nil {
		s.metrics.recordError(entry.name, algo)
		return nil, err
	}
	cfg := req.resolveConfig(entry.g)

	// Admission: hold the request's worker count before doing any work.
	fl.SetPhase("admission")
	began := time.Now()
	weight := int64(req.Parallel)
	if weight < 1 {
		weight = 1
	}
	weight = s.sem.clampWeight(weight)
	// The admitted weight IS the enumeration budget: clamp the request's
	// parallelism to it, so an oversized ?parallel= cannot hold MaxInFlight
	// units yet spawn an engine per root candidate. Preprocessing workers
	// get the same ceiling. Clamping precedes the cache-key computation in
	// matchCached, so the key reflects the worker count actually used.
	if req.Parallel > int(weight) {
		req.Parallel = int(weight)
	}
	if req.Workers > s.cfg.MaxInFlight {
		req.Workers = s.cfg.MaxInFlight
	}
	if err := s.sem.acquire(ctx, entry.name, weight, s.cfg.MaxQueueWait, s.cfg.MaxQueue); err != nil {
		s.metrics.recordRejected(entry.name, algo)
		return nil, err
	}
	defer s.sem.release(weight)
	queueWait := time.Since(began)
	s.metrics.admissionWait.Observe(queueWait.Seconds())

	// Fold the ctx deadline into the time limit after the queue wait —
	// waiting consumes the caller's budget.
	timeLimit := req.TimeLimit
	if timeLimit <= 0 {
		timeLimit = s.cfg.DefaultTimeLimit
	}
	deadline, hasDeadline := ctx.Deadline()
	if hasDeadline {
		remain := time.Until(deadline)
		if remain <= 0 {
			s.metrics.recordTimeout(entry.name, algo)
			return nil, context.DeadlineExceeded
		}
		if remain < timeLimit {
			timeLimit = remain
		}
	}
	var flag atomic.Bool
	stop := context.AfterFunc(ctx, func() { flag.Store(true) })
	defer stop()
	limits := core.Limits{
		MaxEmbeddings: req.MaxEmbeddings,
		TimeLimit:     timeLimit,
		Cancel:        &flag,
		OnMatch:       req.OnMatch,
		Parallel:      req.Parallel,
		Schedule:      req.Schedule,
		Split:         req.Split,
		SplitFactor:   req.SplitFactor,
		Workers:       req.Workers,
		Profile:       req.Profile,
		// The service always traces: spans are built at phase
		// boundaries only, the slow-query log needs them, and callers
		// get the breakdown for free on Result.Trace.
		Trace: true,
	}

	var (
		res      *core.Result
		cacheHit bool
	)
	if cfg.UseGlasgow || cfg.UseVF2 || cfg.UseUllmann {
		// The external engines have no preprocessing plan to cache.
		fl.SetPhase("enumerate")
		res, err = core.Match(req.Query, entry.g, cfg, limits)
	} else {
		res, cacheHit, err = s.matchCached(ctx, entry, req, cfg, limits, fl)
	}
	if err != nil {
		s.metrics.recordError(entry.name, algo)
		return nil, err
	}
	cerr := ctx.Err()
	// An engine timeout driven by the folded ctx deadline can land a
	// scheduler tick before the context's own timer fires — resolve by
	// the wall clock so it deterministically reports DeadlineExceeded.
	if cerr == nil && hasDeadline && res.TimedOut && !time.Now().Before(deadline) {
		cerr = context.DeadlineExceeded
	}
	if cerr != nil {
		if cerr == context.DeadlineExceeded {
			s.metrics.recordTimeout(entry.name, algo)
		} else {
			s.metrics.recordError(entry.name, algo)
		}
		return nil, cerr
	}

	latency := time.Since(began)
	s.metrics.recordSuccess(entry.name, algo, res.Embeddings, cacheHit,
		res.TimedOut, res.LimitHit, latency)
	s.metrics.recordKernels(res.Kernels)
	s.metrics.recordSplit(res.Split, res.Nodes)
	s.metrics.observeDepthNodes(res.Profile)
	s.metrics.observePhases(res.FilterTime, res.BuildTime, res.OrderTime,
		res.EnumTime, !cacheHit)

	// Wrap the request root span: admission wait plus the match tree.
	root := obs.NewSpan("request", began, latency).
		SetAttr("graph", entry.name).
		SetAttr("algo", algo)
	root.AddChild(obs.NewSpan("admission", began, queueWait))
	root.AddChild(res.Trace)
	res.Trace = root

	// Slow path: prepare the log record here (the serving path owns the
	// threshold decision) and hand it to the recorder as the flight's
	// payload — the subscriber registered in New does the write.
	var payload any
	if s.slowLog != nil && latency >= s.slowLog.threshold {
		s.metrics.slowQueries.Inc()
		payload = slowQueryRecord{
			Time:        time.Now().UTC().Format(time.RFC3339Nano),
			Graph:       entry.name,
			Algorithm:   algo,
			QueryFP:     fingerprintHex(graph.FingerprintOf(req.Query)),
			QueryVerts:  req.Query.NumVertices(),
			QueryEdges:  req.Query.NumEdges(),
			Parallel:    req.Parallel,
			Workers:     req.Workers,
			MaxEmb:      req.MaxEmbeddings,
			CacheHit:    cacheHit,
			Embeddings:  res.Embeddings,
			Nodes:       res.Nodes,
			TimedOut:    res.TimedOut,
			LimitHit:    res.LimitHit,
			LatencyNS:   latency.Nanoseconds(),
			QueueWaitNS: queueWait.Nanoseconds(),
			Trace:       res.Trace,
		}
	}
	fl.Finish(root, nil, payload)
	return &Response{Result: res, CacheHit: cacheHit, QueueWait: queueWait}, nil
}

// matchCached serves the pipeline configurations: look the plan up by
// (graph generation, query fingerprint, config), preprocess on a miss —
// with concurrent misses on one key collapsed into a single build —
// then enumerate over the shared read-only plan.
//
// The trace distinguishes the three ways a plan can arrive. A fresh
// build attaches the plan's full "preprocess" span; a cache hit
// attaches a "plan" span covering only the lookup, annotated with the
// preprocessing cost the hit saved; a singleflight follower attaches a
// "plan" span covering its wait on the leader's build. The latter two
// report CacheHit — the request did not pay preprocessing — and keep
// the Result's preprocessing times zero for the same reason.
func (s *Service) matchCached(ctx context.Context, entry *graphEntry, req Request, cfg core.Config, limits core.Limits, fl *flight.Flight) (*core.Result, bool, error) {
	start := time.Now()
	fl.SetPhase("plan")
	plan, src, err := s.planFor(ctx, entry, req.Query, cfg, req.preprocessWorkers(), req.NoCache)
	if err != nil {
		return nil, false, err
	}
	fl.SetPhase("enumerate")
	if src == planBuilt {
		res, err := s.matchFresh(plan, limits, start)
		return res, false, err
	}
	arrived := time.Since(start)
	res, err := core.MatchPlan(plan, limits)
	if err != nil {
		return nil, false, err
	}
	res.Trace = obs.NewSpan("match", start, time.Since(start)).
		AddChild(planSpan(src, plan, start, arrived)).
		AddChild(res.Trace)
	return res, true, nil
}

// planSource says how a request's plan arrived: built fresh by this
// request (it paid preprocessing), found in the cache, or shared from
// another request's in-flight singleflight build.
type planSource int

const (
	planBuilt planSource = iota
	planHit
	planShared
)

// planSpan is the "plan" trace child for the two no-preprocessing
// arrivals, annotated with the cost the reuse saved.
func planSpan(src planSource, plan *core.Plan, start time.Time, d time.Duration) *obs.Span {
	sp := obs.NewSpan("plan", start, d).
		SetAttr("saved_ns", plan.PreprocessTime().Nanoseconds())
	if src == planShared {
		return sp.SetAttr("shared", true)
	}
	return sp.SetAttr("cached", true)
}

// planFor obtains the preprocessing plan for (graph entry, query,
// config): from the cache when enabled, else by building — with
// concurrent cold-key builds collapsed into one by the singleflight
// group. The leader inserts into the cache inside the flight, so a
// request always finds either the flight or the finished plan — one
// build per key, no matter how many requests dogpile it. This is the
// single plan-acquisition path shared by Submit and SubmitBatch (which
// calls it once per batch group).
func (s *Service) planFor(ctx context.Context, entry *graphEntry, q *graph.Graph, cfg core.Config, preWorkers int, noCache bool) (*core.Plan, planSource, error) {
	if s.cache == nil || noCache {
		s.metrics.planBuilds.Inc()
		plan, err := core.Preprocess(q, entry.g, cfg, preWorkers)
		if err != nil {
			return nil, planBuilt, fmt.Errorf("preprocess %q: %w", entry.name, err)
		}
		return plan, planBuilt, nil
	}
	key := planKey{
		graph:   entry.name,
		gen:     entry.gen,
		queryFP: graph.FingerprintOf(q),
		cfgHash: configHash(cfg, preWorkers),
	}
	if plan, ok := s.cache.get(key); ok {
		return plan, planHit, nil
	}
	plan, leader, err := s.builds.do(ctx, key, func() (*core.Plan, error) {
		s.metrics.planBuilds.Inc()
		p, err := core.Preprocess(q, entry.g, cfg, preWorkers)
		if err != nil {
			return nil, fmt.Errorf("preprocess %q: %w", entry.name, err)
		}
		return s.cache.add(key, p), nil
	})
	if err != nil {
		return nil, planBuilt, err
	}
	if leader {
		return plan, planBuilt, nil
	}
	s.metrics.planBuildWaits.Inc()
	return plan, planShared, nil
}

// matchFresh enumerates over a plan this request just built, charging
// it the preprocessing times and attaching the full preprocess span.
func (s *Service) matchFresh(plan *core.Plan, limits core.Limits, start time.Time) (*core.Result, error) {
	res, err := core.MatchPlan(plan, limits)
	if err != nil {
		return nil, err
	}
	res.FilterTime = plan.FilterTime
	res.BuildTime = plan.BuildTime
	res.OrderTime = plan.OrderTime
	res.Trace = obs.NewSpan("match", start, time.Since(start)).
		AddChild(plan.Span).
		AddChild(res.Trace)
	return res, nil
}

// Stream is Submit with a mandatory per-embedding sink. The sink runs
// synchronously inside enumeration — a slow consumer therefore applies
// natural backpressure to the search instead of buffering unboundedly —
// and returning false stops the search early. See core.Limits.OnMatch
// for the slice-reuse rules.
func (s *Service) Stream(ctx context.Context, req Request, sink func(mapping []uint32) bool) (*Response, error) {
	if sink == nil {
		return nil, ErrNilCallback
	}
	req.OnMatch = sink
	return s.Submit(ctx, req)
}
