// Package workload runs query sets through the matching pipeline and
// aggregates the paper's metrics: preprocessing time, enumeration time
// (killed queries recorded at the time limit), candidate counts, memory,
// unsolved counts, standard deviations, and the short/median/long/
// unsolved query categories of Figure 13.
package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"time"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/querygen"
)

// QuerySet is a named collection of query graphs, e.g. Q8D.
type QuerySet struct {
	Name    string
	Density querygen.Density
	Size    int
	Queries []*graph.Graph
}

// StandardSizes returns the paper's query-set sizes for a dataset whose
// largest set is maxSize: 4..20 for Human/WordNet, 4..32 otherwise
// (Table 4).
func StandardSizes(maxSize int) []int {
	if maxSize <= 20 {
		return []int{4, 8, 12, 16, 20}
	}
	return []int{4, 8, 16, 24, 32}
}

// StandardQuerySets generates the paper's query sets for g: Q4 (no
// density class) plus dense and sparse sets for every larger size, with
// perSet queries each. Sets that the data graph cannot supply (e.g. a
// near-tree graph has no dense queries) are skipped silently, mirroring
// the paper's per-dataset set selection.
func StandardQuerySets(g *graph.Graph, maxSize, perSet int, seed int64) []QuerySet {
	var out []QuerySet
	if qs, err := querygen.Generate(g, querygen.Config{
		NumVertices: 4, Count: perSet, Density: querygen.Any, Seed: seed,
	}); err == nil {
		out = append(out, QuerySet{Name: "Q4", Density: querygen.Any, Size: 4, Queries: qs})
	}
	for _, size := range StandardSizes(maxSize) {
		if size == 4 {
			continue
		}
		for _, d := range []querygen.Density{querygen.Dense, querygen.Sparse} {
			suffix := "D"
			if d == querygen.Sparse {
				suffix = "S"
			}
			qs, err := querygen.Generate(g, querygen.Config{
				NumVertices: size, Count: perSet, Density: d,
				Seed: seed + int64(size)*10 + int64(d),
			})
			if err != nil {
				continue
			}
			out = append(out, QuerySet{
				Name:    fmt.Sprintf("Q%d%s", size, suffix),
				Density: d, Size: size, Queries: qs,
			})
		}
	}
	return out
}

// Outcome records one query's execution for aggregation.
type Outcome struct {
	Result *core.Result
	Err    error
}

// Aggregate summarizes a query set's outcomes.
type Aggregate struct {
	Label   string
	Queries int
	Errors  int

	Unsolved int // timed-out queries

	// Times in the paper's convention: enumeration time of unsolved
	// queries is recorded as the time limit.
	MeanPreprocess time.Duration
	MeanEnum       time.Duration
	StdEnum        time.Duration
	MeanTotal      time.Duration

	MeanCandidates float64
	MeanEmbeddings float64
	MeanMemory     int64

	// Figure 13 categories, thresholds relative to the time limit
	// (paper: <1s, <60s, <300s of a 300s limit).
	Short, Median, Long int
}

// Categorize thresholds: shortFrac and medianFrac of the time limit.
const (
	shortFrac  = 1.0 / 300.0
	medianFrac = 60.0 / 300.0
)

// RunEach executes every query of the set and returns per-query
// outcomes; Table 5's fail-all analysis needs the per-query solved
// status across algorithms.
func RunEach(set []*graph.Graph, g *graph.Graph,
	cfgFor func(q *graph.Graph) core.Config, limits core.Limits) []Outcome {
	out := make([]Outcome, len(set))
	for i, q := range set {
		res, err := core.Match(q, g, cfgFor(q), limits)
		out[i] = Outcome{Result: res, Err: err}
	}
	return out
}

// Run executes every query of the set with the config produced by cfgFor
// (called per query so size-dependent presets work) and aggregates.
func Run(label string, set []*graph.Graph, g *graph.Graph,
	cfgFor func(q *graph.Graph) core.Config, limits core.Limits) Aggregate {

	agg := Aggregate{Label: label, Queries: len(set)}
	if len(set) == 0 {
		return agg
	}
	enumTimes := make([]float64, 0, len(set))
	var sumPre, sumEnum, sumTotal time.Duration
	var sumCand, sumEmb float64
	var sumMem int64
	n := 0
	for _, q := range set {
		res, err := core.Match(q, g, cfgFor(q), limits)
		if err != nil {
			agg.Errors++
			continue
		}
		n++
		enum := res.EnumTime
		if res.TimedOut && limits.TimeLimit > 0 {
			enum = limits.TimeLimit // paper: killed queries count at the limit
			agg.Unsolved++
		}
		switch {
		case limits.TimeLimit == 0 || !res.TimedOut && enum < time.Duration(shortFrac*float64(limits.TimeLimit)):
			agg.Short++
		case !res.TimedOut && enum < time.Duration(medianFrac*float64(limits.TimeLimit)):
			agg.Median++
		case !res.TimedOut:
			agg.Long++
		}
		sumPre += res.PreprocessTime()
		sumEnum += enum
		sumTotal += res.PreprocessTime() + enum
		sumCand += res.MeanCandidates
		sumEmb += float64(res.Embeddings)
		sumMem += res.MemoryBytes
		enumTimes = append(enumTimes, float64(enum))
	}
	if n == 0 {
		return agg
	}
	agg.MeanPreprocess = sumPre / time.Duration(n)
	agg.MeanEnum = sumEnum / time.Duration(n)
	agg.MeanTotal = sumTotal / time.Duration(n)
	agg.MeanCandidates = sumCand / float64(n)
	agg.MeanEmbeddings = sumEmb / float64(n)
	agg.MeanMemory = sumMem / int64(n)
	agg.StdEnum = time.Duration(stddev(enumTimes))
	return agg
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	return math.Sqrt(v / float64(len(xs)))
}

// WriteOutcomesCSV writes one CSV row per query outcome: the raw
// per-query data behind the aggregates, for external analysis.
func WriteOutcomesCSV(w io.Writer, label string, outcomes []Outcome) error {
	cw := csv.NewWriter(w)
	header := []string{"label", "query", "embeddings", "nodes",
		"preprocess_ms", "enum_ms", "candidates", "memory_bytes",
		"timed_out", "limit_hit", "error"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, o := range outcomes {
		row := []string{label, fmt.Sprintf("%d", i)}
		if o.Err != nil {
			row = append(row, "", "", "", "", "", "", "", "", o.Err.Error())
		} else {
			r := o.Result
			row = append(row,
				fmt.Sprintf("%d", r.Embeddings),
				fmt.Sprintf("%d", r.Nodes),
				fmt.Sprintf("%.3f", float64(r.PreprocessTime())/float64(time.Millisecond)),
				fmt.Sprintf("%.3f", float64(r.EnumTime)/float64(time.Millisecond)),
				fmt.Sprintf("%.1f", r.MeanCandidates),
				fmt.Sprintf("%d", r.MemoryBytes),
				fmt.Sprintf("%t", r.TimedOut),
				fmt.Sprintf("%t", r.LimitHit),
				"")
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Stats holds summary statistics of a float sample.
type Stats struct {
	Mean, Std, Max float64
	CountAbove     int // observations above the Above threshold
}

// Summarize computes mean/std/max and the count of values exceeding
// `above`.
func Summarize(xs []float64, above float64) Stats {
	s := Stats{}
	if len(xs) == 0 {
		return s
	}
	for _, x := range xs {
		s.Mean += x
		if x > s.Max {
			s.Max = x
		}
		if x > above {
			s.CountAbove++
		}
	}
	s.Mean /= float64(len(xs))
	s.Std = stddev(xs)
	return s
}
