package service

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"sync"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/obs"
)

// planKey identifies one cached preprocessing plan. Two requests share a
// plan exactly when they target the same registered graph *generation*,
// their query graphs serialize identically (labels + sorted adjacency —
// graph.FingerprintOf), and every plan-shaping configuration knob
// matches. The generation component means hot-swapping a graph never
// serves a stale plan: old keys simply stop being produced and their
// entries age out of the LRU.
type planKey struct {
	graph   string
	gen     uint64
	queryFP graph.Fingerprint
	cfgHash uint64
}

// configHash digests every Config field that influences the plan's
// contents plus the one preprocessing-mode distinction that does
// (GraphQL's Jacobi rounds under parallel preprocessing keep a superset
// of the sequential candidate sets, so parallel- and sequential-built
// GQL plans get distinct keys). The external-engine flags are folded in
// too: they never reach the cache on the Submit path (external engines
// have no plan), but SubmitBatch groups requests by this hash and must
// not co-group a pipeline config with a Glasgow/VF2/Ullmann one.
func configHash(cfg core.Config, preWorkers int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	flag := func(b bool) {
		if b {
			u64(1)
		} else {
			u64(0)
		}
	}
	u64(uint64(cfg.Filter))
	u64(uint64(cfg.Order))
	u64(uint64(cfg.Local))
	u64(uint64(cfg.Kernel))
	flag(cfg.AutoOrder)
	flag(cfg.TreeSpace)
	flag(cfg.FailingSets)
	flag(cfg.Adaptive)
	flag(cfg.DPWeights)
	flag(cfg.VF2PPRules)
	flag(cfg.Homomorphism)
	flag(cfg.SymmetryBreaking)
	flag(cfg.Profile)
	flag(cfg.UseGlasgow)
	flag(cfg.UseVF2)
	flag(cfg.UseUllmann)
	u64(uint64(cfg.GQLRounds))
	u64(uint64(cfg.GQLRadius))
	u64(uint64(cfg.DPIsoPasses))
	u64(uint64(len(cfg.FixedOrder)))
	for _, v := range cfg.FixedOrder {
		u64(uint64(v))
	}
	jacobi := cfg.Filter == filter.GQL && !cfg.Homomorphism && preWorkers > 1
	flag(jacobi)
	return h.Sum64()
}

// CacheStats is a point-in-time snapshot of the plan cache's accounting.
// Every successful insert is eventually accounted for exactly once:
// it is either still resident (Size), was evicted by the LRU
// (Evictions), or was removed by a hot-swap/unregister purge (Purged).
// SizeBytes is the resident plans' summed Plan.SizeBytes and never
// exceeds BudgetBytes when a budget is set.
type CacheStats struct {
	Size        int    `json:"size"`
	Capacity    int    `json:"capacity"`
	SizeBytes   int64  `json:"size_bytes"`
	BudgetBytes int64  `json:"budget_bytes"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Evictions   uint64 `json:"evictions"`
	Purged      uint64 `json:"purged"`
}

// planCache is a mutex-guarded LRU over read-only *core.Plan values.
// Entries are shared: a get returns the same plan pointer to every
// caller, which is safe because MatchPlan never mutates a plan.
//
// Eviction is byte-budgeted: each entry is charged its Plan.SizeBytes
// (plans are CSR-dominated, so entry counts hide a 1000× spread in
// actual memory), and inserts evict from the LRU tail until the
// resident total fits maxBytes again. A single plan larger than the
// whole budget is admitted and then immediately evicted by the same
// loop — the insert still returns the plan to its builder, the cache
// just declines to retain it, and the accounting records a normal
// eviction rather than wedging. The entry cap is kept as a secondary
// bound on map/list overhead (0 = entries unbounded, bytes only).
type planCache struct {
	mu       sync.Mutex
	cap      int        // max entries (0 = unbounded)
	maxBytes int64      // byte budget (0 = unbounded)
	bytes    int64      // resident total, maintained by add/evict/purge
	ll       *list.List // front = most recently used
	entries  map[planKey]*list.Element
	// liveGen reports the named graph's current registry generation
	// (false when the name is not registered). add consults it under
	// c.mu to fence stale inserts: a request that resolved a graph
	// before a hot-swap/unregister must not insert its (now
	// unreachable) plan after the purge ran, pinning dead plan memory
	// in an LRU slot. The registry is updated before purgeGraph runs
	// and add/purgeGraph serialize on c.mu, so an insert either
	// precedes the purge (and is removed by it) or observes the new
	// generation (and drops itself). Reading the live generation keeps
	// the fence stateless per graph name — the previous design kept a
	// per-name floor map that grew without bound under
	// register/unregister churn with ephemeral names. nil disables the
	// fence (standalone caches without a registry).
	liveGen func(name string) (uint64, bool)
	// hits/misses/evictions/purged are obs counters so the cache's
	// accounting IS the /metrics families — New swaps in the
	// registry-owned instances; a standalone cache (tests) gets
	// unregistered ones.
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	purged    *obs.Counter
}

type cacheEntry struct {
	key  planKey
	plan *core.Plan
	size int64 // Plan.SizeBytes at insert time (plans are immutable)
}

// newPlanCache builds a cache bounded by maxEntries and maxBytes (0
// leaves the respective bound off). Both bounds off — or a negative
// entry cap — disables caching entirely.
func newPlanCache(maxEntries int, maxBytes int64) *planCache {
	if maxEntries < 0 || (maxEntries == 0 && maxBytes <= 0) {
		return nil // caching disabled
	}
	if maxBytes < 0 {
		maxBytes = 0
	}
	return &planCache{
		cap: maxEntries, maxBytes: maxBytes, ll: list.New(),
		entries: make(map[planKey]*list.Element),
		hits:    &obs.Counter{}, misses: &obs.Counter{},
		evictions: &obs.Counter{}, purged: &obs.Counter{},
	}
}

func (c *planCache) get(k planKey) (*core.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		c.ll.MoveToFront(e)
		c.hits.Inc()
		return e.Value.(*cacheEntry).plan, true
	}
	c.misses.Inc()
	return nil, false
}

// add inserts a freshly built plan. If a concurrent request already
// inserted the same key (the benign dogpile on a cold key), the existing
// entry wins so every caller converges on one shared plan.
func (c *planCache) add(k planKey, p *core.Plan) *core.Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.liveGen != nil {
		if gen, ok := c.liveGen(k.graph); !ok || k.gen != gen {
			// The graph was swapped or unregistered while this plan was
			// being built; no future request can produce this key, so
			// don't let the dead plan occupy an LRU slot.
			return p
		}
	}
	if e, ok := c.entries[k]; ok {
		c.ll.MoveToFront(e)
		return e.Value.(*cacheEntry).plan
	}
	size := p.SizeBytes()
	c.entries[k] = c.ll.PushFront(&cacheEntry{key: k, plan: p, size: size})
	c.bytes += size
	for c.overLimitLocked() {
		oldest := c.ll.Back()
		ent := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.entries, ent.key)
		c.bytes -= ent.size
		c.evictions.Inc()
	}
	return p
}

// overLimitLocked reports whether either bound is exceeded. The list
// shrinks by one entry per eviction, so the caller's loop terminates at
// the latest when the cache is empty (the oversized-single-plan case:
// admitted, then evicted by its own insert).
func (c *planCache) overLimitLocked() bool {
	if c.ll.Len() == 0 {
		return false
	}
	if c.cap > 0 && c.ll.Len() > c.cap {
		return true
	}
	return c.maxBytes > 0 && c.bytes > c.maxBytes
}

// purgeGraph drops every entry for the named graph built against a
// generation below `before`, counting each removal into the purged
// counter (evictions stay budget-pressure-only, so size + evictions +
// purged always reconciles against successful inserts). Hot swap
// passes the new generation; unregister passes the removed generation
// + 1. A concurrent miss on the old generation cannot re-add its plan
// after the purge: add re-reads the live registry generation under the
// same mutex (see planCache.liveGen).
func (c *planCache) purgeGraph(name string, before uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for e := c.ll.Front(); e != nil; e = next {
		next = e.Next()
		ent := e.Value.(*cacheEntry)
		if ent.key.graph == name && ent.key.gen < before {
			c.ll.Remove(e)
			delete(c.entries, ent.key)
			c.bytes -= ent.size
			c.purged.Inc()
		}
	}
}

// sizeBytes reports the resident byte total (for the gauge).
func (c *planCache) sizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size: c.ll.Len(), Capacity: c.cap,
		SizeBytes: c.bytes, BudgetBytes: c.maxBytes,
		Hits: c.hits.Value(), Misses: c.misses.Value(),
		Evictions: c.evictions.Value(), Purged: c.purged.Value(),
	}
}
