// Protein motif search: the workload that motivates RI and the
// bioinformatics line of subgraph matching algorithms. The example mines
// small interaction motifs from the Yeast protein-interaction stand-in
// (so every motif is guaranteed to occur) and counts all their
// occurrences, comparing a direct-enumeration algorithm (RI) against the
// study's optimized configuration.
package main

import (
	"fmt"
	"log"
	"time"

	sm "subgraphmatching"
)

func main() {
	// The Yeast stand-in mirrors the paper's ye dataset: 3112 proteins,
	// 12519 interactions, 71 functional labels.
	data, err := sm.Dataset("ye")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("protein interaction network:", data)
	fmt.Println()

	// Mine motif templates of increasing size from the network itself —
	// dense ones are interaction complexes, sparse ones are signalling
	// chains.
	type motifSpec struct {
		name    string
		size    int
		density sm.QueryDensity
		seed    int64
	}
	specs := []motifSpec{
		{"small complex (4 proteins, dense)", 4, sm.QueryDense, 11},
		{"signal chain (5 proteins, sparse)", 5, sm.QuerySparse, 12},
		{"interaction module (8 proteins, dense)", 8, sm.QueryDense, 13},
		{"pathway fragment (8 proteins, sparse)", 8, sm.QuerySparse, 14},
	}

	opts := func(a sm.Algorithm) sm.Options {
		return sm.Options{Algorithm: a, MaxEmbeddings: 100_000, TimeLimit: 30 * time.Second}
	}
	for _, spec := range specs {
		qs, err := sm.GenerateQueries(data, sm.QueryConfig{
			NumVertices: spec.size, Count: 1, Density: spec.density, Seed: spec.seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		q := qs[0]
		fmt.Printf("motif: %s — %d interactions\n", spec.name, q.NumEdges())
		for _, algo := range []sm.Algorithm{sm.AlgoRI, sm.AlgoOptimized} {
			res, err := sm.Match(q, data, opts(algo))
			if err != nil {
				log.Fatal(err)
			}
			note := ""
			if res.LimitHit {
				note = " (capped)"
			}
			fmt.Printf("  %-9v %8d occurrences%s   %10v preprocess  %10v enumerate\n",
				algo, res.Embeddings, note, res.PreprocessTime().Round(time.Microsecond),
				res.EnumTime.Round(time.Microsecond))
		}
		fmt.Println()
	}
}
