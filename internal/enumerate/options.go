// Package enumerate implements the generic backtracking enumeration of
// the paper's Algorithm 1, with pluggable local-candidate computation
// (Algorithms 2-5), DP-iso's adaptive vertex selection, and the
// failing-sets pruning optimization of Section 3.4.
package enumerate

import (
	"fmt"
	"sync/atomic"
	"time"

	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/intersect"
)

// LocalCandidates selects how LC(u, M) is computed at each search node
// (paper Section 3.3).
type LocalCandidates uint8

const (
	// Direct is Algorithm 2 (QuickSI/RI): iterate the data neighbors of
	// the vertex mapped to u's parent, checking LDF and backward edges.
	Direct LocalCandidates = iota
	// Scan is Algorithm 3 (GraphQL): iterate the whole candidate set
	// C(u), checking every backward edge with binary searches.
	Scan
	// TreeEdge is Algorithm 4 (CFL): retrieve candidates adjacent to the
	// parent's mapping from the tree-edge auxiliary structure, then
	// verify the remaining backward edges with binary searches.
	TreeEdge
	// Intersect is Algorithm 5 (CECI/DP-iso): intersect the auxiliary
	// adjacency lists of all backward neighbors.
	Intersect
	// IntersectBlock is Algorithm 5 using the QFilter-style block layout
	// for the intersections (Figure 10's comparison). The candidate
	// space must have MaterializeBlocks applied.
	IntersectBlock
)

var localNames = map[LocalCandidates]string{
	Direct: "direct", Scan: "scan", TreeEdge: "tree-edge",
	Intersect: "intersect", IntersectBlock: "intersect-block",
}

func (l LocalCandidates) String() string {
	if s, ok := localNames[l]; ok {
		return s
	}
	return fmt.Sprintf("LocalCandidates(%d)", l)
}

// Options configures a single enumeration run.
type Options struct {
	// Local selects the local candidate computation method.
	Local LocalCandidates

	// Kernel selects how the pairwise intersection kernel is chosen in
	// the Intersect local-candidate method: adaptively per call (the
	// zero value) or pinned to one static kernel. IntersectBlock mode
	// always uses the block kernel (the Figure 10 arm) and ignores this
	// field.
	Kernel intersect.Policy

	// FailingSets enables DP-iso's failing-sets pruning. Requires the
	// query to have at most 64 vertices.
	FailingSets bool

	// Adaptive enables DP-iso's dynamic vertex selection: the order phi
	// passed to Run is interpreted as the BFS order delta defining the
	// query DAG, and at each node the engine picks the extendable vertex
	// with the smallest estimated cost. Requires Local == Intersect or
	// IntersectBlock.
	Adaptive bool

	// AdaptiveWeights optionally supplies DP-iso's path-count weight
	// array, indexed [queryVertex][candidateIndex]. When nil the
	// extendable vertex with the fewest local candidates is selected.
	AdaptiveWeights [][]float64

	// VF2PPRules enables VF2++'s extra label-count cutoff rules in
	// Direct mode (Section 3.3.1).
	VF2PPRules bool

	// Homomorphism drops the injectivity requirement, finding subgraph
	// homomorphisms instead of isomorphisms — the default semantics of
	// the WCOJ-based systems the paper contrasts with (Section 2.2).
	Homomorphism bool

	// SymmetryClasses lists groups of interchangeable query vertices
	// (same label, identical neighborhoods modulo each other). Within a
	// class the engine enforces increasing data-vertex ids, enumerating
	// one canonical representative per orbit; the caller multiplies
	// counts by the product of class-size factorials. Incompatible with
	// Homomorphism.
	SymmetryClasses [][]graph.Vertex

	// MaxEmbeddings stops the search after this many embeddings
	// (0 = unlimited). The paper's experiments use 1e5.
	MaxEmbeddings uint64

	// TimeLimit bounds the wall-clock enumeration time (0 = unlimited).
	// The paper's experiments use five minutes.
	TimeLimit time.Duration

	// OnMatch, when non-nil, is invoked for each embedding with the
	// mapping indexed by query vertex. The slice is reused between
	// calls; copy it to retain. Returning false aborts the search.
	OnMatch func(mapping []uint32) bool

	// Cancel, when non-nil, is polled periodically; setting it to true
	// stops the search cooperatively. Used by the parallel runner so a
	// worker that hits the global cap can stop its siblings.
	Cancel *atomic.Bool

	// Profile collects per-depth search statistics into Stats.Profile.
	// Adds a small constant overhead per node.
	Profile bool
}

// Stats reports the outcome of an enumeration run.
type Stats struct {
	// Embeddings is the number of matches found (capped by
	// MaxEmbeddings).
	Embeddings uint64
	// Nodes is the number of search-tree nodes explored (recursive
	// calls of the Enumerate procedure).
	Nodes uint64
	// TimedOut reports whether the time limit fired; per the paper's
	// methodology such a query counts as unsolved and its enumeration
	// time is recorded as the limit.
	TimedOut bool
	// LimitHit reports whether MaxEmbeddings stopped the search.
	LimitHit bool
	// Duration is the wall-clock enumeration time.
	Duration time.Duration
	// Kernels tallies the pairwise intersection-kernel executions by
	// kernel — the run's kernel mix under the configured Options.Kernel
	// policy. All zeros for the non-intersection local-candidate
	// methods.
	Kernels intersect.KernelStats
	// Profile holds per-depth search statistics when Options.Profile
	// was set.
	Profile *SearchProfile
}

// Solved reports whether the search ran to completion or reached the
// embedding cap — i.e. it did not time out.
func (s *Stats) Solved() bool { return !s.TimedOut }
