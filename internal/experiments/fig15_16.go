package experiments

import (
	"errors"
	"fmt"
	"time"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/glasgow"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/order"
	"subgraphmatching/internal/workload"
)

// Fig15 reproduces Figure 15: the effect of failing-sets pruning,
// (a) on DP-iso across query sizes on yt (the optimization slows small
// queries down and speeds large ones up), and (b) on every algorithm at
// the default query size.
func Fig15(env Env) error {
	env = env.WithDefaults()
	section(env.Out, "Figure 15: effect of failing sets pruning (enumeration ms)", "Figure 15(a-b)")
	const ds = "yt"
	g, err := dataGraph(ds)
	if err != nil {
		return err
	}
	qs, err := querySets(env, ds)
	if err != nil {
		return err
	}

	ta := workload.Table{Title: "(a) DP-iso by query size on " + ds,
		Header: []string{"set", "wo/fs", "w/fs"}}
	for i := range qs {
		s := &qs[i]
		if s.Name != "Q4" && s.Name[len(s.Name)-1] != 'D' {
			continue
		}
		wo := orderingAgg(env, s, g, order.DPIso, false)
		w := orderingAgg(env, s, g, order.DPIso, true)
		ta.AddRow(s.Name, workload.FmtMS(wo.MeanEnum), workload.FmtMS(w.MeanEnum))
	}
	env.render(&ta)

	dense, sparse, err := defaultSets(env, ds)
	if err != nil {
		return err
	}
	set := dense
	if set == nil {
		set = sparse
	}
	tb := workload.Table{Title: fmt.Sprintf("(b) all algorithms on %s/%s", ds, set.Name),
		Header: []string{"order", "wo/fs", "w/fs"}}
	for _, om := range orderingStudyMethods {
		wo := orderingAgg(env, set, g, om, false)
		w := orderingAgg(env, set, g, om, true)
		tb.AddRow(om.String(), workload.FmtMS(wo.MeanEnum), workload.FmtMS(w.MeanEnum))
	}
	env.render(&tb)
	return nil
}

// fig16GlasgowBudget limits the CP solver's working set in the overall
// comparison. The stand-in datasets are much smaller than the originals,
// so without a budget Glasgow would fit graphs the paper reports it
// cannot handle; 256 MiB restores the paper's qualitative split (the
// small biology graphs fit, the large graphs do not).
const fig16GlasgowBudget = 256 << 20

// Fig16 reproduces Figure 16: overall query time of the paper's
// optimized methods (GQLfs, RIfs) against the original algorithms
// (O-CECI, O-DP, O-RI, O-2PP) and Glasgow, across datasets.
func Fig16(env Env) error {
	env = env.WithDefaults()
	section(env.Out, "Figure 16: overall performance (total query time, ms)", "Figure 16")
	type entry struct {
		name string
		cfg  func(q *graph.Graph, g *graph.Graph) core.Config
	}
	entries := []entry{
		{"GQLfs", func(q, g *graph.Graph) core.Config { return core.OrderingStudyConfig(order.GQL, true) }},
		{"RIfs", func(q, g *graph.Graph) core.Config { return core.OrderingStudyConfig(order.RI, true) }},
		{"O-CECI", func(q, g *graph.Graph) core.Config { return core.PresetConfig(core.CECI, q, g) }},
		{"O-DP", func(q, g *graph.Graph) core.Config { return core.PresetConfig(core.DPIso, q, g) }},
		{"O-RI", func(q, g *graph.Graph) core.Config { return core.PresetConfig(core.RI, q, g) }},
		{"O-2PP", func(q, g *graph.Graph) core.Config { return core.PresetConfig(core.VF2PP, q, g) }},
	}
	header := []string{"dataset"}
	for _, e := range entries {
		header = append(header, e.name)
	}
	header = append(header, "GLW")
	t := workload.Table{Title: "mean total time per query (default dense set)", Header: header}

	for _, ds := range env.Datasets {
		g, err := dataGraph(ds)
		if err != nil {
			return err
		}
		dense, sparse, err := defaultSets(env, ds)
		if err != nil {
			return err
		}
		set := dense
		if set == nil {
			set = sparse
		}
		row := []string{ds + "/" + set.Name}
		for _, e := range entries {
			agg := workload.Run(e.name, set.Queries, g,
				func(q *graph.Graph) core.Config { return e.cfg(q, g) }, env.Limits())
			row = append(row, workload.FmtMS(agg.MeanTotal))
		}
		row = append(row, glasgowCell(set.Queries, g, env))
		t.AddRow(row...)
	}
	env.render(&t)
	return nil
}

// glasgowCell runs Glasgow over a query set, reporting "OOM" when the
// memory budget rejects the dataset (the paper's outcome on all but the
// small graphs).
func glasgowCell(set []*graph.Graph, g *graph.Graph, env Env) string {
	cfg := core.Config{UseGlasgow: true, GlasgowMemoryBudget: fig16GlasgowBudget}
	var sum time.Duration
	n, oom := 0, 0
	for _, q := range set {
		res, err := core.Match(q, g, cfg, env.Limits())
		if err != nil {
			if errors.Is(err, glasgow.ErrOutOfMemory) {
				oom++
			}
			continue
		}
		n++
		tt := res.EnumTime
		if res.TimedOut {
			tt = env.TimeLimit
		}
		sum += tt
	}
	if oom > 0 && n == 0 {
		return "OOM"
	}
	if n == 0 {
		return "-"
	}
	return workload.FmtMS(sum / time.Duration(n))
}
