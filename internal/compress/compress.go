// Package compress implements data-graph compression in the spirit of
// BoostIso (paper Section 3.4): data vertices with the same label and
// identical neighborhoods — open twins (non-adjacent, N(v) equal) or
// closed twins (adjacent, N(v) ∪ {v} equal) — are merged into
// hypervertices. Because twins are perfectly interchangeable, subgraph
// matching can run on the compressed graph and recover exact embedding
// counts with per-hypervertex falling factorials.
//
// The paper reports (citing CFL's authors) that data compression only
// pays on very dense graphs; the Ratio metric and the counting engine
// here let that claim be tested directly.
package compress

import (
	"fmt"
	"sort"
	"strings"

	"subgraphmatching/internal/graph"
)

// TwinKind distinguishes how a hypervertex's members relate.
type TwinKind uint8

const (
	// Singleton marks a hypervertex with a single member.
	Singleton TwinKind = iota
	// OpenTwins are pairwise non-adjacent members with identical open
	// neighborhoods; two adjacent query vertices can never share such a
	// hypervertex.
	OpenTwins
	// ClosedTwins are pairwise adjacent members (a clique) with
	// identical closed neighborhoods; adjacent query vertices may share
	// the hypervertex.
	ClosedTwins
)

func (k TwinKind) String() string {
	switch k {
	case OpenTwins:
		return "open"
	case ClosedTwins:
		return "closed"
	default:
		return "singleton"
	}
}

// Graph is a compressed data graph: a hypergraph whose vertices carry a
// member count and a twin kind. The hypergraph's adjacency is uniform:
// h1 and h2 are adjacent iff every member of h1 is adjacent to every
// member of h2 (a property guaranteed by the twin equivalences).
type Graph struct {
	Hyper *graph.Graph // compressed topology, labels preserved
	// Members[h] lists the original data vertices merged into h.
	Members [][]graph.Vertex
	// Kind[h] is the twin relation among h's members.
	Kind []TwinKind
	// MemberDegree[h] is the (uniform) original degree of h's members.
	MemberDegree []int

	originalVertices int
}

// Size returns the member count of hypervertex h.
func (c *Graph) Size(h graph.Vertex) int { return len(c.Members[h]) }

// Ratio returns |V(compressed)| / |V(original)|: 1.0 means nothing
// compressed.
func (c *Graph) Ratio() float64 {
	if c.originalVertices == 0 {
		return 1
	}
	return float64(c.Hyper.NumVertices()) / float64(c.originalVertices)
}

// String summarizes the compression.
func (c *Graph) String() string {
	merged := 0
	for h := range c.Members {
		if len(c.Members[h]) > 1 {
			merged++
		}
	}
	return fmt.Sprintf("compressed{%d->%d vertices (ratio %.2f), %d hypervertices with >1 member}",
		c.originalVertices, c.Hyper.NumVertices(), c.Ratio(), merged)
}

// Build compresses g by merging twin vertices. Closed-twin classes are
// formed first; remaining vertices form open-twin classes; everything
// else stays a singleton.
func Build(g *graph.Graph) (*Graph, error) {
	n := g.NumVertices()
	classOf := make([]int32, n)
	for i := range classOf {
		classOf[i] = -1
	}
	var members [][]graph.Vertex
	var kinds []TwinKind

	group := func(kind TwinKind, key func(v graph.Vertex) string) {
		byKey := map[string][]graph.Vertex{}
		var keys []string
		for v := 0; v < n; v++ {
			vv := graph.Vertex(v)
			if classOf[v] >= 0 {
				continue
			}
			k := key(vv)
			if len(byKey[k]) == 0 {
				keys = append(keys, k)
			}
			byKey[k] = append(byKey[k], vv)
		}
		sort.Strings(keys)
		for _, k := range keys {
			class := byKey[k]
			if len(class) < 2 {
				continue
			}
			id := int32(len(members))
			for _, v := range class {
				classOf[v] = id
			}
			members = append(members, class)
			kinds = append(kinds, kind)
		}
	}
	group(ClosedTwins, func(v graph.Vertex) string {
		closed := append([]graph.Vertex{v}, g.Neighbors(v)...)
		sort.Slice(closed, func(i, j int) bool { return closed[i] < closed[j] })
		return key(g.Label(v), closed)
	})
	group(OpenTwins, func(v graph.Vertex) string {
		return key(g.Label(v), g.Neighbors(v))
	})
	// Singletons for the rest.
	for v := 0; v < n; v++ {
		if classOf[v] < 0 {
			classOf[v] = int32(len(members))
			members = append(members, []graph.Vertex{graph.Vertex(v)})
			kinds = append(kinds, Singleton)
		}
	}

	// Compressed topology: an edge per adjacent class pair. Twin
	// uniformity makes any member's adjacency representative.
	b := graph.NewBuilder(len(members), g.NumEdges())
	memberDegree := make([]int, len(members))
	for h, ms := range members {
		b.AddVertex(g.Label(ms[0]))
		memberDegree[h] = g.Degree(ms[0])
	}
	seen := map[uint64]bool{}
	for h, ms := range members {
		rep := ms[0]
		for _, w := range g.Neighbors(rep) {
			h2 := classOf[w]
			if int32(h) == h2 {
				continue // intra-class edges are implied by ClosedTwins
			}
			a, bb := uint64(h), uint64(h2)
			if a > bb {
				a, bb = bb, a
			}
			k := a<<32 | bb
			if !seen[k] {
				seen[k] = true
				b.AddEdge(graph.Vertex(h), graph.Vertex(h2))
			}
		}
	}
	hyper, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("compress: %w", err)
	}
	return &Graph{
		Hyper:            hyper,
		Members:          members,
		Kind:             kinds,
		MemberDegree:     memberDegree,
		originalVertices: n,
	}, nil
}

func key(l graph.Label, ns []graph.Vertex) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d:", l)
	for _, v := range ns {
		fmt.Fprintf(&sb, "%d,", v)
	}
	return sb.String()
}
