package intersect

import "math/bits"

// BlockSet is a QFilter-inspired compact layout for sorted uint32 sets.
// Values are grouped into 64-wide blocks keyed by value>>6; each block
// stores a 64-bit occupancy word. Intersecting two BlockSets merges the
// block key lists and ANDs the words, so a single machine instruction
// covers up to 64 set elements — the same effect the SIMD byte-wise
// QFilter achieves.
//
// Like the real QFilter, the layout wins when neighbor sets are dense
// (many elements share a block) and loses on sparse sets where the
// per-block overhead exceeds the word-parallel gain. Figure 10's
// reproduction relies on exactly this trade-off.
type BlockSet struct {
	keys  []uint32 // sorted block indices (value >> 6)
	words []uint64 // occupancy word per block
	size  int      // number of elements
}

// NewBlockSet builds the block layout from a sorted strictly-increasing
// slice.
func NewBlockSet(sorted []uint32) *BlockSet {
	bs := &BlockSet{size: len(sorted)}
	for i := 0; i < len(sorted); {
		key := sorted[i] >> 6
		var w uint64
		for i < len(sorted) && sorted[i]>>6 == key {
			w |= 1 << (sorted[i] & 63)
			i++
		}
		bs.keys = append(bs.keys, key)
		bs.words = append(bs.words, w)
	}
	return bs
}

// Size returns the number of elements in the set.
func (b *BlockSet) Size() int { return b.size }

// NumBlocks returns the number of 64-wide blocks in the layout.
func (b *BlockSet) NumBlocks() int { return len(b.keys) }

// Elements decodes the set back to a sorted slice, appended to dst.
func (b *BlockSet) Elements(dst []uint32) []uint32 {
	for i, key := range b.keys {
		w := b.words[i]
		base := key << 6
		for w != 0 {
			dst = append(dst, base+uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// IntersectBlocks intersects two BlockSets, appending the decoded sorted
// result to dst.
func IntersectBlocks(dst []uint32, a, b *BlockSet) []uint32 {
	i, j := 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			i++
		case a.keys[i] > b.keys[j]:
			j++
		default:
			if w := a.words[i] & b.words[j]; w != 0 {
				base := a.keys[i] << 6
				for w != 0 {
					dst = append(dst, base+uint32(bits.TrailingZeros64(w)))
					w &= w - 1
				}
			}
			i++
			j++
		}
	}
	return dst
}

// IntersectBlocksCount returns the intersection cardinality of two
// BlockSets without decoding.
func IntersectBlocksCount(a, b *BlockSet) int {
	n, i, j := 0, 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			i++
		case a.keys[i] > b.keys[j]:
			j++
		default:
			n += bits.OnesCount64(a.words[i] & b.words[j])
			i++
			j++
		}
	}
	return n
}

// IntersectBlockWithSorted intersects a BlockSet with a plain sorted
// slice, appending to dst. Used when only one side has a precomputed
// block layout (candidate lists are plain slices; data-graph neighbor
// lists carry layouts).
func IntersectBlockWithSorted(dst []uint32, a *BlockSet, b []uint32) []uint32 {
	bi := 0
	for _, x := range b {
		key := x >> 6
		for bi < len(a.keys) && a.keys[bi] < key {
			bi++
		}
		if bi == len(a.keys) {
			break
		}
		if a.keys[bi] == key && a.words[bi]&(1<<(x&63)) != 0 {
			dst = append(dst, x)
		}
	}
	return dst
}
