// Package intersect implements the sorted-set intersection kernels that
// drive the study's Algorithm 5 local candidate computation.
//
// Three strategies are provided, mirroring Section 3.3.2 and Figure 10 of
// the paper:
//
//   - Merge: the classic two-pointer merge, best when input sizes are
//     similar.
//   - Galloping: exponential search of the larger list for each element
//     of the smaller one, best when sizes are highly skewed (the
//     EmptyHeaded heuristic).
//   - Hybrid: picks Merge or Galloping based on the size ratio; this is
//     the paper's default.
//
// A fourth, the QFilter-style block layout (see BlockSet), trades
// preprocessing and memory for word-parallel intersection and is compared
// against Hybrid in the Figure 10 reproduction.
//
// All kernels require strictly-increasing sorted inputs and produce sorted
// outputs.
package intersect

// GallopThreshold is the size-ratio above which Hybrid switches from the
// merge-based kernel to galloping. 32 follows the EmptyHeaded heuristic
// cited by the paper.
const GallopThreshold = 32

// Merge intersects two sorted slices with a two-pointer scan, appending
// the result to dst (which may be nil) and returning it.
func Merge(dst, a, b []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// gallopSearch returns the smallest index k in s[lo:] with s[k] >= x,
// using doubling followed by binary search.
func gallopSearch(s []uint32, lo int, x uint32) int {
	bound := 1
	for lo+bound < len(s) && s[lo+bound] < x {
		bound *= 2
	}
	hi := lo + bound
	if hi > len(s) {
		hi = len(s)
	}
	lo += bound / 2
	// Binary search in (lo, hi].
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Galloping intersects a small sorted slice with a large one by galloping
// through the large slice. a should be the smaller input; the function
// swaps internally if not.
func Galloping(dst, a, b []uint32) []uint32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	pos := 0
	for _, x := range a {
		pos = gallopSearch(b, pos, x)
		if pos == len(b) {
			break
		}
		if b[pos] == x {
			dst = append(dst, x)
			pos++
		}
	}
	return dst
}

// Hybrid intersects two sorted slices, choosing Merge for similar sizes
// and Galloping for skewed sizes. This is the study's default kernel.
func Hybrid(dst, a, b []uint32) []uint32 {
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return dst
	}
	if la > lb {
		a, b = b, a
		la, lb = lb, la
	}
	if lb/la >= GallopThreshold {
		return Galloping(dst, a, b)
	}
	return Merge(dst, a, b)
}

// Count returns |a AND b| without materializing the intersection. Like
// Hybrid it switches to galloping at a GallopThreshold size ratio, so
// cardinality-only call sites get the same skew behavior as the
// materializing kernels.
func Count(a, b []uint32) int {
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return 0
	}
	if la > lb {
		a, b = b, a
		la, lb = lb, la
	}
	if lb/la >= GallopThreshold {
		n, pos := 0, 0
		for _, x := range a {
			pos = gallopSearch(b, pos, x)
			if pos == len(b) {
				break
			}
			if b[pos] == x {
				n++
				pos++
			}
		}
		return n
	}
	n := 0
	i, j := 0, 0
	for i < la && j < lb {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Contains reports whether sorted slice s contains x (binary search).
func Contains(s []uint32, x uint32) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == x
}

// Scratch holds the reusable intermediate buffers for k-way
// intersections. A Scratch owned by a single goroutine amortizes the
// intermediate storage across calls, so steady-state IntersectMany is
// allocation-free (the buffers grow to the largest intermediate seen and
// stay there).
type Scratch struct {
	a, b []uint32
}

// IntersectMany intersects k >= 0 sorted slices, smallest first, and
// returns the result appended to dst. With two inputs the intersection
// is written straight into dst; with more, the running intersection
// ping-pongs between the Scratch buffers. Inputs start from the smallest
// set so the running intersection stays as small as possible.
func (s *Scratch) IntersectMany(dst []uint32, sets ...[]uint32) []uint32 {
	switch len(sets) {
	case 0:
		return dst
	case 1:
		return append(dst, sets[0]...)
	case 2:
		return Hybrid(dst, sets[0], sets[1])
	}
	// Move the smallest set first; a full sort is overkill for the tiny k
	// seen in practice (k = number of backward neighbors).
	minIdx := 0
	for i, set := range sets {
		if len(set) < len(sets[minIdx]) {
			minIdx = i
		}
	}
	sets[0], sets[minIdx] = sets[minIdx], sets[0]
	cur := append(s.a[:0], sets[0]...)
	tmp := s.b[:0]
	for _, set := range sets[1:] {
		tmp = Hybrid(tmp[:0], cur, set)
		cur, tmp = tmp, cur
		if len(cur) == 0 {
			break
		}
	}
	dst = append(dst, cur...)
	s.a, s.b = cur[:0], tmp[:0]
	return dst
}

// IntersectMany intersects k >= 1 sorted slices, reusing scratch for one
// of the intermediates. It returns the final intersection appended to
// dst. Callers on a hot path should hold a Scratch and use its method
// instead, which reuses both intermediate buffers.
func IntersectMany(dst []uint32, scratch *[]uint32, sets ...[]uint32) []uint32 {
	s := Scratch{a: *scratch}
	dst = s.IntersectMany(dst, sets...)
	*scratch = s.a[:0]
	return dst
}
