package filter

import (
	"fmt"
	"time"

	"subgraphmatching/internal/graph"
)

// Stage records one internal stage of a filtering method: its name, how
// long it took, and the total candidate count across query vertices once
// it finished — the per-stage attribution the paper's profiling
// methodology calls for (filtering wins are explained by *which* pruning
// stage removes the candidates, not by the method's total time).
type Stage struct {
	Name       string
	Duration   time.Duration
	Candidates uint64
}

// StageTrace collects the stages of one filtering run. A nil trace
// disables collection; the traced run paths check the pointer once per
// stage boundary, so the cost of an untraced run is a nil compare.
type StageTrace struct {
	Stages []Stage
}

// add closes one stage: named, timed from start, with the candidate
// total after it ran. Returns time.Now() so call sites chain stages
// without a second clock read.
func (t *StageTrace) add(name string, start time.Time, candidates uint64) time.Time {
	now := time.Now()
	if t != nil {
		t.Stages = append(t.Stages, Stage{Name: name, Duration: now.Sub(start), Candidates: candidates})
	}
	return now
}

// TotalCandidates sums |C(u)| over the query vertices.
func TotalCandidates(cand [][]uint32) uint64 {
	var n uint64
	for _, c := range cand {
		n += uint64(len(c))
	}
	return n
}

// total is TotalCandidates over the state's live candidate sets.
func (s *state) total() uint64 {
	var n uint64
	for _, c := range s.cand {
		n += uint64(len(c))
	}
	return n
}

// RunTraced is Run with per-stage instrumentation: it executes method m
// sequentially and appends each internal stage to tr (single-stage
// methods record one entry). tr may be nil, in which case RunTraced
// behaves exactly like Run.
func RunTraced(m Method, q, g *graph.Graph, tr *StageTrace) ([][]uint32, error) {
	if q.NumVertices() == 0 {
		return nil, fmt.Errorf("filter: empty query graph")
	}
	if !q.IsConnected() {
		return nil, fmt.Errorf("filter: query graph must be connected")
	}
	start := time.Now()
	switch m {
	case LDF:
		c := RunLDF(q, g)
		tr.add("ldf", start, TotalCandidates(c))
		return c, nil
	case NLF:
		c := RunNLF(q, g)
		tr.add("nlf", start, TotalCandidates(c))
		return c, nil
	case GQL:
		return runGraphQLRadius(q, g, DefaultGQLRounds, 1, tr), nil
	case CFL:
		return runCFLFrom(q, g, CFLRoot(q, g), tr), nil
	case CECI:
		return runCECIFrom(q, g, CECIRoot(q, g), tr), nil
	case DPIso:
		return runDPIsoFrom(q, g, DPIsoRoot(q, g), DefaultDPIsoPasses, tr), nil
	case Steady:
		c := RunSteady(q, g)
		tr.add("fixpoint", start, TotalCandidates(c))
		return c, nil
	default:
		return nil, fmt.Errorf("filter: unknown method %v", m)
	}
}

// RunGraphQLRadiusTraced is RunGraphQLRadius with stage collection.
func RunGraphQLRadiusTraced(q, g *graph.Graph, rounds, radius int, tr *StageTrace) [][]uint32 {
	return runGraphQLRadius(q, g, rounds, radius, tr)
}

// RunDPIsoTraced is RunDPIso with stage collection.
func RunDPIsoTraced(q, g *graph.Graph, passes int, tr *StageTrace) [][]uint32 {
	return runDPIsoFrom(q, g, DPIsoRoot(q, g), passes, tr)
}
