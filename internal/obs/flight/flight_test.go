package flight

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"subgraphmatching/internal/obs"
)

// finishAt completes a flight with a synthetic latency — retention
// tests need deterministic bucket placement.
func finishAt(f *Flight, lat time.Duration, err error) *Record {
	return f.finish(lat, obs.NewSpan("match", time.Now(), lat), err, nil)
}

func TestBucketRetentionKeepsSlowest(t *testing.T) {
	r := NewRecorder(4, 0)
	// 20 records in the <10ms band: latencies 1ms+1ns .. 1ms+20ns.
	for i := 1; i <= 20; i++ {
		finishAt(r.Start("g", "a"), time.Millisecond+time.Duration(i), nil)
	}
	snap := r.Snapshot()
	b := snap[1] // <10ms band
	if b.Count != 20 {
		t.Fatalf("band count = %d, want 20", b.Count)
	}
	if len(b.Records) != 4 {
		t.Fatalf("retained %d, want 4", len(b.Records))
	}
	for i, rec := range b.Records {
		want := time.Millisecond + time.Duration(20-i)
		if rec.Latency != want {
			t.Errorf("slot %d latency %v, want %v", i, rec.Latency, want)
		}
	}
	// Other bands untouched.
	if snap[0].Count != 0 || len(snap[0].Records) != 0 {
		t.Errorf("fast band polluted: %+v", snap[0])
	}
}

func TestBucketIndexAndLabels(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0}, {999 * time.Microsecond, 0},
		{time.Millisecond, 1}, {9 * time.Millisecond, 1},
		{50 * time.Millisecond, 2}, {500 * time.Millisecond, 3},
		{5 * time.Second, 4}, {time.Minute, 5},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	if BucketLabel(0) != "<1ms" || BucketLabel(5) != ">=10s" {
		t.Errorf("labels: %q %q", BucketLabel(0), BucketLabel(5))
	}
}

func TestErrorsAlwaysKept(t *testing.T) {
	r := NewRecorder(2, 3)
	// Crowd the fast bucket so errored fast requests can't win a slot.
	for i := 10; i <= 20; i++ {
		finishAt(r.Start("g", "a"), time.Duration(i)*time.Microsecond, nil)
	}
	for i := 1; i <= 5; i++ {
		finishAt(r.Start("g", "a"), time.Duration(i), fmt.Errorf("boom %d", i))
	}
	errs := r.Errors()
	if len(errs) != 3 {
		t.Fatalf("error ring holds %d, want 3", len(errs))
	}
	// Newest first: boom 5, 4, 3.
	for i, rec := range errs {
		if want := fmt.Sprintf("boom %d", 5-i); rec.Err != want {
			t.Errorf("errs[%d] = %q, want %q", i, rec.Err, want)
		}
	}
	// Errored records are still findable by id even though the bucket
	// evicted them.
	if r.Lookup(errs[0].ID) == nil {
		t.Error("errored record not found by Lookup")
	}
}

func TestInflightRegistry(t *testing.T) {
	r := NewRecorder(0, 0)
	f1 := r.Start("g1", "GQL")
	f2 := r.Start("g2", "CFL")
	f1.SetPhase("plan")
	f2.SetPhase("enumerate")
	if r.InflightCount() != 2 {
		t.Fatalf("inflight = %d, want 2", r.InflightCount())
	}
	infos := r.Inflight()
	if len(infos) != 2 || infos[0].ID != f1.ID() {
		t.Fatalf("inflight order: %+v", infos)
	}
	if infos[0].Phase != "plan" || infos[1].Phase != "enumerate" {
		t.Errorf("phases: %+v", infos)
	}
	finishAt(f1, time.Millisecond, nil)
	if r.InflightCount() != 1 {
		t.Fatalf("inflight after finish = %d, want 1", r.InflightCount())
	}
	// Idempotent finish: second call is a no-op.
	if rec := finishAt(f1, time.Second, nil); rec != nil {
		t.Error("double finish produced a record")
	}
	finishAt(f2, time.Millisecond, nil)
	if r.InflightCount() != 0 {
		t.Fatalf("inflight = %d, want 0", r.InflightCount())
	}
}

func TestSubscribers(t *testing.T) {
	r := NewRecorder(0, 0)
	var got []*Record
	r.Subscribe(func(rec *Record) { got = append(got, rec) })
	finishAt(r.Start("g", "a"), time.Millisecond, nil)
	finishAt(r.Start("g", "a"), time.Second, errors.New("x"))
	if len(got) != 2 || got[0].Latency != time.Millisecond || got[1].Err != "x" {
		t.Fatalf("subscriber saw %+v", got)
	}
	if got[0].Payload != nil {
		t.Errorf("payload = %v", got[0].Payload)
	}
}

// TestRecorderStress is the acceptance stress: 200 goroutines finishing
// flights with known latencies while readers snapshot concurrently;
// afterwards each bucket must retain exactly the slowest records.
// Run under -race via make race-stress.
func TestRecorderStress(t *testing.T) {
	const goroutines, perG = 200, 50
	r := NewRecorder(8, 64)
	var wg sync.WaitGroup
	stopReaders := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
					r.Snapshot()
					r.Inflight()
					r.InflightCount()
					r.Errors()
					r.Lookup(1)
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < perG; i++ {
				f := r.Start("g", "a")
				f.SetPhase("enumerate")
				// Unique latency per record, all in the <1ms band.
				lat := time.Duration(g*perG + i + 1)
				var err error
				if i == perG-1 {
					err = errors.New("last")
				}
				finishAt(f, lat, err)
			}
		}(g)
	}
	writers.Wait()
	close(stopReaders)
	wg.Wait()

	if r.InflightCount() != 0 {
		t.Fatalf("inflight = %d after all finished", r.InflightCount())
	}
	snap := r.Snapshot()
	fast := snap[0]
	if fast.Count != goroutines*perG {
		t.Fatalf("band count = %d, want %d", fast.Count, goroutines*perG)
	}
	if len(fast.Records) != 8 {
		t.Fatalf("retained %d, want 8", len(fast.Records))
	}
	// The slowest 8 latencies overall are total, total-1, ...
	total := time.Duration(goroutines * perG)
	for i, rec := range fast.Records {
		if want := total - time.Duration(i); rec.Latency != want {
			t.Errorf("slot %d latency %v, want %v", i, rec.Latency, want)
		}
	}
	if errs := r.Errors(); len(errs) != 64 {
		t.Fatalf("error ring holds %d, want 64", len(errs))
	}
}
