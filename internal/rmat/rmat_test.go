package rmat

import (
	"testing"

	"subgraphmatching/internal/graph"
)

func TestGenerateBasics(t *testing.T) {
	g, err := Generate(Config{NumVertices: 1000, NumEdges: 5000, NumLabels: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1000 {
		t.Errorf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 5000 {
		t.Errorf("NumEdges = %d, want exactly 5000", g.NumEdges())
	}
	if g.NumLabels() > 8 {
		t.Errorf("NumLabels = %d > 8", g.NumLabels())
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{NumVertices: 500, NumEdges: 2000, NumLabels: 4, Seed: 42}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("edge counts differ across runs with the same seed")
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Label(graph.Vertex(v)) != b.Label(graph.Vertex(v)) {
			t.Fatal("labels differ across runs with the same seed")
		}
		an, bn := a.Neighbors(graph.Vertex(v)), b.Neighbors(graph.Vertex(v))
		if len(an) != len(bn) {
			t.Fatal("adjacency differs across runs with the same seed")
		}
	}
	c, err := Generate(Config{NumVertices: 500, NumEdges: 2000, NumLabels: 4, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := 0; v < a.NumVertices() && same; v++ {
		if len(a.Neighbors(graph.Vertex(v))) != len(c.Neighbors(graph.Vertex(v))) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical degree sequences (suspicious)")
	}
}

func TestPowerLawSkew(t *testing.T) {
	// With a=0.45 the degree distribution must be skewed: the maximum
	// degree should far exceed the average.
	g, err := Generate(Config{NumVertices: 4096, NumEdges: 20000, NumLabels: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if float64(g.MaxDegree()) < 4*g.AverageDegree() {
		t.Errorf("max degree %d vs average %.1f: not power-law-ish", g.MaxDegree(), g.AverageDegree())
	}
}

func TestLabelSkew(t *testing.T) {
	g, err := Generate(Config{NumVertices: 10000, NumEdges: 20000, NumLabels: 5, LabelSkew: 0.8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(g.LabelFrequency(0)) / float64(g.NumVertices())
	if frac < 0.75 || frac > 0.9 {
		t.Errorf("label 0 fraction = %.2f, want ~0.8", frac)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{NumVertices: 1, NumEdges: 0, NumLabels: 1},                  // too few vertices
		{NumVertices: 10, NumEdges: 100, NumLabels: 1},               // too many edges
		{NumVertices: 10, NumEdges: 5, NumLabels: 0},                 // no labels
		{NumVertices: 10, NumEdges: 5, NumLabels: 1, A: 0.9, B: 0.9}, // bad probabilities
		{NumVertices: 10, NumEdges: 5, NumLabels: 1, LabelSkew: 1.5}, // bad skew
	}
	for i, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
}
