package filter

import (
	"math/rand"
	"testing"
	"testing/quick"

	"subgraphmatching/internal/testutil"
)

func TestGraphQLRadiusOneMatchesDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		g := testutil.RandomGraph(rng, 25, 70, 3)
		q := testutil.RandomConnectedQuery(rng, g, 5)
		if q == nil {
			continue
		}
		a := RunGraphQL(q, g, DefaultGQLRounds)
		b := RunGraphQLRadius(q, g, DefaultGQLRounds, 1)
		for u := range a {
			if len(a[u]) != len(b[u]) {
				t.Fatalf("radius-1 differs from default at u%d: %v vs %v", u, a[u], b[u])
			}
		}
	}
}

func TestGraphQLRadiusTwoCompleteAndTighter(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 15+rng.Intn(20), 35+rng.Intn(40), 2+rng.Intn(3))
		q := testutil.RandomConnectedQuery(rng, g, 3+rng.Intn(4))
		if q == nil {
			return true
		}
		r1 := RunGraphQLRadius(q, g, DefaultGQLRounds, 1)
		r2 := RunGraphQLRadius(q, g, DefaultGQLRounds, 2)
		// r=2 must prune at least as much as r=1.
		for u := range r1 {
			if !subsetOf(r2[u], r1[u]) {
				t.Logf("r2 C(u%d)=%v not subset of r1 %v (seed %d)", u, r2[u], r1[u], seed)
				return false
			}
		}
		// And must stay complete.
		for _, match := range testutil.BruteForceMatches(q, g) {
			for u, v := range match {
				found := false
				for _, c := range r2[u] {
					if c == v {
						found = true
						break
					}
				}
				if !found {
					t.Logf("r2 dropped match vertex v%d from C(u%d) (seed %d)", v, u, seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestProfilerCountsPaperExample(t *testing.T) {
	g := testutil.PaperData()
	p := newProfiler(g, 1)
	// v7's profile: distance 0 is itself (C); distance <= 1 adds
	// neighbor v6 (B).
	prof := p.profile(g, 7)
	if len(prof) != 2 {
		t.Fatalf("profile(v7) has %d rings", len(prof))
	}
	if len(prof[0]) != 1 || prof[0][0].label != testutil.LabelC || prof[0][0].count != 1 {
		t.Errorf("distance-0 ring = %v", prof[0])
	}
	if len(prof[1]) != 2 || prof[1][0].label != testutil.LabelB || prof[1][1].label != testutil.LabelC {
		t.Errorf("distance-1 ring = %v", prof[1])
	}
	// Radius 2 from v7 reaches v0 (A) and v10 (D) through v6: four
	// distinct labels cumulatively.
	p2 := newProfiler(g, 2)
	prof2 := p2.profile(g, 7)
	if len(prof2[2]) != 4 {
		t.Fatalf("radius-2 cumulative ring = %v", prof2[2])
	}
}

func TestProfilerCovers(t *testing.T) {
	g := testutil.PaperData()
	p := newProfiler(g, 1)
	want := p.profile(g, 7) // B:1 C:1
	if !p.covers(g, 1, want) {
		// v1's neighborhood: itself C, v0 A, v2 B, v8 D — covers B:1 C:1.
		t.Error("v1 should cover v7's profile")
	}
	if p.covers(g, 9, want) {
		// v9 (E) has no B or C within one hop... it neighbors v0 (A) and
		// v11 (E) only.
		t.Error("v9 should not cover v7's profile")
	}
}
