package order

import (
	"subgraphmatching/internal/candspace"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/par"
)

// EstimateCost estimates the search-tree size induced by a matching
// order over a candidate space: the expected number of partial
// embeddings at each prefix length, summed. It generalizes the path
// cardinality estimation behind CFL's and DP-iso's cost models from
// paths to arbitrary orders.
//
// The model walks the order and maintains est(i), the estimated number
// of partial embeddings of phi[0..i]. Extending by u = phi[i] multiplies
// by the average number of candidates of u adjacent to a candidate of
// its first backward neighbor, and scales down by the selectivity of
// every additional backward edge (estimated as the fraction of candidate
// pairs connected in the auxiliary structure). Lower is better. The
// estimate ignores injectivity, so it upper-bounds weakly — but ordering
// decisions only need relative accuracy.
func EstimateCost(q *graph.Graph, space *candspace.Space, phi []graph.Vertex) float64 {
	n := q.NumVertices()
	if n == 0 || len(phi) != n {
		return 0
	}
	pos := make([]int, n)
	for i, u := range phi {
		pos[u] = i
	}
	total := float64(len(space.Candidates(phi[0])))
	est := total
	for i := 1; i < n; i++ {
		u := phi[i]
		first := true
		for _, un := range q.Neighbors(u) {
			if pos[un] >= i {
				continue
			}
			sel := edgeSelectivity(space, un, u)
			if first {
				// Average fanout from C(un) into C(u).
				est *= sel * float64(len(space.Candidates(u)))
				first = false
			} else {
				// Additional backward edges filter the partial
				// embeddings.
				est *= sel
			}
		}
		if first {
			// No backward neighbor (adaptive DAG roots): full cross
			// product.
			est *= float64(len(space.Candidates(u)))
		}
		total += est
		if est == 0 {
			break
		}
	}
	return total
}

// edgeSelectivity estimates, for the directed candidate pair (a, b), the
// probability that a random candidate of b is adjacent to a random
// candidate of a: |edges(C(a), C(b))| / (|C(a)| * |C(b)|).
func edgeSelectivity(space *candspace.Space, a, b graph.Vertex) float64 {
	ca, cb := space.Candidates(a), space.Candidates(b)
	if len(ca) == 0 || len(cb) == 0 {
		return 0
	}
	// PairSize reads the total edge count off the CSR in O(1); summing
	// per-candidate Adjacency lengths here was O(|C(a)|) per cost-model
	// probe.
	edges := space.PairSize(a, b)
	return float64(edges) / (float64(len(ca)) * float64(len(cb)))
}

// Best evaluates every ordering method under the cost model and returns
// the method with the lowest estimated cost together with its order — a
// light-weight automatic order chooser built on the study's finding that
// no single ordering method dominates (Section 6).
func Best(q, g *graph.Graph, cand [][]uint32, space *candspace.Space) (Method, []graph.Vertex, error) {
	return BestWorkers(q, g, cand, space, 1)
}

// BestWorkers is Best with the per-method order computation and cost
// probes fanned out over `workers` goroutines. Each method's (order,
// cost) pair depends only on the method, so the fan-out is trivially
// deterministic; the reduction scans methods in their canonical sequence
// and keeps the first minimum, exactly like the sequential loop (the
// first error in method order wins too).
func BestWorkers(q, g *graph.Graph, cand [][]uint32, space *candspace.Space, workers int) (Method, []graph.Vertex, error) {
	ms := Methods()
	phis := make([][]graph.Vertex, len(ms))
	costs := make([]float64, len(ms))
	errs := make([]error, len(ms))
	par.Run(workers, len(ms), func(_, t int) uint64 {
		phi, err := Compute(ms[t], q, g, cand)
		if err != nil {
			errs[t] = err
			return 1
		}
		phis[t] = phi
		costs[t] = EstimateCost(q, space, phi)
		return uint64(len(phi)) + 1
	})
	bestM := GQL
	var bestPhi []graph.Vertex
	bestCost := -1.0
	for i, m := range ms {
		if errs[i] != nil {
			return 0, nil, errs[i]
		}
		if bestCost < 0 || costs[i] < bestCost {
			bestM, bestPhi, bestCost = m, phis[i], costs[i]
		}
	}
	return bestM, bestPhi, nil
}
