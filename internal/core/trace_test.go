package core

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/obs"
	"subgraphmatching/internal/testutil"
)

// wellNested asserts the trace invariant the smatch -trace output relies
// on: at every node, the children's durations sum to no more than the
// node's own duration.
func wellNested(t *testing.T, label string, s *obs.Span) {
	t.Helper()
	if sum := s.ChildrenDuration(); sum > s.Duration {
		t.Errorf("%s: span %q children sum %v > own duration %v", label, s.Name, sum, s.Duration)
	}
	for _, c := range s.Children {
		wellNested(t, label, c)
	}
}

// TestMatchTraceAllPresets runs every preset with tracing on and checks
// the span tree's shape: a "match" root whose phase children nest within
// the request wall time (the acceptance criterion for -trace).
func TestMatchTraceAllPresets(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	for _, a := range Algorithms() {
		cfg := PresetConfig(a, q, g)
		res, err := Match(q, g, cfg, Limits{Trace: true})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		root := res.Trace
		if root == nil {
			t.Fatalf("%v: Trace nil with Limits.Trace on", a)
		}
		if root.Name != "match" {
			t.Errorf("%v: root span %q, want match", a, root.Name)
		}
		wellNested(t, a.String(), root)
		if root.Child("enumerate") == nil {
			t.Errorf("%v: no enumerate child", a)
		}
		external := cfg.UseGlasgow || cfg.UseVF2 || cfg.UseUllmann
		if pre := root.Child("preprocess"); !external {
			if pre == nil {
				t.Fatalf("%v: no preprocess child", a)
			}
			for _, phase := range []string{"filter", "build", "order"} {
				if pre.Child(phase) == nil {
					t.Errorf("%v: preprocess missing %q child", a, phase)
				}
			}
			f := pre.Child("filter")
			if f != nil && f.Attr("method") == nil {
				t.Errorf("%v: filter span has no method attr", a)
			}
		} else if pre != nil {
			t.Errorf("%v: external engine grew a preprocess span", a)
		}
	}
}

// TestMatchTraceOff confirms tracing is opt-in.
func TestMatchTraceOff(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	res, err := Match(q, g, PresetConfig(Optimized, q, g), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("Trace set without Limits.Trace")
	}
}

// TestMatchTraceFilterStages checks that a sequential run surfaces the
// filter's internal stages as children of the filter span.
func TestMatchTraceFilterStages(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := testutil.RandomGraph(rng, 100, 400, 3)
	q := testutil.RandomConnectedQuery(rng, g, 5)
	res, err := Match(q, g, PresetConfig(GraphQL, q, g), Limits{Trace: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Trace.Child("preprocess").Child("filter")
	if f == nil {
		t.Fatal("no filter span")
	}
	if len(f.Children) < 2 {
		t.Fatalf("filter span has %d stage children, want >= 2 (local + refine)", len(f.Children))
	}
	if f.Children[0].Name != "local" {
		t.Errorf("first stage %q, want local", f.Children[0].Name)
	}
	if !strings.HasPrefix(f.Children[1].Name, "refine-") {
		t.Errorf("second stage %q, want refine-*", f.Children[1].Name)
	}
}

// TestParallelPreprocessFilterTrace closes the observability gap where
// only sequential preprocessing reported filter stage children: under
// Workers > 1 every filter method must surface its stage children AND
// one worker-N child per preprocessing worker on the filter span.
func TestParallelPreprocessFilterTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := testutil.RandomGraph(rng, 100, 400, 3)
	q := testutil.RandomConnectedQuery(rng, g, 5)
	for _, m := range filter.Methods() {
		cfg := PresetConfig(GraphQL, q, g)
		cfg.Filter = m
		plan, err := Preprocess(q, g, cfg, 4)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		f := plan.Span.Child("filter")
		if f == nil {
			t.Fatalf("%v: no filter span", m)
		}
		wellNested(t, m.String(), plan.Span)
		var stages, workers int
		var work uint64
		for _, c := range f.Children {
			if strings.HasPrefix(c.Name, "worker-") {
				workers++
				if v, ok := c.Attr("work").(uint64); ok {
					work += v
				}
			} else {
				stages++
			}
		}
		if stages == 0 {
			t.Errorf("%v: parallel filter span has no stage children", m)
		}
		if workers == 0 {
			t.Errorf("%v: parallel filter span has no worker children", m)
		}
		if work == 0 {
			t.Errorf("%v: worker children tally zero work", m)
		}
	}
}

// TestParallelWorkerStats checks the scheduler tallies: every task is
// accounted to exactly one worker, per-worker nodes match WorkerNodes,
// and the trace surfaces one worker child per worker.
func TestParallelWorkerStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := testutil.RandomGraph(rng, 200, 900, 2)
	q := testutil.RandomConnectedQuery(rng, g, 5)
	want := testutil.BruteForceCount(q, g, 0)

	for _, sched := range Schedules() {
		cfg := PresetConfig(Optimized, q, g)
		res, err := Match(q, g, cfg, Limits{Trace: true, Parallel: 4, Schedule: sched})
		if err != nil {
			t.Fatalf("%v: %v", sched, err)
		}
		if res.Embeddings != want {
			t.Fatalf("%v: %d embeddings, want %d", sched, res.Embeddings, want)
		}
		if len(res.Workers) == 0 {
			t.Fatalf("%v: no worker stats on a parallel run", sched)
		}
		if len(res.Workers) != len(res.WorkerNodes) {
			t.Fatalf("%v: %d Workers vs %d WorkerNodes", sched, len(res.Workers), len(res.WorkerNodes))
		}
		var tasks, nodes uint64
		for w, ws := range res.Workers {
			tasks += ws.Tasks
			nodes += ws.Nodes
			if ws.Nodes != res.WorkerNodes[w] {
				t.Errorf("%v: worker %d nodes %d != WorkerNodes %d", sched, w, ws.Nodes, res.WorkerNodes[w])
			}
		}
		if tasks == 0 {
			t.Errorf("%v: zero tasks executed", sched)
		}
		if res.Split != nil {
			// Probe expansions are search work done before the workers
			// start; Nodes carries them, the per-worker tallies don't.
			nodes += res.Split.Probes
		}
		if nodes != res.Nodes {
			t.Errorf("%v: worker nodes sum %d != Nodes %d", sched, nodes, res.Nodes)
		}
		enum := res.Trace.Child("enumerate")
		if enum == nil {
			t.Fatalf("%v: no enumerate span", sched)
		}
		if len(enum.Children) != len(res.Workers) {
			t.Errorf("%v: %d worker spans, want %d", sched, len(enum.Children), len(res.Workers))
		}
	}
}

// TestWorkStealTasksConserved pins down the work-steal accounting: with
// no early stop, the workers' Tasks must sum to the task-pool size (each
// root candidate, or each depth-1 pair when the pool was split).
func TestWorkStealTasksConserved(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := testutil.RandomGraph(rng, 150, 700, 2)
	q := testutil.RandomConnectedQuery(rng, g, 4)
	cfg := PresetConfig(Optimized, q, g)

	// SplitFactor 1 keeps tasks root-grained, so the expected pool size
	// is exactly the root's candidate count.
	plan, err := Preprocess(q, g, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Empty {
		t.Skip("empty candidate set")
	}
	res, err := MatchPlan(plan, Limits{Parallel: 3, SplitFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	var tasks uint64
	for _, ws := range res.Workers {
		tasks += ws.Tasks
	}
	wantTasks := uint64(len(plan.Cand[plan.Order[0]]))
	if tasks != wantTasks {
		t.Errorf("tasks sum %d, want %d (root candidates)", tasks, wantTasks)
	}
}

// TestPlanSpanAlwaysBuilt: Preprocess populates Plan.Span regardless of
// tracing flags — the serving layer's cache stores it once per plan.
func TestPlanSpanAlwaysBuilt(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	plan, err := Preprocess(q, g, PresetConfig(CFL, q, g), 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Span == nil {
		t.Fatal("Plan.Span nil")
	}
	if plan.Span.Name != "preprocess" {
		t.Errorf("span name %q", plan.Span.Name)
	}
	if plan.Span.Duration <= 0 {
		t.Error("preprocess span has no duration")
	}
	if got := plan.Span.ChildrenDuration(); got > plan.Span.Duration {
		t.Errorf("children %v > span %v", got, plan.Span.Duration)
	}
	// The span durations must agree with the plan's recorded times.
	if f := plan.Span.Child("filter"); f == nil || absDur(f.Duration-plan.FilterTime) > time.Millisecond {
		t.Errorf("filter span disagrees with FilterTime")
	}
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
