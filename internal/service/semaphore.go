package service

import (
	"container/list"
	"context"
	"sync"
	"time"
)

// semaphore is a weighted counting semaphore with strict-FIFO waiters, a
// bounded wait queue, and a per-acquire wait deadline. It is the
// admission controller: capacity is the total number of enumeration
// workers the service lets run at once, and each request acquires its
// worker count before preprocessing or enumerating anything. Overload
// therefore surfaces as a typed error at the front door instead of an
// unbounded goroutine pileup behind it.
//
// Strict FIFO (no small-request bypass) keeps heavy parallel requests
// from starving: a waiter at the head blocks later light requests until
// it fits, trading a little throughput for a wait-time bound.
type semaphore struct {
	mu       sync.Mutex
	capacity int64
	inUse    int64
	waiters  list.List // of *semWaiter, front = oldest
}

type semWaiter struct {
	weight int64
	ready  chan struct{} // closed when the slot is granted
}

func newSemaphore(capacity int64) *semaphore {
	if capacity < 1 {
		capacity = 1
	}
	return &semaphore{capacity: capacity}
}

// clampWeight bounds a request's weight to the total capacity so an
// oversized request degrades to "the whole machine" instead of
// deadlocking the queue.
func (s *semaphore) clampWeight(w int64) int64 {
	if w < 1 {
		return 1
	}
	if w > s.capacity {
		return s.capacity
	}
	return w
}

// acquire obtains weight units, waiting at most maxWait (0 = no waiting)
// behind at most maxQueue earlier waiters. It returns nil on success,
// ErrQueueFull / ErrQueueTimeout on overload, or ctx.Err() if the
// context ends first.
func (s *semaphore) acquire(ctx context.Context, weight int64, maxWait time.Duration, maxQueue int) error {
	weight = s.clampWeight(weight)
	s.mu.Lock()
	if s.inUse+weight <= s.capacity && s.waiters.Len() == 0 {
		s.inUse += weight
		s.mu.Unlock()
		return nil
	}
	if maxWait <= 0 || s.waiters.Len() >= maxQueue {
		s.mu.Unlock()
		return ErrQueueFull
	}
	w := &semWaiter{weight: weight, ready: make(chan struct{})}
	elem := s.waiters.PushBack(w)
	s.mu.Unlock()

	timer := time.NewTimer(maxWait)
	defer timer.Stop()
	var err error
	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		err = ctx.Err()
	case <-timer.C:
		err = ErrQueueTimeout
	}
	// Lost the race between grant and give-up? The grant wins for a
	// timeout (the slot is here, use it) but not for a dead context.
	s.mu.Lock()
	select {
	case <-w.ready:
		s.mu.Unlock()
		if ctx.Err() != nil {
			s.release(weight)
			return err
		}
		return nil
	default:
		s.waiters.Remove(elem)
		// Removing a waiter can unblock the ones behind it.
		s.grantLocked()
		s.mu.Unlock()
		return err
	}
}

// release returns weight units and wakes eligible waiters in FIFO order.
func (s *semaphore) release(weight int64) {
	weight = s.clampWeight(weight)
	s.mu.Lock()
	s.inUse -= weight
	if s.inUse < 0 {
		panic("service: semaphore released more than acquired")
	}
	s.grantLocked()
	s.mu.Unlock()
}

func (s *semaphore) grantLocked() {
	for e := s.waiters.Front(); e != nil; e = s.waiters.Front() {
		w := e.Value.(*semWaiter)
		if s.inUse+w.weight > s.capacity {
			return
		}
		s.inUse += w.weight
		s.waiters.Remove(e)
		close(w.ready)
	}
}

// load reports the current occupancy and queue depth.
func (s *semaphore) load() (capacity, inUse int64, queued int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.capacity, s.inUse, s.waiters.Len()
}
