package subgraphmatching_test

import (
	"math/rand"
	"testing"

	sm "subgraphmatching"
	"subgraphmatching/internal/testutil"
)

func TestContains(t *testing.T) {
	q, g := paperGraphs()
	ok, err := sm.Contains(q, g, sm.Options{Algorithm: sm.AlgoOptimized})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("paper data graph must contain the paper query")
	}
	// A query with a label absent from g.
	missing, err := sm.FromEdges([]sm.Label{9, 9, 9}, [][2]sm.Vertex{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	ok, err = sm.Contains(missing, g, sm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("graph should not contain a query with unknown labels")
	}
}

func TestContainingGraphs(t *testing.T) {
	q, g := paperGraphs()
	// A collection: the paper graph (contains q), a copy of q (contains
	// q trivially), and a tiny graph that cannot.
	tiny, _ := sm.FromEdges([]sm.Label{0, 1}, [][2]sm.Vertex{{0, 1}})
	got, err := sm.ContainingGraphs(q, []*sm.Graph{g, tiny, q}, sm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("ContainingGraphs = %v, want [0 2]", got)
	}
}

func TestEstimateEmbeddingsUpperBoundsTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	checked := 0
	for trial := 0; trial < 40 && checked < 15; trial++ {
		g := testutil.RandomGraph(rng, 20+rng.Intn(20), 50+rng.Intn(50), 2+rng.Intn(2))
		q := testutil.RandomConnectedQuery(rng, g, 4)
		if q == nil {
			continue
		}
		checked++
		est, err := sm.EstimateEmbeddings(q, g)
		if err != nil {
			t.Fatal(err)
		}
		truth := testutil.BruteForceCount(q, g, 0)
		// The tree estimate ignores non-tree edges and injectivity, so
		// it must never be below the true count.
		if est < float64(truth) {
			t.Errorf("estimate %.0f below true count %d", est, truth)
		}
	}
	if checked == 0 {
		t.Skip("no queries generated")
	}
}

func TestEstimateEmbeddingsZeroWhenNoCandidates(t *testing.T) {
	_, g := paperGraphs()
	q, _ := sm.FromEdges([]sm.Label{9, 9, 9}, [][2]sm.Vertex{{0, 1}, {1, 2}})
	est, err := sm.EstimateEmbeddings(q, g)
	if err != nil {
		t.Fatal(err)
	}
	if est != 0 {
		t.Errorf("estimate = %v, want 0", est)
	}
}

func TestEstimateExactOnPaperExample(t *testing.T) {
	q, g := paperGraphs()
	est, err := sm.EstimateEmbeddings(q, g)
	if err != nil {
		t.Fatal(err)
	}
	// On the fully-refined paper example the candidate space is tight;
	// the tree estimate must be small and at least 1 (one real match).
	if est < 1 || est > 16 {
		t.Errorf("estimate = %v, expected a small value >= 1", est)
	}
}
