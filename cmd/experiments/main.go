// Command experiments regenerates the tables and figures of the paper's
// evaluation (Section 5) over the dataset stand-ins. Absolute numbers
// differ from the paper (scaled datasets and limits); the comparative
// shapes — which method wins, by roughly what factor, where crossovers
// fall — are the reproduction target.
//
// Usage:
//
//	experiments list
//	experiments all [flags]
//	experiments fig11 table5 ... [flags]
//
// Flags:
//
//	-datasets ye,hp,yt   restrict datasets (default: all eight)
//	-per-set 10          queries per query set (paper: 200)
//	-timeout 1s          per-query time limit (paper: 5m)
//	-limit 100000        embedding cap per query (paper: 1e5)
//	-seed 1              query-generation seed
//	-orders 200          sampled orders in the spectrum analysis (paper: 1000)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"subgraphmatching/internal/experiments"
)

func main() {
	var (
		datasetsFlag = flag.String("datasets", "", "comma-separated dataset names (default: all)")
		perSet       = flag.Int("per-set", 0, "queries per query set")
		timeout      = flag.Duration("timeout", 0, "per-query time limit")
		limit        = flag.Uint64("limit", 0, "embedding cap per query")
		seed         = flag.Int64("seed", 0, "query-generation seed")
		orders       = flag.Int("orders", 0, "spectrum-analysis order samples")
		csvPath      = flag.String("csv", "", "also write result tables as CSV to this file")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	env := experiments.Env{
		Out:            os.Stdout,
		PerSet:         *perSet,
		TimeLimit:      *timeout,
		MaxEmbeddings:  *limit,
		Seed:           *seed,
		SpectrumOrders: *orders,
	}
	if *datasetsFlag != "" {
		env.Datasets = strings.Split(*datasetsFlag, ",")
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		env.CSV = f
	}

	if args[0] == "list" {
		for _, e := range experiments.Registry() {
			fmt.Printf("  %-8s %s\n", e.Name, e.Description)
		}
		return
	}

	var names []string
	if args[0] == "all" {
		for _, e := range experiments.Registry() {
			names = append(names, e.Name)
		}
	} else {
		names = args
	}
	start := time.Now()
	for _, name := range names {
		run, err := experiments.Lookup(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := run(env); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	fmt.Printf("completed %d experiment(s) in %v\n", len(names), time.Since(start).Round(time.Millisecond))
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: experiments [flags] list | all | <name>...
run "experiments list" to see available experiments`)
	flag.PrintDefaults()
}
