package candspace

import (
	"math/rand"
	"testing"

	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/testutil"
)

func TestEstimateTreeEmbeddingsPaperExample(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	cand, err := filter.Run(filter.GQL, q, g)
	if err != nil {
		t.Fatal(err)
	}
	s := BuildFull(q, g, cand)
	delta := graph.NewBFSTree(q, 0).Order
	est := EstimateSpanningTreeEmbeddings(s, delta)
	// The refined space has C = {v0},{v2,v4},{v3,v5},{v10,v12}. The BFS
	// tree is u0->{u1,u2}, u1->u3. Tree embeddings: v0 x (u1,u3 pairs) x
	// (u2 choices): u1=v2 -> u3 in {v12}; u1=v4 -> u3 in {v10,v12};
	// u2 in {v3,v5} independently: (1+2)*2 = 6.
	if est != 6 {
		t.Errorf("estimate = %v, want 6", est)
	}
	// The true (injective, all-edge) count is 1; the tree estimate must
	// be an upper bound.
	if est < 1 {
		t.Error("estimate below true count")
	}
}

func TestEstimateUpperBoundsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		g := testutil.RandomGraph(rng, 20, 60, 2)
		q := testutil.RandomConnectedQuery(rng, g, 4)
		if q == nil {
			continue
		}
		cand := filter.RunNLF(q, g)
		if filter.AnyEmpty(cand) {
			continue
		}
		s := BuildFull(q, g, cand)
		delta := graph.NewBFSTree(q, 0).Order
		est := EstimateSpanningTreeEmbeddings(s, delta)
		truth := testutil.BruteForceCount(q, g, 0)
		if est < float64(truth) {
			t.Fatalf("estimate %v < true count %d", est, truth)
		}
	}
}

func TestEstimateEmptyQuery(t *testing.T) {
	q := graph.MustFromEdges(nil, nil)
	s := BuildFull(q, testutil.PaperData(), nil)
	if got := EstimateSpanningTreeEmbeddings(s, nil); got != 0 {
		t.Errorf("estimate on empty query = %v", got)
	}
}

func TestEstimateZeroOnDeadCandidates(t *testing.T) {
	// A candidate space where one vertex's candidates have no edges to
	// its parent's candidates must estimate 0.
	q := testutil.PaperQuery()
	g := testutil.PaperData()
	cand := [][]uint32{{0}, {2, 4}, {3, 5}, {8}} // v8 has no B/C neighbors in these sets
	s := BuildFull(q, g, cand)
	delta := graph.NewBFSTree(q, 0).Order
	if got := EstimateSpanningTreeEmbeddings(s, delta); got != 0 {
		t.Errorf("estimate = %v, want 0", got)
	}
}
