package intersect

import "fmt"

// Policy selects how the per-call intersection kernel is chosen.
// PolicyAdaptive (the zero value and the default) picks merge, gallop,
// or the word-parallel block kernel per call from the input sizes, the
// size ratio, and the block density recorded at materialization time.
// The static policies pin one kernel for the whole run — they exist for
// the Figure 10 reproduction and for isolating kernels in benchmarks.
type Policy uint8

const (
	// PolicyAdaptive chooses merge/gallop/block per call.
	PolicyAdaptive Policy = iota
	// PolicyMerge always uses the two-pointer merge.
	PolicyMerge
	// PolicyGallop always uses galloping search.
	PolicyGallop
	// PolicyHybrid applies the paper's size-ratio switch between merge
	// and gallop (the pre-adaptive default), never the block kernel.
	PolicyHybrid
	// PolicyBlock always uses the word-parallel block kernel when a
	// block layout is available, falling back to Hybrid otherwise.
	PolicyBlock
)

var policyNames = [...]string{"adaptive", "merge", "gallop", "hybrid", "block"}

func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// ParsePolicy maps a policy name (adaptive, merge, gallop, hybrid,
// block) to its Policy.
func ParsePolicy(s string) (Policy, error) {
	for i, name := range policyNames {
		if s == name {
			return Policy(i), nil
		}
	}
	return PolicyAdaptive, fmt.Errorf("unknown kernel policy %q (want adaptive, merge, gallop, hybrid, or block)", s)
}

// Kernel identifies one executed pairwise kernel, for accounting.
type Kernel uint8

const (
	KernelMerge Kernel = iota
	KernelGallop
	KernelBlock
	// NumKernels bounds the Kernel enum (array-index use).
	NumKernels
)

var kernelNames = [NumKernels]string{"merge", "gallop", "block"}

func (k Kernel) String() string {
	if k < NumKernels {
		return kernelNames[k]
	}
	return fmt.Sprintf("Kernel(%d)", uint8(k))
}

// KernelNames lists the kernel label values in Kernel order — the
// domain of the smatch_intersect_kernel_total metric's kernel label.
func KernelNames() [NumKernels]string { return kernelNames }

// KernelStats counts pairwise kernel executions by kernel, indexed by
// Kernel. The zero value is ready to use.
type KernelStats [NumKernels]uint64

// Add accumulates another tally into s.
func (s *KernelStats) Add(o KernelStats) {
	for i := range s {
		s[i] += o[i]
	}
}

// Total returns the total pairwise kernel executions.
func (s KernelStats) Total() uint64 {
	var n uint64
	for _, v := range s {
		n += v
	}
	return n
}

// Map returns the nonzero tallies keyed by kernel name (nil when all
// zero) — the JSON/trace representation of the kernel mix.
func (s KernelStats) Map() map[string]uint64 {
	var m map[string]uint64
	for i, v := range s {
		if v != 0 {
			if m == nil {
				m = make(map[string]uint64, len(s))
			}
			m[kernelNames[i]] = v
		}
	}
	return m
}

// DenseFactor gates the adaptive block-kernel choice: the block kernel
// is picked only when the inputs average at least DenseFactor elements
// per occupied 64-wide block (blocks(a)+blocks(b) ≤ (|a|+|b|)/
// DenseFactor). Below that density the per-block overhead exceeds the
// word-parallel gain — the QFilter trade-off Figure 10 measures.
const DenseFactor = 2

// Selector is the per-engine adaptive kernel dispatcher. It owns the
// k-way scratch buffers (so steady-state calls stay allocation-free)
// and tallies every pairwise kernel execution for the run's kernel-mix
// stats. Not safe for concurrent use; each worker engine holds its own.
type Selector struct {
	policy Policy
	stats  KernelStats
	ix     Scratch
}

// SetPolicy sets the dispatch policy for subsequent calls.
func (s *Selector) SetPolicy(p Policy) { s.policy = p }

// Policy returns the current dispatch policy.
func (s *Selector) Policy() Policy { return s.policy }

// Stats returns the kernel-execution tally since the last reset.
func (s *Selector) Stats() KernelStats { return s.stats }

// ResetStats clears the kernel tally (run boundaries).
func (s *Selector) ResetStats() { s.stats = KernelStats{} }

// chooseAdaptive picks the kernel for a pair under PolicyAdaptive.
// a must be the smaller input. The density test runs first: when both
// inputs are dense enough to amortize the per-block overhead, the
// word-parallel kernel wins even under heavy skew, because
// IntersectViews gallops its block-key merge — O(blocks(a)·log
// blocks(b)) key steps, a 64× coarser walk than element galloping.
// Sparse inputs fail the density test; those gallop at a
// GallopThreshold size ratio and merge otherwise.
func chooseAdaptive(la, lb, ba, bb int, haveViews bool) Kernel {
	if haveViews && (ba+bb)*DenseFactor <= la+lb {
		return KernelBlock
	}
	if lb/la >= GallopThreshold {
		return KernelGallop
	}
	return KernelMerge
}

// Pair intersects two sorted slices under the selector's policy,
// appending to dst. av/bv are the inputs' block views when materialized
// (zero BlockView = unavailable); the slices and views must describe
// the same sets.
func (s *Selector) Pair(dst, a, b []uint32, av, bv BlockView) []uint32 {
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return dst
	}
	if la > lb {
		a, b = b, a
		av, bv = bv, av
		la, lb = lb, la
	}
	switch s.policy {
	case PolicyMerge:
		s.stats[KernelMerge]++
		return Merge(dst, a, b)
	case PolicyGallop:
		s.stats[KernelGallop]++
		return Galloping(dst, a, b)
	case PolicyHybrid:
		if lb/la >= GallopThreshold {
			s.stats[KernelGallop]++
			return Galloping(dst, a, b)
		}
		s.stats[KernelMerge]++
		return Merge(dst, a, b)
	case PolicyBlock:
		if av.Valid() && bv.Valid() {
			s.stats[KernelBlock]++
			return IntersectViews(dst, av, bv)
		}
		if lb/la >= GallopThreshold {
			s.stats[KernelGallop]++
			return Galloping(dst, a, b)
		}
		s.stats[KernelMerge]++
		return Merge(dst, a, b)
	default: // PolicyAdaptive
		k := chooseAdaptive(la, lb, len(av.Keys), len(bv.Keys), av.Valid() && bv.Valid())
		s.stats[k]++
		switch k {
		case KernelGallop:
			return Galloping(dst, a, b)
		case KernelBlock:
			return IntersectViews(dst, av, bv)
		default:
			return Merge(dst, a, b)
		}
	}
}

// pairWithSorted intersects a plain running intersection `a` (no view)
// with input `b` whose optional view is bv — the mid-k-way step where
// only one side still has a layout. The block kernel probes bv with a's
// elements, so its density test looks at b alone.
func (s *Selector) pairWithSorted(dst, a, b []uint32, bv BlockView) []uint32 {
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return dst
	}
	lmin, lmax := la, lb
	if lmin > lmax {
		lmin, lmax = lmax, lmin
	}
	switch s.policy {
	case PolicyMerge:
		s.stats[KernelMerge]++
		return Merge(dst, a, b)
	case PolicyGallop:
		s.stats[KernelGallop]++
		return Galloping(dst, a, b)
	case PolicyHybrid:
		if lmax/lmin >= GallopThreshold {
			s.stats[KernelGallop]++
			return Galloping(dst, a, b)
		}
		s.stats[KernelMerge]++
		return Merge(dst, a, b)
	case PolicyBlock:
		if bv.Valid() {
			s.stats[KernelBlock]++
			return IntersectViewWithSorted(dst, bv, a)
		}
		if lmax/lmin >= GallopThreshold {
			s.stats[KernelGallop]++
			return Galloping(dst, a, b)
		}
		s.stats[KernelMerge]++
		return Merge(dst, a, b)
	default: // PolicyAdaptive
		if lmax/lmin >= GallopThreshold {
			s.stats[KernelGallop]++
			return Galloping(dst, a, b)
		}
		if bv.Valid() && len(bv.Keys)*DenseFactor <= lb {
			s.stats[KernelBlock]++
			return IntersectViewWithSorted(dst, bv, a)
		}
		s.stats[KernelMerge]++
		return Merge(dst, a, b)
	}
}

// Many intersects k ≥ 0 sorted slices under the selector's policy,
// appending to dst — the selector-dispatched analogue of
// Scratch.IntersectMany. views, when non-nil, must parallel sets
// (views[i] is sets[i]'s block view, zero when unavailable). Both
// slices may be reordered in place (smallest set moved first).
func (s *Selector) Many(dst []uint32, sets [][]uint32, views []BlockView) []uint32 {
	var v0, v1 BlockView
	switch len(sets) {
	case 0:
		return dst
	case 1:
		return append(dst, sets[0]...)
	case 2:
		if views != nil {
			v0, v1 = views[0], views[1]
		}
		return s.Pair(dst, sets[0], sets[1], v0, v1)
	}
	minIdx := 0
	for i, set := range sets {
		if len(set) < len(sets[minIdx]) {
			minIdx = i
		}
	}
	sets[0], sets[minIdx] = sets[minIdx], sets[0]
	if views != nil {
		views[0], views[minIdx] = views[minIdx], views[0]
		v0, v1 = views[0], views[1]
	}
	cur := s.Pair(s.ix.a[:0], sets[0], sets[1], v0, v1)
	tmp := s.ix.b[:0]
	for i := 2; i < len(sets); i++ {
		if len(cur) == 0 {
			break
		}
		var bv BlockView
		if views != nil {
			bv = views[i]
		}
		tmp = s.pairWithSorted(tmp[:0], cur, sets[i], bv)
		cur, tmp = tmp, cur
	}
	dst = append(dst, cur...)
	s.ix.a, s.ix.b = cur[:0], tmp[:0]
	return dst
}
