package core

import (
	"subgraphmatching/internal/candspace"
	"subgraphmatching/internal/enumerate"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/intersect"
)

// Cost-model-driven task splitting. The static SplitFactor heuristic
// expands every root candidate into all its depth-1 pairs whenever the
// root list is small; the cost model instead estimates each task's
// subtree weight — candidate cardinalities scaled by edge selectivities
// along the order, refined by the probed fanout of the task's pinned
// prefix — and splits only the tasks whose estimate exceeds a share of
// the total, recursing below depth 1 when one (root, second) pair still
// dominates. On skewed data a handful of heavy roots own nearly all the
// search tree; weighting the split puts the task granularity where the
// work is instead of shattering the cheap roots too.

const (
	// splitShareDivisor sets the split threshold: a task is split while
	// its estimate exceeds total/(workers*splitShareDivisor), i.e. tasks
	// are sized to at most 1/4 of a worker's fair share.
	splitShareDivisor = 4
	// splitMinCost floors the threshold: subtrees this small are cheaper
	// to run than to probe and re-enqueue.
	splitMinCost = 64
	// splitMaxTasksPerWorker caps the task pool; beyond it per-task
	// dispatch overhead outweighs any balance gain.
	splitMaxTasksPerWorker = 128
)

// SplitInfo reports how the parallel scheduler built its task pool: the
// policy, the pool shape, the probe work spent splitting, and the cost
// model's node prediction — checkable against the measured Result.Nodes.
type SplitInfo struct {
	// Policy that built the task pool.
	Policy SplitPolicy
	// Tasks fed to the scheduler; SplitTasks of them pin more than the
	// root vertex. MaxPrefix is the deepest pinned prefix length
	// (1 = root-grained tasks only).
	Tasks      int
	SplitTasks int
	MaxPrefix  int
	// Probes counts probe expansions (one local-candidate computation
	// each), ProbeCandidates the candidates they produced, and
	// ProbeKernels the intersection kernels they executed. Probe work is
	// folded into Result.Nodes/Result.Kernels and carried as the EXPLAIN
	// heat table's probe row, so profile reconciliation stays exact.
	Probes          uint64
	ProbeCandidates uint64
	ProbeKernels    intersect.KernelStats
	// PredictedNodes is the cost model's estimate of the enumeration
	// search nodes (the per-task estimates summed over the final pool);
	// compare against Result.Nodes minus Probes. Zero under SplitStatic,
	// which estimates nothing.
	PredictedNodes uint64
}

// splitEstimator precomputes the per-depth expected branching and
// subtree sizes for one (order, candidates) pair. branch[d] is the
// expected number of depth-(d+1) extensions per search node at depth d:
// |C(phi[d])| scaled by the selectivity of every backward edge, read off
// the candidate-space CSR in O(1) per edge (the same model
// order.EstimateCost ranks orders with). Without a space (Direct/Scan
// locals) the data graph's edge density stands in for selectivity.
// subtree[d] is the expected node count of the search subtree rooted at
// one node at depth d: subtree[n] = 1 (a leaf), subtree[d] = 1 +
// branch[d]*subtree[d+1].
type splitEstimator struct {
	branch  []float64
	subtree []float64
}

func newSplitEstimator(q, g *graph.Graph, cand [][]uint32, space *candspace.Space, phi []graph.Vertex) *splitEstimator {
	n := q.NumVertices()
	est := &splitEstimator{
		branch:  make([]float64, n+1),
		subtree: make([]float64, n+1),
	}
	pos := make([]int, n)
	for i, u := range phi {
		pos[u] = i
	}
	nv := float64(g.NumVertices())
	density := 0.0
	if nv > 0 {
		density = 2 * float64(g.NumEdges()) / (nv * nv)
	}
	for d := 0; d < n; d++ {
		u := phi[d]
		b := float64(len(cand[u]))
		for _, un := range q.Neighbors(u) {
			if pos[un] >= d {
				continue
			}
			b *= backEdgeSelectivity(space, un, u, density)
		}
		est.branch[d] = b
	}
	est.subtree[n] = 1
	for d := n - 1; d >= 0; d-- {
		est.subtree[d] = 1 + est.branch[d]*est.subtree[d+1]
	}
	return est
}

// backEdgeSelectivity estimates the probability that a random candidate
// of b is adjacent to a random candidate of a: the materialized pair's
// edge count over the candidate cross product, or the graph density when
// the pair is absent from the space (tree-compressed spaces, Direct/Scan
// locals).
func backEdgeSelectivity(space *candspace.Space, a, b graph.Vertex, density float64) float64 {
	if space == nil || !space.HasPair(a, b) {
		return density
	}
	ca, cb := space.Candidates(a), space.Candidates(b)
	if len(ca) == 0 || len(cb) == 0 {
		return 0
	}
	return float64(space.PairSize(a, b)) / (float64(len(ca)) * float64(len(cb)))
}

// taskCost estimates the search nodes of a task pinned to a
// prefix of the given length with the probed fanout: the task's entry
// node plus one expected subtree per probed child.
func (est *splitEstimator) taskCost(prefixLen, fanout int) float64 {
	return 1 + float64(fanout)*est.subtree[prefixLen+1]
}

// splitWork is one candidate task during splitting: its pinned prefix,
// the probed local candidates of the next order vertex (the children a
// split would pin), and its cost estimate.
type splitWork struct {
	prefix   []uint32
	children []uint32
	est      float64
}

// buildStaticTasks is the SplitStatic policy: expand every root
// candidate into all its depth-1 pairs. Probe work is tallied; the
// model predicts nothing. A probe halted by cancellation or the
// deadline falls back to root-grained tasks for the remaining roots, so
// the pool always covers the full search space.
func buildStaticTasks(probe *enumerate.Engine, rootCands []uint32, info *SplitInfo) []enumTask {
	tasks := make([]enumTask, 0, len(rootCands))
	var buf []uint32
	for i, v := range rootCands {
		if probe.Stopped() {
			for _, r := range rootCands[i:] {
				tasks = append(tasks, enumTask{root: r, second: noSecond})
			}
			break
		}
		buf = probe.ExpandRoot(v, buf[:0])
		if probe.Stopped() {
			tasks = append(tasks, enumTask{root: v, second: noSecond})
			continue
		}
		info.Probes++
		info.ProbeCandidates += uint64(len(buf))
		for _, w := range buf {
			tasks = append(tasks, enumTask{root: v, second: w})
		}
	}
	return tasks
}

// buildCostModelTasks is the SplitCostModel policy over a static order.
// Every root is probed once for its depth-1 fanout; any task whose
// estimate exceeds the per-worker share threshold is split into one task
// per probed child, each probed in turn for its own fanout — recursing
// below depth 1 until the estimates balance, the prefix reaches the
// second-to-last vertex, or the pool hits its cap. Estimates are sums
// over the final pool, so SplitInfo.PredictedNodes predicts exactly the
// split execution's node count under the model.
func buildCostModelTasks(probe *enumerate.Engine, rootCands []uint32, est *splitEstimator,
	n, workers int, info *SplitInfo) []enumTask {

	pending := make([]splitWork, 0, len(rootCands))
	var final []splitWork
	var buf []uint32
	total := 0.0
	for i, v := range rootCands {
		if probe.Stopped() {
			for _, r := range rootCands[i:] {
				final = append(final, splitWork{prefix: []uint32{r}, est: est.subtree[1]})
				total += est.subtree[1]
			}
			break
		}
		buf = probe.ExpandRoot(v, buf[:0])
		if probe.Stopped() {
			final = append(final, splitWork{prefix: []uint32{v}, est: est.subtree[1]})
			total += est.subtree[1]
			continue
		}
		info.Probes++
		info.ProbeCandidates += uint64(len(buf))
		w := splitWork{
			prefix:   []uint32{v},
			children: append([]uint32(nil), buf...),
			est:      est.taskCost(1, len(buf)),
		}
		pending = append(pending, w)
		total += w.est
	}

	threshold := total / float64(workers*splitShareDivisor)
	if threshold < splitMinCost {
		threshold = splitMinCost
	}
	maxTasks := workers * splitMaxTasksPerWorker

	for len(pending) > 0 {
		w := pending[0]
		pending = pending[1:]
		L := len(w.prefix)
		split := w.est > threshold && L < n-1 && len(w.children) > 0 &&
			len(final)+len(pending)+len(w.children) <= maxTasks && !probe.Stopped()
		if !split {
			final = append(final, w)
			continue
		}
		for _, c := range w.children {
			cp := append(append(make([]uint32, 0, L+1), w.prefix...), c)
			buf = probe.ExpandPrefix(cp, buf[:0])
			child := splitWork{prefix: cp}
			if probe.Stopped() {
				// Halted mid-split: keep the child unprobed on the model's
				// unrefined estimate so coverage stays complete.
				child.est = est.subtree[L+1]
				final = append(final, child)
				continue
			}
			info.Probes++
			info.ProbeCandidates += uint64(len(buf))
			child.children = append([]uint32(nil), buf...)
			child.est = est.taskCost(L+1, len(buf))
			pending = append(pending, child)
		}
	}

	tasks := make([]enumTask, len(final))
	predicted := 0.0
	for i, w := range final {
		predicted += w.est
		switch len(w.prefix) {
		case 1:
			tasks[i] = enumTask{root: w.prefix[0], second: noSecond}
		case 2:
			tasks[i] = enumTask{root: w.prefix[0], second: w.prefix[1]}
		default:
			tasks[i] = enumTask{root: w.prefix[0], second: w.prefix[1], prefix: w.prefix}
		}
	}
	info.PredictedNodes = uint64(predicted)
	return tasks
}

// buildAdaptiveCostTasks is the SplitCostModel policy under DP-iso's
// adaptive ordering, which chooses its real order at runtime: a heavy
// root splits on the runtime-chosen second vertex (the one
// selectExtendable picks after mapping the root — re-derived identically
// by RunAdaptivePair), probed through ExpandAdaptiveRoot. The recursion
// stops there: deeper adaptive prefixes have no stable vertex to pin.
// The estimator runs over the BFS delta as a proxy for the dynamic
// order, which is exact at the split boundary (depths 0-1) and
// approximate below it.
func buildAdaptiveCostTasks(probe *enumerate.Engine, rootCands []uint32, est *splitEstimator,
	workers int, info *SplitInfo) []enumTask {

	type rootProbe struct {
		root     uint32
		children []uint32
		est      float64
		probed   bool
	}
	probes := make([]rootProbe, 0, len(rootCands))
	var buf []uint32
	total := 0.0
	for i, v := range rootCands {
		if probe.Stopped() {
			for _, r := range rootCands[i:] {
				probes = append(probes, rootProbe{root: r, est: est.subtree[1]})
				total += est.subtree[1]
			}
			break
		}
		buf = probe.ExpandAdaptiveRoot(v, buf[:0])
		if probe.Stopped() {
			probes = append(probes, rootProbe{root: v, est: est.subtree[1]})
			total += est.subtree[1]
			continue
		}
		info.Probes++
		info.ProbeCandidates += uint64(len(buf))
		rp := rootProbe{root: v, children: append([]uint32(nil), buf...), est: est.taskCost(1, len(buf)), probed: true}
		probes = append(probes, rp)
		total += rp.est
	}

	threshold := total / float64(workers*splitShareDivisor)
	if threshold < splitMinCost {
		threshold = splitMinCost
	}
	maxTasks := workers * splitMaxTasksPerWorker

	var tasks []enumTask
	predicted := 0.0
	for _, rp := range probes {
		if rp.probed && rp.est > threshold && len(rp.children) > 0 &&
			len(tasks)+len(rp.children) <= maxTasks {
			for _, w := range rp.children {
				tasks = append(tasks, enumTask{root: rp.root, second: w})
				predicted += est.subtree[2]
			}
			continue
		}
		tasks = append(tasks, enumTask{root: rp.root, second: noSecond})
		predicted += rp.est
	}
	info.PredictedNodes = uint64(predicted)
	return tasks
}

// finishSplitInfo fills the pool-shape fields and the probe engine's
// kernel tally once the task pool is final.
func finishSplitInfo(info *SplitInfo, tasks []enumTask, probe *enumerate.Engine) {
	info.Tasks = len(tasks)
	for _, t := range tasks {
		pl := 1
		switch {
		case t.prefix != nil:
			pl = len(t.prefix)
		case t.second != noSecond:
			pl = 2
		}
		if pl > 1 {
			info.SplitTasks++
		}
		if pl > info.MaxPrefix {
			info.MaxPrefix = pl
		}
	}
	if info.MaxPrefix == 0 {
		info.MaxPrefix = 1
	}
	info.ProbeKernels = probe.Stats().Kernels
}
