package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/order"
	"subgraphmatching/internal/workload"
)

// The spectrum analysis of Section 5.3 (Figure 14, Table 6): sample
// random matching orders per query, compare their enumeration times with
// the orders GQL and RI generate, and quantify how far from the sampled
// optimum the heuristics land.

// runWithOrder evaluates one query with a fixed matching order under the
// ordering-study setup (GraphQL candidates, Algorithm 5).
func runWithOrder(q, g *graph.Graph, phi []graph.Vertex, limits core.Limits) (time.Duration, bool) {
	cfg := core.OrderingStudyConfig(order.GQL, false)
	cfg.FixedOrder = phi
	res, err := core.Match(q, g, cfg, limits)
	if err != nil {
		return 0, false
	}
	t := res.EnumTime
	if res.TimedOut && limits.TimeLimit > 0 {
		t = limits.TimeLimit
	}
	return t, true
}

// spectrum samples n random orders for q and returns their enumeration
// times (killed runs at the limit).
func spectrum(q, g *graph.Graph, n int, seed int64, limits core.Limits) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		phi := order.Random(rng, q)
		if t, ok := runWithOrder(q, g, phi, limits); ok {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// methodTime evaluates one query with a named ordering method under the
// same setup (GraphQL candidates feed the order, as in Section 5.3).
func methodTime(q, g *graph.Graph, om order.Method, limits core.Limits) (time.Duration, bool) {
	cand := filter.RunGraphQL(q, g, filter.DefaultGQLRounds)
	if filter.AnyEmpty(cand) {
		return 0, true
	}
	phi, err := order.Compute(om, q, g, cand)
	if err != nil {
		return 0, false
	}
	return runWithOrder(q, g, phi, limits)
}

// Fig14 reproduces Figure 14: the distribution of enumeration times over
// sampled random orders for one dense and one sparse query on yt,
// against the GQL and RI orders.
func Fig14(env Env) error {
	env = env.WithDefaults()
	section(env.Out, "Figure 14: spectrum analysis of matching orders on yt", "Figure 14")
	const ds = "yt"
	g, err := dataGraph(ds)
	if err != nil {
		return err
	}
	dense, sparse, err := defaultSets(env, ds)
	if err != nil {
		return err
	}
	t := workload.Table{
		Title:  fmt.Sprintf("%d random orders per query (times in ms; killed at the limit)", env.SpectrumOrders),
		Header: []string{"query", "min", "p25", "median", "p75", "max", "GQL", "RI"},
	}
	for _, s := range []*workload.QuerySet{dense, sparse} {
		if s == nil || len(s.Queries) == 0 {
			continue
		}
		q := s.Queries[0]
		times := spectrum(q, g, env.SpectrumOrders, env.Seed, env.Limits())
		if len(times) == 0 {
			continue
		}
		pct := func(p float64) time.Duration { return times[int(p*float64(len(times)-1))] }
		gql, _ := methodTime(q, g, order.GQL, env.Limits())
		ri, _ := methodTime(q, g, order.RI, env.Limits())
		t.AddRow(
			fmt.Sprintf("q%d%s", q.NumVertices(), string(s.Name[len(s.Name)-1])),
			workload.FmtMS(times[0]), workload.FmtMS(pct(0.25)), workload.FmtMS(pct(0.5)),
			workload.FmtMS(pct(0.75)), workload.FmtMS(times[len(times)-1]),
			workload.FmtMS(gql), workload.FmtMS(ri),
		)
	}
	env.render(&t)
	return nil
}

// Table6 reproduces Table 6: for every query in yt's default dense and
// sparse sets, the speedup of the best order (among sampled random
// orders and every study ordering method) over GQL and RI; reported as
// mean, std, max and the count of queries with speedup above 10.
func Table6(env Env) error {
	env = env.WithDefaults()
	section(env.Out, "Table 6: speedup of best sampled order over GQL and RI on yt", "Table 6")
	const ds = "yt"
	g, err := dataGraph(ds)
	if err != nil {
		return err
	}
	dense, sparse, err := defaultSets(env, ds)
	if err != nil {
		return err
	}
	samples := env.SpectrumOrders / 4
	if samples < 10 {
		samples = 10
	}
	t := workload.Table{
		Title:  fmt.Sprintf("%d sampled orders per query", samples),
		Header: []string{"algorithm", "set", "mean", "std", "max", ">10"},
	}
	for _, s := range []*workload.QuerySet{dense, sparse} {
		if s == nil {
			continue
		}
		var gqlSpeedups, riSpeedups []float64
		for qi, q := range s.Queries {
			best := time.Duration(0)
			times := spectrum(q, g, samples, env.Seed+int64(qi), env.Limits())
			if len(times) > 0 {
				best = times[0]
			}
			for _, om := range orderingStudyMethods {
				if tm, ok := methodTime(q, g, om, env.Limits()); ok && (best == 0 || tm < best) {
					best = tm
				}
			}
			if best <= 0 {
				best = 1
			}
			if gql, ok := methodTime(q, g, order.GQL, env.Limits()); ok {
				gqlSpeedups = append(gqlSpeedups, float64(gql)/float64(best))
			}
			if ri, ok := methodTime(q, g, order.RI, env.Limits()); ok {
				riSpeedups = append(riSpeedups, float64(ri)/float64(best))
			}
		}
		for _, e := range []struct {
			name string
			sp   []float64
		}{{"GQL", gqlSpeedups}, {"RI", riSpeedups}} {
			name, sp := e.name, e.sp
			st := workload.Summarize(sp, 10)
			t.AddRow(name, s.Name,
				fmt.Sprintf("%.1f", st.Mean), fmt.Sprintf("%.1f", st.Std),
				fmt.Sprintf("%.1f", st.Max), fmt.Sprintf("%d", st.CountAbove))
		}
	}
	env.render(&t)
	return nil
}
