package service

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/testutil"
)

// TestSemaphoreTenantShareClamp pins the fairness mechanism at the
// semaphore level: one tenant may hold at most maxShare of the queue,
// the overflow gets the typed ErrTenantSaturated, and other tenants
// still reach the remaining slots.
func TestSemaphoreTenantShareClamp(t *testing.T) {
	s := newSemaphore(1, 0.5)
	if err := s.acquire(context.Background(), "hot", 1, time.Second, 4); err != nil {
		t.Fatal(err)
	}
	// Queue cap 4, share 0.5 → tenant cap 2.
	grants := make(chan error, 8)
	for i := 0; i < 2; i++ {
		go func() { grants <- s.acquire(context.Background(), "hot", 1, time.Minute, 4) }()
	}
	waitForQueue(t, s, 2)
	if got := s.tenantQueued("hot"); got != 2 {
		t.Fatalf("hot occupies %d queue slots, want 2", got)
	}
	// The flooding tenant's third waiter bounces with the typed error...
	if err := s.acquire(context.Background(), "hot", 1, time.Minute, 4); !errors.Is(err, ErrTenantSaturated) {
		t.Fatalf("saturated tenant got %v, want ErrTenantSaturated", err)
	}
	if !errors.Is(ErrTenantSaturated, ErrOverloaded) {
		t.Fatal("ErrTenantSaturated must wrap ErrOverloaded (503 at the transport)")
	}
	// ...while a cold tenant still queues into the protected remainder.
	cold := make(chan error, 1)
	go func() { cold <- s.acquire(context.Background(), "cold", 1, time.Minute, 4) }()
	waitForQueue(t, s, 3)
	// Draining the holder admits the FIFO head; drain everything.
	s.release(1)
	for i := 0; i < 3; i++ {
		var err error
		select {
		case err = <-grants:
		case err = <-cold:
		case <-time.After(5 * time.Second):
			t.Fatal("queued waiter never granted")
		}
		if err != nil {
			t.Fatal(err)
		}
		s.release(1)
	}
	if got := s.tenantQueued("hot"); got != 0 {
		t.Fatalf("hot still accounts %d queue slots after drain", got)
	}
}

// TestSemaphoreShareDisabled: maxShare <= 0 or >= 1 must behave exactly
// like the unclamped queue (the pre-fairness semantics).
func TestSemaphoreShareDisabled(t *testing.T) {
	for _, share := range []float64{0, -1, 1, 2} {
		s := newSemaphore(1, share)
		if err := s.acquire(context.Background(), "hot", 1, time.Second, 2); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 2)
		for i := 0; i < 2; i++ {
			go func() { done <- s.acquire(context.Background(), "hot", 1, time.Minute, 2) }()
		}
		waitForQueue(t, s, 2)
		// One tenant fills the whole queue; the overflow is ErrQueueFull,
		// never the tenant clamp.
		if err := s.acquire(context.Background(), "cold", 1, time.Minute, 2); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("share=%v: got %v, want ErrQueueFull", share, err)
		}
		s.release(1)
		for i := 0; i < 2; i++ {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			s.release(1)
		}
	}
}

func waitForQueue(t *testing.T, s *semaphore, depth int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, queued := s.load(); queued >= depth {
			return
		}
		if time.Now().After(deadline) {
			_, _, queued := s.load()
			t.Fatalf("queue depth %d never reached (at %d)", depth, queued)
		}
		time.Sleep(time.Millisecond)
	}
}

// fairnessFixture builds a service with two registered graphs ("hot",
// "cold"), capacity 1, queue 4, and a blocking request occupying the
// only worker slot. It returns the query for each graph and a release
// function that unblocks the holder.
func fairnessFixture(t *testing.T, share float64) (s *Service, hotQ, coldQ *graph.Graph, release func()) {
	t.Helper()
	s = New(Config{MaxInFlight: 1, MaxQueue: 4, MaxQueueWait: time.Minute, MaxGraphShare: share})
	rng := rand.New(rand.NewSource(7))
	g := testutil.RandomGraph(rng, 200, 600, 3)
	for _, name := range []string{"hot", "cold"} {
		if _, err := s.RegisterGraph(name, g, false); err != nil {
			t.Fatal(err)
		}
	}
	hotQ = testutil.RandomConnectedQuery(rng, g, 4)
	coldQ = testutil.RandomConnectedQuery(rng, g, 4)

	// Occupy the single worker slot with a search blocked inside its
	// OnMatch callback until release is called.
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	started := make(chan error, 1)
	go func() {
		_, err := s.Stream(context.Background(), Request{Graph: "hot", Query: hotQ}, func([]uint32) bool {
			once.Do(func() { close(entered) })
			<-gate
			return true
		})
		started <- err
	}()
	select {
	case <-entered:
	case err := <-started:
		t.Fatalf("holder finished before blocking: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("holder never started enumerating")
	}
	t.Cleanup(func() {
		release()
		if err := <-started; err != nil {
			t.Errorf("holder: %v", err)
		}
	})
	var relOnce sync.Once
	release = func() { relOnce.Do(func() { close(gate) }) }
	return s, hotQ, coldQ, release
}

// queueHot parks n hot-graph requests in the admission queue and
// returns their result channel.
func queueHot(s *Service, q *graph.Graph, n int) chan error {
	out := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := s.Submit(context.Background(), Request{Graph: "hot", Query: q})
			out <- err
		}()
	}
	return out
}

// TestFairnessStarvationWithoutClamp is the failing-first demonstration
// of the defect the clamp fixes: with MaxGraphShare disabled, a tenant
// flooding the bounded queue makes every cold-graph arrival bounce with
// ErrQueueFull — total starvation of the innocent tenant.
func TestFairnessStarvationWithoutClamp(t *testing.T) {
	s, hotQ, coldQ, release := fairnessFixture(t, -1) // clamp disabled
	defer release()
	hotDone := queueHot(s, hotQ, 4) // fills the whole queue
	waitForQueue(t, s.sem, 4)

	_, err := s.Submit(context.Background(), Request{Graph: "cold", Query: coldQ})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("unclamped flood: cold graph got %v, want ErrQueueFull (starved)", err)
	}
	release()
	for i := 0; i < 4; i++ {
		if err := <-hotDone; err != nil {
			t.Fatal(err)
		}
	}
}

// TestFairnessColdGraphAdmittedUnderFlood is the regression pinning the
// fix: under the same flood with the default-style share clamp, the
// flooder saturates its share (typed, retryable), the cold graph's
// request still gets a queue slot, and its wait is bounded by the
// flooder's share draining ahead of it — not the whole queue.
func TestFairnessColdGraphAdmittedUnderFlood(t *testing.T) {
	s, hotQ, coldQ, release := fairnessFixture(t, 0.5) // tenant cap: 2 of 4 slots
	hotDone := queueHot(s, hotQ, 2)
	waitForQueue(t, s.sem, 2)

	// The flood beyond the share is rejected with the typed error, not
	// queued — the queue keeps room for other tenants.
	if _, err := s.Submit(context.Background(), Request{Graph: "hot", Query: hotQ}); !errors.Is(err, ErrTenantSaturated) {
		t.Fatalf("flooding tenant got %v, want ErrTenantSaturated", err)
	}
	if !errors.Is(ErrTenantSaturated, ErrOverloaded) {
		t.Fatal("ErrTenantSaturated must map to the retryable overload family")
	}

	coldStart := time.Now()
	coldDone := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), Request{Graph: "cold", Query: coldQ})
		coldDone <- err
	}()
	waitForQueue(t, s.sem, 3)
	release()

	// The cold request completes behind at most the flooder's 2 queued
	// requests — bounded, not starved.
	select {
	case err := <-coldDone:
		if err != nil {
			t.Fatalf("cold graph under flood: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("cold graph starved for %v behind the flood", time.Since(coldStart))
	}
	for i := 0; i < 2; i++ {
		if err := <-hotDone; err != nil {
			t.Fatal(err)
		}
	}
	// The rejected counter picked up the saturation rejection.
	var rejected uint64
	for _, w := range s.Stats().Workloads {
		if w.Graph == "hot" {
			rejected += w.Rejected
		}
	}
	if rejected == 0 {
		t.Fatal("tenant-saturated rejection not recorded in metrics")
	}
}
