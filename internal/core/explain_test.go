package core

import (
	"math/rand"
	"strings"
	"testing"

	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/testutil"
)

// explainPresets are the presets with a Plan (the external engines have
// nothing to explain).
func explainPresets() []Algorithm {
	return []Algorithm{QuickSI, GraphQL, CFL, CECI, DPIso, RI, VF2PP, Optimized}
}

// TestExplainReconcilesAcrossPresetsAndWorkers is the acceptance
// identity of the EXPLAIN layer: the per-depth heat table must reconcile
// exactly with the Result totals — sum of heat nodes equals Nodes, the
// emit-depth row times the orbit equals Embeddings, and the per-depth
// kernel tallies sum to the run's kernel mix — for every preset at every
// worker count. Runs are uncapped: under an embedding cap workers race
// the stop flag and engine-local tallies legitimately exceed the
// accepted count.
func TestExplainReconcilesAcrossPresetsAndWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := testutil.RandomGraph(rng, 40, 140, 2)
	var q *graph.Graph
	for q == nil {
		q = testutil.RandomConnectedQuery(rng, g, 5)
	}
	n := q.NumVertices()
	for _, a := range explainPresets() {
		cfg := PresetConfig(a, q, g)
		for _, workers := range []int{1, 2, 4, 8} {
			res, err := Match(q, g, cfg, Limits{Parallel: workers, Profile: true})
			if err != nil {
				t.Fatalf("%v/w%d: %v", a, workers, err)
			}
			p := res.Explain
			if p == nil || !p.Analyzed {
				t.Fatalf("%v/w%d: missing analyzed explain", a, workers)
			}
			if got := p.heatNodesTotal(); got != res.Nodes {
				t.Errorf("%v/w%d: heat nodes %d != result nodes %d", a, workers, got, res.Nodes)
			}
			var leaf uint64
			for _, h := range p.Heat {
				if h.Depth == n {
					leaf = h.Nodes
				}
			}
			orbit := p.Orbit
			if orbit == 0 {
				orbit = 1
			}
			if leaf*orbit != res.Embeddings {
				t.Errorf("%v/w%d: emit-depth nodes %d x orbit %d != embeddings %d",
					a, workers, leaf, orbit, res.Embeddings)
			}
			if p.Embeddings != res.Embeddings || p.Nodes != res.Nodes {
				t.Errorf("%v/w%d: explain totals (%d, %d) != result (%d, %d)",
					a, workers, p.Embeddings, p.Nodes, res.Embeddings, res.Nodes)
			}

			// Per-depth kernel tallies sum to the run's kernel mix.
			got := map[string]uint64{}
			for _, h := range p.Heat {
				for k, v := range h.Kernels {
					got[k] += v
				}
			}
			want := res.Kernels.Map()
			if len(got) != len(want) {
				t.Errorf("%v/w%d: heat kernels %v != result kernels %v", a, workers, got, want)
			}
			for k, v := range want {
				if got[k] != v {
					t.Errorf("%v/w%d: kernel %s: heat %d != result %d", a, workers, k, got[k], v)
				}
			}

			// Filter stages chain: each stage starts where the previous
			// ended, and the per-vertex counts sum to the stage total.
			if len(p.Filter) == 0 {
				t.Fatalf("%v/w%d: no filter stages", a, workers)
			}
			if p.Filter[0].Before != uint64(n)*uint64(g.NumVertices()) {
				t.Errorf("%v/w%d: first stage before = %d, want %d",
					a, workers, p.Filter[0].Before, uint64(n)*uint64(g.NumVertices()))
			}
			for i, st := range p.Filter {
				if i > 0 && st.Before != p.Filter[i-1].After {
					t.Errorf("%v/w%d: stage %q before %d != previous after %d",
						a, workers, st.Name, st.Before, p.Filter[i-1].After)
				}
				if len(st.Counts) != n {
					t.Errorf("%v/w%d: stage %q has %d per-vertex counts, want %d",
						a, workers, st.Name, len(st.Counts), n)
				}
				var sum uint64
				for _, c := range st.Counts {
					sum += uint64(c)
				}
				if sum != st.After {
					t.Errorf("%v/w%d: stage %q counts sum %d != after %d",
						a, workers, st.Name, sum, st.After)
				}
			}

			// Order section: static presets list every position with its
			// cardinality; adaptive runs declare themselves instead.
			if cfg.Adaptive {
				if !p.Adaptive || len(p.Order) != 0 {
					t.Errorf("%v/w%d: adaptive run published a static order", a, workers)
				}
			} else if len(p.Order) != n {
				t.Errorf("%v/w%d: order has %d entries, want %d", a, workers, len(p.Order), n)
			}

			// Parallel runs attribute nodes per worker; the attribution
			// must sum back to the merged heat.
			if workers > 1 && res.Nodes > 0 {
				var wsum uint64
				for _, wh := range p.Workers {
					for _, nn := range wh.Nodes {
						wsum += nn
					}
				}
				if res.Split != nil {
					// Splitter probe expansions count toward Nodes but
					// ran before any worker existed.
					wsum += res.Split.Probes
				}
				if wsum != res.Nodes {
					t.Errorf("%v/w%d: worker heat sum %d != nodes %d", a, workers, wsum, res.Nodes)
				}
			}
		}
	}
}

// TestExplainSymmetryOrbit checks the symmetry-breaking reconciliation:
// the heat table counts canonical embeddings, and Embeddings is that
// count times the orbit multiplier.
func TestExplainSymmetryOrbit(t *testing.T) {
	// A triangle query over a clique of one label: every vertex is
	// interchangeable, so the orbit multiplier is 3! = 6.
	q := graph.MustFromEdges(
		[]graph.Label{0, 0, 0},
		[][2]graph.Vertex{{0, 1}, {1, 2}, {0, 2}},
	)
	g := graph.MustFromEdges(
		[]graph.Label{0, 0, 0, 0},
		[][2]graph.Vertex{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}},
	)
	cfg := PresetConfig(QuickSI, q, g)
	cfg.SymmetryBreaking = true
	res, err := Match(q, g, cfg, Limits{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Explain
	if p == nil || p.Orbit != 6 {
		t.Fatalf("explain = %+v, want orbit 6", p)
	}
	var leaf uint64
	for _, h := range p.Heat {
		if h.Depth == q.NumVertices() {
			leaf = h.Nodes
		}
	}
	if leaf*p.Orbit != res.Embeddings {
		t.Fatalf("canonical %d x orbit %d != embeddings %d", leaf, p.Orbit, res.Embeddings)
	}
	if res.Embeddings != 24 { // 4 triangles x 6 orderings
		t.Fatalf("embeddings = %d, want 24", res.Embeddings)
	}
}

// TestExplainPlanDryRun checks the EXPLAIN-without-ANALYZE path: plan
// sections populated, no heat, not analyzed.
func TestExplainPlanDryRun(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	plan, err := Preprocess(q, g, PresetConfig(GraphQL, q, g), 1)
	if err != nil {
		t.Fatal(err)
	}
	p := ExplainPlan(plan)
	if p.Analyzed || len(p.Heat) != 0 {
		t.Fatalf("dry run produced analyzed output: %+v", p)
	}
	if len(p.Filter) == 0 || len(p.Order) != q.NumVertices() {
		t.Fatalf("dry run missing plan sections: %+v", p)
	}
	if p.OrderMethod == "" {
		t.Fatal("dry run missing order method")
	}
	var sb strings.Builder
	p.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "filter stages:") || !strings.Contains(out, "order (") {
		t.Fatalf("render missing sections:\n%s", out)
	}
	if strings.Contains(out, "enumeration heat:") {
		t.Fatalf("dry-run render shows heat:\n%s", out)
	}
}

// TestExplainEmptyPlan: a query whose label exists nowhere in the data
// graph filters to empty; EXPLAIN must still show the stage that killed
// it.
func TestExplainEmptyPlan(t *testing.T) {
	q := graph.MustFromEdges(
		[]graph.Label{9, 9},
		[][2]graph.Vertex{{0, 1}},
	)
	g := testutil.PaperData()
	res, err := Match(q, g, PresetConfig(QuickSI, q, g), Limits{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Explain
	if p == nil || !p.Empty {
		t.Fatalf("explain = %+v, want Empty", p)
	}
	if len(p.Filter) == 0 {
		t.Fatal("empty plan lost its filter stages")
	}
	if last := p.Filter[len(p.Filter)-1]; last.After != 0 {
		t.Fatalf("last stage after = %d, want 0", last.After)
	}
	var sb strings.Builder
	p.Render(&sb)
	if !strings.Contains(sb.String(), "empty candidate set") {
		t.Fatalf("render missing empty marker:\n%s", sb.String())
	}
}

// TestExplainRenderAnalyzed smoke-tests the ANALYZE rendering.
func TestExplainRenderAnalyzed(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	res, err := Match(q, g, PresetConfig(Optimized, q, g), Limits{Profile: true, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Explain.Render(&sb)
	out := sb.String()
	for _, want := range []string{"filter stages:", "enumeration heat:", "workers:", "totals:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestProfileOffLeavesExplainNil: without Limits.Profile nothing
// explain-related is built.
func TestProfileOffLeavesExplainNil(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	res, err := Match(q, g, PresetConfig(QuickSI, q, g), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain != nil || res.Profile != nil || res.WorkerProfiles != nil {
		t.Fatalf("unprofiled run carries profile state: %+v", res)
	}
}
