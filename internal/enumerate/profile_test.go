package enumerate

import (
	"bytes"
	"strings"
	"testing"

	"subgraphmatching/internal/candspace"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/testutil"
)

func profiledRun(t *testing.T, opts Options) *Stats {
	t.Helper()
	q, g := testutil.PaperQuery(), testutil.PaperData()
	cand := filter.RunLDF(q, g)
	space := candspace.BuildFull(q, g, cand)
	phi := graph.NewBFSTree(q, 0).Order
	opts.Profile = true
	st, err := Run(q, g, cand, space, phi, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Profile == nil {
		t.Fatal("Profile not collected")
	}
	return st
}

func TestProfileCountsConsistent(t *testing.T) {
	for _, opts := range []Options{
		{Local: Intersect},
		{Local: Intersect, FailingSets: true},
		{Local: Intersect, Adaptive: true},
		{Local: Direct},
	} {
		st := profiledRun(t, opts)
		p := st.Profile
		// Root nodes: exactly one search node at depth 0.
		if p.Nodes[0] != 1 {
			t.Errorf("%+v: Nodes[0] = %d, want 1", opts, p.Nodes[0])
		}
		// Nodes at depth d+1 equal extensions at depth d.
		for d := 0; d < p.MaxDepth()-1; d++ {
			if p.Nodes[d+1] != p.Extended[d] {
				t.Errorf("%+v: Nodes[%d]=%d != Extended[%d]=%d",
					opts, d+1, p.Nodes[d+1], d, p.Extended[d])
			}
		}
		// Extensions never exceed candidates.
		for d := range p.Candidates {
			if p.Extended[d] > p.Candidates[d] {
				t.Errorf("Extended[%d] > Candidates[%d]", d, d)
			}
		}
		// TotalNodes covers the profiled interior nodes (leaves are
		// counted by Stats.Nodes but carry no LC).
		if p.TotalNodes() == 0 || p.TotalNodes() > st.Nodes {
			t.Errorf("TotalNodes = %d vs Stats.Nodes = %d", p.TotalNodes(), st.Nodes)
		}
	}
}

func TestProfileConflictsRecorded(t *testing.T) {
	// Unlabeled path query in K4: when extending u2, the vertex mapped
	// to u0 is a neighbor of M[u1] and hence a local candidate — an
	// injectivity conflict. (A triangle query would not conflict: every
	// mapped vertex is adjacent to all candidates and graphs have no
	// self-loops.)
	var edges [][2]graph.Vertex
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, [2]graph.Vertex{graph.Vertex(i), graph.Vertex(j)})
		}
	}
	g := graph.MustFromEdges(make([]graph.Label, 4), edges)
	q := graph.MustFromEdges(make([]graph.Label, 3), [][2]graph.Vertex{{0, 1}, {1, 2}})
	cand := filter.RunLDF(q, g)
	space := candspace.BuildFull(q, g, cand)
	phi := graph.NewBFSTree(q, 0).Order
	st, err := Run(q, g, cand, space, phi, Options{Local: Intersect, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(0)
	for _, c := range st.Profile.Conflicts {
		total += c
	}
	if total == 0 {
		t.Error("expected injectivity conflicts in K4 triangle search")
	}
}

func TestProfileRender(t *testing.T) {
	st := profiledRun(t, Options{Local: Intersect})
	var buf bytes.Buffer
	st.Profile.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "depth") || !strings.Contains(out, "candidates") {
		t.Errorf("render output:\n%s", out)
	}
	summary := st.Profile.BranchingSummary()
	if !strings.Contains(summary, "fanout") {
		t.Errorf("summary = %q", summary)
	}
}

func TestProfileDisabledByDefault(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	cand := filter.RunLDF(q, g)
	space := candspace.BuildFull(q, g, cand)
	phi := graph.NewBFSTree(q, 0).Order
	st, err := Run(q, g, cand, space, phi, Options{Local: Intersect})
	if err != nil {
		t.Fatal(err)
	}
	if st.Profile != nil {
		t.Error("Profile should be nil when not requested")
	}
}
