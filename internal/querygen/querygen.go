// Package querygen extracts query graphs from data graphs by random
// walk, mirroring the paper's query generation (Section 4): walk G until
// the requested number of distinct vertices is collected, take the
// induced subgraph, and keep it only if its density class matches
// (dense: d(q) >= 3, sparse: d(q) < 3). Each data graph gets query sets
// of 200 connected queries per size in the paper; the count here is
// configurable.
package querygen

import (
	"fmt"
	"math/rand"

	"subgraphmatching/internal/graph"
)

// Density classifies a query set.
type Density uint8

const (
	// Any accepts every connected extracted subgraph (the paper's Q4
	// sets have no density requirement).
	Any Density = iota
	// Dense requires average degree >= 3.
	Dense
	// Sparse requires average degree < 3.
	Sparse
)

func (d Density) String() string {
	switch d {
	case Dense:
		return "dense"
	case Sparse:
		return "sparse"
	default:
		return "any"
	}
}

// Matches reports whether the average degree deg satisfies the class.
func (d Density) Matches(deg float64) bool {
	switch d {
	case Dense:
		return deg >= 3
	case Sparse:
		return deg < 3
	default:
		return true
	}
}

// Config parameterizes query extraction.
type Config struct {
	NumVertices int
	Count       int
	Density     Density
	Seed        int64
	// MaxAttempts bounds the number of random walks tried per accepted
	// query; 0 selects a generous default.
	MaxAttempts int
}

// Generate extracts cfg.Count query graphs from g. It fails if the data
// graph cannot yield enough queries of the requested size and density
// (e.g. asking for dense queries of a tree).
func Generate(g *graph.Graph, cfg Config) ([]*graph.Graph, error) {
	if cfg.NumVertices < 2 {
		return nil, fmt.Errorf("querygen: query size %d too small", cfg.NumVertices)
	}
	if cfg.NumVertices > g.NumVertices() {
		return nil, fmt.Errorf("querygen: query size %d exceeds data graph size %d", cfg.NumVertices, g.NumVertices())
	}
	maxAttempts := cfg.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = 2000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]*graph.Graph, 0, cfg.Count)
	for len(out) < cfg.Count {
		var q *graph.Graph
		for attempt := 0; attempt < maxAttempts; attempt++ {
			// Random walks rarely stay inside the dense core of
			// power-law graphs, so dense extraction alternates with a
			// greedy densifying growth (still an induced subgraph of G,
			// so every generated query has at least one match).
			if cfg.Density == Dense && attempt%2 == 1 {
				q = extractDense(rng, g, cfg.NumVertices)
			} else {
				q = extract(rng, g, cfg.NumVertices)
			}
			if q != nil && cfg.Density.Matches(q.AverageDegree()) {
				break
			}
			q = nil
		}
		if q == nil {
			return nil, fmt.Errorf("querygen: no %v query with %d vertices found after %d attempts (%d/%d generated)",
				cfg.Density, cfg.NumVertices, maxAttempts, len(out), cfg.Count)
		}
		out = append(out, q)
	}
	return out, nil
}

// extractDense grows a vertex set from a random edge, repeatedly adding
// the frontier vertex with the most edges into the current set (random
// tie-breaking). This finds dense induced subgraphs where plain random
// walks would wander off the core.
func extractDense(rng *rand.Rand, g *graph.Graph, k int) *graph.Graph {
	// Start from a random endpoint of a random vertex's adjacency so
	// higher-degree regions are reached with higher probability.
	start := graph.Vertex(rng.Intn(g.NumVertices()))
	if g.Degree(start) == 0 {
		return nil
	}
	selected := make(map[graph.Vertex]bool, k)
	verts := make([]graph.Vertex, 0, k)
	intoSet := map[graph.Vertex]int{} // frontier vertex -> edges into selected
	add := func(v graph.Vertex) {
		selected[v] = true
		verts = append(verts, v)
		delete(intoSet, v)
		for _, w := range g.Neighbors(v) {
			if !selected[w] {
				intoSet[w]++
			}
		}
	}
	add(start)
	for len(verts) < k {
		bestCount := 0
		for _, c := range intoSet {
			if c > bestCount {
				bestCount = c
			}
		}
		if bestCount == 0 {
			return nil
		}
		var ties []graph.Vertex
		for v, c := range intoSet {
			if c == bestCount {
				ties = append(ties, v)
			}
		}
		// Deterministic order before the random choice (map iteration
		// order would break seed reproducibility).
		sortVertices(ties)
		add(ties[rng.Intn(len(ties))])
	}
	q, _ := g.InducedSubgraph(verts)
	if !q.IsConnected() {
		return nil
	}
	return q
}

func sortVertices(vs []graph.Vertex) {
	for i := 1; i < len(vs); i++ {
		x := vs[i]
		j := i - 1
		for j >= 0 && vs[j] > x {
			vs[j+1] = vs[j]
			j--
		}
		vs[j+1] = x
	}
}

// extract performs one random walk and returns the induced subgraph on
// the first k distinct vertices visited, or nil if the walk stalls.
func extract(rng *rand.Rand, g *graph.Graph, k int) *graph.Graph {
	start := graph.Vertex(rng.Intn(g.NumVertices()))
	if g.Degree(start) == 0 {
		return nil
	}
	seen := make(map[graph.Vertex]bool, k)
	verts := make([]graph.Vertex, 0, k)
	seen[start] = true
	verts = append(verts, start)
	cur := start
	for steps := 0; len(verts) < k && steps < 100*k; steps++ {
		ns := g.Neighbors(cur)
		next := ns[rng.Intn(len(ns))]
		if !seen[next] {
			seen[next] = true
			verts = append(verts, next)
		}
		cur = next
	}
	if len(verts) < k {
		return nil
	}
	q, _ := g.InducedSubgraph(verts)
	if !q.IsConnected() {
		return nil
	}
	return q
}
