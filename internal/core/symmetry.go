package core

import (
	"fmt"
	"sort"
	"strings"

	"subgraphmatching/internal/graph"
)

// Neighborhood equivalence classes (NEC): groups of query vertices that
// are structurally interchangeable, either as closed twins (same label,
// adjacent, N(u) ∪ {u} identical) or open twins (same label,
// non-adjacent, N(u) identical). TurboIso's query-graph compression
// (paper Section 3.4) merges exactly these vertices; here they instead
// drive symmetry breaking: one canonical embedding per orbit is
// enumerated and the count is multiplied by the product of class-size
// factorials.

// NeighborhoodEquivalenceClasses returns the NEC classes of q with at
// least two members. Classes are disjoint: closed-twin classes are
// formed first, remaining vertices form open-twin classes.
func NeighborhoodEquivalenceClasses(q *graph.Graph) [][]graph.Vertex {
	n := q.NumVertices()
	var classes [][]graph.Vertex
	claimed := make([]bool, n)

	group := func(key func(u graph.Vertex) string) {
		byKey := map[string][]graph.Vertex{}
		var keys []string
		for u := 0; u < n; u++ {
			uu := graph.Vertex(u)
			if claimed[u] {
				continue
			}
			k := key(uu)
			if len(byKey[k]) == 0 {
				keys = append(keys, k)
			}
			byKey[k] = append(byKey[k], uu)
		}
		sort.Strings(keys)
		for _, k := range keys {
			class := byKey[k]
			if len(class) < 2 {
				continue
			}
			for _, u := range class {
				claimed[u] = true
			}
			classes = append(classes, class)
		}
	}

	// Closed twins: adjacent vertices with identical closed
	// neighborhoods (they form cliques, so any permutation preserves
	// edges).
	group(func(u graph.Vertex) string {
		closed := append([]graph.Vertex{u}, q.Neighbors(u)...)
		sort.Slice(closed, func(i, j int) bool { return closed[i] < closed[j] })
		return neighborhoodKey(q.Label(u), closed)
	})
	// Open twins: non-adjacent vertices with identical open
	// neighborhoods.
	group(func(u graph.Vertex) string {
		return neighborhoodKey(q.Label(u), q.Neighbors(u))
	})
	return classes
}

func neighborhoodKey(l graph.Label, ns []graph.Vertex) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:", l)
	for _, v := range ns {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

// OrbitMultiplier returns the product of class-size factorials: the
// number of embeddings each canonical representative stands for.
func OrbitMultiplier(classes [][]graph.Vertex) uint64 {
	m := uint64(1)
	for _, c := range classes {
		for k := uint64(2); k <= uint64(len(c)); k++ {
			m *= k
		}
	}
	return m
}
