// Package store is the durable graph store behind smatchd: a versioned
// on-disk snapshot format for graph.Graph (the canonical CSR arrays
// with per-section CRC32C and the sha256 fingerprint in the trailer),
// an append-only CRC-framed WAL of registry operations, and a Manager
// that wires both under internal/service so a restarted daemon
// recovers every durably-registered graph — same names, monotonic
// generations, verified integrity — before accepting traffic.
//
// Snapshot layout (all fixed-width fields little-endian):
//
//	header   (48 B)  magic, version, flags, |V|, |E|, section count,
//	                 section-table CRC32C, header CRC32C
//	table    (32 B per section)  id, offset, length, payload CRC32C
//	sections (8-byte aligned)    labels, offsets, adjacency, label pairs
//	trailer  (48 B)  sha256 fingerprint of the canonical CSR
//	                 serialization (graph.FingerprintOf), file size,
//	                 trailer magic, trailer CRC32C
//
// Every byte outside inter-section padding is covered by a CRC, so a
// flipped bit anywhere that matters yields ErrCorrupt, never a wrong
// graph. The sections are the raw CSR arrays, so a loader may either
// copy them onto the heap or alias them zero-copy out of an mmap'd
// file; both produce byte-identical graphs.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"unsafe"

	"subgraphmatching/internal/graph"
)

// Typed failure classes. Every decode failure wraps one of these — a
// transport or recovery loop branches with errors.Is, never on strings.
var (
	// ErrCorrupt reports a snapshot or WAL whose bytes fail validation:
	// bad magic, CRC mismatch, truncation, or structural CSR violations.
	ErrCorrupt = errors.New("store: corrupt")
	// ErrVersion reports a well-formed snapshot written by a future
	// format version (or carrying feature flags this build does not
	// understand) — unreadable, but not damaged.
	ErrVersion = errors.New("store: unsupported version")
)

const (
	// snapMagic opens every snapshot file. The \x00 stops text tools
	// from misreading the file; the final byte is a format generation
	// that changes only on incompatible layout rewrites (field-level
	// evolution uses the version word instead).
	snapMagic = "SMSNAP\x001"
	// FormatVersion is the current snapshot format version.
	FormatVersion = 1

	headerSize  = 48
	sectionSize = 32
	trailerSize = 48

	trailerMagic = 0x52544d53 // "SMTR"

	// flagLittleEndian marks the payload byte order. It is always set
	// by this encoder; a loader rejects files without it (no
	// big-endian writer exists).
	flagLittleEndian = 1 << 0
	knownFlags       = flagLittleEndian

	// Section ids. Unknown ids are skipped on load (forward
	// compatibility for additive sections within a version).
	secLabels  = 1 // []uint32, len |V|
	secOffsets = 2 // []int64, len |V|+1
	secAdj     = 3 // []uint32, len 2|E|
	secPairs   = 4 // (key uint64, count int64) pairs, sorted by key

	// maxSections bounds the section table so a corrupt count cannot
	// drive a huge allocation before the CRC check.
	maxSections = 64
)

// castagnoli is the CRC32C table (iSCSI polynomial) — hardware
// accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hostLittleEndian reports the running machine's byte order; the
// zero-copy section casts are only valid when it matches the file's.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// corruptf builds an ErrCorrupt with location detail.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// section is one table entry.
type section struct {
	id     uint32
	offset uint64
	length uint64
	crc    uint32
}

// u32bytes views a []uint32 as raw little-endian bytes (host must be
// little-endian; the encoder falls back to an explicit encode
// otherwise).
func u32bytes(s []uint32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

func i64bytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

// encodeU32s materializes s as little-endian bytes (big-endian host
// fallback).
func encodeU32s(s []uint32) []byte {
	out := make([]byte, len(s)*4)
	for i, v := range s {
		binary.LittleEndian.PutUint32(out[i*4:], v)
	}
	return out
}

func encodeI64s(s []int64) []byte {
	out := make([]byte, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(v))
	}
	return out
}

// sectionPayloads assembles the four section payloads for g. On a
// little-endian host the CSR sections alias the graph's own arrays —
// encoding is zero-copy except for the (small) label-pair section.
func sectionPayloads(g *graph.Graph) (ids []uint32, payloads [][]byte) {
	offsets, adj, labels := g.CSR()
	pairKeys, pairCounts := g.LabelPairCounts()
	pairs := make([]byte, len(pairKeys)*16)
	for i := range pairKeys {
		binary.LittleEndian.PutUint64(pairs[i*16:], pairKeys[i])
		binary.LittleEndian.PutUint64(pairs[i*16+8:], uint64(pairCounts[i]))
	}
	var labelB, offB, adjB []byte
	if hostLittleEndian {
		labelB, offB, adjB = u32bytes(labels), i64bytes(offsets), u32bytes(adj)
	} else {
		labelB, offB, adjB = encodeU32s(labels), encodeI64s(offsets), encodeU32s(adj)
	}
	return []uint32{secLabels, secOffsets, secAdj, secPairs},
		[][]byte{labelB, offB, adjB, pairs}
}

// align8 rounds n up to the next multiple of 8. Sections are 8-byte
// aligned so the int64 offsets array can be cast in place out of an
// mmap (page-aligned base + aligned file offset).
func align8(n uint64) uint64 { return (n + 7) &^ 7 }

// EncodedSize returns the exact snapshot size for g in bytes.
func EncodedSize(g *graph.Graph) int64 {
	n := uint64(g.NumVertices())
	m := uint64(g.NumEdges())
	keys, _ := g.LabelPairCounts()
	size := uint64(headerSize + 4*sectionSize)
	for _, l := range []uint64{4 * n, 8 * (n + 1), 8 * m, 16 * uint64(len(keys))} {
		size = align8(size + l)
	}
	return int64(size + trailerSize)
}

// Encode serializes g into a new snapshot byte slice and returns it
// with the graph's fingerprint. The result is entirely self-contained:
// Decode(Encode(g)) reproduces a byte-identical CSR.
func Encode(g *graph.Graph) ([]byte, graph.Fingerprint, error) {
	if g == nil {
		return nil, graph.Fingerprint{}, fmt.Errorf("store: nil graph")
	}
	ids, payloads := sectionPayloads(g)
	tableOff := uint64(headerSize)
	dataOff := align8(tableOff + uint64(len(ids))*sectionSize)

	sections := make([]section, len(ids))
	off := dataOff
	for i, p := range payloads {
		sections[i] = section{
			id:     ids[i],
			offset: off,
			length: uint64(len(p)),
			crc:    crc32.Checksum(p, castagnoli),
		}
		off = align8(off + uint64(len(p)))
	}
	total := off + trailerSize

	buf := make([]byte, total)
	// Section table (written before the header so the header can carry
	// the table CRC).
	for i, s := range sections {
		ent := buf[tableOff+uint64(i)*sectionSize:]
		binary.LittleEndian.PutUint32(ent[0:], s.id)
		binary.LittleEndian.PutUint64(ent[8:], s.offset)
		binary.LittleEndian.PutUint64(ent[16:], s.length)
		binary.LittleEndian.PutUint32(ent[24:], s.crc)
	}
	tableBytes := buf[tableOff : tableOff+uint64(len(ids))*sectionSize]

	// Header.
	copy(buf[0:8], snapMagic)
	binary.LittleEndian.PutUint32(buf[8:], FormatVersion)
	binary.LittleEndian.PutUint32(buf[12:], flagLittleEndian)
	binary.LittleEndian.PutUint64(buf[16:], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(buf[24:], uint64(g.NumEdges()))
	binary.LittleEndian.PutUint32(buf[32:], uint32(len(ids)))
	binary.LittleEndian.PutUint32(buf[36:], crc32.Checksum(tableBytes, castagnoli))
	binary.LittleEndian.PutUint32(buf[40:], crc32.Checksum(buf[:40], castagnoli))

	// Payloads.
	for i, p := range payloads {
		copy(buf[sections[i].offset:], p)
	}

	// Trailer.
	fp := graph.FingerprintOf(g)
	tr := buf[total-trailerSize:]
	copy(tr[0:32], fp[:])
	binary.LittleEndian.PutUint64(tr[32:], total)
	binary.LittleEndian.PutUint32(tr[40:], trailerMagic)
	binary.LittleEndian.PutUint32(tr[44:], crc32.Checksum(tr[:44], castagnoli))
	return buf, fp, nil
}

// DecodeOptions control how Decode materializes the graph.
type DecodeOptions struct {
	// ZeroCopy makes the returned graph's CSR slices alias data
	// directly (requires a little-endian host and 8-byte aligned
	// sections — both checked; misalignment falls back to copying).
	// The caller must keep data immutable and alive for the graph's
	// lifetime — this is the mmap load path.
	ZeroCopy bool
	// VerifyFingerprint additionally recomputes the sha256 fingerprint
	// of the decoded CSR and compares it against the trailer — the
	// full end-to-end integrity check fsck and verified startups use.
	// Per-section CRCs are always checked regardless.
	VerifyFingerprint bool
}

// Decode parses a snapshot, verifying the header, section-table,
// per-section and trailer CRCs, and every structural CSR invariant.
// Any mismatch yields an error wrapping ErrCorrupt (or ErrVersion for
// well-formed future-version files) — never a panic, never a silently
// wrong graph.
func Decode(data []byte, opts DecodeOptions) (*graph.Graph, graph.Fingerprint, error) {
	var fp graph.Fingerprint
	if len(data) < headerSize+trailerSize {
		return nil, fp, corruptf("file too short: %d bytes", len(data))
	}
	if string(data[0:8]) != snapMagic {
		return nil, fp, corruptf("bad magic %q", data[0:8])
	}
	if got := crc32.Checksum(data[:40], castagnoli); got != binary.LittleEndian.Uint32(data[40:]) {
		return nil, fp, corruptf("header CRC mismatch")
	}
	version := binary.LittleEndian.Uint32(data[8:])
	if version != FormatVersion {
		return nil, fp, fmt.Errorf("%w: snapshot version %d, this build reads %d", ErrVersion, version, FormatVersion)
	}
	flags := binary.LittleEndian.Uint32(data[12:])
	if flags&^uint32(knownFlags) != 0 {
		return nil, fp, fmt.Errorf("%w: unknown feature flags %#x", ErrVersion, flags&^uint32(knownFlags))
	}
	if flags&flagLittleEndian == 0 {
		return nil, fp, fmt.Errorf("%w: big-endian payload", ErrVersion)
	}
	numVertices := binary.LittleEndian.Uint64(data[16:])
	numEdges := binary.LittleEndian.Uint64(data[24:])
	// The counts are CRC-protected, but bound them anyway so the
	// arithmetic below cannot overflow on a crafted header.
	if numVertices > 1<<40 || numEdges > 1<<40 {
		return nil, fp, corruptf("implausible counts |V|=%d |E|=%d", numVertices, numEdges)
	}
	sectionCount := binary.LittleEndian.Uint32(data[32:])
	if sectionCount > maxSections {
		return nil, fp, corruptf("section count %d exceeds limit %d", sectionCount, maxSections)
	}
	tableEnd := uint64(headerSize) + uint64(sectionCount)*sectionSize
	if tableEnd > uint64(len(data)-trailerSize) {
		return nil, fp, corruptf("section table overruns file")
	}
	tableBytes := data[headerSize:tableEnd]
	if got := crc32.Checksum(tableBytes, castagnoli); got != binary.LittleEndian.Uint32(data[36:]) {
		return nil, fp, corruptf("section table CRC mismatch")
	}

	// Trailer.
	tr := data[len(data)-trailerSize:]
	if got := crc32.Checksum(tr[:44], castagnoli); got != binary.LittleEndian.Uint32(tr[44:]) {
		return nil, fp, corruptf("trailer CRC mismatch")
	}
	if binary.LittleEndian.Uint32(tr[40:]) != trailerMagic {
		return nil, fp, corruptf("bad trailer magic")
	}
	if sz := binary.LittleEndian.Uint64(tr[32:]); sz != uint64(len(data)) {
		return nil, fp, corruptf("trailer records %d bytes, file has %d (truncated or grown)", sz, len(data))
	}
	copy(fp[:], tr[0:32])

	// Sections: locate, bounds-check, CRC.
	var labelSec, offSec, adjSec, pairSec *section
	sections := make([]section, sectionCount)
	for i := range sections {
		ent := tableBytes[i*sectionSize:]
		s := &sections[i]
		s.id = binary.LittleEndian.Uint32(ent[0:])
		s.offset = binary.LittleEndian.Uint64(ent[8:])
		s.length = binary.LittleEndian.Uint64(ent[16:])
		s.crc = binary.LittleEndian.Uint32(ent[24:])
		if s.offset%8 != 0 {
			return nil, fp, corruptf("section %d misaligned at offset %d", s.id, s.offset)
		}
		if s.offset < tableEnd || s.offset+s.length < s.offset ||
			s.offset+s.length > uint64(len(data)-trailerSize) {
			return nil, fp, corruptf("section %d [%d,+%d) outside payload region", s.id, s.offset, s.length)
		}
		if got := crc32.Checksum(data[s.offset:s.offset+s.length], castagnoli); got != s.crc {
			return nil, fp, corruptf("section %d CRC mismatch", s.id)
		}
		switch s.id {
		case secLabels:
			labelSec = s
		case secOffsets:
			offSec = s
		case secAdj:
			adjSec = s
		case secPairs:
			pairSec = s
			// Unknown section ids are valid additive extensions; their CRC
			// was still verified above.
		}
	}
	if labelSec == nil || offSec == nil || adjSec == nil {
		return nil, fp, corruptf("missing required section (labels/offsets/adjacency)")
	}
	if labelSec.length != 4*numVertices {
		return nil, fp, corruptf("labels section %d bytes, want %d for %d vertices", labelSec.length, 4*numVertices, numVertices)
	}
	if offSec.length != 8*(numVertices+1) {
		return nil, fp, corruptf("offsets section %d bytes, want %d", offSec.length, 8*(numVertices+1))
	}
	if adjSec.length != 8*numEdges {
		return nil, fp, corruptf("adjacency section %d bytes, want %d for %d edges", adjSec.length, 8*numEdges, numEdges)
	}

	labels := decodeU32Section(data, labelSec, opts.ZeroCopy)
	offsets := decodeI64Section(data, offSec, opts.ZeroCopy)
	adj := decodeU32Section(data, adjSec, opts.ZeroCopy)

	var pairKeys []uint64
	var pairCounts []int64
	if pairSec != nil {
		if pairSec.length%16 != 0 {
			return nil, fp, corruptf("label-pair section length %d not a multiple of 16", pairSec.length)
		}
		k := int(pairSec.length / 16)
		pairKeys = make([]uint64, k)
		pairCounts = make([]int64, k)
		p := data[pairSec.offset : pairSec.offset+pairSec.length]
		for i := 0; i < k; i++ {
			pairKeys[i] = binary.LittleEndian.Uint64(p[i*16:])
			pairCounts[i] = int64(binary.LittleEndian.Uint64(p[i*16+8:]))
		}
	}

	g, err := graph.FromCSR(offsets, adj, labels, pairKeys, pairCounts)
	if err != nil {
		return nil, fp, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if opts.VerifyFingerprint {
		if got := graph.FingerprintOf(g); got != fp {
			return nil, fp, corruptf("fingerprint mismatch: CSR hashes to %x, trailer says %x", got[:8], fp[:8])
		}
	}
	return g, fp, nil
}

// decodeU32Section returns the section as []uint32, aliasing data when
// the zero-copy preconditions hold and copying otherwise.
func decodeU32Section(data []byte, s *section, zeroCopy bool) []uint32 {
	b := data[s.offset : s.offset+s.length]
	n := int(s.length / 4)
	if n == 0 {
		return nil
	}
	if zeroCopy && hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	if hostLittleEndian {
		copy(u32bytes(out), b)
	} else {
		for i := range out {
			out[i] = binary.LittleEndian.Uint32(b[i*4:])
		}
	}
	return out
}

func decodeI64Section(data []byte, s *section, zeroCopy bool) []int64 {
	b := data[s.offset : s.offset+s.length]
	n := int(s.length / 8)
	if n == 0 {
		return nil
	}
	if zeroCopy && hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int64, n)
	if hostLittleEndian {
		copy(i64bytes(out), b)
	} else {
		for i := range out {
			out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
		}
	}
	return out
}

// SniffSnapshot reports whether the byte prefix looks like a snapshot
// file — the loaders use it to accept either text graphs or snapshots
// on the same flag.
func SniffSnapshot(prefix []byte) bool {
	return len(prefix) >= 8 && string(prefix[0:8]) == snapMagic
}
