package graph

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
)

// Edge-list ingestion for SNAP-style datasets: one "u v" pair per line,
// '#' or '%' comments, arbitrary (possibly sparse) vertex ids. Such
// datasets carry no labels; following the paper's methodology for
// unlabeled graphs (Section 4), labels are assigned uniformly at random
// from a label set of the requested size, deterministically in the seed.

// ParseEdgeList reads a whitespace-separated edge list from r,
// compacting arbitrary vertex ids to 0..n-1 (in first-appearance order)
// and assigning labels uniformly from numLabels labels using seed.
// Self-loops and duplicate edges are dropped.
func ParseEdgeList(r io.Reader, numLabels int, seed int64) (*Graph, error) {
	if numLabels <= 0 {
		return nil, fmt.Errorf("graph: edge list needs at least 1 label")
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)

	idOf := map[uint64]Vertex{}
	b := NewBuilder(0, 0)
	intern := func(raw uint64) Vertex {
		if v, ok := idOf[raw]; ok {
			return v
		}
		v := b.AddVertex(0) // labels assigned after the vertex count is known
		idOf[raw] = v
		return v
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: edge list line %d: want two vertex ids, got %q", lineNo, line)
		}
		u, err1 := strconv.ParseUint(fields[0], 10, 64)
		v, err2 := strconv.ParseUint(fields[1], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graph: edge list line %d: malformed ids in %q", lineNo, line)
		}
		if u == v {
			continue // drop self-loops silently; SNAP files contain them
		}
		b.AddEdge(intern(u), intern(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	if b.NumVertices() == 0 {
		return nil, fmt.Errorf("graph: empty edge list")
	}
	rng := rand.New(rand.NewSource(seed))
	for v := 0; v < b.NumVertices(); v++ {
		b.SetLabel(Vertex(v), Label(rng.Intn(numLabels)))
	}
	return b.Build()
}

// LoadEdgeList reads an edge-list file (see ParseEdgeList).
func LoadEdgeList(path string, numLabels int, seed int64) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	g, err := ParseEdgeList(f, numLabels, seed)
	if err != nil {
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	return g, nil
}
