package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/obs"
	"subgraphmatching/internal/testutil"
)

// TestSingleflightColdKey hammers one cold cache key with 32 concurrent
// Submits and asserts exactly one plan build happened — the rest either
// joined the in-flight build or hit the cache the leader populated.
func TestSingleflightColdKey(t *testing.T) {
	s, g := newTestService(t, Config{MaxInFlight: 64, MaxQueue: 64})
	defer s.Close()
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(2)), g, 4)

	const goroutines = 32
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, err := s.Submit(context.Background(), Request{Graph: "main", Query: q})
			if err != nil {
				errs <- err
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if builds := s.metrics.planBuilds.Value(); builds != 1 {
		t.Errorf("plan builds = %d, want exactly 1 under %d-way contention", builds, goroutines)
	}
	waits := s.metrics.planBuildWaits.Value()
	hits := s.metrics.planCacheHits.Value()
	if 1+waits+hits != goroutines {
		t.Errorf("accounting leak: 1 build + %d waits + %d hits != %d requests", waits, hits, goroutines)
	}
	// Every non-leader reported CacheHit (no preprocessing paid).
	if v := s.metrics.cacheHits.Value("main", core.QuickSI.String()); v != goroutines-1 {
		t.Errorf("cache-hit requests = %d, want %d", v, goroutines-1)
	}
}

// TestBuildGroupCollapses pins the buildGroup contract directly: with a
// build function blocked until all waiters have arrived, exactly one
// caller leads and everyone receives the leader's plan.
func TestBuildGroupCollapses(t *testing.T) {
	var bg buildGroup
	key := planKey{graph: "g", gen: 1}
	built := make(chan struct{})
	release := make(chan struct{})
	want := &core.Plan{}

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]*core.Plan, waiters)
	leaders := make([]bool, waiters)

	// The leader blocks inside fn until released.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p, leader, err := bg.do(context.Background(), key, func() (*core.Plan, error) {
			close(built)
			<-release
			return want, nil
		})
		if err != nil {
			t.Error(err)
		}
		results[0], leaders[0] = p, leader
	}()
	<-built // the flight is now registered

	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, leader, err := bg.do(context.Background(), key, func() (*core.Plan, error) {
				t.Error("second build ran despite in-flight leader")
				return nil, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], leaders[i] = p, leader
		}(i)
	}
	// Give followers a moment to park on the flight, then release.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	nLeaders := 0
	for i := range results {
		if results[i] != want {
			t.Errorf("caller %d got a different plan", i)
		}
		if leaders[i] {
			nLeaders++
		}
	}
	if nLeaders != 1 {
		t.Errorf("%d leaders, want 1", nLeaders)
	}
}

// TestBuildGroupWaiterHonorsContext: a follower abandoning its wait gets
// the context error while the flight keeps running for others.
func TestBuildGroupWaiterHonorsContext(t *testing.T) {
	var bg buildGroup
	key := planKey{graph: "g"}
	built := make(chan struct{})
	release := make(chan struct{})
	defer close(release)

	go bg.do(context.Background(), key, func() (*core.Plan, error) {
		close(built)
		<-release
		return &core.Plan{}, nil
	})
	<-built

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := bg.do(ctx, key, func() (*core.Plan, error) { return nil, nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestSubmitTraceShapes checks the request span on the three plan
// paths: fresh build, cache hit, and the nesting invariant everywhere.
func TestSubmitTraceShapes(t *testing.T) {
	s, g := newTestService(t, Config{})
	defer s.Close()
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(4)), g, 4)

	var assertNested func(label string, sp *obs.Span)
	assertNested = func(label string, sp *obs.Span) {
		t.Helper()
		if sum := sp.ChildrenDuration(); sum > sp.Duration {
			t.Errorf("%s: %q children %v > own %v", label, sp.Name, sum, sp.Duration)
		}
		for _, c := range sp.Children {
			assertNested(label, c)
		}
	}

	// Cold: fresh build → full preprocess span.
	resp, err := s.Submit(context.Background(), Request{Graph: "main", Query: q})
	if err != nil {
		t.Fatal(err)
	}
	root := resp.Result.Trace
	if root == nil || root.Name != "request" {
		t.Fatalf("cold: root = %+v, want request span", root)
	}
	assertNested("cold", root)
	if root.Child("admission") == nil {
		t.Error("cold: no admission span")
	}
	match := root.Child("match")
	if match == nil {
		t.Fatal("cold: no match span")
	}
	if match.Child("preprocess") == nil || match.Child("enumerate") == nil {
		t.Errorf("cold: match children = %v", spanNames(match.Children))
	}

	// Warm: cache hit → "plan" span with cached + saved_ns attrs, and
	// no preprocess span (its durations were not paid this request).
	resp, err = s.Submit(context.Background(), Request{Graph: "main", Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatal("second submit did not hit the cache")
	}
	root = resp.Result.Trace
	assertNested("warm", root)
	match = root.Child("match")
	if match == nil {
		t.Fatal("warm: no match span")
	}
	if match.Child("preprocess") != nil {
		t.Error("warm: cache hit still carries the preprocess span (breaks the wall-time invariant)")
	}
	plan := match.Child("plan")
	if plan == nil {
		t.Fatal("warm: no plan span")
	}
	if plan.Attr("cached") != true {
		t.Error("warm: plan span not marked cached")
	}
	saved, ok := plan.Attr("saved_ns").(int64)
	if !ok || saved <= 0 {
		t.Errorf("warm: saved_ns = %v, want positive int64", plan.Attr("saved_ns"))
	}
}

func spanNames(spans []*obs.Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

// TestSlowQueryLog drives a request over a zero...tiny threshold and
// checks the NDJSON record: one parseable line carrying the query
// fingerprint, workload, outcome and span tree.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	s := New(Config{SlowQueryLog: syncWriter{&mu, &buf}, SlowQueryThreshold: time.Nanosecond})
	defer s.Close()
	g := testutil.RandomGraph(rand.New(rand.NewSource(7)), 300, 900, 3)
	if _, err := s.RegisterGraph("main", g, false); err != nil {
		t.Fatal(err)
	}
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(5)), g, 4)

	if _, err := s.Submit(context.Background(), Request{Graph: "main", Query: q, Algorithm: core.CFL}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), Request{Graph: "main", Query: q, Algorithm: core.CFL}); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	sc := bufio.NewScanner(strings.NewReader(out))
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != 2 {
		t.Fatalf("%d slow-log lines, want 2:\n%s", len(lines), out)
	}
	var rec slowQueryRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 not valid JSON: %v", err)
	}
	if rec.Graph != "main" || rec.Algorithm != "CFL" {
		t.Errorf("workload = %s/%s", rec.Graph, rec.Algorithm)
	}
	if len(rec.QueryFP) != 16 {
		t.Errorf("query_fp %q, want 16 hex chars", rec.QueryFP)
	}
	if rec.LatencyNS <= 0 {
		t.Error("latency_ns missing")
	}
	if rec.Trace == nil || rec.Trace.Name != "request" {
		t.Fatalf("trace missing or misnamed: %+v", rec.Trace)
	}
	if rec.Trace.Child("match") == nil {
		t.Error("trace has no match child")
	}
	// Both lines share the fingerprint: same query.
	var rec2 slowQueryRecord
	if err := json.Unmarshal([]byte(lines[1]), &rec2); err != nil {
		t.Fatal(err)
	}
	if rec2.QueryFP != rec.QueryFP {
		t.Error("same query produced different fingerprints")
	}
	if !rec2.CacheHit {
		t.Error("second record should be a cache hit")
	}
	if v := s.metrics.slowQueries.Value(); v != 2 {
		t.Errorf("slow_queries_total = %d, want 2", v)
	}
}

// syncWriter serializes writes for the race detector; the service also
// locks internally, but the test reads the buffer concurrently-ish.
type syncWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestStatsMatchMetrics asserts the JSON snapshot and the registry
// agree after a mixed workload — the migration's whole point.
func TestStatsMatchMetrics(t *testing.T) {
	s, g := newTestService(t, Config{})
	defer s.Close()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 5; i++ {
		q := testutil.RandomConnectedQuery(rng, g, 3+i%3)
		// Profile one request so the depth-nodes histogram has samples.
		if _, err := s.Submit(context.Background(), Request{Graph: "main", Query: q, Profile: i == 0}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	var jsonQueries uint64
	for _, w := range st.Workloads {
		jsonQueries += w.Queries
	}
	var promQueries uint64
	for _, w := range st.Workloads {
		promQueries += s.metrics.requests.Value(w.Graph, w.Algorithm)
	}
	if jsonQueries != 5 || promQueries != 5 {
		t.Errorf("queries: json %d, prom %d, want 5", jsonQueries, promQueries)
	}
	// The flight-recorder gauge and the depth-heat histogram read back
	// through /stats by construction: same sources.
	if st.Inflight != 0 || st.Inflight != s.flights.InflightCount() {
		t.Errorf("inflight = %d (recorder %d), want 0", st.Inflight, s.flights.InflightCount())
	}
	if st.DepthSamples == 0 {
		t.Error("profiled request recorded no depth samples")
	}
	if st.DepthSamples != s.metrics.depthNodes.Count() {
		t.Errorf("depth samples: json %d, histogram %d", st.DepthSamples, s.metrics.depthNodes.Count())
	}
	// The exposition itself must carry the families.
	var buf bytes.Buffer
	s.Metrics().WritePrometheus(&buf)
	for _, family := range []string{
		"smatch_requests_total", "smatch_request_duration_seconds",
		"smatch_plan_cache_hits_total", "smatch_plan_builds_total",
		"smatch_admission_capacity", "smatch_phase_duration_seconds",
		"smatch_requests_inflight", "smatch_enum_depth_nodes",
	} {
		if !strings.Contains(buf.String(), family) {
			t.Errorf("exposition missing %s", family)
		}
	}
}
