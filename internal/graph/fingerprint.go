package graph

import (
	"crypto/sha256"
	"encoding/binary"
)

// Fingerprint is a collision-resistant digest of a graph's canonical
// serialization. Two graphs share a fingerprint exactly when they have
// identical vertex ids, labels and adjacency — it identifies a concrete
// in-memory graph, not an isomorphism class. The serving layer keys its
// plan cache on query fingerprints, so a collision would silently reuse
// another query's candidate sets; sha256 makes that practically
// impossible rather than merely unlikely.
type Fingerprint [32]byte

// fingerprintVersion is folded into every digest so a change to the
// serialization below invalidates old fingerprints instead of colliding
// with them.
const fingerprintVersion = "smfp/1\n"

// FingerprintOf computes g's fingerprint by streaming the canonical
// serialization — vertex count, labels in vertex order, then each
// vertex's sorted adjacency list — through sha256. The CSR invariant
// (adjacency sorted, ids dense) makes this serialization canonical
// without any normalization pass. O(|V|+|E|) time, constant extra space.
func FingerprintOf(g *Graph) Fingerprint {
	h := sha256.New()
	h.Write([]byte(fingerprintVersion))
	var buf [8]byte
	writeU64 := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	n := g.NumVertices()
	writeU64(uint64(n))
	word := buf[:4]
	for _, l := range g.labels {
		binary.LittleEndian.PutUint32(word, l)
		h.Write(word)
	}
	for v := 0; v < n; v++ {
		ns := g.Neighbors(Vertex(v))
		writeU64(uint64(len(ns)))
		for _, w := range ns {
			binary.LittleEndian.PutUint32(word, w)
			h.Write(word)
		}
	}
	var fp Fingerprint
	h.Sum(fp[:0])
	return fp
}
