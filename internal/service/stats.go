package service

import (
	"sort"
	"sync"
	"time"
)

// latencySampleSize is how many recent request latencies each workload
// keeps for percentile estimation. A fixed ring bounds memory per
// workload; 512 samples put the p99 estimate within a handful of
// requests of the true tail at serving rates.
const latencySampleSize = 512

// latencyRing is a fixed-size ring of recent latencies.
type latencyRing struct {
	buf  [latencySampleSize]time.Duration
	n    int // total recorded (saturates the ring at len(buf))
	next int
}

func (r *latencyRing) add(d time.Duration) {
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// percentile returns the p-quantile (0 < p <= 1) of the retained
// samples, 0 when empty. Called on a copy under the workload lock.
func (r *latencyRing) percentile(p float64) time.Duration {
	if r.n == 0 {
		return 0
	}
	tmp := make([]time.Duration, r.n)
	copy(tmp, r.buf[:r.n])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	idx := int(p*float64(r.n)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= r.n {
		idx = r.n - 1
	}
	return tmp[idx]
}

// WorkloadStats reports one (graph, algorithm) pair's counters. Latency
// percentiles cover the most recent latencySampleSize requests and
// include queue wait.
type WorkloadStats struct {
	Graph      string        `json:"graph"`
	Algorithm  string        `json:"algorithm"`
	Queries    uint64        `json:"queries"`
	CacheHits  uint64        `json:"cache_hits"`
	Timeouts   uint64        `json:"timeouts"`
	LimitHits  uint64        `json:"limit_hits"`
	Rejected   uint64        `json:"rejected"`
	Errors     uint64        `json:"errors"`
	Embeddings uint64        `json:"embeddings"`
	P50        time.Duration `json:"p50_ns"`
	P99        time.Duration `json:"p99_ns"`
}

type workloadCounters struct {
	queries, cacheHits, timeouts, limitHits, rejected, errors, embeddings uint64
	lat                                                                   latencyRing
}

type statKey struct{ graph, algo string }

// statsRegistry aggregates per-workload counters. One mutex over the
// whole map is enough: updates are a handful of integer stores per
// request, far off the enumeration hot path.
type statsRegistry struct {
	mu        sync.Mutex
	workloads map[statKey]*workloadCounters
}

func (s *statsRegistry) counters(graph, algo string) *workloadCounters {
	if s.workloads == nil {
		s.workloads = make(map[statKey]*workloadCounters)
	}
	k := statKey{graph, algo}
	c, ok := s.workloads[k]
	if !ok {
		c = &workloadCounters{}
		s.workloads[k] = c
	}
	return c
}

// record applies one request outcome.
func (s *statsRegistry) record(graph, algo string, fn func(*workloadCounters)) {
	s.mu.Lock()
	fn(s.counters(graph, algo))
	s.mu.Unlock()
}

func (s *statsRegistry) snapshot() []WorkloadStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WorkloadStats, 0, len(s.workloads))
	for k, c := range s.workloads {
		out = append(out, WorkloadStats{
			Graph: k.graph, Algorithm: k.algo,
			Queries: c.queries, CacheHits: c.cacheHits,
			Timeouts: c.timeouts, LimitHits: c.limitHits,
			Rejected: c.rejected, Errors: c.errors,
			Embeddings: c.embeddings,
			P50:        c.lat.percentile(0.50),
			P99:        c.lat.percentile(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Graph != out[j].Graph {
			return out[i].Graph < out[j].Graph
		}
		return out[i].Algorithm < out[j].Algorithm
	})
	return out
}

// Stats is the full service snapshot smatchd serves on /stats.
type Stats struct {
	Uptime    time.Duration   `json:"uptime_ns"`
	Graphs    []GraphInfo     `json:"graphs"`
	Cache     CacheStats      `json:"cache"`
	Admission AdmissionStats  `json:"admission"`
	Workloads []WorkloadStats `json:"workloads"`
}

// AdmissionStats reports the admission controller's occupancy.
type AdmissionStats struct {
	Capacity int64 `json:"capacity"`
	InUse    int64 `json:"in_use"`
	Queued   int   `json:"queued"`
}
