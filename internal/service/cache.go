package service

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"sync"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/obs"
)

// planKey identifies one cached preprocessing plan. Two requests share a
// plan exactly when they target the same registered graph *generation*,
// their query graphs serialize identically (labels + sorted adjacency —
// graph.FingerprintOf), and every plan-shaping configuration knob
// matches. The generation component means hot-swapping a graph never
// serves a stale plan: old keys simply stop being produced and their
// entries age out of the LRU.
type planKey struct {
	graph   string
	gen     uint64
	queryFP graph.Fingerprint
	cfgHash uint64
}

// configHash digests every Config field that influences the plan's
// contents plus the one preprocessing-mode distinction that does
// (GraphQL's Jacobi rounds under parallel preprocessing keep a superset
// of the sequential candidate sets, so parallel- and sequential-built
// GQL plans get distinct keys).
func configHash(cfg core.Config, preWorkers int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	flag := func(b bool) {
		if b {
			u64(1)
		} else {
			u64(0)
		}
	}
	u64(uint64(cfg.Filter))
	u64(uint64(cfg.Order))
	u64(uint64(cfg.Local))
	u64(uint64(cfg.Kernel))
	flag(cfg.AutoOrder)
	flag(cfg.TreeSpace)
	flag(cfg.FailingSets)
	flag(cfg.Adaptive)
	flag(cfg.DPWeights)
	flag(cfg.VF2PPRules)
	flag(cfg.Homomorphism)
	flag(cfg.SymmetryBreaking)
	flag(cfg.Profile)
	u64(uint64(cfg.GQLRounds))
	u64(uint64(cfg.GQLRadius))
	u64(uint64(cfg.DPIsoPasses))
	u64(uint64(len(cfg.FixedOrder)))
	for _, v := range cfg.FixedOrder {
		u64(uint64(v))
	}
	jacobi := cfg.Filter == filter.GQL && !cfg.Homomorphism && preWorkers > 1
	flag(jacobi)
	return h.Sum64()
}

// CacheStats is a point-in-time snapshot of the plan cache's accounting.
// Every successful insert is eventually accounted for exactly once:
// it is either still resident (Size), was evicted by the LRU
// (Evictions), or was removed by a hot-swap/unregister purge (Purged).
type CacheStats struct {
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Purged    uint64 `json:"purged"`
}

// planCache is a mutex-guarded LRU over read-only *core.Plan values.
// Entries are shared: a get returns the same plan pointer to every
// caller, which is safe because MatchPlan never mutates a plan. The
// cache bounds entry count, not bytes — plans are dominated by the
// candidate-space CSR, whose size varies too much per workload for a
// byte budget to beat a simple count knob here.
type planCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[planKey]*list.Element
	// liveGen reports the named graph's current registry generation
	// (false when the name is not registered). add consults it under
	// c.mu to fence stale inserts: a request that resolved a graph
	// before a hot-swap/unregister must not insert its (now
	// unreachable) plan after the purge ran, pinning dead plan memory
	// in an LRU slot. The registry is updated before purgeGraph runs
	// and add/purgeGraph serialize on c.mu, so an insert either
	// precedes the purge (and is removed by it) or observes the new
	// generation (and drops itself). Reading the live generation keeps
	// the fence stateless per graph name — the previous design kept a
	// per-name floor map that grew without bound under
	// register/unregister churn with ephemeral names. nil disables the
	// fence (standalone caches without a registry).
	liveGen func(name string) (uint64, bool)
	// hits/misses/evictions/purged are obs counters so the cache's
	// accounting IS the /metrics families — New swaps in the
	// registry-owned instances; a standalone cache (tests) gets
	// unregistered ones.
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	purged    *obs.Counter
}

type cacheEntry struct {
	key  planKey
	plan *core.Plan
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		return nil // caching disabled
	}
	return &planCache{
		cap: capacity, ll: list.New(),
		entries: make(map[planKey]*list.Element),
		hits:    &obs.Counter{}, misses: &obs.Counter{},
		evictions: &obs.Counter{}, purged: &obs.Counter{},
	}
}

func (c *planCache) get(k planKey) (*core.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		c.ll.MoveToFront(e)
		c.hits.Inc()
		return e.Value.(*cacheEntry).plan, true
	}
	c.misses.Inc()
	return nil, false
}

// add inserts a freshly built plan. If a concurrent request already
// inserted the same key (the benign dogpile on a cold key), the existing
// entry wins so every caller converges on one shared plan.
func (c *planCache) add(k planKey, p *core.Plan) *core.Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.liveGen != nil {
		if gen, ok := c.liveGen(k.graph); !ok || k.gen != gen {
			// The graph was swapped or unregistered while this plan was
			// being built; no future request can produce this key, so
			// don't let the dead plan occupy an LRU slot.
			return p
		}
	}
	if e, ok := c.entries[k]; ok {
		c.ll.MoveToFront(e)
		return e.Value.(*cacheEntry).plan
	}
	c.entries[k] = c.ll.PushFront(&cacheEntry{key: k, plan: p})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
	return p
}

// purgeGraph drops every entry for the named graph built against a
// generation below `before`, counting each removal into the purged
// counter (evictions stay LRU-capacity-only, so size + evictions +
// purged always reconciles against successful inserts). Hot swap
// passes the new generation; unregister passes the removed generation
// + 1. A concurrent miss on the old generation cannot re-add its plan
// after the purge: add re-reads the live registry generation under the
// same mutex (see planCache.liveGen).
func (c *planCache) purgeGraph(name string, before uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for e := c.ll.Front(); e != nil; e = next {
		next = e.Next()
		ent := e.Value.(*cacheEntry)
		if ent.key.graph == name && ent.key.gen < before {
			c.ll.Remove(e)
			delete(c.entries, ent.key)
			c.purged.Inc()
		}
	}
}

func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size: c.ll.Len(), Capacity: c.cap,
		Hits: c.hits.Value(), Misses: c.misses.Value(),
		Evictions: c.evictions.Value(), Purged: c.purged.Value(),
	}
}
