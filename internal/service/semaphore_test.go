package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestSemaphoreImmediateGrant(t *testing.T) {
	s := newSemaphore(4, 0)
	if err := s.acquire(context.Background(), "g", 3, time.Second, 8); err != nil {
		t.Fatalf("acquire(3): %v", err)
	}
	if err := s.acquire(context.Background(), "g", 1, time.Second, 8); err != nil {
		t.Fatalf("acquire(1): %v", err)
	}
	cap_, inUse, queued := s.load()
	if cap_ != 4 || inUse != 4 || queued != 0 {
		t.Fatalf("load = (%d,%d,%d), want (4,4,0)", cap_, inUse, queued)
	}
	s.release(3)
	s.release(1)
	if _, inUse, _ := s.load(); inUse != 0 {
		t.Fatalf("inUse after release = %d, want 0", inUse)
	}
}

func TestSemaphoreClampsOversizedWeight(t *testing.T) {
	s := newSemaphore(2, 0)
	// Weight 10 exceeds capacity; it must degrade to "the whole
	// semaphore" rather than deadlock.
	if err := s.acquire(context.Background(), "g", 10, time.Second, 8); err != nil {
		t.Fatalf("oversized acquire: %v", err)
	}
	if _, inUse, _ := s.load(); inUse != 2 {
		t.Fatalf("inUse = %d, want clamped 2", inUse)
	}
	s.release(10)
	if _, inUse, _ := s.load(); inUse != 0 {
		t.Fatalf("inUse = %d, want 0", inUse)
	}
}

func TestSemaphoreQueueFull(t *testing.T) {
	s := newSemaphore(1, 0)
	if err := s.acquire(context.Background(), "g", 1, time.Second, 1); err != nil {
		t.Fatal(err)
	}
	// No waiting allowed → immediate ErrQueueFull.
	if err := s.acquire(context.Background(), "g", 1, 0, 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("maxWait=0 err = %v, want ErrQueueFull", err)
	}
	// Fill the one queue slot with a real waiter, then overflow it.
	done := make(chan error, 1)
	go func() { done <- s.acquire(context.Background(), "g", 1, time.Minute, 1) }()
	waitForQueued(t, s, 1)
	if err := s.acquire(context.Background(), "g", 1, time.Minute, 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow err = %v, want ErrQueueFull", err)
	}
	if !errors.Is(ErrQueueFull, ErrOverloaded) {
		t.Fatal("ErrQueueFull must wrap ErrOverloaded")
	}
	s.release(1)
	if err := <-done; err != nil {
		t.Fatalf("queued waiter err = %v", err)
	}
	s.release(1)
}

func TestSemaphoreQueueTimeout(t *testing.T) {
	s := newSemaphore(1, 0)
	if err := s.acquire(context.Background(), "g", 1, time.Second, 4); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := s.acquire(context.Background(), "g", 1, 20*time.Millisecond, 4)
	if !errors.Is(err, ErrQueueTimeout) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrQueueTimeout wrapping ErrOverloaded", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("returned before the wait budget elapsed")
	}
	// The timed-out waiter must be gone so capacity isn't leaked.
	if _, _, queued := s.load(); queued != 0 {
		t.Fatalf("queued = %d after timeout, want 0", queued)
	}
	s.release(1)
	if err := s.acquire(context.Background(), "g", 1, time.Second, 4); err != nil {
		t.Fatalf("acquire after timeout cleanup: %v", err)
	}
	s.release(1)
}

func TestSemaphoreContextCancelWhileQueued(t *testing.T) {
	s := newSemaphore(1, 0)
	if err := s.acquire(context.Background(), "g", 1, time.Second, 4); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.acquire(ctx, "g", 1, time.Minute, 4) }()
	waitForQueued(t, s, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	s.release(1)
	if _, inUse, queued := s.load(); inUse != 0 || queued != 0 {
		t.Fatalf("load after cancel = inUse %d queued %d, want 0,0", inUse, queued)
	}
}

func TestSemaphoreFIFOOrder(t *testing.T) {
	s := newSemaphore(1, 0)
	if err := s.acquire(context.Background(), "g", 1, time.Second, 8); err != nil {
		t.Fatal(err)
	}
	const n = 5
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		i := i
		go func() {
			defer wg.Done()
			if err := s.acquire(context.Background(), "g", 1, time.Minute, 8); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			s.release(1)
		}()
		waitForQueued(t, s, i+1) // serialize arrival so FIFO order is defined
	}
	s.release(1)
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order = %v, want FIFO 0..%d", order, n-1)
		}
	}
}

// TestSemaphoreHeavyWaiterNotStarved checks strict FIFO: a queued heavy
// request blocks later light requests instead of being bypassed forever.
func TestSemaphoreHeavyWaiterNotStarved(t *testing.T) {
	s := newSemaphore(4, 0)
	if err := s.acquire(context.Background(), "g", 3, time.Second, 8); err != nil {
		t.Fatal(err)
	}
	heavy := make(chan error, 1)
	go func() { heavy <- s.acquire(context.Background(), "g", 4, time.Minute, 8) }()
	waitForQueued(t, s, 1)
	// A light request that would fit must still queue behind the heavy
	// head — strict FIFO is the anti-starvation guarantee.
	light := make(chan error, 1)
	go func() { light <- s.acquire(context.Background(), "g", 1, time.Minute, 8) }()
	waitForQueued(t, s, 2)
	select {
	case err := <-light:
		t.Fatalf("light request bypassed the queued heavy head (err=%v)", err)
	case <-time.After(30 * time.Millisecond):
	}
	s.release(3)
	if err := <-heavy; err != nil {
		t.Fatalf("heavy: %v", err)
	}
	s.release(4)
	if err := <-light; err != nil {
		t.Fatalf("light: %v", err)
	}
	s.release(1)
}

func waitForQueued(t *testing.T, s *semaphore, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, queued := s.load(); queued >= want {
			return
		}
		if time.Now().After(deadline) {
			_, _, queued := s.load()
			t.Fatalf("queued = %d, want >= %d", queued, want)
		}
		time.Sleep(time.Millisecond)
	}
}
