package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// Structural regression tests: each experiment's output must keep the
// columns the paper's corresponding table/figure reports. (Values are
// timing-dependent; the structure is not.)
func TestExperimentOutputStructure(t *testing.T) {
	cases := []struct {
		name    string
		run     Runner
		markers []string
	}{
		{"fig7", Fig7, []string{"GQL", "CFL", "CECI", "DPiso", "(a) by dataset", "(b) by query size", "(c) dense vs sparse"}},
		{"fig8", Fig8, []string{"LDF", "STEADY", "(a) by dataset"}},
		{"fig9", Fig9, []string{"QSI", "GQL", "CFL", "2PP", "speedup"}},
		{"fig10", Fig10, []string{"Hybrid", "QFilter"}},
		{"fig11", Fig11, []string{"QSI", "GQL", "CFL", "CECI", "DPiso", "RI", "VF2PP"}},
		{"fig12", Fig12, []string{"standard deviation"}},
		{"fig13", Fig13, []string{"short", "median", "long", "unsolved"}},
		{"table5", Table5, []string{"wo/fs", "w/fs", "Fail-All"}},
		{"fig14", Fig14, []string{"min", "median", "max", "GQL", "RI"}},
		{"table6", Table6, []string{"mean", "std", "max", ">10"}},
		{"fig15", Fig15, []string{"wo/fs", "w/fs", "DP-iso"}},
		{"fig16", Fig16, []string{"GQLfs", "RIfs", "O-CECI", "O-DP", "O-RI", "O-2PP", "GLW"}},
		{"ablation", Ablation, []string{"rounds", "radius", "symmetry", "baseline lineage", "Ullmann", "VF2", "parallel"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			env := tinyEnv(&buf)
			if err := c.run(env); err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			out := buf.String()
			for _, m := range c.markers {
				if !strings.Contains(out, m) {
					t.Errorf("%s output missing %q:\n%s", c.name, m, out)
				}
			}
		})
	}
}
