package filter

import (
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/par"
)

// Root selection rules of the tree-based filters. Each is exported
// because the corresponding ordering methods (package order) must use the
// same deterministic root.
//
// The dominant cost of every rule is sizing NLF/LDF candidate sets — one
// label-frequency scan of the data graph per query vertex — so each rule
// has a Workers form that fans the sizing out over internal/par and
// reduces with a sequential argmin. The result is identical for every
// worker count: the scores are written per task index and the tie-break
// (lowest vertex id wins) lives entirely in the reduction.

// CFLRoot picks CFL's start vertex: among the (up to) three core vertices
// with minimum label-frequency/degree ratio, the one with the smallest
// NLF candidate set. Queries without a 2-core fall back to all vertices.
func CFLRoot(q, g *graph.Graph) graph.Vertex {
	return CFLRootWorkers(q, g, 1)
}

// CFLRootWorkers is CFLRoot with the NLF candidate-set sizing of the top
// ranked vertices fanned out over `workers` goroutines.
func CFLRootWorkers(q, g *graph.Graph, workers int) graph.Vertex {
	core := q.TwoCore()
	pool := make([]graph.Vertex, 0, q.NumVertices())
	for u := 0; u < q.NumVertices(); u++ {
		if core[u] {
			pool = append(pool, graph.Vertex(u))
		}
	}
	if len(pool) == 0 {
		for u := 0; u < q.NumVertices(); u++ {
			pool = append(pool, graph.Vertex(u))
		}
	}
	// Rank by |{v : L(v)=L(u)}| / d(u), keep the three smallest.
	rank := func(u graph.Vertex) float64 {
		return float64(g.LabelFrequency(q.Label(u))) / float64(q.Degree(u))
	}
	top := make([]graph.Vertex, 0, 3)
	for _, u := range pool {
		top = append(top, u)
		for i := len(top) - 1; i > 0 && rank(top[i]) < rank(top[i-1]); i-- {
			top[i], top[i-1] = top[i-1], top[i]
		}
		if len(top) > 3 {
			top = top[:3]
		}
	}
	s := newState(q, g)
	sizes := make([]int, len(top))
	counters := rootCounters(q, g, workers, len(top))
	par.Run(workers, len(top), func(w, t int) uint64 {
		sizes[t] = len(s.nlfCandidatesWith(counters[w], top[t]))
		return uint64(sizes[t]) + 1
	})
	best := top[0]
	bestSize := -1
	for i, u := range top {
		if bestSize < 0 || sizes[i] < bestSize {
			best, bestSize = u, sizes[i]
		}
	}
	return best
}

// CECIRoot picks CECI's start vertex: argmin |C_NLF(u)| / d(u).
func CECIRoot(q, g *graph.Graph) graph.Vertex {
	return CECIRootWorkers(q, g, 1)
}

// CECIRootWorkers is CECIRoot with the per-vertex NLF sizing fanned out
// over `workers` goroutines.
func CECIRootWorkers(q, g *graph.Graph, workers int) graph.Vertex {
	s := newState(q, g)
	n := q.NumVertices()
	scores := make([]float64, n)
	counters := rootCounters(q, g, workers, n)
	par.Run(workers, n, func(w, t int) uint64 {
		uu := graph.Vertex(t)
		size := len(s.nlfCandidatesWith(counters[w], uu))
		scores[t] = float64(size) / float64(q.Degree(uu))
		return uint64(size) + 1
	})
	return argminRoot(scores)
}

// DPIsoRoot picks DP-iso's start vertex: argmin |C_LDF(u)| / d(u).
func DPIsoRoot(q, g *graph.Graph) graph.Vertex {
	return DPIsoRootWorkers(q, g, 1)
}

// DPIsoRootWorkers is DPIsoRoot with the per-vertex LDF sizing fanned
// out over `workers` goroutines. The LDF rule needs no per-worker
// scratch: ldfCandidates only reads the immutable graphs.
func DPIsoRootWorkers(q, g *graph.Graph, workers int) graph.Vertex {
	s := newState(q, g)
	n := q.NumVertices()
	scores := make([]float64, n)
	par.Run(workers, n, func(_, t int) uint64 {
		uu := graph.Vertex(t)
		size := len(s.ldfCandidates(uu))
		scores[t] = float64(size) / float64(q.Degree(uu))
		return uint64(size) + 1
	})
	return argminRoot(scores)
}

// rootCounters allocates one NLF scratch counter per worker par.Run will
// actually use (mirroring its clamp of workers to [1, n]).
func rootCounters(q, g *graph.Graph, workers, n int) []*graph.LabelCounter {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	cs := make([]*graph.LabelCounter, workers)
	for w := range cs {
		cs[w] = graph.NewLabelCounter(graph.MaxLabelOf(q, g))
	}
	return cs
}

// argminRoot is the deterministic reduction shared by the root rules:
// the lowest-scoring vertex, lowest id on ties.
func argminRoot(scores []float64) graph.Vertex {
	best := graph.Vertex(0)
	bestScore := -1.0
	for u, score := range scores {
		if bestScore < 0 || score < bestScore {
			best, bestScore = graph.Vertex(u), score
		}
	}
	return best
}
