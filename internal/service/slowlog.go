package service

import (
	"encoding/hex"
	"encoding/json"
	"io"
	"sync"
	"time"

	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/obs"
)

// slowQueryLogger appends one NDJSON line per request whose end-to-end
// latency reaches the threshold. Each line is self-contained — query
// fingerprint, workload, config knobs, outcome, and the full span
// breakdown — so a slow request can be diagnosed from the log alone,
// without correlating against metrics or re-running the query.
type slowQueryLogger struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
}

// slowQueryRecord is the wire shape of one slow-query line.
type slowQueryRecord struct {
	Time       string `json:"time"`
	Graph      string `json:"graph"`
	Algorithm  string `json:"algo"`
	QueryFP    string `json:"query_fp,omitempty"`
	QueryVerts int    `json:"query_vertices,omitempty"`
	QueryEdges int    `json:"query_edges,omitempty"`
	// Batch records (Algorithm "batch") report the item/group counts and
	// per-item error tally instead of a single query's shape.
	Batch       int       `json:"batch,omitempty"`
	Groups      int       `json:"groups,omitempty"`
	ItemErrors  int       `json:"item_errors,omitempty"`
	Parallel    int       `json:"parallel,omitempty"`
	Workers     int       `json:"workers,omitempty"`
	MaxEmb      uint64    `json:"max_embeddings,omitempty"`
	CacheHit    bool      `json:"cache_hit"`
	Embeddings  uint64    `json:"embeddings"`
	Nodes       uint64    `json:"nodes"`
	TimedOut    bool      `json:"timed_out,omitempty"`
	LimitHit    bool      `json:"limit_hit,omitempty"`
	LatencyNS   int64     `json:"latency_ns"`
	QueueWaitNS int64     `json:"queue_wait_ns"`
	Trace       *obs.Span `json:"trace,omitempty"`
}

// log writes one record; lines are serialized so concurrent slow
// requests never interleave bytes.
func (l *slowQueryLogger) log(rec slowQueryRecord) {
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	l.w.Write(b)
	l.mu.Unlock()
}

// fingerprintHex renders a query fingerprint for the log: the first 16
// hex digits identify repeats without bloating every line with 64.
func fingerprintHex(fp graph.Fingerprint) string {
	return hex.EncodeToString(fp[:8])
}
