package service

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/graph"
)

// maxGraphNameLen bounds registry names so a transport can safely embed
// them in URLs and log lines.
const maxGraphNameLen = 128

// GraphInfo describes one registered data graph.
type GraphInfo struct {
	Name     string
	Vertices int
	Edges    int
	Labels   int
	// Generation increments every time the name is (re)registered. Plan
	// cache keys embed it, so swapping a graph atomically invalidates
	// every cached plan built against the old version.
	Generation   uint64
	RegisteredAt time.Time
}

// graphEntry is an immutable registry slot; replacement swaps the whole
// entry under the registry lock, so in-flight requests holding the old
// entry keep a consistent (graph, generation) pair.
type graphEntry struct {
	name string
	g    *graph.Graph
	gen  uint64
	at   time.Time
}

func (e *graphEntry) info() GraphInfo {
	return GraphInfo{
		Name: e.name, Vertices: e.g.NumVertices(), Edges: e.g.NumEdges(),
		Labels: e.g.NumLabels(), Generation: e.gen, RegisteredAt: e.at,
	}
}

// registry is the named, hot-swappable set of data graphs. Reads vastly
// outnumber writes (every request resolves its graph; registration is
// an operator action), hence the RWMutex.
type registry struct {
	mu      sync.RWMutex
	graphs  map[string]*graphEntry
	nextGen uint64
}

func (r *registry) register(name string, g *graph.Graph, replace bool, now time.Time) (GraphInfo, error) {
	if name == "" || len(name) > maxGraphNameLen {
		return GraphInfo{}, fmt.Errorf("%w: %q", ErrInvalidGraphName, name)
	}
	if g == nil {
		return GraphInfo{}, fmt.Errorf("service: %w", core.ErrNilGraph)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.graphs == nil {
		r.graphs = make(map[string]*graphEntry)
	}
	if _, ok := r.graphs[name]; ok && !replace {
		return GraphInfo{}, fmt.Errorf("%w: %q", ErrDuplicateGraph, name)
	}
	r.nextGen++
	e := &graphEntry{name: name, g: g, gen: r.nextGen, at: now}
	r.graphs[name] = e
	return e.info(), nil
}

// restore installs a recovered graph under an explicit generation and
// advances the generation counter past it — the durable-store recovery
// path. Names with a lower-or-equal live generation are overwritten
// (idempotent WAL replay); a higher live generation wins.
func (r *registry) restore(name string, g *graph.Graph, gen uint64, at time.Time) (GraphInfo, error) {
	if name == "" || len(name) > maxGraphNameLen {
		return GraphInfo{}, fmt.Errorf("%w: %q", ErrInvalidGraphName, name)
	}
	if g == nil {
		return GraphInfo{}, fmt.Errorf("service: %w", core.ErrNilGraph)
	}
	if gen == 0 {
		return GraphInfo{}, fmt.Errorf("service: restore %q: generation must be positive", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.graphs == nil {
		r.graphs = make(map[string]*graphEntry)
	}
	if cur, ok := r.graphs[name]; ok && cur.gen > gen {
		return GraphInfo{}, fmt.Errorf("service: restore %q: generation %d behind live %d", name, gen, cur.gen)
	}
	if gen > r.nextGen {
		r.nextGen = gen
	}
	e := &graphEntry{name: name, g: g, gen: gen, at: at}
	r.graphs[name] = e
	return e.info(), nil
}

// advanceGeneration raises the generation counter to at least gen, so
// post-recovery registrations are strictly newer than anything the
// durable log ever issued — including names that were unregistered.
func (r *registry) advanceGeneration(gen uint64) {
	r.mu.Lock()
	if gen > r.nextGen {
		r.nextGen = gen
	}
	r.mu.Unlock()
}

// unregister removes the named graph, returning the removed entry's
// generation so the caller can fence late plan-cache inserts against it.
func (r *registry) unregister(name string) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.graphs[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownGraph, name)
	}
	delete(r.graphs, name)
	return e.gen, nil
}

func (r *registry) get(name string) (*graphEntry, error) {
	r.mu.RLock()
	e, ok := r.graphs[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownGraph, name)
	}
	return e, nil
}

func (r *registry) list() []GraphInfo {
	r.mu.RLock()
	out := make([]GraphInfo, 0, len(r.graphs))
	for _, e := range r.graphs {
		out = append(out, e.info())
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
