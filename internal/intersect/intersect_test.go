package intersect

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// naive is the reference implementation all kernels must agree with.
func naive(a, b []uint32) []uint32 {
	inB := map[uint32]bool{}
	for _, x := range b {
		inB[x] = true
	}
	out := []uint32{}
	for _, x := range a {
		if inB[x] {
			out = append(out, x)
		}
	}
	return out
}

func randomSorted(rng *rand.Rand, n, max int) []uint32 {
	seen := map[uint32]bool{}
	for len(seen) < n {
		seen[uint32(rng.Intn(max))] = true
	}
	out := make([]uint32, 0, n)
	for x := range seen {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestKernelsAgreeWithNaive(t *testing.T) {
	kernels := map[string]func(dst, a, b []uint32) []uint32{
		"Merge":     Merge,
		"Galloping": Galloping,
		"Hybrid":    Hybrid,
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSorted(rng, rng.Intn(100), 500)
		b := randomSorted(rng, rng.Intn(100), 500)
		want := naive(a, b)
		for name, k := range kernels {
			got := k(nil, a, b)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Logf("%s(%v, %v) = %v, want %v", name, a, b, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSkewedSizes(t *testing.T) {
	// Force the galloping path of Hybrid: |b| / |a| >= threshold.
	a := []uint32{25, 999, 4975}
	b := make([]uint32, 0, 200)
	for i := uint32(0); i < 200; i++ {
		b = append(b, i*25)
	}
	want := naive(a, b) // {25, 4975}
	if got := Hybrid(nil, a, b); !reflect.DeepEqual(got, want) {
		t.Errorf("Hybrid skewed = %v, want %v", got, want)
	}
	if got := Galloping(nil, b, a); !reflect.DeepEqual(got, want) {
		t.Errorf("Galloping with swapped args = %v, want %v", got, want)
	}
}

func TestEmptyInputs(t *testing.T) {
	a := []uint32{1, 2, 3}
	for _, k := range []func(dst, a, b []uint32) []uint32{Merge, Galloping, Hybrid} {
		if got := k(nil, a, nil); len(got) != 0 {
			t.Errorf("intersection with empty = %v", got)
		}
		if got := k(nil, nil, a); len(got) != 0 {
			t.Errorf("intersection with empty = %v", got)
		}
	}
}

func TestCount(t *testing.T) {
	a := []uint32{1, 3, 5, 7}
	b := []uint32{3, 4, 5, 8}
	if got := Count(a, b); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
}

func TestContains(t *testing.T) {
	s := []uint32{2, 4, 8, 16}
	for _, x := range s {
		if !Contains(s, x) {
			t.Errorf("Contains(%d) = false", x)
		}
	}
	for _, x := range []uint32{0, 3, 17} {
		if Contains(s, x) {
			t.Errorf("Contains(%d) = true", x)
		}
	}
	if Contains(nil, 1) {
		t.Error("Contains on nil slice")
	}
}

func TestIntersectMany(t *testing.T) {
	a := []uint32{1, 2, 3, 4, 5, 6}
	b := []uint32{2, 4, 6, 8}
	c := []uint32{4, 5, 6, 7}
	var scratch []uint32
	got := IntersectMany(nil, &scratch, a, b, c)
	if want := []uint32{4, 6}; !reflect.DeepEqual(got, want) {
		t.Errorf("IntersectMany = %v, want %v", got, want)
	}
	// Single set copies through.
	got = IntersectMany(nil, &scratch, a)
	if !reflect.DeepEqual(got, a) {
		t.Errorf("IntersectMany single = %v", got)
	}
	// No sets.
	if got := IntersectMany(nil, &scratch); len(got) != 0 {
		t.Errorf("IntersectMany() = %v", got)
	}
	// Early exit on empty intermediate.
	got = IntersectMany(nil, &scratch, []uint32{1}, []uint32{2}, a)
	if len(got) != 0 {
		t.Errorf("IntersectMany disjoint = %v", got)
	}
}

func TestIntersectManyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4)
		sets := make([][]uint32, k)
		for i := range sets {
			sets[i] = randomSorted(rng, 1+rng.Intn(60), 200)
		}
		want := append([]uint32(nil), sets[0]...)
		for _, s := range sets[1:] {
			want = naive(want, s)
		}
		var scratch []uint32
		arg := make([][]uint32, k)
		copy(arg, sets)
		got := IntersectMany(nil, &scratch, arg...)
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBlockSetRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomSorted(rng, rng.Intn(200), 2000)
		bs := NewBlockSet(in)
		if bs.Size() != len(in) {
			return false
		}
		out := bs.Elements(nil)
		if len(out) == 0 && len(in) == 0 {
			return true
		}
		return reflect.DeepEqual(out, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBlockSetIntersection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSorted(rng, rng.Intn(150), 1000)
		b := randomSorted(rng, rng.Intn(150), 1000)
		want := naive(a, b)
		ba, bb := NewBlockSet(a), NewBlockSet(b)
		got := IntersectBlocks(nil, ba, bb)
		if !(len(got) == 0 && len(want) == 0) && !reflect.DeepEqual(got, want) {
			return false
		}
		if IntersectBlocksCount(ba, bb) != len(want) {
			return false
		}
		got2 := IntersectBlockWithSorted(nil, ba, b)
		return (len(got2) == 0 && len(want) == 0) || reflect.DeepEqual(got2, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBlockSetDenseBlocks(t *testing.T) {
	// 128 consecutive values occupy exactly 2 blocks.
	in := make([]uint32, 128)
	for i := range in {
		in[i] = uint32(i)
	}
	bs := NewBlockSet(in)
	if bs.NumBlocks() != 2 {
		t.Errorf("NumBlocks = %d, want 2", bs.NumBlocks())
	}
}

func TestScratchIntersectMany(t *testing.T) {
	a := []uint32{1, 2, 3, 4, 5, 6}
	b := []uint32{2, 4, 6, 8}
	c := []uint32{4, 5, 6, 7}
	var s Scratch
	if got, want := s.IntersectMany(nil, a, b, c), []uint32{4, 6}; !reflect.DeepEqual(got, want) {
		t.Errorf("Scratch.IntersectMany = %v, want %v", got, want)
	}
	// Two sets go straight into dst.
	if got, want := s.IntersectMany(nil, a, b), []uint32{2, 4, 6}; !reflect.DeepEqual(got, want) {
		t.Errorf("two sets = %v, want %v", got, want)
	}
	if got := s.IntersectMany(nil); len(got) != 0 {
		t.Errorf("no sets = %v", got)
	}
	if got := s.IntersectMany(nil, a); !reflect.DeepEqual(got, a) {
		t.Errorf("one set = %v", got)
	}
}

func TestScratchIntersectManyProperty(t *testing.T) {
	var s Scratch // deliberately shared across trials: buffers must not leak state
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4)
		sets := make([][]uint32, k)
		for i := range sets {
			sets[i] = randomSorted(rng, 1+rng.Intn(60), 200)
		}
		want := append([]uint32(nil), sets[0]...)
		for _, set := range sets[1:] {
			want = naive(want, set)
		}
		arg := make([][]uint32, k)
		copy(arg, sets)
		got := s.IntersectMany(nil, arg...)
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestScratchSteadyStateAllocFree: after warmup, k-way intersection with
// a retained Scratch and pre-grown dst performs no allocations.
func TestScratchSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sets := make([][]uint32, 4)
	for i := range sets {
		sets[i] = randomSorted(rng, 200, 1000)
	}
	var s Scratch
	dst := make([]uint32, 0, 1024)
	dst = s.IntersectMany(dst[:0], sets...) // warm
	if allocs := testing.AllocsPerRun(50, func() {
		dst = s.IntersectMany(dst[:0], sets...)
	}); allocs > 0 {
		t.Errorf("%.1f allocs per warmed IntersectMany, want 0", allocs)
	}
}
