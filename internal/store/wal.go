package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"subgraphmatching/internal/graph"
)

// The WAL is an append-only log of registry operations. Each record is
// CRC-framed:
//
//	length uint32   payload bytes
//	crc    uint32   CRC32C of the payload
//	payload:
//	  op     byte    (1 register, 2 unregister)
//	  gen    uint64  registry generation of the operation
//	  fp     [32]byte snapshot fingerprint (zero for unregister)
//	  name   uint16-framed UTF-8 registry name
//	  snap   uint16-framed snapshot filename, relative to snapshots/
//
// Replay stops at the first frame that does not check out — a torn
// tail from a crash mid-append — and truncates the file there, so the
// log converges to the durable prefix. Records are idempotent under
// re-application (generation-compared), which makes the
// manifest-then-truncate compaction crash-safe at every interleaving.

const (
	walOpRegister   = 1
	walOpUnregister = 2

	walFrameSize = 8
	// maxWALRecord bounds a frame's declared length so a corrupt length
	// field cannot drive a huge allocation; real records are tiny
	// (name + filename + fixed fields).
	maxWALRecord = 64 * 1024
)

// walRecord is one registry operation.
type walRecord struct {
	op   byte
	gen  uint64
	fp   graph.Fingerprint
	name string
	snap string
}

func (r walRecord) encode() []byte {
	payload := make([]byte, 0, 1+8+32+2+len(r.name)+2+len(r.snap))
	payload = append(payload, r.op)
	payload = binary.LittleEndian.AppendUint64(payload, r.gen)
	payload = append(payload, r.fp[:]...)
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(r.name)))
	payload = append(payload, r.name...)
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(r.snap)))
	payload = append(payload, r.snap...)

	out := make([]byte, walFrameSize+len(payload))
	binary.LittleEndian.PutUint32(out[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:], crc32.Checksum(payload, castagnoli))
	copy(out[walFrameSize:], payload)
	return out
}

func decodeWALPayload(p []byte) (walRecord, error) {
	var r walRecord
	if len(p) < 1+8+32+2 {
		return r, corruptf("wal payload too short: %d bytes", len(p))
	}
	r.op = p[0]
	if r.op != walOpRegister && r.op != walOpUnregister {
		return r, corruptf("wal: unknown op %d", r.op)
	}
	r.gen = binary.LittleEndian.Uint64(p[1:])
	copy(r.fp[:], p[9:41])
	rest := p[41:]
	var err error
	if r.name, rest, err = readString16(rest); err != nil {
		return r, err
	}
	if r.snap, rest, err = readString16(rest); err != nil {
		return r, err
	}
	if len(rest) != 0 {
		return r, corruptf("wal: %d trailing payload bytes", len(rest))
	}
	return r, nil
}

func readString16(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, corruptf("wal: truncated string frame")
	}
	n := int(binary.LittleEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, corruptf("wal: string frame overruns payload")
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

// walWriter appends records to an open log file, fsyncing each append —
// registrations are operator-rate, so per-record durability is cheap.
type walWriter struct {
	f       *os.File
	size    int64
	records int
	// failAfter, when non-negative, makes the next append write at most
	// that many bytes and then fail — the crash harness's torn-record
	// injection. In-package tests only.
	failAfter int
}

func openWAL(path string) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat wal: %w", err)
	}
	return &walWriter{f: f, size: st.Size(), failAfter: -1}, nil
}

func (w *walWriter) append(r walRecord) error {
	frame := r.encode()
	if w.failAfter >= 0 {
		n := w.failAfter
		if n > len(frame) {
			n = len(frame)
		}
		w.f.Write(frame[:n])
		w.f.Sync()
		w.size += int64(n)
		return fmt.Errorf("store: wal: injected write failure after %d bytes", n)
	}
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: wal sync: %w", err)
	}
	w.size += int64(len(frame))
	w.records++
	return nil
}

// reset truncates the log after a compaction has captured its state in
// the manifest.
func (w *walWriter) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("store: wal truncate: %w", err)
	}
	// O_APPEND writes always land at EOF, so no seek is needed.
	w.size = 0
	w.records = 0
	return nil
}

func (w *walWriter) close() error { return w.f.Close() }

// scanWAL reads every intact record from path in log order without
// modifying the file, stopping at the first torn or corrupt frame. A
// missing file is an empty log.
func scanWAL(path string, apply func(walRecord)) (records int, torn bool, err error) {
	records, _, torn, err = scanWALOffset(path, apply)
	return records, torn, err
}

func scanWALOffset(path string, apply func(walRecord)) (records int, intactEnd int64, torn bool, err error) {
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return 0, 0, false, nil
		}
		return 0, 0, false, fmt.Errorf("store: read wal: %w", rerr)
	}
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < walFrameSize {
			torn = true
			break
		}
		length := int(binary.LittleEndian.Uint32(rest[0:]))
		crc := binary.LittleEndian.Uint32(rest[4:])
		if length > maxWALRecord || len(rest) < walFrameSize+length {
			torn = true
			break
		}
		payload := rest[walFrameSize : walFrameSize+length]
		if crc32.Checksum(payload, castagnoli) != crc {
			torn = true
			break
		}
		rec, derr := decodeWALPayload(payload)
		if derr != nil {
			torn = true
			break
		}
		apply(rec)
		records++
		off += walFrameSize + length
	}
	return records, int64(off), torn, nil
}

// replayWAL is scanWAL plus recovery's side effect: the torn tail is
// truncated so subsequent appends extend a clean log.
func replayWAL(path string, apply func(walRecord)) (records int, truncatedAt int64, torn bool, err error) {
	records, off, torn, err := scanWALOffset(path, apply)
	if err != nil {
		return records, off, torn, err
	}
	if torn {
		if terr := os.Truncate(path, off); terr != nil {
			return records, off, true, fmt.Errorf("store: truncate torn wal tail: %w", terr)
		}
	}
	return records, off, torn, nil
}

// walSizeOf reports the log's current size without opening it for
// append (fsck uses it).
func walSizeOf(path string) int64 {
	st, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return st.Size()
}
