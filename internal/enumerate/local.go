package enumerate

import (
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/intersect"
)

// computeLC computes the local candidate set LC(u, M) for the query
// vertex u at the given search depth, dispatching on the configured
// method. The result lives in a per-depth buffer and is valid until the
// next computeLC call at the same depth.
func (e *engine) computeLC(depth int, u graph.Vertex) []uint32 {
	switch e.opts.Local {
	case Direct:
		return e.lcDirect(depth, u)
	case Scan:
		return e.lcScan(depth, u)
	case TreeEdge:
		return e.lcTreeEdge(depth, u)
	case IntersectBlock:
		return e.lcIntersectBlock(depth, u)
	default:
		return e.lcIntersect(depth, u)
	}
}

// lcDirect is Algorithm 2 (QuickSI/RI), optionally extended with VF2++'s
// label-count cutoff rules.
func (e *engine) lcDirect(depth int, u graph.Vertex) []uint32 {
	if depth == 0 {
		return e.cand[u]
	}
	p := e.parent[depth]
	out := e.lcBuf[depth][:0]
	for _, v := range e.g.Neighbors(e.embedding[p]) {
		if e.g.Label(v) != e.q.Label(u) {
			continue
		}
		// The degree condition assumes injectivity; homomorphisms may
		// collapse neighbors.
		if !e.opts.Homomorphism && e.g.Degree(v) < e.q.Degree(u) {
			continue
		}
		if !e.backwardEdgesOK(depth, v, p) {
			continue
		}
		if e.opts.VF2PPRules && !e.vf2ppOK(depth, v) {
			continue
		}
		out = append(out, v)
	}
	e.lcBuf[depth] = out
	return out
}

// lcScan is Algorithm 3 (GraphQL): iterate the whole candidate set.
func (e *engine) lcScan(depth int, u graph.Vertex) []uint32 {
	if depth == 0 {
		return e.cand[u]
	}
	out := e.lcBuf[depth][:0]
	for _, v := range e.cand[u] {
		if e.backwardEdgesOK(depth, v, graph.NoVertex) {
			out = append(out, v)
		}
	}
	e.lcBuf[depth] = out
	return out
}

// lcTreeEdge is Algorithm 4 (CFL): candidates adjacent to the parent's
// mapping come from the tree-edge auxiliary structure; other backward
// edges are verified with binary searches.
func (e *engine) lcTreeEdge(depth int, u graph.Vertex) []uint32 {
	if depth == 0 {
		return e.cand[u]
	}
	p := e.parent[depth]
	fromTree := e.space.Adjacency(p, u, e.candIdx[p])
	if len(e.bwd[depth]) == 1 {
		return fromTree
	}
	out := e.lcBuf[depth][:0]
	for _, v := range fromTree {
		if e.backwardEdgesOK(depth, v, p) {
			out = append(out, v)
		}
	}
	e.lcBuf[depth] = out
	return out
}

// lcIntersect is Algorithm 5 (CECI/DP-iso): intersect the auxiliary
// adjacency lists of all backward neighbors.
func (e *engine) lcIntersect(depth int, u graph.Vertex) []uint32 {
	if depth == 0 {
		return e.cand[u]
	}
	bwd := e.bwd[depth]
	if len(bwd) == 1 {
		return e.space.Adjacency(bwd[0], u, e.candIdx[bwd[0]])
	}
	sets := e.setsBuf[:0]
	for _, un := range bwd {
		sets = append(sets, e.space.Adjacency(un, u, e.candIdx[un]))
	}
	e.setsBuf = sets
	e.lcBuf[depth] = e.ix.IntersectMany(e.lcBuf[depth][:0], sets...)
	return e.lcBuf[depth]
}

// lcIntersectBlock is Algorithm 5 over the QFilter-style block layout.
func (e *engine) lcIntersectBlock(depth int, u graph.Vertex) []uint32 {
	if depth == 0 {
		return e.cand[u]
	}
	bwd := e.bwd[depth]
	if len(bwd) == 1 {
		return e.space.Adjacency(bwd[0], u, e.candIdx[bwd[0]])
	}
	first := e.space.AdjacencyBlocks(bwd[0], u, e.candIdx[bwd[0]])
	second := e.space.AdjacencyBlocks(bwd[1], u, e.candIdx[bwd[1]])
	out := intersect.IntersectBlocks(e.lcBuf[depth][:0], first, second)
	for _, un := range bwd[2:] {
		if len(out) == 0 {
			break
		}
		bs := e.space.AdjacencyBlocks(un, u, e.candIdx[un])
		e.scratch = intersect.IntersectBlockWithSorted(e.scratch[:0], bs, out)
		out = append(out[:0], e.scratch...)
	}
	e.lcBuf[depth] = out
	return out
}

// backwardEdgesOK verifies e(v, M[u']) for every backward neighbor u' of
// the vertex at this depth, excluding skip (the neighbor already handled
// by the caller, e.g. the tree parent).
func (e *engine) backwardEdgesOK(depth int, v uint32, skip graph.Vertex) bool {
	for _, un := range e.bwd[depth] {
		if un == skip {
			continue
		}
		if !e.g.HasEdge(e.embedding[un], v) {
			return false
		}
	}
	return true
}

// vf2ppOK applies VF2++'s cutoff: for every label l among the forward
// neighbors of the current query vertex, v must have at least that many
// unmapped neighbors labeled l.
func (e *engine) vf2ppOK(depth int, v uint32) bool {
	req := e.fwdReq[depth]
	if len(req) == 0 {
		return true
	}
	e.counter.Reset()
	for _, w := range e.g.Neighbors(v) {
		if !e.visited[w] {
			e.counter.Add(e.g.Label(w))
		}
	}
	for _, need := range req {
		if e.counter.Count(need.label) < need.count {
			return false
		}
	}
	return true
}
