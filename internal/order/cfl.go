package order

import (
	"subgraphmatching/internal/bitset"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
)

// ComputeCFL implements CFL's path-based ordering (Section 3.2): the BFS
// tree q_t rooted at CFL's root is decomposed into root-to-leaf paths;
// a dynamic program over the candidate sets estimates c(P), the number of
// candidate paths isomorphic to each P. The first path minimizes
// c(P)/(|NT(P)|+1) where NT(P) are the non-tree edges adjacent to P;
// subsequent paths minimize c(P^u)/|C(u)| where u is the path's
// connection vertex to the current order.
func ComputeCFL(q, g *graph.Graph, cand [][]uint32) []graph.Vertex {
	n := q.NumVertices()
	if n == 1 {
		return []graph.Vertex{0}
	}
	root := filter.CFLRoot(q, g)
	t := graph.NewBFSTree(q, root)
	children := t.Children()

	// Enumerate root-to-leaf paths.
	var paths [][]graph.Vertex
	var walk func(prefix []graph.Vertex, u graph.Vertex)
	walk = func(prefix []graph.Vertex, u graph.Vertex) {
		prefix = append(prefix, u)
		if len(children[u]) == 0 {
			paths = append(paths, append([]graph.Vertex(nil), prefix...))
			return
		}
		for _, c := range children[u] {
			walk(prefix, c)
		}
	}
	walk(nil, root)

	est := newPathEstimator(g, cand)
	// suffixCount[i][j] = estimated candidate paths isomorphic to
	// paths[i][j:] (the suffix of path i starting at position j).
	suffixCount := make([][]float64, len(paths))
	for i, p := range paths {
		suffixCount[i] = est.suffixCounts(p)
	}

	// Non-tree edges adjacent to each path.
	nt := make([]int, len(paths))
	for i, p := range paths {
		onPath := map[graph.Vertex]bool{}
		for _, u := range p {
			onPath[u] = true
		}
		q.EachEdge(func(a, b graph.Vertex) bool {
			if !t.IsTreeEdge(a, b) && (onPath[a] || onPath[b]) {
				nt[i]++
			}
			return true
		})
	}

	in := make([]bool, n)
	phi := make([]graph.Vertex, 0, n)
	used := make([]bool, len(paths))

	// First path: min c(P) / (|NT(P)|+1).
	best := 0
	for i := 1; i < len(paths); i++ {
		if suffixCount[i][0]/float64(nt[i]+1) < suffixCount[best][0]/float64(nt[best]+1) {
			best = i
		}
	}
	for _, u := range paths[best] {
		phi = append(phi, u)
		in[u] = true
	}
	used[best] = true

	for len(phi) < n {
		bestI, bestScore := -1, 0.0
		for i, p := range paths {
			if used[i] {
				continue
			}
			// Connection vertex: deepest path vertex already in phi.
			conn := 0
			for j, u := range p {
				if in[u] {
					conn = j
				}
			}
			denom := float64(len(cand[p[conn]]))
			if denom == 0 {
				denom = 1
			}
			score := suffixCount[i][conn] / denom
			if bestI < 0 || score < bestScore {
				bestI, bestScore = i, score
			}
		}
		if bestI < 0 {
			break
		}
		for _, u := range paths[bestI] {
			if !in[u] {
				phi = append(phi, u)
				in[u] = true
			}
		}
		used[bestI] = true
	}
	return phi
}

// pathEstimator runs the bottom-up DP that counts candidate paths
// isomorphic to a query path: W_k(v) = 1 for the last path vertex, and
// W_i(v) = sum over v' in N(v) ∩ C(P[i+1]) of W_{i+1}(v').
type pathEstimator struct {
	g      *graph.Graph
	cand   [][]uint32
	member []*bitset.Set      // candidate membership per query vertex
	weight map[uint32]float64 // scratch: weights at level i+1
	next   map[uint32]float64 // scratch: weights being built at level i
}

func newPathEstimator(g *graph.Graph, cand [][]uint32) *pathEstimator {
	e := &pathEstimator{
		g:      g,
		cand:   cand,
		member: make([]*bitset.Set, len(cand)),
		weight: map[uint32]float64{},
		next:   map[uint32]float64{},
	}
	for u, c := range cand {
		e.member[u] = bitset.New(g.NumVertices())
		for _, v := range c {
			e.member[u].Set(v)
		}
	}
	return e
}

// suffixCounts returns, for each position j on the path, the estimated
// number of candidate paths isomorphic to path[j:].
func (e *pathEstimator) suffixCounts(path []graph.Vertex) []float64 {
	k := len(path)
	out := make([]float64, k)
	clear(e.weight)
	last := path[k-1]
	for _, v := range e.cand[last] {
		e.weight[v] = 1
	}
	out[k-1] = float64(len(e.cand[last]))
	for i := k - 2; i >= 0; i-- {
		clear(e.next)
		memberNext := e.member[path[i+1]]
		total := 0.0
		for _, v := range e.cand[path[i]] {
			w := 0.0
			for _, vn := range e.g.Neighbors(v) {
				if memberNext.Contains(vn) {
					w += e.weight[vn]
				}
			}
			if w > 0 {
				e.next[v] = w
				total += w
			}
		}
		e.weight, e.next = e.next, e.weight
		out[i] = total
	}
	return out
}
