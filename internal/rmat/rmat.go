// Package rmat generates power-law random graphs with the R-MAT
// recursive-matrix model (Chakrabarti et al., SDM 2004), the synthetic
// dataset generator of the paper's Section 4. Vertex labels are drawn
// uniformly from a label set, optionally skewed so that one label
// dominates (reproducing WordNet-like label distributions).
package rmat

import (
	"fmt"
	"math/rand"

	"subgraphmatching/internal/graph"
)

// Config parameterizes a generated graph. The partition probabilities
// default to the paper's a=0.45, b=0.22, c=0.22, d=0.11.
type Config struct {
	NumVertices int
	NumEdges    int
	NumLabels   int
	Seed        int64

	// A, B, C, D are the R-MAT quadrant probabilities; all zero selects
	// the paper's defaults. They must sum to 1 otherwise.
	A, B, C, D float64

	// LabelSkew, when in (0, 1], assigns label 0 with this probability
	// and spreads the remainder uniformly; 0 means uniform labels.
	// WordNet's "more than 80% of vertices share one label" corresponds
	// to LabelSkew = 0.8.
	LabelSkew float64
}

func (c Config) withDefaults() (Config, error) {
	if c.A == 0 && c.B == 0 && c.C == 0 && c.D == 0 {
		c.A, c.B, c.C, c.D = 0.45, 0.22, 0.22, 0.11
	}
	sum := c.A + c.B + c.C + c.D
	if sum < 0.999 || sum > 1.001 {
		return c, fmt.Errorf("rmat: quadrant probabilities sum to %v, want 1", sum)
	}
	if c.NumVertices <= 1 {
		return c, fmt.Errorf("rmat: need at least 2 vertices, got %d", c.NumVertices)
	}
	if c.NumLabels <= 0 {
		return c, fmt.Errorf("rmat: need at least 1 label")
	}
	maxEdges := int64(c.NumVertices) * int64(c.NumVertices-1) / 2
	if int64(c.NumEdges) > maxEdges {
		return c, fmt.Errorf("rmat: %d edges exceed the %d possible on %d vertices", c.NumEdges, maxEdges, c.NumVertices)
	}
	if c.LabelSkew < 0 || c.LabelSkew > 1 {
		return c, fmt.Errorf("rmat: label skew %v outside [0,1]", c.LabelSkew)
	}
	return c, nil
}

// Generate produces a simple undirected labeled graph with exactly
// cfg.NumEdges distinct edges. Generation is deterministic in the seed.
func Generate(cfg Config) (*graph.Graph, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// scale = ceil(log2(n)); endpoints outside [0, n) are resampled.
	scale := 0
	for 1<<scale < cfg.NumVertices {
		scale++
	}

	b := graph.NewBuilder(cfg.NumVertices, cfg.NumEdges)
	for i := 0; i < cfg.NumVertices; i++ {
		b.AddVertex(drawLabel(rng, cfg))
	}

	seen := make(map[uint64]struct{}, cfg.NumEdges)
	attempts := 0
	maxAttempts := 100 * cfg.NumEdges
	for len(seen) < cfg.NumEdges {
		attempts++
		if attempts > maxAttempts {
			return nil, fmt.Errorf("rmat: could not place %d distinct edges after %d attempts (graph too dense for the skew)", cfg.NumEdges, attempts)
		}
		u, v := drawEdge(rng, scale, cfg)
		if u == v || int(u) >= cfg.NumVertices || int(v) >= cfg.NumVertices {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
	}
	return b.Build()
}

func drawLabel(rng *rand.Rand, cfg Config) graph.Label {
	if cfg.LabelSkew > 0 && rng.Float64() < cfg.LabelSkew {
		return 0
	}
	return graph.Label(rng.Intn(cfg.NumLabels))
}

func drawEdge(rng *rand.Rand, scale int, cfg Config) (graph.Vertex, graph.Vertex) {
	var u, v uint32
	for bit := 0; bit < scale; bit++ {
		r := rng.Float64()
		switch {
		case r < cfg.A:
			// top-left: no bits set
		case r < cfg.A+cfg.B:
			v |= 1 << bit
		case r < cfg.A+cfg.B+cfg.C:
			u |= 1 << bit
		default:
			u |= 1 << bit
			v |= 1 << bit
		}
	}
	return u, v
}
