package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanBuildAndRender(t *testing.T) {
	root := StartSpan("match")
	pre := NewSpan("preprocess", time.Now(), 3*time.Millisecond)
	pre.SetAttr("filter", "GQL")
	pre.AddChild(NewSpan("filter", time.Now(), 2*time.Millisecond).SetAttr("candidates", 42))
	pre.AddChild(NewSpan("order", time.Now(), time.Millisecond))
	root.AddChild(pre)
	root.AddChild(nil) // ignored
	root.End()

	if got := len(root.Children); got != 1 {
		t.Fatalf("children = %d, want 1 (nil ignored)", got)
	}
	if root.Child("preprocess") != pre || root.Child("nope") != nil {
		t.Fatal("Child lookup broken")
	}
	if pre.ChildrenDuration() != 3*time.Millisecond {
		t.Fatalf("ChildrenDuration = %v", pre.ChildrenDuration())
	}
	if pre.Attr("filter") != "GQL" || pre.Attr("absent") != nil {
		t.Fatal("Attr lookup broken")
	}
	pre.SetAttr("filter", "CFL") // replace, not append
	if len(pre.Attrs) != 1 || pre.Attr("filter") != "CFL" {
		t.Fatalf("SetAttr replace broken: %+v", pre.Attrs)
	}

	var b strings.Builder
	root.Render(&b)
	out := b.String()
	for _, want := range []string{"match", "  preprocess", "    filter", "candidates=42", "filter=CFL"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	s := NewSpan("enumerate", time.Now(), 1500*time.Nanosecond)
	s.SetAttr("nodes", int64(99))
	s.SetAttr("local", "intersect")
	s.AddChild(NewSpan("worker", time.Now(), 0).SetAttr("tasks", int64(4)))

	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"duration_ns":1500`) ||
		!strings.Contains(string(data), `"nodes":99`) {
		t.Fatalf("unexpected JSON: %s", data)
	}
	var back Span
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "enumerate" || back.Duration != 1500*time.Nanosecond {
		t.Fatalf("round trip lost fields: name=%q duration=%v", back.Name, back.Duration)
	}
	// JSON numbers come back as float64; values must survive as numbers.
	if v, ok := back.Attr("nodes").(float64); !ok || v != 99 {
		t.Fatalf("nodes attr = %#v", back.Attr("nodes"))
	}
	if len(back.Children) != 1 || back.Children[0].Name != "worker" {
		t.Fatalf("children lost: %+v", back.Children)
	}
}

// TestSpanConcurrentStress hammers one span tree from concurrent
// builders and readers — the flight recorder serves /debug/tracez
// renders of spans that batch groups may still be attaching children to.
// Run under -race; the final structural checks catch lost updates.
func TestSpanConcurrentStress(t *testing.T) {
	root := StartSpan("root")
	const writers, perWriter, readers = 8, 100, 4
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				c := NewSpan(fmt.Sprintf("c-%d-%d", i, j), time.Now(), time.Duration(j+1))
				c.SetAttr("j", j)
				root.AddChild(c)
				root.SetAttr(fmt.Sprintf("w%d", i), j)
			}
		}(i)
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var sb strings.Builder
				root.Render(&sb)
				if _, err := json.Marshal(root); err != nil {
					t.Error(err)
				}
				root.ChildrenDuration()
				root.Child("c-0-0")
				root.End()
			}
		}()
	}
	wg.Wait()
	if len(root.Children) != writers*perWriter {
		t.Fatalf("lost children: %d, want %d", len(root.Children), writers*perWriter)
	}
	data, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var back Span
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Children) != writers*perWriter {
		t.Fatalf("round trip lost children: %d", len(back.Children))
	}
	for i := 0; i < writers; i++ {
		if v, ok := back.Attr(fmt.Sprintf("w%d", i)).(float64); !ok || v != perWriter-1 {
			t.Fatalf("attr w%d = %#v, want %d", i, back.Attr(fmt.Sprintf("w%d", i)), perWriter-1)
		}
	}
}
