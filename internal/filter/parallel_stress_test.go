package filter

import (
	"reflect"
	"testing"

	"subgraphmatching/internal/querygen"
	"subgraphmatching/internal/rmat"
)

// TestParallelFilterStress is the race-detector gate for the parallel
// filtering paths (`make race-stress` / `make ci`): many short runs at
// 8 workers on a small skewed graph, so that any shared-state bug — a
// scratch counter or matcher leaking across workers, a membership
// bitmap mutated inside a Jacobi round — trips `go test -race` with
// high probability, and any scheduling-dependent output diverges from
// the reference run.
func TestParallelFilterStress(t *testing.T) {
	g, err := rmat.Generate(rmat.Config{NumVertices: 300, NumEdges: 1500, NumLabels: 3, Seed: 13, LabelSkew: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := querygen.Generate(g, querygen.Config{NumVertices: 5, Count: 2, Density: querygen.Any, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	methods := []Method{NLF, GQL, CFL, CECI, DPIso, Steady}
	refs := make(map[Method][][][]uint32)
	for _, m := range methods {
		for _, q := range qs {
			ref, err := RunParallel(m, q, g, 1)
			if err != nil {
				t.Fatal(err)
			}
			refs[m] = append(refs[m], ref)
		}
	}
	const iterations = 100
	for i := 0; i < iterations; i++ {
		for _, m := range methods {
			for qi, q := range qs {
				got, err := RunParallel(m, q, g, 8)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, refs[m][qi]) {
					t.Fatalf("iteration %d: %v on q%d diverged from reference", i, m, qi)
				}
			}
		}
	}
}
