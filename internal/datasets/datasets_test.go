package datasets

import (
	"testing"
)

func TestCatalogComplete(t *testing.T) {
	names := map[string]bool{}
	for _, i := range Catalog() {
		names[i.Name] = true
	}
	for _, want := range []string{"ye", "hu", "hp", "wn", "up", "yt", "db", "eu"} {
		if !names[want] {
			t.Errorf("catalog missing %s", want)
		}
	}
}

func TestLookup(t *testing.T) {
	i, err := Lookup("hu")
	if err != nil {
		t.Fatal(err)
	}
	if i.FullName != "Human" || !i.Dense || i.MaxQuerySize != 20 {
		t.Errorf("hu info = %+v", i)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("expected error for unknown dataset")
	}
}

func TestGenerateSmallDatasets(t *testing.T) {
	// The three full-size small stand-ins must match Table 3 exactly.
	for _, name := range []string{"ye", "hp"} {
		info, _ := Lookup(name)
		g, err := Generate(name)
		if err != nil {
			t.Fatalf("Generate(%s): %v", name, err)
		}
		if g.NumVertices() != info.PaperVertices {
			t.Errorf("%s: %d vertices, want %d", name, g.NumVertices(), info.PaperVertices)
		}
		if g.NumEdges() != info.PaperEdges {
			t.Errorf("%s: %d edges, want %d", name, g.NumEdges(), info.PaperEdges)
		}
		if g.NumLabels() > info.PaperLabels {
			t.Errorf("%s: %d labels > %d", name, g.NumLabels(), info.PaperLabels)
		}
	}
}

func TestScaledDatasetsPreserveDegree(t *testing.T) {
	for _, name := range []string{"up", "yt", "db", "eu"} {
		info, _ := Lookup(name)
		got := info.AvgDegree()
		if got < info.PaperDegree*0.9 || got > info.PaperDegree*1.1 {
			t.Errorf("%s: stand-in degree %.1f, paper %.1f", name, got, info.PaperDegree)
		}
	}
}

func TestWordNetSkew(t *testing.T) {
	g, err := Generate("wn")
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(g.LabelFrequency(0)) / float64(g.NumVertices())
	if frac < 0.75 {
		t.Errorf("wn label-0 fraction %.2f, want > 0.75 (paper: most vertices share a label)", frac)
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("bogus"); err == nil {
		t.Error("expected error")
	}
}
