package service

import (
	"fmt"
	"testing"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/enumerate"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
)

func testKey(graphName string, gen uint64, id uint64) planKey {
	return planKey{graph: graphName, gen: gen, cfgHash: id}
}

func TestPlanCacheDisabled(t *testing.T) {
	if c := newPlanCache(0, 0); c != nil {
		t.Fatal("capacity 0 must disable the cache")
	}
	if c := newPlanCache(-1, 0); c != nil {
		t.Fatal("negative capacity must disable the cache")
	}
}

func TestPlanCacheHitMissEvictionAccounting(t *testing.T) {
	c := newPlanCache(2, 0)
	k1, k2, k3 := testKey("g", 1, 1), testKey("g", 1, 2), testKey("g", 1, 3)
	p1, p2, p3 := &core.Plan{}, &core.Plan{}, &core.Plan{}

	if _, ok := c.get(k1); ok {
		t.Fatal("hit on empty cache")
	}
	c.add(k1, p1)
	c.add(k2, p2)
	if got, ok := c.get(k1); !ok || got != p1 {
		t.Fatal("k1 must hit with the inserted plan pointer")
	}
	// k1 is now MRU; inserting k3 must evict k2.
	c.add(k3, p3)
	if _, ok := c.get(k2); ok {
		t.Fatal("k2 must have been evicted (LRU)")
	}
	if got, ok := c.get(k1); !ok || got != p1 {
		t.Fatal("k1 must survive the eviction")
	}
	st := c.stats()
	// gets: miss(k1), hit(k1), miss(k2), hit(k1) → 2 hits, 2 misses.
	if st.Hits != 2 || st.Misses != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want hits 2 misses 2 evictions 1", st)
	}
	if st.Size != 2 || st.Capacity != 2 {
		t.Fatalf("stats = %+v, want size 2 cap 2", st)
	}
}

func TestPlanCacheDogpileFirstInsertWins(t *testing.T) {
	c := newPlanCache(4, 0)
	k := testKey("g", 1, 1)
	first, second := &core.Plan{}, &core.Plan{}
	if got := c.add(k, first); got != first {
		t.Fatal("first add must return its own plan")
	}
	if got := c.add(k, second); got != first {
		t.Fatal("second add of the same key must converge on the first plan")
	}
}

func TestPlanCachePurgeGraph(t *testing.T) {
	c := newPlanCache(8, 0)
	c.add(testKey("a", 1, 1), &core.Plan{})
	c.add(testKey("a", 2, 2), &core.Plan{})
	c.add(testKey("b", 1, 3), &core.Plan{})
	c.purgeGraph("a", 3)
	st := c.stats()
	if st.Size != 1 {
		t.Fatalf("size after purge = %d, want 1", st.Size)
	}
	if _, ok := c.get(testKey("b", 1, 3)); !ok {
		t.Fatal("purge must not touch other graphs' entries")
	}
}

// TestPlanCachePurgeBlocksStaleInserts pins the hot-swap race fix: a
// request that resolved the old graph generation before the purge must
// not be able to insert its plan afterwards. The fence is the live
// registry generation (planCache.liveGen), consulted under the cache
// mutex — here faked by a map standing in for the registry.
func TestPlanCachePurgeBlocksStaleInserts(t *testing.T) {
	c := newPlanCache(8, 0)
	live := map[string]uint64{"a": 3, "b": 1}
	c.liveGen = func(name string) (uint64, bool) {
		gen, ok := live[name]
		return gen, ok
	}
	p := &core.Plan{}
	if got := c.add(testKey("a", 2, 1), p); got != p {
		t.Fatal("a dropped add must still hand back the caller's plan")
	}
	if st := c.stats(); st.Size != 0 {
		t.Fatalf("stale-generation insert must be dropped, size = %d", st.Size)
	}
	// The current generation and other graphs are unaffected.
	c.add(testKey("a", 3, 1), &core.Plan{})
	c.add(testKey("b", 1, 2), &core.Plan{})
	if st := c.stats(); st.Size != 2 {
		t.Fatalf("size = %d, want 2", st.Size)
	}
	// After an unregister the name has no live generation: every insert
	// for it is stale by definition.
	delete(live, "b")
	c.purgeGraph("b", 2)
	if got := c.add(testKey("b", 1, 9), p); got != p {
		t.Fatal("dropped add must hand back the caller's plan")
	}
	st := c.stats()
	if st.Size != 1 {
		t.Fatalf("unregistered-graph insert must be dropped, size = %d", st.Size)
	}
	if st.Purged != 1 {
		t.Fatalf("purged = %d, want 1", st.Purged)
	}
}

// TestPlanCachePurgeAccounting pins the size/evicted/purged
// reconciliation: every successful insert is eventually accounted for
// exactly once — resident, LRU-evicted, or purge-removed.
func TestPlanCachePurgeAccounting(t *testing.T) {
	c := newPlanCache(3, 0)
	inserts := 0
	add := func(name string, gen, id uint64) {
		c.add(testKey(name, gen, id), &core.Plan{})
		inserts++
	}
	add("a", 1, 1)
	add("a", 1, 2)
	add("b", 1, 3)
	add("b", 1, 4)       // evicts a/1/1
	add("a", 2, 5)       // evicts a/1/2
	c.purgeGraph("a", 3) // removes a/2/5
	st := c.stats()
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	if st.Purged != 1 {
		t.Fatalf("purged = %d, want 1", st.Purged)
	}
	if got := uint64(st.Size) + st.Evictions + st.Purged; got != uint64(inserts) {
		t.Fatalf("size(%d) + evictions(%d) + purged(%d) = %d, want %d inserts",
			st.Size, st.Evictions, st.Purged, got, inserts)
	}
}

// TestPlanCacheChurnStaysBounded pins the leak fix: under
// register/unregister churn with ephemeral graph names the cache must
// not accumulate per-name state. The old design kept a generation
// floor per name forever; the stateless liveGen fence keeps only the
// LRU entries themselves.
func TestPlanCacheChurnStaysBounded(t *testing.T) {
	c := newPlanCache(4, 0)
	live := map[string]uint64{}
	c.liveGen = func(name string) (uint64, bool) {
		gen, ok := live[name]
		return gen, ok
	}
	var gen uint64
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("ephemeral-%d", i)
		gen++
		live[name] = gen // register
		c.add(testKey(name, gen, 1), &core.Plan{})
		c.add(testKey(name, gen, 2), &core.Plan{})
		removed := live[name]
		delete(live, name) // unregister
		c.purgeGraph(name, removed+1)
		// A straggler insert for the dead name must bounce.
		c.add(testKey(name, removed, 3), &core.Plan{})
	}
	st := c.stats()
	if st.Size != 0 {
		t.Fatalf("size after churn = %d, want 0 (every name was purged)", st.Size)
	}
	if got := uint64(st.Size) + st.Evictions + st.Purged; got != 2000 {
		t.Fatalf("size+evictions+purged = %d, want 2000 successful inserts", got)
	}
	// The only state the cache may keep is the LRU itself — no per-name
	// residue survives the churn.
	c.mu.Lock()
	entries, llLen := len(c.entries), c.ll.Len()
	c.mu.Unlock()
	if entries != 0 || llLen != 0 {
		t.Fatalf("internal maps not bounded: entries=%d list=%d", entries, llLen)
	}
}

func TestConfigHashDistinguishesPlanShapingKnobs(t *testing.T) {
	base := core.Config{Filter: filter.GQL, Local: enumerate.Intersect}
	seen := map[uint64]string{}
	record := func(name string, cfg core.Config, workers int) {
		h := configHash(cfg, workers)
		if prev, ok := seen[h]; ok {
			t.Fatalf("configHash collision: %s == %s", name, prev)
		}
		seen[h] = name
	}
	record("base", base, 1)
	// GQL under parallel preprocessing refines in Jacobi rounds → its
	// candidate sets (and thus plans) differ from the sequential build.
	record("base-jacobi", base, 4)
	cfg := base
	cfg.Filter = filter.CFL
	record("filter", cfg, 1)
	cfg = base
	cfg.TreeSpace = true
	record("treespace", cfg, 1)
	cfg = base
	cfg.FailingSets = true
	record("failingsets", cfg, 1)
	cfg = base
	cfg.GQLRounds = 7
	record("rounds", cfg, 1)
	cfg = base
	cfg.FixedOrder = []graph.Vertex{0, 1, 2}
	record("fixedorder", cfg, 1)

	// Non-GQL filters build identical candidate sets at any worker
	// count, so the worker count must NOT split their keys.
	cfl := core.Config{Filter: filter.CFL, Local: enumerate.Intersect}
	if configHash(cfl, 1) != configHash(cfl, 8) {
		t.Fatal("non-GQL configs must share keys across preprocessing worker counts")
	}
}
