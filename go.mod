module subgraphmatching

go 1.22
