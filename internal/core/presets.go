package core

import (
	"fmt"

	"subgraphmatching/internal/enumerate"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/order"
)

// Algorithm names a preset configuration reproducing one of the eight
// algorithms studied by the paper, or the paper's recommended hybrid.
type Algorithm uint8

const (
	// QuickSI: direct enumeration with LDF candidates, infrequent-edge
	// ordering and Algorithm 2 local candidates.
	QuickSI Algorithm = iota
	// GraphQL: profile filtering with global refinement, left-deep
	// ordering, Algorithm 3 candidate scans.
	GraphQL
	// CFL: two-phase filtering, path-based ordering, the tree-edge
	// compressed path index with Algorithm 4.
	CFL
	// CECI: BFS construction/refinement, BFS ordering, full-edge index
	// with Algorithm 5 set intersections.
	CECI
	// DPIso: alternating refinement, adaptive ordering with path-count
	// weights, Algorithm 5, failing sets (the original's default).
	DPIso
	// RI: direct enumeration with RI's structural ordering.
	RI
	// VF2PP: direct enumeration with VF2++'s level ordering and extra
	// cutoff rules.
	VF2PP
	// Optimized is the paper's Section 6 recommendation: GraphQL
	// filtering, GraphQL/RI ordering by data-graph density, full-edge
	// index with set intersections, failing sets on large queries.
	Optimized
	// Glasgow is the constraint-programming solver.
	Glasgow
	// VF2Classic is the original VF2 state-space algorithm — the
	// baseline VF2++ is measured against.
	VF2Classic
	// Ullmann is Ullmann's 1976 algorithm with per-node refinement, the
	// historical baseline of Table 1.
	Ullmann
)

var algorithmNames = map[Algorithm]string{
	QuickSI: "QSI", GraphQL: "GQL", CFL: "CFL", CECI: "CECI",
	DPIso: "DPiso", RI: "RI", VF2PP: "VF2PP", Optimized: "Optimized",
	Glasgow: "GLW", VF2Classic: "VF2", Ullmann: "Ullmann",
}

func (a Algorithm) String() string {
	if s, ok := algorithmNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Algorithm(%d)", a)
}

// ParseAlgorithm maps a name (as printed by String) back to an
// Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	for a, name := range algorithmNames {
		if name == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("core: unknown algorithm %q", s)
}

// Algorithms lists all presets in declaration order.
func Algorithms() []Algorithm {
	return []Algorithm{QuickSI, GraphQL, CFL, CECI, DPIso, RI, VF2PP, Optimized, Glasgow, VF2Classic, Ullmann}
}

// DenseGraphDegreeThreshold is the average data-graph degree above which
// the Optimized preset switches from RI's ordering to GraphQL's, per the
// paper's recommendation ("adopt the ordering methods of GraphQL and RI
// on dense and sparse data graphs respectively"). hu (36.9) and eu (37.4)
// are the paper's dense datasets; everything else is below 10.
const DenseGraphDegreeThreshold = 10.0

// LargeQueryThreshold is the query size at or above which the Optimized
// preset enables failing sets ("enable the failing sets pruning on large
// queries, but disable it on small ones"). Figure 15 shows the benefit
// appearing for |V(q)| >= 16.
const LargeQueryThreshold = 12

// PresetConfig returns the Config reproducing algorithm a for the given
// query and data graph. Most presets ignore q and g; Optimized consults
// the data graph's density and the query size.
func PresetConfig(a Algorithm, q, g *graph.Graph) Config {
	switch a {
	case QuickSI:
		return Config{Filter: filter.LDF, Order: order.QSI, Local: enumerate.Direct}
	case RI:
		return Config{Filter: filter.LDF, Order: order.RI, Local: enumerate.Direct}
	case VF2PP:
		return Config{Filter: filter.LDF, Order: order.VF2PP, Local: enumerate.Direct, VF2PPRules: true}
	case GraphQL:
		return Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Scan}
	case CFL:
		return Config{Filter: filter.CFL, Order: order.CFL, Local: enumerate.TreeEdge, TreeSpace: true}
	case CECI:
		return Config{Filter: filter.CECI, Order: order.CECI, Local: enumerate.Intersect}
	case DPIso:
		return Config{
			Filter: filter.DPIso, Order: order.DPIso, Local: enumerate.Intersect,
			Adaptive: true, DPWeights: true, FailingSets: true,
		}
	case Optimized:
		cfg := Config{Filter: filter.GQL, Local: enumerate.Intersect}
		if g != nil && g.AverageDegree() >= DenseGraphDegreeThreshold {
			cfg.Order = order.GQL
		} else {
			cfg.Order = order.RI
		}
		if q != nil && q.NumVertices() >= LargeQueryThreshold {
			cfg.FailingSets = true
		}
		return cfg
	case Glasgow:
		return Config{UseGlasgow: true}
	case VF2Classic:
		return Config{UseVF2: true}
	case Ullmann:
		return Config{UseUllmann: true}
	default:
		return Config{}
	}
}

// OrderingStudyConfig is the setup of the paper's Section 5.3 ordering
// comparison: every ordering method runs on GraphQL's candidate sets with
// the full-edge auxiliary structure and Algorithm 5 local candidates, so
// only the order differs. DP-iso's entry keeps its adaptive selection.
func OrderingStudyConfig(om order.Method, failingSets bool) Config {
	cfg := Config{
		Filter:      filter.GQL,
		Order:       om,
		Local:       enumerate.Intersect,
		FailingSets: failingSets,
	}
	if om == order.DPIso {
		cfg.Adaptive = true
		cfg.DPWeights = true
	}
	return cfg
}
