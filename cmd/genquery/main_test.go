package main

import (
	"os"
	"path/filepath"
	"testing"

	sm "subgraphmatching"
)

func setup(t *testing.T) (dataPath, outDir string) {
	t.Helper()
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	t.Cleanup(func() { os.Stdout = old })

	dir := t.TempDir()
	dataPath = filepath.Join(dir, "data.graph")
	g, err := sm.GenerateRMAT(sm.RMATConfig{NumVertices: 1000, NumEdges: 8000, NumLabels: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.SaveGraph(dataPath, g); err != nil {
		t.Fatal(err)
	}
	return dataPath, filepath.Join(dir, "queries")
}

func TestRunDense(t *testing.T) {
	dataPath, outDir := setup(t)
	if err := run(dataPath, outDir, 6, 4, "dense", 1); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(outDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("wrote %d files, want 4", len(entries))
	}
	q, err := sm.LoadGraph(filepath.Join(outDir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if q.NumVertices() != 6 || q.AverageDegree() < 3 {
		t.Errorf("query %v not a 6-vertex dense graph", q)
	}
}

func TestRunSparseAndAny(t *testing.T) {
	dataPath, outDir := setup(t)
	if err := run(dataPath, outDir, 5, 2, "sparse", 3); err != nil {
		t.Fatal(err)
	}
	if err := run(dataPath, outDir, 5, 2, "any", 4); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	dataPath, outDir := setup(t)
	if err := run("", outDir, 5, 1, "any", 1); err == nil {
		t.Error("expected error for missing data path")
	}
	if err := run(dataPath, "", 5, 1, "any", 1); err == nil {
		t.Error("expected error for missing out dir")
	}
	if err := run(dataPath, outDir, 5, 1, "weird", 1); err == nil {
		t.Error("expected error for unknown density")
	}
	if err := run(dataPath+".missing", outDir, 5, 1, "any", 1); err == nil {
		t.Error("expected error for missing data file")
	}
}
