package subgraphmatching_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	sm "subgraphmatching"
	"subgraphmatching/internal/testutil"
)

// contextWorkload returns a query/data pair whose full enumeration takes
// long enough that mid-flight cancellation is observable.
func contextWorkload(t *testing.T) (*sm.Graph, *sm.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	g := testutil.RandomGraph(rng, 500, 12_000, 1)
	q, err := sm.FromEdges(make([]sm.Label, 6),
		[][2]sm.Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	if err != nil {
		t.Fatal(err)
	}
	return q, g
}

func TestMatchContextPreCancelled(t *testing.T) {
	q, g := contextWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sm.MatchContext(ctx, q, g, sm.Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestMatchContextCancelMidSearch(t *testing.T) {
	q, g := contextWorkload(t)
	for _, parallel := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		errc := make(chan error, 1)
		go func() {
			_, err := sm.MatchContext(ctx, q, g, sm.Options{Parallel: parallel})
			errc <- err
		}()
		time.Sleep(10 * time.Millisecond)
		cancel()
		select {
		case err := <-errc:
			// A fast machine may finish the whole search before cancel
			// lands; then err is nil and there is nothing to assert.
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("parallel=%d: err = %v, want context.Canceled or nil", parallel, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("parallel=%d: cancellation did not stop the search", parallel)
		}
	}
}

func TestMatchContextDeadline(t *testing.T) {
	q, g := contextWorkload(t)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := sm.MatchContext(ctx, q, g, sm.Options{})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline enforced only after %v", elapsed)
	}
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded or nil (search finished first)", err)
	}
}

// A context with room to spare must not perturb the result.
func TestMatchContextEquivalence(t *testing.T) {
	q, g := contextWorkload(t)
	want, err := sm.Match(q, g, sm.Options{MaxEmbeddings: 5000})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	got, err := sm.MatchContext(ctx, q, g, sm.Options{MaxEmbeddings: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if got.Embeddings != want.Embeddings {
		t.Errorf("MatchContext found %d embeddings, Match found %d", got.Embeddings, want.Embeddings)
	}
}

// The external engines poll the same cancel flag.
func TestMatchContextCancelExternalEngines(t *testing.T) {
	q, g := contextWorkload(t)
	for _, algo := range []sm.Algorithm{sm.AlgoVF2, sm.AlgoUllmann, sm.AlgoGlasgow} {
		ctx, cancel := context.WithCancel(context.Background())
		errc := make(chan error, 1)
		go func() {
			_, err := sm.MatchContext(ctx, q, g, sm.Options{Algorithm: algo})
			errc <- err
		}()
		time.Sleep(10 * time.Millisecond)
		cancel()
		select {
		case err := <-errc:
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("%v: err = %v, want context.Canceled or nil", algo, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%v: cancellation did not stop the engine", algo)
		}
	}
}
