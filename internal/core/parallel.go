package core

import (
	"sync"
	"sync/atomic"
	"time"

	"subgraphmatching/internal/candspace"
	"subgraphmatching/internal/enumerate"
	"subgraphmatching/internal/graph"
)

// Parallel enumeration: the search space is partitioned by the start
// vertex's candidates — worker w explores the candidates at indices
// w, w+P, w+2P, ... — and each worker runs an independent engine over
// the shared (read-only) candidate sets and auxiliary structure. This is
// the embarrassingly-parallel scheme the paper mentions for CECI's
// multi-threaded execution.
//
// The embedding cap is enforced with a shared atomic counter: an
// embedding is accepted only if its post-increment sequence number is
// within the cap, so the reported count is exact even though workers
// race to the cap.

// matchParallel runs the enumeration step across `workers` goroutines.
// cand, space, phi and weights are read-only from here on.
func matchParallel(q, g *graph.Graph, cand [][]uint32, space *candspace.Space,
	phi []graph.Vertex, weights [][]float64, cfg Config, limits Limits,
	workers int, res *Result) error {

	root := phi[0]
	rootCands := cand[root]
	if workers > len(rootCands) {
		workers = len(rootCands)
	}
	if workers < 1 {
		workers = 1
	}

	var (
		accepted  atomic.Uint64
		nodes     atomic.Uint64
		timedOut  atomic.Bool
		limitHit  atomic.Bool
		stop      atomic.Bool
		matchLock sync.Mutex
		wg        sync.WaitGroup
		firstErr  atomic.Value
	)

	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Strided partition of the root's candidates.
			part := make([]uint32, 0, len(rootCands)/workers+1)
			for i := w; i < len(rootCands); i += workers {
				part = append(part, rootCands[i])
			}
			workerCand := make([][]uint32, len(cand))
			copy(workerCand, cand)
			workerCand[root] = part

			opts := enumerate.Options{
				Local:           cfg.Local,
				FailingSets:     cfg.FailingSets,
				Adaptive:        cfg.Adaptive,
				AdaptiveWeights: weights,
				VF2PPRules:      cfg.VF2PPRules,
				TimeLimit:       limits.TimeLimit,
				Cancel:          &stop,
				OnMatch: func(m []uint32) bool {
					if stop.Load() {
						return false
					}
					n := accepted.Add(1)
					if limits.MaxEmbeddings > 0 && n > limits.MaxEmbeddings {
						accepted.Add(^uint64(0)) // undo: over the cap
						limitHit.Store(true)
						stop.Store(true)
						return false
					}
					if limits.OnMatch != nil {
						matchLock.Lock()
						cont := limits.OnMatch(m)
						matchLock.Unlock()
						if !cont {
							stop.Store(true)
							return false
						}
					}
					if limits.MaxEmbeddings > 0 && n == limits.MaxEmbeddings {
						limitHit.Store(true)
						stop.Store(true)
						return false
					}
					return true
				},
			}
			stats, err := enumerate.Run(q, g, workerCand, space, phi, opts)
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			nodes.Add(stats.Nodes)
			if stats.TimedOut {
				timedOut.Store(true)
			}
		}(w)
	}
	wg.Wait()

	if err, ok := firstErr.Load().(error); ok && err != nil {
		return err
	}
	res.Embeddings = accepted.Load()
	if limits.MaxEmbeddings > 0 && res.Embeddings > limits.MaxEmbeddings {
		res.Embeddings = limits.MaxEmbeddings
	}
	res.Nodes = nodes.Load()
	res.TimedOut = timedOut.Load()
	res.LimitHit = limitHit.Load()
	res.EnumTime = time.Since(start)
	return nil
}
