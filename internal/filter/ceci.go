package filter

import (
	"time"

	"subgraphmatching/internal/bitset"
	"subgraphmatching/internal/graph"
)

// RunCECI implements CECI's filtering (paper Section 3.1.1, Example 3.3):
//
//  1. Construction and filtering along the BFS traversal order δ: C(u) is
//     generated from C(u.p) with Generation Rule 3.1; whenever C(u) is
//     constructed or pruned against a backward set C(u.p) or C(u_n), the
//     backward set is pruned symmetrically (candidates with no neighbor
//     in C(u) are ruled out).
//  2. Refinement along the reverse of δ, pruning C(u) against its tree
//     children only — the source of CECI's weaker pruning power in
//     Figure 8.
func RunCECI(q, g *graph.Graph) [][]uint32 {
	root := CECIRoot(q, g)
	return runCECIFrom(q, g, root, nil)
}

// runCECIFrom optionally records the two phases as trace stages:
// "construct" (along δ with symmetric pruning) and "refine" (reverse-δ
// against tree children).
func runCECIFrom(q, g *graph.Graph, root graph.Vertex, tr *StageTrace) [][]uint32 {
	stageStart := time.Now()
	t := graph.NewBFSTree(q, root)
	s := newState(q, g)
	seen := bitset.New(g.NumVertices())
	pos := make([]int, q.NumVertices())
	for i, u := range t.Order {
		pos[u] = i
	}

	// Phase 1: construction along δ with symmetric backward pruning.
	for i, u := range t.Order {
		if i == 0 {
			s.setCandidates(u, s.nlfCandidates(u))
			continue
		}
		p := t.Parent[u]
		s.generateFromParent(u, p, seen)
		s.prune(p, u) // rule out parents' candidates with no child candidate
		for _, un := range q.Neighbors(u) {
			if pos[un] < i && un != p { // backward non-tree edge
				s.prune(u, un)
				s.prune(un, u)
			}
		}
	}

	stageStart = tr.add("construct", stageStart, s.cand)

	// Phase 2: reverse-δ refinement against tree children.
	children := t.Children()
	for i := len(t.Order) - 1; i >= 0; i-- {
		u := t.Order[i]
		for _, c := range children[u] {
			s.prune(u, c)
		}
	}
	tr.add("refine", stageStart, s.cand)
	return s.result()
}
