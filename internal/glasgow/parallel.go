package glasgow

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"subgraphmatching/internal/bitset"
	"subgraphmatching/internal/graph"
)

type atomicBool = atomic.Bool

// solveParallel implements pGlasgow's search splitting: the first
// branching variable (MRV on the initial domains) has its domain
// partitioned round-robin across workers, each of which runs an
// independent sequential solver over the shared adjacency bitsets with
// its own domain trail. A shared counter enforces the embedding cap
// exactly; a shared flag stops siblings once a worker aborts.
func solveParallel(template *solver, workers int) {
	nQ := template.q.NumVertices()

	// Split variable: smallest initial domain.
	splitVar := 0
	best := -1
	for u := 0; u < nQ; u++ {
		if c := template.domains[0][u].Count(); best < 0 || c < best {
			splitVar, best = u, c
		}
	}
	// Values in the sequential solver's order (degree-descending) so the
	// round-robin shares are balanced across easy and hard values.
	var values []uint32
	template.domains[0][splitVar].ForEach(func(v uint32) bool {
		values = append(values, v)
		return true
	})
	sort.Slice(values, func(i, j int) bool {
		di, dj := template.g.Degree(values[i]), template.g.Degree(values[j])
		if di != dj {
			return di > dj
		}
		return values[i] < values[j]
	})
	if workers > len(values) {
		workers = len(values)
	}
	if workers < 1 {
		workers = 1
	}

	var (
		accepted  atomic.Uint64
		nodes     atomic.Uint64
		timedOut  atomic.Bool
		limitHit  atomic.Bool
		matchLock sync.Mutex
		wg        sync.WaitGroup
	)
	opts := template.opts
	// The caller's cancel flag, when supplied, doubles as the workers'
	// shared stop signal (see Options.Cancel).
	stop := opts.Cancel
	if stop == nil {
		stop = new(atomic.Bool)
	}
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = time.Now().Add(opts.TimeLimit)
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := &solver{
				q: template.q, g: template.g,
				adj: template.adj, qadj: template.qadj,
				stats:    &Stats{},
				deadline: deadline,
				cancel:   stop,
			}
			ws.opts = opts
			ws.opts.MaxEmbeddings = 0 // the shared counter enforces the cap
			ws.opts.OnMatch = func(m []uint32) bool {
				if stop.Load() {
					return false
				}
				n := accepted.Add(1)
				if opts.MaxEmbeddings > 0 && n > opts.MaxEmbeddings {
					accepted.Add(^uint64(0))
					limitHit.Store(true)
					stop.Store(true)
					return false
				}
				if opts.OnMatch != nil {
					matchLock.Lock()
					cont := opts.OnMatch(m)
					matchLock.Unlock()
					if !cont {
						stop.Store(true)
						return false
					}
				}
				if opts.MaxEmbeddings > 0 && n == opts.MaxEmbeddings {
					limitHit.Store(true)
					stop.Store(true)
					return false
				}
				return true
			}
			ws.initWorkerDomains(template, graph.Vertex(splitVar), values, w, workers)
			ws.search(0)
			nodes.Add(ws.stats.Nodes)
			if ws.stats.TimedOut {
				timedOut.Store(true)
			}
		}(w)
	}
	wg.Wait()

	template.stats.Embeddings = accepted.Load()
	if opts.MaxEmbeddings > 0 && template.stats.Embeddings > opts.MaxEmbeddings {
		template.stats.Embeddings = opts.MaxEmbeddings
	}
	template.stats.Nodes = nodes.Load()
	template.stats.TimedOut = timedOut.Load()
	template.stats.LimitHit = limitHit.Load()
}

// initWorkerDomains builds the worker's domain trail: level 0 copies the
// template's initial domains, with the split variable's domain reduced
// to this worker's round-robin share.
func (s *solver) initWorkerDomains(template *solver, splitVar graph.Vertex, values []uint32, w, workers int) {
	nQ, nG := s.q.NumVertices(), s.g.NumVertices()
	s.domains = make([][]*bitset.Set, nQ+1)
	for lvl := range s.domains {
		s.domains[lvl] = make([]*bitset.Set, nQ)
		for u := range s.domains[lvl] {
			s.domains[lvl][u] = bitset.New(nG)
		}
	}
	for u := 0; u < nQ; u++ {
		if graph.Vertex(u) == splitVar {
			for i := w; i < len(values); i += workers {
				s.domains[0][u].Set(values[i])
			}
		} else {
			s.domains[0][u].CopyFrom(template.domains[0][u])
		}
	}
	s.assigned = make([]bool, nQ)
	s.assignment = make([]uint32, nQ)
	s.byDegree = make([][]uint32, nQ)
}
