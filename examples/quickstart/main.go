// Quickstart: build a small labeled data graph, define a query pattern,
// and enumerate all subgraph isomorphisms with the paper's recommended
// algorithm configuration.
package main

import (
	"fmt"
	"log"

	sm "subgraphmatching"
)

func main() {
	// Data graph: a small labeled network. Labels: 0 = user, 1 = group,
	// 2 = page.
	const (
		user  sm.Label = 0
		group sm.Label = 1
		page  sm.Label = 2
	)
	data, err := sm.FromEdges(
		[]sm.Label{user, user, user, user, group, group, page, page},
		[][2]sm.Vertex{
			{0, 1}, {0, 2}, {1, 2}, {2, 3}, // users know each other
			{0, 4}, {1, 4}, {2, 4}, {3, 5}, // group memberships
			{4, 6}, {5, 6}, {5, 7}, {1, 6}, // pages
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Query: two connected users in the same group.
	query, err := sm.FromEdges(
		[]sm.Label{user, user, group},
		[][2]sm.Vertex{{0, 1}, {0, 2}, {1, 2}},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("data: ", data)
	fmt.Println("query:", query)

	// Find every embedding. AlgoOptimized is the paper's recommended
	// configuration: GraphQL's filter, a density-chosen ordering, and
	// set-intersection local candidates.
	matches, err := sm.FindAll(query, data, sm.Options{Algorithm: sm.AlgoOptimized}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d embeddings:\n", len(matches))
	for _, m := range matches {
		fmt.Printf("  u0->v%d  u1->v%d  u2->v%d\n", m[0], m[1], m[2])
	}

	// Counting is cheaper than collecting when only the number matters.
	n, err := sm.Count(query, data, sm.Options{Algorithm: sm.AlgoOptimized})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("count: %d\n", n)
}
