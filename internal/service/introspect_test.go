package service

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/testutil"
)

// TestSubmitProfileAttachesExplain: Request.Profile turns a Submit into
// EXPLAIN ANALYZE — the heat table arrives on Result.Explain and its
// totals reconcile with the Result's own counters.
func TestSubmitProfileAttachesExplain(t *testing.T) {
	s, g := newTestService(t, Config{})
	defer s.Close()
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(11)), g, 4)

	resp, err := s.Submit(context.Background(), Request{
		Graph: "main", Query: q, Algorithm: core.GraphQL, Profile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ex := resp.Result.Explain
	if ex == nil {
		t.Fatal("Profile request returned no Explain")
	}
	if !ex.Analyzed {
		t.Error("Submit profile should be analyzed")
	}
	var heatNodes uint64
	for _, h := range ex.Heat {
		heatNodes += h.Nodes
	}
	if heatNodes != resp.Result.Nodes {
		t.Errorf("heat nodes %d != result nodes %d", heatNodes, resp.Result.Nodes)
	}
	if len(ex.Filter) == 0 {
		t.Error("no filter stages in profile")
	}

	// A cached-plan Profile request still profiles: plan identity is
	// independent of the Profile bit.
	resp2, err := s.Submit(context.Background(), Request{
		Graph: "main", Query: q, Algorithm: core.GraphQL, Profile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.CacheHit {
		t.Error("profiled repeat should share the cached plan")
	}
	if resp2.Result.Explain == nil || resp2.Result.Explain.Nodes != resp.Result.Nodes {
		t.Errorf("cached-plan profile diverged: %+v", resp2.Result.Explain)
	}

	// And an unprofiled request on the same plan carries no Explain.
	resp3, err := s.Submit(context.Background(), Request{
		Graph: "main", Query: q, Algorithm: core.GraphQL,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp3.Result.Explain != nil {
		t.Error("unprofiled request carries an Explain")
	}
}

// TestExplainDryRun: Service.Explain returns the plan breakdown without
// enumerating, and the plan it builds is cached for the real query.
func TestExplainDryRun(t *testing.T) {
	s, g := newTestService(t, Config{})
	defer s.Close()
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(12)), g, 4)

	resp, err := s.Explain(context.Background(), Request{Graph: "main", Query: q, Algorithm: core.CFL})
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Error("cold explain reported a cache hit")
	}
	p := resp.Profile
	if p == nil || p.Analyzed {
		t.Fatalf("dry-run profile = %+v, want non-nil unanalyzed", p)
	}
	if len(p.Filter) == 0 || len(p.Heat) != 0 {
		t.Errorf("dry run: %d filter stages, %d heat rows (want >0, 0)", len(p.Filter), len(p.Heat))
	}
	if len(p.Order) != q.NumVertices() {
		t.Errorf("order entries = %d, want %d", len(p.Order), q.NumVertices())
	}
	var sb strings.Builder
	p.Render(&sb)
	if !strings.Contains(sb.String(), "filter stages:") || !strings.Contains(sb.String(), "order") {
		t.Errorf("render missing sections:\n%s", sb.String())
	}

	// The real query now hits the plan the dry run built.
	mresp, err := s.Submit(context.Background(), Request{Graph: "main", Query: q, Algorithm: core.CFL})
	if err != nil {
		t.Fatal(err)
	}
	if !mresp.CacheHit {
		t.Error("submit after explain did not reuse the dry run's plan")
	}
	eresp, err := s.Explain(context.Background(), Request{Graph: "main", Query: q, Algorithm: core.CFL})
	if err != nil {
		t.Fatal(err)
	}
	if !eresp.CacheHit {
		t.Error("second explain did not hit the cache")
	}
}

// TestExplainExternalEngineRejected: the engines outside the pipeline
// have no plan to explain.
func TestExplainExternalEngineRejected(t *testing.T) {
	s, g := newTestService(t, Config{})
	defer s.Close()
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(13)), g, 3)
	_, err := s.Explain(context.Background(), Request{Graph: "main", Query: q, Algorithm: core.VF2Classic})
	if !errors.Is(err, ErrNoExplain) {
		t.Fatalf("err = %v, want ErrNoExplain", err)
	}
}

// TestFlightRecorderObservesSubmits: completed requests land in the
// recorder's retention with the workload identity and the request span;
// failed requests land in the error ring.
func TestFlightRecorderObservesSubmits(t *testing.T) {
	s, g := newTestService(t, Config{})
	defer s.Close()
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(14)), g, 4)

	if _, err := s.Submit(context.Background(), Request{Graph: "main", Query: q}); err != nil {
		t.Fatal(err)
	}
	if n := s.Flights().InflightCount(); n != 0 {
		t.Fatalf("inflight after completion = %d", n)
	}
	var found bool
	for _, b := range s.Flights().Snapshot() {
		for _, r := range b.Records {
			if r.Graph != "main" {
				continue
			}
			found = true
			if r.Algo != core.QuickSI.String() || r.Err != "" {
				t.Errorf("record = %s/%s err=%q", r.Graph, r.Algo, r.Err)
			}
			if r.Span == nil || r.Span.Name != "request" {
				t.Errorf("record span missing or misnamed: %+v", r.Span)
			}
		}
	}
	if !found {
		t.Fatal("completed request not retained by the recorder")
	}

	// A failing request (validation error) enters the error ring.
	bad := testutil.RandomGraph(rand.New(rand.NewSource(15)), 400, 800, 3)
	if _, err := s.Submit(context.Background(), Request{Graph: "main", Query: bad}); err == nil {
		t.Fatal("oversized query did not fail validation")
	}
	errsRecs := s.Flights().Errors()
	if len(errsRecs) == 0 || errsRecs[0].Err == "" {
		t.Fatalf("error not recorded: %+v", errsRecs)
	}
	if n := s.Flights().InflightCount(); n != 0 {
		t.Fatalf("inflight after error = %d", n)
	}
}

// TestBatchProfileDedup: within a batch group, a profiled item must not
// be served by an unprofiled duplicate's fan-out (and vice versa) — the
// fan-out has no Explain to offer — while same-profile duplicates still
// dedup.
func TestBatchProfileDedup(t *testing.T) {
	s, g := newTestService(t, Config{})
	defer s.Close()
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(16)), g, 4)
	base := Request{Graph: "main", Query: q, Algorithm: core.QuickSI}
	prof := base
	prof.Profile = true

	results, err := s.SubmitBatch(context.Background(), []Request{base, prof, base, prof})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
	}
	if results[1].Resp.Result.Explain == nil || results[3].Resp.Result.Explain == nil {
		t.Error("profiled batch items lost their Explain")
	}
	if results[0].Resp.Result.Explain != nil || results[2].Resp.Result.Explain != nil {
		t.Error("unprofiled batch items gained an Explain")
	}
	// Two dedups: one per exec class (profiled, unprofiled).
	if v := s.metrics.batchDeduped.Value(); v != 2 {
		t.Errorf("dedup fan-outs = %d, want 2", v)
	}
}
