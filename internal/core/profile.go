package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Profile is the EXPLAIN/ANALYZE view of one query execution: where
// candidates died during filtering, what order enumeration ran in and
// how many candidates each vertex carried into it, and how the search
// effort distributed over depths — the paper's finding that performance
// is decided by per-stage, per-vertex attribution, turned into a
// first-class result. A Profile built by ExplainPlan alone (the dry-run
// path) carries only the plan-side sections; explainResult adds the heat
// table and totals, which reconcile exactly with the Result:
// sum(Heat.Nodes) == Result.Nodes, the emit-depth row's Nodes times
// Orbit == Result.Embeddings, and the per-depth kernel tallies sum to
// Result.Kernels.
type Profile struct {
	// Filter is the per-stage candidate reduction table, in execution
	// order. The first stage's Before is |V(q)|·|V(g)| — every data
	// vertex a candidate for every query vertex.
	Filter []StageProfile `json:"filter,omitempty"`
	// OrderMethod names how the matching order was chosen.
	OrderMethod string `json:"order_method,omitempty"`
	// Order lists the matching order with each vertex's filtered
	// candidate cardinality (nil for adaptive runs, where the order is
	// chosen per search node).
	Order []OrderEntry `json:"order,omitempty"`
	// Adaptive marks runs with no static order.
	Adaptive bool `json:"adaptive,omitempty"`
	// Heat is the per-depth enumeration heat table (nil on dry runs).
	// Parallel runs that probed the search space while splitting tasks
	// carry the probe work as a leading row with Depth == -1, so the
	// table's node and kernel sums still reconcile with the totals.
	Heat []DepthHeat `json:"heat,omitempty"`
	// Split reports the parallel scheduler's task-splitting: the policy,
	// pool shape, probe cost, and the cost model's node prediction next
	// to the measured count (nil on sequential runs).
	Split *SplitProfile `json:"split,omitempty"`
	// Workers attributes search nodes per depth to each parallel worker
	// (nil on sequential runs).
	Workers []WorkerHeat `json:"workers,omitempty"`
	// Totals the heat table reconciles against.
	Embeddings uint64            `json:"embeddings"`
	Nodes      uint64            `json:"nodes"`
	Kernels    map[string]uint64 `json:"kernels,omitempty"`
	// Orbit is the symmetry-breaking multiplier: Embeddings is the
	// canonical count (the emit-depth Nodes) times Orbit. 1 when
	// symmetry breaking is off.
	Orbit uint64 `json:"orbit,omitempty"`
	// Empty marks a plan whose filtering emptied a candidate set;
	// enumeration was skipped.
	Empty bool `json:"empty,omitempty"`
	// Analyzed distinguishes an executed profile (heat + totals valid)
	// from a dry-run EXPLAIN.
	Analyzed bool `json:"analyzed"`
}

// StageProfile is one filtering stage's candidate reduction.
type StageProfile struct {
	Name       string `json:"name"`
	DurationNS int64  `json:"duration_ns"`
	// Before and After total |C(u)| over the query vertices at the
	// stage's boundaries; Ratio is the surviving fraction After/Before.
	Before uint64  `json:"before"`
	After  uint64  `json:"after"`
	Ratio  float64 `json:"ratio"`
	// Counts holds |C(u)| per query vertex after the stage.
	Counts []uint32 `json:"counts,omitempty"`
}

// OrderEntry is one position of the matching order.
type OrderEntry struct {
	Position   int `json:"position"`
	Vertex     int `json:"vertex"`
	Candidates int `json:"candidates"`
}

// DepthHeat is one row of the enumeration heat table.
type DepthHeat struct {
	Depth int `json:"depth"`
	// Vertex is the query vertex mapped at this depth, -1 when no
	// single vertex owns the depth (adaptive order, or the emit depth).
	Vertex          int               `json:"vertex"`
	Nodes           uint64            `json:"nodes"`
	Candidates      uint64            `json:"candidates"`
	Extended        uint64            `json:"extended"`
	Conflicts       uint64            `json:"conflicts"`
	EmptyLC         uint64            `json:"empty_lc"`
	SymmetrySkips   uint64            `json:"symmetry_skips,omitempty"`
	FailingSetSkips uint64            `json:"failing_set_skips,omitempty"`
	Kernels         map[string]uint64 `json:"kernels,omitempty"`
}

// WorkerHeat is one parallel worker's per-depth node counts.
type WorkerHeat struct {
	Worker int      `json:"worker"`
	Nodes  []uint64 `json:"nodes"`
}

// SplitProfile is the EXPLAIN view of the parallel scheduler's task
// splitting — Result.Split with the prediction comparison made explicit.
// MeasuredNodes is the enumeration node count the workers actually
// expanded (the run's Nodes total minus the probe row), the number
// PredictedNodes claims to forecast.
type SplitProfile struct {
	Policy          string `json:"policy"`
	Tasks           int    `json:"tasks"`
	SplitTasks      int    `json:"split_tasks"`
	MaxPrefix       int    `json:"max_prefix"`
	Probes          uint64 `json:"probes"`
	ProbeCandidates uint64 `json:"probe_candidates"`
	PredictedNodes  uint64 `json:"predicted_nodes,omitempty"`
	MeasuredNodes   uint64 `json:"measured_nodes"`
}

// ExplainPlan builds the dry-run EXPLAIN for a plan: filter-stage
// reduction and the matching order with candidate cardinalities, without
// enumerating. The serving layer's GET /explain endpoint is this
// function behind the plan cache.
func ExplainPlan(plan *Plan) *Profile {
	p := &Profile{
		OrderMethod: plan.OrderMethod,
		Orbit:       plan.Orbit,
		Empty:       plan.Empty,
		Adaptive:    plan.Cfg.Adaptive,
	}
	before := uint64(plan.Query.NumVertices()) * uint64(plan.Data.NumVertices())
	for _, st := range plan.Stages {
		after := st.Candidates
		ratio := 1.0
		if before > 0 {
			ratio = float64(after) / float64(before)
		}
		p.Filter = append(p.Filter, StageProfile{
			Name:       st.Name,
			DurationNS: st.Duration.Nanoseconds(),
			Before:     before,
			After:      after,
			Ratio:      ratio,
			Counts:     st.Counts,
		})
		before = after
	}
	if !plan.Cfg.Adaptive {
		for i, u := range plan.Order {
			p.Order = append(p.Order, OrderEntry{
				Position:   i,
				Vertex:     int(u),
				Candidates: len(plan.Cand[u]),
			})
		}
	}
	return p
}

// explainResult extends the plan's EXPLAIN with the executed run's heat
// table, worker attribution and totals.
func explainResult(plan *Plan, res *Result) *Profile {
	p := ExplainPlan(plan)
	p.Analyzed = true
	p.Embeddings = res.Embeddings
	p.Nodes = res.Nodes
	p.Kernels = res.Kernels.Map()
	if s := res.Split; s != nil {
		p.Split = &SplitProfile{
			Policy:          s.Policy.String(),
			Tasks:           s.Tasks,
			SplitTasks:      s.SplitTasks,
			MaxPrefix:       s.MaxPrefix,
			Probes:          s.Probes,
			ProbeCandidates: s.ProbeCandidates,
			PredictedNodes:  s.PredictedNodes,
			MeasuredNodes:   res.Nodes - s.Probes,
		}
		if s.Probes > 0 {
			// The probe row keeps sum(Heat.Nodes) == Nodes and the heat
			// kernel sums == Kernels exact: probe work is in the totals,
			// so the table must carry it too.
			p.Heat = append(p.Heat, DepthHeat{
				Depth:      -1,
				Vertex:     -1,
				Nodes:      s.Probes,
				Candidates: s.ProbeCandidates,
				Kernels:    s.ProbeKernels.Map(),
			})
		}
	}
	if prof := res.Profile; prof != nil {
		n := prof.MaxDepth()
		for d := 0; d < len(prof.Nodes); d++ {
			row := DepthHeat{
				Depth:           d,
				Vertex:          -1,
				Nodes:           prof.Nodes[d],
				Candidates:      prof.Candidates[d],
				Extended:        prof.Extended[d],
				Conflicts:       prof.Conflicts[d],
				EmptyLC:         prof.EmptyLC[d],
				SymmetrySkips:   prof.SymmetrySkips[d],
				FailingSetSkips: prof.FailingSetSkips[d],
				Kernels:         prof.Kernels[d].Map(),
			}
			if !plan.Cfg.Adaptive && d < n && d < len(plan.Order) {
				row.Vertex = int(plan.Order[d])
			}
			if row.Nodes == 0 && row.Candidates == 0 && len(row.Kernels) == 0 {
				continue
			}
			p.Heat = append(p.Heat, row)
		}
	}
	for w, wp := range res.WorkerProfiles {
		if wp == nil {
			continue
		}
		nodes := append([]uint64(nil), wp.Nodes...)
		p.Workers = append(p.Workers, WorkerHeat{Worker: w, Nodes: nodes})
	}
	return p
}

// Render writes the profile as aligned text — the smatch -explain view.
func (p *Profile) Render(w io.Writer) {
	if len(p.Filter) > 0 {
		fmt.Fprintf(w, "filter stages:\n")
		fmt.Fprintf(w, "  %-12s %10s %12s %12s %8s\n", "stage", "time", "before", "after", "kept")
		for _, st := range p.Filter {
			fmt.Fprintf(w, "  %-12s %10s %12d %12d %7.1f%%\n",
				st.Name, time.Duration(st.DurationNS).Round(time.Microsecond),
				st.Before, st.After, 100*st.Ratio)
		}
	}
	if p.Empty {
		fmt.Fprintf(w, "plan: empty candidate set, enumeration skipped\n")
		return
	}
	if p.Adaptive {
		fmt.Fprintf(w, "order: adaptive (chosen per search node)\n")
	} else if len(p.Order) > 0 {
		parts := make([]string, len(p.Order))
		for i, e := range p.Order {
			parts[i] = fmt.Sprintf("u%d(%d)", e.Vertex, e.Candidates)
		}
		fmt.Fprintf(w, "order (%s): %s\n", p.OrderMethod, strings.Join(parts, " -> "))
	}
	if !p.Analyzed {
		return
	}
	if len(p.Heat) > 0 {
		fmt.Fprintf(w, "enumeration heat:\n")
		fmt.Fprintf(w, "  %5s %6s %12s %12s %12s %10s %8s %8s %8s  %s\n",
			"depth", "vertex", "nodes", "candidates", "extended",
			"conflicts", "emptyLC", "sym-skip", "fs-skip", "kernels")
		for _, h := range p.Heat {
			v := "-"
			if h.Vertex >= 0 {
				v = fmt.Sprintf("u%d", h.Vertex)
			}
			d := fmt.Sprintf("%d", h.Depth)
			if h.Depth < 0 {
				d = "probe"
			}
			fmt.Fprintf(w, "  %5s %6s %12d %12d %12d %10d %8d %8d %8d  %s\n",
				d, v, h.Nodes, h.Candidates, h.Extended,
				h.Conflicts, h.EmptyLC, h.SymmetrySkips, h.FailingSetSkips,
				kernelMix(h.Kernels))
		}
	}
	if s := p.Split; s != nil {
		fmt.Fprintf(w, "split: policy=%s tasks=%d split=%d max-prefix=%d probes=%d",
			s.Policy, s.Tasks, s.SplitTasks, s.MaxPrefix, s.Probes)
		if s.PredictedNodes > 0 && s.MeasuredNodes > 0 {
			fmt.Fprintf(w, " predicted-nodes=%d measured-nodes=%d (x%.2f)",
				s.PredictedNodes, s.MeasuredNodes,
				float64(s.PredictedNodes)/float64(s.MeasuredNodes))
		} else if s.PredictedNodes > 0 {
			fmt.Fprintf(w, " predicted-nodes=%d measured-nodes=%d",
				s.PredictedNodes, s.MeasuredNodes)
		}
		fmt.Fprintf(w, "\n")
	}
	if len(p.Workers) > 0 {
		fmt.Fprintf(w, "workers:\n")
		for _, wh := range p.Workers {
			var total uint64
			for _, n := range wh.Nodes {
				total += n
			}
			fmt.Fprintf(w, "  worker %-3d nodes=%d per-depth=%v\n", wh.Worker, total, wh.Nodes)
		}
	}
	fmt.Fprintf(w, "totals: embeddings=%d nodes=%d", p.Embeddings, p.Nodes)
	if p.Orbit > 1 {
		fmt.Fprintf(w, " orbit=%d", p.Orbit)
	}
	if len(p.Kernels) > 0 {
		fmt.Fprintf(w, " kernels=%s", kernelMix(p.Kernels))
	}
	fmt.Fprintf(w, "\n")
}

// kernelMix formats a kernel tally map deterministically (sorted by
// name), "-" when empty.
func kernelMix(m map[string]uint64) string {
	if len(m) == 0 {
		return "-"
	}
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, k := range names {
		parts[i] = fmt.Sprintf("%s:%d", k, m[k])
	}
	return strings.Join(parts, ",")
}

// heatNodesTotal sums the heat table's node counts — the reconciliation
// identity tests assert against Result.Nodes.
func (p *Profile) heatNodesTotal() uint64 {
	var t uint64
	for _, h := range p.Heat {
		t += h.Nodes
	}
	return t
}
