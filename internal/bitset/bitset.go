// Package bitset implements dense fixed-capacity bitsets.
//
// Bitsets back three different mechanisms in the study: candidate
// membership tests during filtering, variable domains in the Glasgow
// constraint-programming solver, and failing sets in DP-iso's pruning
// (the latter use the compact Mask64 type since queries have at most 64
// vertices).
package bitset

import "math/bits"

const wordBits = 64

// Set is a dense bitset over 0..n-1.
type Set struct {
	words []uint64
	n     int
}

// New returns a Set with capacity n, all bits clear.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity of the set.
func (s *Set) Len() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i uint32) { s.words[i/wordBits] |= 1 << (i % wordBits) }

// Clear clears bit i.
func (s *Set) Clear(i uint32) { s.words[i/wordBits] &^= 1 << (i % wordBits) }

// Contains reports whether bit i is set.
func (s *Set) Contains(i uint32) bool {
	return s.words[i/wordBits]&(1<<(i%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether any bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Reset clears all bits.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// IntersectWith performs s &= other in place.
func (s *Set) IntersectWith(other *Set) {
	for i := range s.words {
		s.words[i] &= other.words[i]
	}
}

// UnionWith performs s |= other in place.
func (s *Set) UnionWith(other *Set) {
	for i := range s.words {
		s.words[i] |= other.words[i]
	}
}

// CopyFrom overwrites s with other's bits. The sets must have equal
// capacity.
func (s *Set) CopyFrom(other *Set) {
	copy(s.words, other.words)
	s.n = other.n
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	return &Set{words: append([]uint64(nil), s.words...), n: s.n}
}

// IntersectionCount returns |s AND other| without materializing it.
func (s *Set) IntersectionCount(other *Set) int {
	n := 0
	for i := range s.words {
		n += bits.OnesCount64(s.words[i] & other.words[i])
	}
	return n
}

// ForEach calls fn for every set bit in ascending order. Iteration stops
// if fn returns false.
func (s *Set) ForEach(fn func(i uint32) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := uint32(bits.TrailingZeros64(w))
			if !fn(uint32(wi*wordBits) + b) {
				return
			}
			w &= w - 1
		}
	}
}

// NextSet returns the first set bit >= i, or (0, false) if none exists.
func (s *Set) NextSet(i uint32) (uint32, bool) {
	if int(i) >= s.n {
		return 0, false
	}
	wi := int(i / wordBits)
	w := s.words[wi] >> (i % wordBits)
	if w != 0 {
		return i + uint32(bits.TrailingZeros64(w)), true
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return uint32(wi*wordBits) + uint32(bits.TrailingZeros64(s.words[wi])), true
		}
	}
	return 0, false
}

// Words exposes the backing words for word-parallel operations (e.g. the
// Glasgow propagator). The slice aliases internal storage.
func (s *Set) Words() []uint64 { return s.words }

// MemoryBytes returns the heap footprint of the set's backing array.
func (s *Set) MemoryBytes() int64 { return int64(len(s.words)) * 8 }

// Mask64 is a bitset over at most 64 elements, used for failing sets over
// query vertices (the study's queries have <= 32 vertices).
type Mask64 uint64

// Mask64All returns the mask with bits 0..n-1 set.
func Mask64All(n int) Mask64 {
	if n >= 64 {
		return ^Mask64(0)
	}
	return Mask64(1)<<uint(n) - 1
}

// With returns m with bit i set.
func (m Mask64) With(i uint32) Mask64 { return m | 1<<i }

// Has reports whether bit i is set.
func (m Mask64) Has(i uint32) bool { return m&(1<<i) != 0 }

// Union returns m | other.
func (m Mask64) Union(other Mask64) Mask64 { return m | other }

// Empty reports whether no bit is set.
func (m Mask64) Empty() bool { return m == 0 }

// Count returns the number of set bits.
func (m Mask64) Count() int { return bits.OnesCount64(uint64(m)) }
