package candspace

import (
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/intersect"
)

// MaterializeBlocks builds the QFilter-style block layout for every
// materialized candidate adjacency list, enabling word-parallel
// intersections during enumeration (the Figure 10 comparison). It is
// idempotent.
func (s *Space) MaterializeBlocks() {
	if s.blocks != nil {
		return
	}
	s.blocks = make([][][]*intersect.BlockSet, len(s.edges))
	for u, row := range s.edges {
		s.blocks[u] = make([][]*intersect.BlockSet, len(row))
		for i, csr := range row {
			if csr == nil {
				continue
			}
			nCand := len(csr.offsets) - 1
			bs := make([]*intersect.BlockSet, nCand)
			for ci := 0; ci < nCand; ci++ {
				bs[ci] = intersect.NewBlockSet(csr.targets[csr.offsets[ci]:csr.offsets[ci+1]])
			}
			s.blocks[u][i] = bs
		}
	}
}

// HasBlocks reports whether MaterializeBlocks has run.
func (s *Space) HasBlocks() bool { return s.blocks != nil }

// AdjacencyBlocks returns the block layout of 𝒜[u->u'](v) where candIdx
// is v's index in C(u), or nil if blocks are not materialized, the pair
// is absent, or candIdx is out of range (e.g. -1 from CandidateIndex on
// an empty candidate set).
func (s *Space) AdjacencyBlocks(u, up graph.Vertex, candIdx int) *intersect.BlockSet {
	if s.blocks == nil {
		return nil
	}
	pos := s.neighborPos(u, up)
	if pos < 0 || s.blocks[u][pos] == nil || candIdx < 0 || candIdx >= len(s.blocks[u][pos]) {
		return nil
	}
	return s.blocks[u][pos][candIdx]
}
