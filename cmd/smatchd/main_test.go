package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/service"
	"subgraphmatching/internal/testutil"
)

func graphText(t *testing.T, g *graph.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// newTestServer mounts the smatchd handler over a service with one
// registered random graph.
func newTestServer(t *testing.T) (*httptest.Server, *graph.Graph) {
	t.Helper()
	svc := service.New(service.Config{})
	g := testutil.RandomGraph(rand.New(rand.NewSource(7)), 200, 600, 3)
	if _, err := svc.RegisterGraph("main", g, false); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(svc, serverOptions{}))
	t.Cleanup(ts.Close)
	return ts, g
}

func do(t *testing.T, method, url, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := do(t, "GET", ts.URL+"/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
	var h healthResponse
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz body not JSON: %v\n%s", err, body)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if h.Graphs != 1 {
		t.Errorf("graphs = %d, want 1", h.Graphs)
	}
	if h.Capacity <= 0 {
		t.Errorf("capacity = %d, want positive", h.Capacity)
	}
	if h.Uptime <= 0 {
		t.Error("uptime missing")
	}
	if h.InUse != 0 || h.Queued != 0 {
		t.Errorf("idle server reports in_use=%d queued=%d", h.InUse, h.Queued)
	}
}

func TestGraphLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)
	tri := graphText(t, testutil.PaperQuery())

	resp, body := do(t, "PUT", ts.URL+"/graphs/extra", tri)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("put = %d %q", resp.StatusCode, body)
	}
	// Duplicate without replace → 409.
	resp, _ = do(t, "PUT", ts.URL+"/graphs/extra", tri)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate put = %d, want 409", resp.StatusCode)
	}
	// Hot swap → 201 with a higher generation.
	resp, body = do(t, "PUT", ts.URL+"/graphs/extra?replace=1", tri)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("replace put = %d %q", resp.StatusCode, body)
	}
	var info service.GraphInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if info.Generation < 2 {
		t.Fatalf("generation = %d after replace, want >= 2", info.Generation)
	}
	// Malformed graph text → 400.
	resp, _ = do(t, "PUT", ts.URL+"/graphs/bad", "t x y")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad text put = %d, want 400", resp.StatusCode)
	}

	resp, body = do(t, "GET", ts.URL+"/graphs", "")
	var infos []service.GraphInfo
	if err := json.Unmarshal([]byte(body), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "extra" || infos[1].Name != "main" {
		t.Fatalf("graphs = %+v", infos)
	}

	resp, _ = do(t, "DELETE", ts.URL+"/graphs/extra", "")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete = %d", resp.StatusCode)
	}
	resp, _ = do(t, "DELETE", ts.URL+"/graphs/extra", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete = %d, want 404", resp.StatusCode)
	}
}

func TestMatchAndStats(t *testing.T) {
	ts, g := newTestServer(t)
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(5)), g, 4)
	qText := graphText(t, q)

	var first matchResult
	for i := 0; i < 2; i++ {
		resp, body := do(t, "POST", ts.URL+"/match?graph=main&algo=GQL&limit=1000", qText)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("match %d = %d %q", i, resp.StatusCode, body)
		}
		var res matchResult
		if err := json.Unmarshal([]byte(body), &res); err != nil {
			t.Fatal(err)
		}
		if want := i > 0; res.CacheHit != want {
			t.Fatalf("match %d cache_hit = %v, want %v", i, res.CacheHit, want)
		}
		if i == 0 {
			first = res
		} else if res.Embeddings != first.Embeddings {
			t.Fatalf("embeddings diverged: %d vs %d", res.Embeddings, first.Embeddings)
		}
	}

	resp, body := do(t, "GET", ts.URL+"/stats", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats = %d", resp.StatusCode)
	}
	var st service.Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("cache stats = %+v", st.Cache)
	}
	if len(st.Workloads) != 1 || st.Workloads[0].Queries != 2 {
		t.Fatalf("workloads = %+v", st.Workloads)
	}
}

func TestMatchErrorStatusMapping(t *testing.T) {
	ts, g := newTestServer(t)
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(5)), g, 4)
	qText := graphText(t, q)
	disconnected := "t 3 1\nv 0 0 1\nv 1 0 1\nv 2 0 0\ne 0 1\n"

	cases := []struct {
		name, url, body string
		want            int
	}{
		{"unknown graph", "/match?graph=nope", qText, http.StatusNotFound},
		{"missing graph param", "/match", qText, http.StatusBadRequest},
		{"bad algo", "/match?graph=main&algo=WAT", qText, http.StatusBadRequest},
		{"bad limit", "/match?graph=main&limit=x", qText, http.StatusBadRequest},
		{"bad query text", "/match?graph=main", "v 0 0", http.StatusBadRequest},
		{"disconnected query", "/match?graph=main", disconnected, http.StatusBadRequest},
		{"negative parallel", "/match?graph=main&parallel=-1", qText, http.StatusBadRequest},
		{"oversized parallel", "/match?graph=main&parallel=1000000", qText, http.StatusBadRequest},
		{"negative workers", "/match?graph=main&workers=-2", qText, http.StatusBadRequest},
		{"oversized workers", "/match?graph=main&workers=1000000", qText, http.StatusBadRequest},
		{"deadline", "/match?graph=main&timeout=1ns", qText, http.StatusOK}, // engine timeout → TimedOut result, not an error
		// Pre-stream failures must carry real status codes even with
		// stream=1 — the 200 is committed only at the first embedding.
		{"stream unknown graph", "/match?graph=nope&stream=1", qText, http.StatusNotFound},
		{"stream bad query text", "/match?graph=main&stream=1", "v 0 0", http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := do(t, "POST", ts.URL+c.url, c.body)
			if resp.StatusCode != c.want {
				t.Fatalf("status = %d %q, want %d", resp.StatusCode, body, c.want)
			}
		})
	}
}

func TestMatchOverloadMapsTo503(t *testing.T) {
	svc := service.New(service.Config{MaxInFlight: 1, MaxQueue: 1, MaxQueueWait: time.Nanosecond})
	g := testutil.RandomGraph(rand.New(rand.NewSource(7)), 200, 600, 3)
	if _, err := svc.RegisterGraph("main", g, false); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(svc, serverOptions{}))
	t.Cleanup(ts.Close)
	// Hold the only slot directly through the service, then hit HTTP.
	occupied := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(5)), g, 4)
	go func() {
		var once bool
		_, err := svc.Stream(context.Background(), service.Request{Graph: "main", Query: q},
			func([]uint32) bool {
				if !once {
					once = true
					close(occupied)
				}
				<-release
				return true
			})
		done <- err
	}()
	<-occupied
	resp, body := do(t, "POST", ts.URL+"/match?graph=main", graphText(t, q))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overload = %d %q, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 must carry Retry-After")
	}
	// Streaming requests hit admission before committing the 200, so
	// overload surfaces as the same 503 — not an NDJSON error line.
	resp, body = do(t, "POST", ts.URL+"/match?graph=main&stream=1", graphText(t, q))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stream overload = %d %q, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("stream 503 must carry Retry-After")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestMatchStreamNDJSON(t *testing.T) {
	ts, g := newTestServer(t)
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(5)), g, 4)
	resp, body := do(t, "POST", ts.URL+"/match?graph=main&algo=GQL&limit=50&stream=1", graphText(t, q))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream = %d %q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type = %q", ct)
	}
	sc := bufio.NewScanner(strings.NewReader(body))
	var embeddings int
	var summary *matchResult
	for sc.Scan() {
		line := sc.Text()
		var rec struct {
			Embedding []uint32               `json:"embedding"`
			Result    *matchResult           `json:"result"`
			Error     string                 `json:"error"`
			Extra     map[string]interface{} `json:"-"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch {
		case rec.Error != "":
			t.Fatalf("stream error: %s", rec.Error)
		case rec.Result != nil:
			summary = rec.Result
		default:
			if len(rec.Embedding) != q.NumVertices() {
				t.Fatalf("embedding size = %d, want %d", len(rec.Embedding), q.NumVertices())
			}
			embeddings++
		}
	}
	if summary == nil {
		t.Fatal("stream must end with a result summary line")
	}
	if uint64(embeddings) != summary.Embeddings {
		t.Fatalf("streamed %d embeddings, summary says %d", embeddings, summary.Embeddings)
	}
	if embeddings == 0 {
		t.Fatal("expected at least one embedding in the stream")
	}
}
