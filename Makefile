# Development targets. `make ci` is the gate every change must pass:
# vet, build, the full test suite under the race detector, and a
# one-iteration benchmark smoke pass to catch bit-rotted bench code.

GO ?= go

.PHONY: ci vet build test race bench-smoke bench-parallel

ci: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The parallel-scaling measurement behind EXPERIMENTS.md's
# "Parallel scaling" section.
bench-parallel:
	$(GO) test -run '^$$' -bench BenchmarkParallelSkew -benchmem -benchtime 5x .
