package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/intersect"
	"subgraphmatching/internal/obs"
	"subgraphmatching/internal/service"
	"subgraphmatching/internal/store"
)

// maxQueryBody bounds a /match or /graphs request body. Query graphs
// are small by nature (the paper's largest has 32 vertices); data
// graphs get a far larger allowance.
const (
	maxQueryBody = 4 << 20 // 4 MiB
	maxGraphBody = 1 << 30 // 1 GiB
)

// maxWorkersParam bounds the parallel= and workers= parameters at the
// front door. The service additionally clamps admitted requests to its
// MaxInFlight budget; this just rejects nonsense (negative or absurd
// values) with a 400 before any work happens.
const maxWorkersParam = 4096

// graphAdmin is the registration surface the handlers mutate graphs
// through. Without persistence it is the service itself (serviceAdmin);
// with -data-dir it is the store.Manager, which snapshots and logs
// every operation before acknowledging it.
type graphAdmin interface {
	RegisterGraph(name string, g *graph.Graph, replace bool) (service.GraphInfo, error)
	RegisterSnapshot(name string, data []byte, replace bool) (service.GraphInfo, error)
	UnregisterGraph(name string) error
}

// serviceAdmin adapts the bare service to graphAdmin for the
// non-persistent configuration.
type serviceAdmin struct{ svc *service.Service }

func (a serviceAdmin) RegisterGraph(name string, g *graph.Graph, replace bool) (service.GraphInfo, error) {
	return a.svc.RegisterGraph(name, g, replace)
}

func (a serviceAdmin) RegisterSnapshot(name string, data []byte, replace bool) (service.GraphInfo, error) {
	g, _, err := store.Decode(data, store.DecodeOptions{ZeroCopy: true})
	if err != nil {
		return service.GraphInfo{}, err
	}
	return a.svc.RegisterGraph(name, g, replace)
}

func (a serviceAdmin) UnregisterGraph(name string) error {
	_, err := a.svc.UnregisterGraph(name)
	return err
}

// server adapts a service.Service to HTTP; transport concerns (JSON,
// status codes, streaming) live here and nowhere else.
type server struct {
	svc   *service.Service
	admin graphAdmin
	// store, when non-nil, is the durable graph store behind admin;
	// /healthz reports its recovery and occupancy state.
	store *store.Manager
	// batcher, when non-nil, coalesces non-streaming /match requests
	// into SubmitBatch calls (the -batch-window/-batch-max flags).
	batcher *service.Batcher
}

// serverOptions selects the optional diagnostic surfaces.
type serverOptions struct {
	// pprof mounts /debug/pprof. Off by default: the profiling
	// endpoints expose goroutine stacks and allow CPU captures, which
	// is an operator decision, not a default.
	pprof bool
	// batchWindow, when positive, routes non-streaming /match requests
	// through a coalescing batcher that flushes every batchWindow (or at
	// batchMax items). Off by default: it adds up to batchWindow of
	// latency to every singleton request.
	batchWindow time.Duration
	batchMax    int
	// store routes graph registration through the durable store
	// (snapshots + WAL) and surfaces its state on /healthz.
	store *store.Manager
}

// newServer builds the smatchd handler — exported shape so tests can
// mount it on httptest.Server.
func newServer(svc *service.Service, opts serverOptions) http.Handler {
	s := &server{svc: svc, store: opts.store}
	if opts.store != nil {
		s.admin = opts.store
	} else {
		s.admin = serviceAdmin{svc: svc}
	}
	if opts.batchWindow > 0 {
		s.batcher = svc.NewBatcher(service.BatcherConfig{
			MaxWait:  opts.batchWindow,
			MaxBatch: opts.batchMax,
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /graphs", s.listGraphs)
	mux.HandleFunc("PUT /graphs/{name}", s.putGraph)
	mux.HandleFunc("DELETE /graphs/{name}", s.deleteGraph)
	mux.HandleFunc("POST /match", s.match)
	mux.HandleFunc("POST /match/batch", s.matchBatch)
	mux.HandleFunc("POST /explain", s.explain)
	mux.HandleFunc("GET /stats", s.stats)
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("GET /debug/tracez", s.tracez)
	mux.HandleFunc("GET /debug/requests", s.debugRequests)
	if opts.pprof {
		// Explicit registrations: importing net/http/pprof for its
		// side effect would mount the handlers on the default mux,
		// which smatchd does not serve.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusFor maps the service's typed errors onto status codes — shared
// between whole-request failures (httpError) and per-item statuses in a
// batch response.
func statusFor(err error) int {
	switch {
	case errors.Is(err, service.ErrUnknownGraph):
		return http.StatusNotFound
	case errors.Is(err, service.ErrOverloaded), errors.Is(err, service.ErrClosed):
		// Includes ErrQueueFull, ErrQueueTimeout and ErrTenantSaturated:
		// all retryable overload, all 503 + Retry-After.
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is moot but 499-style
		// accounting helps log readers.
		return 499
	case errors.Is(err, service.ErrDuplicateGraph):
		return http.StatusConflict
	default:
		// Validation errors: nil/empty/disconnected/oversized queries,
		// unknown labels, bad graph text, bad parameters.
		return http.StatusBadRequest
	}
}

// httpError maps the service's typed errors onto status codes.
func httpError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// healthResponse is the /healthz readiness report: enough occupancy
// detail for a load balancer or operator to judge the instance without
// pulling the full /stats snapshot.
type healthResponse struct {
	Status   string        `json:"status"`
	Uptime   time.Duration `json:"uptime_ns"`
	Graphs   int           `json:"graphs"`
	Capacity int64         `json:"capacity"`
	InUse    int64         `json:"in_use"`
	Queued   int           `json:"queued"`
	// Store reports the durable store's recovery and occupancy state;
	// absent when the daemon runs without -data-dir.
	Store *storeHealth `json:"store,omitempty"`
}

// storeHealth is the /healthz durability section.
type storeHealth struct {
	Dir        string              `json:"dir"`
	MMap       bool                `json:"mmap"`
	Snapshots  int                 `json:"snapshots"`
	SnapBytes  int64               `json:"snapshot_bytes"`
	WALBytes   int64               `json:"wal_bytes"`
	WALRecords int                 `json:"wal_records"`
	Recovery   store.RecoveryStats `json:"recovery"`
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	st := s.svc.Stats()
	resp := healthResponse{
		Status:   "ok",
		Uptime:   st.Uptime,
		Graphs:   len(st.Graphs),
		Capacity: st.Admission.Capacity,
		InUse:    st.Admission.InUse,
		Queued:   st.Admission.Queued,
	}
	if s.store != nil {
		sst := s.store.Stats()
		resp.Store = &storeHealth{
			Dir:        sst.Dir,
			MMap:       sst.MMap,
			Snapshots:  sst.Snapshots,
			SnapBytes:  sst.SnapBytes,
			WALBytes:   sst.WALBytes,
			WALRecords: sst.WALRecords,
			Recovery:   sst.Recovery,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// metrics serves the registry in the Prometheus text exposition format.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.svc.Metrics().WritePrometheus(w)
}

func (s *server) listGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Graphs())
}

// snapshotContentType marks a PUT /graphs body carrying the binary
// snapshot format instead of the t/v/e text — the upload skips edge-
// list parsing entirely and, under a durable store, persists the bytes
// verbatim.
const snapshotContentType = "application/x-smatch-snapshot"

func (s *server) putGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	replace := r.URL.Query().Get("replace") == "1"
	var (
		info service.GraphInfo
		err  error
	)
	if r.Header.Get("Content-Type") == snapshotContentType {
		var data []byte
		data, err = io.ReadAll(http.MaxBytesReader(w, r.Body, maxGraphBody))
		if err == nil {
			info, err = s.admin.RegisterSnapshot(name, data, replace)
		}
	} else {
		var g *graph.Graph
		g, err = graph.Parse(http.MaxBytesReader(w, r.Body, maxGraphBody))
		if err == nil {
			info, err = s.admin.RegisterGraph(name, g, replace)
		}
	}
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *server) deleteGraph(w http.ResponseWriter, r *http.Request) {
	if err := s.admin.UnregisterGraph(r.PathValue("name")); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Stats())
}

// matchResult is the JSON shape of one query's outcome. Trace carries
// the request's span tree when the client asked for it with ?trace=1.
type matchResult struct {
	Embeddings uint64        `json:"embeddings"`
	Nodes      uint64        `json:"nodes"`
	TimedOut   bool          `json:"timed_out"`
	LimitHit   bool          `json:"limit_hit"`
	CacheHit   bool          `json:"cache_hit"`
	Preprocess time.Duration `json:"preprocess_ns"`
	Enumerate  time.Duration `json:"enumerate_ns"`
	QueueWait  time.Duration `json:"queue_wait_ns"`
	// Kernels is the plan's intersection-kernel mix — pairwise kernel
	// executions by kernel name — absent for non-intersection locals.
	Kernels map[string]uint64 `json:"kernels,omitempty"`
	Trace   *obs.Span         `json:"trace,omitempty"`
	// Profile is the EXPLAIN/ANALYZE breakdown (filter-stage reduction,
	// matching order, per-depth enumeration heat), present when the
	// request asked for it with ?explain=1.
	Profile *core.Profile `json:"profile,omitempty"`
}

func toMatchResult(resp *service.Response, withTrace bool) matchResult {
	res := matchResult{
		Embeddings: resp.Result.Embeddings,
		Nodes:      resp.Result.Nodes,
		TimedOut:   resp.Result.TimedOut,
		LimitHit:   resp.Result.LimitHit,
		CacheHit:   resp.CacheHit,
		Preprocess: resp.Result.PreprocessTime(),
		Enumerate:  resp.Result.EnumTime,
		QueueWait:  resp.QueueWait,
		Kernels:    resp.Result.Kernels.Map(),
		Profile:    resp.Result.Explain,
	}
	if withTrace {
		res.Trace = resp.Result.Trace
	}
	return res
}

// parseMatchRequest turns query parameters + body into a service
// request. The request body is the query graph in the t/v/e text
// format.
func (s *server) parseMatchRequest(w http.ResponseWriter, r *http.Request) (service.Request, error) {
	var req service.Request
	params := r.URL.Query()
	req.Graph = params.Get("graph")
	if req.Graph == "" {
		return req, fmt.Errorf("missing required parameter graph")
	}
	req.Algorithm = core.Optimized
	if a := params.Get("algo"); a != "" {
		algo, err := core.ParseAlgorithm(a)
		if err != nil {
			return req, err
		}
		req.Algorithm = algo
	}
	var err error
	if v := params.Get("limit"); v != "" {
		if req.MaxEmbeddings, err = strconv.ParseUint(v, 10, 64); err != nil {
			return req, fmt.Errorf("bad limit %q", v)
		}
	}
	if v := params.Get("timeout"); v != "" {
		if req.TimeLimit, err = time.ParseDuration(v); err != nil {
			return req, fmt.Errorf("bad timeout %q", v)
		}
	}
	if v := params.Get("parallel"); v != "" {
		if req.Parallel, err = strconv.Atoi(v); err != nil || req.Parallel < 0 || req.Parallel > maxWorkersParam {
			return req, fmt.Errorf("bad parallel %q (want 0..%d)", v, maxWorkersParam)
		}
	}
	if v := params.Get("workers"); v != "" {
		if req.Workers, err = strconv.Atoi(v); err != nil || req.Workers < 0 || req.Workers > maxWorkersParam {
			return req, fmt.Errorf("bad workers %q (want 0..%d)", v, maxWorkersParam)
		}
	}
	if v := params.Get("split"); v != "" {
		if req.Split, err = core.ParseSplitPolicy(v); err != nil {
			return req, err
		}
	}
	if v := params.Get("splitfactor"); v != "" {
		if req.SplitFactor, err = strconv.Atoi(v); err != nil || req.SplitFactor < 0 || req.SplitFactor > maxWorkersParam {
			return req, fmt.Errorf("bad splitfactor %q (want 0..%d)", v, maxWorkersParam)
		}
	}
	if v := params.Get("kernel"); v != "" {
		if req.Kernel, err = intersect.ParsePolicy(v); err != nil {
			return req, err
		}
	}
	req.Profile = params.Get("explain") == "1"
	req.Query, err = graph.Parse(http.MaxBytesReader(w, r.Body, maxQueryBody))
	if err != nil {
		return req, err
	}
	return req, nil
}

func (s *server) match(w http.ResponseWriter, r *http.Request) {
	req, err := s.parseMatchRequest(w, r)
	if err != nil {
		httpError(w, err)
		return
	}
	withTrace := r.URL.Query().Get("trace") == "1"
	if r.URL.Query().Get("stream") != "1" {
		var (
			resp *service.Response
		)
		if s.batcher != nil {
			// Coalesce singleton requests: concurrent arrivals of the
			// same hot query share one admission grant, plan lookup, and
			// execution.
			resp, err = s.batcher.Submit(r.Context(), req)
		} else {
			resp, err = s.svc.Submit(r.Context(), req)
		}
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, toMatchResult(resp, withTrace))
		return
	}
	s.matchStream(w, r, req, withTrace)
}

// embeddingLine is one NDJSON stream record.
type embeddingLine struct {
	Embedding []uint32 `json:"embedding"`
}

// matchStream writes embeddings as NDJSON while the search runs. The
// sink executes inside enumeration, so every write applies backpressure
// to the search; a failed write (client gone) aborts it. The 200 status
// is committed lazily at the first embedding, so everything that fails
// before enumeration streams anything — unknown graph, validation,
// admission overload — still maps to a real status code via httpError;
// only a mid-stream failure degrades to a final {"error": ...} line.
func (s *server) matchStream(w http.ResponseWriter, r *http.Request, req service.Request, withTrace bool) {
	bw := bufio.NewWriter(w)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(bw)
	started := false
	start := func() {
		if !started {
			started = true
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
		}
	}
	const flushEvery = 64
	n := 0
	resp, err := s.svc.Stream(r.Context(), req, func(m []uint32) bool {
		start()
		if err := enc.Encode(embeddingLine{Embedding: m}); err != nil {
			return false
		}
		n++
		if n%flushEvery == 0 {
			if bw.Flush() != nil {
				return false
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		return true
	})
	if err != nil {
		if !started {
			httpError(w, err)
			return
		}
		enc.Encode(map[string]string{"error": err.Error()})
		bw.Flush()
		return
	}
	start()
	enc.Encode(map[string]matchResult{"result": toMatchResult(resp, withTrace)})
	bw.Flush()
}
