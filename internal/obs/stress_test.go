package obs

import (
	"io"
	"strconv"
	"sync"
	"testing"
)

// TestStressConcurrentRecordAndScrape hammers one registry from many
// goroutines — counters, labeled counters, gauges and histograms — while
// other goroutines scrape it continuously. Run under -race by the
// race-stress make target; correctness of the final counts is asserted
// too (every recorded increment must be visible once the writers join).
func TestStressConcurrentRecordAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("stress_total", "t")
	cv := r.CounterVec("stress_by_label_total", "t", "worker")
	g := r.Gauge("stress_gauge", "t")
	h := r.Histogram("stress_seconds", "t", []float64{0.001, 0.01, 0.1, 1})
	hv := r.HistogramVec("stress_phase_seconds", "t", nil, "phase")

	const (
		writers = 8
		iters   = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Scrapers run until the writers finish.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r.WritePrometheus(io.Discard)
				}
			}
		}()
	}
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			label := strconv.Itoa(w % 4)
			for i := 0; i < iters; i++ {
				c.Inc()
				cv.With(label).Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000)
				hv.With("filter").Observe(0.002)
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	if got := c.Value(); got != writers*iters {
		t.Errorf("counter = %d, want %d", got, writers*iters)
	}
	var byLabel uint64
	for i := 0; i < 4; i++ {
		byLabel += cv.Value(strconv.Itoa(i))
	}
	if byLabel != writers*iters {
		t.Errorf("labeled counters sum = %d, want %d", byLabel, writers*iters)
	}
	if got := g.Value(); got != writers*iters {
		t.Errorf("gauge = %d, want %d", got, writers*iters)
	}
	if got := h.Count(); got != writers*iters {
		t.Errorf("histogram count = %d, want %d", got, writers*iters)
	}
	if got := hv.With("filter").Count(); got != writers*iters {
		t.Errorf("labeled histogram count = %d, want %d", got, writers*iters)
	}
}
