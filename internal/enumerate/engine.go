package enumerate

import (
	"fmt"
	"time"

	"subgraphmatching/internal/bitset"
	"subgraphmatching/internal/candspace"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/intersect"
)

// timeCheckInterval is how many search nodes pass between deadline
// checks; checking the clock at every node would dominate small queries.
const timeCheckInterval = 1 << 12

// Run enumerates all subgraph isomorphisms from q to g following the
// matching order phi (a permutation of V(q) whose every prefix is
// connected), using the candidate sets cand and, for the auxiliary-
// structure-based local candidate methods, the candidate space.
//
// In adaptive mode (opts.Adaptive), phi is interpreted as the BFS order
// delta that defines the query DAG and the actual mapping order is chosen
// dynamically per search node, as DP-iso does.
//
// Run allocates a fresh Engine per call; callers that enumerate the same
// (query, data, candidates, order) tuple repeatedly — parallel workers
// running many tasks, benchmark loops — should construct an Engine once
// with NewEngine and reuse it, which makes the steady-state search
// allocation-free.
func Run(q, g *graph.Graph, cand [][]uint32, space *candspace.Space, phi []graph.Vertex, opts Options) (*Stats, error) {
	e, err := NewEngine(q, g, cand, space, phi, opts)
	if err != nil {
		return nil, err
	}
	return e.Run(), nil
}

// Engine is a reusable enumeration engine bound to one (query, data,
// candidates, space, order, options) tuple. All per-run scratch state —
// the partial embedding, visited marks, per-depth local-candidate
// buffers, intersection intermediates, failing-set masks — is allocated
// once at construction and re-seeded on each run, so repeated runs and
// per-task calls (RunRoot, RunRootPair) allocate nothing.
//
// An Engine is not safe for concurrent use; parallel callers hold one
// engine per worker over shared read-only inputs.
type Engine struct {
	engine
}

// NewEngine validates the inputs and builds a reusable engine. The
// candidate sets, space, and order are captured by reference and must
// stay unmodified (they may be shared, read-only, across engines).
func NewEngine(q, g *graph.Graph, cand [][]uint32, space *candspace.Space, phi []graph.Vertex, opts Options) (*Engine, error) {
	n := q.NumVertices()
	if len(phi) != n {
		return nil, fmt.Errorf("enumerate: order has %d vertices, query has %d", len(phi), n)
	}
	if len(cand) != n {
		return nil, fmt.Errorf("enumerate: got %d candidate sets for %d query vertices", len(cand), n)
	}
	if opts.FailingSets && n > 64 {
		return nil, fmt.Errorf("enumerate: failing sets support at most 64 query vertices, got %d", n)
	}
	switch opts.Local {
	case TreeEdge, Intersect, IntersectBlock:
		if space == nil {
			return nil, fmt.Errorf("enumerate: %v local candidates require a candidate space", opts.Local)
		}
	}
	if opts.Adaptive && opts.Local != Intersect && opts.Local != IntersectBlock {
		return nil, fmt.Errorf("enumerate: adaptive ordering requires intersection-based local candidates")
	}
	if opts.Local == IntersectBlock && !space.HasBlocks() {
		space.MaterializeBlocks()
	}
	if opts.Homomorphism && (len(opts.SymmetryClasses) > 0 || opts.VF2PPRules) {
		return nil, fmt.Errorf("enumerate: homomorphism mode is incompatible with symmetry breaking and VF2++ rules")
	}

	E := &Engine{engine: engine{
		q: q, g: g, cand: cand, space: space, phi: phi, opts: opts,
		pos:       make([]int, n),
		embedding: make([]uint32, n),
		candIdx:   make([]int, n),
		mapped:    make([]bool, n),
		visited:   make([]bool, g.NumVertices()),
		lcBuf:     make([][]uint32, n),
		fullMask:  bitset.Mask64All(n),
	}}
	e := &E.engine
	seen := make([]bool, n)
	for i, u := range phi {
		if int(u) >= n || seen[u] {
			return nil, fmt.Errorf("enumerate: order is not a permutation of V(q)")
		}
		seen[u] = true
		e.pos[u] = i
	}
	if err := e.prepare(); err != nil {
		return nil, err
	}
	if opts.Profile {
		e.prof = newSearchProfile(n)
		e.stats.Profile = e.prof
	}
	return E, nil
}

// Run resets the per-run statistics and enumerates over all root
// candidates — the same complete search the package-level Run performs.
// The returned Stats are owned by the engine and overwritten by the next
// Run call.
func (E *Engine) Run() *Stats {
	e := &E.engine
	e.resetRun()
	if e.q.NumVertices() == 0 {
		return &e.stats
	}
	start := time.Now()
	if e.opts.TimeLimit > 0 {
		e.deadline = start.Add(e.opts.TimeLimit)
	}
	if e.opts.Adaptive {
		e.runAdaptive()
	} else if e.opts.FailingSets {
		e.runFS(0)
	} else {
		e.runPlain(0)
	}
	e.stats.Duration = time.Since(start)
	e.stats.Kernels = e.sel.Stats()
	return &e.stats
}

// resetRun clears the cumulative statistics and abort state ahead of a
// full run. Per-node scratch (embedding, visited, buffers) needs no
// clearing: every search path unwinds its assignments even on abort.
func (e *engine) resetRun() {
	prof := e.prof
	e.stats = Stats{}
	if prof != nil {
		prof.reset()
		e.stats.Profile = prof
	}
	e.aborted = false
	e.clockTicker = 0
	e.deadline = time.Time{}
	e.sel.ResetStats()
	if e.opts.Adaptive {
		e.adaptive.pool = e.adaptive.pool[:0]
	}
}

// SetDeadline arms (or, with a zero time, disarms) the wall-clock
// deadline for subsequent task runs. A parallel scheduler sets one
// deadline for the whole run instead of per task.
func (E *Engine) SetDeadline(t time.Time) { E.engine.deadline = t }

// Stats returns the engine's cumulative statistics: a full Run resets
// them, while the per-task entry points (RunRoot, RunRootPair)
// accumulate across calls so a worker's tally is read once at the end.
func (E *Engine) Stats() *Stats {
	E.engine.stats.Kernels = E.engine.sel.Stats()
	return &E.engine.stats
}

// Stopped reports whether the engine has aborted — cancellation,
// deadline, an OnMatch abort, or the embedding cap. Schedulers probing
// through ExpandRoot/ExpandPrefix check it to tell an empty expansion
// from a halted one.
func (E *Engine) Stopped() bool { return E.engine.aborted }

// ResetStats clears the cumulative statistics and the abort flag without
// touching the armed deadline. Schedulers call it once per worker before
// the task loop.
func (E *Engine) ResetStats() {
	deadline := E.engine.deadline
	E.engine.resetRun()
	E.engine.deadline = deadline
}

// RunRoot enumerates the search subtree with the order's start vertex
// pre-assigned to the data vertex v — one scheduler task unit. Results
// accumulate into Stats. It reports false when the search must stop
// (cancellation, deadline, or an OnMatch abort); the caller should then
// stop feeding tasks.
func (E *Engine) RunRoot(v uint32) bool {
	e := &E.engine
	if e.aborted {
		return false
	}
	root := e.phi[0]
	if e.opts.Adaptive {
		a := &e.adaptive
		a.pool = a.pool[:0]
		a.lcOf[root] = append(a.lcOf[root][:0], v)
		a.weightOf[root] = e.activationWeight(root, a.lcOf[root])
		a.pool = append(a.pool, root)
		e.adaptiveRec(0)
		return !e.aborted
	}
	e.assign(root, v)
	if e.opts.FailingSets {
		e.runFS(1)
	} else {
		e.runPlain(1)
	}
	e.unassign(root, v)
	return !e.aborted
}

// probeHalt polls the cancellation flag and deadline once. The probe
// entry points (ExpandRoot, ExpandPrefix, ExpandAdaptiveRoot) expand no
// search nodes, so enterNode's amortized ticker never fires for them;
// each probe call polls directly instead — a degenerate root expansion
// must respond to ctx cancellation and Limits.TimeLimit like any other
// search work.
func (e *engine) probeHalt() bool {
	if e.aborted {
		return true
	}
	if e.opts.Cancel != nil && e.opts.Cancel.Load() {
		e.aborted = true
		return true
	}
	if !e.deadline.IsZero() && time.Now().After(e.deadline) {
		e.stats.TimedOut = true
		e.aborted = true
		return true
	}
	return false
}

// ExpandRoot computes the depth-1 local candidates reached when the
// start vertex maps to v, appended to dst — the task-splitting probe a
// scheduler uses to break one heavy root candidate into finer (root,
// second) task units for RunRootPair. Candidates conflicting with v are
// already filtered out. Only static orders can be pre-split this way; in
// adaptive mode ExpandRoot returns dst unchanged (see
// ExpandAdaptiveRoot). Once cancelled or past the deadline it returns
// dst unchanged immediately.
func (E *Engine) ExpandRoot(v uint32, dst []uint32) []uint32 {
	e := &E.engine
	if e.opts.Adaptive || e.q.NumVertices() < 2 || e.probeHalt() {
		return dst
	}
	root := e.phi[0]
	e.assign(root, v)
	for _, w := range e.computeLC(1, e.phi[1]) {
		if !e.visited[w] {
			dst = append(dst, w)
		}
	}
	e.unassign(root, v)
	return dst
}

// ExpandPrefix generalizes ExpandRoot to deeper pins: with the order's
// first len(prefix) vertices mapped to prefix, it appends the local
// candidates of the next order vertex to dst — the recursive splitting
// probe. A prefix whose assignments conflict yields no candidates. The
// same cancellation contract as ExpandRoot applies.
func (E *Engine) ExpandPrefix(prefix, dst []uint32) []uint32 {
	e := &E.engine
	L := len(prefix)
	if e.opts.Adaptive || L == 0 || L >= e.q.NumVertices() || e.probeHalt() {
		return dst
	}
	assigned := 0
	for i, v := range prefix {
		if i > 0 && e.visited[v] {
			break
		}
		e.assign(e.phi[i], v)
		assigned++
	}
	if assigned == L {
		for _, w := range e.computeLC(L, e.phi[L]) {
			if !e.visited[w] {
				dst = append(dst, w)
			}
		}
	}
	for i := assigned - 1; i >= 0; i-- {
		e.unassign(e.phi[i], prefix[i])
	}
	return dst
}

// RunPrefix enumerates the subtree with the order's first len(prefix)
// positions pre-assigned to prefix — the task unit produced by the
// recursive cost-model splitter. Prefixes of length 1 and 2 behave like
// RunRoot and RunRootPair. A conflicting prefix (as RunRootPair, only a
// caller fabricating tasks produces one) is a no-op. The same stop
// contract as RunRoot applies.
func (E *Engine) RunPrefix(prefix []uint32) bool {
	e := &E.engine
	if e.aborted {
		return false
	}
	L := len(prefix)
	if L == 0 || L > e.q.NumVertices() || e.opts.Adaptive {
		return true
	}
	assigned := 0
	ok := true
	for i, v := range prefix {
		u := e.phi[i]
		if i > 0 {
			if e.visited[v] {
				ok = false
				break
			}
			if e.symPeers != nil && e.symViolator(u, v) != graph.NoVertex {
				ok = false
				break
			}
		}
		e.assign(u, v)
		assigned++
	}
	if ok {
		if e.opts.FailingSets {
			e.runFS(L)
		} else {
			e.runPlain(L)
		}
	}
	for i := assigned - 1; i >= 0; i-- {
		e.unassign(e.phi[i], prefix[i])
	}
	return !e.aborted
}

// RunRootPair enumerates the subtree with the first two order positions
// pre-assigned to (v, w) — the fine-grained task unit produced by
// ExpandRoot. The same stop contract as RunRoot applies.
func (E *Engine) RunRootPair(v, w uint32) bool {
	e := &E.engine
	if e.aborted {
		return false
	}
	root, second := e.phi[0], e.phi[1]
	e.assign(root, v)
	if e.visited[w] {
		// v == w conflict; ExpandRoot filters these, so only a caller
		// fabricating tasks gets here.
		e.unassign(root, v)
		return true
	}
	if e.symPeers != nil && e.symViolator(second, w) != graph.NoVertex {
		e.unassign(root, v)
		return true
	}
	e.assign(second, w)
	if e.opts.FailingSets {
		e.runFS(2)
	} else {
		e.runPlain(2)
	}
	e.unassign(second, w)
	e.unassign(root, v)
	return !e.aborted
}

type engine struct {
	q, g  *graph.Graph
	cand  [][]uint32
	space *candspace.Space
	phi   []graph.Vertex
	opts  Options

	pos    []int            // query vertex -> position in phi
	bwd    [][]graph.Vertex // per depth: backward neighbors of phi[depth]
	parent []graph.Vertex   // per depth: designated parent (NoVertex at roots)

	// VF2++ cutoff requirements: per depth, the labels (with counts)
	// among the forward neighbors of phi[depth].
	fwdReq  [][]labelNeed
	counter *graph.LabelCounter

	embedding []uint32 // per query vertex
	candIdx   []int    // per query vertex: index of embedding in cand[u]
	mapped    []bool   // per query vertex
	visited   []bool   // per data vertex

	// symPeers[u] lists u's co-class members under symmetry breaking;
	// symPos[u] is u's position within its class (-1 when unclassed).
	symPeers [][]graph.Vertex
	symPos   []int

	lcBuf    [][]uint32            // per depth local-candidate buffer
	sel      intersect.Selector    // kernel dispatcher (owns k-way scratch)
	setsBuf  [][]uint32            // transient argument buffer for Selector.Many
	viewsBuf []intersect.BlockView // transient block views paralleling setsBuf
	useViews bool                  // space has a materialized block layout

	deadline    time.Time
	clockTicker int
	aborted     bool
	prof        *SearchProfile

	fullMask bitset.Mask64
	stats    Stats

	// adaptive mode state (see adaptive.go)
	adaptive adaptiveState
}

type labelNeed struct {
	label graph.Label
	count int32
}

// prepare computes per-depth backward neighbor lists and designated
// parents, and validates that every non-initial order prefix is
// connected.
func (e *engine) prepare() error {
	n := e.q.NumVertices()
	e.bwd = make([][]graph.Vertex, n)
	e.parent = make([]graph.Vertex, n)
	for depth, u := range e.phi {
		e.parent[depth] = graph.NoVertex
		for _, un := range e.q.Neighbors(u) {
			if e.pos[un] < depth {
				e.bwd[depth] = append(e.bwd[depth], un)
			}
		}
		if depth > 0 && len(e.bwd[depth]) == 0 && !e.opts.Adaptive {
			return fmt.Errorf("enumerate: order prefix of length %d is disconnected at u%d", depth+1, u)
		}
		// Designated parent: prefer a backward neighbor whose pair is
		// materialized in the space (matters for the tree-edge variant),
		// falling back to the earliest-positioned backward neighbor.
		for _, un := range e.bwd[depth] {
			if e.space != nil && e.space.HasPair(un, u) {
				e.parent[depth] = un
				break
			}
		}
		if e.parent[depth] == graph.NoVertex && len(e.bwd[depth]) > 0 {
			e.parent[depth] = e.bwd[depth][0]
		}
	}
	if e.opts.VF2PPRules {
		e.counter = graph.NewLabelCounter(graph.MaxLabelOf(e.q, e.g))
		e.fwdReq = make([][]labelNeed, n)
		for depth, u := range e.phi {
			e.counter.Reset()
			for _, un := range e.q.Neighbors(u) {
				if e.pos[un] > depth {
					e.counter.Add(e.q.Label(un))
				}
			}
			for _, l := range e.counter.Touched() {
				e.fwdReq[depth] = append(e.fwdReq[depth], labelNeed{l, e.counter.Count(l)})
			}
		}
	}
	if len(e.opts.SymmetryClasses) > 0 {
		e.symPeers = make([][]graph.Vertex, n)
		e.symPos = make([]int, n)
		for i := range e.symPos {
			e.symPos[i] = -1
		}
		for _, class := range e.opts.SymmetryClasses {
			for i, u := range class {
				if int(u) >= n || e.symPos[u] >= 0 {
					return fmt.Errorf("enumerate: invalid symmetry classes (vertex %d out of range or repeated)", u)
				}
				e.symPos[u] = i
				for j, up := range class {
					if j != i {
						e.symPeers[u] = append(e.symPeers[u], up)
					}
				}
			}
		}
	}
	if e.opts.Adaptive {
		e.initAdaptive()
	}
	// Kernel dispatch: IntersectBlock pins the block kernel (the Figure
	// 10 arm — Options.Kernel is ignored there); Intersect follows the
	// configured policy. Without a materialized block layout the
	// adaptive policy degrades to exactly the Hybrid merge/gallop
	// switch.
	pol := e.opts.Kernel
	if e.opts.Local == IntersectBlock {
		pol = intersect.PolicyBlock
	}
	e.sel.SetPolicy(pol)
	e.useViews = e.space != nil && e.space.HasBlocks()
	return nil
}

// symViolator returns the mapped co-class peer whose assignment makes v
// an out-of-order choice for u (class members must carry increasing
// data-vertex ids), or NoVertex if v is admissible.
func (e *engine) symViolator(u graph.Vertex, v uint32) graph.Vertex {
	if e.symPeers == nil {
		return graph.NoVertex
	}
	for _, p := range e.symPeers[u] {
		if !e.mapped[p] {
			continue
		}
		if e.symPos[p] < e.symPos[u] {
			if e.embedding[p] >= v {
				return p
			}
		} else if e.embedding[p] <= v {
			return p
		}
	}
	return graph.NoVertex
}

// enterNode accounts a search node and polls limits. It returns false if
// the search must stop.
func (e *engine) enterNode() bool {
	e.stats.Nodes++
	e.clockTicker++
	if e.clockTicker >= timeCheckInterval {
		e.clockTicker = 0
		if e.opts.Cancel != nil && e.opts.Cancel.Load() {
			e.aborted = true
			return false
		}
		if !e.deadline.IsZero() && time.Now().After(e.deadline) {
			e.stats.TimedOut = true
			e.aborted = true
			return false
		}
	}
	return true
}

// emit records a completed embedding. It returns false if the search
// must stop.
func (e *engine) emit() bool {
	e.stats.Embeddings++
	if e.opts.OnMatch != nil && !e.opts.OnMatch(e.embedding) {
		e.aborted = true
		return false
	}
	if e.opts.MaxEmbeddings > 0 && e.stats.Embeddings >= e.opts.MaxEmbeddings {
		e.stats.LimitHit = true
		e.aborted = true
		return false
	}
	return true
}

// assign maps query vertex u to data vertex v, recording the candidate
// index when the auxiliary structure is in use. Homomorphism mode skips
// the injectivity bookkeeping.
func (e *engine) assign(u graph.Vertex, v uint32) {
	e.embedding[u] = v
	e.mapped[u] = true
	if !e.opts.Homomorphism {
		e.visited[v] = true
	}
	if e.space != nil {
		e.candIdx[u] = e.space.CandidateIndex(u, v)
	}
}

func (e *engine) unassign(u graph.Vertex, v uint32) {
	e.mapped[u] = false
	if !e.opts.Homomorphism {
		e.visited[v] = false
	}
}

// runPlain is the recursion of Algorithm 1 without failing sets. It
// returns false when the search was aborted by a limit.
func (e *engine) runPlain(depth int) bool {
	if !e.enterNode() {
		return false
	}
	if depth == e.q.NumVertices() {
		if e.prof != nil {
			// Leaves carry no LC but are search nodes: counting them keeps
			// sum(Nodes) == Stats.Nodes and Nodes[n] == Stats.Embeddings,
			// the reconciliation EXPLAIN relies on.
			e.prof.Nodes[depth]++
		}
		return e.emit()
	}
	u := e.phi[depth]
	var kpre intersect.KernelStats
	if e.prof != nil {
		kpre = e.sel.Stats()
	}
	lc := e.computeLC(depth, u)
	if e.prof != nil {
		e.prof.addKernelDelta(depth, kpre, e.sel.Stats())
		e.prof.Nodes[depth]++
		e.prof.Candidates[depth] += uint64(len(lc))
		if len(lc) == 0 {
			e.prof.EmptyLC[depth]++
		}
	}
	for _, v := range lc {
		if e.visited[v] {
			if e.prof != nil {
				e.prof.Conflicts[depth]++
			}
			continue
		}
		if e.symPeers != nil && e.symViolator(u, v) != graph.NoVertex {
			if e.prof != nil {
				e.prof.SymmetrySkips[depth]++
			}
			continue
		}
		if e.prof != nil {
			e.prof.Extended[depth]++
		}
		e.assign(u, v)
		cont := e.runPlain(depth + 1)
		e.unassign(u, v)
		if !cont {
			return false
		}
	}
	return true
}

// runFS is the recursion with failing-sets pruning. The returned mask is
// the failing set of the subtree rooted at the current node; fullMask
// means "a match was found below (or nothing can be pruned)".
func (e *engine) runFS(depth int) bitset.Mask64 {
	if !e.enterNode() {
		return e.fullMask
	}
	if depth == e.q.NumVertices() {
		if e.prof != nil {
			e.prof.Nodes[depth]++
		}
		e.emit()
		return e.fullMask
	}
	u := e.phi[depth]
	var kpre intersect.KernelStats
	if e.prof != nil {
		kpre = e.sel.Stats()
	}
	lc := e.computeLC(depth, u)
	if e.prof != nil {
		e.prof.addKernelDelta(depth, kpre, e.sel.Stats())
		e.prof.Nodes[depth]++
		e.prof.Candidates[depth] += uint64(len(lc))
		if len(lc) == 0 {
			e.prof.EmptyLC[depth]++
		}
	}
	if len(lc) == 0 {
		// Emptyset class: the failure involves u and the vertices whose
		// mappings constrained LC.
		f := bitset.Mask64(0).With(uint32(u))
		for _, un := range e.bwd[depth] {
			f = f.With(uint32(un))
		}
		return f
	}
	var accum bitset.Mask64
	for _, v := range lc {
		var child bitset.Mask64
		if e.visited[v] {
			// Conflict class: u collides with the vertex already mapped
			// to v.
			child = bitset.Mask64(0).With(uint32(u)).With(uint32(e.ownerOf(v)))
			if e.prof != nil {
				e.prof.Conflicts[depth]++
			}
		} else if p := e.symViolator(u, v); e.symPeers != nil && p != graph.NoVertex {
			// Symmetry violation: analogous to a conflict — the failure
			// involves u and the peer whose mapping orders v out.
			child = bitset.Mask64(0).With(uint32(u)).With(uint32(p))
			if e.prof != nil {
				e.prof.SymmetrySkips[depth]++
			}
		} else {
			if e.prof != nil {
				e.prof.Extended[depth]++
			}
			e.assign(u, v)
			child = e.runFS(depth + 1)
			e.unassign(u, v)
			if e.aborted {
				return e.fullMask
			}
		}
		if child != e.fullMask && !child.Has(uint32(u)) {
			// The failure below does not involve u: every sibling
			// assignment of u fails identically, so skip them. If an
			// earlier sibling's subtree contained a match, this node
			// must still report fullMask so no ancestor prunes it away.
			if e.prof != nil {
				e.prof.FailingSetSkips[depth]++
			}
			if accum == e.fullMask {
				return e.fullMask
			}
			return child
		}
		accum = accum.Union(child)
	}
	// The set of local candidates iterated above is itself a function of
	// the backward neighbors' mappings: remapping one of them could
	// introduce candidates no child mask accounts for. The node's
	// failing set therefore always includes u and its backward
	// neighbors. (A full accum — match found — stays full.)
	accum = accum.With(uint32(u))
	for _, un := range e.bwd[depth] {
		accum = accum.With(uint32(un))
	}
	return accum
}

// ownerOf returns the query vertex currently mapped to data vertex v.
// Only called on conflicts, so a linear scan over the (small) query is
// fine and avoids a |V(G)|-sized reverse index.
func (e *engine) ownerOf(v uint32) graph.Vertex {
	for u := 0; u < e.q.NumVertices(); u++ {
		if e.mapped[u] && e.embedding[u] == v {
			return graph.Vertex(u)
		}
	}
	// Unreachable for a consistent engine state.
	panic("enumerate: conflict vertex has no owner")
}
