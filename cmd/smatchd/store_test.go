package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/service"
	"subgraphmatching/internal/store"
	"subgraphmatching/internal/testutil"
)

// canonicalMatch strips the nondeterministic timing fields from a
// /match JSON response (or each line of a streamed response), leaving
// exactly the fields that must be byte-identical across a restart:
// embeddings, every streamed embedding line, node counts and flags.
func canonicalMatch(t *testing.T, body string) string {
	t.Helper()
	var out []string
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" {
			continue
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			// Non-stream responses are one indented JSON object spanning
			// many lines; fall through and parse the whole body once.
			m = map[string]json.RawMessage{}
			if err := json.Unmarshal([]byte(body), &m); err != nil {
				t.Fatalf("bad match body: %v\n%s", err, body)
			}
			return canonicalFields(m)
		}
		if r, ok := m["result"]; ok {
			var rm map[string]json.RawMessage
			if err := json.Unmarshal(r, &rm); err != nil {
				t.Fatal(err)
			}
			out = append(out, "result:"+canonicalFields(rm))
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

func canonicalFields(m map[string]json.RawMessage) string {
	keep := []string{"embeddings", "nodes", "timed_out", "limit_hit", "error"}
	var parts []string
	for _, k := range keep {
		if v, ok := m[k]; ok {
			parts = append(parts, k+"="+string(v))
		}
	}
	return strings.Join(parts, ",")
}

// durableServer mounts the full smatchd handler over a service backed
// by a durable store on dir.
func durableServer(t *testing.T, dir string, mmap bool) (*httptest.Server, *service.Service, *store.Manager) {
	t.Helper()
	svc := service.New(service.Config{})
	mgr, err := store.Open(svc, store.Options{Dir: dir, MMap: mmap})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(svc, serverOptions{store: mgr}))
	t.Cleanup(ts.Close)
	return ts, svc, mgr
}

// TestKillRestartRecovery is the acceptance test: register several
// graphs (including a replace and a binary snapshot upload) over HTTP,
// run a query against each, kill the process without any shutdown
// (abandoning the manager un-Closed is exactly what SIGKILL leaves
// behind — the page cache holds everything fsynced), restart on the
// same directory, and require /graphs and /match responses to be
// byte-identical, with generations strictly monotonic across the
// restart.
func TestKillRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(23))
	graphs := map[string]*graph.Graph{
		"ga": testutil.RandomGraph(rng, 150, 500, 3),
		"gb": testutil.RandomGraph(rng, 200, 800, 4),
		"gc": testutil.RandomGraph(rng, 100, 300, 2),
	}
	query := testutil.RandomConnectedQuery(rng, graphs["ga"], 4)
	queryText := graphText(t, query)

	ts1, svc1, _ := durableServer(t, dir, false)
	for name, g := range graphs {
		resp, body := do(t, "PUT", ts1.URL+"/graphs/"+name, graphText(t, g))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("register %s = %d %q", name, resp.StatusCode, body)
		}
	}
	// Hot-swap gb so recovery must surface the replacement generation.
	graphs["gb"] = testutil.RandomGraph(rng, 220, 900, 4)
	resp, body := do(t, "PUT", ts1.URL+"/graphs/gb?replace=1", graphText(t, graphs["gb"]))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("replace gb = %d %q", resp.StatusCode, body)
	}
	// Register gd through the binary snapshot upload path.
	graphs["gd"] = testutil.RandomGraph(rng, 120, 400, 3)
	snapBytes, _, err := store.Encode(graphs["gd"])
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("PUT", ts1.URL+"/graphs/gd", bytes.NewReader(snapBytes))
	req.Header.Set("Content-Type", "application/x-smatch-snapshot")
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusCreated {
		t.Fatalf("snapshot upload = %d", hresp.StatusCode)
	}
	// And one that must NOT survive: register then delete.
	resp, _ = do(t, "PUT", ts1.URL+"/graphs/doomed", graphText(t, graphs["gc"]))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register doomed = %d", resp.StatusCode)
	}
	if resp, _ = do(t, "DELETE", ts1.URL+"/graphs/doomed", ""); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete doomed = %d", resp.StatusCode)
	}

	_, graphsBefore := do(t, "GET", ts1.URL+"/graphs", "")
	matchBefore := make(map[string]string)
	for name := range graphs {
		_, body := do(t, "POST", ts1.URL+"/match?graph="+name+"&limit=100&stream=1", queryText)
		matchBefore[name] = canonicalMatch(t, body)
	}
	var before []service.GraphInfo
	if err := json.Unmarshal([]byte(graphsBefore), &before); err != nil {
		t.Fatalf("bad /graphs body: %v", err)
	}

	// Kill: close the listener and the service, abandon the manager.
	ts1.Close()
	svc1.Close()

	ts2, _, mgr2 := durableServer(t, dir, false)
	rec := mgr2.RecoveryStats()
	if rec.Recovered != len(graphs) || rec.Skipped != 0 {
		t.Fatalf("recovered %d skipped %d, want %d/0", rec.Recovered, rec.Skipped, len(graphs))
	}

	_, graphsAfter := do(t, "GET", ts2.URL+"/graphs", "")
	var after []service.GraphInfo
	if err := json.Unmarshal([]byte(graphsAfter), &after); err != nil {
		t.Fatalf("bad /graphs body: %v", err)
	}
	// /graphs must carry the same names, shapes and generations.
	// RegisteredAt legitimately differs (recovery time), so compare the
	// identity-bearing fields, not raw bytes.
	if len(after) != len(before) {
		t.Fatalf("%d graphs after restart, want %d\nbefore: %s\nafter: %s", len(after), len(before), graphsBefore, graphsAfter)
	}
	maxGen := uint64(0)
	for i := range before {
		b, a := before[i], after[i]
		if a.Name != b.Name || a.Vertices != b.Vertices || a.Edges != b.Edges ||
			a.Labels != b.Labels || a.Generation != b.Generation {
			t.Fatalf("graph %d: %+v, want %+v", i, a, b)
		}
		if b.Generation > maxGen {
			maxGen = b.Generation
		}
	}

	// /match responses must be byte-identical for every graph — every
	// streamed embedding line and the result counts (timing fields are
	// the only thing canonicalMatch strips; they measure the clock, not
	// the graph).
	for name := range graphs {
		_, body := do(t, "POST", ts2.URL+"/match?graph="+name+"&limit=100&stream=1", queryText)
		if got := canonicalMatch(t, body); got != matchBefore[name] {
			t.Fatalf("graph %s: /match differs after restart\nbefore: %s\nafter: %s", name, matchBefore[name], got)
		}
	}
	// The deleted graph stays deleted.
	if resp, _ := do(t, "POST", ts2.URL+"/match?graph=doomed&limit=1", queryText); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("doomed graph resolved after restart: %d", resp.StatusCode)
	}

	// A post-restart registration must land strictly above every
	// generation the old process ever issued.
	resp, body = do(t, "PUT", ts2.URL+"/graphs/fresh", graphText(t, graphs["gc"]))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-restart register = %d %q", resp.StatusCode, body)
	}
	var fresh service.GraphInfo
	if err := json.Unmarshal([]byte(body), &fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.Generation <= maxGen {
		t.Fatalf("post-restart generation %d not above pre-kill max %d", fresh.Generation, maxGen)
	}

	// /healthz surfaces the store section.
	_, health := do(t, "GET", ts2.URL+"/healthz", "")
	var h healthResponse
	if err := json.Unmarshal([]byte(health), &h); err != nil {
		t.Fatal(err)
	}
	if h.Store == nil || h.Store.Dir != dir || h.Store.Recovery.Recovered != len(graphs) {
		t.Fatalf("healthz store section: %+v", h.Store)
	}
	// /metrics exposes the store families.
	_, metrics := do(t, "GET", ts2.URL+"/metrics", "")
	for _, fam := range []string{"smatch_store_snapshots_total", "smatch_store_wal_records_total",
		"smatch_store_recovery_seconds", "smatch_store_bytes"} {
		if !strings.Contains(metrics, fam) {
			t.Errorf("/metrics missing %s", fam)
		}
	}
}

// TestMMapMatchesHeapEmbeddings runs the same queries over a heap-
// loaded and an mmap-loaded recovery of the same directory: results
// must be byte-identical.
func TestMMapMatchesHeapEmbeddings(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(31))
	g := testutil.RandomGraph(rng, 300, 1200, 4)
	queries := make([]string, 3)
	for i := range queries {
		queries[i] = graphText(t, testutil.RandomConnectedQuery(rng, g, 4+i))
	}

	ts0, svc0, _ := durableServer(t, dir, false)
	if resp, body := do(t, "PUT", ts0.URL+"/graphs/g", graphText(t, g)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register = %d %q", resp.StatusCode, body)
	}
	ts0.Close()
	svc0.Close()

	run := func(mmap bool) []string {
		ts, svc, mgr := durableServer(t, dir, mmap)
		out := make([]string, len(queries))
		for i, q := range queries {
			// stream=1 exercises the full enumeration path over the
			// (possibly mmap'd) adjacency, embedding by embedding.
			_, body := do(t, "POST", ts.URL+"/match?graph=g&limit=500&stream=1", q)
			out[i] = canonicalMatch(t, body)
		}
		ts.Close()
		svc.Close()
		if err := mgr.Close(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	heap := run(false)
	mapped := run(true)
	for i := range heap {
		if heap[i] != mapped[i] {
			t.Fatalf("query %d: mmap and heap runs differ\nheap: %.200s\nmmap: %.200s", i, heap[i], mapped[i])
		}
	}
}

// TestStoreStressHTTP churns registrations through the HTTP surface
// with a durable store attached — the race-stress entry point for this
// package's persistence path.
func TestStoreStressHTTP(t *testing.T) {
	dir := t.TempDir()
	ts, svc, mgr := durableServer(t, dir, false)
	defer func() {
		svc.Close()
		mgr.Close()
	}()
	rng := rand.New(rand.NewSource(5))
	pool := make([]string, 3)
	for i := range pool {
		pool[i] = graphText(t, testutil.RandomGraph(rng, 50, 150, 3))
	}
	iters := 40
	if testing.Short() {
		iters = 10
	}
	for i := 0; i < iters; i++ {
		name := fmt.Sprintf("s%d", i%4)
		resp, _ := do(t, "PUT", ts.URL+"/graphs/"+name+"?replace=1", pool[i%len(pool)])
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("iter %d: register = %d", i, resp.StatusCode)
		}
		if i%7 == 3 {
			if resp, _ := do(t, "DELETE", ts.URL+"/graphs/"+name, ""); resp.StatusCode != http.StatusNoContent {
				t.Fatalf("iter %d: delete = %d", i, resp.StatusCode)
			}
		}
	}
	st := mgr.Stats()
	if st.Graphs == 0 || st.SnapBytes == 0 {
		t.Fatalf("store stats after churn: %+v", st)
	}
}
