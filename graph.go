package subgraphmatching

import (
	"io"

	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/store"
)

// Graph is an immutable undirected vertex-labeled graph in compressed
// sparse row form. Construct one with a Builder, FromEdges, the parsers,
// or the synthetic generators.
type Graph = graph.Graph

// Builder accumulates vertices and edges and produces an immutable
// Graph.
type Builder = graph.Builder

// Vertex identifies a vertex of a Graph (0..n-1).
type Vertex = graph.Vertex

// Label is a vertex label.
type Label = graph.Label

// NoVertex is the "no vertex" sentinel.
const NoVertex = graph.NoVertex

// NewBuilder returns a Builder sized for roughly n vertices and m edges.
func NewBuilder(n, m int) *Builder { return graph.NewBuilder(n, m) }

// FromEdges builds a graph from a per-vertex label slice and an edge
// list.
func FromEdges(labels []Label, edges [][2]Vertex) (*Graph, error) {
	return graph.FromEdges(labels, edges)
}

// LoadGraph reads a graph file: either the text format used by the
// paper's released code,
//
//	t <numVertices> <numEdges>
//	v <id> <label> <degree>
//	e <u> <v>
//
// or a binary snapshot written by SaveSnapshot / smatch -save (detected
// by its magic bytes and checksum-verified on load).
func LoadGraph(path string) (*Graph, error) { return store.LoadGraphFile(path) }

// SaveSnapshot writes g to a checksummed binary snapshot — the durable
// store's format, around two orders of magnitude faster to load than
// the text format and loadable by LoadGraph, smatch, and smatchd.
func SaveSnapshot(path string, g *Graph) error {
	_, _, err := store.WriteSnapshotFile(path, g)
	return err
}

// ParseGraph reads a graph in the text format from r.
func ParseGraph(r io.Reader) (*Graph, error) { return graph.Parse(r) }

// SaveGraph writes g to a file in the text format.
func SaveGraph(path string, g *Graph) error { return graph.Save(path, g) }

// LoadEdgeList reads a SNAP-style whitespace-separated edge list ("u v"
// per line, '#'/'%' comments, arbitrary vertex ids), compacting ids and
// assigning labels uniformly at random from numLabels labels — the
// paper's methodology for unlabeled datasets. Deterministic in seed.
func LoadEdgeList(path string, numLabels int, seed int64) (*Graph, error) {
	return graph.LoadEdgeList(path, numLabels, seed)
}

// ParseEdgeList is LoadEdgeList over an io.Reader.
func ParseEdgeList(r io.Reader, numLabels int, seed int64) (*Graph, error) {
	return graph.ParseEdgeList(r, numLabels, seed)
}

// WriteGraph serializes g in the text format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Write(w, g) }

// LoadQueryDir loads every *.graph file in a directory sorted by
// filename — the layout cmd/genquery writes query sets in.
func LoadQueryDir(dir string) ([]*Graph, error) { return graph.LoadDir(dir) }
