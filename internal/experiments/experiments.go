// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 5). Each experiment renders the same rows/series
// the paper reports, over the dataset stand-ins of internal/datasets
// (see DESIGN.md for the substitution rationale). Absolute numbers differ
// from the paper — the stand-ins are scaled down and the hardware
// differs — but the comparative shapes are the deliverable.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/datasets"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/workload"
)

// Env configures an experiment run. The defaults are scaled down from
// the paper's methodology (200 queries per set, five-minute limit) so the
// full suite completes on a laptop; raise them to approach the paper's
// setup.
type Env struct {
	Out io.Writer

	// Datasets to include (paper short names); nil = all eight.
	Datasets []string
	// PerSet is the number of queries per query set (paper: 200).
	PerSet int
	// TimeLimit is the per-query enumeration budget (paper: 5 minutes).
	TimeLimit time.Duration
	// MaxEmbeddings stops a query after this many matches (paper: 1e5).
	MaxEmbeddings uint64
	// Seed makes query generation deterministic.
	Seed int64
	// SpectrumOrders is the number of random orders sampled per query in
	// the Figure 14 spectrum analysis (paper: 1000).
	SpectrumOrders int

	// CSV, when non-nil, additionally receives every result table as
	// CSV (for plotting pipelines).
	CSV io.Writer
}

// render writes a result table to the text output and, when configured,
// to the CSV sink.
func (e Env) render(t *workload.Table) {
	t.Render(e.Out)
	if e.CSV != nil {
		_ = t.RenderCSV(e.CSV)
	}
}

// WithDefaults fills unset fields.
func (e Env) WithDefaults() Env {
	if e.Out == nil {
		panic("experiments: Env.Out must be set")
	}
	if e.Datasets == nil {
		for _, i := range datasets.Catalog() {
			e.Datasets = append(e.Datasets, i.Name)
		}
	}
	if e.PerSet == 0 {
		e.PerSet = 10
	}
	if e.TimeLimit == 0 {
		e.TimeLimit = time.Second
	}
	if e.MaxEmbeddings == 0 {
		e.MaxEmbeddings = 100_000
	}
	if e.Seed == 0 {
		e.Seed = 1
	}
	if e.SpectrumOrders == 0 {
		e.SpectrumOrders = 200
	}
	return e
}

// Limits returns the per-query limits of the environment.
func (e Env) Limits() core.Limits {
	return core.Limits{MaxEmbeddings: e.MaxEmbeddings, TimeLimit: e.TimeLimit}
}

// Runner is an experiment entry point.
type Runner func(Env) error

// Registry maps experiment names (as used by cmd/experiments) to
// runners, in the paper's presentation order.
func Registry() []struct {
	Name, Description string
	Run               Runner
} {
	return []struct {
		Name, Description string
		Run               Runner
	}{
		{"fig7", "preprocessing time of the filtering methods", Fig7},
		{"fig8", "candidate-set sizes vs LDF and STEADY baselines", Fig8},
		{"fig9", "speedup from set-intersection local candidates", Fig9},
		{"fig10", "hybrid vs QFilter-style set intersection", Fig10},
		{"fig11", "enumeration time of the ordering methods", Fig11},
		{"fig12", "std-dev of enumeration time by query size", Fig12},
		{"fig13", "query time categories per ordering method", Fig13},
		{"table5", "unsolved queries without/with failing sets", Table5},
		{"fig14", "spectrum analysis of random matching orders", Fig14},
		{"table6", "speedup of best sampled order over GQL/RI", Table6},
		{"fig15", "effect of failing-sets pruning", Fig15},
		{"fig16", "overall performance of optimized vs original algorithms", Fig16},
		{"fig17", "scalability on synthetic RMAT graphs", Fig17},
		{"fig18", "scalability on the friendster stand-in", Fig18},
		{"ablation", "design-choice sweeps beyond the paper's figures", Ablation},
	}
}

// Lookup finds a registered experiment by name.
func Lookup(name string) (Runner, error) {
	for _, e := range Registry() {
		if e.Name == name {
			return e.Run, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", name)
}

// --- dataset and query-set caches -----------------------------------

var (
	cacheMu    sync.Mutex
	graphCache = map[string]*graph.Graph{}
	setCache   = map[string][]workload.QuerySet{}
)

// dataGraph returns the (cached) stand-in graph for a dataset name.
func dataGraph(name string) (*graph.Graph, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if g, ok := graphCache[name]; ok {
		return g, nil
	}
	g, err := datasets.Generate(name)
	if err != nil {
		return nil, err
	}
	graphCache[name] = g
	return g, nil
}

// querySets returns the (cached) standard query sets for a dataset.
func querySets(env Env, name string) ([]workload.QuerySet, error) {
	key := fmt.Sprintf("%s/%d/%d", name, env.PerSet, env.Seed)
	cacheMu.Lock()
	if qs, ok := setCache[key]; ok {
		cacheMu.Unlock()
		return qs, nil
	}
	cacheMu.Unlock()
	g, err := dataGraph(name)
	if err != nil {
		return nil, err
	}
	info, err := datasets.Lookup(name)
	if err != nil {
		return nil, err
	}
	qs := workload.StandardQuerySets(g, info.MaxQuerySize, env.PerSet, env.Seed)
	cacheMu.Lock()
	setCache[key] = qs
	cacheMu.Unlock()
	return qs, nil
}

// defaultSets returns the dataset's default dense and sparse sets: the
// largest size for which each density class exists (the paper defaults
// to Q32D/Q32S, or Q20D/Q20S on hu/wn).
func defaultSets(env Env, name string) (dense, sparse *workload.QuerySet, err error) {
	qs, err := querySets(env, name)
	if err != nil {
		return nil, nil, err
	}
	sort.SliceStable(qs, func(i, j int) bool { return qs[i].Size < qs[j].Size })
	for i := range qs {
		s := &qs[i]
		switch {
		case s.Name[len(s.Name)-1] == 'D':
			dense = s
		case s.Name[len(s.Name)-1] == 'S':
			sparse = s
		}
	}
	if dense == nil && sparse == nil {
		return nil, nil, fmt.Errorf("experiments: dataset %s yielded no dense/sparse query sets", name)
	}
	return dense, sparse, nil
}

// setBySize returns the query set with the given name suffix and size,
// or nil.
func setBySize(qs []workload.QuerySet, name string) *workload.QuerySet {
	for i := range qs {
		if qs[i].Name == name {
			return &qs[i]
		}
	}
	return nil
}

// section prints an experiment header.
func section(w io.Writer, title, paperRef string) {
	fmt.Fprintf(w, "=== %s ===\n", title)
	fmt.Fprintf(w, "(reproduces %s; stand-in datasets, scaled limits — compare shapes, not absolutes)\n\n", paperRef)
}
