package enumerate

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"subgraphmatching/internal/candspace"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/testutil"
)

// TestCancelStopsSearch arms the cooperative cancel flag mid-search and
// verifies the engine stops without reporting a timeout.
func TestCancelStopsSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := testutil.RandomGraph(rng, 400, 8000, 1)
	q := graph.MustFromEdges(make([]graph.Label, 6),
		[][2]graph.Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	cand := filter.RunLDF(q, g)
	space := candspace.BuildFull(q, g, cand)
	phi := graph.NewBFSTree(q, 0).Order

	var cancel atomic.Bool
	done := make(chan *Stats, 1)
	go func() {
		st, err := Run(q, g, cand, space, phi, Options{Local: Intersect, Cancel: &cancel})
		if err != nil {
			t.Error(err)
		}
		done <- st
	}()
	time.Sleep(20 * time.Millisecond)
	cancel.Store(true)
	select {
	case st := <-done:
		if st.TimedOut {
			t.Error("cancel must not be reported as a timeout")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("engine did not honor the cancel flag")
	}
}

// TestCancelPreArmed verifies a search aborts promptly when the flag is
// already set.
func TestCancelPreArmed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := testutil.RandomGraph(rng, 300, 6000, 1)
	q := graph.MustFromEdges(make([]graph.Label, 5),
		[][2]graph.Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	cand := filter.RunLDF(q, g)
	space := candspace.BuildFull(q, g, cand)
	phi := graph.NewBFSTree(q, 0).Order
	var cancel atomic.Bool
	cancel.Store(true)
	start := time.Now()
	st, err := Run(q, g, cand, space, phi, Options{Local: Intersect, Cancel: &cancel})
	if err != nil {
		t.Fatal(err)
	}
	// The flag is polled every timeCheckInterval nodes; the search must
	// stop after at most a few polls, far faster than exhausting the
	// space.
	if time.Since(start) > 2*time.Second {
		t.Errorf("pre-armed cancel took %v", time.Since(start))
	}
	_ = st
}
