// Package core wires the study's components — filtering, ordering,
// auxiliary-structure construction, and enumeration — into the generic
// subgraph matching pipeline of the paper's Algorithm 1, and defines the
// algorithm presets (QuickSI, GraphQL, CFL, CECI, DP-iso, RI, VF2++, the
// paper's recommended Optimized configuration, and the Glasgow CP
// solver).
//
// The decomposition is the paper's primary contribution: an algorithm is
// a (filter, order, local-candidate, optimization) tuple, and any
// combination can be executed and measured, which is how every experiment
// in Section 5 is expressed.
package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"subgraphmatching/internal/candspace"
	"subgraphmatching/internal/enumerate"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/glasgow"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/intersect"
	"subgraphmatching/internal/obs"
	"subgraphmatching/internal/order"
	"subgraphmatching/internal/ullmann"
	"subgraphmatching/internal/vf2"
)

// Config selects one point in the study's design space.
type Config struct {
	// Filter selects the candidate filtering method.
	Filter filter.Method
	// Order selects the ordering method. Ignored when a FixedOrder is
	// supplied.
	Order order.Method
	// FixedOrder, when non-nil, bypasses the ordering method entirely
	// (used by the spectrum analysis of Figure 14).
	FixedOrder []graph.Vertex
	// AutoOrder evaluates every ordering method under the candidate-
	// space cost model and picks the cheapest — the study's "no single
	// ordering dominates" finding turned into a chooser. Requires an
	// auxiliary-structure-based Local method; ignored when FixedOrder is
	// set.
	AutoOrder bool
	// Local selects the local-candidate computation (paper Algorithms
	// 2-5).
	Local enumerate.LocalCandidates
	// Kernel selects the pairwise intersection-kernel policy for the
	// Intersect local method: adaptive per-call selection (the zero
	// value) or one pinned static kernel (merge/gallop/hybrid/block,
	// the Figure 10 arms). PolicyAdaptive and PolicyBlock materialize
	// the flat block layout at build time. IntersectBlock local mode
	// always runs the block kernel and ignores this field.
	Kernel intersect.Policy
	// TreeSpace builds the auxiliary structure only over spanning-tree
	// edges (CFL's compressed path index) instead of all query edges.
	TreeSpace bool
	// FailingSets enables the failing-sets pruning.
	FailingSets bool
	// Adaptive enables DP-iso's dynamic vertex selection; requires an
	// intersection-based Local method.
	Adaptive bool
	// DPWeights computes DP-iso's path-count weight array for the
	// adaptive selection.
	DPWeights bool
	// VF2PPRules enables VF2++'s extra cutoff rules (Direct mode only).
	VF2PPRules bool
	// Homomorphism finds subgraph homomorphisms instead of isomorphisms
	// (injectivity dropped — the WCOJ systems' default semantics, paper
	// Section 2.2). The Filter setting is ignored: only label-based
	// candidate generation is sound without injectivity. Incompatible
	// with SymmetryBreaking, VF2PPRules and UseGlasgow.
	Homomorphism bool
	// SymmetryBreaking detects interchangeable query vertices
	// (neighborhood equivalence classes, the structures behind
	// TurboIso's query compression in Section 3.4), enumerates one
	// canonical embedding per orbit and multiplies the count by the
	// orbit size. OnMatch receives only canonical representatives, and
	// MaxEmbeddings caps canonical embeddings (the reported total may
	// exceed it by the orbit factor).
	SymmetryBreaking bool
	// GQLRounds overrides GraphQL's global-refinement iteration count
	// (0 = default).
	GQLRounds int
	// GQLRadius overrides GraphQL's local-pruning profile radius
	// (0 or 1 = the standard one-hop profile).
	GQLRadius int
	// DPIsoPasses overrides DP-iso's refinement pass count (0 =
	// default).
	DPIsoPasses int
	// UseGlasgow routes the query to the constraint-programming solver;
	// all other fields are ignored.
	UseGlasgow bool
	// UseVF2 routes the query to the classic VF2 state-space engine;
	// all other fields are ignored.
	UseVF2 bool
	// UseUllmann routes the query to Ullmann's 1976 algorithm; all
	// other fields are ignored.
	UseUllmann bool
	// GlasgowMemoryBudget bounds the CP solver's bitset working set
	// (0 = glasgow.DefaultMemoryBudget).
	GlasgowMemoryBudget int64
	// Profile collects per-depth search statistics into Result.Profile.
	// Parallel runs merge the per-worker profiles; shallow-depth counts
	// there differ slightly from a sequential run because pre-assigned
	// task prefixes skip the shared root levels. Not supported by the
	// Glasgow solver.
	Profile bool
}

// Limits bounds a query's execution, mirroring the paper's methodology
// (10^5 embeddings, five minutes per query).
type Limits struct {
	MaxEmbeddings uint64
	TimeLimit     time.Duration
	// Cancel, when non-nil, is polled cooperatively during enumeration:
	// storing true stops the search. The parallel runner additionally
	// uses the same flag as its internal stop signal, so it may itself
	// store true when the embedding cap or an OnMatch abort fires —
	// callers must hand each run its own flag, not a shared long-lived
	// one. This is how context cancellation reaches the engines.
	Cancel *atomic.Bool
	// OnMatch optionally receives every embedding; returning false
	// aborts the search. Sequentially the slice is reused between calls
	// (copy it to retain); under parallel execution calls are serialized,
	// arrive in no particular order, and each receives a private copy
	// the callback may keep.
	OnMatch func(mapping []uint32) bool
	// Parallel runs the enumeration across this many worker goroutines
	// (0 or 1 = sequential). Embedding counts remain exact. Not
	// supported for the VF2/Ullmann engines; Glasgow has its own
	// parallel splitter.
	Parallel int
	// Schedule selects how parallel work is distributed across the
	// workers. The zero value is ScheduleWorkSteal.
	Schedule Schedule
	// SplitFactor tunes when the work-stealing scheduler refines root
	// candidates into finer task units: splitting happens while the root
	// has fewer than Parallel*SplitFactor candidates
	// (0 = DefaultSplitFactor). Negative values are rejected with
	// ErrBadSplitFactor.
	SplitFactor int
	// Split selects how tasks are sized inside the split regime: the
	// cost-model splitter (the zero value — estimate subtree weights,
	// split heavy tasks recursively) or the static expand-everything
	// heuristic. See SplitPolicy.
	Split SplitPolicy
	// Workers sets the worker-goroutine count for the parallelized
	// preprocessing phases — candidate filtering and candidate-space
	// construction (0 = inherit Parallel, 1 = sequential
	// preprocessing). Candidate sets are identical for every worker
	// count, with one documented exception: GraphQL filtering under
	// more than one worker refines in Jacobi rounds, which within the
	// bounded round budget prune a (still sound and complete) superset
	// of the sequential Gauss–Seidel sets.
	Workers int
	// Trace attaches the phase-span breakdown to Result.Trace. Spans
	// are built only at phase boundaries (a handful of allocations per
	// query), never inside the enumeration hot path.
	Trace bool
	// Profile attaches the EXPLAIN/ANALYZE breakdown to Result.Explain:
	// per-filter-stage candidate reduction, the matching order with
	// per-vertex cardinalities, and the per-depth enumeration heat table.
	// Unlike Config.Profile it is a per-request limit, not part of the
	// configuration — a cached plan is shared between profiled and
	// unprofiled requests. Implies per-depth search profiling for the
	// run. Not supported by the external engines (Glasgow/VF2/Ullmann),
	// which have no plan to explain.
	Profile bool
}

// preprocessWorkers resolves the effective preprocessing worker count.
func (l *Limits) preprocessWorkers() int {
	w := l.Workers
	if w == 0 {
		w = l.Parallel
	}
	if w < 1 {
		return 1
	}
	return w
}

// Result reports a query's execution, with the time split the paper
// measures: preprocessing (filtering + auxiliary structure + ordering)
// versus enumeration.
type Result struct {
	Embeddings uint64
	Nodes      uint64
	TimedOut   bool
	LimitHit   bool

	FilterTime time.Duration
	BuildTime  time.Duration
	OrderTime  time.Duration
	EnumTime   time.Duration

	// MeanCandidates is (1/|V(q)|) sum |C(u)|, the Figure 8 metric.
	MeanCandidates float64
	// MemoryBytes is the candidate-set plus auxiliary-structure
	// footprint (Glasgow: the bitset working set).
	MemoryBytes int64
	// Order is the matching order used (nil for Glasgow and adaptive
	// runs, where no static order exists).
	Order []graph.Vertex
	// Profile holds per-depth search statistics when Config.Profile or
	// Limits.Profile was set.
	Profile *enumerate.SearchProfile
	// WorkerProfiles, set on profiled parallel runs, holds each worker's
	// own per-depth profile (Profile is their merge) — the per-worker
	// heat attribution EXPLAIN reports.
	WorkerProfiles []*enumerate.SearchProfile
	// Explain is the EXPLAIN/ANALYZE breakdown, set when Limits.Profile
	// was on: filter-stage reduction, order cardinalities, and the
	// per-depth heat table, all reconciling exactly with this Result's
	// totals.
	Explain *Profile
	// Kernels tallies the pairwise intersection-kernel executions by
	// kernel (the run's kernel mix under Config.Kernel); summed across
	// workers on parallel runs, all zeros for non-intersection locals.
	Kernels intersect.KernelStats
	// WorkerNodes, set on parallel runs, holds the search-tree nodes
	// each worker expanded. Its spread measures scheduler load balance:
	// sum/max is the speedup the task partition would admit on
	// unconstrained cores (the makespan bound), independent of how many
	// CPUs this process actually got.
	WorkerNodes []uint64
	// Workers, set on parallel runs, carries each worker's scheduler
	// tallies: tasks executed, successful and failed steal attempts,
	// and search-tree nodes. Counters are accumulated in worker-local
	// variables and published once at worker exit, so collecting them
	// costs nothing on the task loop.
	Workers []WorkerStats
	// Split, set on parallel runs, reports how the scheduler built its
	// task pool: policy, pool shape, probe work (already folded into
	// Nodes/Kernels), and the cost model's predicted node count —
	// compare PredictedNodes against Nodes-Probes for model accuracy.
	Split *SplitInfo
	// Trace is the phase-span breakdown, set when Limits.Trace was on.
	// For Match the root span is "match" with "preprocess" and
	// "enumerate" children; for MatchPlan it is the "enumerate" span
	// alone (the preprocessing spans live on the plan the caller
	// reused).
	Trace *obs.Span
}

// WorkerStats is one parallel worker's scheduler tally.
type WorkerStats struct {
	// Tasks is the number of task units (root candidates or depth-1
	// pairs) the worker executed.
	Tasks uint64
	// Steals counts successful chunk steals; FailedSteals counts empty
	// victims probed during steal sweeps. A high failed/successful
	// ratio at the end of a run is the normal termination pattern; a
	// high ratio throughout signals task starvation.
	Steals       uint64
	FailedSteals uint64
	// Nodes is the search-tree nodes the worker expanded.
	Nodes uint64
}

// PreprocessTime is FilterTime + BuildTime + OrderTime.
func (r *Result) PreprocessTime() time.Duration {
	return r.FilterTime + r.BuildTime + r.OrderTime
}

// TotalTime is preprocessing plus enumeration.
func (r *Result) TotalTime() time.Duration { return r.PreprocessTime() + r.EnumTime }

// Solved reports whether the query completed within its limits (reaching
// the embedding cap counts as solved, timing out does not).
func (r *Result) Solved() bool { return !r.TimedOut }

// Plan is the reusable product of the preprocessing pipeline for one
// (query, data, config) triple: the filtered candidate sets, the
// auxiliary candidate-space structure, the matching order, DP-iso's
// weight array and the symmetry classes — everything enumeration needs,
// and everything the paper's time split files under "preprocessing".
//
// A Plan is immutable once built. MatchPlan runs enumerate over it
// without mutating any field, so one Plan may serve many concurrent
// MatchPlan calls — this is the contract the serving layer's plan cache
// is built on.
type Plan struct {
	// Query and Data are the graphs the plan was preprocessed for.
	Query, Data *graph.Graph
	// Cfg is the configuration the plan was built under; enumeration
	// replays its Local/FailingSets/Adaptive/... choices.
	Cfg Config
	// Cand holds the filtered candidate sets C(u), indexed by query
	// vertex.
	Cand [][]uint32
	// Space is the candidate-space CSR (nil for Direct/Scan locals).
	Space *candspace.Space
	// Order is the matching order (nil when Empty).
	Order []graph.Vertex
	// Weights is DP-iso's path-count weight array (nil unless
	// Cfg.Adaptive && Cfg.DPWeights).
	Weights [][]float64
	// SymClasses and Orbit carry the symmetry-breaking setup; Orbit is 1
	// when symmetry breaking is off.
	SymClasses [][]graph.Vertex
	Orbit      uint64
	// Empty marks a plan whose filtering produced an empty candidate set:
	// the result is the empty set and enumeration is skipped entirely.
	Empty bool
	// Stages records the filtering method's internal stages with
	// per-query-vertex candidate counts at each boundary — the raw
	// material of EXPLAIN's reduction table. Populated even for Empty
	// plans (the stage that killed the last candidate is exactly what
	// EXPLAIN must show).
	Stages []filter.Stage
	// OrderMethod names how Order was chosen ("gql", "auto:ri", "fixed",
	// ...); empty for Empty plans, which never reach ordering.
	OrderMethod string

	// FilterTime, BuildTime and OrderTime record how long each
	// preprocessing step took when the plan was built — the cost a plan
	// reuse saves.
	FilterTime time.Duration
	BuildTime  time.Duration
	OrderTime  time.Duration
	// MeanCandidates and MemoryBytes describe the candidate structures
	// (the Figure 8 metric and the footprint).
	MeanCandidates float64
	MemoryBytes    int64

	// Span is the preprocessing phase breakdown: a "preprocess" root
	// with "filter" (and its per-stage children on sequential runs),
	// "build" and "order" children. Always populated — span assembly
	// happens once per plan at phase boundaries and is dwarfed by the
	// phases themselves. Immutable once the plan is built: cached plans
	// share it across requests.
	Span *obs.Span
}

// Preprocess runs the preprocessing half of the pipeline — filtering
// (paper Algorithm 1 line 1), auxiliary-structure construction, ordering
// (line 2) and the symmetry-class setup — and returns the resulting
// Plan. workers parallelizes filtering and the candidate-space build
// (1 = sequential). Configurations routed to the external engines have
// no plan; Preprocess reports ErrNoPlan for them.
func Preprocess(q, g *graph.Graph, cfg Config, workers int) (*Plan, error) {
	if q == nil || g == nil {
		return nil, fmt.Errorf("core: %w", ErrNilGraph)
	}
	if cfg.UseGlasgow || cfg.UseVF2 || cfg.UseUllmann {
		return nil, fmt.Errorf("core: %w", ErrNoPlan)
	}
	if q.NumVertices() == 0 {
		return nil, fmt.Errorf("core: %w", ErrEmptyQuery)
	}
	if !q.IsConnected() {
		return nil, fmt.Errorf("core: %w", ErrDisconnectedQuery)
	}
	if cfg.Homomorphism && (cfg.SymmetryBreaking || cfg.VF2PPRules) {
		return nil, fmt.Errorf("core: homomorphism mode is incompatible with symmetry breaking and VF2++ rules")
	}
	if workers < 1 {
		workers = 1
	}
	plan := &Plan{Query: q, Data: g, Cfg: cfg, Orbit: 1}
	plan.Span = obs.StartSpan("preprocess")

	// Step 1: filtering. The method's internal stages (e.g. GQL's local
	// pruning and refinement rounds, CFL's generate/refine phases)
	// become children of the filter span on sequential and parallel
	// runs alike — the parallel runners close stages at their barriers.
	// Parallel runs additionally attach one zero-duration child per
	// worker carrying its work tally (candidate vertices examined), the
	// preprocessing analogue of the enumerate span's worker children.
	t0 := time.Now()
	stages := filter.StageTrace{PerVertex: true}
	cand, filterTally, err := runFilter(q, g, cfg, workers, &stages)
	if err != nil {
		return nil, err
	}
	plan.Cand = cand
	plan.FilterTime = time.Since(t0)
	plan.MeanCandidates = filter.MeanCandidates(cand)
	fs := obs.NewSpan("filter", t0, plan.FilterTime)
	if cfg.Homomorphism {
		fs.SetAttr("method", "label-only")
	} else {
		fs.SetAttr("method", cfg.Filter.String())
	}
	fs.SetAttr("candidates", filter.TotalCandidates(cand))
	for _, st := range stages.Stages {
		fs.AddChild(obs.NewSpan(st.Name, time.Time{}, st.Duration).
			SetAttr("candidates", st.Candidates))
	}
	for w, work := range filterTally {
		fs.AddChild(obs.NewSpan(fmt.Sprintf("worker-%d", w), time.Time{}, 0).
			SetAttr("work", work))
	}
	plan.Span.AddChild(fs)
	plan.Stages = stages.Stages
	if filter.AnyEmpty(cand) {
		plan.Empty = true
		plan.Span.SetAttr("empty", true)
		plan.Span.End()
		return plan, nil
	}

	// Step 1b: auxiliary structure.
	t0 = time.Now()
	needSpace := cfg.Local == enumerate.TreeEdge || cfg.Local == enumerate.Intersect ||
		cfg.Local == enumerate.IntersectBlock
	if needSpace {
		if cfg.TreeSpace {
			root := filter.CFLRootWorkers(q, g, workers)
			tree := graph.NewBFSTree(q, root)
			if workers > 1 {
				plan.Space = candspace.BuildTreeParallel(q, g, cand, tree.Parent, workers)
			} else {
				plan.Space = candspace.BuildTree(q, g, cand, tree.Parent)
			}
		} else if workers > 1 {
			plan.Space = candspace.BuildFullParallel(q, g, cand, workers)
		} else {
			plan.Space = candspace.BuildFull(q, g, cand)
		}
		// Materialize the flat block layout whenever the enumeration may
		// run the word-parallel kernel: always for IntersectBlock, and
		// for Intersect under the adaptive or pinned-block policy. The
		// flat build is O(targets) time and O(edges) allocations, so the
		// adaptive default pays it unconditionally.
		wantBlocks := cfg.Local == enumerate.IntersectBlock ||
			(cfg.Local == enumerate.Intersect &&
				(cfg.Kernel == intersect.PolicyAdaptive || cfg.Kernel == intersect.PolicyBlock))
		if wantBlocks {
			if workers > 1 {
				plan.Space.MaterializeBlocksParallel(workers)
			} else {
				plan.Space.MaterializeBlocks()
			}
		}
	}
	plan.BuildTime = time.Since(t0)
	if plan.Space != nil {
		plan.MemoryBytes = plan.Space.MemoryBytes()
	} else {
		for _, c := range cand {
			plan.MemoryBytes += int64(len(c)) * 4
		}
	}
	structure := "none"
	if plan.Space != nil {
		if cfg.TreeSpace {
			structure = "tree"
		} else {
			structure = "full"
		}
	}
	bs := obs.NewSpan("build", t0, plan.BuildTime).
		SetAttr("structure", structure).
		SetAttr("memory_bytes", plan.MemoryBytes)
	if plan.Space != nil && plan.Space.HasBlocks() {
		sets, blocks, elems := plan.Space.BlockStats()
		density := 0.0
		if blocks > 0 {
			density = float64(elems) / float64(blocks)
		}
		bs.SetAttr("block_sets", sets).
			SetAttr("block_density", density).
			SetAttr("block_memory_bytes", plan.Space.BlockMemoryBytes())
	}
	plan.Span.AddChild(bs)

	// Step 2: ordering.
	t0 = time.Now()
	phi := cfg.FixedOrder
	orderMethod := "fixed"
	if phi == nil {
		if cfg.AutoOrder && plan.Space != nil {
			var best order.Method
			best, phi, err = order.BestWorkers(q, g, cand, plan.Space, workers)
			orderMethod = "auto:" + best.String()
		} else {
			phi, err = order.ComputeWorkers(cfg.Order, q, g, cand, workers)
			orderMethod = cfg.Order.String()
		}
		if err != nil {
			return nil, err
		}
	}
	if cfg.Adaptive && cfg.DPWeights && plan.Space != nil {
		plan.Weights = order.BuildDPWeightsWorkers(q, plan.Space, phi, workers)
	}
	plan.OrderTime = time.Since(t0)
	plan.Order = phi
	plan.OrderMethod = orderMethod
	plan.Span.AddChild(obs.NewSpan("order", t0, plan.OrderTime).
		SetAttr("method", orderMethod))

	if cfg.SymmetryBreaking {
		plan.SymClasses = NeighborhoodEquivalenceClasses(q)
		plan.Orbit = OrbitMultiplier(plan.SymClasses)
	}
	plan.Span.End()
	return plan, nil
}

// PreprocessTime is the plan's FilterTime + BuildTime + OrderTime — the
// cost each cache hit on this plan saves.
func (p *Plan) PreprocessTime() time.Duration {
	return p.FilterTime + p.BuildTime + p.OrderTime
}

// planBaseBytes approximates the fixed per-plan overhead: the Plan
// struct itself plus the handful of preprocessing spans attached to it.
const planBaseBytes = 512

// SizeBytes estimates the plan's resident heap footprint: the filtered
// candidate sets, the candidate-space CSR, the flat block arena, and the
// order/weight/symmetry slices, plus a fixed struct-and-span overhead.
// Plans are CSR-dominated and wildly uneven across workloads — a
// 4-vertex query over a small graph costs kilobytes while a dense
// candidate space costs tens of megabytes — so the serving layer's plan
// cache budgets by this number instead of by entry count. The query and
// data graphs are NOT charged: the data graph is owned by the registry
// and shared by every plan against it, and the query graph is the
// caller's.
func (p *Plan) SizeBytes() int64 {
	b := int64(planBaseBytes)
	if p.Space != nil {
		// Space.MemoryBytes covers the candidate sets too — the Space
		// aliases the same slices Cand holds, so charging both would
		// double-count.
		b += p.Space.MemoryBytes() + p.Space.BlockMemoryBytes()
	} else {
		for _, c := range p.Cand {
			b += int64(len(c))*4 + 24 // elements + slice header
		}
	}
	b += int64(len(p.Order)) * 4
	for _, w := range p.Weights {
		b += int64(len(w))*8 + 24
	}
	for _, cls := range p.SymClasses {
		b += int64(len(cls))*4 + 24
	}
	return b
}

// MatchPlan runs the enumeration step (paper Algorithm 1 line 3) over a
// previously built plan. The plan is read-only: concurrent MatchPlan
// calls over one shared plan are safe, each allocating its own engines.
// The returned Result carries only enumeration-side fields; the
// preprocessing times live on the plan (a caller reusing a cached plan
// did not pay them).
func MatchPlan(plan *Plan, limits Limits) (*Result, error) {
	if limits.SplitFactor < 0 {
		return nil, fmt.Errorf("core: %w (got %d)", ErrBadSplitFactor, limits.SplitFactor)
	}
	q, g, cfg := plan.Query, plan.Data, plan.Cfg
	res := &Result{MeanCandidates: plan.MeanCandidates, MemoryBytes: plan.MemoryBytes}
	enumStart := time.Now()
	if plan.Empty {
		if limits.Trace {
			res.Trace = obs.NewSpan("enumerate", enumStart, 0).SetAttr("empty", true)
		}
		if limits.Profile {
			res.Explain = explainResult(plan, res)
		}
		return res, nil
	}
	res.Order = plan.Order

	if limits.Parallel > 1 {
		if cfg.SymmetryBreaking || cfg.Homomorphism {
			return nil, fmt.Errorf("core: parallel execution does not yet compose with symmetry breaking or homomorphism mode")
		}
		if err := matchParallel(q, g, plan.Cand, plan.Space, plan.Order, plan.Weights, cfg, limits, limits.Parallel, res); err != nil {
			return nil, err
		}
		if limits.Trace {
			res.Trace = enumerateSpan(enumStart, res)
		}
		if limits.Profile {
			res.Explain = explainResult(plan, res)
		}
		return res, nil
	}
	stats, err := enumerate.Run(q, g, plan.Cand, plan.Space, plan.Order, enumerate.Options{
		Local:           cfg.Local,
		Kernel:          cfg.Kernel,
		FailingSets:     cfg.FailingSets,
		Adaptive:        cfg.Adaptive,
		AdaptiveWeights: plan.Weights,
		VF2PPRules:      cfg.VF2PPRules,
		Homomorphism:    cfg.Homomorphism,
		SymmetryClasses: plan.SymClasses,
		MaxEmbeddings:   limits.MaxEmbeddings,
		TimeLimit:       limits.TimeLimit,
		OnMatch:         limits.OnMatch,
		Cancel:          limits.Cancel,
		Profile:         cfg.Profile || limits.Profile,
	})
	if err != nil {
		return nil, err
	}
	res.Embeddings = stats.Embeddings * plan.Orbit
	res.Nodes = stats.Nodes
	res.TimedOut = stats.TimedOut
	res.LimitHit = stats.LimitHit
	res.EnumTime = stats.Duration
	res.Profile = stats.Profile
	res.Kernels = stats.Kernels
	if limits.Trace {
		res.Trace = enumerateSpan(enumStart, res)
	}
	if limits.Profile {
		res.Explain = explainResult(plan, res)
	}
	return res, nil
}

// enumerateSpan builds the "enumerate" span from a finished result:
// outcome attributes plus one zero-duration child per parallel worker
// carrying that worker's scheduler tallies. Worker children annotate
// rather than time (they all cover the same wall interval), so the
// sum-of-children invariant holds trivially.
func enumerateSpan(start time.Time, res *Result) *obs.Span {
	es := obs.NewSpan("enumerate", start, res.EnumTime).
		SetAttr("embeddings", res.Embeddings).
		SetAttr("nodes", res.Nodes)
	if res.TimedOut {
		es.SetAttr("timed_out", true)
	}
	if res.LimitHit {
		es.SetAttr("limit_hit", true)
	}
	if s := res.Split; s != nil {
		es.SetAttr("split_policy", s.Policy.String()).
			SetAttr("split_tasks", uint64(s.Tasks)).
			SetAttr("split_probes", s.Probes)
		if s.PredictedNodes > 0 {
			es.SetAttr("split_predicted_nodes", s.PredictedNodes)
		}
	}
	for i, n := range res.Kernels {
		if n != 0 {
			es.SetAttr("kernel_"+intersect.Kernel(i).String(), n)
		}
	}
	for w, ws := range res.Workers {
		es.AddChild(obs.NewSpan(fmt.Sprintf("worker-%d", w), time.Time{}, 0).
			SetAttr("tasks", ws.Tasks).
			SetAttr("steals", ws.Steals).
			SetAttr("failed_steals", ws.FailedSteals).
			SetAttr("nodes", ws.Nodes))
	}
	return es
}

// Match runs the full pipeline for one query: Preprocess followed by
// MatchPlan, with the external engines (Glasgow, VF2, Ullmann)
// dispatched directly.
func Match(q, g *graph.Graph, cfg Config, limits Limits) (*Result, error) {
	if q == nil || g == nil {
		return nil, fmt.Errorf("core: %w", ErrNilGraph)
	}
	start := time.Now()
	if cfg.UseGlasgow || cfg.UseVF2 || cfg.UseUllmann {
		if q.NumVertices() == 0 {
			return nil, fmt.Errorf("core: %w", ErrEmptyQuery)
		}
		if !q.IsConnected() {
			return nil, fmt.Errorf("core: %w", ErrDisconnectedQuery)
		}
		if cfg.Homomorphism {
			return nil, fmt.Errorf("core: the external engines do not support homomorphisms")
		}
		var (
			res    *Result
			err    error
			engine string
		)
		switch {
		case cfg.UseGlasgow:
			res, err = matchGlasgow(q, g, cfg, limits)
			engine = "glasgow"
		case cfg.UseVF2:
			res, err = matchVF2(q, g, limits)
			engine = "vf2"
		default:
			res, err = matchUllmann(q, g, limits)
			engine = "ullmann"
		}
		if err != nil {
			return nil, err
		}
		if limits.Trace {
			res.Trace = obs.NewSpan("match", start, time.Since(start)).
				AddChild(enumerateSpan(start, res).SetAttr("engine", engine))
		}
		return res, nil
	}
	plan, err := Preprocess(q, g, cfg, limits.preprocessWorkers())
	if err != nil {
		return nil, err
	}
	res, err := MatchPlan(plan, limits)
	if err != nil {
		return nil, err
	}
	res.FilterTime = plan.FilterTime
	res.BuildTime = plan.BuildTime
	res.OrderTime = plan.OrderTime
	if limits.Trace {
		res.Trace = obs.NewSpan("match", start, time.Since(start)).
			AddChild(plan.Span).
			AddChild(res.Trace)
	}
	return res, nil
}

// runFilter dispatches the configured filtering method. Both the
// sequential and the parallel paths record the method's internal
// stages into tr (same stage names — the parallel runners close stages
// at their barriers); parallel runs additionally return the per-worker
// work tallies (nil on sequential runs).
func runFilter(q, g *graph.Graph, cfg Config, workers int, tr *filter.StageTrace) ([][]uint32, []uint64, error) {
	if cfg.Homomorphism {
		// Structural filters assume injectivity (even LDF's degree
		// condition); only label candidates are sound for
		// homomorphisms.
		return filter.RunLabelOnly(q, g), nil, nil
	}
	switch cfg.Filter {
	case filter.GQL:
		if cfg.GQLRounds > 0 || cfg.GQLRadius > 1 {
			rounds := cfg.GQLRounds
			if rounds == 0 {
				rounds = filter.DefaultGQLRounds
			}
			radius := cfg.GQLRadius
			if radius == 0 {
				radius = 1
			}
			if workers > 1 {
				cand, tally := filter.RunGraphQLRadiusParallelStats(q, g, rounds, radius, workers, tr)
				return cand, tally, nil
			}
			return filter.RunGraphQLRadiusTraced(q, g, rounds, radius, tr), nil, nil
		}
	case filter.DPIso:
		if cfg.DPIsoPasses > 0 {
			if !q.IsConnected() || q.NumVertices() == 0 {
				return nil, nil, fmt.Errorf("core: invalid query")
			}
			if workers > 1 {
				cand, tally := filter.RunDPIsoParallelStats(q, g, cfg.DPIsoPasses, workers, tr)
				return cand, tally, nil
			}
			return filter.RunDPIsoTraced(q, g, cfg.DPIsoPasses, tr), nil, nil
		}
	}
	if workers > 1 {
		return filter.RunParallelTraced(cfg.Filter, q, g, workers, tr)
	}
	cand, err := filter.RunTraced(cfg.Filter, q, g, tr)
	return cand, nil, err
}

func matchVF2(q, g *graph.Graph, limits Limits) (*Result, error) {
	st, err := vf2.Solve(q, g, vf2.Options{
		MaxEmbeddings: limits.MaxEmbeddings,
		TimeLimit:     limits.TimeLimit,
		OnMatch:       limits.OnMatch,
		Cancel:        limits.Cancel,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Embeddings: st.Embeddings,
		Nodes:      st.Nodes,
		TimedOut:   st.TimedOut,
		LimitHit:   st.LimitHit,
		EnumTime:   st.Duration,
	}, nil
}

func matchUllmann(q, g *graph.Graph, limits Limits) (*Result, error) {
	st, err := ullmann.Solve(q, g, ullmann.Options{
		MaxEmbeddings: limits.MaxEmbeddings,
		TimeLimit:     limits.TimeLimit,
		OnMatch:       limits.OnMatch,
		Cancel:        limits.Cancel,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Embeddings: st.Embeddings,
		Nodes:      st.Nodes,
		TimedOut:   st.TimedOut,
		LimitHit:   st.LimitHit,
		EnumTime:   st.Duration,
	}, nil
}

func matchGlasgow(q, g *graph.Graph, cfg Config, limits Limits) (*Result, error) {
	st, err := glasgow.Solve(q, g, glasgow.Options{
		MaxEmbeddings: limits.MaxEmbeddings,
		TimeLimit:     limits.TimeLimit,
		MemoryBudget:  cfg.GlasgowMemoryBudget,
		OnMatch:       limits.OnMatch,
		Parallel:      limits.Parallel,
		Cancel:        limits.Cancel,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Embeddings:  st.Embeddings,
		Nodes:       st.Nodes,
		TimedOut:    st.TimedOut,
		LimitHit:    st.LimitHit,
		EnumTime:    st.Duration,
		MemoryBytes: st.MemoryBytes,
	}, nil
}
