package order

import (
	"subgraphmatching/internal/candspace"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/par"
)

// BuildDPWeights builds DP-iso's weight array over the candidate space:
// for each query vertex u and candidate v, an estimate of the number of
// embeddings of the maximal tree-like path starting at u into the
// candidate space (Section 3.2). A path is tree-like w.r.t. delta when
// every vertex except its start has exactly one backward neighbor; here
// that is computed over the BFS tree induced by delta: the tree children
// of u whose only backward neighbor is u extend u's tree-like paths, and
//
//	W(u, v) = product over such children c of sum_{v' in A[u->c](v)} W(c, v')
//
// evaluated bottom-up along the reverse of delta. Leaves (no tree-like
// children) have weight 1. The result indexes [queryVertex][candIdx] and
// plugs into enumerate.Options.AdaptiveWeights.
func BuildDPWeights(q *graph.Graph, space *candspace.Space, delta []graph.Vertex) [][]float64 {
	return BuildDPWeightsWorkers(q, space, delta, 1)
}

// dpWeightsMinFanout gates the per-level fan-out: levels with fewer
// candidates than this run inline, because spawning goroutines per BFS
// level costs more than the weight sums they would compute.
const dpWeightsMinFanout = 64

// BuildDPWeightsWorkers is BuildDPWeights with each level's
// per-candidate weight sums fanned out over `workers` goroutines. The
// levels themselves stay sequential (level i reads the weights of every
// deeper level), but within a level each candidate's weight depends only
// on already-finished levels, so the output is byte-identical for every
// worker count: w[ci] is a fixed-order product of fixed-order sums
// regardless of which worker computes it.
func BuildDPWeightsWorkers(q *graph.Graph, space *candspace.Space, delta []graph.Vertex, workers int) [][]float64 {
	n := q.NumVertices()
	pos := make([]int, n)
	for i, u := range delta {
		pos[u] = i
	}
	// backCount[u] = number of backward neighbors w.r.t. delta.
	backCount := make([]int, n)
	for u := 0; u < n; u++ {
		for _, un := range q.Neighbors(graph.Vertex(u)) {
			if pos[un] < pos[u] {
				backCount[u]++
			}
		}
	}
	// treeChildren[u]: forward neighbors whose only backward neighbor is u.
	treeChildren := make([][]graph.Vertex, n)
	for u := 0; u < n; u++ {
		uu := graph.Vertex(u)
		for _, un := range q.Neighbors(uu) {
			if pos[un] > pos[uu] && backCount[un] == 1 {
				treeChildren[u] = append(treeChildren[u], un)
			}
		}
	}

	weights := make([][]float64, n)
	for i := n - 1; i >= 0; i-- {
		u := delta[i]
		c := space.Candidates(u)
		w := make([]float64, len(c))
		if len(treeChildren[u]) == 0 {
			// Leaf of the tree-like decomposition: every candidate has
			// weight 1, no adjacency walks to fan out.
			for ci := range w {
				w[ci] = 1
			}
			weights[u] = w
			continue
		}
		pw := workers
		if len(c) < dpWeightsMinFanout {
			pw = 1
		}
		par.Run(pw, len(c), func(_, ci int) uint64 {
			prod := 1.0
			var walked uint64
			for _, child := range treeChildren[u] {
				sum := 0.0
				adj := space.Adjacency(u, child, ci)
				walked += uint64(len(adj))
				for _, v := range adj {
					if j := space.CandidateIndex(child, v); j >= 0 {
						sum += weights[child][j]
					}
				}
				prod *= sum
			}
			w[ci] = prod
			return walked + 1
		})
		weights[u] = w
	}
	return weights
}
