// Package testutil provides shared fixtures for the test suites: the
// paper's Figure 1 running-example graphs, deterministic random graph
// generators, and a brute-force reference matcher that anchors the
// cross-algorithm agreement tests.
package testutil

import (
	"math/rand"

	"subgraphmatching/internal/graph"
)

// Labels used by the paper's running example.
const (
	LabelA graph.Label = 0
	LabelB graph.Label = 1
	LabelC graph.Label = 2
	LabelD graph.Label = 3
	LabelE graph.Label = 4
)

// PaperQuery returns the query graph q of the paper's Figure 1(a):
// u0(A)-u1(B), u0-u2(C), u1-u2, u1-u3(D), u2-u3.
func PaperQuery() *graph.Graph {
	return graph.MustFromEdges(
		[]graph.Label{LabelA, LabelB, LabelC, LabelD},
		[][2]graph.Vertex{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}},
	)
}

// PaperData returns a data graph consistent with every running example in
// the paper's Section 3 (Examples 3.1-3.4): the candidate sets produced by
// each filtering method, the pruning steps, and the single match
// {(u0,v0),(u1,v4),(u2,v5),(u3,v12)} all hold on this graph.
func PaperData() *graph.Graph {
	labels := []graph.Label{
		LabelA, // v0
		LabelC, // v1
		LabelB, // v2
		LabelC, // v3
		LabelB, // v4
		LabelC, // v5
		LabelB, // v6
		LabelC, // v7
		LabelD, // v8
		LabelE, // v9
		LabelD, // v10
		LabelE, // v11
		LabelD, // v12
	}
	edges := [][2]graph.Vertex{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 9},
		{1, 2}, {1, 8},
		{2, 3}, {2, 12},
		{3, 10},
		{4, 5}, {4, 10}, {4, 12},
		{5, 12},
		{6, 7}, {6, 10},
		{9, 11},
	}
	return graph.MustFromEdges(labels, edges)
}

// PaperMatch is the single subgraph isomorphism from PaperQuery to
// PaperData, indexed by query vertex.
func PaperMatch() []graph.Vertex { return []graph.Vertex{0, 4, 5, 12} }

// RandomGraph generates a connected-ish labeled Erdos-Renyi-style graph
// with n vertices, approximately m edges and numLabels labels, using the
// given seed. Used by property-based and agreement tests.
func RandomGraph(rng *rand.Rand, n, m, numLabels int) *graph.Graph {
	b := graph.NewBuilder(n, m+n)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(rng.Intn(numLabels)))
	}
	// Random spanning tree first so the graph is connected, then extra
	// random edges.
	for i := 1; i < n; i++ {
		b.AddEdge(graph.Vertex(i), graph.Vertex(rng.Intn(i)))
	}
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u != v {
			b.AddEdge(graph.Vertex(u), graph.Vertex(v))
		}
	}
	return b.MustBuild()
}

// RandomConnectedQuery extracts a connected query graph with k vertices
// from g via random walk, mirroring the paper's query generation. Returns
// nil if the walk cannot reach k distinct vertices (e.g. tiny components).
func RandomConnectedQuery(rng *rand.Rand, g *graph.Graph, k int) *graph.Graph {
	if g.NumVertices() == 0 || k <= 0 {
		return nil
	}
	start := graph.Vertex(rng.Intn(g.NumVertices()))
	seen := map[graph.Vertex]bool{start: true}
	verts := []graph.Vertex{start}
	cur := start
	for steps := 0; len(verts) < k && steps < 50*k; steps++ {
		ns := g.Neighbors(cur)
		if len(ns) == 0 {
			break
		}
		next := ns[rng.Intn(len(ns))]
		if !seen[next] {
			seen[next] = true
			verts = append(verts, next)
		}
		cur = next
	}
	if len(verts) < k {
		return nil
	}
	q, _ := g.InducedSubgraph(verts)
	if !q.IsConnected() {
		return nil
	}
	return q
}

// BruteForceCount counts all subgraph isomorphisms from q to g by naive
// backtracking with no pruning beyond label/degree and adjacency checks.
// It is the ground truth for agreement tests; only call it on small
// inputs. The limit caps the number of embeddings counted (0 = unlimited).
func BruteForceCount(q, g *graph.Graph, limit uint64) uint64 {
	n := q.NumVertices()
	mapping := make([]graph.Vertex, n)
	used := make([]bool, g.NumVertices())
	var count uint64
	var rec func(i int) bool // returns false to stop early
	rec = func(i int) bool {
		if i == n {
			count++
			return limit == 0 || count < limit
		}
		u := graph.Vertex(i)
		for v := 0; v < g.NumVertices(); v++ {
			dv := graph.Vertex(v)
			if used[v] || g.Label(dv) != q.Label(u) || g.Degree(dv) < q.Degree(u) {
				continue
			}
			ok := true
			for _, un := range q.Neighbors(u) {
				if un < u && !g.HasEdge(mapping[un], dv) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapping[i] = dv
			used[v] = true
			cont := rec(i + 1)
			used[v] = false
			if !cont {
				return false
			}
		}
		return true
	}
	rec(0)
	return count
}

// BruteForceHomomorphismCount counts all subgraph homomorphisms from q
// to g (label- and edge-preserving, injectivity not required) by naive
// backtracking. Small inputs only.
func BruteForceHomomorphismCount(q, g *graph.Graph) uint64 {
	n := q.NumVertices()
	mapping := make([]graph.Vertex, n)
	var count uint64
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			count++
			return
		}
		u := graph.Vertex(i)
		for v := 0; v < g.NumVertices(); v++ {
			dv := graph.Vertex(v)
			if g.Label(dv) != q.Label(u) {
				continue
			}
			ok := true
			for _, un := range q.Neighbors(u) {
				if un < u && !g.HasEdge(mapping[un], dv) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapping[i] = dv
			rec(i + 1)
		}
	}
	rec(0)
	return count
}

// BruteForceMatches returns all embeddings (indexed by query vertex) from
// q to g; small inputs only.
func BruteForceMatches(q, g *graph.Graph) [][]graph.Vertex {
	n := q.NumVertices()
	mapping := make([]graph.Vertex, n)
	used := make([]bool, g.NumVertices())
	var out [][]graph.Vertex
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			out = append(out, append([]graph.Vertex(nil), mapping...))
			return
		}
		u := graph.Vertex(i)
		for v := 0; v < g.NumVertices(); v++ {
			dv := graph.Vertex(v)
			if used[v] || g.Label(dv) != q.Label(u) || g.Degree(dv) < q.Degree(u) {
				continue
			}
			ok := true
			for _, un := range q.Neighbors(u) {
				if un < u && !g.HasEdge(mapping[un], dv) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapping[i] = dv
			used[v] = true
			rec(i + 1)
			used[v] = false
		}
	}
	rec(0)
	return out
}

// IsValidEmbedding verifies that mapping is a subgraph isomorphism from q
// to g: labels match, the mapping is injective, and every query edge maps
// to a data edge.
func IsValidEmbedding(q, g *graph.Graph, mapping []graph.Vertex) bool {
	if len(mapping) != q.NumVertices() {
		return false
	}
	seen := map[graph.Vertex]bool{}
	for u := 0; u < q.NumVertices(); u++ {
		v := mapping[u]
		if int(v) >= g.NumVertices() || seen[v] || q.Label(graph.Vertex(u)) != g.Label(v) {
			return false
		}
		seen[v] = true
	}
	valid := true
	q.EachEdge(func(a, b graph.Vertex) bool {
		if !g.HasEdge(mapping[a], mapping[b]) {
			valid = false
			return false
		}
		return true
	})
	return valid
}
