package subgraphmatching

import (
	"subgraphmatching/internal/candspace"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/order"
)

// Contains reports whether g contains at least one embedding of q — the
// subgraph containment decision the paper discusses in Section 2.2
// (following the authors' approach of answering containment with the
// preprocessing-enumeration matching algorithm directly, no indices).
// Options' Algorithm/Custom/TimeLimit fields apply; MaxEmbeddings is
// forced to 1.
func Contains(q, g *Graph, opts Options) (bool, error) {
	opts.MaxEmbeddings = 1
	res, err := Match(q, g, opts)
	if err != nil {
		return false, err
	}
	return res.Embeddings > 0, nil
}

// ContainingGraphs returns the indices of the data graphs that contain
// q, in order — the subgraph containment search over a graph collection
// (the classic graph-database operation; see paper Section 2.2).
func ContainingGraphs(q *Graph, collection []*Graph, opts Options) ([]int, error) {
	var out []int
	for i, g := range collection {
		ok, err := Contains(q, g, opts)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, i)
		}
	}
	return out, nil
}

// ComputeCandidates runs one filtering method in isolation and returns
// the per-query-vertex candidate sets (sorted data vertices) — useful
// for inspecting pruning power or feeding external tooling, the way the
// study's Figure 8 compares filters.
func ComputeCandidates(q, g *Graph, m FilterMethod) ([][]Vertex, error) {
	return filter.Run(m, q, g)
}

// EstimateEmbeddings cheaply estimates the number of embeddings of q in
// g without enumerating: it runs GraphQL's filter, builds the candidate
// space, and counts the spanning-tree embeddings of the BFS order with
// the dynamic program behind CFL's and DP-iso's cost models. Because
// non-tree query edges are ignored, the estimate upper-bounds the true
// count; it is intended for query planning, not exact answers.
func EstimateEmbeddings(q, g *Graph) (float64, error) {
	cand, err := filter.Run(filter.GQL, q, g)
	if err != nil {
		return 0, err
	}
	if filter.AnyEmpty(cand) {
		return 0, nil
	}
	space := candspace.BuildFull(q, g, cand)
	delta := order.ComputeDPIso(q, g)
	return candspace.EstimateSpanningTreeEmbeddings(space, delta), nil
}
