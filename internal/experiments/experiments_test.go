package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"subgraphmatching/internal/rmat"
)

// tinyEnv is a fast configuration exercising every experiment end to
// end: two small datasets plus the yt stand-in that several experiments
// hardcode.
func tinyEnv(buf *bytes.Buffer) Env {
	return Env{
		Out:            buf,
		Datasets:       []string{"ye", "hp"},
		PerSet:         2,
		TimeLimit:      100 * time.Millisecond,
		MaxEmbeddings:  1000,
		Seed:           7,
		SpectrumOrders: 8,
	}
}

func TestAllExperimentsRun(t *testing.T) {
	// Shrink the synthetic sweeps so Fig17/Fig18 stay fast; the sweep
	// structure (4 points each) is unchanged.
	oldF17, oldF18 := fig17Base, fig18Base
	fig17Base = rmat.Config{NumVertices: 2000, NumEdges: 16000, NumLabels: 16, Seed: 900}
	fig18Base = rmat.Config{NumVertices: 2000, NumEdges: 24000, NumLabels: 16, Seed: 1800}
	defer func() { fig17Base, fig18Base = oldF17, oldF18 }()

	for _, e := range Registry() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			env := tinyEnv(&buf)
			if err := e.Run(env); err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			out := buf.String()
			if !strings.Contains(out, "===") {
				t.Errorf("%s produced no section header:\n%s", e.Name, out)
			}
			if len(strings.Split(out, "\n")) < 5 {
				t.Errorf("%s produced suspiciously little output:\n%s", e.Name, out)
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("fig7"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestEnvDefaults(t *testing.T) {
	var buf bytes.Buffer
	e := Env{Out: &buf}.WithDefaults()
	if len(e.Datasets) != 8 || e.PerSet == 0 || e.TimeLimit == 0 ||
		e.MaxEmbeddings == 0 || e.Seed == 0 || e.SpectrumOrders == 0 {
		t.Errorf("defaults not filled: %+v", e)
	}
	limits := e.Limits()
	if limits.MaxEmbeddings != e.MaxEmbeddings || limits.TimeLimit != e.TimeLimit {
		t.Error("Limits() mismatch")
	}
}

func TestDefaultSetsPickLargest(t *testing.T) {
	var buf bytes.Buffer
	env := tinyEnv(&buf)
	dense, sparse, err := defaultSets(env, "ye")
	if err != nil {
		t.Fatal(err)
	}
	if dense == nil || sparse == nil {
		t.Fatal("ye should yield both dense and sparse sets")
	}
	if dense.Size < sparse.Size {
		t.Errorf("default dense size %d < sparse size %d", dense.Size, sparse.Size)
	}
	qs, _ := querySets(env, "ye")
	for _, s := range qs {
		if s.Name[len(s.Name)-1] == 'D' && s.Size > dense.Size {
			t.Errorf("defaultSets picked Q%dD but Q%dD exists", dense.Size, s.Size)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	var out, csvBuf bytes.Buffer
	env := tinyEnv(&out)
	env.CSV = &csvBuf
	if err := Fig8(env); err != nil {
		t.Fatal(err)
	}
	s := csvBuf.String()
	if !strings.Contains(s, "LDF") || !strings.Contains(s, ",") {
		t.Errorf("CSV output looks wrong:\n%.200s", s)
	}
}
