package service

import (
	"context"
	"time"

	"subgraphmatching/internal/core"
)

// ExplainResponse is the outcome of an EXPLAIN dry run: the plan-level
// profile (filter-stage reduction, matching order with cardinalities)
// without any enumeration having run.
type ExplainResponse struct {
	// Profile is the plan breakdown; Analyzed is false and no heat table
	// is present — use Submit with Request.Profile for EXPLAIN ANALYZE.
	Profile *core.Profile
	// CacheHit reports the plan came from the cache (or an in-flight
	// build) rather than being preprocessed for this call.
	CacheHit bool
	// QueueWait is how long admission control held the call.
	QueueWait time.Duration
}

// Explain is EXPLAIN without ANALYZE: it resolves the request's plan —
// from the cache when possible, preprocessing otherwise — and returns
// what the optimizer decided (per-stage candidate reduction, matching
// order, per-vertex cardinalities) without enumerating. A dry run holds
// one admission unit: preprocessing is bounded work, and the plan it
// builds is cached for the real query to reuse.
func (s *Service) Explain(ctx context.Context, req Request) (*ExplainResponse, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if req.Query == nil {
		return nil, ErrNilQuery
	}
	entry, err := s.reg.get(req.Graph)
	if err != nil {
		return nil, err
	}
	algo := req.algoName()
	if err := core.Validate(req.Query, entry.g); err != nil {
		return nil, err
	}
	cfg := req.resolveConfig(entry.g)
	if cfg.UseGlasgow || cfg.UseVF2 || cfg.UseUllmann {
		return nil, ErrNoExplain
	}

	fl := s.flights.Start(entry.name, algo+" (explain)")
	began := time.Now()
	fl.SetPhase("admission")
	if err := s.sem.acquire(ctx, entry.name, 1, s.cfg.MaxQueueWait, s.cfg.MaxQueue); err != nil {
		fl.Finish(nil, err, nil)
		return nil, err
	}
	defer s.sem.release(1)
	queueWait := time.Since(began)

	fl.SetPhase("plan")
	plan, src, err := s.planFor(ctx, entry, req.Query, cfg, req.preprocessWorkers(), req.NoCache)
	if err != nil {
		fl.Finish(nil, err, nil)
		return nil, err
	}
	fl.Finish(plan.Span, nil, nil)
	return &ExplainResponse{
		Profile:   core.ExplainPlan(plan),
		CacheHit:  src != planBuilt,
		QueueWait: queueWait,
	}, nil
}
