package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/intersect"
	"subgraphmatching/internal/service"
)

// maxBatchItems bounds one /match/batch request. Large enough for the
// amortization to saturate (the per-item overhead curve is flat past a
// few hundred), small enough that a single request cannot queue
// unbounded work.
const maxBatchItems = 1024

// batchItemRequest is one item of the /match/batch JSON body. The query
// graph travels inline in the t/v/e text format; the scalar knobs mirror
// the /match query parameters.
type batchItemRequest struct {
	Graph    string `json:"graph"`
	Query    string `json:"query"`
	Algo     string `json:"algo,omitempty"`
	Limit    uint64 `json:"limit,omitempty"`
	Timeout  string `json:"timeout,omitempty"`
	Parallel int    `json:"parallel,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	Kernel   string `json:"kernel,omitempty"`
	// Split and SplitFactor mirror the /match split= and splitfactor=
	// parameters: the work-steal task-splitting policy and threshold.
	Split       string `json:"split,omitempty"`
	SplitFactor int    `json:"split_factor,omitempty"`
	NoCache     bool   `json:"no_cache,omitempty"`
	// Explain attaches the EXPLAIN/ANALYZE profile to this item's
	// result — the batch form of /match?explain=1.
	Explain bool `json:"explain,omitempty"`
}

// batchResultItem is one item's outcome in the /match/batch response.
// Index is the item's position in the submitted array; exactly one of
// Result and Error is present, and failed items carry the status code
// the same request would have gotten from /match.
type batchResultItem struct {
	Index  int          `json:"index"`
	Result *matchResult `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
	Status int          `json:"status,omitempty"`
}

// batchResponse is the non-streaming /match/batch envelope.
type batchResponse struct {
	Items   int               `json:"items"`
	Errors  int               `json:"errors"`
	Results []batchResultItem `json:"results"`
}

// toRequest converts one wire item, reporting the first bad field.
func (bi *batchItemRequest) toRequest() (service.Request, error) {
	req := service.Request{Graph: bi.Graph, MaxEmbeddings: bi.Limit,
		Parallel: bi.Parallel, Workers: bi.Workers, NoCache: bi.NoCache,
		Profile: bi.Explain}
	if req.Graph == "" {
		return req, fmt.Errorf("missing required field graph")
	}
	req.Algorithm = core.Optimized
	if bi.Algo != "" {
		algo, err := core.ParseAlgorithm(bi.Algo)
		if err != nil {
			return req, err
		}
		req.Algorithm = algo
	}
	if bi.Timeout != "" {
		d, err := time.ParseDuration(bi.Timeout)
		if err != nil {
			return req, fmt.Errorf("bad timeout %q", bi.Timeout)
		}
		req.TimeLimit = d
	}
	if bi.Parallel < 0 || bi.Parallel > maxWorkersParam {
		return req, fmt.Errorf("bad parallel %d (want 0..%d)", bi.Parallel, maxWorkersParam)
	}
	if bi.Workers < 0 || bi.Workers > maxWorkersParam {
		return req, fmt.Errorf("bad workers %d (want 0..%d)", bi.Workers, maxWorkersParam)
	}
	if bi.Split != "" {
		sp, err := core.ParseSplitPolicy(bi.Split)
		if err != nil {
			return req, err
		}
		req.Split = sp
	}
	if bi.SplitFactor < 0 || bi.SplitFactor > maxWorkersParam {
		return req, fmt.Errorf("bad split_factor %d (want 0..%d)", bi.SplitFactor, maxWorkersParam)
	}
	req.SplitFactor = bi.SplitFactor
	if bi.Kernel != "" {
		k, err := intersect.ParsePolicy(bi.Kernel)
		if err != nil {
			return req, err
		}
		req.Kernel = k
	}
	var err error
	req.Query, err = graph.Parse(strings.NewReader(bi.Query))
	if err != nil {
		return req, err
	}
	return req, nil
}

// matchBatch serves POST /match/batch: a JSON array of items, run as
// one service batch (grouped admission, one plan resolution per
// distinct query, within-batch dedup). Items fail independently — a bad
// item yields an indexed error entry with its /match-equivalent status
// code, never a failed batch. With ?stream=1 the response is NDJSON:
// interleaved {"index":i,"embedding":[...]} lines as groups enumerate
// concurrently, then one indexed result (or error) line per item.
func (s *server) matchBatch(w http.ResponseWriter, r *http.Request) {
	var items []batchItemRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxGraphBody))
	if err := dec.Decode(&items); err != nil {
		httpError(w, fmt.Errorf("bad batch body: %w", err))
		return
	}
	if len(items) == 0 {
		httpError(w, fmt.Errorf("empty batch"))
		return
	}
	if len(items) > maxBatchItems {
		httpError(w, fmt.Errorf("batch of %d items exceeds the limit of %d", len(items), maxBatchItems))
		return
	}

	// Parse every item up front; parse failures become indexed errors
	// and only the valid remainder is submitted.
	out := make([]batchResultItem, len(items))
	reqs := make([]service.Request, 0, len(items))
	submitted := make([]int, 0, len(items)) // submitted position -> item index
	for i := range items {
		out[i].Index = i
		req, err := items[i].toRequest()
		if err != nil {
			out[i].Error = err.Error()
			out[i].Status = statusFor(err)
			continue
		}
		reqs = append(reqs, req)
		submitted = append(submitted, i)
	}

	if r.URL.Query().Get("stream") == "1" {
		s.matchBatchStream(w, r, reqs, submitted, out)
		return
	}
	withTrace := r.URL.Query().Get("trace") == "1"
	if len(reqs) > 0 {
		results, err := s.svc.SubmitBatch(r.Context(), reqs)
		if err != nil {
			httpError(w, err)
			return
		}
		for pos, br := range results {
			i := submitted[pos]
			if br.Err != nil {
				out[i].Error = br.Err.Error()
				out[i].Status = statusFor(br.Err)
				continue
			}
			mr := toMatchResult(br.Resp, withTrace)
			out[i].Result = &mr
		}
	}
	errs := 0
	for i := range out {
		if out[i].Error != "" {
			errs++
		}
	}
	writeJSON(w, http.StatusOK, batchResponse{Items: len(items), Errors: errs, Results: out})
}

// batchEmbeddingLine is one streamed embedding, tagged with the item it
// belongs to (groups enumerate concurrently, so lines interleave).
type batchEmbeddingLine struct {
	Index     int      `json:"index"`
	Embedding []uint32 `json:"embedding"`
}

// matchBatchStream is the NDJSON variant. The 200 is committed before
// the batch runs — per-item failures are inline indexed lines, exactly
// like the non-streaming envelope's error entries. Writes from
// concurrently enumerating groups are mutex-serialized so lines never
// interleave bytes.
func (s *server) matchBatchStream(w http.ResponseWriter, r *http.Request, reqs []service.Request, submitted []int, out []batchResultItem) {
	withTrace := r.URL.Query().Get("trace") == "1"
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	var mu sync.Mutex
	enc := json.NewEncoder(w)
	writeLine := func(v any) {
		mu.Lock()
		defer mu.Unlock()
		enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}

	for pos := range reqs {
		idx := submitted[pos]
		reqs[pos].OnMatch = func(m []uint32) bool {
			// The service reuses the mapping slice between callbacks;
			// copy before it escapes to the encoder.
			emb := make([]uint32, len(m))
			copy(emb, m)
			writeLine(batchEmbeddingLine{Index: idx, Embedding: emb})
			return true
		}
	}

	var results []service.BatchResult
	if len(reqs) > 0 {
		var err error
		results, err = s.svc.SubmitBatch(r.Context(), reqs)
		if err != nil {
			// Whole-batch failure after the 200 committed: fan the error
			// out to every submitted item's line.
			for _, i := range submitted {
				out[i].Error = err.Error()
				out[i].Status = statusFor(err)
			}
		}
	}
	for pos, br := range results {
		i := submitted[pos]
		if br.Err != nil {
			out[i].Error = br.Err.Error()
			out[i].Status = statusFor(br.Err)
			continue
		}
		mr := toMatchResult(br.Resp, withTrace)
		out[i].Result = &mr
	}
	for i := range out {
		writeLine(out[i])
	}
}
