package service

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"sync"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/obs"
)

// planKey identifies one cached preprocessing plan. Two requests share a
// plan exactly when they target the same registered graph *generation*,
// their query graphs serialize identically (labels + sorted adjacency —
// graph.FingerprintOf), and every plan-shaping configuration knob
// matches. The generation component means hot-swapping a graph never
// serves a stale plan: old keys simply stop being produced and their
// entries age out of the LRU.
type planKey struct {
	graph   string
	gen     uint64
	queryFP graph.Fingerprint
	cfgHash uint64
}

// configHash digests every Config field that influences the plan's
// contents plus the one preprocessing-mode distinction that does
// (GraphQL's Jacobi rounds under parallel preprocessing keep a superset
// of the sequential candidate sets, so parallel- and sequential-built
// GQL plans get distinct keys).
func configHash(cfg core.Config, preWorkers int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	flag := func(b bool) {
		if b {
			u64(1)
		} else {
			u64(0)
		}
	}
	u64(uint64(cfg.Filter))
	u64(uint64(cfg.Order))
	u64(uint64(cfg.Local))
	flag(cfg.AutoOrder)
	flag(cfg.TreeSpace)
	flag(cfg.FailingSets)
	flag(cfg.Adaptive)
	flag(cfg.DPWeights)
	flag(cfg.VF2PPRules)
	flag(cfg.Homomorphism)
	flag(cfg.SymmetryBreaking)
	flag(cfg.Profile)
	u64(uint64(cfg.GQLRounds))
	u64(uint64(cfg.GQLRadius))
	u64(uint64(cfg.DPIsoPasses))
	u64(uint64(len(cfg.FixedOrder)))
	for _, v := range cfg.FixedOrder {
		u64(uint64(v))
	}
	jacobi := cfg.Filter == filter.GQL && !cfg.Homomorphism && preWorkers > 1
	flag(jacobi)
	return h.Sum64()
}

// CacheStats is a point-in-time snapshot of the plan cache's accounting.
type CacheStats struct {
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// planCache is a mutex-guarded LRU over read-only *core.Plan values.
// Entries are shared: a get returns the same plan pointer to every
// caller, which is safe because MatchPlan never mutates a plan. The
// cache bounds entry count, not bytes — plans are dominated by the
// candidate-space CSR, whose size varies too much per workload for a
// byte budget to beat a simple count knob here.
type planCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[planKey]*list.Element
	// minGen fences inserts per graph name: add drops any entry whose
	// generation is below the recorded floor. purgeGraph raises the floor,
	// closing the race where a request that resolved a graph before a
	// hot-swap/unregister inserts its (now unreachable) plan after the
	// purge ran, pinning dead plan memory in an LRU slot.
	minGen map[string]uint64
	// hits/misses/evictions are obs counters so the cache's accounting
	// IS the /metrics families — New swaps in the registry-owned
	// instances; a standalone cache (tests) gets unregistered ones.
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

type cacheEntry struct {
	key  planKey
	plan *core.Plan
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		return nil // caching disabled
	}
	return &planCache{
		cap: capacity, ll: list.New(),
		entries: make(map[planKey]*list.Element),
		minGen:  make(map[string]uint64),
		hits:    &obs.Counter{}, misses: &obs.Counter{}, evictions: &obs.Counter{},
	}
}

func (c *planCache) get(k planKey) (*core.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		c.ll.MoveToFront(e)
		c.hits.Inc()
		return e.Value.(*cacheEntry).plan, true
	}
	c.misses.Inc()
	return nil, false
}

// add inserts a freshly built plan. If a concurrent request already
// inserted the same key (the benign dogpile on a cold key), the existing
// entry wins so every caller converges on one shared plan.
func (c *planCache) add(k planKey, p *core.Plan) *core.Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if k.gen < c.minGen[k.graph] {
		// The graph was swapped or unregistered while this plan was being
		// built; no future request can produce this key, so don't let the
		// dead plan occupy an LRU slot.
		return p
	}
	if e, ok := c.entries[k]; ok {
		c.ll.MoveToFront(e)
		return e.Value.(*cacheEntry).plan
	}
	c.entries[k] = c.ll.PushFront(&cacheEntry{key: k, plan: p})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
	return p
}

// purgeGraph drops every entry for the named graph built against a
// generation below `before`, and raises that name's insert floor so a
// concurrent miss on the old generation cannot re-add its plan after the
// purge. Hot swap passes the new generation; unregister passes the
// removed generation + 1 (a later re-register always gets a higher one).
func (c *planCache) purgeGraph(name string, before uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if before > c.minGen[name] {
		c.minGen[name] = before
	}
	var next *list.Element
	for e := c.ll.Front(); e != nil; e = next {
		next = e.Next()
		ent := e.Value.(*cacheEntry)
		if ent.key.graph == name && ent.key.gen < before {
			c.ll.Remove(e)
			delete(c.entries, ent.key)
		}
	}
}

func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size: c.ll.Len(), Capacity: c.cap,
		Hits: c.hits.Value(), Misses: c.misses.Value(), Evictions: c.evictions.Value(),
	}
}
