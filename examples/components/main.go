// Component mix-and-match: the study's central idea is that a subgraph
// matching algorithm decomposes into a filtering method, an ordering
// method and a local-candidate computation that can be recombined
// freely. This example runs one query under several combinations and
// prints the side-by-side comparison the paper's framework enables —
// including the classic result that set-intersection local candidates
// (Algorithm 5) dominate candidate scanning (Algorithm 3).
package main

import (
	"fmt"
	"log"
	"time"

	sm "subgraphmatching"
)

func main() {
	data, err := sm.Dataset("hp") // HPRD protein network stand-in
	if err != nil {
		log.Fatal(err)
	}
	queries, err := sm.GenerateQueries(data, sm.QueryConfig{
		NumVertices: 16, Count: 1, Density: sm.QueryDense, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	q := queries[0]
	fmt.Println("data: ", data)
	fmt.Println("query:", q)
	fmt.Println()

	type combo struct {
		name string
		cfg  sm.Config
	}
	combos := []combo{
		{"LDF filter + QSI order + direct (QuickSI)",
			sm.Config{Filter: sm.FilterLDF, Order: sm.OrderQSI, Local: sm.LocalDirect}},
		{"GQL filter + GQL order + scan (GraphQL)",
			sm.Config{Filter: sm.FilterGQL, Order: sm.OrderGQL, Local: sm.LocalScan}},
		{"GQL filter + GQL order + intersect",
			sm.Config{Filter: sm.FilterGQL, Order: sm.OrderGQL, Local: sm.LocalIntersect}},
		{"GQL filter + RI order + intersect",
			sm.Config{Filter: sm.FilterGQL, Order: sm.OrderRI, Local: sm.LocalIntersect}},
		{"CFL filter + CFL order + tree-edge (CFL)",
			sm.Config{Filter: sm.FilterCFL, Order: sm.OrderCFL, Local: sm.LocalTreeEdge, TreeSpace: true}},
		{"DPiso filter + adaptive order + intersect + failing sets (DP-iso)",
			sm.Config{Filter: sm.FilterDPIso, Order: sm.OrderDPIso, Local: sm.LocalIntersect,
				Adaptive: true, DPWeights: true, FailingSets: true}},
	}

	fmt.Printf("%-66s %10s %9s %11s %11s %9s\n",
		"configuration", "embeddings", "nodes", "preprocess", "enumerate", "cand/u")
	for _, c := range combos {
		cfg := c.cfg
		res, err := sm.Match(q, data, sm.Options{
			Custom: &cfg, MaxEmbeddings: 100_000, TimeLimit: 30 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-66s %10d %9d %11v %11v %9.1f\n",
			c.name, res.Embeddings, res.Nodes,
			res.PreprocessTime().Round(time.Microsecond),
			res.EnumTime.Round(time.Microsecond),
			res.MeanCandidates)
	}
	fmt.Println("\nEvery combination returns the same embedding count — the components")
	fmt.Println("change only how much work the search does to find them.")
}
