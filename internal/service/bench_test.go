package service

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/testutil"
)

// benchService builds the repeated-query serving workload: a graph big
// enough that GraphQL's global refinement dominates the per-query cost,
// and a query capped so enumeration stays cheap — the regime where plan
// reuse pays.
func benchService(b *testing.B) (*Service, Request) {
	b.Helper()
	s := New(Config{MaxQueueWait: 0})
	g := testutil.RandomGraph(rand.New(rand.NewSource(17)), 2000, 20000, 4)
	if _, err := s.RegisterGraph("bench", g, false); err != nil {
		b.Fatal(err)
	}
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(18)), g, 6)
	return s, Request{Graph: "bench", Query: q, Algorithm: core.GraphQL, MaxEmbeddings: 100}
}

// BenchmarkServeCold measures the uncached path: every request pays
// filtering + candidate-space construction + ordering.
func BenchmarkServeCold(b *testing.B) {
	s, req := benchService(b)
	req.NoCache = true
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeWarm measures the cache-hit path the service exists
// for: preprocessing amortized into one build, requests go straight to
// enumeration. ISSUE acceptance: ≥2× faster than BenchmarkServeCold.
func BenchmarkServeWarm(b *testing.B) {
	s, req := benchService(b)
	ctx := context.Background()
	if _, err := s.Submit(ctx, req); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := s.Submit(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.CacheHit {
			b.Fatal("warm benchmark missed the cache")
		}
	}
}

// BenchmarkBatchSubmit measures the per-item cost of batched serving
// at growing batch sizes over one hot query: size=1 is the batching
// overhead floor (a batch of one pays the grouping machinery for
// nothing), and larger sizes amortize admission + plan lookup + (for
// identical counts-only items) the execution itself across the batch.
// ISSUE acceptance: ≥2× per-item reduction at batch 64 vs sequential
// Submit (BenchmarkServeWarm is the sequential baseline).
func BenchmarkBatchSubmit(b *testing.B) {
	for _, size := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			s, req := benchService(b)
			ctx := context.Background()
			if _, err := s.Submit(ctx, req); err != nil { // warm the cache
				b.Fatal(err)
			}
			items := make([]Request, size)
			for i := range items {
				items[i] = req
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := s.SubmitBatch(ctx, items)
				if err != nil {
					b.Fatal(err)
				}
				for _, br := range results {
					if br.Err != nil {
						b.Fatal(br.Err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/item")
		})
	}
}

// TestCacheHitSkipsPreprocessing is the deterministic (non-timing)
// shadow of the benchmark pair: a hit pays zero preprocessing while a
// fresh run pays a nonzero amount.
func TestCacheHitSkipsPreprocessing(t *testing.T) {
	s := New(Config{})
	g := testutil.RandomGraph(rand.New(rand.NewSource(17)), 2000, 20000, 4)
	if _, err := s.RegisterGraph("bench", g, false); err != nil {
		t.Fatal(err)
	}
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(18)), g, 6)
	req := Request{Graph: "bench", Query: q, Algorithm: core.GraphQL, MaxEmbeddings: 100}
	ctx := context.Background()
	cold, err := s.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit || cold.Result.PreprocessTime() <= 0 {
		t.Fatalf("cold: hit=%v preprocess=%v", cold.CacheHit, cold.Result.PreprocessTime())
	}
	warm, err := s.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit || warm.Result.PreprocessTime() != 0 {
		t.Fatalf("warm: hit=%v preprocess=%v", warm.CacheHit, warm.Result.PreprocessTime())
	}
	if cold.Result.Embeddings != warm.Result.Embeddings {
		t.Fatalf("embeddings diverged: cold %d warm %d", cold.Result.Embeddings, warm.Result.Embeddings)
	}
}
