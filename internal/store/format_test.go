package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"testing"

	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/testutil"
)

// testGraph is a mid-sized random graph shared by the format tests.
func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	return testutil.RandomGraph(rng, 200, 900, 5)
}

// sameCSR asserts the two graphs have byte-identical CSR arrays.
func sameCSR(t *testing.T, got, want *graph.Graph) {
	t.Helper()
	go1, ga1, gl1 := got.CSR()
	wo1, wa1, wl1 := want.CSR()
	if len(go1) != len(wo1) || len(ga1) != len(wa1) || len(gl1) != len(wl1) {
		t.Fatalf("CSR array lengths differ: (%d,%d,%d) vs (%d,%d,%d)",
			len(go1), len(ga1), len(gl1), len(wo1), len(wa1), len(wl1))
	}
	for i := range go1 {
		if go1[i] != wo1[i] {
			t.Fatalf("offsets[%d] = %d, want %d", i, go1[i], wo1[i])
		}
	}
	for i := range ga1 {
		if ga1[i] != wa1[i] {
			t.Fatalf("adj[%d] = %d, want %d", i, ga1[i], wa1[i])
		}
	}
	for i := range gl1 {
		if gl1[i] != wl1[i] {
			t.Fatalf("labels[%d] = %d, want %d", i, gl1[i], wl1[i])
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, zeroCopy := range []bool{false, true} {
		g := testGraph(t)
		data, fp, err := Encode(g)
		if err != nil {
			t.Fatal(err)
		}
		if fp != graph.FingerprintOf(g) {
			t.Fatal("Encode returned a fingerprint that is not FingerprintOf(g)")
		}
		if int64(len(data)) != EncodedSize(g) {
			t.Fatalf("encoded %d bytes, EncodedSize says %d", len(data), EncodedSize(g))
		}
		g2, fp2, err := Decode(data, DecodeOptions{ZeroCopy: zeroCopy, VerifyFingerprint: true})
		if err != nil {
			t.Fatalf("zeroCopy=%v: %v", zeroCopy, err)
		}
		if fp2 != fp {
			t.Fatalf("zeroCopy=%v: fingerprint changed across round trip", zeroCopy)
		}
		sameCSR(t, g2, g)
		if g2.MaxDegree() != g.MaxDegree() || g2.NumLabels() != g.NumLabels() {
			t.Fatalf("zeroCopy=%v: derived state differs", zeroCopy)
		}
	}
}

func TestEncodeDecodeEmptyAndTiny(t *testing.T) {
	single, err := graph.FromEdges([]graph.Label{3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := graph.FromEdges([]graph.Label{0, 1}, [][2]graph.Vertex{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*graph.Graph{single, pair} {
		data, fp, err := Encode(g)
		if err != nil {
			t.Fatal(err)
		}
		g2, fp2, err := Decode(data, DecodeOptions{VerifyFingerprint: true})
		if err != nil {
			t.Fatal(err)
		}
		if fp2 != fp {
			t.Fatal("fingerprint mismatch")
		}
		sameCSR(t, g2, g)
	}
}

// TestDecodeCorruption is the robustness satellite: a flipped bit in
// any meaningful region, a truncation, a bad magic, or a future
// version must produce the right typed error — never a panic, never a
// silently wrong graph.
func TestDecodeCorruption(t *testing.T) {
	g := testGraph(t)
	data, _, err := Encode(g)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), data...)
		b[0] ^= 0xff
		if _, _, err := Decode(b, DecodeOptions{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		b := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(b[8:], FormatVersion+1)
		// Rewrite the header CRC so the version check, not the CRC, fires:
		// a future writer would have produced a valid header.
		binary.LittleEndian.PutUint32(b[40:], crcOf(b[:40]))
		if _, _, err := Decode(b, DecodeOptions{}); !errors.Is(err, ErrVersion) {
			t.Fatalf("got %v, want ErrVersion", err)
		}
	})
	t.Run("unknown flags", func(t *testing.T) {
		b := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(b[12:], flagLittleEndian|1<<7)
		binary.LittleEndian.PutUint32(b[40:], crcOf(b[:40]))
		if _, _, err := Decode(b, DecodeOptions{}); !errors.Is(err, ErrVersion) {
			t.Fatalf("got %v, want ErrVersion", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 7, headerSize - 1, headerSize + 10, len(data) / 2, len(data) - 1} {
			if _, _, err := Decode(data[:n], DecodeOptions{}); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncated to %d bytes: got %v, want ErrCorrupt", n, err)
			}
		}
	})
	t.Run("grown", func(t *testing.T) {
		b := append(append([]byte(nil), data...), 0, 0, 0, 0)
		if _, _, err := Decode(b, DecodeOptions{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	// Flip one bit in every region of the file: header, section table,
	// each section payload, trailer. Padding bytes between sections are
	// the only bytes no CRC covers, so a flip there may legitimately
	// decode — but then it must decode to the identical graph.
	t.Run("flipped bits", func(t *testing.T) {
		want, _, err := Decode(data, DecodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		step := len(data)/97 + 1
		for off := 0; off < len(data); off += step {
			b := append([]byte(nil), data...)
			b[off] ^= 1 << uint(off%8)
			g2, _, derr := Decode(b, DecodeOptions{VerifyFingerprint: true})
			if derr == nil {
				sameCSR(t, g2, want)
				continue
			}
			if !errors.Is(derr, ErrCorrupt) && !errors.Is(derr, ErrVersion) {
				t.Fatalf("flip at %d: untyped error %v", off, derr)
			}
		}
	})

	// A header that lies about counts in a way that would overflow the
	// section-length arithmetic must be rejected, not crash.
	t.Run("implausible counts", func(t *testing.T) {
		b := append([]byte(nil), data...)
		binary.LittleEndian.PutUint64(b[16:], 1<<62)
		binary.LittleEndian.PutUint32(b[40:], crcOf(b[:40]))
		if _, _, err := Decode(b, DecodeOptions{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
}

// crcOf is a test helper for rewriting CRCs after intentional header
// mutations.
func crcOf(b []byte) uint32 {
	return crc32.Checksum(b, castagnoli)
}
