package enumerate

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"subgraphmatching/internal/candspace"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/intersect"
	"subgraphmatching/internal/testutil"
)

// kernelPolicies lists every dispatch policy Options.Kernel accepts.
func kernelPolicies() []intersect.Policy {
	return []intersect.Policy{
		intersect.PolicyAdaptive, intersect.PolicyMerge, intersect.PolicyGallop,
		intersect.PolicyHybrid, intersect.PolicyBlock,
	}
}

// collectEmbeddings runs opts over a space and returns the sorted full
// embedding list — byte-level agreement, not just counts.
func collectEmbeddings(t *testing.T, q, g *graph.Graph, cand [][]uint32, space *candspace.Space, phi []graph.Vertex, opts Options) ([][]uint32, *Stats) {
	t.Helper()
	var out [][]uint32
	opts.OnMatch = func(m []uint32) bool {
		out = append(out, append([]uint32(nil), m...))
		return true
	}
	st, err := Run(q, g, cand, space, phi, opts)
	if err != nil {
		t.Fatalf("Run(%+v): %v", opts, err)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out, st
}

// TestKernelPolicyGridIdenticalEmbeddings is the tentpole's correctness
// invariant: every kernel policy — with and without the block layout
// materialized, static and DP-iso adaptive engines — enumerates exactly
// the same embeddings. Policies change kernel dispatch, never results.
func TestKernelPolicyGridIdenticalEmbeddings(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tested := 0
	for trial := 0; trial < 12 && tested < 8; trial++ {
		g := testutil.RandomGraph(rng, 20+rng.Intn(20), 60+rng.Intn(60), 2+rng.Intn(2))
		q := testutil.RandomConnectedQuery(rng, g, 4+rng.Intn(3))
		if q == nil {
			continue
		}
		cand, err := filter.Run(filter.GQL, q, g)
		if err != nil {
			continue
		}
		phi := graph.NewBFSTree(q, 0).Order
		plain := candspace.BuildFull(q, g, cand)
		blocks := candspace.BuildFull(q, g, cand)
		blocks.MaterializeBlocks()

		// Pairwise kernels only execute where a vertex has ≥2 backward
		// neighbors in the matching order; tree-shaped queries take the
		// single-adjacency fast path and tally nothing.
		hasKWay := false
		for i, u := range phi {
			bwd := 0
			for _, w := range q.Neighbors(u) {
				for j := 0; j < i; j++ {
					if phi[j] == w {
						bwd++
					}
				}
			}
			if bwd >= 2 {
				hasKWay = true
			}
		}

		want, _ := collectEmbeddings(t, q, g, cand, plain, phi, Options{Local: Intersect, Kernel: intersect.PolicyHybrid})
		if len(want) == 0 || !hasKWay {
			continue
		}
		tested++

		for _, dpiso := range []bool{false, true} {
			for _, space := range []*candspace.Space{plain, blocks} {
				for _, p := range kernelPolicies() {
					opts := Options{Local: Intersect, Kernel: p, Adaptive: dpiso}
					got, st := collectEmbeddings(t, q, g, cand, space, phi, opts)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("trial %d policy %v dpiso=%v blocks=%v: %d embeddings differ from reference %d",
							trial, p, dpiso, space.HasBlocks(), len(got), len(want))
					}
					if st.Kernels.Total() == 0 {
						t.Errorf("trial %d policy %v dpiso=%v: no kernel executions tallied", trial, p, dpiso)
					}
					// The block kernel can only run where a layout exists.
					if !space.HasBlocks() && st.Kernels[intersect.KernelBlock] != 0 {
						t.Errorf("trial %d policy %v dpiso=%v: block kernel ran without a layout", trial, p, dpiso)
					}
				}
				// Satellite fix: IntersectBlock must honor the layout in
				// both the static and the DP-iso adaptive engine.
				opts := Options{Local: IntersectBlock, Adaptive: dpiso}
				got, st := collectEmbeddings(t, q, g, cand, space, phi, opts)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d IntersectBlock dpiso=%v: embeddings differ from reference", trial, dpiso)
				}
				if st.Kernels[intersect.KernelBlock] == 0 {
					t.Errorf("trial %d IntersectBlock dpiso=%v: block kernel never ran", trial, dpiso)
				}
			}
		}
	}
	if tested == 0 {
		t.Fatal("no trial produced embeddings; fixture generation is broken")
	}
}

// TestAdaptiveWithoutBlocksMatchesHybrid pins the degradation contract:
// when no block layout was materialized, the adaptive policy makes
// exactly the Hybrid kernel choices (same per-kernel tallies), so
// enabling it can never regress a blockless run.
func TestAdaptiveWithoutBlocksMatchesHybrid(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := testutil.RandomGraph(rng, 40, 160, 2)
	var q *graph.Graph
	for q == nil {
		q = testutil.RandomConnectedQuery(rng, g, 5)
	}
	cand, err := filter.Run(filter.GQL, q, g)
	if err != nil {
		t.Fatal(err)
	}
	phi := graph.NewBFSTree(q, 0).Order
	space := candspace.BuildFull(q, g, cand)
	_, hybrid := collectEmbeddings(t, q, g, cand, space, phi, Options{Local: Intersect, Kernel: intersect.PolicyHybrid})
	_, adaptive := collectEmbeddings(t, q, g, cand, space, phi, Options{Local: Intersect, Kernel: intersect.PolicyAdaptive})
	if adaptive.Kernels != hybrid.Kernels {
		t.Errorf("adaptive without blocks tallied %v, hybrid %v — choices must coincide", adaptive.Kernels, hybrid.Kernels)
	}
	if adaptive.Kernels[intersect.KernelBlock] != 0 {
		t.Errorf("block kernel ran without a layout: %v", adaptive.Kernels)
	}
}

// TestKernelPolicySteadyStateAllocFree extends the zero-alloc contract
// to the selector path: a warmed engine dispatching through every
// policy over a materialized block layout allocates nothing per run.
func TestKernelPolicySteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := testutil.RandomGraph(rng, 60, 240, 2)
	var q *graph.Graph
	for q == nil {
		q = testutil.RandomConnectedQuery(rng, g, 5)
	}
	cand, err := filter.Run(filter.GQL, q, g)
	if err != nil {
		t.Fatal(err)
	}
	phi := graph.NewBFSTree(q, 0).Order
	space := candspace.BuildFull(q, g, cand)
	space.MaterializeBlocks()
	for _, p := range kernelPolicies() {
		e, err := NewEngine(q, g, cand, space, phi, Options{Local: Intersect, Kernel: p})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			e.Run()
		}
		if allocs := testing.AllocsPerRun(20, func() { e.Run() }); allocs > 0 {
			t.Errorf("policy %v: %.1f allocs per warmed run, want 0", p, allocs)
		}
	}
}
