package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"subgraphmatching/internal/enumerate"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/order"
	"subgraphmatching/internal/testutil"
)

func TestParallelAgreesWithSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 20+rng.Intn(20), 60+rng.Intn(60), 2)
		q := testutil.RandomConnectedQuery(rng, g, 4+rng.Intn(3))
		if q == nil {
			return true
		}
		for _, cfg := range []Config{
			{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Intersect},
			{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Intersect, FailingSets: true},
			{Filter: filter.DPIso, Order: order.DPIso, Local: enumerate.Intersect, Adaptive: true},
			{Filter: filter.LDF, Order: order.RI, Local: enumerate.Direct},
		} {
			seq, err := Match(q, g, cfg, Limits{})
			if err != nil {
				t.Logf("sequential: %v", err)
				return false
			}
			for _, workers := range []int{2, 4, 9} {
				par, err := Match(q, g, cfg, Limits{Parallel: workers})
				if err != nil {
					t.Logf("parallel(%d): %v", workers, err)
					return false
				}
				if par.Embeddings != seq.Embeddings {
					t.Logf("parallel(%d): %d embeddings, sequential %d (seed %d)",
						workers, par.Embeddings, seq.Embeddings, seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestParallelRespectsCapExactly(t *testing.T) {
	// Unlabeled triangle in K9: 9*8*7 = 504 embeddings.
	var edges [][2]graph.Vertex
	for i := 0; i < 9; i++ {
		for j := i + 1; j < 9; j++ {
			edges = append(edges, [2]graph.Vertex{graph.Vertex(i), graph.Vertex(j)})
		}
	}
	g := graph.MustFromEdges(make([]graph.Label, 9), edges)
	q := graph.MustFromEdges(make([]graph.Label, 3), [][2]graph.Vertex{{0, 1}, {1, 2}, {0, 2}})
	cfg := Config{Filter: filter.LDF, Order: order.GQL, Local: enumerate.Intersect}
	for _, cap := range []uint64{1, 7, 100, 504, 1000} {
		res, err := Match(q, g, cfg, Limits{MaxEmbeddings: cap, Parallel: 4})
		if err != nil {
			t.Fatal(err)
		}
		want := cap
		if cap > 504 {
			want = 504
		}
		if res.Embeddings != want {
			t.Errorf("cap %d: got %d embeddings, want %d", cap, res.Embeddings, want)
		}
		if cap <= 504 && !res.LimitHit {
			t.Errorf("cap %d: LimitHit not set", cap)
		}
	}
}

func TestParallelOnMatchSerializedAndStoppable(t *testing.T) {
	var edges [][2]graph.Vertex
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			edges = append(edges, [2]graph.Vertex{graph.Vertex(i), graph.Vertex(j)})
		}
	}
	g := graph.MustFromEdges(make([]graph.Label, 8), edges)
	q := graph.MustFromEdges(make([]graph.Label, 3), [][2]graph.Vertex{{0, 1}, {1, 2}, {0, 2}})
	cfg := Config{Filter: filter.LDF, Order: order.GQL, Local: enumerate.Intersect}

	var mu sync.Mutex
	inCallback := false
	calls := 0
	res, err := Match(q, g, cfg, Limits{Parallel: 4, OnMatch: func(m []uint32) bool {
		mu.Lock()
		if inCallback {
			t.Error("OnMatch reentered concurrently")
		}
		inCallback = true
		calls++
		n := calls
		inCallback = false
		mu.Unlock()
		return n < 10
	}})
	if err != nil {
		t.Fatal(err)
	}
	// The callback stopped after 10 calls; workers may each have found a
	// few more before noticing, but the search must have stopped well
	// short of the full 336.
	if calls < 10 || calls > 50 {
		t.Errorf("OnMatch called %d times", calls)
	}
	_ = res
}

func TestParallelPaperExample(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	for _, a := range []Algorithm{QuickSI, GraphQL, CECI, DPIso, Optimized} {
		res, err := Match(q, g, PresetConfig(a, q, g), Limits{Parallel: 3})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if res.Embeddings != 1 {
			t.Errorf("%v parallel: %d embeddings, want 1", a, res.Embeddings)
		}
	}
}

func TestParallelMoreWorkersThanCandidates(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	res, err := Match(q, g, PresetConfig(Optimized, q, g), Limits{Parallel: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embeddings != 1 {
		t.Errorf("got %d embeddings", res.Embeddings)
	}
}
