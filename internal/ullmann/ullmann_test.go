package ullmann

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/testutil"
)

func TestPaperExample(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	var got []uint32
	st, err := Solve(q, g, Options{OnMatch: func(m []uint32) bool {
		got = append([]uint32(nil), m...)
		return true
	}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Embeddings != 1 {
		t.Fatalf("Embeddings = %d, want 1", st.Embeddings)
	}
	want := testutil.PaperMatch()
	for u, v := range want {
		if got[u] != v {
			t.Fatalf("match = %v, want %v", got, want)
		}
	}
}

func TestAgreementWithBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 12+rng.Intn(12), 30+rng.Intn(30), 1+rng.Intn(3))
		q := testutil.RandomConnectedQuery(rng, g, 3+rng.Intn(3))
		if q == nil {
			return true
		}
		want := testutil.BruteForceCount(q, g, 0)
		valid := true
		st, err := Solve(q, g, Options{OnMatch: func(m []uint32) bool {
			if !testutil.IsValidEmbedding(q, g, m) {
				valid = false
				return false
			}
			return true
		}})
		if err != nil || !valid {
			t.Logf("err=%v valid=%v (seed %d)", err, valid, seed)
			return false
		}
		if st.Embeddings != want {
			t.Logf("Embeddings = %d, brute force %d (seed %d)", st.Embeddings, want, seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLimitsAndTimeout(t *testing.T) {
	var edges [][2]graph.Vertex
	for i := 0; i < 7; i++ {
		for j := i + 1; j < 7; j++ {
			edges = append(edges, [2]graph.Vertex{graph.Vertex(i), graph.Vertex(j)})
		}
	}
	g := graph.MustFromEdges(make([]graph.Label, 7), edges)
	q := graph.MustFromEdges(make([]graph.Label, 3), [][2]graph.Vertex{{0, 1}, {1, 2}, {0, 2}})
	st, err := Solve(q, g, Options{MaxEmbeddings: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Embeddings != 5 || !st.LimitHit {
		t.Errorf("cap: %+v", st)
	}
	rng := rand.New(rand.NewSource(3))
	big := testutil.RandomGraph(rng, 400, 8000, 1)
	cyc := graph.MustFromEdges(make([]graph.Label, 6),
		[][2]graph.Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	st, err = Solve(cyc, big, Options{TimeLimit: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !st.TimedOut {
		t.Errorf("expected timeout: %+v", st)
	}
}

func TestEdgeCases(t *testing.T) {
	g := testutil.PaperData()
	empty := graph.MustFromEdges(nil, nil)
	if st, err := Solve(empty, g, Options{}); err != nil || st.Embeddings != 0 {
		t.Error("empty query should return zero matches")
	}
	disc := graph.MustFromEdges([]graph.Label{0, 0, 0}, [][2]graph.Vertex{{0, 1}})
	if _, err := Solve(disc, g, Options{}); err == nil {
		t.Error("expected error for disconnected query")
	}
	// No candidates at all.
	q := graph.MustFromEdges([]graph.Label{9, 9, 9}, [][2]graph.Vertex{{0, 1}, {1, 2}})
	if st, err := Solve(q, g, Options{}); err != nil || st.Embeddings != 0 {
		t.Error("query with unknown labels should return zero matches")
	}
}
