// Command recommend auto-tunes the matching configuration for a data
// graph: it samples query workloads from the graph, evaluates the
// component matrix (filters x orders x local-candidate methods), and
// prints which combination wins — an executable version of the paper's
// Section 6 recommendations for *your* graph rather than the paper's
// datasets.
//
// Usage:
//
//	recommend -d data.graph [-size 16] [-queries 10] [-timeout 2s] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/enumerate"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/order"
	"subgraphmatching/internal/querygen"
	"subgraphmatching/internal/workload"
)

func main() {
	var (
		dataPath = flag.String("d", "", "data graph file (required)")
		size     = flag.Int("size", 16, "sampled query size")
		queries  = flag.Int("queries", 10, "queries per density class")
		timeout  = flag.Duration("timeout", 2*time.Second, "per-query time limit")
		seed     = flag.Int64("seed", 1, "query sampling seed")
	)
	flag.Parse()
	if err := run(os.Stdout, *dataPath, *size, *queries, *timeout, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "recommend:", err)
		os.Exit(1)
	}
}

type contender struct {
	name string
	cfg  core.Config
}

// contenders is the component matrix evaluated per workload: the four
// filter choices crossed with the two strongest orders, plus the enum
// method comparison and the paper presets.
func contenders() []contender {
	var out []contender
	for _, f := range []filter.Method{filter.LDF, filter.GQL, filter.CFL, filter.DPIso} {
		for _, o := range []order.Method{order.GQL, order.RI} {
			out = append(out, contender{
				name: fmt.Sprintf("%v-filter + %v-order + intersect", f, o),
				cfg:  core.Config{Filter: f, Order: o, Local: enumerate.Intersect, FailingSets: true},
			})
		}
	}
	out = append(out,
		contender{"GQL-filter + GQL-order + scan (GraphQL)",
			core.Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Scan}},
		contender{"DPiso preset (adaptive + failing sets)",
			core.Config{Filter: filter.DPIso, Order: order.DPIso, Local: enumerate.Intersect,
				Adaptive: true, DPWeights: true, FailingSets: true}},
		contender{"LDF-filter + RI-order + direct (RI)",
			core.Config{Filter: filter.LDF, Order: order.RI, Local: enumerate.Direct}},
	)
	return out
}

func run(w *os.File, dataPath string, size, queries int, timeout time.Duration, seed int64) error {
	if dataPath == "" {
		return fmt.Errorf("-d is required")
	}
	g, err := graph.Load(dataPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "data graph: %v\n", g)
	densityClass := "sparse"
	if g.AverageDegree() >= core.DenseGraphDegreeThreshold {
		densityClass = "dense"
	}
	fmt.Fprintf(w, "density class: %s (paper recommends %s ordering)\n\n",
		densityClass, map[string]string{"dense": "GQL", "sparse": "RI"}[densityClass])

	limits := core.Limits{MaxEmbeddings: 100_000, TimeLimit: timeout}
	type scored struct {
		name     string
		total    time.Duration
		unsolved int
	}
	for _, density := range []querygen.Density{querygen.Dense, querygen.Sparse} {
		qs, err := querygen.Generate(g, querygen.Config{
			NumVertices: size, Count: queries, Density: density, Seed: seed,
		})
		if err != nil {
			fmt.Fprintf(w, "%v queries of size %d: unavailable (%v)\n\n", density, size, err)
			continue
		}
		var results []scored
		for _, c := range contenders() {
			cfg := c.cfg
			agg := workload.Run(c.name, qs, g,
				func(*graph.Graph) core.Config { return cfg }, limits)
			results = append(results, scored{c.name, agg.MeanTotal, agg.Unsolved})
		}
		sort.Slice(results, func(i, j int) bool {
			if results[i].unsolved != results[j].unsolved {
				return results[i].unsolved < results[j].unsolved
			}
			return results[i].total < results[j].total
		})
		t := workload.Table{
			Title:  fmt.Sprintf("%v %d-vertex queries (%d sampled), best first", density, size, len(qs)),
			Header: []string{"configuration", "mean total", "unsolved"},
		}
		for _, r := range results {
			t.AddRow(r.name, workload.FmtMS(r.total)+"ms", fmt.Sprintf("%d", r.unsolved))
		}
		t.Render(w)
		fmt.Fprintf(w, "winner: %s\n\n", results[0].name)
	}
	return nil
}
