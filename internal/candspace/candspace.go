// Package candspace implements the auxiliary data structure 𝒜 of the
// paper: for candidate vertex sets C(u), it maintains the edges between
// candidates of adjacent query vertices, so that
//
//	𝒜[u->u'](v) = N(v) ∩ C(u')
//
// can be retrieved in O(1) during enumeration. Two variants exist,
// distinguished by which query edges are materialized:
//
//   - Full: every edge of E(q), as in CECI's compact embedding cluster
//     index and DP-iso's candidate space. Enables the set-intersection
//     local candidate computation (paper Algorithm 5).
//   - Tree: only the spanning-tree edges, as in CFL's compressed path
//     index. Non-tree edges are verified with binary searches during
//     enumeration (paper Algorithm 4).
package candspace

import (
	"sort"

	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/intersect"
)

// Space is the auxiliary structure 𝒜 over a query graph and candidate
// sets. It is immutable after Build.
type Space struct {
	q          *graph.Graph
	candidates [][]uint32 // per query vertex, sorted data vertices

	// For each directed adjacent pair (u, i) where i indexes u's
	// neighbor list, a CSR mapping candidate index of u to the sorted
	// data vertices of C(neighbor) adjacent to it. nil when the pair is
	// not materialized (tree variant).
	edges [][]*edgeCSR

	// blocks mirrors edges with per-candidate QFilter-style block
	// layouts; nil until MaterializeBlocks runs.
	blocks [][][]*intersect.BlockSet
}

type edgeCSR struct {
	offsets []int32
	targets []uint32
}

// BuildFull materializes 𝒜 for every query edge (CECI/DP-iso style).
// candidates[u] must be sorted; the slice is retained.
func BuildFull(q *graph.Graph, g *graph.Graph, candidates [][]uint32) *Space {
	return build(q, g, candidates, nil)
}

// BuildTree materializes 𝒜 only for the spanning-tree edges given by
// parent (CFL style): pairs (parent[u], u) and (u, parent[u]).
func BuildTree(q *graph.Graph, g *graph.Graph, candidates [][]uint32, parent []graph.Vertex) *Space {
	return build(q, g, candidates, parent)
}

func build(q, g *graph.Graph, candidates [][]uint32, parent []graph.Vertex) *Space {
	s := &Space{
		q:          q,
		candidates: candidates,
		edges:      make([][]*edgeCSR, q.NumVertices()),
	}
	var scratch []uint32
	for u := 0; u < q.NumVertices(); u++ {
		ns := q.Neighbors(graph.Vertex(u))
		s.edges[u] = make([]*edgeCSR, len(ns))
		for i, up := range ns {
			if parent != nil && parent[u] != up && parent[up] != graph.Vertex(u) {
				continue // tree variant: skip non-tree edges
			}
			csr := &edgeCSR{offsets: make([]int32, len(candidates[u])+1)}
			for ci, v := range candidates[u] {
				scratch = intersect.Hybrid(scratch[:0], g.Neighbors(v), candidates[up])
				csr.targets = append(csr.targets, scratch...)
				csr.offsets[ci+1] = int32(len(csr.targets))
			}
			s.edges[u][i] = csr
		}
	}
	return s
}

// Query returns the query graph the space was built for.
func (s *Space) Query() *graph.Graph { return s.q }

// Candidates returns C(u). The slice aliases internal storage.
func (s *Space) Candidates(u graph.Vertex) []uint32 { return s.candidates[u] }

// AllCandidates returns the per-vertex candidate sets.
func (s *Space) AllCandidates() [][]uint32 { return s.candidates }

// CandidateIndex returns the index of data vertex v within C(u), or -1 if
// v is not a candidate of u.
func (s *Space) CandidateIndex(u graph.Vertex, v uint32) int {
	c := s.candidates[u]
	i := sort.Search(len(c), func(i int) bool { return c[i] >= v })
	if i < len(c) && c[i] == v {
		return i
	}
	return -1
}

// neighborPos returns the position of up within u's neighbor list, or -1.
func (s *Space) neighborPos(u, up graph.Vertex) int {
	ns := s.q.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= up })
	if i < len(ns) && ns[i] == up {
		return i
	}
	return -1
}

// Adjacency returns 𝒜[u->u'](v) — the sorted data vertices of C(u')
// adjacent to candidate v of u — where candIdx is v's index in C(u).
// It returns nil if the directed pair (u, u') is not materialized.
// The returned slice aliases internal storage.
func (s *Space) Adjacency(u, up graph.Vertex, candIdx int) []uint32 {
	pos := s.neighborPos(u, up)
	if pos < 0 {
		return nil
	}
	csr := s.edges[u][pos]
	if csr == nil {
		return nil
	}
	return csr.targets[csr.offsets[candIdx]:csr.offsets[candIdx+1]]
}

// HasPair reports whether the directed pair (u, u') is materialized.
func (s *Space) HasPair(u, up graph.Vertex) bool {
	pos := s.neighborPos(u, up)
	return pos >= 0 && s.edges[u][pos] != nil
}

// TotalCandidates returns the summed candidate-set sizes.
func (s *Space) TotalCandidates() int {
	n := 0
	for _, c := range s.candidates {
		n += len(c)
	}
	return n
}

// MeanCandidates returns (1/|V(q)|) * sum |C(u)|, the paper's
// candidate-count metric.
func (s *Space) MeanCandidates() float64 {
	if len(s.candidates) == 0 {
		return 0
	}
	return float64(s.TotalCandidates()) / float64(len(s.candidates))
}

// MemoryBytes estimates the heap footprint of the candidate sets and the
// materialized candidate edges, the paper's memory-cost metric.
func (s *Space) MemoryBytes() int64 {
	var b int64
	for _, c := range s.candidates {
		b += int64(len(c)) * 4
	}
	for _, row := range s.edges {
		for _, csr := range row {
			if csr != nil {
				b += int64(len(csr.offsets))*4 + int64(len(csr.targets))*4
			}
		}
	}
	return b
}
