package obs

import (
	"math"
	"os"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the full text exposition of a registry
// covering every family kind against testdata/exposition.golden:
// HELP/TYPE lines, label escaping, and the histogram _bucket/_sum/
// _count shape, in deterministic order.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("test_requests_total", "Total requests.")
	c.Add(3)

	g := r.Gauge("test_inflight", "In-flight units.")
	g.Set(2)
	g.Add(5)
	g.Add(-3)

	r.GaugeFunc("test_capacity", "Capacity at scrape time.", func() float64 { return 8 })

	cv := r.CounterVec("test_embeddings_total", "Embeddings per workload.", "graph", "algo")
	cv.With("g1", "Optimized").Add(10)
	cv.With("g0", "CFL").Inc()
	cv.With(`we"ird\nam`+"\ne", "GQL").Add(2)

	h := r.Histogram("test_latency_seconds", "Latency with\nnewline help.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.02, 0.02, 0.5, 3} {
		h.Observe(v)
	}

	hv := r.HistogramVec("test_phase_seconds", "Per-phase durations.", []float64{0.1, 1}, "phase")
	hv.With("filter").Observe(0.05)
	hv.With("filter").Observe(2)

	var b strings.Builder
	r.WritePrometheus(&b)
	got := b.String()
	golden, err := os.ReadFile("testdata/exposition.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(golden) {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

// TestHistogramInvariants checks the structural invariants a scraper
// relies on: cumulative buckets are monotone, the +Inf bucket equals
// _count, and boundary values land in the right bucket (le is
// inclusive).
func TestHistogramInvariants(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	obs := []float64{0.5, 1, 1.0001, 2, 4, 4.5, 100}
	for _, v := range obs {
		h.Observe(v)
	}
	counts, total, sum := h.snapshot()
	if total != uint64(len(obs)) {
		t.Fatalf("total = %d, want %d", total, len(obs))
	}
	wantPerBucket := []uint64{2, 2, 1, 2} // (<=1)=2, (1,2]=2, (2,4]=1, +Inf=2
	for i, w := range wantPerBucket {
		if counts[i] != w {
			t.Errorf("bucket %d count = %d, want %d", i, counts[i], w)
		}
	}
	var wantSum float64
	for _, v := range obs {
		wantSum += v
	}
	if math.Abs(sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", sum, wantSum)
	}
	var cum uint64
	for i := range wantPerBucket {
		cum += counts[i]
	}
	if cum != total {
		t.Errorf("cumulative +Inf bucket %d != count %d", cum, total)
	}
}

func TestCounterVecValue(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_total", "t", "a")
	if got := cv.Value("missing"); got != 0 {
		t.Fatalf("Value on missing child = %d, want 0", got)
	}
	cv.With("x").Add(7)
	if got := cv.Value("x"); got != 7 {
		t.Fatalf("Value = %d, want 7", got)
	}
	// Reading a missing child must not have created one.
	var b strings.Builder
	r.WritePrometheus(&b)
	if strings.Contains(b.String(), "missing") {
		t.Errorf("Value created a child:\n%s", b.String())
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("dup_total", "x")
	mustPanic("duplicate", func() { r.Counter("dup_total", "y") })
	mustPanic("bad name", func() { r.Counter("0bad", "y") })
	mustPanic("bad label", func() { r.CounterVec("ok_total", "y", "bad-label") })
	cv := r.CounterVec("labeled_total", "y", "a", "b")
	mustPanic("label arity", func() { cv.With("only-one") })
	mustPanic("bad bounds", func() { r.Histogram("h_seconds", "y", []float64{2, 1}) })
}
