package service

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"sync"
	"testing"
	"time"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/testutil"
)

// TestBatchTraceAndSlowLog pins batch observability: every item's
// Response carries its own match span, and a slow batch writes ONE
// slow-query record whose trace is a single "request" span with the
// per-group admission spans and per-item match children (tagged with
// their item index) underneath.
func TestBatchTraceAndSlowLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	s := New(Config{SlowQueryLog: writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}), SlowQueryThreshold: time.Nanosecond})
	defer s.Close()
	g := testutil.RandomGraph(rand.New(rand.NewSource(7)), 300, 900, 3)
	if _, err := s.RegisterGraph("main", g, false); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	qa := testutil.RandomConnectedQuery(rng, g, 4)
	qb := testutil.RandomConnectedQuery(rng, g, 5)

	items := []Request{
		{Graph: "main", Query: qa, Algorithm: core.CFL},
		{Graph: "main", Query: qb, Algorithm: core.CFL},
		{Graph: "main", Query: qa, Algorithm: core.CFL, OnMatch: func([]uint32) bool { return true }},
	}
	results, err := s.SubmitBatch(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	for i, br := range results {
		if br.Err != nil {
			t.Fatalf("item %d: %v", i, br.Err)
		}
		sp := br.Resp.Result.Trace
		if sp == nil || sp.Name != "match" {
			t.Fatalf("item %d trace = %+v, want a match span", i, sp)
		}
	}

	mu.Lock()
	out := buf.Bytes()
	mu.Unlock()
	var rec slowQueryRecord
	if err := json.Unmarshal(bytes.Split(out, []byte("\n"))[0], &rec); err != nil {
		t.Fatalf("slow-log line not valid JSON: %v", err)
	}
	if rec.Algorithm != "batch" || rec.Batch != 3 {
		t.Fatalf("record = algo %q batch %d, want batch/3", rec.Algorithm, rec.Batch)
	}
	if rec.Groups != 2 {
		t.Fatalf("record groups = %d, want 2 (qa and qb share configs)", rec.Groups)
	}
	root := rec.Trace
	if root == nil || root.Name != "request" {
		t.Fatalf("trace root = %+v, want one request span", root)
	}
	if root.Attr("batch") != true {
		t.Error("batch request span not marked batch")
	}
	// Two group spans, each with an admission child; three match
	// children total across them, tagged with distinct item indices.
	// (JSON round-trips numbers as float64 — compare accordingly.)
	var groups, admissions int
	seen := map[float64]bool{}
	for _, gs := range root.Children {
		if gs.Name != "group" {
			t.Fatalf("unexpected root child %q", gs.Name)
		}
		groups++
		for _, c := range gs.Children {
			switch c.Name {
			case "admission":
				admissions++
			case "match":
				idx, ok := c.Attr("index").(float64)
				if !ok || seen[idx] {
					t.Fatalf("match child index attr = %v (seen: %v)", c.Attr("index"), seen)
				}
				seen[idx] = true
			default:
				t.Fatalf("unexpected group child %q", c.Name)
			}
		}
	}
	if groups != 2 || admissions != 2 {
		t.Fatalf("%d group spans with %d admission spans, want 2/2", groups, admissions)
	}
	if len(seen) != 3 {
		t.Fatalf("%d per-item match children, want 3", len(seen))
	}
}

// writerFunc adapts a function to io.Writer for the slow-log capture.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
