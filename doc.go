// Package subgraphmatching is a Go reproduction of "In-Memory Subgraph
// Matching: An In-depth Study" (Sun & Luo, SIGMOD 2020).
//
// Subgraph matching finds all embeddings of a query graph q in a data
// graph G that are subgraph isomorphisms: injective, label-preserving,
// edge-preserving mappings. The study decomposes in-memory subgraph
// matching algorithms into four orthogonal components — candidate
// filtering, query-vertex ordering, local-candidate enumeration, and
// additional optimizations — and evaluates eight representative
// algorithms inside one common backtracking framework.
//
// This package exposes that framework. Pick an algorithm preset:
//
//	res, err := subgraphmatching.Match(q, g, subgraphmatching.Options{
//	    Algorithm:     subgraphmatching.AlgoOptimized,
//	    MaxEmbeddings: 100_000,
//	    TimeLimit:     5 * time.Minute,
//	})
//
// or mix and match components with a custom configuration:
//
//	cfg := subgraphmatching.Config{
//	    Filter:      subgraphmatching.FilterGQL,
//	    Order:       subgraphmatching.OrderRI,
//	    Local:       subgraphmatching.LocalIntersect,
//	    FailingSets: true,
//	}
//	res, err := subgraphmatching.Match(q, g, subgraphmatching.Options{Custom: &cfg})
//
// The presets reproduce the eight studied algorithms — QuickSI, GraphQL,
// CFL, CECI, DP-iso, RI, VF2++, and the Glasgow constraint-programming
// solver — plus AlgoOptimized (the paper's Section 6 recommendation) and
// the historical baselines AlgoVF2 and AlgoUllmann from the paper's
// Table 1.
//
// Graphs are undirected and vertex-labeled, stored in CSR form. Load
// them from the text format of the paper's released code (t/v/e
// records), build them programmatically with a Builder, or generate
// synthetic R-MAT graphs and random-walk query sets with the included
// generators. The internal/experiments package (exercised by
// cmd/experiments and the root benchmarks) regenerates every table and
// figure of the paper's evaluation.
package subgraphmatching
